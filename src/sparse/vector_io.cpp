#include "sparse/vector_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "support/error.hpp"

namespace fbmpk {

AlignedVector<double> read_vector(std::istream& in) {
  AlignedVector<double> v;
  std::string line;
  while (std::getline(in, line)) {
    const auto pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos || line[pos] == '%') continue;
    std::istringstream ss(line);
    double value = 0.0;
    while (ss >> value) v.push_back(value);
    FBMPK_CHECK_MSG(ss.eof(), "malformed vector line: " << line);
  }
  return v;
}

AlignedVector<double> read_vector_file(const std::string& path) {
  std::ifstream in(path);
  FBMPK_CHECK_MSG(in.is_open(), "cannot open vector file: " << path);
  return read_vector(in);
}

void write_vector(std::ostream& out, const AlignedVector<double>& v) {
  out << std::setprecision(17);
  for (double x : v) out << x << '\n';
}

void write_vector_file(const std::string& path,
                       const AlignedVector<double>& v) {
  std::ofstream out(path);
  FBMPK_CHECK_MSG(out.is_open(), "cannot open for write: " << path);
  write_vector(out, v);
  FBMPK_CHECK_MSG(out.good(), "vector write failed: " << path);
}

}  // namespace fbmpk
