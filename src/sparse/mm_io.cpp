#include "sparse/mm_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/error.hpp"

namespace fbmpk {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

// Reads the next non-comment, non-blank line. Returns false at EOF.
bool next_data_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    std::size_t pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos) continue;
    if (line[pos] == '%') continue;
    return true;
  }
  return false;
}

}  // namespace

CooMatrix<double> read_matrix_market(std::istream& in,
                                     MatrixMarketHeader* header) {
  std::string banner;
  FBMPK_CHECK_MSG(std::getline(in, banner), "empty MatrixMarket stream");

  std::istringstream bs(banner);
  std::string tag, object, format, field, symmetry;
  bs >> tag >> object >> format >> field >> symmetry;
  FBMPK_CHECK_MSG(tag == "%%MatrixMarket", "missing MatrixMarket banner");
  FBMPK_CHECK_MSG(lower(object) == "matrix", "unsupported object: " << object);
  FBMPK_CHECK_MSG(lower(format) == "coordinate",
                  "only coordinate format supported, got: " << format);

  MatrixMarketHeader hdr;
  const std::string f = lower(field);
  if (f == "pattern")
    hdr.pattern = true;
  else
    FBMPK_CHECK_MSG(f == "real" || f == "integer" || f == "double",
                    "unsupported field type: " << field);

  const std::string sym = lower(symmetry);
  if (sym == "symmetric")
    hdr.symmetric = true;
  else
    FBMPK_CHECK_MSG(sym == "general",
                    "unsupported symmetry type: " << symmetry);

  std::string line;
  FBMPK_CHECK_MSG(next_data_line(in, line), "missing size line");
  {
    std::istringstream ss(line);
    long long r = 0, c = 0;
    long long nnz = 0;
    ss >> r >> c >> nnz;
    FBMPK_CHECK_MSG(!ss.fail() && r > 0 && c > 0 && nnz >= 0,
                    "malformed size line: " << line);
    hdr.rows = static_cast<index_t>(r);
    hdr.cols = static_cast<index_t>(c);
    hdr.declared_nnz = static_cast<std::size_t>(nnz);
  }

  CooMatrix<double> coo(hdr.rows, hdr.cols);
  coo.reserve(hdr.symmetric ? 2 * hdr.declared_nnz : hdr.declared_nnz);
  for (std::size_t k = 0; k < hdr.declared_nnz; ++k) {
    FBMPK_CHECK_MSG(next_data_line(in, line),
                    "file ends after " << k << " of " << hdr.declared_nnz
                                       << " entries");
    std::istringstream ss(line);
    long long i = 0, j = 0;
    double v = 1.0;
    ss >> i >> j;
    if (!hdr.pattern) ss >> v;
    FBMPK_CHECK_MSG(!ss.fail(), "malformed entry line: " << line);
    FBMPK_CHECK_MSG(i >= 1 && i <= hdr.rows && j >= 1 && j <= hdr.cols,
                    "entry index out of range: " << line);
    const auto row = static_cast<index_t>(i - 1);
    const auto col = static_cast<index_t>(j - 1);
    coo.add(row, col, v);
    if (hdr.symmetric && row != col) coo.add(col, row, v);
  }

  if (header != nullptr) *header = hdr;
  return coo;
}

CsrMatrix<double> read_matrix_market_file(const std::string& path,
                                          MatrixMarketHeader* header) {
  std::ifstream in(path);
  FBMPK_CHECK_MSG(in.is_open(), "cannot open file: " << path);
  return CsrMatrix<double>::from_coo(read_matrix_market(in, header));
}

void write_matrix_market(std::ostream& out, const CsrMatrix<double>& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.rows() << ' ' << a.cols() << ' ' << a.nnz() << '\n';
  out << std::setprecision(17);
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto va = a.values();
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t k = rp[i]; k < rp[i + 1]; ++k)
      out << (i + 1) << ' ' << (ci[k] + 1) << ' ' << va[k] << '\n';
}

void write_matrix_market_file(const std::string& path,
                              const CsrMatrix<double>& a) {
  std::ofstream out(path);
  FBMPK_CHECK_MSG(out.is_open(), "cannot open file for write: " << path);
  write_matrix_market(out, a);
  FBMPK_CHECK_MSG(out.good(), "write failed: " << path);
}

}  // namespace fbmpk
