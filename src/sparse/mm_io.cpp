#include "sparse/mm_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

#include "support/error.hpp"

namespace fbmpk {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

// Strips a trailing '\r' so CRLF files parse identically to LF files.
void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

// Reads the next non-comment, non-blank line, tracking the 1-based
// line number for error messages. Returns false at EOF.
bool next_data_line(std::istream& in, std::string& line, std::size_t& lineno) {
  while (std::getline(in, line)) {
    ++lineno;
    strip_cr(line);
    std::size_t pos = line.find_first_not_of(" \t");
    if (pos == std::string::npos) continue;
    if (line[pos] == '%') continue;
    return true;
  }
  return false;
}

constexpr long long kMaxIndex = std::numeric_limits<index_t>::max();

}  // namespace

CooMatrix<double> read_matrix_market(std::istream& in,
                                     MatrixMarketHeader* header) {
  std::string banner;
  FBMPK_CHECK_CODE(static_cast<bool>(std::getline(in, banner)),
                   ErrorCode::kParse, "empty MatrixMarket stream");
  strip_cr(banner);
  std::size_t lineno = 1;

  std::istringstream bs(banner);
  std::string tag, object, format, field, symmetry;
  bs >> tag >> object >> format >> field >> symmetry;
  FBMPK_CHECK_CODE(tag == "%%MatrixMarket", ErrorCode::kParse,
                   "missing MatrixMarket banner");
  FBMPK_CHECK_CODE(lower(object) == "matrix", ErrorCode::kUnsupported,
                   "unsupported object: " << object);
  FBMPK_CHECK_CODE(lower(format) == "coordinate", ErrorCode::kUnsupported,
                   "only coordinate format supported, got: " << format);

  MatrixMarketHeader hdr;
  const std::string f = lower(field);
  if (f == "pattern") {
    hdr.pattern = true;
  } else if (f == "complex") {
    FBMPK_FAIL(ErrorCode::kUnsupported,
               "complex field is not supported (real/integer/pattern only)");
  } else {
    FBMPK_CHECK_CODE(f == "real" || f == "integer" || f == "double",
                     ErrorCode::kUnsupported,
                     "unsupported field type: " << field);
  }

  const std::string sym = lower(symmetry);
  if (sym == "symmetric") {
    hdr.symmetric = true;
  } else if (sym == "skew-symmetric") {
    FBMPK_CHECK_CODE(!hdr.pattern, ErrorCode::kParse,
                     "skew-symmetric is meaningless with a pattern field");
    hdr.symmetric = true;
    hdr.skew = true;
  } else if (sym == "hermitian") {
    FBMPK_FAIL(ErrorCode::kUnsupported,
               "hermitian symmetry requires the (unsupported) complex "
               "field; re-export the matrix as symmetric");
  } else {
    FBMPK_CHECK_CODE(sym == "general", ErrorCode::kUnsupported,
                     "unsupported symmetry type: " << symmetry);
  }

  std::string line;
  FBMPK_CHECK_CODE(next_data_line(in, line, lineno), ErrorCode::kParse,
                   "missing size line");
  {
    std::istringstream ss(line);
    long long r = 0, c = 0;
    long long nnz = 0;
    ss >> r >> c >> nnz;
    FBMPK_CHECK_CODE(!ss.fail() && r > 0 && c > 0 && nnz >= 0,
                     ErrorCode::kParse,
                     "malformed size line " << lineno << ": " << line);
    // Narrowing guards: dimensions must fit index_t, and the entry
    // count (doubled for symmetric expansion) must fit both index_t
    // nnz arithmetic and the reserve() below.
    FBMPK_CHECK_CODE(r <= kMaxIndex && c <= kMaxIndex,
                     ErrorCode::kResourceLimit,
                     "dimensions " << r << " x " << c
                                   << " overflow the 32-bit index type");
    const long long expanded = hdr.symmetric ? 2 * nnz : nnz;
    FBMPK_CHECK_CODE(nnz <= kMaxIndex / 2 && expanded <= kMaxIndex,
                     ErrorCode::kResourceLimit,
                     "declared nnz " << nnz
                                     << " overflows the 32-bit index type");
    hdr.rows = static_cast<index_t>(r);
    hdr.cols = static_cast<index_t>(c);
    hdr.declared_nnz = static_cast<std::size_t>(nnz);
  }

  CooMatrix<double> coo(hdr.rows, hdr.cols);
  // Cap the up-front reservation: a corrupt size line declaring
  // billions of entries must not commit gigabytes before the entry
  // loop has read a single line. Legitimate large files just grow.
  constexpr std::size_t kMaxReserve = std::size_t{1} << 24;
  coo.reserve(std::min<std::size_t>(
      hdr.symmetric ? 2 * hdr.declared_nnz : hdr.declared_nnz, kMaxReserve));
  for (std::size_t k = 0; k < hdr.declared_nnz; ++k) {
    FBMPK_CHECK_CODE(next_data_line(in, line, lineno), ErrorCode::kParse,
                     "file ends after " << k << " of " << hdr.declared_nnz
                                        << " entries");
    std::istringstream ss(line);
    long long i = 0, j = 0;
    double v = 1.0;
    ss >> i >> j;
    if (!hdr.pattern) ss >> v;
    FBMPK_CHECK_CODE(!ss.fail(), ErrorCode::kParse,
                     "malformed entry line " << lineno << ": " << line);
    FBMPK_CHECK_CODE(i >= 1 && i <= hdr.rows && j >= 1 && j <= hdr.cols,
                     ErrorCode::kInvalidMatrix,
                     "entry index out of range on line " << lineno << ": "
                                                         << line);
    const auto row = static_cast<index_t>(i - 1);
    const auto col = static_cast<index_t>(j - 1);
    if (hdr.skew && row == col) {
      FBMPK_CHECK_CODE(v == 0.0, ErrorCode::kInvalidMatrix,
                       "skew-symmetric file stores a nonzero diagonal "
                       "entry on line "
                           << lineno << ": " << line);
      continue;  // diagonal of a skew-symmetric matrix is zero
    }
    coo.add(row, col, v);
    if (hdr.symmetric && row != col)
      coo.add(col, row, hdr.skew ? -v : v);
  }

  if (header != nullptr) *header = hdr;
  return coo;
}

CooMatrix<double> read_matrix_market(std::istream& in,
                                     const SanitizeOptions& sanitize_opts,
                                     MatrixMarketHeader* header,
                                     SanitizeReport* report) {
  CooMatrix<double> coo = read_matrix_market(in, header);
  SanitizeReport rep = sanitize(coo, sanitize_opts);
  if (report != nullptr) *report = rep;
  return coo;
}

CsrMatrix<double> read_matrix_market_file(const std::string& path,
                                          MatrixMarketHeader* header) {
  std::ifstream in(path);
  FBMPK_CHECK_CODE(in.is_open(), ErrorCode::kIo,
                   "cannot open file: " << path);
  return CsrMatrix<double>::from_coo(read_matrix_market(in, header));
}

CsrMatrix<double> read_matrix_market_file(const std::string& path,
                                          const SanitizeOptions& sanitize_opts,
                                          MatrixMarketHeader* header,
                                          SanitizeReport* report) {
  std::ifstream in(path);
  FBMPK_CHECK_CODE(in.is_open(), ErrorCode::kIo,
                   "cannot open file: " << path);
  return CsrMatrix<double>::from_coo(
      read_matrix_market(in, sanitize_opts, header, report));
}

Expected<CsrMatrix<double>> try_read_matrix_market_file(
    const std::string& path, MatrixMarketHeader* header) {
  try {
    return read_matrix_market_file(path, header);
  } catch (const Error& e) {
    return e;
  }
}

void write_matrix_market(std::ostream& out, const CsrMatrix<double>& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.rows() << ' ' << a.cols() << ' ' << a.nnz() << '\n';
  out << std::setprecision(17);
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto va = a.values();
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t k = rp[i]; k < rp[i + 1]; ++k)
      out << (i + 1) << ' ' << (ci[k] + 1) << ' ' << va[k] << '\n';
}

void write_matrix_market_file(const std::string& path,
                              const CsrMatrix<double>& a) {
  std::ofstream out(path);
  FBMPK_CHECK_CODE(out.is_open(), ErrorCode::kIo,
                   "cannot open file for write: " << path);
  write_matrix_market(out, a);
  FBMPK_CHECK_CODE(out.good(), ErrorCode::kIo, "write failed: " << path);
}

}  // namespace fbmpk
