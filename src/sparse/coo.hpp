// Coordinate (triplet) sparse matrix format.
//
// COO is the assembly format: generators and the Matrix Market reader
// produce triplets, which are then compressed into CSR for computation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace fbmpk {

/// Index type used across the library. 32-bit indices halve index traffic
/// versus 64-bit and cover all matrices in the evaluation (< 2^31 rows/nnz).
using index_t = std::int32_t;

/// One nonzero entry.
template <class T>
struct Triplet {
  index_t row;
  index_t col;
  T value;

  friend bool operator==(const Triplet&, const Triplet&) = default;
};

/// Coordinate-format sparse matrix: an unordered bag of triplets.
template <class T>
class CooMatrix {
 public:
  CooMatrix() = default;

  CooMatrix(index_t rows, index_t cols) : rows_(rows), cols_(cols) {
    FBMPK_CHECK(rows >= 0 && cols >= 0);
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  std::size_t nnz() const { return entries_.size(); }

  /// Append one entry; duplicates are allowed and summed at CSR build.
  void add(index_t row, index_t col, T value) {
    FBMPK_DCHECK(row >= 0 && row < rows_);
    FBMPK_DCHECK(col >= 0 && col < cols_);
    entries_.push_back({row, col, value});
  }

  void reserve(std::size_t n) { entries_.reserve(n); }

  const std::vector<Triplet<T>>& entries() const { return entries_; }
  std::vector<Triplet<T>>& entries() { return entries_; }

  /// Sort entries row-major (row, then column). Stable so duplicate
  /// summation order is deterministic.
  void sort_row_major() {
    std::stable_sort(entries_.begin(), entries_.end(),
                     [](const Triplet<T>& a, const Triplet<T>& b) {
                       return a.row != b.row ? a.row < b.row : a.col < b.col;
                     });
  }

  /// Validate all indices are within bounds. Throws on violation.
  void validate() const {
    for (const auto& e : entries_) {
      FBMPK_CHECK_MSG(e.row >= 0 && e.row < rows_,
                      "row index out of range: " << e.row);
      FBMPK_CHECK_MSG(e.col >= 0 && e.col < cols_,
                      "col index out of range: " << e.col);
    }
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<Triplet<T>> entries_;
};

}  // namespace fbmpk
