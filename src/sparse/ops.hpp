// Structural and numeric operations on CSR matrices: transpose, symmetry
// analysis, bandwidth, diagonal extraction, dense conversion (for tests).
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "sparse/csr.hpp"
#include "support/aligned_buffer.hpp"

namespace fbmpk {

/// Transpose (also converts CSR <-> CSC interpretation).
template <class T>
CsrMatrix<T> transpose(const CsrMatrix<T>& a);

/// True when the sparsity pattern is symmetric (values ignored).
template <class T>
bool is_structurally_symmetric(const CsrMatrix<T>& a);

/// True when A == A^T within |a_ij - a_ji| <= tol.
template <class T>
bool is_numerically_symmetric(const CsrMatrix<T>& a, T tol = T(0));

/// Matrix bandwidth: max |i - j| over stored entries.
template <class T>
index_t bandwidth(const CsrMatrix<T>& a);

/// Diagonal of A as a dense vector (missing diagonal entries are zero).
template <class T>
AlignedVector<T> extract_diagonal(const CsrMatrix<T>& a);

/// Dense row-major copy — test/debug utility, O(rows*cols) memory.
template <class T>
std::vector<T> to_dense(const CsrMatrix<T>& a);

/// Dense row-major -> CSR (drops exact zeros) — test/debug utility.
template <class T>
CsrMatrix<T> from_dense(index_t rows, index_t cols, const std::vector<T>& d);

/// Explicitly symmetrize the PATTERN: returns A with any missing (j,i)
/// position filled with value 0 wherever (i,j) is stored. Used when an
/// unsymmetric matrix must pass through algorithms that expect a
/// structurally symmetric adjacency (e.g. RCM, ABMC quotient graphs).
template <class T>
CsrMatrix<T> symmetrize_pattern(const CsrMatrix<T>& a);

// ---------------------------------------------------------------------------
// Implementation
// ---------------------------------------------------------------------------

template <class T>
CsrMatrix<T> transpose(const CsrMatrix<T>& a) {
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto va = a.values();
  const index_t n = a.rows();
  const index_t m = a.cols();
  const std::size_t nnz = va.size();

  AlignedVector<index_t> t_ptr(static_cast<std::size_t>(m) + 1, 0);
  for (std::size_t k = 0; k < nnz; ++k) t_ptr[ci[k] + 1] += 1;
  for (std::size_t j = 1; j < t_ptr.size(); ++j) t_ptr[j] += t_ptr[j - 1];

  AlignedVector<index_t> t_col(nnz);
  AlignedVector<T> t_val(nnz);
  AlignedVector<index_t> cursor(t_ptr.begin(), t_ptr.end() - 1);
  for (index_t i = 0; i < n; ++i) {
    for (index_t k = rp[i]; k < rp[i + 1]; ++k) {
      const index_t pos = cursor[ci[k]]++;
      t_col[pos] = i;
      t_val[pos] = va[k];
    }
  }
  // Row-major traversal of A emits ascending row indices per transposed
  // row, so columns of the result are already sorted.
  return CsrMatrix<T>(m, n, std::move(t_ptr), std::move(t_col),
                      std::move(t_val));
}

template <class T>
bool is_structurally_symmetric(const CsrMatrix<T>& a) {
  if (a.rows() != a.cols()) return false;
  const CsrMatrix<T> t = transpose(a);
  return a.row_ptr().size() == t.row_ptr().size() &&
         std::equal(a.row_ptr().begin(), a.row_ptr().end(),
                    t.row_ptr().begin()) &&
         std::equal(a.col_idx().begin(), a.col_idx().end(),
                    t.col_idx().begin());
}

template <class T>
bool is_numerically_symmetric(const CsrMatrix<T>& a, T tol) {
  if (!is_structurally_symmetric(a)) return false;
  const CsrMatrix<T> t = transpose(a);
  const auto va = a.values();
  const auto vt = t.values();
  for (std::size_t k = 0; k < va.size(); ++k)
    if (std::abs(va[k] - vt[k]) > tol) return false;
  return true;
}

template <class T>
index_t bandwidth(const CsrMatrix<T>& a) {
  index_t bw = 0;
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t k = rp[i]; k < rp[i + 1]; ++k)
      bw = std::max(bw, std::abs(i - ci[k]));
  return bw;
}

template <class T>
AlignedVector<T> extract_diagonal(const CsrMatrix<T>& a) {
  FBMPK_CHECK(a.rows() == a.cols());
  AlignedVector<T> d(static_cast<std::size_t>(a.rows()), T{});
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto va = a.values();
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t k = rp[i]; k < rp[i + 1]; ++k)
      if (ci[k] == i) d[i] = va[k];
  return d;
}

template <class T>
std::vector<T> to_dense(const CsrMatrix<T>& a) {
  std::vector<T> d(static_cast<std::size_t>(a.rows()) * a.cols(), T{});
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto va = a.values();
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t k = rp[i]; k < rp[i + 1]; ++k)
      d[static_cast<std::size_t>(i) * a.cols() + ci[k]] = va[k];
  return d;
}

template <class T>
CsrMatrix<T> from_dense(index_t rows, index_t cols, const std::vector<T>& d) {
  FBMPK_CHECK(d.size() == static_cast<std::size_t>(rows) * cols);
  CooMatrix<T> coo(rows, cols);
  for (index_t i = 0; i < rows; ++i)
    for (index_t j = 0; j < cols; ++j) {
      const T v = d[static_cast<std::size_t>(i) * cols + j];
      if (v != T{}) coo.add(i, j, v);
    }
  return CsrMatrix<T>::from_sorted_coo(coo);
}

template <class T>
CsrMatrix<T> symmetrize_pattern(const CsrMatrix<T>& a) {
  FBMPK_CHECK(a.rows() == a.cols());
  CooMatrix<T> coo(a.rows(), a.cols());
  coo.reserve(2 * static_cast<std::size_t>(a.nnz()));
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto va = a.values();
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t k = rp[i]; k < rp[i + 1]; ++k) {
      coo.add(i, ci[k], va[k]);
      if (ci[k] != i) coo.add(ci[k], i, T{});  // pattern-only mirror
    }
  // Duplicate (i,j) entries sum; the mirror adds 0 so values of stored
  // positions are unchanged.
  return CsrMatrix<T>::from_coo(coo);
}

}  // namespace fbmpk
