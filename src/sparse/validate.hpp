// Matrix sanitizer — structural and numerical validation of untrusted
// sparse input under configurable policies.
//
// Every ingestion boundary (Matrix Market parsing, COO assembly, plan
// construction) funnels through these checks so that hostile or broken
// input surfaces as a typed fbmpk::Error (ErrorCode::kInvalidMatrix /
// kNumericalBreakdown / kResourceLimit) at the boundary instead of as
// silent garbage deep inside a kernel sweep.
//
// Policies:
//   kReject   — any defect throws. The default for plan construction.
//   kRepair   — fixable defects are repaired in place: duplicates
//               merged, explicit zeros dropped, zero/near-zero
//               diagonals patched to `patched_diagonal`. Unfixable
//               defects (out-of-range indices, non-finite values,
//               index overflow) still throw.
//   kWarnOnly — defects are only counted in the SanitizeReport; the
//               caller decides. Nothing throws, nothing is mutated.
#pragma once

#include <cstddef>
#include <string>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace fbmpk {

/// What to do when the sanitizer finds a defect.
enum class RepairPolicy { kReject, kRepair, kWarnOnly };

/// Sanitizer configuration. Index-range and overflow checks are always
/// on (they guard undefined behavior); the numeric checks are gated so
/// callers pay only for what they care about.
struct SanitizeOptions {
  RepairPolicy policy = RepairPolicy::kReject;
  /// Scan values for NaN/Inf (kNumericalBreakdown; never repairable).
  bool check_finite = true;
  /// COO only: detect repeated (i, j) positions. kRepair merges them;
  /// kReject refuses the assembly.
  bool check_duplicates = true;
  /// Detect stored entries with value exactly 0.0. Off by default:
  /// explicit zeros are legal, just wasteful. kRepair drops them.
  bool check_explicit_zeros = false;
  /// Flag rows whose diagonal magnitude is <= zero_diag_tolerance.
  /// Relevant for the D^-1 paths (SYMGS smoothing, preconditioning,
  /// the D^-1-scaled recurrence) where a zero diagonal is a breakdown.
  /// Square matrices only.
  bool check_diagonal = false;
  double zero_diag_tolerance = 0.0;
  /// Value patched onto flagged diagonals under kRepair.
  double patched_diagonal = 1.0;
};

/// Defect counts from one sanitizer pass. Counts describe the input as
/// found; under kRepair they also describe what was repaired.
struct SanitizeReport {
  std::size_t out_of_range = 0;     ///< entries with invalid indices
  std::size_t duplicates = 0;       ///< extra entries at repeated (i,j)
  std::size_t unsorted = 0;         ///< CSR rows with unsorted columns
  std::size_t explicit_zeros = 0;   ///< stored entries with value 0.0
  std::size_t nonfinite = 0;        ///< NaN or Inf values
  std::size_t zero_diagonals = 0;   ///< rows with |diag| <= tolerance
  bool repaired = false;            ///< a kRepair pass changed the matrix

  /// True when no defect of any kind was found.
  bool clean() const {
    return out_of_range == 0 && duplicates == 0 && unsorted == 0 &&
           explicit_zeros == 0 && nonfinite == 0 && zero_diagonals == 0;
  }
  /// Human-readable one-line digest ("2 duplicates, 1 zero diagonal").
  std::string summary() const;
};

/// Sanitize a COO assembly in place. Checks index ranges, 32-bit nnz
/// overflow, finiteness and (optionally) the diagonal; under kRepair
/// merges duplicates, drops explicit zeros and patches flagged
/// diagonals (appending a diagonal entry when none is stored).
SanitizeReport sanitize(CooMatrix<double>& coo,
                        const SanitizeOptions& opts = {});

/// Non-mutating numerical check of a built CSR matrix (structure is
/// already guaranteed by CsrMatrix's constructor). Under kReject a
/// defect throws; under kRepair/kWarnOnly defects are only reported —
/// use `repair` to obtain a fixed matrix.
SanitizeReport check_matrix(const CsrMatrix<double>& a,
                            const SanitizeOptions& opts = {});

/// Rebuild `a` with explicit zeros dropped and flagged diagonals
/// patched per `opts` (policy is ignored; this IS the repair). The
/// report describes the defects found. Non-finite values are not
/// repairable and throw kNumericalBreakdown when check_finite is set.
CsrMatrix<double> repair(const CsrMatrix<double>& a,
                         const SanitizeOptions& opts = {},
                         SanitizeReport* report = nullptr);

}  // namespace fbmpk
