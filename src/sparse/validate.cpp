#include "sparse/validate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <vector>

#include "support/error.hpp"

namespace fbmpk {

namespace {

constexpr std::size_t kMaxNnz =
    static_cast<std::size_t>(std::numeric_limits<index_t>::max());

void append_count(std::ostringstream& os, std::size_t n, const char* what) {
  if (n == 0) return;
  if (os.tellp() > 0) os << ", ";
  os << n << ' ' << what;
}

}  // namespace

std::string SanitizeReport::summary() const {
  std::ostringstream os;
  append_count(os, out_of_range, "out-of-range");
  append_count(os, duplicates, "duplicates");
  append_count(os, unsorted, "unsorted rows");
  append_count(os, explicit_zeros, "explicit zeros");
  append_count(os, nonfinite, "non-finite values");
  append_count(os, zero_diagonals, "zero/near-zero diagonals");
  if (os.tellp() == 0) os << "clean";
  return os.str();
}

SanitizeReport sanitize(CooMatrix<double>& coo, const SanitizeOptions& opts) {
  SanitizeReport rep;
  const index_t rows = coo.rows();
  const index_t cols = coo.cols();
  const bool square = rows == cols;
  auto& entries = coo.entries();

  // nnz overflow: CSR compression stores nnz in index_t. Unfixable.
  FBMPK_CHECK_CODE(entries.size() <= kMaxNnz, ErrorCode::kResourceLimit,
                   "nnz " << entries.size()
                          << " overflows the 32-bit index type");

  // Pass 1: unfixable defects — index range and finiteness.
  for (const auto& e : entries) {
    if (e.row < 0 || e.row >= rows || e.col < 0 || e.col >= cols) {
      ++rep.out_of_range;
      FBMPK_CHECK_CODE(opts.policy == RepairPolicy::kWarnOnly,
                       ErrorCode::kInvalidMatrix,
                       "entry (" << e.row << ", " << e.col
                                 << ") outside " << rows << " x " << cols);
    }
    if (opts.check_finite && !std::isfinite(e.value)) {
      ++rep.nonfinite;
      FBMPK_CHECK_CODE(opts.policy == RepairPolicy::kWarnOnly,
                       ErrorCode::kNumericalBreakdown,
                       "non-finite value at (" << e.row << ", " << e.col
                                               << ")");
    }
  }
  if (rep.out_of_range > 0 || rep.nonfinite > 0)
    return rep;  // kWarnOnly: further analysis would index out of range

  // Pass 2: duplicates and explicit zeros (order-independent count via
  // a sorted copy; kRepair sorts the real entries in place).
  if (opts.check_duplicates || opts.check_explicit_zeros) {
    if (opts.policy == RepairPolicy::kRepair) {
      coo.sort_row_major();
      std::vector<Triplet<double>> merged;
      merged.reserve(entries.size());
      for (const auto& e : entries) {
        if (opts.check_duplicates && !merged.empty() &&
            merged.back().row == e.row && merged.back().col == e.col) {
          merged.back().value += e.value;
          ++rep.duplicates;
        } else {
          merged.push_back(e);
        }
      }
      if (opts.check_explicit_zeros) {
        std::size_t kept = 0;
        for (const auto& e : merged) {
          if (e.value == 0.0) {
            ++rep.explicit_zeros;
            continue;
          }
          merged[kept++] = e;
        }
        merged.resize(kept);
      }
      entries = std::move(merged);
    } else {
      auto sorted = entries;
      std::stable_sort(sorted.begin(), sorted.end(),
                       [](const Triplet<double>& a, const Triplet<double>& b) {
                         return a.row != b.row ? a.row < b.row
                                               : a.col < b.col;
                       });
      for (std::size_t i = 0; i < sorted.size(); ++i) {
        if (opts.check_duplicates && i > 0 &&
            sorted[i].row == sorted[i - 1].row &&
            sorted[i].col == sorted[i - 1].col)
          ++rep.duplicates;
        if (opts.check_explicit_zeros && sorted[i].value == 0.0)
          ++rep.explicit_zeros;
      }
      FBMPK_CHECK_CODE(
          opts.policy != RepairPolicy::kReject || rep.duplicates == 0,
          ErrorCode::kInvalidMatrix,
          rep.duplicates << " duplicate entries (policy kReject)");
      FBMPK_CHECK_CODE(
          opts.policy != RepairPolicy::kReject || rep.explicit_zeros == 0,
          ErrorCode::kInvalidMatrix,
          rep.explicit_zeros << " explicit zero entries (policy kReject)");
    }
  }

  // Pass 3: diagonal health (square matrices, opt-in).
  if (opts.check_diagonal && square && rows > 0) {
    std::vector<double> diag(static_cast<std::size_t>(rows), 0.0);
    for (const auto& e : entries)
      if (e.row == e.col) diag[static_cast<std::size_t>(e.row)] += e.value;
    std::vector<bool> flagged(static_cast<std::size_t>(rows), false);
    for (index_t i = 0; i < rows; ++i) {
      if (std::abs(diag[static_cast<std::size_t>(i)]) <=
          opts.zero_diag_tolerance) {
        flagged[static_cast<std::size_t>(i)] = true;
        ++rep.zero_diagonals;
      }
    }
    FBMPK_CHECK_CODE(
        opts.policy != RepairPolicy::kReject || rep.zero_diagonals == 0,
        ErrorCode::kInvalidMatrix,
        rep.zero_diagonals << " zero/near-zero diagonals (policy kReject)");
    if (opts.policy == RepairPolicy::kRepair && rep.zero_diagonals > 0) {
      // Remove any stored (but near-zero) diagonal entries on flagged
      // rows, then append one patched entry per flagged row.
      auto& es = coo.entries();
      std::size_t kept = 0;
      for (const auto& e : es) {
        if (e.row == e.col && flagged[static_cast<std::size_t>(e.row)])
          continue;
        es[kept++] = e;
      }
      es.resize(kept);
      for (index_t i = 0; i < rows; ++i)
        if (flagged[static_cast<std::size_t>(i)])
          coo.add(i, i, opts.patched_diagonal);
      coo.sort_row_major();
    }
  }

  rep.repaired = opts.policy == RepairPolicy::kRepair && !rep.clean();
  return rep;
}

SanitizeReport check_matrix(const CsrMatrix<double>& a,
                            const SanitizeOptions& opts) {
  SanitizeReport rep;
  const index_t n = a.rows();
  const bool square = n == a.cols();
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto va = a.values();

  for (std::size_t k = 0; k < va.size(); ++k) {
    if (opts.check_explicit_zeros && va[k] == 0.0) ++rep.explicit_zeros;
    if (opts.check_finite && !std::isfinite(va[k])) {
      ++rep.nonfinite;
      FBMPK_CHECK_CODE(opts.policy != RepairPolicy::kReject,
                       ErrorCode::kNumericalBreakdown,
                       "non-finite stored value at position " << k);
    }
  }
  FBMPK_CHECK_CODE(
      opts.policy != RepairPolicy::kReject || rep.explicit_zeros == 0,
      ErrorCode::kInvalidMatrix,
      rep.explicit_zeros << " explicit zero entries (policy kReject)");

  if (opts.check_diagonal && square) {
    for (index_t i = 0; i < n; ++i) {
      double d = 0.0;
      for (index_t k = rp[i]; k < rp[i + 1]; ++k)
        if (ci[k] == i) d = va[k];
      if (std::abs(d) <= opts.zero_diag_tolerance) ++rep.zero_diagonals;
    }
    FBMPK_CHECK_CODE(
        opts.policy != RepairPolicy::kReject || rep.zero_diagonals == 0,
        ErrorCode::kInvalidMatrix,
        rep.zero_diagonals << " zero/near-zero diagonals (policy kReject)");
  }
  return rep;
}

CsrMatrix<double> repair(const CsrMatrix<double>& a,
                         const SanitizeOptions& opts,
                         SanitizeReport* report) {
  CooMatrix<double> coo(a.rows(), a.cols());
  coo.reserve(static_cast<std::size_t>(a.nnz()));
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto va = a.values();
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t k = rp[i]; k < rp[i + 1]; ++k) coo.add(i, ci[k], va[k]);

  SanitizeOptions ropts = opts;
  ropts.policy = RepairPolicy::kRepair;
  SanitizeReport rep = sanitize(coo, ropts);
  if (report != nullptr) *report = rep;
  return CsrMatrix<double>::from_sorted_coo(coo);
}

}  // namespace fbmpk
