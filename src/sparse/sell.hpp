// SELL-C-sigma sparse format (Kreutzer et al., SIAM SISC 2014) — the
// SIMD-friendly format the paper names as future work for FBMPK's
// triangles (§VII, "Sparse matrix storage formats").
//
// Rows are grouped into chunks of C consecutive rows; within a sorting
// window of sigma rows, rows are ordered by descending length so chunk
// mates have similar lengths and padding stays small. Each chunk is
// stored column-major (lane r of iteration j at chunk_offset + j*C + r),
// which lets one SIMD instruction process C rows in lockstep.
#pragma once

#include <algorithm>
#include <numeric>
#include <span>

#include "sparse/csr.hpp"
#include "support/aligned_buffer.hpp"
#include "support/error.hpp"

namespace fbmpk {

template <class T>
class SellMatrix {
 public:
  SellMatrix() = default;

  /// Convert from CSR. chunk = C (rows per chunk), sigma = sorting
  /// window in rows (use 1 for no reordering, rows() for a full sort);
  /// sigma is rounded up to a multiple of chunk.
  static SellMatrix from_csr(const CsrMatrix<T>& a, index_t chunk = 8,
                             index_t sigma = 1) {
    FBMPK_CHECK(chunk >= 1);
    FBMPK_CHECK(sigma >= 1);
    SellMatrix m;
    m.rows_ = a.rows();
    m.cols_ = a.cols();
    m.chunk_ = chunk;
    m.nnz_ = a.nnz();
    const index_t n = a.rows();
    sigma = std::max(sigma, chunk);

    // Row order: descending length inside each sigma window (stable so
    // equal-length rows keep their relative order).
    m.row_order_.resize(static_cast<std::size_t>(n));
    std::iota(m.row_order_.begin(), m.row_order_.end(), 0);
    m.row_len_.resize(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) m.row_len_[i] = a.row_nnz(i);
    for (index_t w = 0; w < n; w += sigma) {
      const index_t end = std::min<index_t>(n, w + sigma);
      std::stable_sort(m.row_order_.begin() + w, m.row_order_.begin() + end,
                       [&](index_t x, index_t y) {
                         return a.row_nnz(x) > a.row_nnz(y);
                       });
    }

    const index_t num_chunks = (n + chunk - 1) / chunk;
    m.chunk_ptr_.assign(static_cast<std::size_t>(num_chunks) + 1, 0);
    m.chunk_len_.assign(static_cast<std::size_t>(num_chunks), 0);
    for (index_t c = 0; c < num_chunks; ++c) {
      index_t len = 0;
      for (index_t r = c * chunk; r < std::min<index_t>(n, (c + 1) * chunk);
           ++r)
        len = std::max(len, a.row_nnz(m.row_order_[r]));
      m.chunk_len_[c] = len;
      m.chunk_ptr_[c + 1] = m.chunk_ptr_[c] + len * chunk;
    }

    const auto padded = static_cast<std::size_t>(m.chunk_ptr_[num_chunks]);
    // Padding lanes point at column 0 with value 0: mathematically a
    // no-op, branch-free in the kernel.
    m.col_idx_.assign(padded, 0);
    m.values_.assign(padded, T{});
    for (index_t c = 0; c < num_chunks; ++c) {
      for (index_t lane = 0; lane < chunk; ++lane) {
        const index_t slot = c * chunk + lane;
        if (slot >= n) continue;
        const index_t row = m.row_order_[slot];
        const index_t lo = a.row_ptr()[row];
        const index_t len = a.row_nnz(row);
        for (index_t j = 0; j < len; ++j) {
          const std::size_t pos = static_cast<std::size_t>(m.chunk_ptr_[c]) +
                                  static_cast<std::size_t>(j) * chunk + lane;
          m.col_idx_[pos] = a.col_idx()[lo + j];
          m.values_[pos] = a.values()[lo + j];
        }
      }
    }
    return m;
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t nnz() const { return nnz_; }
  index_t chunk() const { return chunk_; }
  index_t num_chunks() const {
    return static_cast<index_t>(chunk_len_.size());
  }

  /// Stored slots including padding.
  std::size_t padded_size() const { return values_.size(); }

  /// Padding overhead: padded slots / nnz (1.0 = no padding).
  double padding_factor() const {
    return nnz_ == 0 ? 1.0
                     : static_cast<double>(padded_size()) /
                           static_cast<double>(nnz_);
  }

  std::size_t storage_bytes() const {
    return col_idx_.size() * sizeof(index_t) + values_.size() * sizeof(T) +
           chunk_ptr_.size() * sizeof(index_t) +
           chunk_len_.size() * sizeof(index_t) +
           row_order_.size() * sizeof(index_t) +
           row_len_.size() * sizeof(index_t);
  }

  /// Convert back to CSR in the original row order. Exact inverse of
  /// from_csr: per-row lengths are stored, so padding slots (and any
  /// explicit zeros the caller kept) round-trip losslessly.
  CsrMatrix<T> to_csr() const {
    const index_t n = rows_;
    AlignedVector<index_t> rp(static_cast<std::size_t>(n) + 1, 0);
    for (index_t i = 0; i < n; ++i) rp[i + 1] = rp[i] + row_len_[i];
    AlignedVector<index_t> ci(static_cast<std::size_t>(rp[n]));
    AlignedVector<T> va(static_cast<std::size_t>(rp[n]));
    for (index_t c = 0; c < num_chunks(); ++c) {
      for (index_t lane = 0; lane < chunk_; ++lane) {
        const index_t slot = c * chunk_ + lane;
        if (slot >= n) continue;
        const index_t row = row_order_[slot];
        const index_t lo = rp[row];
        const index_t len = row_len_[row];
        for (index_t j = 0; j < len; ++j) {
          const std::size_t pos = static_cast<std::size_t>(chunk_ptr_[c]) +
                                  static_cast<std::size_t>(j) * chunk_ + lane;
          ci[lo + j] = col_idx_[pos];
          va[lo + j] = values_[pos];
        }
      }
    }
    return CsrMatrix<T>(n, cols_, std::move(rp), std::move(ci),
                        std::move(va));
  }

  /// y = A x. Lanes of a chunk advance in lockstep (SIMD-friendly).
  void spmv(std::span<const T> x, std::span<T> y) const {
    FBMPK_CHECK(x.size() == static_cast<std::size_t>(cols_));
    FBMPK_CHECK(y.size() == static_cast<std::size_t>(rows_));
    const index_t n = rows_;
    const index_t C = chunk_;
    const index_t* ci = col_idx_.data();
    const T* va = values_.data();
    const T* xp = x.data();

    // Accumulators for one chunk live on the stack; C is small.
    FBMPK_CHECK_MSG(C <= 64, "chunk height > 64 unsupported");
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (index_t c = 0; c < num_chunks(); ++c) {
      T acc[64];
      const index_t base = chunk_ptr_[c];
      const index_t len = chunk_len_[c];
      for (index_t lane = 0; lane < C; ++lane) acc[lane] = T{};
      for (index_t j = 0; j < len; ++j) {
        const index_t off = base + j * C;
        for (index_t lane = 0; lane < C; ++lane)
          acc[lane] += va[off + lane] * xp[ci[off + lane]];
      }
      for (index_t lane = 0; lane < C; ++lane) {
        const index_t slot = c * C + lane;
        if (slot < n) y[row_order_[slot]] = acc[lane];
      }
    }
  }

  std::span<const index_t> row_order() const { return row_order_; }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t nnz_ = 0;
  index_t chunk_ = 8;
  std::vector<index_t> row_order_;       ///< slot -> original row
  std::vector<index_t> row_len_;         ///< original row -> its nnz
  AlignedVector<index_t> chunk_ptr_;     ///< chunk -> base offset
  AlignedVector<index_t> chunk_len_;     ///< chunk -> padded row length
  AlignedVector<index_t> col_idx_;       ///< column-major per chunk
  AlignedVector<T> values_;
};

}  // namespace fbmpk
