// Triangular split A = L + D + U (paper §III-A).
//
// L holds the strictly-lower triangle, U the strictly-upper triangle
// (both CSR), and the diagonal D is stored as a dense vector to cut
// storage and kernel overhead. Positions without a stored diagonal entry
// get an explicit zero in d — the FBMPK kernels then never branch on
// diagonal presence.
#pragma once

#include <cstddef>
#include <utility>

#include "sparse/csr.hpp"
#include "support/aligned_buffer.hpp"

namespace fbmpk {

/// Result of splitting a square matrix into strict triangles + diagonal.
template <class T>
struct TriangularSplit {
  CsrMatrix<T> lower;     ///< strictly lower triangle L
  CsrMatrix<T> upper;     ///< strictly upper triangle U
  AlignedVector<T> diag;  ///< dense diagonal d (zeros where unstored)

  /// Bytes used by the L + U + d representation (Table IV row 2).
  std::size_t storage_bytes() const {
    return lower.storage_bytes() + upper.storage_bytes() +
           diag.size() * sizeof(T);
  }
};

/// Split a square CSR matrix into (L, U, d).
template <class T>
TriangularSplit<T> split_triangular(const CsrMatrix<T>& a) {
  FBMPK_CHECK_MSG(a.rows() == a.cols(), "triangular split needs square A");
  const index_t n = a.rows();
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto va = a.values();

  AlignedVector<index_t> l_ptr(static_cast<std::size_t>(n) + 1, 0);
  AlignedVector<index_t> u_ptr(static_cast<std::size_t>(n) + 1, 0);
  AlignedVector<T> diag(static_cast<std::size_t>(n), T{});

  // Pass 1: count strict-lower/strict-upper entries per row.
  for (index_t i = 0; i < n; ++i) {
    for (index_t k = rp[i]; k < rp[i + 1]; ++k) {
      const index_t j = ci[k];
      if (j < i)
        l_ptr[i + 1] += 1;
      else if (j > i)
        u_ptr[i + 1] += 1;
    }
  }
  for (index_t i = 0; i < n; ++i) {
    l_ptr[i + 1] += l_ptr[i];
    u_ptr[i + 1] += u_ptr[i];
  }

  AlignedVector<index_t> l_col(static_cast<std::size_t>(l_ptr[n]));
  AlignedVector<T> l_val(static_cast<std::size_t>(l_ptr[n]));
  AlignedVector<index_t> u_col(static_cast<std::size_t>(u_ptr[n]));
  AlignedVector<T> u_val(static_cast<std::size_t>(u_ptr[n]));

  // Pass 2: scatter. Source columns are sorted, so targets stay sorted.
  for (index_t i = 0; i < n; ++i) {
    index_t lk = l_ptr[i];
    index_t uk = u_ptr[i];
    for (index_t k = rp[i]; k < rp[i + 1]; ++k) {
      const index_t j = ci[k];
      if (j < i) {
        l_col[lk] = j;
        l_val[lk] = va[k];
        ++lk;
      } else if (j > i) {
        u_col[uk] = j;
        u_val[uk] = va[k];
        ++uk;
      } else {
        diag[i] = va[k];
      }
    }
  }

  TriangularSplit<T> out;
  out.lower = CsrMatrix<T>(n, n, std::move(l_ptr), std::move(l_col),
                           std::move(l_val));
  out.upper = CsrMatrix<T>(n, n, std::move(u_ptr), std::move(u_col),
                           std::move(u_val));
  out.diag = std::move(diag);
  return out;
}

/// Reassemble A from a split — inverse of split_triangular up to dropped
/// explicit diagonal zeros (test utility).
template <class T>
CsrMatrix<T> merge_triangular(const TriangularSplit<T>& s) {
  const index_t n = s.lower.rows();
  FBMPK_CHECK(s.upper.rows() == n &&
              s.diag.size() == static_cast<std::size_t>(n));
  CooMatrix<T> coo(n, n);
  coo.reserve(static_cast<std::size_t>(s.lower.nnz()) + s.upper.nnz() + n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t k = s.lower.row_ptr()[i]; k < s.lower.row_ptr()[i + 1]; ++k)
      coo.add(i, s.lower.col_idx()[k], s.lower.values()[k]);
    if (s.diag[i] != T{}) coo.add(i, i, s.diag[i]);
    for (index_t k = s.upper.row_ptr()[i]; k < s.upper.row_ptr()[i + 1]; ++k)
      coo.add(i, s.upper.col_idx()[k], s.upper.values()[k]);
  }
  return CsrMatrix<T>::from_sorted_coo(coo);
}

}  // namespace fbmpk
