// Dense-vector file I/O: plain text, one value per line, '%' comments —
// compatible with the MatrixMarket array convention used by SuiteSparse
// tooling for right-hand sides.
#pragma once

#include <iosfwd>
#include <string>

#include "support/aligned_buffer.hpp"

namespace fbmpk {

/// Read all values from a stream (whitespace-separated; '%'-prefixed
/// lines skipped). Throws on malformed numbers.
AlignedVector<double> read_vector(std::istream& in);
AlignedVector<double> read_vector_file(const std::string& path);

/// Write one value per line at full precision.
void write_vector(std::ostream& out, const AlignedVector<double>& v);
void write_vector_file(const std::string& path,
                       const AlignedVector<double>& v);

}  // namespace fbmpk
