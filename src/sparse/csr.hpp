// Compressed Sparse Row matrix — the computational storage format
// (paper §II-A, Fig 1).
//
// row_ptr has length rows()+1; row i's entries occupy
// [row_ptr[i], row_ptr[i+1]) in col_idx / values. Columns within a row
// are sorted ascending and unique (enforced by the builders).
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <utility>

#include "sparse/coo.hpp"
#include "support/aligned_buffer.hpp"
#include "support/error.hpp"

namespace fbmpk {

template <class T>
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Take ownership of prebuilt arrays. Validates the structure.
  CsrMatrix(index_t rows, index_t cols, AlignedVector<index_t> row_ptr,
            AlignedVector<index_t> col_idx, AlignedVector<T> values)
      : rows_(rows),
        cols_(cols),
        row_ptr_(std::move(row_ptr)),
        col_idx_(std::move(col_idx)),
        values_(std::move(values)) {
    validate();
  }

  /// Compress a COO matrix: sorts row-major and sums duplicates.
  static CsrMatrix from_coo(const CooMatrix<T>& coo) {
    CooMatrix<T> sorted = coo;  // keep caller's triplet order intact
    sorted.sort_row_major();
    return from_sorted_coo(sorted);
  }

  /// Compress an already row-major-sorted COO matrix (sums duplicates).
  static CsrMatrix from_sorted_coo(const CooMatrix<T>& coo) {
    // nnz is stored in index_t: refuse assemblies that would overflow
    // the 32-bit index arithmetic used throughout the kernels.
    FBMPK_CHECK_CODE(
        coo.nnz() <=
            static_cast<std::size_t>(std::numeric_limits<index_t>::max()),
        ErrorCode::kResourceLimit,
        "nnz " << coo.nnz() << " overflows the 32-bit index type");
    CsrMatrix m;
    m.rows_ = coo.rows();
    m.cols_ = coo.cols();
    m.row_ptr_.assign(static_cast<std::size_t>(m.rows_) + 1, 0);
    m.col_idx_.reserve(coo.nnz());
    m.values_.reserve(coo.nnz());

    index_t prev_row = -1;
    index_t prev_col = -1;
    for (const auto& e : coo.entries()) {
      FBMPK_CHECK_MSG(e.row >= prev_row, "COO entries not sorted row-major");
      if (e.row == prev_row && e.col == prev_col) {
        m.values_.back() += e.value;  // duplicate: accumulate
        continue;
      }
      FBMPK_CHECK_MSG(e.row > prev_row || e.col > prev_col,
                      "COO entries not sorted by column within row");
      m.col_idx_.push_back(e.col);
      m.values_.push_back(e.value);
      m.row_ptr_[static_cast<std::size_t>(e.row) + 1] += 1;
      prev_row = e.row;
      prev_col = e.col;
    }
    for (std::size_t i = 1; i < m.row_ptr_.size(); ++i)
      m.row_ptr_[i] += m.row_ptr_[i - 1];
    m.validate();
    return m;
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t nnz() const { return static_cast<index_t>(values_.size()); }

  std::span<const index_t> row_ptr() const { return row_ptr_; }
  std::span<const index_t> col_idx() const { return col_idx_; }
  std::span<const T> values() const { return values_; }
  std::span<T> values_mutable() { return values_; }

  /// Number of stored entries in row i.
  index_t row_nnz(index_t i) const {
    FBMPK_DCHECK(i >= 0 && i < rows_);
    return row_ptr_[static_cast<std::size_t>(i) + 1] -
           row_ptr_[static_cast<std::size_t>(i)];
  }

  /// Stored value at (i, j), or T{} when the position is not stored.
  T at(index_t i, index_t j) const {
    FBMPK_CHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    for (index_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
      if (col_idx_[k] == j) return values_[k];
    return T{};
  }

  /// Bytes of heap storage held by the three arrays (Table IV).
  std::size_t storage_bytes() const {
    return row_ptr_.size() * sizeof(index_t) +
           col_idx_.size() * sizeof(index_t) + values_.size() * sizeof(T);
  }

  bool empty() const { return rows_ == 0; }

  /// Full structural validation; throws fbmpk::Error with
  /// ErrorCode::kInvalidMatrix on any violation. Index arithmetic is
  /// overflow-safe: bounds are established before they are dereferenced.
  void validate() const {
    FBMPK_CHECK_CODE(rows_ >= 0 && cols_ >= 0, ErrorCode::kInvalidMatrix,
                     "negative dimensions " << rows_ << " x " << cols_);
    FBMPK_CHECK_CODE(
        values_.size() <=
            static_cast<std::size_t>(std::numeric_limits<index_t>::max()),
        ErrorCode::kResourceLimit,
        "nnz " << values_.size() << " overflows the 32-bit index type");
    FBMPK_CHECK_CODE(row_ptr_.size() == static_cast<std::size_t>(rows_) + 1,
                     ErrorCode::kInvalidMatrix,
                     "row_ptr length " << row_ptr_.size() << " != rows+1");
    FBMPK_CHECK_CODE(row_ptr_.front() == 0, ErrorCode::kInvalidMatrix,
                     "row_ptr[0] = " << row_ptr_.front() << ", expected 0");
    FBMPK_CHECK_CODE(row_ptr_.back() == static_cast<index_t>(values_.size()),
                     ErrorCode::kInvalidMatrix,
                     "row_ptr[rows] = " << row_ptr_.back() << " != nnz "
                                        << values_.size());
    FBMPK_CHECK_CODE(col_idx_.size() == values_.size(),
                     ErrorCode::kInvalidMatrix,
                     "col_idx/values length mismatch");
    for (index_t i = 0; i < rows_; ++i) {
      FBMPK_CHECK_CODE(row_ptr_[i] >= 0 && row_ptr_[i] <= row_ptr_[i + 1],
                       ErrorCode::kInvalidMatrix,
                       "row_ptr not monotone at row " << i);
      for (index_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
        FBMPK_CHECK_CODE(col_idx_[k] >= 0 && col_idx_[k] < cols_,
                         ErrorCode::kInvalidMatrix,
                         "column out of range in row " << i);
        if (k > row_ptr_[i])
          FBMPK_CHECK_CODE(col_idx_[k - 1] < col_idx_[k],
                           ErrorCode::kInvalidMatrix,
                           "columns not strictly ascending in row " << i);
      }
    }
  }

  friend bool operator==(const CsrMatrix& a, const CsrMatrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ &&
           a.row_ptr_ == b.row_ptr_ && a.col_idx_ == b.col_idx_ &&
           a.values_ == b.values_;
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  AlignedVector<index_t> row_ptr_{0};  // valid empty matrix: [0]
  AlignedVector<index_t> col_idx_;
  AlignedVector<T> values_;
};

}  // namespace fbmpk
