#include "sparse/packed_tri.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace fbmpk {

namespace {

bool is_pow2(index_t v) { return v > 0 && (v & (v - 1)) == 0; }

index_t log2_exact(index_t v) {
  index_t s = 0;
  while ((index_t{1} << s) < v) ++s;
  return s;
}

/// Per-band metadata bytes as stored (base + wide flag + pool offset +
/// global row_ptr base).
constexpr std::size_t kBandMetaBytes =
    sizeof(index_t) + sizeof(std::uint8_t) + sizeof(std::uint64_t) +
    sizeof(index_t);

}  // namespace

PackedTriangleIndex PackedTriangleIndex::build_from(index_t rows,
                                                    const index_t* row_ptr,
                                                    const index_t* col_idx,
                                                    index_t band_rows) {
  FBMPK_CHECK_MSG(is_pow2(band_rows) && band_rows <= (index_t{1} << 20),
                  "band_rows must be a power of two in [1, 2^20], got "
                      << band_rows);
  FBMPK_CHECK(rows >= 0);

  PackedTriangleIndex p;
  p.rows_ = rows;
  p.band_shift_ = log2_exact(band_rows);
  p.nnz_ = rows == 0 ? 0 : row_ptr[rows];
  if (rows == 0) return p;

  const index_t bands =
      (rows + band_rows - 1) >> p.band_shift_;
  p.band_base_.resize(static_cast<std::size_t>(bands));
  p.band_wide_.resize(static_cast<std::size_t>(bands));
  p.band_off_.resize(static_cast<std::size_t>(bands));
  p.band_gbase_.resize(static_cast<std::size_t>(bands));

  for (index_t b = 0; b < bands; ++b) {
    const index_t r0 = b << p.band_shift_;
    const index_t r1 = std::min(rows, r0 + band_rows);
    const index_t k0 = row_ptr[r0];
    const index_t k1 = row_ptr[r1];
    p.band_gbase_[b] = k0;

    index_t cmin = 0, cmax = 0;
    if (k1 > k0) {
      cmin = cmax = col_idx[k0];
      for (index_t k = k0 + 1; k < k1; ++k) {
        cmin = std::min(cmin, col_idx[k]);
        cmax = std::max(cmax, col_idx[k]);
      }
    }
    const bool narrow = (k1 == k0) || (cmax - cmin <= kNarrowRange);
    if (narrow) {
      p.band_wide_[b] = 0;
      p.band_base_[b] = cmin;
      p.band_off_[b] = p.col16_.size();
      for (index_t k = k0; k < k1; ++k)
        p.col16_.push_back(static_cast<std::uint16_t>(col_idx[k] - cmin));
    } else {
      p.band_wide_[b] = 1;
      p.band_base_[b] = 0;
      p.band_off_[b] = p.col32_.size();
      for (index_t k = k0; k < k1; ++k) p.col32_.push_back(col_idx[k]);
    }
  }
  return p;
}

index_t PackedTriangleIndex::num_wide_bands() const {
  index_t w = 0;
  for (const std::uint8_t f : band_wide_) w += (f != 0);
  return w;
}

std::size_t PackedTriangleIndex::index_bytes() const {
  return col16_.size() * sizeof(std::uint16_t) +
         col32_.size() * sizeof(index_t) +
         band_wide_.size() * kBandMetaBytes;
}

double PackedTriangleIndex::bytes_per_nnz() const {
  if (nnz_ == 0) return static_cast<double>(sizeof(index_t));
  return static_cast<double>(index_bytes()) / static_cast<double>(nnz_);
}

bool PackedTriangleIndex::matches(index_t rows, const index_t* row_ptr,
                                  const index_t* col_idx) const {
  if (rows != rows_) return false;
  const index_t nnz = rows == 0 ? 0 : row_ptr[rows];
  if (nnz != nnz_) return false;
  if (rows == 0) return true;

  const index_t band_rows = index_t{1} << band_shift_;
  const index_t bands = (rows + band_rows - 1) >> band_shift_;
  if (static_cast<std::size_t>(bands) != band_wide_.size() ||
      static_cast<std::size_t>(bands) != band_base_.size() ||
      static_cast<std::size_t>(bands) != band_off_.size() ||
      static_cast<std::size_t>(bands) != band_gbase_.size())
    return false;

  for (index_t b = 0; b < bands; ++b) {
    const index_t r0 = b << band_shift_;
    const index_t r1 = std::min(rows, r0 + band_rows);
    const index_t k0 = row_ptr[r0];
    const index_t k1 = row_ptr[r1];
    if (band_gbase_[b] != k0) return false;
    const std::size_t count = static_cast<std::size_t>(k1 - k0);
    const std::size_t off = band_off_[b];
    if (band_wide_[b]) {
      if (off > col32_.size() || count > col32_.size() - off) return false;
      for (std::size_t q = 0; q < count; ++q)
        if (col32_[off + q] != col_idx[k0 + static_cast<index_t>(q)])
          return false;
    } else {
      if (off > col16_.size() || count > col16_.size() - off) return false;
      const index_t base = band_base_[b];
      for (std::size_t q = 0; q < count; ++q) {
        const index_t c =
            base + static_cast<index_t>(col16_[off + q]);
        if (c != col_idx[k0 + static_cast<index_t>(q)]) return false;
      }
    }
  }
  return true;
}

PackedTriangleIndex::Raw PackedTriangleIndex::to_raw() const {
  Raw r;
  r.rows = rows_;
  r.nnz = nnz_;
  r.band_shift = band_shift_;
  r.band_base = band_base_;
  r.band_wide = band_wide_;
  r.band_off = band_off_;
  r.band_gbase = band_gbase_;
  r.col16 = col16_;
  r.col32 = col32_;
  return r;
}

bool PackedTriangleIndex::from_raw(Raw raw, PackedTriangleIndex& out) {
  if (raw.rows < 0 || raw.nnz < 0) return false;
  if (raw.band_shift < 0 || raw.band_shift > 20) return false;
  const index_t band_rows = index_t{1} << raw.band_shift;
  const index_t bands =
      raw.rows == 0 ? 0 : (raw.rows + band_rows - 1) >> raw.band_shift;
  const auto nb = static_cast<std::size_t>(bands);
  if (raw.band_base.size() != nb || raw.band_wide.size() != nb ||
      raw.band_off.size() != nb || raw.band_gbase.size() != nb)
    return false;
  if (raw.col16.size() + raw.col32.size() !=
      static_cast<std::size_t>(raw.nnz))
    return false;
  for (std::size_t b = 0; b < nb; ++b) {
    if (raw.band_wide[b] > 1) return false;
    const std::size_t pool =
        raw.band_wide[b] ? raw.col32.size() : raw.col16.size();
    if (raw.band_off[b] > pool) return false;
  }
  out.rows_ = raw.rows;
  out.nnz_ = raw.nnz;
  out.band_shift_ = raw.band_shift;
  out.band_base_ = std::move(raw.band_base);
  out.band_wide_ = std::move(raw.band_wide);
  out.band_off_ = std::move(raw.band_off);
  out.band_gbase_ = std::move(raw.band_gbase);
  out.col16_ = std::move(raw.col16);
  out.col32_ = std::move(raw.col32);
  return true;
}

}  // namespace fbmpk
