#include "sparse/packed_tri.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "support/error.hpp"

namespace fbmpk {

namespace {

bool is_pow2(index_t v) { return v > 0 && (v & (v - 1)) == 0; }

index_t log2_exact(index_t v) {
  index_t s = 0;
  while ((index_t{1} << s) < v) ++s;
  return s;
}

/// Per-band metadata bytes as stored (base + wide flag + pool offset +
/// global row_ptr base).
constexpr std::size_t kBandMetaBytes =
    sizeof(index_t) + sizeof(std::uint8_t) + sizeof(std::uint64_t) +
    sizeof(index_t);

}  // namespace

PackedTriangleIndex PackedTriangleIndex::build_from(index_t rows,
                                                    const index_t* row_ptr,
                                                    const index_t* col_idx,
                                                    index_t band_rows) {
  FBMPK_CHECK_MSG(is_pow2(band_rows) && band_rows <= (index_t{1} << 20),
                  "band_rows must be a power of two in [1, 2^20], got "
                      << band_rows);
  FBMPK_CHECK(rows >= 0);

  PackedTriangleIndex p;
  p.rows_ = rows;
  p.band_shift_ = log2_exact(band_rows);
  p.nnz_ = rows == 0 ? 0 : row_ptr[rows];
  if (rows == 0) return p;

  const index_t bands =
      (rows + band_rows - 1) >> p.band_shift_;
  p.band_base_.resize(static_cast<std::size_t>(bands));
  p.band_wide_.resize(static_cast<std::size_t>(bands));
  p.band_off_.resize(static_cast<std::size_t>(bands));
  p.band_gbase_.resize(static_cast<std::size_t>(bands));

  for (index_t b = 0; b < bands; ++b) {
    const index_t r0 = b << p.band_shift_;
    const index_t r1 = std::min(rows, r0 + band_rows);
    const index_t k0 = row_ptr[r0];
    const index_t k1 = row_ptr[r1];
    p.band_gbase_[b] = k0;

    index_t cmin = 0, cmax = 0;
    if (k1 > k0) {
      cmin = cmax = col_idx[k0];
      for (index_t k = k0 + 1; k < k1; ++k) {
        cmin = std::min(cmin, col_idx[k]);
        cmax = std::max(cmax, col_idx[k]);
      }
    }
    const bool narrow = (k1 == k0) || (cmax - cmin <= kNarrowRange);
    if (narrow) {
      p.band_wide_[b] = 0;
      p.band_base_[b] = cmin;
      p.band_off_[b] = p.col16_.size();
      for (index_t k = k0; k < k1; ++k)
        p.col16_.push_back(static_cast<std::uint16_t>(col_idx[k] - cmin));
    } else {
      p.band_wide_[b] = 1;
      p.band_base_[b] = 0;
      p.band_off_[b] = p.col32_.size();
      for (index_t k = k0; k < k1; ++k) p.col32_.push_back(col_idx[k]);
    }
  }
  return p;
}

index_t PackedTriangleIndex::num_wide_bands() const {
  index_t w = 0;
  for (const std::uint8_t f : band_wide_) w += (f != 0);
  return w;
}

std::size_t PackedTriangleIndex::index_bytes() const {
  return col16_.size() * sizeof(std::uint16_t) +
         col32_.size() * sizeof(index_t) +
         band_wide_.size() * kBandMetaBytes;
}

double PackedTriangleIndex::bytes_per_nnz() const {
  if (nnz_ == 0) return static_cast<double>(sizeof(index_t));
  return static_cast<double>(index_bytes()) / static_cast<double>(nnz_);
}

bool PackedTriangleIndex::matches(index_t rows, const index_t* row_ptr,
                                  const index_t* col_idx) const {
  if (rows != rows_) return false;
  const index_t nnz = rows == 0 ? 0 : row_ptr[rows];
  if (nnz != nnz_) return false;
  if (rows == 0) return true;

  const index_t band_rows = index_t{1} << band_shift_;
  const index_t bands = (rows + band_rows - 1) >> band_shift_;
  if (static_cast<std::size_t>(bands) != band_wide_.size() ||
      static_cast<std::size_t>(bands) != band_base_.size() ||
      static_cast<std::size_t>(bands) != band_off_.size() ||
      static_cast<std::size_t>(bands) != band_gbase_.size())
    return false;

  for (index_t b = 0; b < bands; ++b) {
    const index_t r0 = b << band_shift_;
    const index_t r1 = std::min(rows, r0 + band_rows);
    const index_t k0 = row_ptr[r0];
    const index_t k1 = row_ptr[r1];
    if (band_gbase_[b] != k0) return false;
    const std::size_t count = static_cast<std::size_t>(k1 - k0);
    const std::size_t off = band_off_[b];
    if (band_wide_[b]) {
      if (off > col32_.size() || count > col32_.size() - off) return false;
      for (std::size_t q = 0; q < count; ++q)
        if (col32_[off + q] != col_idx[k0 + static_cast<index_t>(q)])
          return false;
    } else {
      if (off > col16_.size() || count > col16_.size() - off) return false;
      const index_t base = band_base_[b];
      for (std::size_t q = 0; q < count; ++q) {
        const index_t c =
            base + static_cast<index_t>(col16_[off + q]);
        if (c != col_idx[k0 + static_cast<index_t>(q)]) return false;
      }
    }
  }
  return true;
}

PackedTriangleIndex::Raw PackedTriangleIndex::to_raw() const {
  Raw r;
  r.rows = rows_;
  r.nnz = nnz_;
  r.band_shift = band_shift_;
  r.band_base = band_base_;
  r.band_wide = band_wide_;
  r.band_off = band_off_;
  r.band_gbase = band_gbase_;
  r.col16 = col16_;
  r.col32 = col32_;
  return r;
}

bool PackedTriangleIndex::from_raw(Raw raw, PackedTriangleIndex& out) {
  if (raw.rows < 0 || raw.nnz < 0) return false;
  if (raw.band_shift < 0 || raw.band_shift > 20) return false;
  const index_t band_rows = index_t{1} << raw.band_shift;
  const index_t bands =
      raw.rows == 0 ? 0 : (raw.rows + band_rows - 1) >> raw.band_shift;
  const auto nb = static_cast<std::size_t>(bands);
  if (raw.band_base.size() != nb || raw.band_wide.size() != nb ||
      raw.band_off.size() != nb || raw.band_gbase.size() != nb)
    return false;
  if (raw.col16.size() + raw.col32.size() !=
      static_cast<std::size_t>(raw.nnz))
    return false;
  for (std::size_t b = 0; b < nb; ++b) {
    if (raw.band_wide[b] > 1) return false;
    const std::size_t pool =
        raw.band_wide[b] ? raw.col32.size() : raw.col16.size();
    if (raw.band_off[b] > pool) return false;
  }
  out.rows_ = raw.rows;
  out.nnz_ = raw.nnz;
  out.band_shift_ = raw.band_shift;
  out.band_base_ = std::move(raw.band_base);
  out.band_wide_ = std::move(raw.band_wide);
  out.band_off_ = std::move(raw.band_off);
  out.band_gbase_ = std::move(raw.band_gbase);
  out.col16_ = std::move(raw.col16);
  out.col32_ = std::move(raw.col32);
  return true;
}

const char* precision_name(ValuePrecision p) {
  switch (p) {
    case ValuePrecision::kFp64:
      return "fp64";
    case ValuePrecision::kFp32:
      return "fp32";
    case ValuePrecision::kSplit:
      return "split";
  }
  return "unknown";
}

ValuePrecision parse_precision(const std::string& name) {
  if (name == "fp64") return ValuePrecision::kFp64;
  if (name == "fp32") return ValuePrecision::kFp32;
  if (name == "split") return ValuePrecision::kSplit;
  FBMPK_FAIL(ErrorCode::kUnsupported, "unknown value precision '"
                                          << name
                                          << "' (want fp64|fp32|split)");
}

bool values_fit_fp32(std::span<const double> values) {
  constexpr double kMax =
      static_cast<double>(std::numeric_limits<float>::max());
  for (const double v : values)
    if (!std::isfinite(v) || std::abs(v) > kMax) return false;
  return true;
}

PackedTriangleValues PackedTriangleValues::build(
    std::span<const double> values, ValuePrecision p) {
  PackedTriangleValues out;
  out.prec_ = p;
  out.count_ = values.size();
  if (p == ValuePrecision::kFp64) return out;

  if (p == ValuePrecision::kFp32) {
    out.f32_.resize(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      out.f32_[i] = static_cast<float>(values[i]);
      if (static_cast<double>(out.f32_[i]) != values[i])
        out.lossless_ = false;
    }
    return out;
  }

  out.hi_.resize(values.size());
  out.lo_.resize(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    split_value(values[i], out.hi_[i], out.lo_[i]);
    if (join_split(out.hi_[i], out.lo_[i]) != values[i])
      out.lossless_ = false;
  }
  return out;
}

std::size_t PackedTriangleValues::value_bytes() const {
  return (f32_.size() + hi_.size() + lo_.size()) * sizeof(float);
}

bool PackedTriangleValues::matches(std::span<const double> values) const {
  if (values.size() != count_) return false;
  const PackedTriangleValues re = build(values, prec_);
  if (re.lossless_ != lossless_ || re.f32_.size() != f32_.size() ||
      re.hi_.size() != hi_.size() || re.lo_.size() != lo_.size())
    return false;
  // Bit-level comparison: float == would treat differing NaN payloads
  // (or -0.0 vs 0.0) inconsistently with what the kernels actually read.
  const auto same = [](const AlignedVector<float>& a,
                       const AlignedVector<float>& b) {
    return a.empty() ||
           std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
  };
  return same(re.f32_, f32_) && same(re.hi_, hi_) && same(re.lo_, lo_);
}

PackedTriangleValues::Raw PackedTriangleValues::to_raw() const {
  Raw r;
  r.precision = static_cast<std::uint8_t>(prec_);
  r.lossless = lossless_ ? 1 : 0;
  r.count = count_;
  r.f32 = f32_;
  r.hi = hi_;
  r.lo = lo_;
  return r;
}

bool PackedTriangleValues::from_raw(Raw raw, PackedTriangleValues& out) {
  if (raw.precision > 2 || raw.lossless > 1) return false;
  const auto p = static_cast<ValuePrecision>(raw.precision);
  const auto n = static_cast<std::size_t>(raw.count);
  switch (p) {
    case ValuePrecision::kFp64:
      if (!raw.f32.empty() || !raw.hi.empty() || !raw.lo.empty())
        return false;
      break;
    case ValuePrecision::kFp32:
      if (raw.f32.size() != n || !raw.hi.empty() || !raw.lo.empty())
        return false;
      break;
    case ValuePrecision::kSplit:
      if (!raw.f32.empty() || raw.hi.size() != n || raw.lo.size() != n)
        return false;
      break;
  }
  out.prec_ = p;
  out.lossless_ = raw.lossless == 1;
  out.count_ = n;
  out.f32_ = std::move(raw.f32);
  out.hi_ = std::move(raw.hi);
  out.lo_ = std::move(raw.lo);
  return true;
}

}  // namespace fbmpk
