// Compressed column-index storage for triangular factors (PR 3).
//
// FBMPK sweeps are memory-bound (PAPER.md §III): per nonzero the plain
// CSR triangles move 4 index bytes + 8 value bytes. Most suite matrices
// are banded after ABMC reordering, so within a small run of rows the
// columns span far less than 2^16 — a per-band base plus u16 offsets
// halves the index stream. Bands whose span exceeds the narrow range
// keep full-width `index_t` columns, so compression is always lossless
// and never rejected.
//
// The packed index is a *sidecar*: it replaces only the column stream.
// `row_ptr` and `values` of the owning CsrMatrix stay authoritative and
// are shared with the packed kernels, so building the sidecar costs one
// pass and no value duplication. Decoding is random-access per row
// (offsets, not cumulative deltas), which is what the SIMD kernels in
// kernels/dispatch.cpp need to widen the u16 lane loads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "sparse/csr.hpp"
#include "support/aligned_buffer.hpp"

namespace fbmpk {

/// How triangle/diagonal values are stored for the sweeps (PR 4).
/// Accumulation is always fp64; only the *stored* value stream narrows.
enum class ValuePrecision : std::uint8_t {
  kFp64 = 0,  ///< plain doubles (default; the exact representation)
  kFp32 = 1,  ///< single floats — 4 bytes/nnz, bounded rounding error
  kSplit = 2, ///< hi/lo float pair whose sum reconstructs the double;
              ///< lossless when the value fits 2x24 mantissa bits
};

/// "fp64" / "fp32" / "split".
const char* precision_name(ValuePrecision p);

/// Inverse of precision_name; throws kUnsupported on unknown names.
ValuePrecision parse_precision(const std::string& name);

/// Bytes one stored matrix value costs under a precision (the traffic
/// model's 4/8/8 per-nnz value term).
constexpr std::size_t precision_value_bytes(ValuePrecision p) {
  return p == ValuePrecision::kFp32 ? sizeof(float) : sizeof(double);
}

/// Split a double into the hi/lo float pair: hi = fl32(v),
/// lo = fl32(v - hi). join_split(hi, lo) == v whenever v's mantissa
/// fits the combined 48 bits (and v is within float range).
inline void split_value(double v, float& hi, float& lo) {
  hi = static_cast<float>(v);
  lo = static_cast<float>(v - static_cast<double>(hi));
}
inline double join_split(float hi, float lo) {
  return static_cast<double>(hi) + static_cast<double>(lo);
}

/// Column-index sidecar for one CSR triangle, compressed per row-band.
class PackedTriangleIndex {
 public:
  /// Rows per band. Must be a power of two; 64 keeps the per-band
  /// metadata (~16 bytes) well under 1% of a band's index stream while
  /// staying narrow enough that banded matrices compress every band.
  static constexpr index_t kDefaultBandRows = 64;
  /// Largest column offset a narrow band can encode.
  static constexpr index_t kNarrowRange = 65535;

  PackedTriangleIndex() = default;

  /// Build the sidecar from a CSR triangle (or any CSR matrix).
  template <class T>
  static PackedTriangleIndex build(const CsrMatrix<T>& m,
                                   index_t band_rows = kDefaultBandRows) {
    return build_from(m.rows(), m.row_ptr().data(), m.col_idx().data(),
                      band_rows);
  }

  static PackedTriangleIndex build_from(index_t rows, const index_t* row_ptr,
                                        const index_t* col_idx,
                                        index_t band_rows = kDefaultBandRows);

  /// Decoded view of one row's column stream. Exactly one of c16/c32 is
  /// non-null; `base` is the band's column base (0 for wide bands).
  struct RowView {
    const std::uint16_t* c16 = nullptr;
    const index_t* c32 = nullptr;
    index_t base = 0;
  };

  /// View of row i's columns. `lo` must be the owning matrix's
  /// row_ptr[i] — the sidecar does not duplicate the row pointers.
  RowView row(index_t i, index_t lo) const {
    const index_t b = i >> band_shift_;
    const std::size_t off =
        band_off_[b] + static_cast<std::size_t>(lo - band_gbase_[b]);
    RowView v;
    if (band_wide_[b]) {
      v.c32 = col32_.data() + off;
    } else {
      v.c16 = col16_.data() + off;
      v.base = band_base_[b];
    }
    return v;
  }

  index_t rows() const { return rows_; }
  index_t nnz() const { return nnz_; }
  index_t band_rows() const { return index_t{1} << band_shift_; }
  index_t num_bands() const {
    return static_cast<index_t>(band_wide_.size());
  }
  index_t num_wide_bands() const;
  bool empty() const { return rows_ == 0; }

  /// Bytes of the compressed column stream + band metadata (the part of
  /// matrix traffic this structure changes; values/row_ptr are shared).
  std::size_t index_bytes() const;
  /// Average index bytes per nonzero (sizeof(index_t) when empty or
  /// nothing compressed). Feeds perf/traffic_model.
  double bytes_per_nnz() const;

  /// Decode-compare against a CSR column stream: true iff this sidecar
  /// reproduces exactly `col_idx` under `row_ptr`. Used to re-validate
  /// deserialized sidecars (plan format v4 PCKD section) — any
  /// structural or content mismatch is reported as false rather than
  /// trusted. Bounds-safe on arbitrary (attacker-controlled) contents.
  bool matches(index_t rows, const index_t* row_ptr,
               const index_t* col_idx) const;

  // --- serialization access (core/plan_io.cpp) -----------------------
  struct Raw {
    index_t rows = 0;
    index_t nnz = 0;
    index_t band_shift = 0;
    AlignedVector<index_t> band_base;
    AlignedVector<std::uint8_t> band_wide;
    AlignedVector<std::uint64_t> band_off;
    AlignedVector<index_t> band_gbase;
    AlignedVector<std::uint16_t> col16;
    AlignedVector<index_t> col32;
  };
  Raw to_raw() const;
  /// Reassemble from serialized parts. Performs structural validation
  /// only (sizes, offsets in range); callers must decode-compare via
  /// matches() before trusting the contents.
  static bool from_raw(Raw raw, PackedTriangleIndex& out);

 private:
  index_t rows_ = 0;
  index_t nnz_ = 0;
  index_t band_shift_ = 6;  // log2(band rows)
  AlignedVector<index_t> band_base_;        // narrow bands: min column
  AlignedVector<std::uint8_t> band_wide_;   // 1 = full-width fallback
  AlignedVector<std::uint64_t> band_off_;   // element offset into pool
  AlignedVector<index_t> band_gbase_;       // row_ptr at band's first row
  AlignedVector<std::uint16_t> col16_;      // narrow pool: col - base
  AlignedVector<index_t> col32_;            // wide pool: absolute cols
};

/// Reduced-precision value sidecar for one triangle (or the dense
/// diagonal). Like the index sidecar, the owning CsrMatrix's fp64
/// `values` stay authoritative — this stream is a build-time re-encode
/// the kernels read instead, and deserialized sidecars are re-encoded
/// and compared before being trusted (plan format v5 VALP section).
class PackedTriangleValues {
 public:
  PackedTriangleValues() = default;

  /// Encode an fp64 value stream at `p`. kFp64 yields an empty store
  /// (the kernels then read the CSR values directly). Values must be
  /// finite and within float range for kFp32/kSplit — the caller
  /// (MpkPlan::build) rejects matrices outside it.
  static PackedTriangleValues build(std::span<const double> values,
                                    ValuePrecision p);

  ValuePrecision precision() const { return prec_; }
  bool empty() const { return prec_ == ValuePrecision::kFp64; }
  std::size_t size() const { return count_; }
  /// True iff decoding reproduces every source double bit-for-bit.
  /// Trivially true for fp64; for split it holds on many matrices
  /// (values with <= 48 significant mantissa bits).
  bool lossless() const { return lossless_; }

  const float* f32() const { return f32_.data(); }  ///< kFp32 stream
  const float* hi() const { return hi_.data(); }    ///< kSplit hi
  const float* lo() const { return lo_.data(); }    ///< kSplit lo

  /// Bytes of the reduced value stream (0 for fp64 — no sidecar).
  std::size_t value_bytes() const;

  /// Re-encode `values` at this precision and compare bitwise — the
  /// decode-compare used to validate deserialized sidecars. False on
  /// any size, precision-derived, or content mismatch.
  bool matches(std::span<const double> values) const;

  // --- serialization access (core/plan_io.cpp) -----------------------
  struct Raw {
    std::uint8_t precision = 0;
    std::uint8_t lossless = 1;
    std::uint64_t count = 0;
    AlignedVector<float> f32;
    AlignedVector<float> hi;
    AlignedVector<float> lo;
  };
  Raw to_raw() const;
  /// Structural validation only (precision in range, stream sizes
  /// consistent); callers must decode-compare via matches().
  static bool from_raw(Raw raw, PackedTriangleValues& out);

 private:
  ValuePrecision prec_ = ValuePrecision::kFp64;
  bool lossless_ = true;
  std::size_t count_ = 0;
  AlignedVector<float> f32_;  ///< kFp32 pool
  AlignedVector<float> hi_;   ///< kSplit high parts
  AlignedVector<float> lo_;   ///< kSplit low parts
};

/// Value sidecars for both triangles and the diagonal of a split.
struct PackedSplitValues {
  ValuePrecision precision = ValuePrecision::kFp64;
  PackedTriangleValues lower;
  PackedTriangleValues upper;
  PackedTriangleValues diag;

  bool empty() const { return precision == ValuePrecision::kFp64; }
  bool lossless() const {
    return lower.lossless() && upper.lossless() && diag.lossless();
  }
  std::size_t value_bytes() const {
    return lower.value_bytes() + upper.value_bytes() + diag.value_bytes();
  }
};

/// True iff every value is finite and within float magnitude range —
/// the precondition for kFp32/kSplit storage.
bool values_fit_fp32(std::span<const double> values);

/// Packed sidecars for both triangles of a TriangularSplit.
struct PackedSplitIndex {
  PackedTriangleIndex lower;
  PackedTriangleIndex upper;

  bool empty() const { return lower.empty() && upper.empty(); }
  std::size_t index_bytes() const {
    return lower.index_bytes() + upper.index_bytes();
  }
  /// Combined average over both triangles.
  double bytes_per_nnz() const {
    const double nnz =
        static_cast<double>(lower.nnz()) + static_cast<double>(upper.nnz());
    if (nnz == 0.0) return static_cast<double>(sizeof(index_t));
    return static_cast<double>(index_bytes()) / nnz;
  }
};

}  // namespace fbmpk
