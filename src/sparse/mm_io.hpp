// Matrix Market (.mtx) reader/writer.
//
// Supports the coordinate format with real/integer/pattern fields and
// general/symmetric/skew-symmetric symmetry — the subset covering the
// SuiteSparse collection the paper evaluates on. Symmetric files are
// expanded to a full (general) matrix on read, matching what the
// kernels expect; skew-symmetric files mirror with negated values.
//
// This is an untrusted-input boundary: every failure throws a typed
// fbmpk::Error — kIo (cannot open), kParse (malformed text, with the
// offending line number), kUnsupported (complex/array/hermitian
// variants), kInvalidMatrix (out-of-range indices), kResourceLimit
// (dimensions or nnz that overflow the 32-bit index type).
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/validate.hpp"

namespace fbmpk {

/// Metadata parsed from the MatrixMarket banner.
struct MatrixMarketHeader {
  bool pattern = false;    ///< entries have no value field (implicit 1.0)
  bool symmetric = false;  ///< file stores only the lower triangle
  bool skew = false;       ///< skew-symmetric: mirrored entries negated
  index_t rows = 0;
  index_t cols = 0;
  std::size_t declared_nnz = 0;  ///< entry count declared in the size line
};

/// Read a MatrixMarket stream into COO. Symmetric storage is expanded
/// (the mirrored entry is added for every off-diagonal; negated for
/// skew-symmetric). Throws on malformed input or unsupported variants
/// (complex, hermitian, array format).
CooMatrix<double> read_matrix_market(std::istream& in,
                                     MatrixMarketHeader* header = nullptr);

/// As above, then run the matrix sanitizer on the parsed triplets under
/// `sanitize_opts` (kRepair mutates, kReject throws on defects). The
/// defect counts land in `*report` when given.
CooMatrix<double> read_matrix_market(std::istream& in,
                                     const SanitizeOptions& sanitize_opts,
                                     MatrixMarketHeader* header = nullptr,
                                     SanitizeReport* report = nullptr);

/// Convenience: read a .mtx file into CSR.
CsrMatrix<double> read_matrix_market_file(const std::string& path,
                                          MatrixMarketHeader* header = nullptr);

/// Convenience: read + sanitize a .mtx file into CSR.
CsrMatrix<double> read_matrix_market_file(const std::string& path,
                                          const SanitizeOptions& sanitize_opts,
                                          MatrixMarketHeader* header = nullptr,
                                          SanitizeReport* report = nullptr);

/// Non-throwing variant: the Error that read_matrix_market_file would
/// throw comes back in the Expected instead, so batch ingestion can
/// branch on Expected::code() (skip kUnsupported files, abort on kIo)
/// without exception plumbing.
Expected<CsrMatrix<double>> try_read_matrix_market_file(
    const std::string& path, MatrixMarketHeader* header = nullptr);

/// Write a CSR matrix as a general real coordinate MatrixMarket stream.
void write_matrix_market(std::ostream& out, const CsrMatrix<double>& a);

/// Convenience: write a .mtx file.
void write_matrix_market_file(const std::string& path,
                              const CsrMatrix<double>& a);

}  // namespace fbmpk
