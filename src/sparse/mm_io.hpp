// Matrix Market (.mtx) reader/writer.
//
// Supports the coordinate format with real/integer/pattern fields and
// general/symmetric symmetry — the subset covering the SuiteSparse
// collection the paper evaluates on. Symmetric files are expanded to a
// full (general) matrix on read, matching what the kernels expect.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace fbmpk {

/// Metadata parsed from the MatrixMarket banner.
struct MatrixMarketHeader {
  bool pattern = false;    ///< entries have no value field (implicit 1.0)
  bool symmetric = false;  ///< file stores only the lower triangle
  index_t rows = 0;
  index_t cols = 0;
  std::size_t declared_nnz = 0;  ///< entry count declared in the size line
};

/// Read a MatrixMarket stream into COO. Symmetric storage is expanded
/// (the mirrored entry is added for every off-diagonal). Throws on
/// malformed input or unsupported variants (complex, array format).
CooMatrix<double> read_matrix_market(std::istream& in,
                                     MatrixMarketHeader* header = nullptr);

/// Convenience: read a .mtx file into CSR.
CsrMatrix<double> read_matrix_market_file(const std::string& path,
                                          MatrixMarketHeader* header = nullptr);

/// Write a CSR matrix as a general real coordinate MatrixMarket stream.
void write_matrix_market(std::ostream& out, const CsrMatrix<double>& a);

/// Convenience: write a .mtx file.
void write_matrix_market_file(const std::string& path,
                              const CsrMatrix<double>& a);

}  // namespace fbmpk
