// Fast-mode FBMPK sweeps: dispatched row kernels + packed indices.
//
// The exact sweeps in fbmpk.hpp / fbmpk_parallel.hpp are the numerical
// reference — fixed scalar operation order, bitwise identical between
// serial and every parallel schedule. This header provides the `fast`
// flavour: the same head / forward-backward-pair / tail pipeline, but
// each row dot goes through a RowOps table chosen at runtime
// (kernels/dispatch.hpp) and may read the narrow packed column stream
// (sparse/packed_tri.hpp) instead of full-width CSR indices.
//
// Numerical contract: a fast sweep differs from exact only inside
// single row dots (lane-parallel partial sums). Per power p the error
// is bounded by m·eps·‖A‖∞^p·‖x‖∞ (m = max row nnz) and the test suite
// asserts ‖fast − exact‖∞ ≤ 4·k·m·eps·‖A‖∞^k·‖x‖∞. Determinism still
// holds in fast mode: every schedule (serial, barrier, engine) issues
// the same per-row kernel with the same arguments, so fast results are
// bitwise reproducible across schedules and runs on one machine.
//
// Accumulation is double-only (the dispatch tables accumulate fp64)
// and fast mode covers the BtB variant only — the split-vector
// ablation stays scalar. PR 4 adds reduced-precision *storage*: when
// the plan carries a PackedSplitValues sidecar (fp32 or split hi/lo),
// the row kernels read the narrow stream and widen per element; the
// diagonal follows the same precision through Rows::diag(i).
#pragma once

#include <span>
#include <utility>

#include "kernels/dispatch.hpp"
#include "kernels/fbmpk.hpp"
#include "kernels/fbmpk_parallel.hpp"
#include "sparse/packed_tri.hpp"

namespace fbmpk {

/// Row-dot frontend for one triangle: plain CSR columns or the packed
/// sidecar (u16 narrow bands with full-width fallback), routed through
/// a backend's RowOps. Pointers are non-owning.
struct TriRowKernel {
  const index_t* rp = nullptr;
  const index_t* ci = nullptr;
  const double* va = nullptr;
  const PackedTriangleIndex* packed = nullptr;  ///< null = plain CSR
  const RowOps* ops = nullptr;
  int prefetch = 0;
  // Reduced-precision value streams (at most one active; both null =
  // read the fp64 CSR values). Set via make_dispatch_rows.
  const float* v32 = nullptr;  ///< kFp32 stream
  const float* vhi = nullptr;  ///< kSplit hi
  const float* vlo = nullptr;  ///< kSplit lo

  void dot2(index_t i, const double* xy, double& s0, double& s1) const {
    const index_t lo = rp[i];
    const index_t len = rp[i + 1] - lo;
    if (packed == nullptr) {
      if (v32 != nullptr)
        ops->dot2_btb_f32(ci + lo, v32 + lo, len, xy, prefetch, s0, s1);
      else if (vhi != nullptr)
        ops->dot2_btb_split(ci + lo, vhi + lo, vlo + lo, len, xy, prefetch,
                            s0, s1);
      else
        ops->dot2_btb(ci + lo, va + lo, len, xy, prefetch, s0, s1);
      return;
    }
    const auto v = packed->row(i, lo);
    if (v.c16 != nullptr) {
      if (v32 != nullptr)
        ops->dot2_btb_u16_f32(v.c16, v32 + lo, len, v.base, xy, prefetch, s0,
                              s1);
      else if (vhi != nullptr)
        ops->dot2_btb_u16_split(v.c16, vhi + lo, vlo + lo, len, v.base, xy,
                                prefetch, s0, s1);
      else
        ops->dot2_btb_u16(v.c16, va + lo, len, v.base, xy, prefetch, s0, s1);
    } else {
      if (v32 != nullptr)
        ops->dot2_btb_f32(v.c32, v32 + lo, len, xy, prefetch, s0, s1);
      else if (vhi != nullptr)
        ops->dot2_btb_split(v.c32, vhi + lo, vlo + lo, len, xy, prefetch, s0,
                            s1);
      else
        ops->dot2_btb(v.c32, va + lo, len, xy, prefetch, s0, s1);
    }
  }

  void dot1(index_t i, const double* xy, int offset, double& s) const {
    const index_t lo = rp[i];
    const index_t len = rp[i + 1] - lo;
    if (packed == nullptr) {
      if (v32 != nullptr)
        ops->dot1_btb_f32(ci + lo, v32 + lo, len, xy, offset, prefetch, s);
      else if (vhi != nullptr)
        ops->dot1_btb_split(ci + lo, vhi + lo, vlo + lo, len, xy, offset,
                            prefetch, s);
      else
        ops->dot1_btb(ci + lo, va + lo, len, xy, offset, prefetch, s);
      return;
    }
    const auto v = packed->row(i, lo);
    if (v.c16 != nullptr) {
      if (v32 != nullptr)
        ops->dot1_btb_u16_f32(v.c16, v32 + lo, len, v.base, xy, offset,
                              prefetch, s);
      else if (vhi != nullptr)
        ops->dot1_btb_u16_split(v.c16, vhi + lo, vlo + lo, len, v.base, xy,
                                offset, prefetch, s);
      else
        ops->dot1_btb_u16(v.c16, va + lo, len, v.base, xy, offset, prefetch,
                          s);
    } else {
      if (v32 != nullptr)
        ops->dot1_btb_f32(v.c32, v32 + lo, len, xy, offset, prefetch, s);
      else if (vhi != nullptr)
        ops->dot1_btb_split(v.c32, vhi + lo, vlo + lo, len, xy, offset,
                            prefetch, s);
      else
        ops->dot1_btb(v.c32, va + lo, len, xy, offset, prefetch, s);
    }
  }

  /// Value of nonzero q as the sweep will read it (for the warm pass).
  double value_at(index_t q) const {
    if (v32 != nullptr) return static_cast<double>(v32[q]);
    if (vhi != nullptr)
      return static_cast<double>(vhi[q]) + static_cast<double>(vlo[q]);
    return va[q];
  }

  /// Stream row i's index/value data into `acc` (engine NUMA warm pass).
  void warm(index_t i, double& acc) const {
    const index_t lo = rp[i];
    const index_t hi = rp[i + 1];
    if (packed == nullptr) {
      for (index_t q = lo; q < hi; ++q)
        acc += value_at(q) + static_cast<double>(ci[q]);
      return;
    }
    const auto v = packed->row(i, lo);
    for (index_t q = 0; q < hi - lo; ++q) {
      const index_t c = v.c16 != nullptr
                            ? v.base + static_cast<index_t>(v.c16[q])
                            : v.c32[q];
      acc += value_at(lo + q) + static_cast<double>(c);
    }
  }
};

/// Row policy (see fbmpk_parallel.hpp's ScalarRows for the exact twin)
/// that routes both triangles through dispatched kernels.
struct DispatchRows {
  TriRowKernel l;
  TriRowKernel u;
  // Diagonal stream at the plan's value precision (exactly one of d64
  // / d32 / (dhi,dlo) is active).
  const double* d64 = nullptr;
  const float* d32 = nullptr;
  const float* dhi = nullptr;
  const float* dlo = nullptr;

  void l_dot2(index_t i, const double* xy, double& s0, double& s1) const {
    l.dot2(i, xy, s0, s1);
  }
  void u_dot2(index_t i, const double* xy, double& s0, double& s1) const {
    u.dot2(i, xy, s0, s1);
  }
  void l_dot1(index_t i, const double* xy, int offset, double& s) const {
    l.dot1(i, xy, offset, s);
  }
  void u_dot1(index_t i, const double* xy, int offset, double& s) const {
    u.dot1(i, xy, offset, s);
  }
  /// Diagonal entry i, widened to double from the stored precision.
  double diag(index_t i) const {
    if (d32 != nullptr) return static_cast<double>(d32[i]);
    if (dhi != nullptr)
      return static_cast<double>(dhi[i]) + static_cast<double>(dlo[i]);
    return d64[i];
  }
  void warm(index_t i, double& acc) const {
    l.warm(i, acc);
    u.warm(i, acc);
  }
};

/// Assemble the fast row policy for a split. `packed` may be null
/// (plain indices), as may `values` (fp64 storage); `ops` must outlive
/// the returned value (the tables from row_kernels() are
/// process-lifetime statics), and so must `values`.
inline DispatchRows make_dispatch_rows(const TriangularSplit<double>& s,
                                       const PackedSplitIndex* packed,
                                       const PackedSplitValues* values,
                                       const RowOps& ops, int prefetch) {
  DispatchRows r;
  r.l = {s.lower.row_ptr().data(), s.lower.col_idx().data(),
         s.lower.values().data(),
         packed != nullptr ? &packed->lower : nullptr, &ops, prefetch};
  r.u = {s.upper.row_ptr().data(), s.upper.col_idx().data(),
         s.upper.values().data(),
         packed != nullptr ? &packed->upper : nullptr, &ops, prefetch};
  r.d64 = s.diag.data();
  if (values != nullptr && !values->empty()) {
    if (values->precision == ValuePrecision::kFp32) {
      r.l.v32 = values->lower.f32();
      r.u.v32 = values->upper.f32();
      r.d64 = nullptr;
      r.d32 = values->diag.f32();
    } else {
      r.l.vhi = values->lower.hi();
      r.l.vlo = values->lower.lo();
      r.u.vhi = values->upper.hi();
      r.u.vlo = values->upper.lo();
      r.d64 = nullptr;
      r.dhi = values->diag.hi();
      r.dlo = values->diag.lo();
    }
  }
  return r;
}

/// Serial fast sweep — fbmpk_sweep_btb's pipeline with dispatched row
/// dots. emit(p, i, v) fires once per power p in [1, k], row i.
///
/// Generic over the iterate element TI: double for single-vector runs,
/// Pack<double, B> for batched multi-vector runs (the xy array then IS
/// the raw xy[2·B·n] vector-major layout). `x0` only needs size() and
/// operator[] returning something convertible to TI — a span for the
/// single-vector case, a gather adapter reading straight from request
/// buffers for the batched case (no staging copy).
template <class TI, class Rows, class X0, class Emit>
void fbmpk_sweep_btb_fast(const TriangularSplit<double>& s, const Rows& rows,
                          const X0& x0, int k, FbWorkspace<TI>& ws,
                          Emit&& emit) {
  const index_t n = s.lower.rows();
  FBMPK_CHECK(s.upper.rows() == n &&
              s.diag.size() == static_cast<std::size_t>(n));
  FBMPK_CHECK(x0.size() == static_cast<std::size_t>(n));
  FBMPK_CHECK(k >= 1);
  ws.resize(n);

  TI* xy = ws.xy.data();
  TI* tmp = ws.tmp.data();

  for (index_t i = 0; i < n; ++i) xy[2 * i] = x0[i];
  for (index_t i = 0; i < n; ++i) {
    TI sum{};
    rows.u_dot1(i, xy, 0, sum);
    tmp[i] = sum;
  }

  const int pairs = k / 2;
  for (int it = 0; it < pairs; ++it) {
    const int p_odd = 2 * it + 1;
    const int p_even = 2 * it + 2;

    for (index_t i = 0; i < n; ++i) {
      const double di = rows.diag(i);
      TI sum0 = madd(di, xy[2 * i], tmp[i]);
      TI sum1{};
      rows.l_dot2(i, xy, sum0, sum1);
      xy[2 * i + 1] = sum0;
      emit(p_odd, i, sum0);
      tmp[i] = madd(di, sum0, sum1);
    }

    const bool prime_next = !(it == pairs - 1 && k % 2 == 0);
    if (prime_next) {
      for (index_t i = n; i-- > 0;) {
        TI sum0 = tmp[i];
        TI sum1{};
        // dot2 accumulates (even, odd); backward wants sum0 += odd,
        // sum1 += even — same output swap as the exact sweep.
        rows.u_dot2(i, xy, sum1, sum0);
        xy[2 * i] = sum0;
        emit(p_even, i, sum0);
        tmp[i] = sum1;
      }
    } else {
      for (index_t i = n; i-- > 0;) {
        TI sum0 = tmp[i];
        rows.u_dot1(i, xy, 1, sum0);
        xy[2 * i] = sum0;
        emit(p_even, i, sum0);
      }
    }
  }

  if (k % 2 == 1) {
    for (index_t i = 0; i < n; ++i) {
      TI sum = madd(rows.diag(i), xy[2 * i], tmp[i]);
      rows.l_dot1(i, xy, 0, sum);
      emit(k, i, sum);
    }
  }
}

/// y = A^k x0, serial fast. k = 0 copies x0.
template <class Rows>
void fbmpk_power_fast(const TriangularSplit<double>& s, const Rows& rows,
                      std::span<const double> x0, int k, std::span<double> y,
                      FbWorkspace<double>& ws) {
  FBMPK_CHECK(y.size() == x0.size());
  FBMPK_CHECK(k >= 0);
  if (k == 0) {
    std::copy(x0.begin(), x0.end(), y.begin());
    return;
  }
  double* yp = y.data();
  fbmpk_sweep_btb_fast(s, rows, x0, k, ws, [&](int p, index_t i, double v) {
    if (p == k) yp[i] = v;
  });
}

/// Krylov basis, serial fast: out[p*n + i] = (A^p x0)[i], p in [0, k].
template <class Rows>
void fbmpk_power_all_fast(const TriangularSplit<double>& s, const Rows& rows,
                          std::span<const double> x0, int k,
                          std::span<double> out, FbWorkspace<double>& ws) {
  const auto n = x0.size();
  FBMPK_CHECK(out.size() == n * static_cast<std::size_t>(k + 1));
  std::copy(x0.begin(), x0.end(), out.begin());
  if (k == 0) return;
  double* op = out.data();
  fbmpk_sweep_btb_fast(s, rows, x0, k, ws, [&](int p, index_t i, double v) {
    op[static_cast<std::size_t>(p) * n + i] = v;
  });
}

/// y = sum_p coeffs[p] A^p x0, serial fast.
template <class Rows>
void fbmpk_polynomial_fast(const TriangularSplit<double>& s, const Rows& rows,
                           std::span<const double> coeffs,
                           std::span<const double> x0, std::span<double> y,
                           FbWorkspace<double>& ws) {
  FBMPK_CHECK(!coeffs.empty());
  FBMPK_CHECK(y.size() == x0.size());
  const int k = static_cast<int>(coeffs.size()) - 1;
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = coeffs[0] * x0[i];
  if (k == 0) return;
  double* yp = y.data();
  const double* cp = coeffs.data();
  fbmpk_sweep_btb_fast(s, rows, x0, k, ws, [&](int p, index_t i, double v) {
    yp[i] += cp[p] * v;
  });
}

}  // namespace fbmpk
