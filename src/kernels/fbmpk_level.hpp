// Level-scheduled parallel FBMPK — the alternative scheduler from the
// paper's discussion (§VII), built on reorder/level_schedule.hpp.
//
// Unlike the ABMC kernel this operates on the ORIGINAL matrix order: the
// forward sweep executes dependency levels of L in sequence (rows within
// a level in parallel), the backward sweep executes levels of U. The
// per-row arithmetic is the shared fb_detail code, so results are
// bitwise identical to serial FBMPK on the same matrix.
#pragma once

#include <span>

#include "kernels/fb_detail.hpp"
#include "kernels/fbmpk.hpp"
#include "reorder/level_schedule.hpp"
#include "sparse/split.hpp"
#include "support/error.hpp"

namespace fbmpk {

/// Forward+backward schedules for one split matrix.
struct LevelSchedulePair {
  LevelSchedule forward;   ///< levels of L (top-down sweep)
  LevelSchedule backward;  ///< levels of U (bottom-up sweep)

  template <class T>
  static LevelSchedulePair of(const TriangularSplit<T>& s) {
    return {forward_levels(s.lower), backward_levels(s.upper)};
  }
};

/// Level-scheduled sweep; same Emit contract as the other kernels.
template <class T, class Emit>
void fbmpk_level_sweep(const TriangularSplit<T>& s,
                       const LevelSchedulePair& sched,
                       std::span<const T> x0, int k, FbWorkspace<T>& ws,
                       Emit&& emit) {
  const index_t n = s.lower.rows();
  FBMPK_CHECK(s.upper.rows() == n &&
              s.diag.size() == static_cast<std::size_t>(n));
  FBMPK_CHECK(x0.size() == static_cast<std::size_t>(n));
  FBMPK_CHECK(k >= 1);
  FBMPK_CHECK_MSG(
      sched.forward.rows.size() == static_cast<std::size_t>(n) &&
          sched.backward.rows.size() == static_cast<std::size_t>(n),
      "level schedule does not cover the matrix");
  ws.resize(n);

  const index_t* lrp = s.lower.row_ptr().data();
  const index_t* lci = s.lower.col_idx().data();
  const T* lva = s.lower.values().data();
  const index_t* urp = s.upper.row_ptr().data();
  const index_t* uci = s.upper.col_idx().data();
  const T* uva = s.upper.values().data();
  const T* d = s.diag.data();
  T* xy = ws.xy.data();
  T* tmp = ws.tmp.data();
  const T* x0p = x0.data();

  const int pairs = k / 2;
  NullTracer tr;

#ifdef _OPENMP
#pragma omp parallel default(shared)
#endif
  {
#ifdef _OPENMP
#pragma omp for schedule(static)
#endif
    for (index_t i = 0; i < n; ++i) xy[2 * i] = x0p[i];
#ifdef _OPENMP
#pragma omp for schedule(static)
#endif
    for (index_t i = 0; i < n; ++i) {
      T sum{};
      detail::row_dot1_btb(uci, uva, urp[i], urp[i + 1], xy, 0, sum, tr);
      tmp[i] = sum;
    }

    for (int it = 0; it < pairs; ++it) {
      const int p_odd = 2 * it + 1;
      const int p_even = 2 * it + 2;

      for (index_t l = 0; l < sched.forward.num_levels; ++l) {
#ifdef _OPENMP
#pragma omp for schedule(static)
#endif
        for (index_t r = sched.forward.level_ptr[l];
             r < sched.forward.level_ptr[l + 1]; ++r) {
          const index_t i = sched.forward.rows[r];
          T sum0 = tmp[i] + d[i] * xy[2 * i];
          T sum1{};
          detail::row_dot2_btb(lci, lva, lrp[i], lrp[i + 1], xy, sum0, sum1,
                               tr);
          xy[2 * i + 1] = sum0;
          emit(p_odd, i, sum0);
          tmp[i] = sum1 + d[i] * sum0;
        }  // barrier: level l done before l+1
      }

      const bool prime_next = !(it == pairs - 1 && k % 2 == 0);
      for (index_t l = 0; l < sched.backward.num_levels; ++l) {
#ifdef _OPENMP
#pragma omp for schedule(static)
#endif
        for (index_t r = sched.backward.level_ptr[l];
             r < sched.backward.level_ptr[l + 1]; ++r) {
          const index_t i = sched.backward.rows[r];
          T sum0 = tmp[i];
          if (prime_next) {
            T sum1{};
            detail::row_dot2_btb(uci, uva, urp[i], urp[i + 1], xy, sum1,
                                 sum0, tr);
            xy[2 * i] = sum0;
            emit(p_even, i, sum0);
            tmp[i] = sum1;
          } else {
            detail::row_dot1_btb(uci, uva, urp[i], urp[i + 1], xy, 1, sum0,
                                 tr);
            xy[2 * i] = sum0;
            emit(p_even, i, sum0);
          }
        }
      }
    }

    if (k % 2 == 1) {
#ifdef _OPENMP
#pragma omp for schedule(static)
#endif
      for (index_t i = 0; i < n; ++i) {
        T sum = tmp[i] + d[i] * xy[2 * i];
        detail::row_dot1_btb(lci, lva, lrp[i], lrp[i + 1], xy, 0, sum, tr);
        emit(k, i, sum);
      }
    }
  }
}

/// y = A^k x0 with the level schedule. k = 0 copies x0.
template <class T>
void fbmpk_level_power(const TriangularSplit<T>& s,
                       const LevelSchedulePair& sched, std::span<const T> x0,
                       int k, std::span<T> y, FbWorkspace<T>& ws) {
  FBMPK_CHECK(y.size() == x0.size());
  FBMPK_CHECK(k >= 0);
  if (k == 0) {
    std::copy(x0.begin(), x0.end(), y.begin());
    return;
  }
  T* yp = y.data();
  fbmpk_level_sweep(s, sched, x0, k, ws, [&](int p, index_t i, T v) {
    if (p == k) yp[i] = v;
  });
}

}  // namespace fbmpk
