// Level-scheduled parallel FBMPK — the alternative scheduler from the
// paper's discussion (§VII), built on reorder/level_schedule.hpp.
//
// Unlike the ABMC kernel this operates on the ORIGINAL matrix order: the
// forward sweep executes dependency levels of L in sequence (rows within
// a level in parallel), the backward sweep executes levels of U. The
// per-row arithmetic is the shared fb_detail code, so results are
// bitwise identical to serial FBMPK on the same matrix.
//
// This header holds the barrier variant: one team barrier per level per
// sweep. It is the fallback for the point-to-point level engine
// (fbmpk_level_engine.hpp), the same relationship the per-color barrier
// kernel has to the ABMC engine. Both are templated on the Rows policy
// (ScalarRows for the exact stream, DispatchRows for SIMD + packed
// indices) and on the iterate type TI (double, or Pack<double, B> for
// batched sweeps).
#pragma once

#include <span>

#include "kernels/fb_detail.hpp"
#include "kernels/fbmpk.hpp"
#include "kernels/fbmpk_parallel.hpp"
#include "reorder/level_schedule.hpp"
#include "sparse/split.hpp"
#include "support/error.hpp"
#include "support/threading.hpp"

namespace fbmpk {

/// Level-scheduled sweep over an explicit row policy; same Emit and ctl
/// contracts as fbmpk_parallel_sweep_rows. Cancellation is polled at
/// stage boundaries; cancelled threads skip row work but still meet
/// every worksharing construct.
template <class T, class TI, class Rows, class X0, class Emit>
void fbmpk_level_sweep_rows(const TriangularSplit<T>& s,
                            const LevelSchedulePair& sched, const Rows& rows,
                            const X0& x0, int k, FbWorkspace<TI>& ws,
                            Emit&& emit, RunControl* ctl = nullptr) {
  const index_t n = s.lower.rows();
  FBMPK_CHECK(s.upper.rows() == n &&
              s.diag.size() == static_cast<std::size_t>(n));
  FBMPK_CHECK(x0.size() == static_cast<std::size_t>(n));
  FBMPK_CHECK(k >= 1);
  FBMPK_CHECK_MSG(
      sched.forward.rows.size() == static_cast<std::size_t>(n) &&
          sched.backward.rows.size() == static_cast<std::size_t>(n),
      "level schedule does not cover the matrix");
  ws.resize(n);

  TI* xy = ws.xy.data();
  TI* tmp = ws.tmp.data();

  const int pairs = k / 2;

#ifdef _OPENMP
#pragma omp parallel default(shared)
#endif
  {
    const auto stage_dead = [&]() -> bool {
      if (ctl == nullptr) return false;
      if (thread_id() == 0) return ctl->checkpoint();
      return ctl->cancelled();
    };
    bool dead = stage_dead();

#ifdef _OPENMP
#pragma omp for schedule(static)
#endif
    for (index_t i = 0; i < n; ++i) {
      if (dead) continue;
      xy[2 * i] = x0[i];
    }
#ifdef _OPENMP
#pragma omp for schedule(static)
#endif
    for (index_t i = 0; i < n; ++i) {
      if (dead) continue;
      TI sum{};
      rows.u_dot1(i, xy, 0, sum);
      tmp[i] = sum;
    }

    for (int it = 0; it < pairs; ++it) {
      const int p_odd = 2 * it + 1;
      const int p_even = 2 * it + 2;

      for (index_t l = 0; l < sched.forward.num_levels; ++l) {
        dead = dead || stage_dead();
#ifdef _OPENMP
#pragma omp for schedule(static)
#endif
        for (index_t r = sched.forward.level_ptr[l];
             r < sched.forward.level_ptr[l + 1]; ++r) {
          if (dead) continue;
          const index_t i = sched.forward.rows[r];
          const auto di = rows.diag(i);
          TI sum0 = madd(di, xy[2 * i], tmp[i]);
          TI sum1{};
          rows.l_dot2(i, xy, sum0, sum1);
          xy[2 * i + 1] = sum0;
          emit(p_odd, i, sum0);
          tmp[i] = madd(di, sum0, sum1);
        }  // barrier: level l done before l+1
      }

      const bool prime_next = !(it == pairs - 1 && k % 2 == 0);
      for (index_t l = 0; l < sched.backward.num_levels; ++l) {
        dead = dead || stage_dead();
#ifdef _OPENMP
#pragma omp for schedule(static)
#endif
        for (index_t r = sched.backward.level_ptr[l];
             r < sched.backward.level_ptr[l + 1]; ++r) {
          if (dead) continue;
          const index_t i = sched.backward.rows[r];
          TI sum0 = tmp[i];
          if (prime_next) {
            TI sum1{};
            rows.u_dot2(i, xy, sum1, sum0);
            xy[2 * i] = sum0;
            emit(p_even, i, sum0);
            tmp[i] = sum1;
          } else {
            rows.u_dot1(i, xy, 1, sum0);
            xy[2 * i] = sum0;
            emit(p_even, i, sum0);
          }
        }
      }
    }

    if (k % 2 == 1) {
      dead = dead || stage_dead();
#ifdef _OPENMP
#pragma omp for schedule(static)
#endif
      for (index_t i = 0; i < n; ++i) {
        if (dead) continue;
        TI sum = madd(rows.diag(i), xy[2 * i], tmp[i]);
        rows.l_dot1(i, xy, 0, sum);
        emit(k, i, sum);
      }
    }
  }
}

/// Level-scheduled sweep with the exact scalar row policy — bitwise
/// identical to serial FBMPK. Same Emit contract as the other kernels.
template <class T, class Emit>
void fbmpk_level_sweep(const TriangularSplit<T>& s,
                       const LevelSchedulePair& sched,
                       std::span<const T> x0, int k, FbWorkspace<T>& ws,
                       Emit&& emit) {
  fbmpk_level_sweep_rows<T, T>(s, sched, ScalarRows<T>(s), x0, k, ws,
                               std::forward<Emit>(emit));
}

/// y = A^k x0 with the level schedule. k = 0 copies x0.
template <class T>
void fbmpk_level_power(const TriangularSplit<T>& s,
                       const LevelSchedulePair& sched, std::span<const T> x0,
                       int k, std::span<T> y, FbWorkspace<T>& ws) {
  FBMPK_CHECK(y.size() == x0.size());
  FBMPK_CHECK(k >= 0);
  if (k == 0) {
    std::copy(x0.begin(), x0.end(), y.begin());
    return;
  }
  T* yp = y.data();
  fbmpk_level_sweep(s, sched, x0, k, ws, [&](int p, index_t i, T v) {
    if (p == k) yp[i] = v;
  });
}

}  // namespace fbmpk
