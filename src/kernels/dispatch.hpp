// Runtime-dispatched row-kernel backends (PR 3).
//
// The FBMPK inner loops come in two numerical flavours:
//  - exact:  the scalar helpers in fb_detail.hpp — fixed operation
//            order, bitwise identical serial <-> parallel. Default.
//  - fast:   vectorized variants that reassociate the dot products
//            (AVX2 / AVX-512 gathers over the BtB iterate pair) and
//            software-prefetch the col/val streams. Error vs exact is
//            bounded by standard summation analysis: each row dot of
//            length m reassociated into lanes differs by <= m·eps·
//            sum|a_ij||x_j|, and k sweeps compound to <= 4·k·eps·‖A‖
//            relative (asserted in tests/test_fb_simd.cpp).
//
// The backend is chosen once per process from CPUID (resolve_backend);
// every implementation is compile-time guarded so the same binary runs
// on machines without the wider ISA. `FBMPK_BACKEND=<name>` in the
// environment overrides the probe — CI uses it to force the portable
// generic path on AVX hardware.
//
// All accumulation is double: the fast layer is a perf feature for the
// paper's double-precision benchmarks, and the scalar exact path
// remains the only one instantiated for other types. PR 4 adds
// reduced-precision *storage* variants (fp32 and split hi/lo value
// streams, widened per element) — see ValuePrecision in
// sparse/packed_tri.hpp and the error-bound notes in docs/KERNELS.md.
#pragma once

#include <cstdint>
#include <string>

#include "sparse/coo.hpp"

namespace fbmpk {

/// Which row-kernel implementation a plan executes with.
enum class KernelBackend : std::uint8_t {
  kAuto = 0,    ///< resolve once from CPUID at first use
  kScalar = 1,  ///< fb_detail helpers — exact, bitwise reference
  kGeneric = 2, ///< portable scalar fast path (prefetch, same order)
  kAvx2 = 3,    ///< 256-bit FMA + gathers (4 nnz / iteration)
  kAvx512 = 4,  ///< 512-bit FMA + gathers (8 nnz / iteration)
};

/// Row-dot implementations a backend provides. `col/val` point at the
/// first entry of the row (callers pre-offset by row_ptr[i]); `len` is
/// the row's nnz. `xy` is the BtB interleaved iterate array. `prefetch`
/// is the lookahead distance in nonzeros (0 disables).
struct RowOps {
  /// s0 += row·xy[2c], s1 += row·xy[2c+1].
  void (*dot2_btb)(const index_t* col, const double* val, index_t len,
                   const double* xy, int prefetch, double& s0, double& s1);
  /// s += row·xy[2c + offset] (offset 0 = even slots, 1 = odd).
  void (*dot1_btb)(const index_t* col, const double* val, index_t len,
                   const double* xy, int offset, int prefetch, double& s);
  /// Narrow-band variants: columns are u16 offsets from `base`.
  void (*dot2_btb_u16)(const std::uint16_t* col, const double* val,
                       index_t len, index_t base, const double* xy,
                       int prefetch, double& s0, double& s1);
  void (*dot1_btb_u16)(const std::uint16_t* col, const double* val,
                       index_t len, index_t base, const double* xy,
                       int offset, int prefetch, double& s);

  // --- reduced-precision value streams (PR 4) ------------------------
  // Values are stored narrow and widened to double before every FMA;
  // accumulation is always fp64. The vector backends widen with
  // vcvtps2pd; the scalar/generic twins keep the exact accumulation
  // order so the *shape* of the rounding error is the value encoding
  // alone, never the summation.

  /// fp32 value stream: val[j] is widened per element.
  void (*dot2_btb_f32)(const index_t* col, const float* val, index_t len,
                       const double* xy, int prefetch, double& s0, double& s1);
  void (*dot1_btb_f32)(const index_t* col, const float* val, index_t len,
                       const double* xy, int offset, int prefetch, double& s);
  void (*dot2_btb_u16_f32)(const std::uint16_t* col, const float* val,
                           index_t len, index_t base, const double* xy,
                           int prefetch, double& s0, double& s1);
  void (*dot1_btb_u16_f32)(const std::uint16_t* col, const float* val,
                           index_t len, index_t base, const double* xy,
                           int offset, int prefetch, double& s);

  /// Split hi/lo stream: the value is hi[j] + lo[j] (exact in fp64 —
  /// both widen losslessly, and the sum of two floats fits a double).
  void (*dot2_btb_split)(const index_t* col, const float* hi, const float* lo,
                         index_t len, const double* xy, int prefetch,
                         double& s0, double& s1);
  void (*dot1_btb_split)(const index_t* col, const float* hi, const float* lo,
                         index_t len, const double* xy, int offset,
                         int prefetch, double& s);
  void (*dot2_btb_u16_split)(const std::uint16_t* col, const float* hi,
                             const float* lo, index_t len, index_t base,
                             const double* xy, int prefetch, double& s0,
                             double& s1);
  void (*dot1_btb_u16_split)(const std::uint16_t* col, const float* hi,
                             const float* lo, index_t len, index_t base,
                             const double* xy, int offset, int prefetch,
                             double& s);
};

/// Widest batched-lane chunk the multi-vector sweeps instantiate.
/// Larger request batches are chunked greedily over {16, 8, 4, 2, 1}.
inline constexpr index_t kMaxBatch = 16;

/// Batched (multi right-hand-side) row-dot table. Mirrors RowOps entry
/// for entry, but the iterate array is the xy[2·B·n] vector-major
/// layout (row c's even lanes at xy[2·B·c + b], odd lanes at
/// xy[2·B·c + B + b]), `nvec` is the lane count B ≤ kMaxBatch, and the
/// accumulators are lane arrays of length B.
///
/// Numerical contract: every entry keeps the scalar exact accumulation
/// order *per lane* — only the lane dimension is vectorized (one
/// gathered row slot feeds B unit-stride FMA pairs). Lane b of a
/// batched sweep is therefore bitwise identical to the B=1 exact sweep
/// of that lane's vector at the same stored precision, for every
/// backend. This is why one portable table serves all backends: the
/// gather elimination is ISA-independent, and the compiler vectorizes
/// the unit-stride lane loops at whatever ISA the build targets.
struct BatchRowOps {
  /// s0[b] += row·xy_even lane b, s1[b] += row·xy_odd lane b.
  void (*dot2_btb_bat)(const index_t* col, const double* val, index_t len,
                       const double* xy, index_t nvec, int prefetch,
                       double* s0, double* s1);
  /// s[b] += row·xy lane b of the even (0) / odd (1) stream.
  void (*dot1_btb_bat)(const index_t* col, const double* val, index_t len,
                       const double* xy, index_t nvec, int offset,
                       int prefetch, double* s);
  void (*dot2_btb_u16_bat)(const std::uint16_t* col, const double* val,
                           index_t len, index_t base, const double* xy,
                           index_t nvec, int prefetch, double* s0,
                           double* s1);
  void (*dot1_btb_u16_bat)(const std::uint16_t* col, const double* val,
                           index_t len, index_t base, const double* xy,
                           index_t nvec, int offset, int prefetch, double* s);

  void (*dot2_btb_f32_bat)(const index_t* col, const float* val, index_t len,
                           const double* xy, index_t nvec, int prefetch,
                           double* s0, double* s1);
  void (*dot1_btb_f32_bat)(const index_t* col, const float* val, index_t len,
                           const double* xy, index_t nvec, int offset,
                           int prefetch, double* s);
  void (*dot2_btb_u16_f32_bat)(const std::uint16_t* col, const float* val,
                               index_t len, index_t base, const double* xy,
                               index_t nvec, int prefetch, double* s0,
                               double* s1);
  void (*dot1_btb_u16_f32_bat)(const std::uint16_t* col, const float* val,
                               index_t len, index_t base, const double* xy,
                               index_t nvec, int offset, int prefetch,
                               double* s);

  void (*dot2_btb_split_bat)(const index_t* col, const float* hi,
                             const float* lo, index_t len, const double* xy,
                             index_t nvec, int prefetch, double* s0,
                             double* s1);
  void (*dot1_btb_split_bat)(const index_t* col, const float* hi,
                             const float* lo, index_t len, const double* xy,
                             index_t nvec, int offset, int prefetch,
                             double* s);
  void (*dot2_btb_u16_split_bat)(const std::uint16_t* col, const float* hi,
                                 const float* lo, index_t len, index_t base,
                                 const double* xy, index_t nvec, int prefetch,
                                 double* s0, double* s1);
  void (*dot1_btb_u16_split_bat)(const std::uint16_t* col, const float* hi,
                                 const float* lo, index_t len, index_t base,
                                 const double* xy, index_t nvec, int offset,
                                 int prefetch, double* s);
};

/// Kernel table for a concrete backend (kAuto is resolved first).
/// Asks for an unavailable backend -> throws kUnsupported.
const RowOps& row_kernels(KernelBackend backend);

/// Batched kernel table for a backend. Validates availability exactly
/// like row_kernels; every backend currently shares the portable
/// lane-vectorized table (see BatchRowOps contract above).
const BatchRowOps& batch_row_kernels(KernelBackend backend);

/// Resolve kAuto to the widest backend this CPU supports (cached after
/// the first call). Honors the FBMPK_BACKEND environment override when
/// it names an available backend. Non-auto inputs pass through.
KernelBackend resolve_backend(KernelBackend backend);

/// True iff the backend was compiled in AND the CPU supports it.
/// kScalar/kGeneric/kAuto are always available.
bool backend_available(KernelBackend backend);

/// "auto" / "scalar" / "generic" / "avx2" / "avx512".
const char* backend_name(KernelBackend backend);

/// Inverse of backend_name; throws kUnsupported on unknown names.
KernelBackend parse_backend(const std::string& name);

}  // namespace fbmpk
