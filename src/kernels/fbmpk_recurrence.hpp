// Three-term-recurrence FBMPK: generalizes the forward-backward
// pipeline from monomial powers x_p = A x_{p-1} to
//
//     x_p = alpha_p * A x_{p-1} + beta_p * x_{p-1} + gamma_p * x_{p-2}
//
// (x_{-1} = 0). This covers the numerically stable polynomial bases of
// the applications that motivate SSpMV in the paper's introduction —
// Chebyshev filters in eigensolvers (EVSL [18], ChASE [19]) and
// Chebyshev semi-iterations for linear systems — while keeping FBMPK's
// ~(k+1)/2 matrix sweeps.
//
// Why the pipeline admits it: when the forward sweep finishes row i of
// the odd iterate it has (A x_even)[i] in hand, x_even[i] in xy[2i] and
// the two-generations-old odd iterate still in xy[2i+1] (about to be
// overwritten) — exactly the three recurrence inputs. The backward
// sweep is symmetric. The pipelined second dot product (L·x_odd or
// U·x_even) automatically picks up the *recurrence-updated* neighbor
// values because rows write before later rows read, so the saved matrix
// sweeps carry over unchanged. alpha_p = 1, beta_p = gamma_p = 0
// reduces bit-for-bit to the monomial kernel's results.
#pragma once

#include <cmath>
#include <span>

#include "kernels/fb_detail.hpp"
#include "kernels/fbmpk.hpp"
#include "reorder/abmc.hpp"
#include "sparse/split.hpp"
#include "support/error.hpp"

namespace fbmpk {

/// Per-step recurrence coefficients: step p (1-based) maps
/// x_p = alpha * A x_{p-1} + beta * x_{p-1} + gamma * x_{p-2}.
template <class T>
struct RecurrenceStep {
  T alpha{1};
  T beta{0};
  T gamma{0};
};

/// Outcome of a checked kernel execution. Long unattended SSpMV
/// sequences report numerical breakdown (NaN/Inf iterates) through
/// this instead of silently propagating non-finite values into the
/// caller's output.
struct KernelStatus {
  bool ok = true;
  ErrorCode code = ErrorCode::kInternal;  ///< meaningful when !ok
  index_t row = -1;                       ///< first offending row, or -1
  const char* detail = "";                ///< short static description

  static KernelStatus success() { return {}; }
  static KernelStatus breakdown(index_t row, const char* detail) {
    return {false, ErrorCode::kNumericalBreakdown, row, detail};
  }
};

/// Scan a vector for NaN/Inf; returns a breakdown status naming the
/// first offending row, or success.
template <class T>
KernelStatus check_finite(std::span<const T> v, const char* detail) {
  for (std::size_t i = 0; i < v.size(); ++i)
    if (!std::isfinite(v[i]))
      return KernelStatus::breakdown(static_cast<index_t>(i), detail);
  return KernelStatus::success();
}

/// Serial recurrence sweep (BtB layout). steps.size() = k >= 1;
/// emit(p, i, v) fires once per step p in [1, k] and row i with
/// v = x_p[i].
template <class T, class Emit>
void fbmpk_recurrence_sweep(const TriangularSplit<T>& s,
                            std::span<const RecurrenceStep<T>> steps,
                            std::span<const T> x0, FbWorkspace<T>& ws,
                            Emit&& emit) {
  const index_t n = s.lower.rows();
  FBMPK_CHECK(s.upper.rows() == n &&
              s.diag.size() == static_cast<std::size_t>(n));
  FBMPK_CHECK(x0.size() == static_cast<std::size_t>(n));
  const int k = static_cast<int>(steps.size());
  FBMPK_CHECK(k >= 1);
  ws.resize(n);

  const index_t* lrp = s.lower.row_ptr().data();
  const index_t* lci = s.lower.col_idx().data();
  const T* lva = s.lower.values().data();
  const index_t* urp = s.upper.row_ptr().data();
  const index_t* uci = s.upper.col_idx().data();
  const T* uva = s.upper.values().data();
  const T* d = s.diag.data();
  T* xy = ws.xy.data();
  T* tmp = ws.tmp.data();
  NullTracer tr;

  // Head: even slots <- x0, odd slots <- x_{-1} = 0, tmp <- U·x0.
  for (index_t i = 0; i < n; ++i) {
    xy[2 * i] = x0[i];
    xy[2 * i + 1] = T{};
  }
  for (index_t i = 0; i < n; ++i) {
    T sum{};
    detail::row_dot1_btb(uci, uva, urp[i], urp[i + 1], xy, 0, sum, tr);
    tmp[i] = sum;
  }

  const int pairs = k / 2;
  for (int it = 0; it < pairs; ++it) {
    const int p_odd = 2 * it + 1;
    const int p_even = 2 * it + 2;
    const RecurrenceStep<T> co = steps[p_odd - 1];
    const RecurrenceStep<T> ce = steps[p_even - 1];

    // Forward over L: finish x_{p_odd}, prime tmp = (L + D)·x_{p_odd}.
    for (index_t i = 0; i < n; ++i) {
      T raw = tmp[i] + d[i] * xy[2 * i];  // (A x_even)[i] accumulator
      T sum1{};
      detail::row_dot2_btb(lci, lva, lrp[i], lrp[i + 1], xy, raw, sum1, tr);
      const T v = co.alpha * raw + co.beta * xy[2 * i] +
                  co.gamma * xy[2 * i + 1];
      xy[2 * i + 1] = v;
      emit(p_odd, i, v);
      tmp[i] = sum1 + d[i] * v;
    }

    // Backward over U: finish x_{p_even}, prime tmp = U·x_{p_even}.
    const bool prime_next = !(it == pairs - 1 && k % 2 == 0);
    for (index_t i = n; i-- > 0;) {
      T raw = tmp[i];
      T v;
      if (prime_next) {
        T sum1{};
        detail::row_dot2_btb(uci, uva, urp[i], urp[i + 1], xy, sum1, raw,
                             tr);
        v = ce.alpha * raw + ce.beta * xy[2 * i + 1] +
            ce.gamma * xy[2 * i];
        xy[2 * i] = v;
        emit(p_even, i, v);
        tmp[i] = sum1;
      } else {
        detail::row_dot1_btb(uci, uva, urp[i], urp[i + 1], xy, 1, raw, tr);
        v = ce.alpha * raw + ce.beta * xy[2 * i + 1] +
            ce.gamma * xy[2 * i];
        xy[2 * i] = v;
        emit(p_even, i, v);
      }
    }
  }

  if (k % 2 == 1) {
    const RecurrenceStep<T> ck = steps[k - 1];
    // Tail: even slots hold x_{k-1}, odd slots x_{k-2}, tmp = U·x_{k-1}.
    for (index_t i = 0; i < n; ++i) {
      T raw = tmp[i] + d[i] * xy[2 * i];
      detail::row_dot1_btb(lci, lva, lrp[i], lrp[i + 1], xy, 0, raw, tr);
      emit(k, i,
           ck.alpha * raw + ck.beta * xy[2 * i] + ck.gamma * xy[2 * i + 1]);
    }
  }
}

/// Parallel recurrence sweep under an ABMC color schedule (same
/// preconditions as fbmpk_parallel_sweep; bitwise-equal to the serial
/// sweep on the permuted matrix).
template <class T, class Emit>
void fbmpk_recurrence_parallel_sweep(const TriangularSplit<T>& s,
                                     const AbmcOrdering& o,
                                     std::span<const RecurrenceStep<T>> steps,
                                     std::span<const T> x0,
                                     FbWorkspace<T>& ws, Emit&& emit) {
  const index_t n = s.lower.rows();
  FBMPK_CHECK(s.upper.rows() == n &&
              s.diag.size() == static_cast<std::size_t>(n));
  FBMPK_CHECK(x0.size() == static_cast<std::size_t>(n));
  const int k = static_cast<int>(steps.size());
  FBMPK_CHECK(k >= 1);
  FBMPK_CHECK_MSG(!o.block_ptr.empty() && o.block_ptr.back() == n,
                  "schedule does not cover the matrix");
  ws.resize(n);

  const index_t* lrp = s.lower.row_ptr().data();
  const index_t* lci = s.lower.col_idx().data();
  const T* lva = s.lower.values().data();
  const index_t* urp = s.upper.row_ptr().data();
  const index_t* uci = s.upper.col_idx().data();
  const T* uva = s.upper.values().data();
  const T* d = s.diag.data();
  T* xy = ws.xy.data();
  T* tmp = ws.tmp.data();
  const T* x0p = x0.data();
  const RecurrenceStep<T>* st = steps.data();
  const int pairs = k / 2;
  NullTracer tr;

#ifdef _OPENMP
#pragma omp parallel default(shared)
#endif
  {
#ifdef _OPENMP
#pragma omp for schedule(static)
#endif
    for (index_t i = 0; i < n; ++i) {
      xy[2 * i] = x0p[i];
      xy[2 * i + 1] = T{};
    }
#ifdef _OPENMP
#pragma omp for schedule(static)
#endif
    for (index_t i = 0; i < n; ++i) {
      T sum{};
      detail::row_dot1_btb(uci, uva, urp[i], urp[i + 1], xy, 0, sum, tr);
      tmp[i] = sum;
    }

    for (int it = 0; it < pairs; ++it) {
      const int p_odd = 2 * it + 1;
      const int p_even = 2 * it + 2;
      const RecurrenceStep<T> co = st[p_odd - 1];
      const RecurrenceStep<T> ce = st[p_even - 1];

      for (index_t c = 0; c < o.num_colors; ++c) {
#ifdef _OPENMP
#pragma omp for schedule(static)
#endif
        for (index_t b = o.color_ptr[c]; b < o.color_ptr[c + 1]; ++b) {
          for (index_t i = o.block_ptr[b]; i < o.block_ptr[b + 1]; ++i) {
            T raw = tmp[i] + d[i] * xy[2 * i];
            T sum1{};
            detail::row_dot2_btb(lci, lva, lrp[i], lrp[i + 1], xy, raw,
                                 sum1, tr);
            const T v = co.alpha * raw + co.beta * xy[2 * i] +
                        co.gamma * xy[2 * i + 1];
            xy[2 * i + 1] = v;
            emit(p_odd, i, v);
            tmp[i] = sum1 + d[i] * v;
          }
        }
      }

      const bool prime_next = !(it == pairs - 1 && k % 2 == 0);
      for (index_t c = o.num_colors; c-- > 0;) {
#ifdef _OPENMP
#pragma omp for schedule(static)
#endif
        for (index_t b = o.color_ptr[c]; b < o.color_ptr[c + 1]; ++b) {
          for (index_t i = o.block_ptr[b + 1]; i-- > o.block_ptr[b];) {
            T raw = tmp[i];
            T v;
            if (prime_next) {
              T sum1{};
              detail::row_dot2_btb(uci, uva, urp[i], urp[i + 1], xy, sum1,
                                   raw, tr);
              v = ce.alpha * raw + ce.beta * xy[2 * i + 1] +
                  ce.gamma * xy[2 * i];
              xy[2 * i] = v;
              emit(p_even, i, v);
              tmp[i] = sum1;
            } else {
              detail::row_dot1_btb(uci, uva, urp[i], urp[i + 1], xy, 1, raw,
                                   tr);
              v = ce.alpha * raw + ce.beta * xy[2 * i + 1] +
                  ce.gamma * xy[2 * i];
              xy[2 * i] = v;
              emit(p_even, i, v);
            }
          }
        }
      }
    }

    if (k % 2 == 1) {
      const RecurrenceStep<T> ck = st[k - 1];
#ifdef _OPENMP
#pragma omp for schedule(static)
#endif
      for (index_t i = 0; i < n; ++i) {
        T raw = tmp[i] + d[i] * xy[2 * i];
        detail::row_dot1_btb(lci, lva, lrp[i], lrp[i + 1], xy, 0, raw, tr);
        emit(k, i, ck.alpha * raw + ck.beta * xy[2 * i] +
                       ck.gamma * xy[2 * i + 1]);
      }
    }
  }
}

/// y = x_k of the recurrence, serial.
template <class T>
void fbmpk_recurrence(const TriangularSplit<T>& s,
                      std::span<const RecurrenceStep<T>> steps,
                      std::span<const T> x0, std::span<T> y,
                      FbWorkspace<T>& ws) {
  FBMPK_CHECK(y.size() == x0.size());
  const int k = static_cast<int>(steps.size());
  T* yp = y.data();
  fbmpk_recurrence_sweep(s, steps, x0, ws, [&](int p, index_t i, T v) {
    if (p == k) yp[i] = v;
  });
}

/// Checked variant: rejects a non-finite input vector or non-finite
/// recurrence coefficients up front, runs the sweep, and reports
/// non-finite entries in y as a breakdown status instead of handing
/// the caller NaN. y is fully written either way.
template <class T>
KernelStatus fbmpk_recurrence_checked(const TriangularSplit<T>& s,
                                      std::span<const RecurrenceStep<T>> steps,
                                      std::span<const T> x0, std::span<T> y,
                                      FbWorkspace<T>& ws) {
  for (const auto& st : steps)
    if (!std::isfinite(st.alpha) || !std::isfinite(st.beta) ||
        !std::isfinite(st.gamma))
      return KernelStatus::breakdown(-1, "non-finite recurrence coefficient");
  if (auto st = check_finite(x0, "non-finite input vector"); !st.ok)
    return st;
  fbmpk_recurrence(s, steps, x0, y, ws);
  return check_finite(std::span<const T>(y.data(), y.size()),
                      "non-finite recurrence iterate");
}

}  // namespace fbmpk
