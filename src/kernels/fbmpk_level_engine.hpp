// Persistent-threads level-blocked FBMPK engine: the point-to-point
// counterpart of the barrier level kernel (fbmpk_level.hpp), driven by
// the LevelSweepSchedule from reorder/level_blocking.hpp.
//
// Epoch protocol — the ABMC engine's (fbmpk_parallel.hpp), with stages
// in place of colors. With SF forward and SB backward stages and
// `pairs` forward/backward pairs, each thread walks
//   head0, head1, {F_0..F_{SF-1}, B_0..B_{SB-1}} x pairs, [tail]
// bumping its epoch counter after every stage: 1 after head0, 2 after
// head1, base + s + 1 after F_s and base + SF + s + 1 after B_s of
// pair `it` (base = 2 + it*(SF+SB)).
//
// One structural difference from ABMC: forward and backward sweeps own
// rows independently (their level structures differ), so the transitive
// argument that lets ABMC cover cross-pair dependencies with within-pair
// waits does not apply. Instead every thread performs one all-thread
// rendezvous wait_all(base) before F_0 of each pair — covering every
// read of pair-boundary state (even xy slots, tmp) and every
// antidependency against the previous pair — and all within-pair
// synchronization is point-to-point per the derivation in
// level_blocking.hpp. Every dependency targets a strictly earlier stage
// in the walk and every thread bumps through every stage (even with an
// empty partition or after cancellation), so the wait graph is acyclic:
// no deadlock.
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <utility>

#include "kernels/fbmpk.hpp"
#include "kernels/fbmpk_level.hpp"
#include "kernels/fbmpk_parallel.hpp"
#include "reorder/level_blocking.hpp"
#include "sparse/split.hpp"
#include "support/error.hpp"
#include "support/threading.hpp"
#include "telemetry/telemetry.hpp"

namespace fbmpk {

/// Point-to-point level engine. Returns false without touching any
/// output when it cannot run safely (schedule empty, row-count
/// mismatch, or the OpenMP runtime delivering a smaller team); the
/// caller then falls back to the barrier level kernel.
template <class T, class TI, class Rows, class X0, class Emit>
bool fbmpk_level_engine_try_sweep_rows(const TriangularSplit<T>& s,
                                       const LevelSweepSchedule& sched,
                                       const Rows& rows, const X0& x0, int k,
                                       SweepWorkspace<TI>& ws,
                                       bool pin_threads, Emit&& emit,
                                       RunControl* ctl = nullptr) {
  const index_t n = s.lower.rows();
  FBMPK_CHECK(s.upper.rows() == n &&
              s.diag.size() == static_cast<std::size_t>(n));
  FBMPK_CHECK(x0.size() == static_cast<std::size_t>(n));
  FBMPK_CHECK(k >= 1);
  if (sched.empty() ||
      sched.fwd.part_rows.size() != static_cast<std::size_t>(n) ||
      sched.bwd.part_rows.size() != static_cast<std::size_t>(n))
    return false;

  const index_t T_n = sched.num_threads;
  if (T_n > max_threads()) return false;
  ws.resize(n);

  TI* xy = ws.xy();
  TI* tmp = ws.tmp();

  const int pairs = k / 2;
  const index_t SF = sched.fwd.num_stages;
  const index_t SB = sched.bwd.num_stages;
  const long long stage_pair = static_cast<long long>(SF) + SB;
  const bool warm_split = !ws.warmed;

  const auto epochs = std::make_unique<detail::SweepEpoch[]>(
      static_cast<std::size_t>(T_n));
  std::atomic<bool> team_ok{true};

  parallel_region_n(static_cast<int>(T_n), [&](int tid, int team) {
    if (team != static_cast<int>(T_n)) {
      if (tid == 0) team_ok.store(false, std::memory_order_relaxed);
      return;
    }
    if (pin_threads) pin_team_compact();

    FBMPK_TELEMETRY_ONLY(telemetry::SweepRecorder fbmpk_rec{true};)

    const int pause_spins = team > hardware_cpus() ? 0 : 1024;
    const index_t t = static_cast<index_t>(tid);
    std::atomic<long long>& my = epochs[t].value;
    const auto bump = [&my] {
      my.fetch_add(1, std::memory_order_release);
      my.notify_all();
    };
    // Head/tail stages use the forward ownership (they are
    // forward-shaped row sweeps).
    const auto for_own_rows = [&](auto&& row_fn) {
      for (index_t sf = 0; sf < SF; ++sf) {
        const std::size_t slot = sched.fwd.slot(t, sf);
        for (index_t q = sched.fwd.part_ptr[slot];
             q < sched.fwd.part_ptr[slot + 1]; ++q)
          row_fn(sched.fwd.part_rows[q]);
      }
    };
    bool dead = false;
    const auto stage_dead = [&]() -> bool {
      if (ctl == nullptr) return dead;
      if (tid == 0) dead = dead || ctl->checkpoint();
      else dead = dead || ctl->cancelled();
      return dead;
    };
    // Rendezvous: every foreign thread past `target`. The level engine
    // has no neighbor sets — forward/backward ownership differ, so the
    // conservative all-thread wait is the pair boundary.
    const auto wait_all = [&](long long target) {
      FBMPK_TELEMETRY_ONLY(
          if (T_n > 1 && fbmpk_rec.active()) fbmpk_rec.wait_begin();
          bool fbmpk_blocked = false;)
      for (index_t u = 0; u < T_n; ++u) {
        if (u == t) continue;
        const bool blocked =
            detail::sweep_wait(epochs[u].value, target, pause_spins);
        (void)blocked;
        FBMPK_TELEMETRY_ONLY(fbmpk_blocked = fbmpk_blocked || blocked;)
      }
      FBMPK_TELEMETRY_ONLY(if (T_n > 1 && fbmpk_rec.active())
                               fbmpk_rec.wait_end(fbmpk_blocked);)
    };
    const auto wait_deps = [&](std::span<const index_t> dep_ptr,
                               std::span<const LevelDep> deps,
                               std::size_t slot, long long stage0) {
      FBMPK_TELEMETRY_ONLY(
          const bool fbmpk_have = dep_ptr[slot] < dep_ptr[slot + 1];
          if (fbmpk_have && fbmpk_rec.active()) fbmpk_rec.wait_begin();
          bool fbmpk_blocked = false;)
      for (index_t q = dep_ptr[slot]; q < dep_ptr[slot + 1]; ++q) {
        const LevelDep& dep = deps[q];
        const bool blocked = detail::sweep_wait(
            epochs[dep.thread].value, stage0 + dep.stage + 1, pause_spins);
        (void)blocked;
        FBMPK_TELEMETRY_ONLY(fbmpk_blocked = fbmpk_blocked || blocked;)
      }
      FBMPK_TELEMETRY_ONLY(if (fbmpk_have && fbmpk_rec.active())
                               fbmpk_rec.wait_end(fbmpk_blocked);)
    };

    // head0: xy even slots <- x0 over forward-owned rows (first-touch
    // pass; the split warm read rides along as in the ABMC engine).
    T sink{};
    stage_dead();
    FBMPK_TELEMETRY_ONLY(fbmpk_rec.stage_begin();)
    if (!dead) for_own_rows([&](index_t i) {
      xy[2 * i] = x0[i];
      if (warm_split) {
        T acc{};
        rows.warm(i, acc);
        sink += acc + rows.diag(i);
      }
    });
    if (warm_split) {
      volatile T keep = sink;
      (void)keep;
    }
    bump();  // epoch 1
    FBMPK_TELEMETRY_ONLY(fbmpk_rec.stage_end("head0", 0, -1);)

    // head1: tmp <- U·x0; reads foreign even slots.
    wait_all(1);
    stage_dead();
    FBMPK_TELEMETRY_ONLY(fbmpk_rec.stage_begin();)
    if (!dead) for_own_rows([&](index_t i) {
      TI sum{};
      rows.u_dot1(i, xy, 0, sum);
      tmp[i] = sum;
    });
    bump();  // epoch 2
    FBMPK_TELEMETRY_ONLY(fbmpk_rec.stage_end("head1", 0, -1);)

    for (int it = 0; it < pairs; ++it) {
      const int p_odd = 2 * it + 1;
      const int p_even = 2 * it + 2;
      const long long base = 2 + it * stage_pair;
      const bool prime_next = !(it == pairs - 1 && k % 2 == 0);

      // Pair boundary: all cross-pair reads/antideps covered at once.
      wait_all(base);

      for (index_t sf = 0; sf < SF; ++sf) {
        const std::size_t slot = sched.fwd.slot(t, sf);
        wait_deps(sched.fwd_dep_ptr, sched.fwd_deps, slot, base);
        stage_dead();
        FBMPK_TELEMETRY_ONLY(fbmpk_rec.stage_begin();)
        if (!dead)
          for (index_t q = sched.fwd.part_ptr[slot];
               q < sched.fwd.part_ptr[slot + 1]; ++q) {
            const index_t i = sched.fwd.part_rows[q];
            const auto di = rows.diag(i);
            TI sum0 = madd(di, xy[2 * i], tmp[i]);
            TI sum1{};
            rows.l_dot2(i, xy, sum0, sum1);
            xy[2 * i + 1] = sum0;
            emit(p_odd, i, sum0);
            tmp[i] = madd(di, sum0, sum1);
          }
        bump();  // epoch base + sf + 1
        FBMPK_TELEMETRY_ONLY(
            fbmpk_rec.stage_end("F", p_odd, static_cast<int>(sf));)
      }

      for (index_t sb = 0; sb < SB; ++sb) {
        const std::size_t slot = sched.bwd.slot(t, sb);
        wait_deps(sched.bwd_fdep_ptr, sched.bwd_fdeps, slot, base);
        wait_deps(sched.bwd_dep_ptr, sched.bwd_deps, slot, base + SF);
        stage_dead();
        FBMPK_TELEMETRY_ONLY(fbmpk_rec.stage_begin();)
        if (!dead)
          for (index_t q = sched.bwd.part_ptr[slot];
               q < sched.bwd.part_ptr[slot + 1]; ++q) {
            const index_t i = sched.bwd.part_rows[q];
            TI sum0 = tmp[i];
            if (prime_next) {
              TI sum1{};
              rows.u_dot2(i, xy, sum1, sum0);
              xy[2 * i] = sum0;
              emit(p_even, i, sum0);
              tmp[i] = sum1;
            } else {
              rows.u_dot1(i, xy, 1, sum0);
              xy[2 * i] = sum0;
              emit(p_even, i, sum0);
            }
          }
        bump();  // epoch base + SF + sb + 1
        FBMPK_TELEMETRY_ONLY(
            fbmpk_rec.stage_end("B", p_even, static_cast<int>(sb));)
      }
    }

    if (k % 2 == 1) {
      wait_all(2 + pairs * stage_pair);
      stage_dead();
      FBMPK_TELEMETRY_ONLY(fbmpk_rec.stage_begin();)
      if (!dead) for_own_rows([&](index_t i) {
        TI sum = madd(rows.diag(i), xy[2 * i], tmp[i]);
        rows.l_dot1(i, xy, 0, sum);
        emit(k, i, sum);
      });
      bump();
      FBMPK_TELEMETRY_ONLY(fbmpk_rec.stage_end("tail", k, -1);)
    }
  });

  if (!team_ok.load(std::memory_order_relaxed)) return false;
  if (ctl == nullptr || !ctl->cancelled()) ws.warmed = true;
  return true;
}

/// Level engine sweep with automatic fallback to the barrier level
/// kernel; identical results either way (same per-row kernels).
template <class T, class TI, class Rows, class X0, class Emit>
void fbmpk_level_engine_sweep_rows(const TriangularSplit<T>& s,
                                   const LevelSchedulePair& levels,
                                   const LevelSweepSchedule& sched,
                                   const Rows& rows, const X0& x0, int k,
                                   SweepWorkspace<TI>& ws, Emit&& emit,
                                   bool pin_threads = false,
                                   RunControl* ctl = nullptr) {
  if (!fbmpk_level_engine_try_sweep_rows(s, sched, rows, x0, k, ws,
                                         pin_threads, emit, ctl))
    fbmpk_level_sweep_rows<T, TI>(s, levels, rows, x0, k, ws.fallback, emit,
                                  ctl);
}

/// Level engine sweep with the exact scalar row policy.
template <class T, class Emit>
void fbmpk_level_engine_sweep(const TriangularSplit<T>& s,
                              const LevelSchedulePair& levels,
                              const LevelSweepSchedule& sched,
                              std::span<const T> x0, int k,
                              SweepWorkspace<T>& ws, Emit&& emit,
                              bool pin_threads = false) {
  fbmpk_level_engine_sweep_rows<T, T>(s, levels, sched, ScalarRows<T>(s), x0,
                                      k, ws, std::forward<Emit>(emit),
                                      pin_threads);
}

/// y = A^k x0 via the level engine.
template <class T>
void fbmpk_level_engine_power(const TriangularSplit<T>& s,
                              const LevelSchedulePair& levels,
                              const LevelSweepSchedule& sched,
                              std::span<const T> x0, int k, std::span<T> y,
                              SweepWorkspace<T>& ws,
                              bool pin_threads = false) {
  FBMPK_CHECK(y.size() == x0.size());
  FBMPK_CHECK(k >= 0);
  if (k == 0) {
    std::copy(x0.begin(), x0.end(), y.begin());
    return;
  }
  T* yp = y.data();
  fbmpk_level_engine_sweep(
      s, levels, sched, x0, k, ws,
      [&](int p, index_t i, T v) {
        if (p == k) yp[i] = v;
      },
      pin_threads);
}

}  // namespace fbmpk
