// Backend implementations for the runtime row-kernel dispatch.
//
// Layout of this file:
//   1. scalar   — thin wrappers over fb_detail.hpp (exact reference)
//                 plus u16 narrow-band twins that replicate the exact
//                 4-way accumulation order, so `exact + compressed`
//                 stays bitwise identical to `exact + plain`.
//   2. generic  — same operation order as scalar with software
//                 prefetch of the col/val streams; the portable "fast"
//                 path for CPUs without AVX (also bitwise == scalar).
//   3. avx2/avx512 — gather-based vector kernels, compiled inside
//                 `#pragma GCC target` regions so the translation unit
//                 itself needs no -march flags; guarded by CPUID at
//                 dispatch time. These reassociate (lane-parallel
//                 partial sums) and are only reachable in fast mode.
//
// Explicit non-template functions (not function templates with target
// attributes) keep GCC's per-function ISA switching reliable.
#include "kernels/dispatch.hpp"

#include <cstdlib>

#include "kernels/fb_detail.hpp"
#include "support/error.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define FBMPK_X86 1
#include <immintrin.h>
#else
#define FBMPK_X86 0
#endif

namespace fbmpk {
namespace {

// ---------------------------------------------------------------------
// 1. scalar — exact reference (fb_detail operation order).
// ---------------------------------------------------------------------

void dot2_scalar(const index_t* col, const double* val, index_t len,
                 const double* xy, int /*prefetch*/, double& s0, double& s1) {
  NullTracer tr;
  detail::row_dot2_btb(col, val, index_t{0}, len, xy, s0, s1, tr);
}

void dot1_scalar(const index_t* col, const double* val, index_t len,
                 const double* xy, int offset, int /*prefetch*/, double& s) {
  NullTracer tr;
  detail::row_dot1_btb(col, val, index_t{0}, len, xy, offset, s, tr);
}

/// u16 twin of detail::row_dot2_btb. The accumulator structure and the
/// final (a0+b0)+(c0s+d0) reduction are copied verbatim so widening the
/// stored index never changes a single bit of the result.
void dot2_u16_scalar(const std::uint16_t* col, const double* val, index_t len,
                     index_t base, const double* xy, int /*prefetch*/,
                     double& s0, double& s1) {
  double a0{}, a1{}, b0{}, b1{}, c0s{}, c1s{}, d0{}, d1{};
  index_t j = 0;
  for (; j + 3 < len; j += 4) {
    const index_t c0 = base + col[j];
    const index_t c1 = base + col[j + 1];
    const index_t c2 = base + col[j + 2];
    const index_t c3 = base + col[j + 3];
    a0 += val[j] * xy[2 * c0];
    a1 += val[j] * xy[2 * c0 + 1];
    b0 += val[j + 1] * xy[2 * c1];
    b1 += val[j + 1] * xy[2 * c1 + 1];
    c0s += val[j + 2] * xy[2 * c2];
    c1s += val[j + 2] * xy[2 * c2 + 1];
    d0 += val[j + 3] * xy[2 * c3];
    d1 += val[j + 3] * xy[2 * c3 + 1];
  }
  for (; j < len; ++j) {
    const index_t c = base + col[j];
    a0 += val[j] * xy[2 * c];
    a1 += val[j] * xy[2 * c + 1];
  }
  s0 += (a0 + b0) + (c0s + d0);
  s1 += (a1 + b1) + (c1s + d1);
}

/// u16 twin of detail::row_dot1_btb (same reduction shape).
void dot1_u16_scalar(const std::uint16_t* col, const double* val, index_t len,
                     index_t base, const double* xy, int offset,
                     int /*prefetch*/, double& s) {
  double a{}, b{}, c2{}, d2{};
  index_t j = 0;
  for (; j + 3 < len; j += 4) {
    a += val[j] * xy[2 * (base + col[j]) + offset];
    b += val[j + 1] * xy[2 * (base + col[j + 1]) + offset];
    c2 += val[j + 2] * xy[2 * (base + col[j + 2]) + offset];
    d2 += val[j + 3] * xy[2 * (base + col[j + 3]) + offset];
  }
  for (; j < len; ++j) a += val[j] * xy[2 * (base + col[j]) + offset];
  s += (a + b) + (c2 + d2);
}

// Reduced-precision scalar twins (PR 4). The widened value is bound to
// a local double first, then used in *exactly* the reference
// accumulation shape — the only deviation from the fp64 result is the
// value encoding itself. Split widens both halves losslessly, so when
// hi+lo reconstructs the double these twins are bitwise == fp64.

void dot2_f32_scalar(const index_t* col, const float* val, index_t len,
                     const double* xy, int /*prefetch*/, double& s0,
                     double& s1) {
  double a0{}, a1{}, b0{}, b1{}, c0s{}, c1s{}, d0{}, d1{};
  index_t j = 0;
  for (; j + 3 < len; j += 4) {
    const index_t c0 = col[j];
    const index_t c1 = col[j + 1];
    const index_t c2 = col[j + 2];
    const index_t c3 = col[j + 3];
    const double v0 = static_cast<double>(val[j]);
    const double v1 = static_cast<double>(val[j + 1]);
    const double v2 = static_cast<double>(val[j + 2]);
    const double v3 = static_cast<double>(val[j + 3]);
    a0 += v0 * xy[2 * c0];
    a1 += v0 * xy[2 * c0 + 1];
    b0 += v1 * xy[2 * c1];
    b1 += v1 * xy[2 * c1 + 1];
    c0s += v2 * xy[2 * c2];
    c1s += v2 * xy[2 * c2 + 1];
    d0 += v3 * xy[2 * c3];
    d1 += v3 * xy[2 * c3 + 1];
  }
  for (; j < len; ++j) {
    const index_t c = col[j];
    const double v = static_cast<double>(val[j]);
    a0 += v * xy[2 * c];
    a1 += v * xy[2 * c + 1];
  }
  s0 += (a0 + b0) + (c0s + d0);
  s1 += (a1 + b1) + (c1s + d1);
}

void dot1_f32_scalar(const index_t* col, const float* val, index_t len,
                     const double* xy, int offset, int /*prefetch*/,
                     double& s) {
  double a{}, b{}, c2{}, d2{};
  index_t j = 0;
  for (; j + 3 < len; j += 4) {
    a += static_cast<double>(val[j]) * xy[2 * col[j] + offset];
    b += static_cast<double>(val[j + 1]) * xy[2 * col[j + 1] + offset];
    c2 += static_cast<double>(val[j + 2]) * xy[2 * col[j + 2] + offset];
    d2 += static_cast<double>(val[j + 3]) * xy[2 * col[j + 3] + offset];
  }
  for (; j < len; ++j)
    a += static_cast<double>(val[j]) * xy[2 * col[j] + offset];
  s += (a + b) + (c2 + d2);
}

void dot2_u16_f32_scalar(const std::uint16_t* col, const float* val,
                         index_t len, index_t base, const double* xy,
                         int /*prefetch*/, double& s0, double& s1) {
  double a0{}, a1{}, b0{}, b1{}, c0s{}, c1s{}, d0{}, d1{};
  index_t j = 0;
  for (; j + 3 < len; j += 4) {
    const index_t c0 = base + col[j];
    const index_t c1 = base + col[j + 1];
    const index_t c2 = base + col[j + 2];
    const index_t c3 = base + col[j + 3];
    const double v0 = static_cast<double>(val[j]);
    const double v1 = static_cast<double>(val[j + 1]);
    const double v2 = static_cast<double>(val[j + 2]);
    const double v3 = static_cast<double>(val[j + 3]);
    a0 += v0 * xy[2 * c0];
    a1 += v0 * xy[2 * c0 + 1];
    b0 += v1 * xy[2 * c1];
    b1 += v1 * xy[2 * c1 + 1];
    c0s += v2 * xy[2 * c2];
    c1s += v2 * xy[2 * c2 + 1];
    d0 += v3 * xy[2 * c3];
    d1 += v3 * xy[2 * c3 + 1];
  }
  for (; j < len; ++j) {
    const index_t c = base + col[j];
    const double v = static_cast<double>(val[j]);
    a0 += v * xy[2 * c];
    a1 += v * xy[2 * c + 1];
  }
  s0 += (a0 + b0) + (c0s + d0);
  s1 += (a1 + b1) + (c1s + d1);
}

void dot1_u16_f32_scalar(const std::uint16_t* col, const float* val,
                         index_t len, index_t base, const double* xy,
                         int offset, int /*prefetch*/, double& s) {
  double a{}, b{}, c2{}, d2{};
  index_t j = 0;
  for (; j + 3 < len; j += 4) {
    a += static_cast<double>(val[j]) * xy[2 * (base + col[j]) + offset];
    b += static_cast<double>(val[j + 1]) *
         xy[2 * (base + col[j + 1]) + offset];
    c2 += static_cast<double>(val[j + 2]) *
          xy[2 * (base + col[j + 2]) + offset];
    d2 += static_cast<double>(val[j + 3]) *
          xy[2 * (base + col[j + 3]) + offset];
  }
  for (; j < len; ++j)
    a += static_cast<double>(val[j]) * xy[2 * (base + col[j]) + offset];
  s += (a + b) + (c2 + d2);
}

/// Widen a split pair: both casts are exact, and the sum of two floats
/// is always representable in double, so this is join_split() inlined.
inline double widen_split(float hi, float lo) {
  return static_cast<double>(hi) + static_cast<double>(lo);
}

void dot2_split_scalar(const index_t* col, const float* hi, const float* lo,
                       index_t len, const double* xy, int /*prefetch*/,
                       double& s0, double& s1) {
  double a0{}, a1{}, b0{}, b1{}, c0s{}, c1s{}, d0{}, d1{};
  index_t j = 0;
  for (; j + 3 < len; j += 4) {
    const index_t c0 = col[j];
    const index_t c1 = col[j + 1];
    const index_t c2 = col[j + 2];
    const index_t c3 = col[j + 3];
    const double v0 = widen_split(hi[j], lo[j]);
    const double v1 = widen_split(hi[j + 1], lo[j + 1]);
    const double v2 = widen_split(hi[j + 2], lo[j + 2]);
    const double v3 = widen_split(hi[j + 3], lo[j + 3]);
    a0 += v0 * xy[2 * c0];
    a1 += v0 * xy[2 * c0 + 1];
    b0 += v1 * xy[2 * c1];
    b1 += v1 * xy[2 * c1 + 1];
    c0s += v2 * xy[2 * c2];
    c1s += v2 * xy[2 * c2 + 1];
    d0 += v3 * xy[2 * c3];
    d1 += v3 * xy[2 * c3 + 1];
  }
  for (; j < len; ++j) {
    const index_t c = col[j];
    const double v = widen_split(hi[j], lo[j]);
    a0 += v * xy[2 * c];
    a1 += v * xy[2 * c + 1];
  }
  s0 += (a0 + b0) + (c0s + d0);
  s1 += (a1 + b1) + (c1s + d1);
}

void dot1_split_scalar(const index_t* col, const float* hi, const float* lo,
                       index_t len, const double* xy, int offset,
                       int /*prefetch*/, double& s) {
  double a{}, b{}, c2{}, d2{};
  index_t j = 0;
  for (; j + 3 < len; j += 4) {
    a += widen_split(hi[j], lo[j]) * xy[2 * col[j] + offset];
    b += widen_split(hi[j + 1], lo[j + 1]) * xy[2 * col[j + 1] + offset];
    c2 += widen_split(hi[j + 2], lo[j + 2]) * xy[2 * col[j + 2] + offset];
    d2 += widen_split(hi[j + 3], lo[j + 3]) * xy[2 * col[j + 3] + offset];
  }
  for (; j < len; ++j)
    a += widen_split(hi[j], lo[j]) * xy[2 * col[j] + offset];
  s += (a + b) + (c2 + d2);
}

void dot2_u16_split_scalar(const std::uint16_t* col, const float* hi,
                           const float* lo, index_t len, index_t base,
                           const double* xy, int /*prefetch*/, double& s0,
                           double& s1) {
  double a0{}, a1{}, b0{}, b1{}, c0s{}, c1s{}, d0{}, d1{};
  index_t j = 0;
  for (; j + 3 < len; j += 4) {
    const index_t c0 = base + col[j];
    const index_t c1 = base + col[j + 1];
    const index_t c2 = base + col[j + 2];
    const index_t c3 = base + col[j + 3];
    const double v0 = widen_split(hi[j], lo[j]);
    const double v1 = widen_split(hi[j + 1], lo[j + 1]);
    const double v2 = widen_split(hi[j + 2], lo[j + 2]);
    const double v3 = widen_split(hi[j + 3], lo[j + 3]);
    a0 += v0 * xy[2 * c0];
    a1 += v0 * xy[2 * c0 + 1];
    b0 += v1 * xy[2 * c1];
    b1 += v1 * xy[2 * c1 + 1];
    c0s += v2 * xy[2 * c2];
    c1s += v2 * xy[2 * c2 + 1];
    d0 += v3 * xy[2 * c3];
    d1 += v3 * xy[2 * c3 + 1];
  }
  for (; j < len; ++j) {
    const index_t c = base + col[j];
    const double v = widen_split(hi[j], lo[j]);
    a0 += v * xy[2 * c];
    a1 += v * xy[2 * c + 1];
  }
  s0 += (a0 + b0) + (c0s + d0);
  s1 += (a1 + b1) + (c1s + d1);
}

void dot1_u16_split_scalar(const std::uint16_t* col, const float* hi,
                           const float* lo, index_t len, index_t base,
                           const double* xy, int offset, int /*prefetch*/,
                           double& s) {
  double a{}, b{}, c2{}, d2{};
  index_t j = 0;
  for (; j + 3 < len; j += 4) {
    a += widen_split(hi[j], lo[j]) * xy[2 * (base + col[j]) + offset];
    b += widen_split(hi[j + 1], lo[j + 1]) *
         xy[2 * (base + col[j + 1]) + offset];
    c2 += widen_split(hi[j + 2], lo[j + 2]) *
          xy[2 * (base + col[j + 2]) + offset];
    d2 += widen_split(hi[j + 3], lo[j + 3]) *
          xy[2 * (base + col[j + 3]) + offset];
  }
  for (; j < len; ++j)
    a += widen_split(hi[j], lo[j]) * xy[2 * (base + col[j]) + offset];
  s += (a + b) + (c2 + d2);
}

// ---------------------------------------------------------------------
// 2. generic — scalar order + software prefetch (portable fast path).
//    __builtin_prefetch never faults, so running past the end of the
//    stream by the lookahead distance is safe.
// ---------------------------------------------------------------------

void dot2_generic(const index_t* col, const double* val, index_t len,
                  const double* xy, int prefetch, double& s0, double& s1) {
  double a0{}, a1{}, b0{}, b1{}, c0s{}, c1s{}, d0{}, d1{};
  index_t j = 0;
  for (; j + 3 < len; j += 4) {
    if (prefetch > 0) {
      __builtin_prefetch(col + j + prefetch);
      __builtin_prefetch(val + j + prefetch);
    }
    const index_t c0 = col[j];
    const index_t c1 = col[j + 1];
    const index_t c2 = col[j + 2];
    const index_t c3 = col[j + 3];
    a0 += val[j] * xy[2 * c0];
    a1 += val[j] * xy[2 * c0 + 1];
    b0 += val[j + 1] * xy[2 * c1];
    b1 += val[j + 1] * xy[2 * c1 + 1];
    c0s += val[j + 2] * xy[2 * c2];
    c1s += val[j + 2] * xy[2 * c2 + 1];
    d0 += val[j + 3] * xy[2 * c3];
    d1 += val[j + 3] * xy[2 * c3 + 1];
  }
  for (; j < len; ++j) {
    const index_t c = col[j];
    a0 += val[j] * xy[2 * c];
    a1 += val[j] * xy[2 * c + 1];
  }
  s0 += (a0 + b0) + (c0s + d0);
  s1 += (a1 + b1) + (c1s + d1);
}

void dot1_generic(const index_t* col, const double* val, index_t len,
                  const double* xy, int offset, int prefetch, double& s) {
  double a{}, b{}, c2{}, d2{};
  index_t j = 0;
  for (; j + 3 < len; j += 4) {
    if (prefetch > 0) {
      __builtin_prefetch(col + j + prefetch);
      __builtin_prefetch(val + j + prefetch);
    }
    a += val[j] * xy[2 * col[j] + offset];
    b += val[j + 1] * xy[2 * col[j + 1] + offset];
    c2 += val[j + 2] * xy[2 * col[j + 2] + offset];
    d2 += val[j + 3] * xy[2 * col[j + 3] + offset];
  }
  for (; j < len; ++j) a += val[j] * xy[2 * col[j] + offset];
  s += (a + b) + (c2 + d2);
}

void dot2_u16_generic(const std::uint16_t* col, const double* val,
                      index_t len, index_t base, const double* xy,
                      int prefetch, double& s0, double& s1) {
  if (prefetch > 0) {
    // u16 streams cover 2x the nnz per line; one hint per block is
    // enough, issued from the scalar twin's loop below via the plain
    // pointer arithmetic here.
    __builtin_prefetch(col + prefetch);
    __builtin_prefetch(val + prefetch);
  }
  dot2_u16_scalar(col, val, len, base, xy, 0, s0, s1);
}

void dot1_u16_generic(const std::uint16_t* col, const double* val,
                      index_t len, index_t base, const double* xy, int offset,
                      int prefetch, double& s) {
  if (prefetch > 0) {
    __builtin_prefetch(col + prefetch);
    __builtin_prefetch(val + prefetch);
  }
  dot1_u16_scalar(col, val, len, base, xy, offset, 0, s);
}

// Reduced-precision generic variants: one lookahead hint per row (the
// narrow value streams cover 2x the nnz per cache line, so the
// per-block hints of the fp64 loops buy little), then the scalar twin
// — keeps generic bitwise identical to scalar per precision.

void dot2_f32_generic(const index_t* col, const float* val, index_t len,
                      const double* xy, int prefetch, double& s0, double& s1) {
  if (prefetch > 0) {
    __builtin_prefetch(col + prefetch);
    __builtin_prefetch(val + prefetch);
  }
  dot2_f32_scalar(col, val, len, xy, 0, s0, s1);
}

void dot1_f32_generic(const index_t* col, const float* val, index_t len,
                      const double* xy, int offset, int prefetch, double& s) {
  if (prefetch > 0) {
    __builtin_prefetch(col + prefetch);
    __builtin_prefetch(val + prefetch);
  }
  dot1_f32_scalar(col, val, len, xy, offset, 0, s);
}

void dot2_u16_f32_generic(const std::uint16_t* col, const float* val,
                          index_t len, index_t base, const double* xy,
                          int prefetch, double& s0, double& s1) {
  if (prefetch > 0) {
    __builtin_prefetch(col + prefetch);
    __builtin_prefetch(val + prefetch);
  }
  dot2_u16_f32_scalar(col, val, len, base, xy, 0, s0, s1);
}

void dot1_u16_f32_generic(const std::uint16_t* col, const float* val,
                          index_t len, index_t base, const double* xy,
                          int offset, int prefetch, double& s) {
  if (prefetch > 0) {
    __builtin_prefetch(col + prefetch);
    __builtin_prefetch(val + prefetch);
  }
  dot1_u16_f32_scalar(col, val, len, base, xy, offset, 0, s);
}

void dot2_split_generic(const index_t* col, const float* hi, const float* lo,
                        index_t len, const double* xy, int prefetch,
                        double& s0, double& s1) {
  if (prefetch > 0) {
    __builtin_prefetch(col + prefetch);
    __builtin_prefetch(hi + prefetch);
    __builtin_prefetch(lo + prefetch);
  }
  dot2_split_scalar(col, hi, lo, len, xy, 0, s0, s1);
}

void dot1_split_generic(const index_t* col, const float* hi, const float* lo,
                        index_t len, const double* xy, int offset,
                        int prefetch, double& s) {
  if (prefetch > 0) {
    __builtin_prefetch(col + prefetch);
    __builtin_prefetch(hi + prefetch);
    __builtin_prefetch(lo + prefetch);
  }
  dot1_split_scalar(col, hi, lo, len, xy, offset, 0, s);
}

void dot2_u16_split_generic(const std::uint16_t* col, const float* hi,
                            const float* lo, index_t len, index_t base,
                            const double* xy, int prefetch, double& s0,
                            double& s1) {
  if (prefetch > 0) {
    __builtin_prefetch(col + prefetch);
    __builtin_prefetch(hi + prefetch);
    __builtin_prefetch(lo + prefetch);
  }
  dot2_u16_split_scalar(col, hi, lo, len, base, xy, 0, s0, s1);
}

void dot1_u16_split_generic(const std::uint16_t* col, const float* hi,
                            const float* lo, index_t len, index_t base,
                            const double* xy, int offset, int prefetch,
                            double& s) {
  if (prefetch > 0) {
    __builtin_prefetch(col + prefetch);
    __builtin_prefetch(hi + prefetch);
    __builtin_prefetch(lo + prefetch);
  }
  dot1_u16_split_scalar(col, hi, lo, len, base, xy, offset, 0, s);
}

#if FBMPK_X86

// ---------------------------------------------------------------------
// 3a. AVX2 — 4 nnz / iteration. The BtB layout makes both gathers use
//     the same index vector (2c for even slots, the same indices off
//     base xy+1 for odd slots), so one index computation feeds two
//     gathers + two FMAs.
// ---------------------------------------------------------------------

#pragma GCC push_options
#pragma GCC target("avx2,fma")
// The gather intrinsics expand through _mm*_undefined_* helpers that
// GCC 12 flags as "maybe uninitialized" when inlined (GCC PR 105593);
// the lanes in question are fully overwritten by the gather.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

inline double hsum256(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

void dot2_avx2(const index_t* col, const double* val, index_t len,
               const double* xy, int prefetch, double& s0, double& s1) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  index_t j = 0;
  for (; j + 4 <= len; j += 4) {
    if (prefetch > 0) {
      __builtin_prefetch(col + j + prefetch);
      __builtin_prefetch(val + j + prefetch);
    }
    const __m128i c =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + j));
    const __m128i c2 = _mm_slli_epi32(c, 1);
    const __m256d xe = _mm256_i32gather_pd(xy, c2, 8);
    const __m256d xo = _mm256_i32gather_pd(xy + 1, c2, 8);
    const __m256d v = _mm256_loadu_pd(val + j);
    acc0 = _mm256_fmadd_pd(v, xe, acc0);
    acc1 = _mm256_fmadd_pd(v, xo, acc1);
  }
  double t0 = hsum256(acc0);
  double t1 = hsum256(acc1);
  for (; j < len; ++j) {
    const index_t c = col[j];
    t0 += val[j] * xy[2 * c];
    t1 += val[j] * xy[2 * c + 1];
  }
  s0 += t0;
  s1 += t1;
}

void dot1_avx2(const index_t* col, const double* val, index_t len,
               const double* xy, int offset, int prefetch, double& s) {
  const double* base = xy + offset;
  __m256d acc = _mm256_setzero_pd();
  index_t j = 0;
  for (; j + 4 <= len; j += 4) {
    if (prefetch > 0) {
      __builtin_prefetch(col + j + prefetch);
      __builtin_prefetch(val + j + prefetch);
    }
    const __m128i c =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + j));
    const __m128i c2 = _mm_slli_epi32(c, 1);
    const __m256d x = _mm256_i32gather_pd(base, c2, 8);
    const __m256d v = _mm256_loadu_pd(val + j);
    acc = _mm256_fmadd_pd(v, x, acc);
  }
  double t = hsum256(acc);
  for (; j < len; ++j) t += val[j] * xy[2 * col[j] + offset];
  s += t;
}

void dot2_u16_avx2(const std::uint16_t* col, const double* val, index_t len,
                   index_t base, const double* xy, int prefetch, double& s0,
                   double& s1) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  const __m128i vbase = _mm_set1_epi32(base);
  index_t j = 0;
  for (; j + 4 <= len; j += 4) {
    if (prefetch > 0) {
      __builtin_prefetch(col + j + prefetch);
      __builtin_prefetch(val + j + prefetch);
    }
    const __m128i raw =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(col + j));
    const __m128i c = _mm_add_epi32(_mm_cvtepu16_epi32(raw), vbase);
    const __m128i c2 = _mm_slli_epi32(c, 1);
    const __m256d xe = _mm256_i32gather_pd(xy, c2, 8);
    const __m256d xo = _mm256_i32gather_pd(xy + 1, c2, 8);
    const __m256d v = _mm256_loadu_pd(val + j);
    acc0 = _mm256_fmadd_pd(v, xe, acc0);
    acc1 = _mm256_fmadd_pd(v, xo, acc1);
  }
  double t0 = hsum256(acc0);
  double t1 = hsum256(acc1);
  for (; j < len; ++j) {
    const index_t c = base + col[j];
    t0 += val[j] * xy[2 * c];
    t1 += val[j] * xy[2 * c + 1];
  }
  s0 += t0;
  s1 += t1;
}

void dot1_u16_avx2(const std::uint16_t* col, const double* val, index_t len,
                   index_t base, const double* xy, int offset, int prefetch,
                   double& s) {
  const double* xp = xy + offset;
  __m256d acc = _mm256_setzero_pd();
  const __m128i vbase = _mm_set1_epi32(base);
  index_t j = 0;
  for (; j + 4 <= len; j += 4) {
    if (prefetch > 0) {
      __builtin_prefetch(col + j + prefetch);
      __builtin_prefetch(val + j + prefetch);
    }
    const __m128i raw =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(col + j));
    const __m128i c = _mm_add_epi32(_mm_cvtepu16_epi32(raw), vbase);
    const __m128i c2 = _mm_slli_epi32(c, 1);
    const __m256d x = _mm256_i32gather_pd(xp, c2, 8);
    const __m256d v = _mm256_loadu_pd(val + j);
    acc = _mm256_fmadd_pd(v, x, acc);
  }
  double t = hsum256(acc);
  for (; j < len; ++j) t += val[j] * xy[2 * (base + col[j]) + offset];
  s += t;
}

// Reduced-precision AVX2 variants: 4 floats load as one 128-bit lane
// and widen with vcvtps2pd; split widens both halves and adds before
// the FMA. Same gather shape as the fp64 kernels above.

void dot2_f32_avx2(const index_t* col, const float* val, index_t len,
                   const double* xy, int prefetch, double& s0, double& s1) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  index_t j = 0;
  for (; j + 4 <= len; j += 4) {
    if (prefetch > 0) {
      __builtin_prefetch(col + j + prefetch);
      __builtin_prefetch(val + j + prefetch);
    }
    const __m128i c =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + j));
    const __m128i c2 = _mm_slli_epi32(c, 1);
    const __m256d xe = _mm256_i32gather_pd(xy, c2, 8);
    const __m256d xo = _mm256_i32gather_pd(xy + 1, c2, 8);
    const __m256d v = _mm256_cvtps_pd(_mm_loadu_ps(val + j));
    acc0 = _mm256_fmadd_pd(v, xe, acc0);
    acc1 = _mm256_fmadd_pd(v, xo, acc1);
  }
  double t0 = hsum256(acc0);
  double t1 = hsum256(acc1);
  for (; j < len; ++j) {
    const index_t c = col[j];
    const double v = static_cast<double>(val[j]);
    t0 += v * xy[2 * c];
    t1 += v * xy[2 * c + 1];
  }
  s0 += t0;
  s1 += t1;
}

void dot1_f32_avx2(const index_t* col, const float* val, index_t len,
                   const double* xy, int offset, int prefetch, double& s) {
  const double* base = xy + offset;
  __m256d acc = _mm256_setzero_pd();
  index_t j = 0;
  for (; j + 4 <= len; j += 4) {
    if (prefetch > 0) {
      __builtin_prefetch(col + j + prefetch);
      __builtin_prefetch(val + j + prefetch);
    }
    const __m128i c =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + j));
    const __m128i c2 = _mm_slli_epi32(c, 1);
    const __m256d x = _mm256_i32gather_pd(base, c2, 8);
    const __m256d v = _mm256_cvtps_pd(_mm_loadu_ps(val + j));
    acc = _mm256_fmadd_pd(v, x, acc);
  }
  double t = hsum256(acc);
  for (; j < len; ++j)
    t += static_cast<double>(val[j]) * xy[2 * col[j] + offset];
  s += t;
}

void dot2_u16_f32_avx2(const std::uint16_t* col, const float* val,
                       index_t len, index_t base, const double* xy,
                       int prefetch, double& s0, double& s1) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  const __m128i vbase = _mm_set1_epi32(base);
  index_t j = 0;
  for (; j + 4 <= len; j += 4) {
    if (prefetch > 0) {
      __builtin_prefetch(col + j + prefetch);
      __builtin_prefetch(val + j + prefetch);
    }
    const __m128i raw =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(col + j));
    const __m128i c = _mm_add_epi32(_mm_cvtepu16_epi32(raw), vbase);
    const __m128i c2 = _mm_slli_epi32(c, 1);
    const __m256d xe = _mm256_i32gather_pd(xy, c2, 8);
    const __m256d xo = _mm256_i32gather_pd(xy + 1, c2, 8);
    const __m256d v = _mm256_cvtps_pd(_mm_loadu_ps(val + j));
    acc0 = _mm256_fmadd_pd(v, xe, acc0);
    acc1 = _mm256_fmadd_pd(v, xo, acc1);
  }
  double t0 = hsum256(acc0);
  double t1 = hsum256(acc1);
  for (; j < len; ++j) {
    const index_t c = base + col[j];
    const double v = static_cast<double>(val[j]);
    t0 += v * xy[2 * c];
    t1 += v * xy[2 * c + 1];
  }
  s0 += t0;
  s1 += t1;
}

void dot1_u16_f32_avx2(const std::uint16_t* col, const float* val,
                       index_t len, index_t base, const double* xy,
                       int offset, int prefetch, double& s) {
  const double* xp = xy + offset;
  __m256d acc = _mm256_setzero_pd();
  const __m128i vbase = _mm_set1_epi32(base);
  index_t j = 0;
  for (; j + 4 <= len; j += 4) {
    if (prefetch > 0) {
      __builtin_prefetch(col + j + prefetch);
      __builtin_prefetch(val + j + prefetch);
    }
    const __m128i raw =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(col + j));
    const __m128i c = _mm_add_epi32(_mm_cvtepu16_epi32(raw), vbase);
    const __m128i c2 = _mm_slli_epi32(c, 1);
    const __m256d x = _mm256_i32gather_pd(xp, c2, 8);
    const __m256d v = _mm256_cvtps_pd(_mm_loadu_ps(val + j));
    acc = _mm256_fmadd_pd(v, x, acc);
  }
  double t = hsum256(acc);
  for (; j < len; ++j)
    t += static_cast<double>(val[j]) * xy[2 * (base + col[j]) + offset];
  s += t;
}

/// Widen + join 4 split pairs: each cvtps2pd is exact, as is the add.
inline __m256d join4_avx2(const float* hi, const float* lo, index_t j) {
  return _mm256_add_pd(_mm256_cvtps_pd(_mm_loadu_ps(hi + j)),
                       _mm256_cvtps_pd(_mm_loadu_ps(lo + j)));
}

void dot2_split_avx2(const index_t* col, const float* hi, const float* lo,
                     index_t len, const double* xy, int prefetch, double& s0,
                     double& s1) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  index_t j = 0;
  for (; j + 4 <= len; j += 4) {
    if (prefetch > 0) {
      __builtin_prefetch(col + j + prefetch);
      __builtin_prefetch(hi + j + prefetch);
      __builtin_prefetch(lo + j + prefetch);
    }
    const __m128i c =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + j));
    const __m128i c2 = _mm_slli_epi32(c, 1);
    const __m256d xe = _mm256_i32gather_pd(xy, c2, 8);
    const __m256d xo = _mm256_i32gather_pd(xy + 1, c2, 8);
    const __m256d v = join4_avx2(hi, lo, j);
    acc0 = _mm256_fmadd_pd(v, xe, acc0);
    acc1 = _mm256_fmadd_pd(v, xo, acc1);
  }
  double t0 = hsum256(acc0);
  double t1 = hsum256(acc1);
  for (; j < len; ++j) {
    const index_t c = col[j];
    const double v =
        static_cast<double>(hi[j]) + static_cast<double>(lo[j]);
    t0 += v * xy[2 * c];
    t1 += v * xy[2 * c + 1];
  }
  s0 += t0;
  s1 += t1;
}

void dot1_split_avx2(const index_t* col, const float* hi, const float* lo,
                     index_t len, const double* xy, int offset, int prefetch,
                     double& s) {
  const double* base = xy + offset;
  __m256d acc = _mm256_setzero_pd();
  index_t j = 0;
  for (; j + 4 <= len; j += 4) {
    if (prefetch > 0) {
      __builtin_prefetch(col + j + prefetch);
      __builtin_prefetch(hi + j + prefetch);
      __builtin_prefetch(lo + j + prefetch);
    }
    const __m128i c =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + j));
    const __m128i c2 = _mm_slli_epi32(c, 1);
    const __m256d x = _mm256_i32gather_pd(base, c2, 8);
    acc = _mm256_fmadd_pd(join4_avx2(hi, lo, j), x, acc);
  }
  double t = hsum256(acc);
  for (; j < len; ++j) {
    const double v =
        static_cast<double>(hi[j]) + static_cast<double>(lo[j]);
    t += v * xy[2 * col[j] + offset];
  }
  s += t;
}

void dot2_u16_split_avx2(const std::uint16_t* col, const float* hi,
                         const float* lo, index_t len, index_t base,
                         const double* xy, int prefetch, double& s0,
                         double& s1) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  const __m128i vbase = _mm_set1_epi32(base);
  index_t j = 0;
  for (; j + 4 <= len; j += 4) {
    if (prefetch > 0) {
      __builtin_prefetch(col + j + prefetch);
      __builtin_prefetch(hi + j + prefetch);
      __builtin_prefetch(lo + j + prefetch);
    }
    const __m128i raw =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(col + j));
    const __m128i c = _mm_add_epi32(_mm_cvtepu16_epi32(raw), vbase);
    const __m128i c2 = _mm_slli_epi32(c, 1);
    const __m256d xe = _mm256_i32gather_pd(xy, c2, 8);
    const __m256d xo = _mm256_i32gather_pd(xy + 1, c2, 8);
    const __m256d v = join4_avx2(hi, lo, j);
    acc0 = _mm256_fmadd_pd(v, xe, acc0);
    acc1 = _mm256_fmadd_pd(v, xo, acc1);
  }
  double t0 = hsum256(acc0);
  double t1 = hsum256(acc1);
  for (; j < len; ++j) {
    const index_t c = base + col[j];
    const double v =
        static_cast<double>(hi[j]) + static_cast<double>(lo[j]);
    t0 += v * xy[2 * c];
    t1 += v * xy[2 * c + 1];
  }
  s0 += t0;
  s1 += t1;
}

void dot1_u16_split_avx2(const std::uint16_t* col, const float* hi,
                         const float* lo, index_t len, index_t base,
                         const double* xy, int offset, int prefetch,
                         double& s) {
  const double* xp = xy + offset;
  __m256d acc = _mm256_setzero_pd();
  const __m128i vbase = _mm_set1_epi32(base);
  index_t j = 0;
  for (; j + 4 <= len; j += 4) {
    if (prefetch > 0) {
      __builtin_prefetch(col + j + prefetch);
      __builtin_prefetch(hi + j + prefetch);
      __builtin_prefetch(lo + j + prefetch);
    }
    const __m128i raw =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(col + j));
    const __m128i c = _mm_add_epi32(_mm_cvtepu16_epi32(raw), vbase);
    const __m128i c2 = _mm_slli_epi32(c, 1);
    const __m256d x = _mm256_i32gather_pd(xp, c2, 8);
    acc = _mm256_fmadd_pd(join4_avx2(hi, lo, j), x, acc);
  }
  double t = hsum256(acc);
  for (; j < len; ++j) {
    const double v =
        static_cast<double>(hi[j]) + static_cast<double>(lo[j]);
    t += v * xy[2 * (base + col[j]) + offset];
  }
  s += t;
}

#pragma GCC diagnostic pop
#pragma GCC pop_options

// ---------------------------------------------------------------------
// 3b. AVX-512 — 8 nnz / iteration, same shape as AVX2 with 512-bit
//     gathers. avx2+fma listed explicitly so the 128/256-bit helper
//     intrinsics in the tails are valid regardless of implication
//     rules.
// ---------------------------------------------------------------------

#pragma GCC push_options
#pragma GCC target("avx512f,avx2,fma")
// Same GCC PR 105593 false positive as the AVX2 block above.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

void dot2_avx512(const index_t* col, const double* val, index_t len,
                 const double* xy, int prefetch, double& s0, double& s1) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  index_t j = 0;
  for (; j + 8 <= len; j += 8) {
    if (prefetch > 0) {
      __builtin_prefetch(col + j + prefetch);
      __builtin_prefetch(val + j + prefetch);
    }
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + j));
    const __m256i c2 = _mm256_slli_epi32(c, 1);
    const __m512d xe = _mm512_i32gather_pd(c2, xy, 8);
    const __m512d xo = _mm512_i32gather_pd(c2, xy + 1, 8);
    const __m512d v = _mm512_loadu_pd(val + j);
    acc0 = _mm512_fmadd_pd(v, xe, acc0);
    acc1 = _mm512_fmadd_pd(v, xo, acc1);
  }
  double t0 = _mm512_reduce_add_pd(acc0);
  double t1 = _mm512_reduce_add_pd(acc1);
  for (; j < len; ++j) {
    const index_t c = col[j];
    t0 += val[j] * xy[2 * c];
    t1 += val[j] * xy[2 * c + 1];
  }
  s0 += t0;
  s1 += t1;
}

void dot1_avx512(const index_t* col, const double* val, index_t len,
                 const double* xy, int offset, int prefetch, double& s) {
  const double* base = xy + offset;
  __m512d acc = _mm512_setzero_pd();
  index_t j = 0;
  for (; j + 8 <= len; j += 8) {
    if (prefetch > 0) {
      __builtin_prefetch(col + j + prefetch);
      __builtin_prefetch(val + j + prefetch);
    }
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + j));
    const __m256i c2 = _mm256_slli_epi32(c, 1);
    const __m512d x = _mm512_i32gather_pd(c2, base, 8);
    const __m512d v = _mm512_loadu_pd(val + j);
    acc = _mm512_fmadd_pd(v, x, acc);
  }
  double t = _mm512_reduce_add_pd(acc);
  for (; j < len; ++j) t += val[j] * xy[2 * col[j] + offset];
  s += t;
}

void dot2_u16_avx512(const std::uint16_t* col, const double* val, index_t len,
                     index_t base, const double* xy, int prefetch, double& s0,
                     double& s1) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  const __m256i vbase = _mm256_set1_epi32(base);
  index_t j = 0;
  for (; j + 8 <= len; j += 8) {
    if (prefetch > 0) {
      __builtin_prefetch(col + j + prefetch);
      __builtin_prefetch(val + j + prefetch);
    }
    const __m128i raw =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + j));
    const __m256i c = _mm256_add_epi32(_mm256_cvtepu16_epi32(raw), vbase);
    const __m256i c2 = _mm256_slli_epi32(c, 1);
    const __m512d xe = _mm512_i32gather_pd(c2, xy, 8);
    const __m512d xo = _mm512_i32gather_pd(c2, xy + 1, 8);
    const __m512d v = _mm512_loadu_pd(val + j);
    acc0 = _mm512_fmadd_pd(v, xe, acc0);
    acc1 = _mm512_fmadd_pd(v, xo, acc1);
  }
  double t0 = _mm512_reduce_add_pd(acc0);
  double t1 = _mm512_reduce_add_pd(acc1);
  for (; j < len; ++j) {
    const index_t c = base + col[j];
    t0 += val[j] * xy[2 * c];
    t1 += val[j] * xy[2 * c + 1];
  }
  s0 += t0;
  s1 += t1;
}

void dot1_u16_avx512(const std::uint16_t* col, const double* val, index_t len,
                     index_t base, const double* xy, int offset, int prefetch,
                     double& s) {
  const double* xp = xy + offset;
  __m512d acc = _mm512_setzero_pd();
  const __m256i vbase = _mm256_set1_epi32(base);
  index_t j = 0;
  for (; j + 8 <= len; j += 8) {
    if (prefetch > 0) {
      __builtin_prefetch(col + j + prefetch);
      __builtin_prefetch(val + j + prefetch);
    }
    const __m128i raw =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + j));
    const __m256i c = _mm256_add_epi32(_mm256_cvtepu16_epi32(raw), vbase);
    const __m256i c2 = _mm256_slli_epi32(c, 1);
    const __m512d x = _mm512_i32gather_pd(c2, xp, 8);
    const __m512d v = _mm512_loadu_pd(val + j);
    acc = _mm512_fmadd_pd(v, x, acc);
  }
  double t = _mm512_reduce_add_pd(acc);
  for (; j < len; ++j) t += val[j] * xy[2 * (base + col[j]) + offset];
  s += t;
}

// Reduced-precision AVX-512 variants: 8 floats load as one 256-bit
// lane and widen with vcvtps2pd (256 -> 512); split joins hi+lo after
// widening. Same gather shape as the fp64 kernels above.

void dot2_f32_avx512(const index_t* col, const float* val, index_t len,
                     const double* xy, int prefetch, double& s0, double& s1) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  index_t j = 0;
  for (; j + 8 <= len; j += 8) {
    if (prefetch > 0) {
      __builtin_prefetch(col + j + prefetch);
      __builtin_prefetch(val + j + prefetch);
    }
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + j));
    const __m256i c2 = _mm256_slli_epi32(c, 1);
    const __m512d xe = _mm512_i32gather_pd(c2, xy, 8);
    const __m512d xo = _mm512_i32gather_pd(c2, xy + 1, 8);
    const __m512d v = _mm512_cvtps_pd(_mm256_loadu_ps(val + j));
    acc0 = _mm512_fmadd_pd(v, xe, acc0);
    acc1 = _mm512_fmadd_pd(v, xo, acc1);
  }
  double t0 = _mm512_reduce_add_pd(acc0);
  double t1 = _mm512_reduce_add_pd(acc1);
  for (; j < len; ++j) {
    const index_t c = col[j];
    const double v = static_cast<double>(val[j]);
    t0 += v * xy[2 * c];
    t1 += v * xy[2 * c + 1];
  }
  s0 += t0;
  s1 += t1;
}

void dot1_f32_avx512(const index_t* col, const float* val, index_t len,
                     const double* xy, int offset, int prefetch, double& s) {
  const double* base = xy + offset;
  __m512d acc = _mm512_setzero_pd();
  index_t j = 0;
  for (; j + 8 <= len; j += 8) {
    if (prefetch > 0) {
      __builtin_prefetch(col + j + prefetch);
      __builtin_prefetch(val + j + prefetch);
    }
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + j));
    const __m256i c2 = _mm256_slli_epi32(c, 1);
    const __m512d x = _mm512_i32gather_pd(c2, base, 8);
    const __m512d v = _mm512_cvtps_pd(_mm256_loadu_ps(val + j));
    acc = _mm512_fmadd_pd(v, x, acc);
  }
  double t = _mm512_reduce_add_pd(acc);
  for (; j < len; ++j)
    t += static_cast<double>(val[j]) * xy[2 * col[j] + offset];
  s += t;
}

void dot2_u16_f32_avx512(const std::uint16_t* col, const float* val,
                         index_t len, index_t base, const double* xy,
                         int prefetch, double& s0, double& s1) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  const __m256i vbase = _mm256_set1_epi32(base);
  index_t j = 0;
  for (; j + 8 <= len; j += 8) {
    if (prefetch > 0) {
      __builtin_prefetch(col + j + prefetch);
      __builtin_prefetch(val + j + prefetch);
    }
    const __m128i raw =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + j));
    const __m256i c = _mm256_add_epi32(_mm256_cvtepu16_epi32(raw), vbase);
    const __m256i c2 = _mm256_slli_epi32(c, 1);
    const __m512d xe = _mm512_i32gather_pd(c2, xy, 8);
    const __m512d xo = _mm512_i32gather_pd(c2, xy + 1, 8);
    const __m512d v = _mm512_cvtps_pd(_mm256_loadu_ps(val + j));
    acc0 = _mm512_fmadd_pd(v, xe, acc0);
    acc1 = _mm512_fmadd_pd(v, xo, acc1);
  }
  double t0 = _mm512_reduce_add_pd(acc0);
  double t1 = _mm512_reduce_add_pd(acc1);
  for (; j < len; ++j) {
    const index_t c = base + col[j];
    const double v = static_cast<double>(val[j]);
    t0 += v * xy[2 * c];
    t1 += v * xy[2 * c + 1];
  }
  s0 += t0;
  s1 += t1;
}

void dot1_u16_f32_avx512(const std::uint16_t* col, const float* val,
                         index_t len, index_t base, const double* xy,
                         int offset, int prefetch, double& s) {
  const double* xp = xy + offset;
  __m512d acc = _mm512_setzero_pd();
  const __m256i vbase = _mm256_set1_epi32(base);
  index_t j = 0;
  for (; j + 8 <= len; j += 8) {
    if (prefetch > 0) {
      __builtin_prefetch(col + j + prefetch);
      __builtin_prefetch(val + j + prefetch);
    }
    const __m128i raw =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + j));
    const __m256i c = _mm256_add_epi32(_mm256_cvtepu16_epi32(raw), vbase);
    const __m256i c2 = _mm256_slli_epi32(c, 1);
    const __m512d x = _mm512_i32gather_pd(c2, xp, 8);
    const __m512d v = _mm512_cvtps_pd(_mm256_loadu_ps(val + j));
    acc = _mm512_fmadd_pd(v, x, acc);
  }
  double t = _mm512_reduce_add_pd(acc);
  for (; j < len; ++j)
    t += static_cast<double>(val[j]) * xy[2 * (base + col[j]) + offset];
  s += t;
}

/// Widen + join 8 split pairs (both steps exact).
inline __m512d join8_avx512(const float* hi, const float* lo, index_t j) {
  return _mm512_add_pd(_mm512_cvtps_pd(_mm256_loadu_ps(hi + j)),
                       _mm512_cvtps_pd(_mm256_loadu_ps(lo + j)));
}

void dot2_split_avx512(const index_t* col, const float* hi, const float* lo,
                       index_t len, const double* xy, int prefetch,
                       double& s0, double& s1) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  index_t j = 0;
  for (; j + 8 <= len; j += 8) {
    if (prefetch > 0) {
      __builtin_prefetch(col + j + prefetch);
      __builtin_prefetch(hi + j + prefetch);
      __builtin_prefetch(lo + j + prefetch);
    }
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + j));
    const __m256i c2 = _mm256_slli_epi32(c, 1);
    const __m512d xe = _mm512_i32gather_pd(c2, xy, 8);
    const __m512d xo = _mm512_i32gather_pd(c2, xy + 1, 8);
    const __m512d v = join8_avx512(hi, lo, j);
    acc0 = _mm512_fmadd_pd(v, xe, acc0);
    acc1 = _mm512_fmadd_pd(v, xo, acc1);
  }
  double t0 = _mm512_reduce_add_pd(acc0);
  double t1 = _mm512_reduce_add_pd(acc1);
  for (; j < len; ++j) {
    const index_t c = col[j];
    const double v =
        static_cast<double>(hi[j]) + static_cast<double>(lo[j]);
    t0 += v * xy[2 * c];
    t1 += v * xy[2 * c + 1];
  }
  s0 += t0;
  s1 += t1;
}

void dot1_split_avx512(const index_t* col, const float* hi, const float* lo,
                       index_t len, const double* xy, int offset,
                       int prefetch, double& s) {
  const double* base = xy + offset;
  __m512d acc = _mm512_setzero_pd();
  index_t j = 0;
  for (; j + 8 <= len; j += 8) {
    if (prefetch > 0) {
      __builtin_prefetch(col + j + prefetch);
      __builtin_prefetch(hi + j + prefetch);
      __builtin_prefetch(lo + j + prefetch);
    }
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + j));
    const __m256i c2 = _mm256_slli_epi32(c, 1);
    const __m512d x = _mm512_i32gather_pd(c2, base, 8);
    acc = _mm512_fmadd_pd(join8_avx512(hi, lo, j), x, acc);
  }
  double t = _mm512_reduce_add_pd(acc);
  for (; j < len; ++j) {
    const double v =
        static_cast<double>(hi[j]) + static_cast<double>(lo[j]);
    t += v * xy[2 * col[j] + offset];
  }
  s += t;
}

void dot2_u16_split_avx512(const std::uint16_t* col, const float* hi,
                           const float* lo, index_t len, index_t base,
                           const double* xy, int prefetch, double& s0,
                           double& s1) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  const __m256i vbase = _mm256_set1_epi32(base);
  index_t j = 0;
  for (; j + 8 <= len; j += 8) {
    if (prefetch > 0) {
      __builtin_prefetch(col + j + prefetch);
      __builtin_prefetch(hi + j + prefetch);
      __builtin_prefetch(lo + j + prefetch);
    }
    const __m128i raw =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + j));
    const __m256i c = _mm256_add_epi32(_mm256_cvtepu16_epi32(raw), vbase);
    const __m256i c2 = _mm256_slli_epi32(c, 1);
    const __m512d xe = _mm512_i32gather_pd(c2, xy, 8);
    const __m512d xo = _mm512_i32gather_pd(c2, xy + 1, 8);
    const __m512d v = join8_avx512(hi, lo, j);
    acc0 = _mm512_fmadd_pd(v, xe, acc0);
    acc1 = _mm512_fmadd_pd(v, xo, acc1);
  }
  double t0 = _mm512_reduce_add_pd(acc0);
  double t1 = _mm512_reduce_add_pd(acc1);
  for (; j < len; ++j) {
    const index_t c = base + col[j];
    const double v =
        static_cast<double>(hi[j]) + static_cast<double>(lo[j]);
    t0 += v * xy[2 * c];
    t1 += v * xy[2 * c + 1];
  }
  s0 += t0;
  s1 += t1;
}

void dot1_u16_split_avx512(const std::uint16_t* col, const float* hi,
                           const float* lo, index_t len, index_t base,
                           const double* xy, int offset, int prefetch,
                           double& s) {
  const double* xp = xy + offset;
  __m512d acc = _mm512_setzero_pd();
  const __m256i vbase = _mm256_set1_epi32(base);
  index_t j = 0;
  for (; j + 8 <= len; j += 8) {
    if (prefetch > 0) {
      __builtin_prefetch(col + j + prefetch);
      __builtin_prefetch(hi + j + prefetch);
      __builtin_prefetch(lo + j + prefetch);
    }
    const __m128i raw =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + j));
    const __m256i c = _mm256_add_epi32(_mm256_cvtepu16_epi32(raw), vbase);
    const __m256i c2 = _mm256_slli_epi32(c, 1);
    const __m512d x = _mm512_i32gather_pd(c2, xp, 8);
    acc = _mm512_fmadd_pd(join8_avx512(hi, lo, j), x, acc);
  }
  double t = _mm512_reduce_add_pd(acc);
  for (; j < len; ++j) {
    const double v =
        static_cast<double>(hi[j]) + static_cast<double>(lo[j]);
    t += v * xy[2 * (base + col[j]) + offset];
  }
  s += t;
}

#pragma GCC diagnostic pop
#pragma GCC pop_options

#endif  // FBMPK_X86

constexpr RowOps kScalarOps{
    dot2_scalar,          dot1_scalar,          dot2_u16_scalar,
    dot1_u16_scalar,      dot2_f32_scalar,      dot1_f32_scalar,
    dot2_u16_f32_scalar,  dot1_u16_f32_scalar,  dot2_split_scalar,
    dot1_split_scalar,    dot2_u16_split_scalar, dot1_u16_split_scalar};
constexpr RowOps kGenericOps{
    dot2_generic,         dot1_generic,         dot2_u16_generic,
    dot1_u16_generic,     dot2_f32_generic,     dot1_f32_generic,
    dot2_u16_f32_generic, dot1_u16_f32_generic, dot2_split_generic,
    dot1_split_generic,   dot2_u16_split_generic, dot1_u16_split_generic};
#if FBMPK_X86
constexpr RowOps kAvx2Ops{
    dot2_avx2,            dot1_avx2,            dot2_u16_avx2,
    dot1_u16_avx2,        dot2_f32_avx2,        dot1_f32_avx2,
    dot2_u16_f32_avx2,    dot1_u16_f32_avx2,    dot2_split_avx2,
    dot1_split_avx2,      dot2_u16_split_avx2,  dot1_u16_split_avx2};
constexpr RowOps kAvx512Ops{
    dot2_avx512,          dot1_avx512,          dot2_u16_avx512,
    dot1_u16_avx512,      dot2_f32_avx512,      dot1_f32_avx512,
    dot2_u16_f32_avx512,  dot1_u16_f32_avx512,  dot2_split_avx512,
    dot1_split_avx512,    dot2_u16_split_avx512, dot1_u16_split_avx512};
#endif

KernelBackend probe_widest() {
#if FBMPK_X86
  if (__builtin_cpu_supports("avx512f")) return KernelBackend::kAvx512;
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
    return KernelBackend::kAvx2;
#endif
  return KernelBackend::kGeneric;
}

}  // namespace

bool backend_available(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kAuto:
    case KernelBackend::kScalar:
    case KernelBackend::kGeneric:
      return true;
    case KernelBackend::kAvx2:
#if FBMPK_X86
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case KernelBackend::kAvx512:
#if FBMPK_X86
      return __builtin_cpu_supports("avx512f");
#else
      return false;
#endif
  }
  return false;
}

KernelBackend resolve_backend(KernelBackend backend) {
  if (backend != KernelBackend::kAuto) return backend;
  static const KernelBackend picked = [] {
    if (const char* env = std::getenv("FBMPK_BACKEND")) {
      try {
        const KernelBackend req = parse_backend(env);
        if (req != KernelBackend::kAuto && backend_available(req)) return req;
      } catch (const Error&) {
        // Unknown name in the environment: fall through to the probe
        // rather than failing every kernel launch.
      }
    }
    return probe_widest();
  }();
  return picked;
}

const RowOps& row_kernels(KernelBackend backend) {
  const KernelBackend b = resolve_backend(backend);
  FBMPK_CHECK_CODE(backend_available(b), ErrorCode::kUnsupported,
                   "kernel backend " << backend_name(b)
                                     << " not supported on this CPU");
  switch (b) {
    case KernelBackend::kScalar:
      return kScalarOps;
    case KernelBackend::kGeneric:
      return kGenericOps;
#if FBMPK_X86
    case KernelBackend::kAvx2:
      return kAvx2Ops;
    case KernelBackend::kAvx512:
      return kAvx512Ops;
#endif
    default:
      break;
  }
  FBMPK_FAIL(ErrorCode::kUnsupported,
             "kernel backend " << backend_name(b) << " not compiled in");
}

namespace detail {
// Defined in dispatch_batch.cpp — compiled with the default global
// flags so per-lane FMA-contraction decisions match the scalar twins.
const BatchRowOps& portable_batch_ops();
}  // namespace detail

const BatchRowOps& batch_row_kernels(KernelBackend backend) {
  const KernelBackend b = resolve_backend(backend);
  FBMPK_CHECK_CODE(backend_available(b), ErrorCode::kUnsupported,
                   "kernel backend " << backend_name(b)
                                     << " not supported on this CPU");
  // All backends share the portable lane-vectorized table: batching
  // replaces the single-vector gathers with unit-stride lane loads, so
  // there is no ISA-specific variant left to dispatch on — the
  // compiler vectorizes the lane loops at the build's target ISA.
  return detail::portable_batch_ops();
}

const char* backend_name(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kAuto:
      return "auto";
    case KernelBackend::kScalar:
      return "scalar";
    case KernelBackend::kGeneric:
      return "generic";
    case KernelBackend::kAvx2:
      return "avx2";
    case KernelBackend::kAvx512:
      return "avx512";
  }
  return "unknown";
}

KernelBackend parse_backend(const std::string& name) {
  if (name == "auto") return KernelBackend::kAuto;
  if (name == "scalar") return KernelBackend::kScalar;
  if (name == "generic") return KernelBackend::kGeneric;
  if (name == "avx2") return KernelBackend::kAvx2;
  if (name == "avx512") return KernelBackend::kAvx512;
  FBMPK_FAIL(ErrorCode::kUnsupported,
             "unknown kernel backend '"
                 << name << "' (want auto|scalar|generic|avx2|avx512)");
}

}  // namespace fbmpk
