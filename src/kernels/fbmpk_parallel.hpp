// Parallel FBMPK under the ABMC color schedule (paper Algorithm 2,
// §III-D/E).
//
// Preconditions: the TriangularSplit must come from the ABMC-*permuted*
// matrix, and the AbmcOrdering must be the schedule that produced that
// permutation. Forward sweeps walk colors in ascending order, backward
// sweeps descending; blocks within one color run in parallel (their
// rows share no matrix edges by the coloring invariant), with one
// barrier per color per sweep. Head/tail sweeps are plain row-parallel
// SpMVs — they only read completed vectors.
//
// The computation is exactly the serial FBMPK of the permuted matrix
// (same FP operations per row; only row completion order changes), so
// results are bitwise identical to the serial kernel.
#pragma once

#include <span>
#include <utility>

#include "kernels/fb_detail.hpp"
#include "kernels/fbmpk.hpp"
#include "reorder/abmc.hpp"
#include "sparse/split.hpp"
#include "support/error.hpp"

namespace fbmpk {

/// Color-scheduled parallel sweep. emit(p, i, v) fires once per power
/// p in [1, k] and (permuted) row i; it may be called concurrently for
/// distinct rows and must be safe under that.
template <class T, class Emit>
void fbmpk_parallel_sweep(const TriangularSplit<T>& s, const AbmcOrdering& o,
                          std::span<const T> x0, int k, FbWorkspace<T>& ws,
                          Emit&& emit) {
  const index_t n = s.lower.rows();
  FBMPK_CHECK(s.upper.rows() == n &&
              s.diag.size() == static_cast<std::size_t>(n));
  FBMPK_CHECK(x0.size() == static_cast<std::size_t>(n));
  FBMPK_CHECK(k >= 1);
  FBMPK_CHECK_MSG(!o.block_ptr.empty() && o.block_ptr.back() == n,
                  "schedule does not cover the matrix");
  ws.resize(n);

  const index_t* lrp = s.lower.row_ptr().data();
  const index_t* lci = s.lower.col_idx().data();
  const T* lva = s.lower.values().data();
  const index_t* urp = s.upper.row_ptr().data();
  const index_t* uci = s.upper.col_idx().data();
  const T* uva = s.upper.values().data();
  const T* d = s.diag.data();
  T* xy = ws.xy.data();
  T* tmp = ws.tmp.data();
  const T* x0p = x0.data();

  const int pairs = k / 2;
  const index_t num_colors = o.num_colors;
  NullTracer tr;  // row helpers are shared with the traced serial kernel

#ifdef _OPENMP
#pragma omp parallel default(shared)
#endif
  {
    // Head: even slots <- x0; tmp <- U·x0. Row-parallel, no coloring
    // needed (reads only x0).
#ifdef _OPENMP
#pragma omp for schedule(static)
#endif
    for (index_t i = 0; i < n; ++i) xy[2 * i] = x0p[i];
#ifdef _OPENMP
#pragma omp for schedule(static)
#endif
    for (index_t i = 0; i < n; ++i) {
      T sum{};
      detail::row_dot1_btb(uci, uva, urp[i], urp[i + 1], xy, 0, sum, tr);
      tmp[i] = sum;
    }

    for (int it = 0; it < pairs; ++it) {
      const int p_odd = 2 * it + 1;
      const int p_even = 2 * it + 2;

      // Forward: colors ascending; blocks of one color in parallel;
      // rows within a block top-down.
      for (index_t c = 0; c < num_colors; ++c) {
#ifdef _OPENMP
#pragma omp for schedule(static)
#endif
        for (index_t b = o.color_ptr[c]; b < o.color_ptr[c + 1]; ++b) {
          for (index_t i = o.block_ptr[b]; i < o.block_ptr[b + 1]; ++i) {
            T sum0 = tmp[i] + d[i] * xy[2 * i];
            T sum1{};
            detail::row_dot2_btb(lci, lva, lrp[i], lrp[i + 1], xy, sum0,
                                 sum1, tr);
            xy[2 * i + 1] = sum0;
            emit(p_odd, i, sum0);
            tmp[i] = sum1 + d[i] * sum0;
          }
        }  // implicit barrier: color c complete before c+1 starts
      }

      // Backward: colors descending; rows within a block bottom-up.
      const bool prime_next = !(it == pairs - 1 && k % 2 == 0);
      for (index_t c = num_colors; c-- > 0;) {
#ifdef _OPENMP
#pragma omp for schedule(static)
#endif
        for (index_t b = o.color_ptr[c]; b < o.color_ptr[c + 1]; ++b) {
          for (index_t i = o.block_ptr[b + 1]; i-- > o.block_ptr[b];) {
            T sum0 = tmp[i];
            if (prime_next) {
              T sum1{};
              detail::row_dot2_btb(uci, uva, urp[i], urp[i + 1], xy, sum1,
                                   sum0, tr);
              xy[2 * i] = sum0;
              emit(p_even, i, sum0);
              tmp[i] = sum1;
            } else {
              detail::row_dot1_btb(uci, uva, urp[i], urp[i + 1], xy, 1,
                                   sum0, tr);
              xy[2 * i] = sum0;
              emit(p_even, i, sum0);
            }
          }
        }
      }
    }

    if (k % 2 == 1) {
      // Tail: reads only completed even slots and tmp; row-parallel.
#ifdef _OPENMP
#pragma omp for schedule(static)
#endif
      for (index_t i = 0; i < n; ++i) {
        T sum = tmp[i] + d[i] * xy[2 * i];
        detail::row_dot1_btb(lci, lva, lrp[i], lrp[i + 1], xy, 0, sum, tr);
        emit(k, i, sum);
      }
    }
  }
}

/// y = A^k x0, parallel; operates in the permuted index space.
template <class T>
void fbmpk_parallel_power(const TriangularSplit<T>& s, const AbmcOrdering& o,
                          std::span<const T> x0, int k, std::span<T> y,
                          FbWorkspace<T>& ws) {
  FBMPK_CHECK(y.size() == x0.size());
  FBMPK_CHECK(k >= 0);
  if (k == 0) {
    std::copy(x0.begin(), x0.end(), y.begin());
    return;
  }
  T* yp = y.data();
  fbmpk_parallel_sweep(s, o, x0, k, ws, [&](int p, index_t i, T v) {
    if (p == k) yp[i] = v;
  });
}

/// Krylov basis, parallel: out[p*n + i] = (A^p x0)[i], p in [0, k].
template <class T>
void fbmpk_parallel_power_all(const TriangularSplit<T>& s,
                              const AbmcOrdering& o, std::span<const T> x0,
                              int k, std::span<T> out, FbWorkspace<T>& ws) {
  const auto n = x0.size();
  FBMPK_CHECK(out.size() == n * static_cast<std::size_t>(k + 1));
  std::copy(x0.begin(), x0.end(), out.begin());
  if (k == 0) return;
  T* op = out.data();
  fbmpk_parallel_sweep(s, o, x0, k, ws, [&](int p, index_t i, T v) {
    op[static_cast<std::size_t>(p) * n + i] = v;
  });
}

/// y = sum_p coeffs[p] A^p x0, parallel.
template <class T>
void fbmpk_parallel_polynomial(const TriangularSplit<T>& s,
                               const AbmcOrdering& o,
                               std::span<const T> coeffs,
                               std::span<const T> x0, std::span<T> y,
                               FbWorkspace<T>& ws) {
  FBMPK_CHECK(!coeffs.empty());
  FBMPK_CHECK(y.size() == x0.size());
  const int k = static_cast<int>(coeffs.size()) - 1;
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = coeffs[0] * x0[i];
  if (k == 0) return;
  T* yp = y.data();
  const T* cp = coeffs.data();
  fbmpk_parallel_sweep(s, o, x0, k, ws, [&](int p, index_t i, T v) {
    yp[i] += cp[p] * v;
  });
}

}  // namespace fbmpk
