// Parallel FBMPK under the ABMC color schedule (paper Algorithm 2,
// §III-D/E).
//
// Preconditions: the TriangularSplit must come from the ABMC-*permuted*
// matrix, and the AbmcOrdering must be the schedule that produced that
// permutation. Forward sweeps walk colors in ascending order, backward
// sweeps descending; blocks within one color run in parallel (their
// rows share no matrix edges by the coloring invariant), with one
// barrier per color per sweep. Head/tail sweeps are plain row-parallel
// SpMVs — they only read completed vectors.
//
// The computation is exactly the serial FBMPK of the permuted matrix
// (same FP operations per row; only row completion order changes), so
// results are bitwise identical to the serial kernel.
#pragma once

#include <atomic>
#include <cstdlib>
#include <memory>
#include <span>
#include <utility>

#include "kernels/fb_detail.hpp"
#include "kernels/fbmpk.hpp"
#include "kernels/sweep_schedule.hpp"
#include "reorder/abmc.hpp"
#include "sparse/split.hpp"
#include "support/aligned_buffer.hpp"
#include "support/error.hpp"
#include "support/threading.hpp"
#include "telemetry/telemetry.hpp"

namespace fbmpk {

/// Exact row policy: every L/U row dot goes straight to the shared
/// fb_detail helpers, so any sweep parameterized on it performs exactly
/// the operations of the serial reference kernel (bitwise identical).
/// kernels/fb_simd.hpp provides DispatchRows, the fast-mode twin with
/// the same member signatures (runtime-dispatched SIMD + packed
/// indices); both parallel sweeps below are templated on the policy.
template <class T>
struct ScalarRows {
  const index_t* lrp;
  const index_t* lci;
  const T* lva;
  const index_t* urp;
  const index_t* uci;
  const T* uva;
  const T* dgv;

  explicit ScalarRows(const TriangularSplit<T>& s)
      : lrp(s.lower.row_ptr().data()),
        lci(s.lower.col_idx().data()),
        lva(s.lower.values().data()),
        urp(s.upper.row_ptr().data()),
        uci(s.upper.col_idx().data()),
        uva(s.upper.values().data()),
        dgv(s.diag.data()) {}

  void l_dot2(index_t i, const T* xy, T& s0, T& s1) const {
    NullTracer tr;
    detail::row_dot2_btb(lci, lva, lrp[i], lrp[i + 1], xy, s0, s1, tr);
  }
  void u_dot2(index_t i, const T* xy, T& s0, T& s1) const {
    NullTracer tr;
    detail::row_dot2_btb(uci, uva, urp[i], urp[i + 1], xy, s0, s1, tr);
  }
  void l_dot1(index_t i, const T* xy, int offset, T& s) const {
    NullTracer tr;
    detail::row_dot1_btb(lci, lva, lrp[i], lrp[i + 1], xy, offset, s, tr);
  }
  void u_dot1(index_t i, const T* xy, int offset, T& s) const {
    NullTracer tr;
    detail::row_dot1_btb(uci, uva, urp[i], urp[i + 1], xy, offset, s, tr);
  }
  /// Diagonal entry i (exact storage — the fp64 reference stream).
  T diag(index_t i) const { return dgv[i]; }
  /// Stream row i's index/value data (engine NUMA warm pass).
  void warm(index_t i, T& acc) const {
    for (index_t q = lrp[i]; q < lrp[i + 1]; ++q)
      acc += lva[q] + static_cast<T>(lci[q]);
    for (index_t q = urp[i]; q < urp[i + 1]; ++q)
      acc += uva[q] + static_cast<T>(uci[q]);
  }
};

/// Color-scheduled parallel sweep over an explicit row policy.
/// emit(p, i, v) fires once per power p in [1, k] and (permuted) row i;
/// it may be called concurrently for distinct rows and must be safe
/// under that.
///
/// `ctl` (optional) is a cooperative cancellation token: it is polled
/// at every stage boundary (head, each color of each sweep, tail).
/// Once it reports cancelled, the remaining row work is skipped but
/// every thread still encounters every worksharing construct, so the
/// kernel terminates promptly with the outputs unspecified — the
/// caller must discard them. Never throws across the parallel region.
///
/// Generic over the iterate element TI (double, or Pack<double, B> for
/// batched multi-vector sweeps) and the x0 source X0 (a span, or a
/// gather adapter reading straight from request buffers); T stays the
/// split's element type.
template <class T, class TI, class Rows, class X0, class Emit>
void fbmpk_parallel_sweep_rows(const TriangularSplit<T>& s,
                               const AbmcOrdering& o, const Rows& rows,
                               const X0& x0, int k, FbWorkspace<TI>& ws,
                               Emit&& emit, RunControl* ctl = nullptr) {
  const index_t n = s.lower.rows();
  FBMPK_CHECK(s.upper.rows() == n &&
              s.diag.size() == static_cast<std::size_t>(n));
  FBMPK_CHECK(x0.size() == static_cast<std::size_t>(n));
  FBMPK_CHECK(k >= 1);
  FBMPK_CHECK_MSG(!o.block_ptr.empty() && o.block_ptr.back() == n,
                  "schedule does not cover the matrix");
  ws.resize(n);

  TI* xy = ws.xy.data();
  TI* tmp = ws.tmp.data();

  const int pairs = k / 2;
  const index_t num_colors = o.num_colors;

#ifdef _OPENMP
#pragma omp parallel default(shared)
#endif
  {
    // Telemetry (compiled out when FBMPK_TELEMETRY is off): one span
    // per (k-step, color) stage, recorded by thread 0 — the implicit
    // barrier after each `omp for` makes its timestamps bracket the
    // whole team's color.
    FBMPK_TELEMETRY_ONLY(
        telemetry::SweepRecorder fbmpk_rec{false};
        const bool fbmpk_rec0 = thread_id() == 0;)

    // Per-stage cancellation poll. Thread 0 additionally drives the
    // heartbeat / injected-stall checkpoint; diverging answers across
    // the team are harmless — every worksharing construct below is
    // still encountered by every thread, only loop bodies are skipped.
    const auto stage_dead = [&]() -> bool {
      if (ctl == nullptr) return false;
      if (thread_id() == 0) return ctl->checkpoint();
      return ctl->cancelled();
    };
    bool dead = stage_dead();

    // Head: even slots <- x0; tmp <- U·x0. Row-parallel, no coloring
    // needed (reads only x0).
    FBMPK_TELEMETRY_ONLY(if (fbmpk_rec0) fbmpk_rec.stage_begin();)
#ifdef _OPENMP
#pragma omp for schedule(static)
#endif
    for (index_t i = 0; i < n; ++i) {
      if (dead) continue;
      xy[2 * i] = x0[i];
    }
#ifdef _OPENMP
#pragma omp for schedule(static)
#endif
    for (index_t i = 0; i < n; ++i) {
      if (dead) continue;
      TI sum{};
      rows.u_dot1(i, xy, 0, sum);
      tmp[i] = sum;
    }
    FBMPK_TELEMETRY_ONLY(if (fbmpk_rec0) fbmpk_rec.stage_end("head", 0, -1);)

    for (int it = 0; it < pairs; ++it) {
      const int p_odd = 2 * it + 1;
      const int p_even = 2 * it + 2;

      // Forward: colors ascending; blocks of one color in parallel;
      // rows within a block top-down.
      for (index_t c = 0; c < num_colors; ++c) {
        dead = dead || stage_dead();
        FBMPK_TELEMETRY_ONLY(if (fbmpk_rec0) fbmpk_rec.stage_begin();)
#ifdef _OPENMP
#pragma omp for schedule(static)
#endif
        for (index_t b = o.color_ptr[c]; b < o.color_ptr[c + 1]; ++b) {
          if (dead) continue;
          for (index_t i = o.block_ptr[b]; i < o.block_ptr[b + 1]; ++i) {
            const auto di = rows.diag(i);
            TI sum0 = madd(di, xy[2 * i], tmp[i]);
            TI sum1{};
            rows.l_dot2(i, xy, sum0, sum1);
            xy[2 * i + 1] = sum0;
            emit(p_odd, i, sum0);
            tmp[i] = madd(di, sum0, sum1);
          }
        }  // implicit barrier: color c complete before c+1 starts
        FBMPK_TELEMETRY_ONLY(if (fbmpk_rec0)
                                 fbmpk_rec.stage_end("fwd", p_odd,
                                                     static_cast<int>(c));)
      }

      // Backward: colors descending; rows within a block bottom-up.
      const bool prime_next = !(it == pairs - 1 && k % 2 == 0);
      for (index_t c = num_colors; c-- > 0;) {
        dead = dead || stage_dead();
        FBMPK_TELEMETRY_ONLY(if (fbmpk_rec0) fbmpk_rec.stage_begin();)
#ifdef _OPENMP
#pragma omp for schedule(static)
#endif
        for (index_t b = o.color_ptr[c]; b < o.color_ptr[c + 1]; ++b) {
          if (dead) continue;
          for (index_t i = o.block_ptr[b + 1]; i-- > o.block_ptr[b];) {
            TI sum0 = tmp[i];
            if (prime_next) {
              TI sum1{};
              rows.u_dot2(i, xy, sum1, sum0);
              xy[2 * i] = sum0;
              emit(p_even, i, sum0);
              tmp[i] = sum1;
            } else {
              rows.u_dot1(i, xy, 1, sum0);
              xy[2 * i] = sum0;
              emit(p_even, i, sum0);
            }
          }
        }
        FBMPK_TELEMETRY_ONLY(if (fbmpk_rec0)
                                 fbmpk_rec.stage_end("bwd", p_even,
                                                     static_cast<int>(c));)
      }
    }

    if (k % 2 == 1) {
      // Tail: reads only completed even slots and tmp; row-parallel.
      dead = dead || stage_dead();
      FBMPK_TELEMETRY_ONLY(if (fbmpk_rec0) fbmpk_rec.stage_begin();)
#ifdef _OPENMP
#pragma omp for schedule(static)
#endif
      for (index_t i = 0; i < n; ++i) {
        if (dead) continue;
        TI sum = madd(rows.diag(i), xy[2 * i], tmp[i]);
        rows.l_dot1(i, xy, 0, sum);
        emit(k, i, sum);
      }
      FBMPK_TELEMETRY_ONLY(if (fbmpk_rec0) fbmpk_rec.stage_end("tail", k, -1);)
    }
  }
}

/// Color-scheduled parallel sweep with the exact scalar row policy —
/// bitwise identical to the serial kernel.
template <class T, class Emit>
void fbmpk_parallel_sweep(const TriangularSplit<T>& s, const AbmcOrdering& o,
                          std::span<const T> x0, int k, FbWorkspace<T>& ws,
                          Emit&& emit, RunControl* ctl = nullptr) {
  fbmpk_parallel_sweep_rows(s, o, ScalarRows<T>(s), x0, k, ws,
                            std::forward<Emit>(emit), ctl);
}

/// y = A^k x0, parallel; operates in the permuted index space.
template <class T>
void fbmpk_parallel_power(const TriangularSplit<T>& s, const AbmcOrdering& o,
                          std::span<const T> x0, int k, std::span<T> y,
                          FbWorkspace<T>& ws) {
  FBMPK_CHECK(y.size() == x0.size());
  FBMPK_CHECK(k >= 0);
  if (k == 0) {
    std::copy(x0.begin(), x0.end(), y.begin());
    return;
  }
  T* yp = y.data();
  fbmpk_parallel_sweep(s, o, x0, k, ws, [&](int p, index_t i, T v) {
    if (p == k) yp[i] = v;
  });
}

/// Krylov basis, parallel: out[p*n + i] = (A^p x0)[i], p in [0, k].
template <class T>
void fbmpk_parallel_power_all(const TriangularSplit<T>& s,
                              const AbmcOrdering& o, std::span<const T> x0,
                              int k, std::span<T> out, FbWorkspace<T>& ws) {
  const auto n = x0.size();
  FBMPK_CHECK(out.size() == n * static_cast<std::size_t>(k + 1));
  std::copy(x0.begin(), x0.end(), out.begin());
  if (k == 0) return;
  T* op = out.data();
  fbmpk_parallel_sweep(s, o, x0, k, ws, [&](int p, index_t i, T v) {
    op[static_cast<std::size_t>(p) * n + i] = v;
  });
}

/// y = sum_p coeffs[p] A^p x0, parallel.
template <class T>
void fbmpk_parallel_polynomial(const TriangularSplit<T>& s,
                               const AbmcOrdering& o,
                               std::span<const T> coeffs,
                               std::span<const T> x0, std::span<T> y,
                               FbWorkspace<T>& ws) {
  FBMPK_CHECK(!coeffs.empty());
  FBMPK_CHECK(y.size() == x0.size());
  const int k = static_cast<int>(coeffs.size()) - 1;
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = coeffs[0] * x0[i];
  if (k == 0) return;
  T* yp = y.data();
  const T* cp = coeffs.data();
  fbmpk_parallel_sweep(s, o, x0, k, ws, [&](int p, index_t i, T v) {
    yp[i] += cp[p] * v;
  });
}

// ---------------------------------------------------------------------------
// Persistent-threads sweep engine (point-to-point synchronization).
// ---------------------------------------------------------------------------

/// Workspace of the persistent-threads engine. The buffers are
/// allocated *uninitialized* on purpose: the head stage writes every
/// element of xy and tmp through the owning (thread, color) partition,
/// so on a first-touch NUMA policy each page lands on the node of the
/// thread that will keep streaming it. A value-initializing vector
/// would have the allocating thread touch (and place) everything.
/// `fallback` backs the barrier kernel when the engine cannot run
/// (team-size mismatch, empty schedule).
template <class T>
struct SweepWorkspace {
  SweepWorkspace() = default;

  void resize(index_t n) {
    if (n == n_) return;
    xy_.reset(raw_alloc(2 * static_cast<std::size_t>(n)));
    tmp_.reset(raw_alloc(static_cast<std::size_t>(n)));
    n_ = n;
    warmed = false;
  }

  T* xy() { return xy_.get(); }
  T* tmp() { return tmp_.get(); }
  index_t size() const { return n_; }

  /// Set once the split arrays have been streamed by their owning
  /// threads (cold-start cache/NUMA warm pass, done on first use).
  bool warmed = false;
  FbWorkspace<T> fallback;

 private:
  struct FreeDeleter {
    void operator()(T* p) const { std::free(p); }
  };
  static T* raw_alloc(std::size_t count) {
    if (count == 0) return nullptr;
    const std::size_t bytes =
        (count * sizeof(T) + kCacheLineBytes - 1) / kCacheLineBytes *
        kCacheLineBytes;
    void* p = std::aligned_alloc(kCacheLineBytes, bytes);
    FBMPK_CHECK_MSG(p != nullptr, "sweep workspace allocation failed");
    return static_cast<T*>(p);
  }
  std::unique_ptr<T[], FreeDeleter> xy_;
  std::unique_ptr<T[], FreeDeleter> tmp_;
  index_t n_ = 0;
};

namespace detail {

/// One cache line per thread's epoch counter — threads spin on foreign
/// counters, so sharing a line would turn every bump into a broadcast.
struct alignas(kCacheLineBytes) SweepEpoch {
  std::atomic<long long> value{0};
};

/// Wait until the epoch counter reaches `target`: a bounded spin phase
/// (tuned down to zero on oversubscribed teams, where spinning only
/// steals the awaited thread's timeslice), then a futex-style block on
/// the counter — the same sleeping a team barrier would do, but woken
/// by the one thread this stage actually depends on. Returns whether
/// the wait fell through to a futex block (telemetry classifies
/// spin-satisfied vs blocked waits; callers otherwise ignore it).
inline bool sweep_wait(std::atomic<long long>& e, long long target,
                       int spin_rounds) {
  SpinWaiter w;
  for (int i = 0; i < spin_rounds; ++i) {
    if (e.load(std::memory_order_acquire) >= target) return false;
    w.wait();
  }
  long long cur = e.load(std::memory_order_acquire);
  bool blocked = false;
  while (cur < target) {
    blocked = true;
    e.wait(cur, std::memory_order_acquire);
    cur = e.load(std::memory_order_acquire);
  }
  return blocked;
}

}  // namespace detail

/// Point-to-point engine behind fbmpk_engine_sweep. Returns false
/// without touching any output when it cannot run safely — the caller
/// then falls back to the barrier kernel. Reasons: schedule empty,
/// schedule shape not matching the ordering, or the OpenMP runtime
/// delivering a team smaller than schedule.num_threads (nested
/// parallelism, thread limits).
///
/// Epoch protocol (derivation in sweep_schedule.hpp and
/// docs/PARALLELISM.md): each thread owns one monotone counter,
/// bumped with release order after every stage. With C colors and
/// `pairs` forward/backward pairs the global stage list is
///   head0, head1, {F_0..F_{C-1}, B_{C-1}..B_0} x pairs, [tail]
/// so after head0 a thread's counter reads 1, after head1 it reads 2,
/// after F_c of pair `it` it reads 2 + it*2C + c + 1, and after B_c of
/// pair `it` it reads 2 + it*2C + C + (C - 1 - c) + 1. Stage waits
/// compare foreign counters against these values with acquire order.
/// Every dependency targets a strictly earlier stage in the list and
/// every thread visits every stage (even with an empty partition), so
/// the wait graph is acyclic: no deadlock.
template <class T, class TI, class Rows, class X0, class Emit>
bool fbmpk_engine_try_sweep_rows(const TriangularSplit<T>& s,
                                 const AbmcOrdering& o,
                                 const SweepSchedule& sched, const Rows& rows,
                                 const X0& x0, int k, SweepWorkspace<TI>& ws,
                                 bool pin_threads, Emit&& emit,
                                 RunControl* ctl = nullptr) {
  const index_t n = s.lower.rows();
  FBMPK_CHECK(s.upper.rows() == n &&
              s.diag.size() == static_cast<std::size_t>(n));
  FBMPK_CHECK(x0.size() == static_cast<std::size_t>(n));
  FBMPK_CHECK(k >= 1);
  FBMPK_CHECK_MSG(!o.block_ptr.empty() && o.block_ptr.back() == n,
                  "schedule does not cover the matrix");
  if (sched.empty() || sched.num_colors != o.num_colors ||
      sched.num_blocks != o.num_blocks)
    return false;

  const index_t T_n = sched.num_threads;
  if (T_n > max_threads()) return false;
  ws.resize(n);

  TI* xy = ws.xy();
  TI* tmp = ws.tmp();

  const int pairs = k / 2;
  const index_t C = sched.num_colors;
  const long long stage_pairs = 2LL * C;
  const bool warm_split = !ws.warmed;

  const auto epochs = std::make_unique<detail::SweepEpoch[]>(
      static_cast<std::size_t>(T_n));
  std::atomic<bool> team_ok{true};

  parallel_region_n(static_cast<int>(T_n), [&](int tid, int team) {
    if (team != static_cast<int>(T_n)) {
      // Whole team sees the same size; everyone bails consistently
      // before touching shared state.
      if (tid == 0) team_ok.store(false, std::memory_order_relaxed);
      return;
    }
    if (pin_threads) pin_team_compact();

    // Telemetry (compiled out when FBMPK_TELEMETRY is off): every
    // thread records its own (k-step, color) stage spans and
    // spin-vs-futex wait accounting into its thread-local buffer.
    FBMPK_TELEMETRY_ONLY(telemetry::SweepRecorder fbmpk_rec{true};)

    // Oversubscribed teams skip the spin phase entirely: the awaited
    // thread is not running concurrently, so spinning only delays its
    // next timeslice. Dedicated cores spin briefly before sleeping.
    const int pause_spins = team > hardware_cpus() ? 0 : 1024;
    const index_t t = static_cast<index_t>(tid);
    std::atomic<long long>& my = epochs[t].value;
    const auto bump = [&my] {
      my.fetch_add(1, std::memory_order_release);
      my.notify_all();
    };
    // Walk this thread's rows across all its color partitions.
    const auto for_own_rows = [&](auto&& row_fn) {
      for (index_t c = 0; c < C; ++c) {
        const std::size_t slot = sched.slot(t, c);
        for (index_t pi = sched.part_ptr[slot]; pi < sched.part_ptr[slot + 1];
             ++pi) {
          const index_t b = sched.part_blocks[pi];
          for (index_t i = o.block_ptr[b]; i < o.block_ptr[b + 1]; ++i)
            row_fn(i);
        }
      }
    };
    // Per-stage cancellation poll (thread 0 also drives the heartbeat /
    // injected-stall checkpoint). A cancelled thread skips row work but
    // keeps bumping its epoch, so every foreign wait still terminates —
    // the acyclic stage protocol is preserved under cancellation.
    bool dead = false;
    const auto stage_dead = [&]() -> bool {
      if (ctl == nullptr) return dead;
      if (tid == 0) dead = dead || ctl->checkpoint();
      else dead = dead || ctl->cancelled();
      return dead;
    };
    const auto wait_all = [&](long long target) {
      FBMPK_TELEMETRY_ONLY(
          const bool fbmpk_have_deps =
              sched.all_dep_ptr[t] < sched.all_dep_ptr[t + 1];
          if (fbmpk_have_deps && fbmpk_rec.active()) fbmpk_rec.wait_begin();
          bool fbmpk_blocked = false;)
      for (index_t q = sched.all_dep_ptr[t]; q < sched.all_dep_ptr[t + 1];
           ++q) {
        const bool blocked = detail::sweep_wait(epochs[sched.all_deps[q]].value,
                                                target, pause_spins);
        (void)blocked;
        FBMPK_TELEMETRY_ONLY(fbmpk_blocked = fbmpk_blocked || blocked;)
      }
      FBMPK_TELEMETRY_ONLY(if (fbmpk_have_deps && fbmpk_rec.active())
                               fbmpk_rec.wait_end(fbmpk_blocked);)
    };

    // head0: xy even slots <- x0 over owned rows. This is the
    // first-touch pass for xy; the warm read of the split arrays rides
    // along (row i's CSR data is only ever read while processing row
    // i, always by its owner, so this races with nothing).
    T sink{};
    stage_dead();
    FBMPK_TELEMETRY_ONLY(fbmpk_rec.stage_begin();)
    if (!dead) for_own_rows([&](index_t i) {
      xy[2 * i] = x0[i];
      if (warm_split) {
        T acc{};
        rows.warm(i, acc);
        sink += acc + rows.diag(i);
      }
    });
    if (warm_split) {
      volatile T keep = sink;  // keep the warm reads observable
      (void)keep;
    }
    bump();  // epoch 1
    FBMPK_TELEMETRY_ONLY(fbmpk_rec.stage_end("head0", 0, -1);)

    // head1: tmp <- U·x0. Reads foreign xy even slots; needs every
    // neighbor owner past head0.
    wait_all(1);
    stage_dead();
    FBMPK_TELEMETRY_ONLY(fbmpk_rec.stage_begin();)
    if (!dead) for_own_rows([&](index_t i) {
      TI sum{};
      rows.u_dot1(i, xy, 0, sum);
      tmp[i] = sum;
    });
    bump();  // epoch 2
    FBMPK_TELEMETRY_ONLY(fbmpk_rec.stage_end("head1", 0, -1);)

    for (int it = 0; it < pairs; ++it) {
      const int p_odd = 2 * it + 1;
      const int p_even = 2 * it + 2;
      const long long base = 2 + it * stage_pairs;
      const bool prime_next = !(it == pairs - 1 && k % 2 == 0);

      // Forward stages: colors ascending, rows top-down.
      for (index_t c = 0; c < C; ++c) {
        const std::size_t slot = sched.slot(t, c);
        FBMPK_TELEMETRY_ONLY(
            const bool fbmpk_have_deps =
                sched.fwd_dep_ptr[slot] < sched.fwd_dep_ptr[slot + 1];
            if (fbmpk_have_deps && fbmpk_rec.active()) fbmpk_rec.wait_begin();
            bool fbmpk_blocked = false;)
        for (index_t q = sched.fwd_dep_ptr[slot];
             q < sched.fwd_dep_ptr[slot + 1]; ++q) {
          const SweepDep& dep = sched.fwd_deps[q];
          const bool blocked = detail::sweep_wait(
              epochs[dep.thread].value, base + dep.color + 1, pause_spins);
          (void)blocked;
          FBMPK_TELEMETRY_ONLY(fbmpk_blocked = fbmpk_blocked || blocked;)
        }
        stage_dead();
        FBMPK_TELEMETRY_ONLY(
            if (fbmpk_have_deps && fbmpk_rec.active())
                fbmpk_rec.wait_end(fbmpk_blocked);
            fbmpk_rec.stage_begin();)
        if (!dead)
          for (index_t pi = sched.part_ptr[slot];
               pi < sched.part_ptr[slot + 1]; ++pi) {
            const index_t b = sched.part_blocks[pi];
            for (index_t i = o.block_ptr[b]; i < o.block_ptr[b + 1]; ++i) {
              const auto di = rows.diag(i);
              TI sum0 = madd(di, xy[2 * i], tmp[i]);
              TI sum1{};
              rows.l_dot2(i, xy, sum0, sum1);
              xy[2 * i + 1] = sum0;
              emit(p_odd, i, sum0);
              tmp[i] = madd(di, sum0, sum1);
            }
          }
        bump();  // epoch base + c + 1
        FBMPK_TELEMETRY_ONLY(
            fbmpk_rec.stage_end("F", p_odd, static_cast<int>(c));)
      }

      // Backward stages: colors descending, rows bottom-up.
      for (index_t c = C; c-- > 0;) {
        const std::size_t slot = sched.slot(t, c);
        FBMPK_TELEMETRY_ONLY(
            const bool fbmpk_have_deps =
                sched.bwd_dep_ptr[slot] < sched.bwd_dep_ptr[slot + 1];
            if (fbmpk_have_deps && fbmpk_rec.active()) fbmpk_rec.wait_begin();
            bool fbmpk_blocked = false;)
        for (index_t q = sched.bwd_dep_ptr[slot];
             q < sched.bwd_dep_ptr[slot + 1]; ++q) {
          const SweepDep& dep = sched.bwd_deps[q];
          const bool blocked =
              detail::sweep_wait(epochs[dep.thread].value,
                                 base + C + (C - 1 - dep.color) + 1,
                                 pause_spins);
          (void)blocked;
          FBMPK_TELEMETRY_ONLY(fbmpk_blocked = fbmpk_blocked || blocked;)
        }
        stage_dead();
        FBMPK_TELEMETRY_ONLY(
            if (fbmpk_have_deps && fbmpk_rec.active())
                fbmpk_rec.wait_end(fbmpk_blocked);
            fbmpk_rec.stage_begin();)
        if (!dead)
          for (index_t pi = sched.part_ptr[slot];
               pi < sched.part_ptr[slot + 1]; ++pi) {
            const index_t b = sched.part_blocks[pi];
            for (index_t i = o.block_ptr[b + 1]; i-- > o.block_ptr[b];) {
              TI sum0 = tmp[i];
              if (prime_next) {
                TI sum1{};
                rows.u_dot2(i, xy, sum1, sum0);
                xy[2 * i] = sum0;
                emit(p_even, i, sum0);
                tmp[i] = sum1;
              } else {
                rows.u_dot1(i, xy, 1, sum0);
                xy[2 * i] = sum0;
                emit(p_even, i, sum0);
              }
            }
          }
        bump();  // epoch base + C + (C-1-c) + 1
        FBMPK_TELEMETRY_ONLY(
            fbmpk_rec.stage_end("B", p_even, static_cast<int>(c));)
      }
    }

    if (k % 2 == 1) {
      // Tail: reads foreign even slots; needs every neighbor owner
      // through the whole pair sequence.
      wait_all(2 + pairs * stage_pairs);
      stage_dead();
      FBMPK_TELEMETRY_ONLY(fbmpk_rec.stage_begin();)
      if (!dead) for_own_rows([&](index_t i) {
        TI sum = madd(rows.diag(i), xy[2 * i], tmp[i]);
        rows.l_dot1(i, xy, 0, sum);
        emit(k, i, sum);
      });
      bump();
      FBMPK_TELEMETRY_ONLY(fbmpk_rec.stage_end("tail", k, -1);)
    }
  });

  if (!team_ok.load(std::memory_order_relaxed)) return false;
  // A cancelled run may have skipped part of the warm pass; only a
  // completed head stage marks the workspace warm.
  if (ctl == nullptr || !ctl->cancelled()) ws.warmed = true;
  return true;
}

/// Engine sweep with the exact scalar row policy (the PR 2 behavior).
template <class T, class Emit>
bool fbmpk_engine_try_sweep(const TriangularSplit<T>& s,
                            const AbmcOrdering& o, const SweepSchedule& sched,
                            std::span<const T> x0, int k,
                            SweepWorkspace<T>& ws, bool pin_threads,
                            Emit&& emit) {
  return fbmpk_engine_try_sweep_rows(s, o, sched, ScalarRows<T>(s), x0, k, ws,
                                     pin_threads, std::forward<Emit>(emit));
}

/// Point-to-point sweep over an explicit row policy with automatic
/// fallback to the per-color barrier kernel when the engine cannot
/// run. Same emit contract and identical results either way (both
/// paths issue the same per-row kernels).
template <class T, class TI, class Rows, class X0, class Emit>
void fbmpk_engine_sweep_rows(const TriangularSplit<T>& s,
                             const AbmcOrdering& o, const SweepSchedule& sched,
                             const Rows& rows, const X0& x0, int k,
                             SweepWorkspace<TI>& ws, Emit&& emit,
                             bool pin_threads = false,
                             RunControl* ctl = nullptr) {
  if (!fbmpk_engine_try_sweep_rows(s, o, sched, rows, x0, k, ws, pin_threads,
                                   emit, ctl))
    fbmpk_parallel_sweep_rows(s, o, rows, x0, k, ws.fallback, emit, ctl);
}

/// Point-to-point sweep with automatic fallback to the per-color
/// barrier kernel when the engine cannot run. Same emit contract and
/// bitwise-identical results either way.
template <class T, class Emit>
void fbmpk_engine_sweep(const TriangularSplit<T>& s, const AbmcOrdering& o,
                        const SweepSchedule& sched, std::span<const T> x0,
                        int k, SweepWorkspace<T>& ws, Emit&& emit,
                        bool pin_threads = false) {
  fbmpk_engine_sweep_rows(s, o, sched, ScalarRows<T>(s), x0, k, ws,
                          std::forward<Emit>(emit), pin_threads);
}

/// y = A^k x0 via the persistent-threads engine.
template <class T>
void fbmpk_engine_power(const TriangularSplit<T>& s, const AbmcOrdering& o,
                        const SweepSchedule& sched, std::span<const T> x0,
                        int k, std::span<T> y, SweepWorkspace<T>& ws,
                        bool pin_threads = false) {
  FBMPK_CHECK(y.size() == x0.size());
  FBMPK_CHECK(k >= 0);
  if (k == 0) {
    std::copy(x0.begin(), x0.end(), y.begin());
    return;
  }
  T* yp = y.data();
  fbmpk_engine_sweep(
      s, o, sched, x0, k, ws,
      [&](int p, index_t i, T v) {
        if (p == k) yp[i] = v;
      },
      pin_threads);
}

/// Krylov basis via the persistent-threads engine.
template <class T>
void fbmpk_engine_power_all(const TriangularSplit<T>& s,
                            const AbmcOrdering& o, const SweepSchedule& sched,
                            std::span<const T> x0, int k, std::span<T> out,
                            SweepWorkspace<T>& ws, bool pin_threads = false) {
  const auto n = x0.size();
  FBMPK_CHECK(out.size() == n * static_cast<std::size_t>(k + 1));
  std::copy(x0.begin(), x0.end(), out.begin());
  if (k == 0) return;
  T* op = out.data();
  fbmpk_engine_sweep(
      s, o, sched, x0, k, ws,
      [&](int p, index_t i, T v) {
        op[static_cast<std::size_t>(p) * n + i] = v;
      },
      pin_threads);
}

/// y = sum_p coeffs[p] A^p x0 via the persistent-threads engine.
template <class T>
void fbmpk_engine_polynomial(const TriangularSplit<T>& s,
                             const AbmcOrdering& o,
                             const SweepSchedule& sched,
                             std::span<const T> coeffs, std::span<const T> x0,
                             std::span<T> y, SweepWorkspace<T>& ws,
                             bool pin_threads = false) {
  FBMPK_CHECK(!coeffs.empty());
  FBMPK_CHECK(y.size() == x0.size());
  const int k = static_cast<int>(coeffs.size()) - 1;
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = coeffs[0] * x0[i];
  if (k == 0) return;
  T* yp = y.data();
  const T* cp = coeffs.data();
  fbmpk_engine_sweep(
      s, o, sched, x0, k, ws,
      [&](int p, index_t i, T v) { yp[i] += cp[p] * v; },
      pin_threads);
}

}  // namespace fbmpk
