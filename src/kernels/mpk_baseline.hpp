// Standard matrix-power kernel (paper Algorithm 1): the baseline that
// streams the full matrix from memory once per power.
//
// All entry points share the Emit convention used across the library:
// emit(p, i, v) is invoked exactly once per power p in [1, k] and row i,
// with v = (A^p x0)[i]. Wrappers turn that into "final vector only",
// "full Krylov basis", or "polynomial accumulation".
#pragma once

#include <span>
#include <utility>

#include "kernels/spmv.hpp"
#include "kernels/tracer.hpp"
#include "sparse/csr.hpp"
#include "support/aligned_buffer.hpp"
#include "support/error.hpp"

namespace fbmpk {

/// Scratch for the baseline: two ping-pong vectors.
template <class T>
struct MpkWorkspace {
  AlignedVector<T> a;
  AlignedVector<T> b;

  void resize(index_t n) {
    a.resize(static_cast<std::size_t>(n));
    b.resize(static_cast<std::size_t>(n));
  }
};

/// Generic traced sweep of the standard MPK.
template <class T, class Emit, MemoryTracer Tr>
void mpk_standard_sweep_traced(const CsrMatrix<T>& m, std::span<const T> x0,
                               int k, MpkWorkspace<T>& ws, Emit&& emit,
                               Tr& tr, SpmvExec exec) {
  FBMPK_CHECK(m.rows() == m.cols());
  FBMPK_CHECK(x0.size() == static_cast<std::size_t>(m.rows()));
  FBMPK_CHECK(k >= 0);
  const index_t n = m.rows();
  ws.resize(n);

  std::copy(x0.begin(), x0.end(), ws.a.begin());
  T* cur = ws.a.data();
  T* nxt = ws.b.data();
  for (int p = 1; p <= k; ++p) {
    spmv_traced(m, std::span<const T>(cur, static_cast<std::size_t>(n)),
                std::span<T>(nxt, static_cast<std::size_t>(n)), tr, exec);
    for (index_t i = 0; i < n; ++i) emit(p, i, nxt[i]);
    std::swap(cur, nxt);
  }
}

/// Generic sweep, untraced.
template <class T, class Emit>
void mpk_standard_sweep(const CsrMatrix<T>& m, std::span<const T> x0, int k,
                        MpkWorkspace<T>& ws, Emit&& emit,
                        SpmvExec exec = SpmvExec::kUnrolled) {
  NullTracer tr;
  mpk_standard_sweep_traced(m, x0, k, ws, std::forward<Emit>(emit), tr, exec);
}

/// y = A^k x0 via the standard pipeline. k = 0 copies x0.
template <class T>
void mpk_power(const CsrMatrix<T>& m, std::span<const T> x0, int k,
               std::span<T> y, MpkWorkspace<T>& ws,
               SpmvExec exec = SpmvExec::kUnrolled) {
  FBMPK_CHECK(y.size() == x0.size());
  if (k == 0) {
    std::copy(x0.begin(), x0.end(), y.begin());
    return;
  }
  mpk_standard_sweep(
      m, x0, k, ws,
      [&](int p, index_t i, T v) {
        if (p == k) y[i] = v;
      },
      exec);
}

/// Krylov basis: out holds k+1 rows of length n; out[0] = x0,
/// out[p] = A^p x0.
template <class T>
void mpk_power_all(const CsrMatrix<T>& m, std::span<const T> x0, int k,
                   std::span<T> out, MpkWorkspace<T>& ws,
                   SpmvExec exec = SpmvExec::kUnrolled) {
  const auto n = x0.size();
  FBMPK_CHECK(out.size() == n * static_cast<std::size_t>(k + 1));
  std::copy(x0.begin(), x0.end(), out.begin());
  mpk_standard_sweep(
      m, x0, k, ws,
      [&](int p, index_t i, T v) {
        out[static_cast<std::size_t>(p) * n + i] = v;
      },
      exec);
}

/// y = sum_{p=0..k} coeffs[p] * A^p x0 via the standard pipeline.
template <class T>
void mpk_polynomial(const CsrMatrix<T>& m, std::span<const T> coeffs,
                    std::span<const T> x0, std::span<T> y,
                    MpkWorkspace<T>& ws,
                    SpmvExec exec = SpmvExec::kUnrolled) {
  FBMPK_CHECK(!coeffs.empty());
  FBMPK_CHECK(y.size() == x0.size());
  const int k = static_cast<int>(coeffs.size()) - 1;
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = coeffs[0] * x0[i];
  mpk_standard_sweep(
      m, x0, k, ws,
      [&](int p, index_t i, T v) { y[i] += coeffs[p] * v; }, exec);
}

}  // namespace fbmpk
