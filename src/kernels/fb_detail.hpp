// Row-level building blocks shared by the serial and parallel FBMPK
// sweeps. Both kernels MUST use these helpers so their floating-point
// operation order is identical — the test suite asserts bitwise equality
// between serial and color-scheduled execution.
//
// Each helper is 4-way unrolled with independent accumulator pairs: the
// forward/backward sweeps accumulate TWO dot products per row (the
// current iterate and the pipelined next iterate), so a plain loop
// carries two dependent FMA chains; splitting each into (a, b) partial
// sums restores the instruction-level parallelism the unrolled baseline
// SpMV enjoys.
#pragma once

#include "kernels/tracer.hpp"
#include "sparse/coo.hpp"

namespace fbmpk::detail {

/// BtB layout: accumulate s0 += row·xy[2c], s1 += row·xy[2c+1].
template <class T, MemoryTracer Tr>
inline void row_dot2_btb(const index_t* col, const T* val, index_t lo,
                         index_t hi, const T* xy, T& s0, T& s1, Tr& tr) {
  T a0{}, a1{}, b0{}, b1{}, c0s{}, c1s{}, d0{}, d1{};
  index_t j = lo;
  for (; j + 3 < hi; j += 4) {
    const index_t c0 = col[j];
    const index_t c1 = col[j + 1];
    const index_t c2 = col[j + 2];
    const index_t c3 = col[j + 3];
    tr.read(col + j);
    tr.read(val + j);
    tr.read(col + j + 1);
    tr.read(val + j + 1);
    tr.read(col + j + 2);
    tr.read(val + j + 2);
    tr.read(col + j + 3);
    tr.read(val + j + 3);
    tr.read(xy + 2 * c0);
    tr.read(xy + 2 * c0 + 1);
    tr.read(xy + 2 * c1);
    tr.read(xy + 2 * c1 + 1);
    tr.read(xy + 2 * c2);
    tr.read(xy + 2 * c2 + 1);
    tr.read(xy + 2 * c3);
    tr.read(xy + 2 * c3 + 1);
    a0 += val[j] * xy[2 * c0];
    a1 += val[j] * xy[2 * c0 + 1];
    b0 += val[j + 1] * xy[2 * c1];
    b1 += val[j + 1] * xy[2 * c1 + 1];
    c0s += val[j + 2] * xy[2 * c2];
    c1s += val[j + 2] * xy[2 * c2 + 1];
    d0 += val[j + 3] * xy[2 * c3];
    d1 += val[j + 3] * xy[2 * c3 + 1];
  }
  for (; j < hi; ++j) {
    tr.read(col + j);
    tr.read(val + j);
    const index_t c = col[j];
    tr.read(xy + 2 * c);
    tr.read(xy + 2 * c + 1);
    a0 += val[j] * xy[2 * c];
    a1 += val[j] * xy[2 * c + 1];
  }
  s0 += (a0 + b0) + (c0s + d0);
  s1 += (a1 + b1) + (c1s + d1);
}

/// Split layout: accumulate s0 += row·xa, s1 += row·xb.
template <class T, MemoryTracer Tr>
inline void row_dot2_split(const index_t* col, const T* val, index_t lo,
                           index_t hi, const T* xa, const T* xb, T& s0,
                           T& s1, Tr& tr) {
  T a0{}, a1{}, b0{}, b1{}, c0s{}, c1s{}, d0{}, d1{};
  index_t j = lo;
  for (; j + 3 < hi; j += 4) {
    const index_t c0 = col[j];
    const index_t c1 = col[j + 1];
    const index_t c2 = col[j + 2];
    const index_t c3 = col[j + 3];
    tr.read(col + j);
    tr.read(val + j);
    tr.read(col + j + 1);
    tr.read(val + j + 1);
    tr.read(col + j + 2);
    tr.read(val + j + 2);
    tr.read(col + j + 3);
    tr.read(val + j + 3);
    tr.read(xa + c0);
    tr.read(xb + c0);
    tr.read(xa + c1);
    tr.read(xb + c1);
    tr.read(xa + c2);
    tr.read(xb + c2);
    tr.read(xa + c3);
    tr.read(xb + c3);
    a0 += val[j] * xa[c0];
    a1 += val[j] * xb[c0];
    b0 += val[j + 1] * xa[c1];
    b1 += val[j + 1] * xb[c1];
    c0s += val[j + 2] * xa[c2];
    c1s += val[j + 2] * xb[c2];
    d0 += val[j + 3] * xa[c3];
    d1 += val[j + 3] * xb[c3];
  }
  for (; j < hi; ++j) {
    tr.read(col + j);
    tr.read(val + j);
    const index_t c = col[j];
    tr.read(xa + c);
    tr.read(xb + c);
    a0 += val[j] * xa[c];
    a1 += val[j] * xb[c];
  }
  s0 += (a0 + b0) + (c0s + d0);
  s1 += (a1 + b1) + (c1s + d1);
}

/// Single dot against one BtB stream (offset 0 = even slots, 1 = odd):
/// s += row·xy[2c + offset]. Used by head/tail and the non-priming final
/// backward sweep.
template <class T, MemoryTracer Tr>
inline void row_dot1_btb(const index_t* col, const T* val, index_t lo,
                         index_t hi, const T* xy, int offset, T& s, Tr& tr) {
  T a{}, b{}, c2{}, d2{};
  index_t j = lo;
  for (; j + 3 < hi; j += 4) {
    tr.read(col + j);
    tr.read(val + j);
    tr.read(col + j + 1);
    tr.read(val + j + 1);
    tr.read(col + j + 2);
    tr.read(val + j + 2);
    tr.read(col + j + 3);
    tr.read(val + j + 3);
    tr.read(xy + 2 * col[j] + offset);
    tr.read(xy + 2 * col[j + 1] + offset);
    tr.read(xy + 2 * col[j + 2] + offset);
    tr.read(xy + 2 * col[j + 3] + offset);
    a += val[j] * xy[2 * col[j] + offset];
    b += val[j + 1] * xy[2 * col[j + 1] + offset];
    c2 += val[j + 2] * xy[2 * col[j + 2] + offset];
    d2 += val[j + 3] * xy[2 * col[j + 3] + offset];
  }
  for (; j < hi; ++j) {
    tr.read(col + j);
    tr.read(val + j);
    tr.read(xy + 2 * col[j] + offset);
    a += val[j] * xy[2 * col[j] + offset];
  }
  s += (a + b) + (c2 + d2);
}

// ---------------------------------------------------------------------------
// Batched (multi right-hand-side) twins. The iterate array generalizes
// from xy[2n] to xy[2·B·n], vector-major within each row slot: row c's
// B even-iterate lanes live at xy[2·B·c + b] and its B odd lanes at
// xy[2·B·c + B + b]. Each lane replicates the scalar helpers' exact
// accumulation order (the same four independent partials, remainder
// into partial 0, the same final reduction tree), and lanes never mix —
// so lane b of a batched sweep is bitwise identical to a B=1 sweep of
// that lane's vector. The per-lane loops are unit-stride, which is what
// the compiler auto-vectorizes across lanes (no gathers needed: one
// gathered row slot feeds B FMA pairs).
//
// Untraced on purpose: the batched path exists for throughput serving,
// not for the cache-simulator studies the traced single-vector sweeps
// feed.
// ---------------------------------------------------------------------------

/// Batched BtB dot pair: s0[b] += row·xy_even lane b, s1[b] += row·xy_odd
/// lane b. `s0`/`s1` point at B lane accumulators.
///
/// noinline: each instantiation must exist exactly once in the binary.
/// When these bodies inline into the serial, barrier, and engine sweep
/// pipelines separately, the optimizer makes an independent FMA-
/// contraction choice per inlining context (-ffp-contract defaults
/// contract when the target has FMA), and those choices were observed
/// to disagree — breaking the lane-vs-oracle bitwise contract on
/// -march=x86-64-v3 builds. One out-of-line copy means one decision.
template <int B, class T>
[[gnu::noinline]] inline void row_dot2_btb_bat(const index_t* col,
                                               const T* val, index_t lo,
                                               index_t hi, const T* xy, T* s0,
                                               T* s1) {
  static_assert(B >= 1);
  T a0[B]{}, a1[B]{}, b0[B]{}, b1[B]{}, c0s[B]{}, c1s[B]{}, d0[B]{}, d1[B]{};
  index_t j = lo;
  for (; j + 3 < hi; j += 4) {
    const T* pa = xy + 2 * B * col[j];
    const T* pb = xy + 2 * B * col[j + 1];
    const T* pc = xy + 2 * B * col[j + 2];
    const T* pd = xy + 2 * B * col[j + 3];
    const T v0 = val[j];
    const T v1 = val[j + 1];
    const T v2 = val[j + 2];
    const T v3 = val[j + 3];
    for (int b = 0; b < B; ++b) a0[b] += v0 * pa[b];
    for (int b = 0; b < B; ++b) a1[b] += v0 * pa[B + b];
    for (int b = 0; b < B; ++b) b0[b] += v1 * pb[b];
    for (int b = 0; b < B; ++b) b1[b] += v1 * pb[B + b];
    for (int b = 0; b < B; ++b) c0s[b] += v2 * pc[b];
    for (int b = 0; b < B; ++b) c1s[b] += v2 * pc[B + b];
    for (int b = 0; b < B; ++b) d0[b] += v3 * pd[b];
    for (int b = 0; b < B; ++b) d1[b] += v3 * pd[B + b];
  }
  for (; j < hi; ++j) {
    const T* p = xy + 2 * B * col[j];
    const T v = val[j];
    for (int b = 0; b < B; ++b) a0[b] += v * p[b];
    for (int b = 0; b < B; ++b) a1[b] += v * p[B + b];
  }
  for (int b = 0; b < B; ++b) {
    s0[b] += (a0[b] + b0[b]) + (c0s[b] + d0[b]);
    s1[b] += (a1[b] + b1[b]) + (c1s[b] + d1[b]);
  }
}

/// Batched single BtB dot: s[b] += row·xy lane b of the even (offset 0)
/// or odd (offset 1) stream. noinline: see row_dot2_btb_bat.
template <int B, class T>
[[gnu::noinline]] inline void row_dot1_btb_bat(const index_t* col,
                                               const T* val, index_t lo,
                                               index_t hi, const T* xy,
                                               int offset, T* s) {
  static_assert(B >= 1);
  const int off = offset * B;
  T a[B]{}, b2[B]{}, c2[B]{}, d2[B]{};
  index_t j = lo;
  for (; j + 3 < hi; j += 4) {
    const T* pa = xy + 2 * B * col[j] + off;
    const T* pb = xy + 2 * B * col[j + 1] + off;
    const T* pc = xy + 2 * B * col[j + 2] + off;
    const T* pd = xy + 2 * B * col[j + 3] + off;
    const T v0 = val[j];
    const T v1 = val[j + 1];
    const T v2 = val[j + 2];
    const T v3 = val[j + 3];
    for (int b = 0; b < B; ++b) a[b] += v0 * pa[b];
    for (int b = 0; b < B; ++b) b2[b] += v1 * pb[b];
    for (int b = 0; b < B; ++b) c2[b] += v2 * pc[b];
    for (int b = 0; b < B; ++b) d2[b] += v3 * pd[b];
  }
  for (; j < hi; ++j) {
    const T* p = xy + 2 * B * col[j] + off;
    const T v = val[j];
    for (int b = 0; b < B; ++b) a[b] += v * p[b];
  }
  for (int b = 0; b < B; ++b) s[b] += (a[b] + b2[b]) + (c2[b] + d2[b]);
}

/// Single dot against a plain array: s += row·x.
template <class T, MemoryTracer Tr>
inline void row_dot1_plain(const index_t* col, const T* val, index_t lo,
                           index_t hi, const T* x, T& s, Tr& tr) {
  T a{}, b{}, c2{}, d2{};
  index_t j = lo;
  for (; j + 3 < hi; j += 4) {
    tr.read(col + j);
    tr.read(val + j);
    tr.read(col + j + 1);
    tr.read(val + j + 1);
    tr.read(col + j + 2);
    tr.read(val + j + 2);
    tr.read(col + j + 3);
    tr.read(val + j + 3);
    tr.read(x + col[j]);
    tr.read(x + col[j + 1]);
    tr.read(x + col[j + 2]);
    tr.read(x + col[j + 3]);
    a += val[j] * x[col[j]];
    b += val[j + 1] * x[col[j + 1]];
    c2 += val[j + 2] * x[col[j + 2]];
    d2 += val[j + 3] * x[col[j + 3]];
  }
  for (; j < hi; ++j) {
    tr.read(col + j);
    tr.read(val + j);
    tr.read(x + col[j]);
    a += val[j] * x[col[j]];
  }
  s += (a + b) + (c2 + d2);
}

}  // namespace fbmpk::detail
