// Precomputed sweep schedule for the persistent-threads parallel FBMPK
// engine (docs/PARALLELISM.md).
//
// The barrier kernel in fbmpk_parallel.hpp opens one parallel region
// but still pays a full team barrier after every color — 2·num_colors
// barriers per forward/backward pair — and splits each color's blocks
// by *count*, so one heavy block serializes its color. A SweepSchedule
// fixes both at plan time:
//
//  - each color's blocks are distributed across threads by nnz (greedy
//    LPT over the L/U row ranges, reorder/nnz_partition.hpp);
//  - the full barriers are replaced by point-to-point dependencies: for
//    every (thread, color) partition, the schedule lists exactly which
//    other threads' earlier color stages must have completed, derived
//    from the ABMC block quotient graph. A thread whose neighbors are
//    done proceeds immediately — no convoy behind the slowest thread of
//    an unrelated subdomain.
//
// Dependency rule (see docs/PARALLELISM.md for the derivation): in the
// permuted matrix, a row of color c has lower neighbors only in colors
// < c and upper neighbors only in colors > c. Per pair iteration the
// stage order is F_0 … F_{C-1}, B_{C-1} … B_0; thread t may start F_c
// once every owner u of a neighboring block with color c' < c has
// finished its own F_{c'} of this pair (which, because each thread
// walks stages in order, also implies u finished all earlier stages —
// covering the B_{c'} reads of the previous pair and every
// antidependency). Symmetrically, B_c may start once each neighbor
// owner with color c' > c has finished B_{c'} of this pair. Head and
// tail stages wait on all neighbor owners.
//
// A schedule is data for a fixed thread count; MpkPlan serializes it
// (plan format v3) and rebuilds it when the runtime thread count
// differs from the stored one.
#pragma once

#include <span>
#include <vector>

#include "reorder/abmc.hpp"
#include "reorder/nnz_partition.hpp"
#include "sparse/split.hpp"
#include "support/error.hpp"

namespace fbmpk {

/// One point-to-point wait: "thread `thread` must have completed its
/// stage of color `color` (same sweep direction, same pair)".
struct SweepDep {
  index_t thread = 0;
  index_t color = 0;
  friend bool operator==(const SweepDep&, const SweepDep&) = default;
};

/// The precomputed partition + dependency structure. All CSR-style
/// index arrays; POD vectors so plan_io can frame them directly.
struct SweepSchedule {
  index_t num_threads = 0;
  index_t num_colors = 0;
  index_t num_blocks = 0;

  /// Blocks of (thread t, color c):
  /// part_blocks[part_ptr[slot(t,c)] .. part_ptr[slot(t,c)+1]).
  std::vector<index_t> part_ptr;
  std::vector<index_t> part_blocks;

  /// Forward-stage waits of (t, c): deps with color < c, at most one
  /// per foreign thread (the max such color — waiting for it implies
  /// all earlier ones).
  std::vector<index_t> fwd_dep_ptr;
  std::vector<SweepDep> fwd_deps;
  /// Backward-stage waits of (t, c): deps with color > c, at most one
  /// per foreign thread (the min such color).
  std::vector<index_t> bwd_dep_ptr;
  std::vector<SweepDep> bwd_deps;

  /// Head/tail waits of thread t: every foreign thread owning any block
  /// adjacent to one of t's blocks: all_deps[all_dep_ptr[t] ..
  /// all_dep_ptr[t+1]).
  std::vector<index_t> all_dep_ptr;
  std::vector<index_t> all_deps;

  /// nnz weight executed by (t, c) — the imbalance diagnostic.
  std::vector<index_t> load;

  bool empty() const { return num_threads == 0; }

  std::size_t slot(index_t t, index_t c) const {
    return static_cast<std::size_t>(t) * num_colors + c;
  }
};

/// Build the schedule for `num_threads` persistent threads from the
/// ABMC ordering and the permuted matrix's split triangle patterns.
SweepSchedule build_sweep_schedule(const AbmcOrdering& o,
                                   std::span<const index_t> lower_rp,
                                   std::span<const index_t> lower_ci,
                                   std::span<const index_t> upper_rp,
                                   std::span<const index_t> upper_ci,
                                   index_t num_threads);

/// Convenience overload on a TriangularSplit of the permuted matrix.
template <class T>
SweepSchedule build_sweep_schedule(const AbmcOrdering& o,
                                   const TriangularSplit<T>& s,
                                   index_t num_threads) {
  return build_sweep_schedule(o, s.lower.row_ptr(), s.lower.col_idx(),
                              s.upper.row_ptr(), s.upper.col_idx(),
                              num_threads);
}

/// Structural validation against the ordering it claims to schedule:
/// shapes, partition-covers-every-color's-blocks-exactly-once, dep
/// thread/color ranges, dep colors on the correct side of their stage.
/// Returns false on any violation (used by plan deserialization, which
/// maps false to kCorruptPlan).
bool validate_sweep_schedule(const SweepSchedule& s, const AbmcOrdering& o);

}  // namespace fbmpk
