// Communication-avoiding blocked MPK (CA-MPK) — the related-work
// comparator family of the paper (§VI): LB-MPK [Alappat et al. 2022]
// and the PA1 matrix-powers kernel of Demmel, Hoemmen, Mohiyuddin &
// Yelick [46]. The paper could not build LB-MPK's code; we implement
// the classical algorithm the family is built on so the comparison can
// be reproduced.
//
// Idea: partition rows into cache-sized blocks. For block B, the rows
// needed to compute k powers of its entries are reach_k(B) — everything
// within graph distance k. Gather that subregion once, compute k local
// SpMVs entirely in cache, emit B's rows of every power. The matrix is
// streamed ONCE per k powers — even better than FBMPK's (k+1)/2 — but
// the ghost region grows with every power, so redundant computation
// (and the gathered working set) expands with k. That expansion is
// precisely why LB-MPK's performance "drops significantly with a larger
// k (~6-8)" (paper §VI) while FBMPK keeps only two live iterates.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "reorder/graph.hpp"
#include "sparse/csr.hpp"
#include "support/aligned_buffer.hpp"
#include "support/error.hpp"

namespace fbmpk {

/// Preprocessing product: per block, the gathered subregion.
template <class T>
struct CampPlan {
  index_t rows = 0;
  int k = 0;

  struct Block {
    index_t row_begin = 0;  ///< owned rows [row_begin, row_end)
    index_t row_end = 0;
    /// Rows of the reach-k region, ascending; the owned rows are a
    /// prefix-independent subset identified by local_owned.
    std::vector<index_t> region;
    std::vector<index_t> local_owned;  ///< indices into region of owned rows
    /// Local CSR over the region. Columns outside the region would need
    /// deeper powers than available and are dropped for rows whose
    /// distance budget is exhausted — never happens for rows whose
    /// required depth is within reach (correctness is in the tests).
    CsrMatrix<T> local;
  };
  std::vector<Block> blocks;

  /// Redundancy: total gathered region rows / matrix rows (1 = none).
  double redundancy() const {
    std::size_t total = 0;
    for (const auto& b : blocks) total += b.region.size();
    return rows == 0 ? 1.0
                     : static_cast<double>(total) / static_cast<double>(rows);
  }

  /// Total gathered nonzeros across blocks / matrix nnz.
  double nnz_redundancy(index_t matrix_nnz) const {
    std::size_t total = 0;
    for (const auto& b : blocks) total += b.local.nnz();
    return matrix_nnz == 0 ? 1.0
                           : static_cast<double>(total) /
                                 static_cast<double>(matrix_nnz);
  }
};

/// Build the CA-MPK plan: `num_blocks` contiguous row blocks, ghost
/// regions of depth k following the directed dependency pattern of `a`.
template <class T>
CampPlan<T> camp_build(const CsrMatrix<T>& a, int k, index_t num_blocks);

/// Compute all powers: out[p*n + i] = (A^p x0)[i], p in [0, k].
template <class T>
void camp_power_all(const CsrMatrix<T>& a, const CampPlan<T>& plan,
                    std::span<const T> x0, std::span<T> out);

/// y = A^k x0 through the blocked pipeline.
template <class T>
void camp_power(const CsrMatrix<T>& a, const CampPlan<T>& plan,
                std::span<const T> x0, std::span<T> y);

// ---------------------------------------------------------------------------
// Implementation
// ---------------------------------------------------------------------------

template <class T>
CampPlan<T> camp_build(const CsrMatrix<T>& a, int k, index_t num_blocks) {
  FBMPK_CHECK(a.rows() == a.cols());
  FBMPK_CHECK(k >= 1);
  const index_t n = a.rows();
  num_blocks = std::clamp<index_t>(num_blocks, 1, n);

  // Reach computation uses the directed dependency: to produce row i of
  // A^{p+1} x we need rows ci(i) of A^p x, i.e. follow out-edges of A's
  // pattern (not the symmetrized graph).
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();

  CampPlan<T> plan;
  plan.rows = n;
  plan.k = k;
  plan.blocks.resize(static_cast<std::size_t>(num_blocks));

  std::vector<index_t> stamp(static_cast<std::size_t>(n), -1);
  std::vector<index_t> frontier, next, region;

  const index_t base = n / num_blocks;
  const index_t extra = n % num_blocks;
  index_t begin = 0;
  for (index_t blk = 0; blk < num_blocks; ++blk) {
    auto& b = plan.blocks[blk];
    b.row_begin = begin;
    b.row_end = begin + base + (blk < extra ? 1 : 0);
    begin = b.row_end;

    // BFS to depth k from the owned rows.
    region.clear();
    frontier.clear();
    for (index_t i = b.row_begin; i < b.row_end; ++i) {
      stamp[i] = blk;
      region.push_back(i);
      frontier.push_back(i);
    }
    for (int depth = 0; depth < k; ++depth) {
      next.clear();
      for (index_t v : frontier) {
        for (index_t e = rp[v]; e < rp[v + 1]; ++e) {
          const index_t u = ci[e];
          if (stamp[u] != blk) {
            stamp[u] = blk;
            region.push_back(u);
            next.push_back(u);
          }
        }
      }
      frontier.swap(next);
    }
    std::sort(region.begin(), region.end());
    b.region = region;

    // Global -> local index map for the region (dense scratch, reused
    // across blocks).
    static thread_local std::vector<index_t> dense_map;
    dense_map.assign(static_cast<std::size_t>(n), -1);
    for (std::size_t l = 0; l < region.size(); ++l)
      dense_map[region[l]] = static_cast<index_t>(l);

    b.local_owned.reserve(b.row_end - b.row_begin);
    for (index_t i = b.row_begin; i < b.row_end; ++i)
      b.local_owned.push_back(dense_map[i]);

    // Gather the local CSR: rows = region; columns remapped to local
    // ids; edges leaving the region are dropped (they are only ever
    // used by rows whose remaining depth is 0, where the value does
    // not feed an owned output).
    CooMatrix<T> coo(static_cast<index_t>(region.size()),
                     static_cast<index_t>(region.size()));
    const auto va = a.values();
    for (std::size_t l = 0; l < region.size(); ++l) {
      const index_t g = region[l];
      for (index_t e = rp[g]; e < rp[g + 1]; ++e) {
        const index_t lc = dense_map[ci[e]];
        if (lc >= 0) coo.add(static_cast<index_t>(l), lc, va[e]);
      }
    }
    b.local = CsrMatrix<T>::from_sorted_coo(coo);
  }
  return plan;
}

template <class T>
void camp_power_all(const CsrMatrix<T>& a, const CampPlan<T>& plan,
                    std::span<const T> x0, std::span<T> out) {
  const index_t n = a.rows();
  FBMPK_CHECK(plan.rows == n);
  FBMPK_CHECK(x0.size() == static_cast<std::size_t>(n));
  const int k = plan.k;
  FBMPK_CHECK(out.size() == static_cast<std::size_t>(n) *
                                static_cast<std::size_t>(k + 1));
  std::copy(x0.begin(), x0.end(), out.begin());

#ifdef _OPENMP
#pragma omp parallel
#endif
  {
    AlignedVector<T> cur, nxt;
#ifdef _OPENMP
#pragma omp for schedule(dynamic, 1)
#endif
    for (std::size_t blk = 0; blk < plan.blocks.size(); ++blk) {
      const auto& b = plan.blocks[blk];
      const auto m = b.region.size();
      cur.resize(m);
      nxt.resize(m);
      for (std::size_t l = 0; l < m; ++l) cur[l] = x0[b.region[l]];

      const index_t* lrp = b.local.row_ptr().data();
      const index_t* lci = b.local.col_idx().data();
      const T* lva = b.local.values().data();

      for (int p = 1; p <= k; ++p) {
        // Local SpMV. Rows farther than (k - p) from the owned block
        // now hold garbage (their out-of-region deps were dropped), but
        // they are never read by rows that still matter.
        for (std::size_t l = 0; l < m; ++l) {
          T sum{};
          for (index_t e = lrp[l]; e < lrp[l + 1]; ++e)
            sum += lva[e] * cur[lci[e]];
          nxt[l] = sum;
        }
        cur.swap(nxt);
        // Emit owned rows of power p.
        T* dst = out.data() + static_cast<std::size_t>(p) * n;
        for (index_t i = b.row_begin; i < b.row_end; ++i)
          dst[i] = cur[b.local_owned[i - b.row_begin]];
      }
    }
  }
}

template <class T>
void camp_power(const CsrMatrix<T>& a, const CampPlan<T>& plan,
                std::span<const T> x0, std::span<T> y) {
  const index_t n = a.rows();
  FBMPK_CHECK(y.size() == static_cast<std::size_t>(n));
  // A dedicated single-power path would save the basis storage; CA-MPK
  // is a comparator here, so reuse power_all for clarity.
  AlignedVector<T> basis(static_cast<std::size_t>(n) *
                         static_cast<std::size_t>(plan.k + 1));
  camp_power_all(a, plan, x0, std::span<T>(basis));
  std::copy(basis.end() - n, basis.end(), y.begin());
}

}  // namespace fbmpk
