#include "kernels/sweep_schedule.hpp"

#include <algorithm>

#include "reorder/graph.hpp"

namespace fbmpk {

namespace {

/// color_of[b] for the color-sorted block layout of an AbmcOrdering.
std::vector<index_t> colors_of_blocks(const AbmcOrdering& o) {
  std::vector<index_t> color_of(static_cast<std::size_t>(o.num_blocks));
  for (index_t c = 0; c < o.num_colors; ++c)
    for (index_t b = o.color_ptr[c]; b < o.color_ptr[c + 1]; ++b)
      color_of[b] = c;
  return color_of;
}

}  // namespace

SweepSchedule build_sweep_schedule(const AbmcOrdering& o,
                                   std::span<const index_t> lower_rp,
                                   std::span<const index_t> lower_ci,
                                   std::span<const index_t> upper_rp,
                                   std::span<const index_t> upper_ci,
                                   index_t num_threads) {
  FBMPK_CHECK(num_threads >= 1);
  FBMPK_CHECK_MSG(!o.block_ptr.empty() && o.num_colors >= 1,
                  "sweep schedule needs a non-empty ABMC ordering");

  const index_t T = num_threads;
  const index_t C = o.num_colors;

  // 1. nnz-balanced partition of every color's blocks (greedy LPT).
  const std::vector<index_t> weights =
      block_nnz_weights(o, lower_rp, upper_rp);
  const ColorPartition part =
      partition_colors(o, weights, T, PartitionStrategy::kNnzLpt);

  SweepSchedule s;
  s.num_threads = T;
  s.num_colors = C;
  s.num_blocks = o.num_blocks;
  s.part_ptr = part.part_ptr;
  s.part_blocks = part.part_blocks;
  s.load = part.load;

  // 2. Point-to-point dependencies from the block quotient graph.
  const AdjacencyGraph q = block_quotient_from_split(
      lower_rp, lower_ci, upper_rp, upper_ci, o.block_ptr);
  const std::vector<index_t> color_of = colors_of_blocks(o);

  s.fwd_dep_ptr.assign(static_cast<std::size_t>(T) * C + 1, 0);
  s.bwd_dep_ptr.assign(static_cast<std::size_t>(T) * C + 1, 0);
  s.all_dep_ptr.assign(static_cast<std::size_t>(T) + 1, 0);

  // Scratch keyed by foreign thread id: the latest forward / earliest
  // backward color owed per thread, and a stamp for the global set.
  constexpr index_t kNone = -1;
  std::vector<index_t> fwd_max(static_cast<std::size_t>(T));
  std::vector<index_t> bwd_min(static_cast<std::size_t>(T));
  std::vector<char> global_seen(static_cast<std::size_t>(T));

  for (index_t t = 0; t < T; ++t) {
    std::fill(global_seen.begin(), global_seen.end(), 0);
    for (index_t c = 0; c < C; ++c) {
      std::fill(fwd_max.begin(), fwd_max.end(), kNone);
      std::fill(bwd_min.begin(), bwd_min.end(), kNone);
      const std::size_t slot = s.slot(t, c);
      for (index_t pi = s.part_ptr[slot]; pi < s.part_ptr[slot + 1]; ++pi) {
        const index_t b = s.part_blocks[pi];
        for (index_t k = q.ptr[b]; k < q.ptr[b + 1]; ++k) {
          const index_t nb = q.adj[k];
          const index_t u = part.owner_of[nb];
          if (u != t) global_seen[u] = 1;
          if (u == t) continue;  // program order covers own stages
          const index_t nc = color_of[nb];
          if (nc < c) {
            if (fwd_max[u] == kNone || nc > fwd_max[u]) fwd_max[u] = nc;
          } else if (nc > c) {
            if (bwd_min[u] == kNone || nc < bwd_min[u]) bwd_min[u] = nc;
          }
          // nc == c with nb != b cannot carry an edge (coloring
          // invariant); if it did, the schedule would be invalid and
          // is_valid_schedule/abmc tests catch it upstream.
        }
      }
      for (index_t u = 0; u < T; ++u) {
        if (fwd_max[u] != kNone) s.fwd_deps.push_back({u, fwd_max[u]});
        if (bwd_min[u] != kNone) s.bwd_deps.push_back({u, bwd_min[u]});
      }
      s.fwd_dep_ptr[slot + 1] = static_cast<index_t>(s.fwd_deps.size());
      s.bwd_dep_ptr[slot + 1] = static_cast<index_t>(s.bwd_deps.size());
    }
    for (index_t u = 0; u < T; ++u)
      if (global_seen[u]) s.all_deps.push_back(u);
    s.all_dep_ptr[t + 1] = static_cast<index_t>(s.all_deps.size());
  }
  return s;
}

bool validate_sweep_schedule(const SweepSchedule& s, const AbmcOrdering& o) {
  const index_t T = s.num_threads;
  const index_t C = s.num_colors;
  if (T < 1 || C != o.num_colors || s.num_blocks != o.num_blocks)
    return false;
  const std::size_t slots = static_cast<std::size_t>(T) * C;
  if (s.part_ptr.size() != slots + 1 || s.fwd_dep_ptr.size() != slots + 1 ||
      s.bwd_dep_ptr.size() != slots + 1 ||
      s.all_dep_ptr.size() != static_cast<std::size_t>(T) + 1 ||
      s.load.size() != slots)
    return false;
  if (s.part_ptr.front() != 0 ||
      s.part_ptr.back() != static_cast<index_t>(s.part_blocks.size()) ||
      s.fwd_dep_ptr.front() != 0 ||
      s.fwd_dep_ptr.back() != static_cast<index_t>(s.fwd_deps.size()) ||
      s.bwd_dep_ptr.front() != 0 ||
      s.bwd_dep_ptr.back() != static_cast<index_t>(s.bwd_deps.size()) ||
      s.all_dep_ptr.front() != 0 ||
      s.all_dep_ptr.back() != static_cast<index_t>(s.all_deps.size()))
    return false;
  if (s.part_blocks.size() != static_cast<std::size_t>(s.num_blocks))
    return false;

  for (std::size_t i = 1; i < s.part_ptr.size(); ++i)
    if (s.part_ptr[i - 1] > s.part_ptr[i]) return false;
  for (std::size_t i = 1; i < s.fwd_dep_ptr.size(); ++i)
    if (s.fwd_dep_ptr[i - 1] > s.fwd_dep_ptr[i]) return false;
  for (std::size_t i = 1; i < s.bwd_dep_ptr.size(); ++i)
    if (s.bwd_dep_ptr[i - 1] > s.bwd_dep_ptr[i]) return false;
  for (std::size_t i = 1; i < s.all_dep_ptr.size(); ++i)
    if (s.all_dep_ptr[i - 1] > s.all_dep_ptr[i]) return false;

  // Every color's blocks appear exactly once, in the right color slot.
  std::vector<char> seen(static_cast<std::size_t>(s.num_blocks), 0);
  for (index_t t = 0; t < T; ++t)
    for (index_t c = 0; c < C; ++c) {
      const std::size_t slot = s.slot(t, c);
      for (index_t pi = s.part_ptr[slot]; pi < s.part_ptr[slot + 1]; ++pi) {
        const index_t b = s.part_blocks[pi];
        if (b < 0 || b >= s.num_blocks || seen[b]) return false;
        if (b < o.color_ptr[c] || b >= o.color_ptr[c + 1]) return false;
        seen[b] = 1;
      }
    }
  for (char x : seen)
    if (!x) return false;

  // Dependencies reference legal threads and colors on the correct
  // side of their own stage.
  for (index_t t = 0; t < T; ++t)
    for (index_t c = 0; c < C; ++c) {
      const std::size_t slot = s.slot(t, c);
      for (index_t k = s.fwd_dep_ptr[slot]; k < s.fwd_dep_ptr[slot + 1]; ++k) {
        const SweepDep& d = s.fwd_deps[k];
        if (d.thread < 0 || d.thread >= T || d.thread == t) return false;
        if (d.color < 0 || d.color >= c) return false;
      }
      for (index_t k = s.bwd_dep_ptr[slot]; k < s.bwd_dep_ptr[slot + 1]; ++k) {
        const SweepDep& d = s.bwd_deps[k];
        if (d.thread < 0 || d.thread >= T || d.thread == t) return false;
        if (d.color <= c || d.color >= C) return false;
      }
    }
  for (index_t t = 0; t < T; ++t)
    for (index_t k = s.all_dep_ptr[t]; k < s.all_dep_ptr[t + 1]; ++k) {
      const index_t u = s.all_deps[k];
      if (u < 0 || u >= T || u == t) return false;
    }
  return true;
}

}  // namespace fbmpk
