// Memory-access tracing policy for kernels.
//
// Every kernel in src/kernels is templated on a Tracer. The default
// NullTracer compiles to nothing, so production kernels pay zero cost.
// The cache simulator (src/perf/cache_sim.hpp) supplies a tracer that
// replays the kernel's exact access stream through a cache hierarchy —
// our stand-in for the paper's LIKWID DRAM counters (Fig 9).
#pragma once

namespace fbmpk {

/// No-op tracer: the default for production kernels. The hooks are
/// constexpr-empty and force-inlined so no call, argument setup, or
/// symbol survives into release kernel objects — tests/check_notracer
/// greps the compiled objects to keep it that way.
struct NullTracer {
  template <class T>
  [[gnu::always_inline]] constexpr void read(const T*) const noexcept {}
  template <class T>
  [[gnu::always_inline]] constexpr void write(T*) const noexcept {}
};

/// Concept-lite check used in static_asserts of kernel templates.
template <class Tr>
concept MemoryTracer = requires(Tr t, const double* cp, double* p) {
  t.read(cp);
  t.write(p);
};

}  // namespace fbmpk
