// Sparse matrix-vector multiplication kernels (y = A x).
//
// Three execution flavors:
//  - kSerial:   textbook CSR loop (paper Algorithm 1's SpMV).
//  - kUnrolled: 4-way unrolled accumulators — the stand-in for the
//               heavily optimized kernel / MKL the paper baselines on.
//  - kParallel: OpenMP row-parallel version of the unrolled kernel.
#pragma once

#include <span>

#include "kernels/tracer.hpp"
#include "sparse/csr.hpp"
#include "support/error.hpp"
#include "support/threading.hpp"

namespace fbmpk {

enum class SpmvExec { kSerial, kUnrolled, kParallel };

namespace detail {

/// Dot product of CSR row [lo, hi) with x: the textbook loop.
template <class T, MemoryTracer Tr>
inline T row_dot(const index_t* col, const T* val, index_t lo, index_t hi,
                 const T* x, Tr& tr) {
  T sum{};
  for (index_t k = lo; k < hi; ++k) {
    tr.read(col + k);
    tr.read(val + k);
    tr.read(x + col[k]);
    sum += val[k] * x[col[k]];
  }
  return sum;
}

/// 4-way unrolled row dot product; independent accumulators break the
/// FP-add dependency chain (the main serial bottleneck of CSR SpMV).
template <class T, MemoryTracer Tr>
inline T row_dot_unrolled(const index_t* col, const T* val, index_t lo,
                          index_t hi, const T* x, Tr& tr) {
  T s0{}, s1{}, s2{}, s3{};
  index_t k = lo;
  for (; k + 3 < hi; k += 4) {
    tr.read(col + k);
    tr.read(val + k);
    tr.read(x + col[k]);
    tr.read(x + col[k + 1]);
    tr.read(x + col[k + 2]);
    tr.read(x + col[k + 3]);
    s0 += val[k] * x[col[k]];
    s1 += val[k + 1] * x[col[k + 1]];
    s2 += val[k + 2] * x[col[k + 2]];
    s3 += val[k + 3] * x[col[k + 3]];
  }
  for (; k < hi; ++k) {
    tr.read(col + k);
    tr.read(val + k);
    tr.read(x + col[k]);
    s0 += val[k] * x[col[k]];
  }
  return (s0 + s1) + (s2 + s3);
}

}  // namespace detail

/// y = A x with an explicit tracer (cache-simulation entry point).
template <class T, MemoryTracer Tr>
void spmv_traced(const CsrMatrix<T>& a, std::span<const T> x, std::span<T> y,
                 Tr& tr, SpmvExec exec = SpmvExec::kSerial) {
  FBMPK_CHECK(x.size() == static_cast<std::size_t>(a.cols()));
  FBMPK_CHECK(y.size() == static_cast<std::size_t>(a.rows()));
  const index_t* rp = a.row_ptr().data();
  const index_t* ci = a.col_idx().data();
  const T* va = a.values().data();
  const T* xp = x.data();
  T* yp = y.data();
  const index_t n = a.rows();

  switch (exec) {
    case SpmvExec::kSerial:
      for (index_t i = 0; i < n; ++i) {
        tr.read(rp + i);
        tr.read(rp + i + 1);
        yp[i] = detail::row_dot(ci, va, rp[i], rp[i + 1], xp, tr);
        tr.write(yp + i);
      }
      break;
    case SpmvExec::kUnrolled:
      for (index_t i = 0; i < n; ++i) {
        tr.read(rp + i);
        tr.read(rp + i + 1);
        yp[i] = detail::row_dot_unrolled(ci, va, rp[i], rp[i + 1], xp, tr);
        tr.write(yp + i);
      }
      break;
    case SpmvExec::kParallel:
      // Tracing a parallel run would interleave streams arbitrarily, so
      // the parallel flavor requires the null tracer.
      static_assert(MemoryTracer<Tr>);
      FBMPK_CHECK_MSG((std::is_same_v<Tr, NullTracer>),
                      "parallel SpMV cannot be traced");
      parallel_for(n, [&](index_t i) {
        yp[i] = detail::row_dot_unrolled(ci, va, rp[i], rp[i + 1], xp, tr);
      });
      break;
  }
}

/// y = A x (production entry point).
template <class T>
void spmv(const CsrMatrix<T>& a, std::span<const T> x, std::span<T> y,
          SpmvExec exec = SpmvExec::kUnrolled) {
  NullTracer tr;
  spmv_traced(a, x, y, tr, exec);
}

}  // namespace fbmpk
