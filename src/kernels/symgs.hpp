// Symmetric Gauss-Seidel (SYMGS) sweeps on the L + D + U split.
//
// The paper derives its matrix partitioning from the SYMGS optimization
// in HPCG (§III-A cites [34]) and notes FBMPK's sweep structure matches
// SYMGS's (§VII). This module completes that connection: a forward
// sweep solves (D + L) x_new = b - U x_old row by row top-down, the
// backward sweep solves (D + U) x_new = b - L x_mid bottom-up — the
// standard smoother of multigrid and the HPCG benchmark, reusing the
// library's TriangularSplit and ABMC color schedule.
//
// Parallel variant: multi-color SYMGS. Rows of one ABMC color update in
// parallel; because same-color blocks share no edges, the parallel
// sweep is numerically IDENTICAL to the serial sweep of the permuted
// matrix (same argument as FBMPK, DESIGN.md §1) — unlike classical
// red-black GS relaxations that change the operator.
#pragma once

#include <span>

#include "kernels/fb_detail.hpp"
#include "reorder/abmc.hpp"
#include "sparse/split.hpp"
#include "support/error.hpp"
#include "support/threading.hpp"

namespace fbmpk {

/// One serial SYMGS sweep (forward then backward) updating x in place:
/// the smoother application x <- SYMGS(A, b, x). Rows with a zero
/// diagonal are left unchanged (their equation cannot be relaxed).
template <class T>
void symgs_serial(const TriangularSplit<T>& s, std::span<const T> b,
                  std::span<T> x) {
  const index_t n = s.lower.rows();
  FBMPK_CHECK(b.size() == static_cast<std::size_t>(n));
  FBMPK_CHECK(x.size() == static_cast<std::size_t>(n));

  const index_t* lrp = s.lower.row_ptr().data();
  const index_t* lci = s.lower.col_idx().data();
  const T* lva = s.lower.values().data();
  const index_t* urp = s.upper.row_ptr().data();
  const index_t* uci = s.upper.col_idx().data();
  const T* uva = s.upper.values().data();
  const T* d = s.diag.data();
  T* xp = x.data();
  NullTracer tr;

  // Forward: x_i <- (b_i - L x_new - U x_old) / d_i, top-down.
  for (index_t i = 0; i < n; ++i) {
    if (d[i] == T{}) continue;
    T sum = b[i];
    T acc{};
    detail::row_dot1_plain(lci, lva, lrp[i], lrp[i + 1], xp, acc, tr);
    detail::row_dot1_plain(uci, uva, urp[i], urp[i + 1], xp, acc, tr);
    sum -= acc;
    xp[i] = sum / d[i];
  }
  // Backward: bottom-up.
  for (index_t i = n; i-- > 0;) {
    if (d[i] == T{}) continue;
    T sum = b[i];
    T acc{};
    detail::row_dot1_plain(lci, lva, lrp[i], lrp[i + 1], xp, acc, tr);
    detail::row_dot1_plain(uci, uva, urp[i], urp[i + 1], xp, acc, tr);
    sum -= acc;
    xp[i] = sum / d[i];
  }
}

/// Multi-color parallel SYMGS under an ABMC schedule. The split must be
/// of the ABMC-permuted matrix; b and x live in the permuted space.
/// Produces exactly the serial sweep's result on that matrix.
template <class T>
void symgs_parallel(const TriangularSplit<T>& s, const AbmcOrdering& o,
                    std::span<const T> b, std::span<T> x) {
  const index_t n = s.lower.rows();
  FBMPK_CHECK(b.size() == static_cast<std::size_t>(n));
  FBMPK_CHECK(x.size() == static_cast<std::size_t>(n));
  FBMPK_CHECK_MSG(!o.block_ptr.empty() && o.block_ptr.back() == n,
                  "schedule does not cover the matrix");

  const index_t* lrp = s.lower.row_ptr().data();
  const index_t* lci = s.lower.col_idx().data();
  const T* lva = s.lower.values().data();
  const index_t* urp = s.upper.row_ptr().data();
  const index_t* uci = s.upper.col_idx().data();
  const T* uva = s.upper.values().data();
  const T* d = s.diag.data();
  const T* bp = b.data();
  T* xp = x.data();
  NullTracer tr;

  // NOTE on exactness: in the forward sweep row i reads x[j] for every
  // neighbor j. Gauss-Seidel semantics require x_new for j < i and
  // x_old for j > i. j < i lies in an earlier block (same color
  // impossible by coloring), already finished before this color's
  // barrier; j > i lies in a later color, not yet touched this sweep —
  // exactly the serial visitation semantics.
  parallel_region([&](int t, int num_t) {
    for (index_t c = 0; c < o.num_colors; ++c) {
      const auto r = static_chunk(o.color_ptr[c + 1] - o.color_ptr[c], t,
                                  num_t);
      for (index_t blk = o.color_ptr[c] + static_cast<index_t>(r.begin);
           blk < o.color_ptr[c] + static_cast<index_t>(r.end); ++blk) {
        for (index_t i = o.block_ptr[blk]; i < o.block_ptr[blk + 1]; ++i) {
          if (d[i] == T{}) continue;
          T acc{};
          detail::row_dot1_plain(lci, lva, lrp[i], lrp[i + 1], xp, acc, tr);
          detail::row_dot1_plain(uci, uva, urp[i], urp[i + 1], xp, acc, tr);
          xp[i] = (bp[i] - acc) / d[i];
        }
      }
      team_barrier();  // color c complete before c+1 starts
    }
    for (index_t c = o.num_colors; c-- > 0;) {
      const auto r = static_chunk(o.color_ptr[c + 1] - o.color_ptr[c], t,
                                  num_t);
      for (index_t blk = o.color_ptr[c] + static_cast<index_t>(r.begin);
           blk < o.color_ptr[c] + static_cast<index_t>(r.end); ++blk) {
        for (index_t i = o.block_ptr[blk + 1]; i-- > o.block_ptr[blk];) {
          if (d[i] == T{}) continue;
          T acc{};
          detail::row_dot1_plain(lci, lva, lrp[i], lrp[i + 1], xp, acc, tr);
          detail::row_dot1_plain(uci, uva, urp[i], urp[i + 1], xp, acc, tr);
          xp[i] = (bp[i] - acc) / d[i];
        }
      }
      team_barrier();
    }
  });
}

}  // namespace fbmpk
