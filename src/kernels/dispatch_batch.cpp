// Batched (multi right-hand-side) row-kernel table.
//
// One portable implementation serves every backend: the batched layout
// already delivers the win the single-vector AVX variants fight for —
// the B lane iterates of a row slot are contiguous, so the inner loops
// are unit-stride and the compiler auto-vectorizes them at the build's
// target ISA without gathers or hand-written intrinsics.
//
// This TU is compiled with the SAME global flags as the scalar twins in
// dispatch.cpp — no -ffp-contract override and no `#pragma GCC target`
// regions. That is load-bearing for the bitwise contract: the per-lane
// expression shapes below are identical to fb_detail.hpp's, so the
// compiler makes the same FMA-contraction decision for both TUs in any
// given build (none at the baseline ISA, per-lane FMA under
// -march=x86-64-v3), and lane b stays bitwise equal to the B=1 exact
// sweep in every build mode.
#include "kernels/dispatch.hpp"
#include "kernels/fb_detail.hpp"

namespace fbmpk {
namespace {

// Column / value accessors: the six RowOps flavours collapse into one
// core template per dot shape.
struct ColPlain {
  const index_t* c;
  index_t operator()(index_t j) const { return c[j]; }
};
struct ColU16 {
  const std::uint16_t* c;
  index_t base;
  index_t operator()(index_t j) const {
    return base + static_cast<index_t>(c[j]);
  }
};
struct ValF64 {
  const double* v;
  double operator()(index_t j) const { return v[j]; }
};
struct ValF32 {
  const float* v;
  double operator()(index_t j) const { return static_cast<double>(v[j]); }
};
struct ValSplit {
  const float* hi;
  const float* lo;
  // Exact: both halves widen losslessly and their sum fits a double,
  // matching the scalar split twins' per-element decode.
  double operator()(index_t j) const {
    return static_cast<double>(hi[j]) + static_cast<double>(lo[j]);
  }
};

// B > 0: compile-time lane count (the common case — nv constant-folds
// and the lane loops fully vectorize). B == 0: runtime nvec fallback
// for odd widths.
template <int B, class Col, class Val>
inline void dot2_core(Col col, Val val, index_t len, const double* xy,
                      index_t nvec, int prefetch, double* s0, double* s1) {
  const index_t nv = B > 0 ? static_cast<index_t>(B) : nvec;
  // Size the partials by the compile-time width: at kMaxBatch the
  // eight arrays are 1 KiB of stack, past the compiler's
  // scalar-replacement limit, and every accumulation round-trips
  // through memory. At exactly B they live in registers for the
  // common widths. Same operations in the same order either way.
  constexpr int kW = B > 0 ? B : kMaxBatch;
  double a0[kW]{}, a1[kW]{}, b0[kW]{}, b1[kW]{}, c0[kW]{}, c1[kW]{},
      d0[kW]{}, d1[kW]{};
  index_t j = 0;
  for (; j + 3 < len; j += 4) {
    if (prefetch > 0 && j + prefetch < len)
      __builtin_prefetch(xy + 2 * nv * col(j + prefetch));
    const double* pa = xy + 2 * nv * col(j);
    const double* pb = xy + 2 * nv * col(j + 1);
    const double* pc = xy + 2 * nv * col(j + 2);
    const double* pd = xy + 2 * nv * col(j + 3);
    const double v0 = val(j);
    const double v1 = val(j + 1);
    const double v2 = val(j + 2);
    const double v3 = val(j + 3);
    for (index_t b = 0; b < nv; ++b) a0[b] += v0 * pa[b];
    for (index_t b = 0; b < nv; ++b) a1[b] += v0 * pa[nv + b];
    for (index_t b = 0; b < nv; ++b) b0[b] += v1 * pb[b];
    for (index_t b = 0; b < nv; ++b) b1[b] += v1 * pb[nv + b];
    for (index_t b = 0; b < nv; ++b) c0[b] += v2 * pc[b];
    for (index_t b = 0; b < nv; ++b) c1[b] += v2 * pc[nv + b];
    for (index_t b = 0; b < nv; ++b) d0[b] += v3 * pd[b];
    for (index_t b = 0; b < nv; ++b) d1[b] += v3 * pd[nv + b];
  }
  for (; j < len; ++j) {
    const double* p = xy + 2 * nv * col(j);
    const double v = val(j);
    for (index_t b = 0; b < nv; ++b) a0[b] += v * p[b];
    for (index_t b = 0; b < nv; ++b) a1[b] += v * p[nv + b];
  }
  for (index_t b = 0; b < nv; ++b) {
    s0[b] += (a0[b] + b0[b]) + (c0[b] + d0[b]);
    s1[b] += (a1[b] + b1[b]) + (c1[b] + d1[b]);
  }
}

template <int B, class Col, class Val>
inline void dot1_core(Col col, Val val, index_t len, const double* xy,
                      index_t nvec, int offset, int prefetch, double* s) {
  const index_t nv = B > 0 ? static_cast<index_t>(B) : nvec;
  const index_t off = offset > 0 ? nv : 0;
  constexpr int kW = B > 0 ? B : kMaxBatch;  // see dot2_core
  double a[kW]{}, b2[kW]{}, c2[kW]{}, d2[kW]{};
  index_t j = 0;
  for (; j + 3 < len; j += 4) {
    if (prefetch > 0 && j + prefetch < len)
      __builtin_prefetch(xy + 2 * nv * col(j + prefetch));
    const double* pa = xy + 2 * nv * col(j) + off;
    const double* pb = xy + 2 * nv * col(j + 1) + off;
    const double* pc = xy + 2 * nv * col(j + 2) + off;
    const double* pd = xy + 2 * nv * col(j + 3) + off;
    const double v0 = val(j);
    const double v1 = val(j + 1);
    const double v2 = val(j + 2);
    const double v3 = val(j + 3);
    for (index_t b = 0; b < nv; ++b) a[b] += v0 * pa[b];
    for (index_t b = 0; b < nv; ++b) b2[b] += v1 * pb[b];
    for (index_t b = 0; b < nv; ++b) c2[b] += v2 * pc[b];
    for (index_t b = 0; b < nv; ++b) d2[b] += v3 * pd[b];
  }
  for (; j < len; ++j) {
    const double* p = xy + 2 * nv * col(j) + off;
    const double v = val(j);
    for (index_t b = 0; b < nv; ++b) a[b] += v * p[b];
  }
  for (index_t b = 0; b < nv; ++b) s[b] += (a[b] + b2[b]) + (c2[b] + d2[b]);
}

template <class Col, class Val>
inline void dot2_any(Col col, Val val, index_t len, const double* xy,
                     index_t nvec, int prefetch, double* s0, double* s1) {
  switch (nvec) {
    case 1: dot2_core<1>(col, val, len, xy, nvec, prefetch, s0, s1); return;
    case 2: dot2_core<2>(col, val, len, xy, nvec, prefetch, s0, s1); return;
    case 4: dot2_core<4>(col, val, len, xy, nvec, prefetch, s0, s1); return;
    case 8: dot2_core<8>(col, val, len, xy, nvec, prefetch, s0, s1); return;
    case 16: dot2_core<16>(col, val, len, xy, nvec, prefetch, s0, s1); return;
    default: dot2_core<0>(col, val, len, xy, nvec, prefetch, s0, s1); return;
  }
}

template <class Col, class Val>
inline void dot1_any(Col col, Val val, index_t len, const double* xy,
                     index_t nvec, int offset, int prefetch, double* s) {
  switch (nvec) {
    case 1: dot1_core<1>(col, val, len, xy, nvec, offset, prefetch, s); return;
    case 2: dot1_core<2>(col, val, len, xy, nvec, offset, prefetch, s); return;
    case 4: dot1_core<4>(col, val, len, xy, nvec, offset, prefetch, s); return;
    case 8: dot1_core<8>(col, val, len, xy, nvec, offset, prefetch, s); return;
    case 16:
      dot1_core<16>(col, val, len, xy, nvec, offset, prefetch, s);
      return;
    default:
      dot1_core<0>(col, val, len, xy, nvec, offset, prefetch, s);
      return;
  }
}

// --- the twelve table entries ---------------------------------------------

void bat_dot2(const index_t* col, const double* val, index_t len,
              const double* xy, index_t nvec, int prefetch, double* s0,
              double* s1) {
  dot2_any(ColPlain{col}, ValF64{val}, len, xy, nvec, prefetch, s0, s1);
}
void bat_dot1(const index_t* col, const double* val, index_t len,
              const double* xy, index_t nvec, int offset, int prefetch,
              double* s) {
  dot1_any(ColPlain{col}, ValF64{val}, len, xy, nvec, offset, prefetch, s);
}
void bat_dot2_u16(const std::uint16_t* col, const double* val, index_t len,
                  index_t base, const double* xy, index_t nvec, int prefetch,
                  double* s0, double* s1) {
  dot2_any(ColU16{col, base}, ValF64{val}, len, xy, nvec, prefetch, s0, s1);
}
void bat_dot1_u16(const std::uint16_t* col, const double* val, index_t len,
                  index_t base, const double* xy, index_t nvec, int offset,
                  int prefetch, double* s) {
  dot1_any(ColU16{col, base}, ValF64{val}, len, xy, nvec, offset, prefetch,
           s);
}
void bat_dot2_f32(const index_t* col, const float* val, index_t len,
                  const double* xy, index_t nvec, int prefetch, double* s0,
                  double* s1) {
  dot2_any(ColPlain{col}, ValF32{val}, len, xy, nvec, prefetch, s0, s1);
}
void bat_dot1_f32(const index_t* col, const float* val, index_t len,
                  const double* xy, index_t nvec, int offset, int prefetch,
                  double* s) {
  dot1_any(ColPlain{col}, ValF32{val}, len, xy, nvec, offset, prefetch, s);
}
void bat_dot2_u16_f32(const std::uint16_t* col, const float* val, index_t len,
                      index_t base, const double* xy, index_t nvec,
                      int prefetch, double* s0, double* s1) {
  dot2_any(ColU16{col, base}, ValF32{val}, len, xy, nvec, prefetch, s0, s1);
}
void bat_dot1_u16_f32(const std::uint16_t* col, const float* val, index_t len,
                      index_t base, const double* xy, index_t nvec,
                      int offset, int prefetch, double* s) {
  dot1_any(ColU16{col, base}, ValF32{val}, len, xy, nvec, offset, prefetch,
           s);
}
void bat_dot2_split(const index_t* col, const float* hi, const float* lo,
                    index_t len, const double* xy, index_t nvec, int prefetch,
                    double* s0, double* s1) {
  dot2_any(ColPlain{col}, ValSplit{hi, lo}, len, xy, nvec, prefetch, s0, s1);
}
void bat_dot1_split(const index_t* col, const float* hi, const float* lo,
                    index_t len, const double* xy, index_t nvec, int offset,
                    int prefetch, double* s) {
  dot1_any(ColPlain{col}, ValSplit{hi, lo}, len, xy, nvec, offset, prefetch,
           s);
}
void bat_dot2_u16_split(const std::uint16_t* col, const float* hi,
                        const float* lo, index_t len, index_t base,
                        const double* xy, index_t nvec, int prefetch,
                        double* s0, double* s1) {
  dot2_any(ColU16{col, base}, ValSplit{hi, lo}, len, xy, nvec, prefetch, s0,
           s1);
}
void bat_dot1_u16_split(const std::uint16_t* col, const float* hi,
                        const float* lo, index_t len, index_t base,
                        const double* xy, index_t nvec, int offset,
                        int prefetch, double* s) {
  dot1_any(ColU16{col, base}, ValSplit{hi, lo}, len, xy, nvec, offset,
           prefetch, s);
}

}  // namespace

namespace detail {
const BatchRowOps& portable_batch_ops() {
  static constexpr BatchRowOps ops = {
      bat_dot2,           bat_dot1,           bat_dot2_u16,
      bat_dot1_u16,       bat_dot2_f32,       bat_dot1_f32,
      bat_dot2_u16_f32,   bat_dot1_u16_f32,   bat_dot2_split,
      bat_dot1_split,     bat_dot2_u16_split, bat_dot1_u16_split,
  };
  return ops;
}
}  // namespace detail

}  // namespace fbmpk
