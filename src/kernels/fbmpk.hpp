// Serial forward-backward MPK (FBMPK) — the paper's core contribution
// (§III-B/C, Algorithm 2's serial skeleton).
//
// Two variants:
//  - fbmpk_sweep_btb:   back-to-back (BtB) interleaved iterate storage,
//                       xy[2i] = even iterate, xy[2i+1] = odd iterate —
//                       the paper's full "FB+BtB" configuration.
//  - fbmpk_sweep_split: identical pipeline with the two iterates in
//                       separate arrays — the "FB only" ablation of
//                       Fig 10.
//
// Pipeline recap: after the head primes tmp = U·x0, each (forward,
// backward) pair advances the power by two while reading L and U once
// each. The forward sweep walks L's rows top-down: it completes the odd
// iterate (x_odd[i] = tmp[i] + d[i]·x_even[i] + (L·x_even)[i]) and — in
// the same pass over L's row — accumulates (L·x_odd)[i], legal because
// all x_odd[j], j < i are already final. The backward sweep mirrors this
// on U bottom-up, completing the even iterate and priming U·x_even for
// the next pair. Odd k finishes with a tail sweep over L.
//
// Matrix traffic: ⌈(k+1)/2⌉ combined L+U reads vs k full reads for the
// standard MPK (see DESIGN.md §1). Row-level arithmetic lives in
// kernels/fb_detail.hpp and is shared with the parallel kernel so both
// produce bitwise-identical results.
#pragma once

#include <span>
#include <utility>

#include "kernels/fb_detail.hpp"
#include "kernels/spmv.hpp"
#include "kernels/tracer.hpp"
#include "sparse/split.hpp"
#include "support/aligned_buffer.hpp"
#include "support/error.hpp"

namespace fbmpk {

/// Fixed-width lane pack: the iterate element of a batched (multi
/// right-hand-side) sweep. Standard layout with no padding, so an
/// FbWorkspace<Pack<double, B>>::xy array IS the raw xy[2·B·n]
/// vector-major interleaved layout: row slot i's B even-iterate lanes
/// occupy doubles [2·B·i, 2·B·i + B) and its odd lanes
/// [2·B·i + B, 2·B·i + 2B). Arithmetic is elementwise, so each lane
/// follows exactly the scalar pipeline's operation order and a batched
/// sweep's lane b is bitwise identical to the B=1 sweep of that lane.
template <class T, int B>
struct Pack {
  T v[B];

  Pack& operator+=(const Pack& o) {
    for (int b = 0; b < B; ++b) v[b] += o.v[b];
    return *this;
  }
  friend Pack operator+(Pack a, const Pack& b) {
    for (int i = 0; i < B; ++i) a.v[i] += b.v[i];
    return a;
  }
  friend Pack operator*(T s, Pack a) {
    for (int i = 0; i < B; ++i) a.v[i] = s * a.v[i];
    return a;
  }
};
static_assert(sizeof(Pack<double, 4>) == 4 * sizeof(double));

/// a + s·x with the multiply-add as ONE expression per lane. The sweep
/// pipelines must use this — never `a + s * x` through the Pack
/// operators — for the iterate updates: operator temporaries split the
/// shape across statements, where FMA contraction under -ffp-contract
/// defaults is at the optimizer's whim and was observed to diverge
/// between the serial and the parallel instantiations of the same
/// template. Expression-local contraction is uniform for the scalar
/// form, so every pipeline makes the same decision per build.
///
/// The Pack overload is additionally noinline: even as a single
/// expression per lane, the lane loop inlined into three different
/// sweep pipelines gave the optimizer three independent shots at the
/// contract-or-not choice, and the engine's Pack<double,2> copy was
/// observed to disagree with the others on -march=x86-64-v3. One
/// out-of-line copy per (T, B) means one choice, shared by every
/// pipeline — load-bearing for the batched bitwise contract.
inline double madd(double s, double x, double a) { return a + s * x; }
template <class T, int B>
[[gnu::noinline]] inline Pack<T, B> madd(T s, const Pack<T, B>& x,
                                         const Pack<T, B>& a) {
  Pack<T, B> r;
  for (int b = 0; b < B; ++b) r.v[b] = a.v[b] + s * x.v[b];
  return r;
}

/// Scratch vectors for serial FBMPK.
template <class T>
struct FbWorkspace {
  AlignedVector<T> xy;    ///< 2n interleaved iterates (BtB layout)
  AlignedVector<T> tmp;   ///< n: holds U·x_even or L·x_odd + D·x_odd
  AlignedVector<T> xalt;  ///< n: second iterate for the split variant

  void resize(index_t n) {
    xy.resize(2 * static_cast<std::size_t>(n));
    tmp.resize(static_cast<std::size_t>(n));
    xalt.resize(static_cast<std::size_t>(n));
  }
};

/// FB + BtB sweep. emit(p, i, v) fires once per power p in [1, k], row i,
/// with v = (A^p x0)[i]. k >= 1.
template <class T, class Emit, MemoryTracer Tr>
void fbmpk_sweep_btb(const TriangularSplit<T>& s, std::span<const T> x0,
                     int k, FbWorkspace<T>& ws, Emit&& emit, Tr& tr) {
  const index_t n = s.lower.rows();
  FBMPK_CHECK(s.upper.rows() == n &&
              s.diag.size() == static_cast<std::size_t>(n));
  FBMPK_CHECK(x0.size() == static_cast<std::size_t>(n));
  FBMPK_CHECK(k >= 1);
  ws.resize(n);

  const index_t* lrp = s.lower.row_ptr().data();
  const index_t* lci = s.lower.col_idx().data();
  const T* lva = s.lower.values().data();
  const index_t* urp = s.upper.row_ptr().data();
  const index_t* uci = s.upper.col_idx().data();
  const T* uva = s.upper.values().data();
  const T* d = s.diag.data();
  T* xy = ws.xy.data();
  T* tmp = ws.tmp.data();

  // Head: even slots <- x0; tmp <- U·x0.
  for (index_t i = 0; i < n; ++i) {
    tr.read(x0.data() + i);
    xy[2 * i] = x0[i];
    tr.write(xy + 2 * i);
  }
  for (index_t i = 0; i < n; ++i) {
    tr.read(urp + i);
    tr.read(urp + i + 1);
    T sum{};
    detail::row_dot1_btb(uci, uva, urp[i], urp[i + 1], xy, 0, sum, tr);
    tmp[i] = sum;
    tr.write(tmp + i);
  }

  const int pairs = k / 2;
  for (int it = 0; it < pairs; ++it) {
    const int p_odd = 2 * it + 1;
    const int p_even = 2 * it + 2;

    // Forward sweep over L, top-down. Completes the odd iterate and
    // primes tmp = L·x_odd + D·x_odd.
    for (index_t i = 0; i < n; ++i) {
      tr.read(lrp + i);
      tr.read(lrp + i + 1);
      tr.read(tmp + i);
      tr.read(d + i);
      tr.read(xy + 2 * i);
      T sum0 = tmp[i] + d[i] * xy[2 * i];
      T sum1{};
      detail::row_dot2_btb(lci, lva, lrp[i], lrp[i + 1], xy, sum0, sum1, tr);
      xy[2 * i + 1] = sum0;
      tr.write(xy + 2 * i + 1);
      emit(p_odd, i, sum0);
      tmp[i] = sum1 + d[i] * sum0;
      tr.write(tmp + i);
    }

    // Backward sweep over U, bottom-up. Completes the even iterate; on
    // every pair except a final even-k one it also primes tmp = U·x_even
    // for the next forward sweep.
    const bool prime_next = !(it == pairs - 1 && k % 2 == 0);
    if (prime_next) {
      for (index_t i = n; i-- > 0;) {
        tr.read(urp + i);
        tr.read(urp + i + 1);
        tr.read(tmp + i);
        T sum0 = tmp[i];
        T sum1{};
        // row_dot2 accumulates (even, odd); backward wants sum0 += odd,
        // sum1 += even, hence the swapped outputs.
        detail::row_dot2_btb(uci, uva, urp[i], urp[i + 1], xy, sum1, sum0,
                             tr);
        xy[2 * i] = sum0;
        tr.write(xy + 2 * i);
        emit(p_even, i, sum0);
        tmp[i] = sum1;
        tr.write(tmp + i);
      }
    } else {
      for (index_t i = n; i-- > 0;) {
        tr.read(urp + i);
        tr.read(urp + i + 1);
        tr.read(tmp + i);
        T sum0 = tmp[i];
        detail::row_dot1_btb(uci, uva, urp[i], urp[i + 1], xy, 1, sum0, tr);
        xy[2 * i] = sum0;
        tr.write(xy + 2 * i);
        emit(p_even, i, sum0);
      }
    }
  }

  if (k % 2 == 1) {
    // Tail: x_k = L·x_{k-1} + D·x_{k-1} + U·x_{k-1}; even slots hold
    // x_{k-1} and tmp already holds U·x_{k-1}.
    for (index_t i = 0; i < n; ++i) {
      tr.read(lrp + i);
      tr.read(lrp + i + 1);
      tr.read(tmp + i);
      tr.read(d + i);
      tr.read(xy + 2 * i);
      T sum = tmp[i] + d[i] * xy[2 * i];
      detail::row_dot1_btb(lci, lva, lrp[i], lrp[i + 1], xy, 0, sum, tr);
      emit(k, i, sum);
    }
  }
}

/// FB-only sweep: same pipeline, iterates in two separate arrays
/// (Fig 10's "FB" configuration). Uses ws.xy's first n slots as the
/// even iterate and ws.xalt as the odd iterate.
template <class T, class Emit, MemoryTracer Tr>
void fbmpk_sweep_split(const TriangularSplit<T>& s, std::span<const T> x0,
                       int k, FbWorkspace<T>& ws, Emit&& emit, Tr& tr) {
  const index_t n = s.lower.rows();
  FBMPK_CHECK(s.upper.rows() == n &&
              s.diag.size() == static_cast<std::size_t>(n));
  FBMPK_CHECK(x0.size() == static_cast<std::size_t>(n));
  FBMPK_CHECK(k >= 1);
  ws.resize(n);

  const index_t* lrp = s.lower.row_ptr().data();
  const index_t* lci = s.lower.col_idx().data();
  const T* lva = s.lower.values().data();
  const index_t* urp = s.upper.row_ptr().data();
  const index_t* uci = s.upper.col_idx().data();
  const T* uva = s.upper.values().data();
  const T* d = s.diag.data();
  T* xe = ws.xy.data();    // even iterate
  T* xo = ws.xalt.data();  // odd iterate
  T* tmp = ws.tmp.data();

  for (index_t i = 0; i < n; ++i) {
    tr.read(x0.data() + i);
    xe[i] = x0[i];
    tr.write(xe + i);
  }
  for (index_t i = 0; i < n; ++i) {
    tr.read(urp + i);
    tr.read(urp + i + 1);
    T sum{};
    detail::row_dot1_plain(uci, uva, urp[i], urp[i + 1], xe, sum, tr);
    tmp[i] = sum;
    tr.write(tmp + i);
  }

  const int pairs = k / 2;
  for (int it = 0; it < pairs; ++it) {
    const int p_odd = 2 * it + 1;
    const int p_even = 2 * it + 2;

    for (index_t i = 0; i < n; ++i) {
      tr.read(lrp + i);
      tr.read(lrp + i + 1);
      tr.read(tmp + i);
      tr.read(d + i);
      tr.read(xe + i);
      T sum0 = tmp[i] + d[i] * xe[i];
      T sum1{};
      detail::row_dot2_split(lci, lva, lrp[i], lrp[i + 1], xe, xo, sum0,
                             sum1, tr);
      xo[i] = sum0;
      tr.write(xo + i);
      emit(p_odd, i, sum0);
      tmp[i] = sum1 + d[i] * sum0;
      tr.write(tmp + i);
    }

    const bool prime_next = !(it == pairs - 1 && k % 2 == 0);
    if (prime_next) {
      for (index_t i = n; i-- > 0;) {
        tr.read(urp + i);
        tr.read(urp + i + 1);
        tr.read(tmp + i);
        T sum0 = tmp[i];
        T sum1{};
        detail::row_dot2_split(uci, uva, urp[i], urp[i + 1], xo, xe, sum0,
                               sum1, tr);
        xe[i] = sum0;
        tr.write(xe + i);
        emit(p_even, i, sum0);
        tmp[i] = sum1;
        tr.write(tmp + i);
      }
    } else {
      for (index_t i = n; i-- > 0;) {
        tr.read(urp + i);
        tr.read(urp + i + 1);
        tr.read(tmp + i);
        T sum0 = tmp[i];
        detail::row_dot1_plain(uci, uva, urp[i], urp[i + 1], xo, sum0, tr);
        xe[i] = sum0;
        tr.write(xe + i);
        emit(p_even, i, sum0);
      }
    }
  }

  if (k % 2 == 1) {
    for (index_t i = 0; i < n; ++i) {
      tr.read(lrp + i);
      tr.read(lrp + i + 1);
      tr.read(tmp + i);
      tr.read(d + i);
      tr.read(xe + i);
      T sum = tmp[i] + d[i] * xe[i];
      detail::row_dot1_plain(lci, lva, lrp[i], lrp[i + 1], xe, sum, tr);
      emit(k, i, sum);
    }
  }
}

/// Which serial FBMPK variant to run.
enum class FbVariant { kBtb, kSplit };

/// Generic dispatcher (untraced).
template <class T, class Emit>
void fbmpk_sweep(const TriangularSplit<T>& s, std::span<const T> x0, int k,
                 FbWorkspace<T>& ws, Emit&& emit,
                 FbVariant variant = FbVariant::kBtb) {
  NullTracer tr;
  if (variant == FbVariant::kBtb)
    fbmpk_sweep_btb(s, x0, k, ws, std::forward<Emit>(emit), tr);
  else
    fbmpk_sweep_split(s, x0, k, ws, std::forward<Emit>(emit), tr);
}

/// y = A^k x0 via serial FBMPK. k = 0 copies x0.
template <class T>
void fbmpk_power(const TriangularSplit<T>& s, std::span<const T> x0, int k,
                 std::span<T> y, FbWorkspace<T>& ws,
                 FbVariant variant = FbVariant::kBtb) {
  FBMPK_CHECK(y.size() == x0.size());
  FBMPK_CHECK(k >= 0);
  if (k == 0) {
    std::copy(x0.begin(), x0.end(), y.begin());
    return;
  }
  fbmpk_sweep(
      s, x0, k, ws,
      [&](int p, index_t i, T v) {
        if (p == k) y[i] = v;
      },
      variant);
}

/// Krylov basis via serial FBMPK: out[p*n + i] = (A^p x0)[i], p in [0,k].
template <class T>
void fbmpk_power_all(const TriangularSplit<T>& s, std::span<const T> x0,
                     int k, std::span<T> out, FbWorkspace<T>& ws,
                     FbVariant variant = FbVariant::kBtb) {
  const auto n = x0.size();
  FBMPK_CHECK(out.size() == n * static_cast<std::size_t>(k + 1));
  std::copy(x0.begin(), x0.end(), out.begin());
  if (k == 0) return;
  fbmpk_sweep(
      s, x0, k, ws,
      [&](int p, index_t i, T v) {
        out[static_cast<std::size_t>(p) * n + i] = v;
      },
      variant);
}

/// y = sum_{p=0..k} coeffs[p] * A^p x0 via serial FBMPK — the library's
/// generic SSpMV form (paper §I).
template <class T>
void fbmpk_polynomial(const TriangularSplit<T>& s, std::span<const T> coeffs,
                      std::span<const T> x0, std::span<T> y,
                      FbWorkspace<T>& ws,
                      FbVariant variant = FbVariant::kBtb) {
  FBMPK_CHECK(!coeffs.empty());
  FBMPK_CHECK(y.size() == x0.size());
  const int k = static_cast<int>(coeffs.size()) - 1;
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = coeffs[0] * x0[i];
  if (k == 0) return;
  fbmpk_sweep(
      s, x0, k, ws,
      [&](int p, index_t i, T v) { y[i] += coeffs[p] * v; }, variant);
}

}  // namespace fbmpk
