// Batched (multi right-hand-side) row policies and adapters.
//
// A batched sweep runs the ordinary FBMPK pipeline (fb_simd.hpp /
// fbmpk_parallel.hpp) with the iterate element widened from double to
// Pack<double, B>: the workspace's xy array is then exactly the raw
// xy[2·B·n] vector-major interleaved layout, every triangle element is
// read once per row slot and feeds B unit-stride FMA pairs, and the
// per-sweep matrix traffic is amortized over B request vectors.
//
// Two row policies mirror the single-vector pair:
//  - BatchScalarRows<B>:   exact — fb_detail's batched helpers, lane b
//                          bitwise identical to the B=1 exact sweep.
//  - BatchDispatchRows<B>: fast/packed — routes through BatchRowOps
//                          (kernels/dispatch.hpp), covering compressed
//                          u16 indices and the fp32 / split hi+lo value
//                          streams. Also exact per lane: the portable
//                          batch table keeps the scalar accumulation
//                          order in every lane (see dispatch.hpp).
//
// BatchX0<B> is the no-copy gather adapter: the head stage reads lane b
// of row slot i straight from xs[b][old_of(i)], applying the plan's
// reorder permutation inline, so batched execution never stages the B
// input vectors into a permuted scratch copy.
#pragma once

#include "kernels/dispatch.hpp"
#include "kernels/fbmpk.hpp"
#include "reorder/permutation.hpp"
#include "sparse/packed_tri.hpp"
#include "sparse/split.hpp"

namespace fbmpk {

/// x0 source for a batched sweep: size() and operator[] over Pack
/// lanes, gathering from B caller-owned vectors with the permutation
/// (old_of) applied inline. `perm == nullptr` means identity.
template <int B>
struct BatchX0 {
  const double* const* xs;
  const Permutation* perm;
  index_t n;

  std::size_t size() const { return static_cast<std::size_t>(n); }
  Pack<double, B> operator[](index_t i) const {
    const index_t src = perm == nullptr ? i : perm->old_of(i);
    Pack<double, B> p;
    for (int b = 0; b < B; ++b) p.v[b] = xs[b][src];
    return p;
  }
};

/// Exact batched row policy — the Pack twin of ScalarRows<double>.
template <int B>
struct BatchScalarRows {
  using P = Pack<double, B>;

  const index_t* lrp;
  const index_t* lci;
  const double* lva;
  const index_t* urp;
  const index_t* uci;
  const double* uva;
  const double* dgv;

  explicit BatchScalarRows(const TriangularSplit<double>& s)
      : lrp(s.lower.row_ptr().data()),
        lci(s.lower.col_idx().data()),
        lva(s.lower.values().data()),
        urp(s.upper.row_ptr().data()),
        uci(s.upper.col_idx().data()),
        uva(s.upper.values().data()),
        dgv(s.diag.data()) {}

  static const double* raw(const P* xy) {
    return reinterpret_cast<const double*>(xy);
  }

  void l_dot2(index_t i, const P* xy, P& s0, P& s1) const {
    detail::row_dot2_btb_bat<B>(lci, lva, lrp[i], lrp[i + 1], raw(xy), s0.v,
                                s1.v);
  }
  void u_dot2(index_t i, const P* xy, P& s0, P& s1) const {
    detail::row_dot2_btb_bat<B>(uci, uva, urp[i], urp[i + 1], raw(xy), s0.v,
                                s1.v);
  }
  void l_dot1(index_t i, const P* xy, int offset, P& s) const {
    detail::row_dot1_btb_bat<B>(lci, lva, lrp[i], lrp[i + 1], raw(xy), offset,
                                s.v);
  }
  void u_dot1(index_t i, const P* xy, int offset, P& s) const {
    detail::row_dot1_btb_bat<B>(uci, uva, urp[i], urp[i + 1], raw(xy), offset,
                                s.v);
  }
  double diag(index_t i) const { return dgv[i]; }
  void warm(index_t i, double& acc) const {
    for (index_t q = lrp[i]; q < lrp[i + 1]; ++q)
      acc += lva[q] + static_cast<double>(lci[q]);
    for (index_t q = urp[i]; q < urp[i + 1]; ++q)
      acc += uva[q] + static_cast<double>(uci[q]);
  }
};

/// Batched twin of TriRowKernel: one triangle's rows through the
/// BatchRowOps table, with packed-index and reduced-precision routing.
template <int B>
struct BatchTriRowKernel {
  const index_t* rp = nullptr;
  const index_t* ci = nullptr;
  const double* va = nullptr;
  const PackedTriangleIndex* packed = nullptr;
  const BatchRowOps* ops = nullptr;
  int prefetch = 0;
  const float* v32 = nullptr;
  const float* vhi = nullptr;
  const float* vlo = nullptr;

  void dot2(index_t i, const double* xy, double* s0, double* s1) const {
    const index_t lo = rp[i];
    const index_t len = rp[i + 1] - lo;
    if (packed == nullptr) {
      if (v32 != nullptr)
        ops->dot2_btb_f32_bat(ci + lo, v32 + lo, len, xy, B, prefetch, s0,
                              s1);
      else if (vhi != nullptr)
        ops->dot2_btb_split_bat(ci + lo, vhi + lo, vlo + lo, len, xy, B,
                                prefetch, s0, s1);
      else
        ops->dot2_btb_bat(ci + lo, va + lo, len, xy, B, prefetch, s0, s1);
      return;
    }
    const auto v = packed->row(i, lo);
    if (v.c16 != nullptr) {
      if (v32 != nullptr)
        ops->dot2_btb_u16_f32_bat(v.c16, v32 + lo, len, v.base, xy, B,
                                  prefetch, s0, s1);
      else if (vhi != nullptr)
        ops->dot2_btb_u16_split_bat(v.c16, vhi + lo, vlo + lo, len, v.base,
                                    xy, B, prefetch, s0, s1);
      else
        ops->dot2_btb_u16_bat(v.c16, va + lo, len, v.base, xy, B, prefetch,
                              s0, s1);
    } else {
      if (v32 != nullptr)
        ops->dot2_btb_f32_bat(v.c32, v32 + lo, len, xy, B, prefetch, s0, s1);
      else if (vhi != nullptr)
        ops->dot2_btb_split_bat(v.c32, vhi + lo, vlo + lo, len, xy, B,
                                prefetch, s0, s1);
      else
        ops->dot2_btb_bat(v.c32, va + lo, len, xy, B, prefetch, s0, s1);
    }
  }

  void dot1(index_t i, const double* xy, int offset, double* s) const {
    const index_t lo = rp[i];
    const index_t len = rp[i + 1] - lo;
    if (packed == nullptr) {
      if (v32 != nullptr)
        ops->dot1_btb_f32_bat(ci + lo, v32 + lo, len, xy, B, offset, prefetch,
                              s);
      else if (vhi != nullptr)
        ops->dot1_btb_split_bat(ci + lo, vhi + lo, vlo + lo, len, xy, B,
                                offset, prefetch, s);
      else
        ops->dot1_btb_bat(ci + lo, va + lo, len, xy, B, offset, prefetch, s);
      return;
    }
    const auto v = packed->row(i, lo);
    if (v.c16 != nullptr) {
      if (v32 != nullptr)
        ops->dot1_btb_u16_f32_bat(v.c16, v32 + lo, len, v.base, xy, B, offset,
                                  prefetch, s);
      else if (vhi != nullptr)
        ops->dot1_btb_u16_split_bat(v.c16, vhi + lo, vlo + lo, len, v.base,
                                    xy, B, offset, prefetch, s);
      else
        ops->dot1_btb_u16_bat(v.c16, va + lo, len, v.base, xy, B, offset,
                              prefetch, s);
    } else {
      if (v32 != nullptr)
        ops->dot1_btb_f32_bat(v.c32, v32 + lo, len, xy, B, offset, prefetch,
                              s);
      else if (vhi != nullptr)
        ops->dot1_btb_split_bat(v.c32, vhi + lo, vlo + lo, len, xy, B, offset,
                                prefetch, s);
      else
        ops->dot1_btb_bat(v.c32, va + lo, len, xy, B, offset, prefetch, s);
    }
  }

  double value_at(index_t q) const {
    if (v32 != nullptr) return static_cast<double>(v32[q]);
    if (vhi != nullptr)
      return static_cast<double>(vhi[q]) + static_cast<double>(vlo[q]);
    return va[q];
  }

  void warm(index_t i, double& acc) const {
    const index_t lo = rp[i];
    const index_t hi = rp[i + 1];
    if (packed == nullptr) {
      for (index_t q = lo; q < hi; ++q)
        acc += value_at(q) + static_cast<double>(ci[q]);
      return;
    }
    const auto v = packed->row(i, lo);
    for (index_t q = 0; q < hi - lo; ++q) {
      const index_t c = v.c16 != nullptr
                            ? v.base + static_cast<index_t>(v.c16[q])
                            : v.c32[q];
      acc += value_at(lo + q) + static_cast<double>(c);
    }
  }
};

/// Batched twin of DispatchRows — fast/packed policy over Pack lanes.
template <int B>
struct BatchDispatchRows {
  using P = Pack<double, B>;

  BatchTriRowKernel<B> l;
  BatchTriRowKernel<B> u;
  const double* d64 = nullptr;
  const float* d32 = nullptr;
  const float* dhi = nullptr;
  const float* dlo = nullptr;

  static const double* raw(const P* xy) {
    return reinterpret_cast<const double*>(xy);
  }

  void l_dot2(index_t i, const P* xy, P& s0, P& s1) const {
    l.dot2(i, raw(xy), s0.v, s1.v);
  }
  void u_dot2(index_t i, const P* xy, P& s0, P& s1) const {
    u.dot2(i, raw(xy), s0.v, s1.v);
  }
  void l_dot1(index_t i, const P* xy, int offset, P& s) const {
    l.dot1(i, raw(xy), offset, s.v);
  }
  void u_dot1(index_t i, const P* xy, int offset, P& s) const {
    u.dot1(i, raw(xy), offset, s.v);
  }
  double diag(index_t i) const {
    if (d32 != nullptr) return static_cast<double>(d32[i]);
    if (dhi != nullptr)
      return static_cast<double>(dhi[i]) + static_cast<double>(dlo[i]);
    return d64[i];
  }
  void warm(index_t i, double& acc) const {
    l.warm(i, acc);
    u.warm(i, acc);
  }
};

/// Batched twin of make_dispatch_rows; same lifetime rules (`ops` and
/// `values` must outlive the returned policy).
template <int B>
BatchDispatchRows<B> make_batch_dispatch_rows(const TriangularSplit<double>& s,
                                              const PackedSplitIndex* packed,
                                              const PackedSplitValues* values,
                                              const BatchRowOps& ops,
                                              int prefetch) {
  BatchDispatchRows<B> r;
  r.l = {s.lower.row_ptr().data(), s.lower.col_idx().data(),
         s.lower.values().data(),
         packed != nullptr ? &packed->lower : nullptr, &ops, prefetch};
  r.u = {s.upper.row_ptr().data(), s.upper.col_idx().data(),
         s.upper.values().data(),
         packed != nullptr ? &packed->upper : nullptr, &ops, prefetch};
  r.d64 = s.diag.data();
  if (values != nullptr && !values->empty()) {
    if (values->precision == ValuePrecision::kFp32) {
      r.l.v32 = values->lower.f32();
      r.u.v32 = values->upper.f32();
      r.d64 = nullptr;
      r.d32 = values->diag.f32();
    } else {
      r.l.vhi = values->lower.hi();
      r.l.vlo = values->lower.lo();
      r.u.vhi = values->upper.hi();
      r.u.vlo = values->upper.lo();
      r.d64 = nullptr;
      r.dhi = values->diag.hi();
      r.dlo = values->diag.lo();
    }
  }
  return r;
}

}  // namespace fbmpk
