// Analytic memory-traffic model for MPK pipelines (paper §III-B, §V-C).
//
// Counts the compulsory DRAM bytes each pipeline must stream assuming the
// matrix is far larger than the last-level cache (the paper's regime):
// every matrix byte is read once per sweep, and dense vectors are
// streamed once per sweep they participate in. The model gives the
// closed-form ratio the paper quotes — (k+1)/2k in the matrix-dominated
// limit — and serves as a cross-check for the cache simulator.
#pragma once

#include <cstddef>

#include "sparse/csr.hpp"
#include "sparse/packed_tri.hpp"
#include "sparse/split.hpp"

namespace fbmpk::perf {

/// Byte totals for one full MPK evaluation (all k powers).
struct TrafficEstimate {
  std::size_t matrix_bytes = 0;  ///< CSR arrays streamed from DRAM
  std::size_t vector_bytes = 0;  ///< dense vectors streamed from DRAM
  std::size_t total() const { return matrix_bytes + vector_bytes; }
};

/// Matrix-size summary the model needs.
struct MatrixShape {
  index_t rows = 0;
  index_t nnz = 0;           ///< of the full matrix A
  index_t diag_entries = 0;  ///< stored diagonal entries of A

  template <class T>
  static MatrixShape of(const CsrMatrix<T>& a) {
    MatrixShape s;
    s.rows = a.rows();
    s.nnz = a.nnz();
    for (index_t i = 0; i < a.rows(); ++i)
      for (index_t k = a.row_ptr()[i]; k < a.row_ptr()[i + 1]; ++k)
        if (a.col_idx()[k] == i) ++s.diag_entries;
    return s;
  }
};

/// Bytes streamed per full-CSR sweep (values + col_idx + row_ptr).
std::size_t csr_sweep_bytes(index_t rows, index_t nnz, std::size_t value_size);

/// Same, with a caller-supplied column-index width. `col_index_bytes`
/// may be fractional: a band-compressed sidecar
/// (sparse/packed_tri.hpp) mixes u16 and full-width bands, so its
/// effective width is PackedTriangleIndex::bytes_per_nnz().
std::size_t csr_sweep_bytes_custom(index_t rows, index_t nnz,
                                   std::size_t value_size,
                                   double col_index_bytes);

/// Standard MPK (Algorithm 1), k powers: k sweeps of A, plus per sweep a
/// read of x and a write of y.
TrafficEstimate standard_mpk_traffic(const MatrixShape& m, int k,
                                     std::size_t value_size = sizeof(double));

/// FBMPK: head + ⌊k/2⌋ forward/backward pairs (+ tail when k is odd).
/// L and U sweeps stream only their triangle; vector traffic includes
/// the interleaved xy pair, tmp and the diagonal.
TrafficEstimate fbmpk_traffic(const MatrixShape& m, int k,
                              std::size_t value_size = sizeof(double));

/// FBMPK with compressed triangle column indices: identical sweep
/// structure, but each triangle nonzero's index costs
/// `col_index_bytes` instead of sizeof(index_t). Pass the measured
/// PackedSplitIndex::bytes_per_nnz() to predict the traffic saved by
/// PlanOptions::index_compress.
TrafficEstimate fbmpk_traffic_compressed(
    const MatrixShape& m, int k, double col_index_bytes,
    std::size_t value_size = sizeof(double));

/// FBMPK with compressed column indices *and* reduced-precision value
/// storage (PlanOptions::value_precision): each stored triangle value
/// and diagonal entry costs precision_value_bytes(p) — 4 for fp32, 8
/// for split (two floats) and fp64 — while the dense vectors stay fp64.
/// fp32 therefore cuts the value stream in half; split changes nothing
/// in this model (it trades no bytes, only mantissa width).
///
/// `nvec` models a batched sweep over nvec right-hand sides in the
/// xy[2·B·n] interleaved layout: the matrix stream is read ONCE for
/// the whole batch while every vector stream scales by nvec — the
/// amortization batched MPK buys. nvec = 1 is the single-vector model.
TrafficEstimate fbmpk_traffic_mixed(const MatrixShape& m, int k,
                                    double col_index_bytes,
                                    ValuePrecision precision, int nvec = 1);

/// Number of full-matrix-equivalent sweeps each pipeline performs —
/// k for standard, (k+1+(k odd ? 1 : 2)/2)/2-style count for FBMPK;
/// exposed for tests of the paper's sweep arithmetic (§III-B).
double standard_sweep_count(int k);
double fbmpk_sweep_count(int k);

/// Convenience: predicted FBMPK/standard total-traffic ratio.
double traffic_ratio(const MatrixShape& m, int k,
                     std::size_t value_size = sizeof(double));

}  // namespace fbmpk::perf
