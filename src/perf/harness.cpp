#include "perf/harness.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/error.hpp"
#include "telemetry/telemetry.hpp"

namespace fbmpk::perf {

RunningStats time_runs(const std::function<void()>& fn, int reps,
                       int warmup) {
  FBMPK_CHECK(reps >= 1 && warmup >= 0);
  // Warmup iterations carry warmup=true in their span args and are
  // excluded from the exported kBenchRun histogram, so a trace viewer
  // can tell cache-priming runs from measured ones.
  for (int i = 0; i < warmup; ++i) {
    FBMPK_TSPAN_ARGS(kBench, "bench.run", {.warmup = true});
    fn();
  }
  RunningStats stats;
  for (int i = 0; i < reps; ++i) {
    FBMPK_TSPAN_ARGS(kBench, "bench.run", {.warmup = false});
    FBMPK_TELEMETRY_ONLY(const std::int64_t fbmpk_t0 =
                             ::fbmpk::telemetry::now_ns();)
    Timer t;
    fn();
    stats.add(t.seconds());
    FBMPK_TELEMETRY_ONLY({
      auto& reg = ::fbmpk::telemetry::Registry::instance();
      if (reg.enabled())
        reg.thread_buffer().record(
            ::fbmpk::telemetry::Hist::kBenchRun,
            static_cast<std::uint64_t>(::fbmpk::telemetry::now_ns() -
                                       fbmpk_t0));
    })
  }
  return stats;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  FBMPK_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      std::printf("%s%-*s", c == 0 ? "" : "  ",
                  static_cast<int>(widths[c]), row[c].c_str());
    std::printf("\n");
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c == 0 ? 0 : 2);
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

}  // namespace

BenchOptions BenchOptions::parse(int argc, char** argv) {
  BenchOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string val =
        eq == std::string::npos ? std::string() : arg.substr(eq + 1);
    if (key == "--scale") {
      o.scale = std::stod(val);
    } else if (key == "--reps") {
      o.reps = std::stoi(val);
    } else if (key == "--warmup") {
      o.warmup = std::stoi(val);
    } else if (key == "--matrices") {
      o.matrices = split_csv(val);
    } else if (key == "--k") {
      for (const auto& s : split_csv(val)) o.powers.push_back(std::stoi(s));
    } else if (key == "--threads") {
      o.threads = std::stoi(val);
    } else if (key == "--blocks") {
      o.num_blocks = static_cast<index_t>(std::stoi(val));
    } else {
      FBMPK_CHECK_MSG(false, "unknown benchmark flag: " << arg);
    }
  }
  FBMPK_CHECK(o.scale > 0.0 && o.reps >= 1 && o.warmup >= 0);
  return o;
}

}  // namespace fbmpk::perf
