// Shared benchmark-harness utilities: repeated timed runs with the
// paper's methodology (warmup + geometric mean of repetitions, §IV-C),
// fixed-width table printing, and command-line options common to all
// figure/table reproduction binaries.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sparse/coo.hpp"
#include "support/stats.hpp"
#include "support/timer.hpp"

namespace fbmpk::perf {

/// Time `fn` (reps + warmup executions); returns per-run seconds.
/// The paper runs each case 50 times and reports the geometric mean —
/// reps is configurable so quick runs stay quick.
RunningStats time_runs(const std::function<void()>& fn, int reps,
                       int warmup = 1);

/// Minimal fixed-width table printer for paper-style outputs.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Render to stdout with aligned columns.
  void print() const;

  /// Format helpers.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_ratio(double v) { return fmt(v, 2) + "x"; }
  static std::string fmt_percent(double v) { return fmt(v * 100.0, 1) + "%"; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Options shared by the bench binaries.
struct BenchOptions {
  double scale = 1.0;                  ///< suite size multiplier
  int reps = 5;                        ///< timed repetitions per case
  int warmup = 1;
  std::vector<std::string> matrices;   ///< empty = whole suite
  std::vector<int> powers;             ///< ks to sweep (bench-specific default)
  int threads = 0;                     ///< 0 = library default
  index_t num_blocks = 512;            ///< ABMC block count

  /// Parse --scale= --reps= --warmup= --matrices=a,b --k=3,5 --threads=
  /// --blocks=; unknown flags throw. argv[0] is skipped.
  static BenchOptions parse(int argc, char** argv);
};

}  // namespace fbmpk::perf
