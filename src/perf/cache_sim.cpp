#include "perf/cache_sim.hpp"

#include <algorithm>

namespace fbmpk::perf {

namespace {

bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

namespace simdetail {

Level make_level(const CacheConfig& cfg, std::size_t line_bytes) {
  FBMPK_CHECK(cfg.size_bytes > 0 && cfg.associativity > 0);
  FBMPK_CHECK_MSG(is_pow2(cfg.line_bytes), "line size must be power of 2");
  FBMPK_CHECK_MSG(cfg.line_bytes == line_bytes,
                  "all levels must share one line size");
  Level lv;
  lv.ways = cfg.associativity;
  lv.line_bytes = cfg.line_bytes;
  lv.sets = std::max<std::size_t>(
      1, cfg.size_bytes / (cfg.associativity * cfg.line_bytes));
  FBMPK_CHECK_MSG(is_pow2(lv.sets),
                  "size/(assoc*line) must be a power of 2, got " << lv.sets
                                                                 << " sets");
  lv.store.assign(lv.sets * lv.ways, Way{});
  return lv;
}

}  // namespace simdetail

CacheHierarchy::CacheHierarchy(const std::vector<CacheConfig>& levels) {
  FBMPK_CHECK_MSG(!levels.empty(), "need at least one cache level");
  for (const auto& cfg : levels)
    levels_.push_back(simdetail::make_level(cfg, levels.front().line_bytes));
  stats_.assign(levels_.size(), LevelStats{});
}

std::size_t CacheHierarchy::lookup(simdetail::Level& lv, std::uint64_t line,
                                   bool is_write) {
  const std::uint64_t set = line & (lv.sets - 1);
  const std::uint64_t tag = line >> 0;  // full line id as tag (simple)
  simdetail::Way* ways = lv.set_begin(set);
  for (std::size_t w = 0; w < lv.ways; ++w) {
    if (ways[w].valid && ways[w].tag == tag) {
      ways[w].lru = ++tick_;
      if (is_write) ways[w].dirty = true;
      return w;
    }
  }
  return static_cast<std::size_t>(-1);
}

void CacheHierarchy::fill(std::size_t level_idx, std::uint64_t line,
                          bool dirty) {
  simdetail::Level& lv = levels_[level_idx];
  const std::uint64_t set = line & (lv.sets - 1);
  simdetail::Way* ways = lv.set_begin(set);
  // Choose an invalid way, else the LRU victim.
  std::size_t victim = 0;
  for (std::size_t w = 0; w < lv.ways; ++w) {
    if (!ways[w].valid) {
      victim = w;
      break;
    }
    if (ways[w].lru < ways[victim].lru) victim = w;
  }
  if (ways[victim].valid && ways[victim].dirty) {
    // Dirty eviction cascades to the next level; from the LLC it is a
    // DRAM write.
    if (level_idx + 1 < levels_.size()) {
      const std::uint64_t evicted = ways[victim].tag;
      // The lower level may or may not hold the line (non-inclusive
      // victim handling): write-allocate it there.
      simdetail::Level& next = levels_[level_idx + 1];
      const std::size_t hit_way = lookup(next, evicted, true);
      if (hit_way == static_cast<std::size_t>(-1))
        fill(level_idx + 1, evicted, true);
    } else {
      dram_write_bytes_ += lv.line_bytes;
    }
  }
  ways[victim] = simdetail::Way{line, ++tick_, true, dirty};
}

void CacheHierarchy::access(std::uintptr_t addr, bool is_write) {
  const std::uint64_t line = addr / levels_.front().line_bytes;
  // Probe levels top-down; on a hit at level h, fill levels above it.
  std::size_t hit_level = levels_.size();
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    if (lookup(levels_[l], line, is_write && l == 0) !=
        static_cast<std::size_t>(-1)) {
      ++stats_[l].hits;
      hit_level = l;
      break;
    }
    ++stats_[l].misses;
  }
  if (hit_level == levels_.size()) dram_read_bytes_ += levels_[0].line_bytes;
  // Allocate the line in every missed level above the hit (or all levels
  // on a DRAM fetch). Dirty bit lives in L1 only (write-back upward).
  for (std::size_t l = std::min(hit_level, levels_.size()); l-- > 0;)
    fill(l, line, is_write && l == 0);
}

void CacheHierarchy::flush() {
  // Account remaining dirty lines (any level) as DRAM writes once.
  for (auto& lv : levels_) {
    for (auto& w : lv.store) {
      if (w.valid && w.dirty) {
        dram_write_bytes_ += lv.line_bytes;
        w.dirty = false;
      }
    }
  }
}

void CacheHierarchy::clear() {
  for (auto& lv : levels_)
    std::fill(lv.store.begin(), lv.store.end(), simdetail::Way{});
  std::fill(stats_.begin(), stats_.end(), LevelStats{});
  dram_read_bytes_ = dram_write_bytes_ = 0;
  tick_ = 0;
}

// --------------------------- SharedCacheSim --------------------------------

SharedCacheSim::SharedCacheSim(int cores,
                               const std::vector<CacheConfig>& private_levels,
                               const CacheConfig& llc) {
  FBMPK_CHECK_MSG(cores >= 1, "need at least one core");
  FBMPK_CHECK_MSG(!private_levels.empty(),
                  "need at least one private cache level");
  const std::size_t line = private_levels.front().line_bytes;
  llc_ = simdetail::make_level(llc, line);
  cores_.resize(static_cast<std::size_t>(cores));
  for (auto& core : cores_)
    for (const auto& cfg : private_levels)
      core.push_back(simdetail::make_level(cfg, line));
  private_stats_.assign(
      static_cast<std::size_t>(cores),
      std::vector<LevelStats>(private_levels.size(), LevelStats{}));
}

std::size_t SharedCacheSim::lookup(simdetail::Level& lv, std::uint64_t line,
                                   bool is_write) {
  const std::uint64_t set = line & (lv.sets - 1);
  simdetail::Way* ways = lv.set_begin(set);
  for (std::size_t w = 0; w < lv.ways; ++w) {
    if (ways[w].valid && ways[w].tag == line) {
      ways[w].lru = ++tick_;
      if (is_write) ways[w].dirty = true;
      return w;
    }
  }
  return static_cast<std::size_t>(-1);
}

void SharedCacheSim::fill_private(int core, std::size_t level_idx,
                                  std::uint64_t line, bool dirty) {
  auto& levels = cores_[static_cast<std::size_t>(core)];
  simdetail::Level& lv = levels[level_idx];
  const std::uint64_t set = line & (lv.sets - 1);
  simdetail::Way* ways = lv.set_begin(set);
  std::size_t victim = 0;
  for (std::size_t w = 0; w < lv.ways; ++w) {
    if (!ways[w].valid) {
      victim = w;
      break;
    }
    if (ways[w].lru < ways[victim].lru) victim = w;
  }
  if (ways[victim].valid && ways[victim].dirty) {
    const std::uint64_t evicted = ways[victim].tag;
    if (level_idx + 1 < levels.size()) {
      simdetail::Level& next = levels[level_idx + 1];
      if (lookup(next, evicted, true) == static_cast<std::size_t>(-1))
        fill_private(core, level_idx + 1, evicted, true);
    } else {
      // The last private level writes back into the shared LLC.
      writeback_to_llc(evicted);
    }
  }
  ways[victim] = simdetail::Way{line, ++tick_, true, dirty};
}

void SharedCacheSim::writeback_to_llc(std::uint64_t line) {
  if (lookup(llc_, line, true) == static_cast<std::size_t>(-1))
    fill_llc(line, true);  // inclusion hiccup: re-install dirty
}

void SharedCacheSim::fill_llc(std::uint64_t line, bool dirty) {
  const std::uint64_t set = line & (llc_.sets - 1);
  simdetail::Way* ways = llc_.set_begin(set);
  std::size_t victim = 0;
  for (std::size_t w = 0; w < llc_.ways; ++w) {
    if (!ways[w].valid) {
      victim = w;
      break;
    }
    if (ways[w].lru < ways[victim].lru) victim = w;
  }
  if (ways[victim].valid) {
    // Inclusive LLC: evicting a line drops every private copy; a dirty
    // copy anywhere (LLC or private) makes this a DRAM write.
    const std::uint64_t evicted = ways[victim].tag;
    bool was_dirty = ways[victim].dirty;
    for (auto& core : cores_) {
      for (auto& lv : core) {
        const std::uint64_t cset = evicted & (lv.sets - 1);
        simdetail::Way* cways = lv.set_begin(cset);
        for (std::size_t w = 0; w < lv.ways; ++w) {
          if (cways[w].valid && cways[w].tag == evicted) {
            was_dirty = was_dirty || cways[w].dirty;
            cways[w] = simdetail::Way{};
          }
        }
      }
    }
    if (was_dirty) dram_write_bytes_ += llc_.line_bytes;
  }
  ways[victim] = simdetail::Way{line, ++tick_, true, dirty};
}

void SharedCacheSim::access(int core, std::uintptr_t addr, bool is_write,
                            bool fetch_on_miss) {
  const std::uint64_t line = addr / llc_.line_bytes;
  auto& levels = cores_[static_cast<std::size_t>(core)];
  auto& stats = private_stats_[static_cast<std::size_t>(core)];
  std::size_t hit_level = levels.size();
  for (std::size_t l = 0; l < levels.size(); ++l) {
    if (lookup(levels[l], line, is_write && l == 0) !=
        static_cast<std::size_t>(-1)) {
      ++stats[l].hits;
      hit_level = l;
      break;
    }
    ++stats[l].misses;
  }
  if (hit_level == levels.size()) {
    // All privates missed: probe the shared LLC.
    if (lookup(llc_, line, false) != static_cast<std::size_t>(-1)) {
      ++llc_stats_.hits;
    } else {
      ++llc_stats_.misses;
      if (fetch_on_miss || !is_write) dram_read_bytes_ += llc_.line_bytes;
      fill_llc(line, false);
    }
  }
  // Allocate in every missed private level (dirty bit lives in L1).
  for (std::size_t l = std::min(hit_level, levels.size()); l-- > 0;)
    fill_private(core, l, line, is_write && l == 0);
}

void SharedCacheSim::touch(int core, std::uintptr_t addr, std::size_t bytes,
                           bool is_write, bool fetch_on_miss) {
  if (bytes == 0) return;
  const std::size_t line = llc_.line_bytes;
  const std::uintptr_t first = addr / line;
  const std::uintptr_t last = (addr + bytes - 1) / line;
  for (std::uintptr_t l = first; l <= last; ++l)
    access(core, l * line, is_write, fetch_on_miss);
}

void SharedCacheSim::flush() {
  // Each distinct dirty line is written once. A private dirty copy
  // implies an LLC copy (inclusion); clearing the LLC copy's dirty bit
  // here prevents double counting when the LLC pass follows. The
  // replayed partitions never write-share a line, so no line is dirty
  // in two cores at once.
  for (auto& core : cores_) {
    for (auto& lv : core) {
      for (auto& w : lv.store) {
        if (w.valid && w.dirty) {
          dram_write_bytes_ += lv.line_bytes;
          w.dirty = false;
          const std::uint64_t set = w.tag & (llc_.sets - 1);
          simdetail::Way* lways = llc_.set_begin(set);
          for (std::size_t i = 0; i < llc_.ways; ++i)
            if (lways[i].valid && lways[i].tag == w.tag)
              lways[i].dirty = false;
        }
      }
    }
  }
  for (auto& w : llc_.store) {
    if (w.valid && w.dirty) {
      dram_write_bytes_ += llc_.line_bytes;
      w.dirty = false;
    }
  }
}

void SharedCacheSim::clear() {
  for (auto& core : cores_)
    for (auto& lv : core)
      std::fill(lv.store.begin(), lv.store.end(), simdetail::Way{});
  std::fill(llc_.store.begin(), llc_.store.end(), simdetail::Way{});
  for (auto& stats : private_stats_)
    std::fill(stats.begin(), stats.end(), LevelStats{});
  llc_stats_ = LevelStats{};
  dram_read_bytes_ = dram_write_bytes_ = 0;
  tick_ = 0;
}

// --------------------------- factories -------------------------------------

namespace {

std::size_t scaled_pow2(std::size_t bytes, double scale) {
  // Round the scaled size to a power-of-two set count by rounding the
  // size itself to a power of two (associativity and line are fixed).
  auto target = static_cast<std::size_t>(static_cast<double>(bytes) * scale);
  std::size_t pow2 = 4096;  // floor: one 8-way set minimum
  while (pow2 * 2 <= target) pow2 *= 2;
  return pow2;
}

// Table I, Xeon Gold 6230R: 64 KB L1, 1 MB L2, 35.75 MB LLC (per
// socket; we model one socket and round the LLC to a power of two).
constexpr std::size_t kXeonLevelBytes[3] = {
    std::size_t{64} * 1024, std::size_t{1024} * 1024,
    std::size_t{32} * 1024 * 1024};

}  // namespace

std::size_t xeon_like_level_bytes(std::size_t level, double scale) {
  FBMPK_CHECK(level < 3 && scale > 0.0);
  return scaled_pow2(kXeonLevelBytes[level], scale);
}

CacheHierarchy make_xeon_like_hierarchy(double scale) {
  FBMPK_CHECK(scale > 0.0);
  return CacheHierarchy({
      CacheConfig{xeon_like_level_bytes(0, scale), 8, 64},
      CacheConfig{xeon_like_level_bytes(1, scale), 16, 64},
      CacheConfig{xeon_like_level_bytes(2, scale), 16, 64},
  });
}

SharedCacheSim make_shared_xeon_like(int cores, double scale) {
  FBMPK_CHECK(cores >= 1 && scale > 0.0);
  return SharedCacheSim(
      cores,
      {CacheConfig{xeon_like_level_bytes(0, scale), 8, 64},
       CacheConfig{xeon_like_level_bytes(1, scale), 16, 64}},
      CacheConfig{xeon_like_level_bytes(2, scale), 16, 64});
}

}  // namespace fbmpk::perf
