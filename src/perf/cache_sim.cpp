#include "perf/cache_sim.hpp"

#include <algorithm>

namespace fbmpk::perf {

namespace {

bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

CacheHierarchy::CacheHierarchy(const std::vector<CacheConfig>& levels) {
  FBMPK_CHECK_MSG(!levels.empty(), "need at least one cache level");
  for (const auto& cfg : levels) {
    FBMPK_CHECK(cfg.size_bytes > 0 && cfg.associativity > 0);
    FBMPK_CHECK_MSG(is_pow2(cfg.line_bytes), "line size must be power of 2");
    FBMPK_CHECK_MSG(cfg.line_bytes == levels.front().line_bytes,
                    "all levels must share one line size");
    Level lv;
    lv.ways = cfg.associativity;
    lv.line_bytes = cfg.line_bytes;
    lv.sets = std::max<std::size_t>(1, cfg.size_bytes /
                                           (cfg.associativity * cfg.line_bytes));
    FBMPK_CHECK_MSG(is_pow2(lv.sets),
                    "size/(assoc*line) must be a power of 2, got "
                        << lv.sets << " sets");
    lv.store.assign(lv.sets * lv.ways, Way{});
    levels_.push_back(std::move(lv));
  }
  stats_.assign(levels_.size(), LevelStats{});
}

std::size_t CacheHierarchy::lookup(Level& lv, std::uint64_t line,
                                   bool is_write) {
  const std::uint64_t set = line & (lv.sets - 1);
  const std::uint64_t tag = line >> 0;  // full line id as tag (simple)
  Way* ways = lv.set_begin(set);
  for (std::size_t w = 0; w < lv.ways; ++w) {
    if (ways[w].valid && ways[w].tag == tag) {
      ways[w].lru = ++tick_;
      if (is_write) ways[w].dirty = true;
      return w;
    }
  }
  return static_cast<std::size_t>(-1);
}

void CacheHierarchy::fill(std::size_t level_idx, std::uint64_t line,
                          bool dirty) {
  Level& lv = levels_[level_idx];
  const std::uint64_t set = line & (lv.sets - 1);
  Way* ways = lv.set_begin(set);
  // Choose an invalid way, else the LRU victim.
  std::size_t victim = 0;
  for (std::size_t w = 0; w < lv.ways; ++w) {
    if (!ways[w].valid) {
      victim = w;
      break;
    }
    if (ways[w].lru < ways[victim].lru) victim = w;
  }
  if (ways[victim].valid && ways[victim].dirty) {
    // Dirty eviction cascades to the next level; from the LLC it is a
    // DRAM write.
    if (level_idx + 1 < levels_.size()) {
      const std::uint64_t evicted = ways[victim].tag;
      // The lower level may or may not hold the line (non-inclusive
      // victim handling): write-allocate it there.
      Level& next = levels_[level_idx + 1];
      const std::size_t hit_way = lookup(next, evicted, true);
      if (hit_way == static_cast<std::size_t>(-1))
        fill(level_idx + 1, evicted, true);
    } else {
      dram_write_bytes_ += lv.line_bytes;
    }
  }
  ways[victim] = Way{line, ++tick_, true, dirty};
}

void CacheHierarchy::access(std::uintptr_t addr, bool is_write) {
  const std::uint64_t line = addr / levels_.front().line_bytes;
  // Probe levels top-down; on a hit at level h, fill levels above it.
  std::size_t hit_level = levels_.size();
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    if (lookup(levels_[l], line, is_write && l == 0) !=
        static_cast<std::size_t>(-1)) {
      ++stats_[l].hits;
      hit_level = l;
      break;
    }
    ++stats_[l].misses;
  }
  if (hit_level == levels_.size()) dram_read_bytes_ += levels_[0].line_bytes;
  // Allocate the line in every missed level above the hit (or all levels
  // on a DRAM fetch). Dirty bit lives in L1 only (write-back upward).
  for (std::size_t l = std::min(hit_level, levels_.size()); l-- > 0;)
    fill(l, line, is_write && l == 0);
}

void CacheHierarchy::flush() {
  // Account remaining dirty lines (any level) as DRAM writes once.
  for (auto& lv : levels_) {
    for (auto& w : lv.store) {
      if (w.valid && w.dirty) {
        dram_write_bytes_ += lv.line_bytes;
        w.dirty = false;
      }
    }
  }
}

void CacheHierarchy::clear() {
  for (auto& lv : levels_) std::fill(lv.store.begin(), lv.store.end(), Way{});
  std::fill(stats_.begin(), stats_.end(), LevelStats{});
  dram_read_bytes_ = dram_write_bytes_ = 0;
  tick_ = 0;
}

CacheHierarchy make_xeon_like_hierarchy(double scale) {
  FBMPK_CHECK(scale > 0.0);
  auto scaled = [&](std::size_t bytes) {
    // Round the scaled size to a power-of-two set count by rounding the
    // size itself to a power of two (associativity and line are fixed).
    auto target = static_cast<std::size_t>(static_cast<double>(bytes) * scale);
    std::size_t pow2 = 4096;  // floor: one 8-way set minimum
    while (pow2 * 2 <= target) pow2 *= 2;
    return pow2;
  };
  // Table I, Xeon Gold 6230R: 64 KB L1, 1 MB L2, 35.75 MB LLC (per
  // socket; we model one socket and round the LLC to a power of two).
  return CacheHierarchy({
      CacheConfig{scaled(std::size_t{64} * 1024), 8, 64},
      CacheConfig{scaled(std::size_t{1024} * 1024), 16, 64},
      CacheConfig{scaled(std::size_t{32} * 1024 * 1024), 16, 64},
  });
}

}  // namespace fbmpk::perf
