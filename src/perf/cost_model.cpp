#include "perf/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace fbmpk::perf {

const std::vector<PlatformSpec>& paper_platforms() {
  // Core counts, frequencies and cache hierarchy follow Table I; the
  // bandwidth and barrier figures are representative public numbers for
  // these parts (FT-2000+ is the 8-NUMA-node platform, hence the larger
  // barrier cost and lower per-core bandwidth efficiency).
  static const std::vector<PlatformSpec> specs = {
      {"FT2000+", 64, 2.2, 90.0, 5.0, 8.0, 4.0},
      {"ThunderX2", 64, 2.5, 240.0, 10.0, 3.0, 8.0},
      {"KP920", 128, 2.6, 380.0, 12.0, 3.5, 8.0},
      {"Xeon", 52, 2.1, 280.0, 14.0, 1.5, 16.0},
  };
  return specs;
}

PlatformSpec platform_by_name(const std::string& name) {
  for (const auto& p : paper_platforms())
    if (p.name == name) return p;
  FBMPK_CHECK_MSG(false, "unknown platform: " << name);
  return {};
}

namespace {

constexpr double kBytesPerNnz =
    sizeof(double) + sizeof(index_t);          // values + col_idx
constexpr double kBytesPerRow = sizeof(index_t);  // row_ptr
constexpr double kFlopsPerNnz = 2.0;              // multiply + add

/// Achievable aggregate bandwidth with t threads (GB/s). Real sockets
/// ramp sub-linearly as memory controllers contend, so we use a
/// saturating hyperbola bw(t) = BW * t / (t + t_half) calibrated so
/// bw(1) equals the single-core figure and bw(inf) the STREAM figure.
double bandwidth_gbps(const PlatformSpec& p, int threads) {
  const double t_half =
      std::max(0.0, p.stream_bw_gbps / p.bw_per_core_gbps - 1.0);
  return p.stream_bw_gbps * threads / (threads + t_half);
}

/// Time for a memory-streaming phase of `bytes` bytes and `flops` FP
/// operations spread over `threads` threads limited to `max_par`-way
/// parallelism (block granularity).
double phase_seconds(const PlatformSpec& p, double bytes, double flops,
                     int threads, double max_par) {
  const double t_eff = std::min<double>(threads, std::max(1.0, max_par));
  const double mem_s = bytes / (bandwidth_gbps(p, threads) * 1e9);
  const double compute_s =
      flops / (t_eff * p.freq_ghz * 1e9 * p.flops_per_cycle);
  // Memory and compute overlap imperfectly; the slower resource
  // dominates, with granularity-limited phases bound by compute.
  return std::max(mem_s, compute_s);
}

}  // namespace

double predict_standard_mpk_seconds(const PlatformSpec& p,
                                    const WorkloadShape& w, int k,
                                    int threads) {
  FBMPK_CHECK(k >= 1 && threads >= 1);
  const double bytes =
      w.nnz * kBytesPerNnz + w.rows * (kBytesPerRow + 2.0 * sizeof(double));
  const double flops = w.nnz * kFlopsPerNnz;
  // Row-parallel SpMV: parallelism bounded only by rows; one barrier
  // closes each sweep.
  const double sweep =
      phase_seconds(p, bytes, flops, threads, w.rows) + p.barrier_us * 1e-6;
  return k * sweep;
}

double predict_fbmpk_seconds(const PlatformSpec& p, const WorkloadShape& w,
                             int k, int threads) {
  FBMPK_CHECK(k >= 1 && threads >= 1);
  FBMPK_CHECK(!w.blocks_per_color.empty());
  const std::size_t colors = w.blocks_per_color.size();

  // Triangle sweeps touch half the matrix but double the vector work
  // (two iterates per pass). Per color: its share of nnz, limited to
  // blocks_per_color-way parallelism, plus a barrier.
  double color_sweep = 0.0;  // one L or U pass over all colors
  for (std::size_t c = 0; c < colors; ++c) {
    const double nnz_c = w.nnz_per_color[c] / 2.0;  // one triangle
    const double rows_c =
        static_cast<double>(w.rows) / static_cast<double>(colors);
    const double bytes = nnz_c * kBytesPerNnz +
                         rows_c * (kBytesPerRow + 4.0 * sizeof(double));
    const double flops = 2.0 * nnz_c * kFlopsPerNnz;  // two iterates
    color_sweep += phase_seconds(p, bytes, flops, threads,
                                 w.blocks_per_color[c]) +
                   p.barrier_us * 1e-6;
  }

  // Head / tail: one triangle each, row-parallel (no coloring needed).
  const double tri_bytes = (w.nnz / 2.0) * kBytesPerNnz +
                           w.rows * (kBytesPerRow + 2.0 * sizeof(double));
  const double head_tail =
      phase_seconds(p, tri_bytes, (w.nnz / 2.0) * kFlopsPerNnz, threads,
                    w.rows) +
      p.barrier_us * 1e-6;

  const int pairs = k / 2;
  const bool odd = (k % 2 != 0);
  // head + pairs * (forward + backward) + optional tail.
  return head_tail + pairs * 2.0 * color_sweep + (odd ? head_tail : 0.0);
}

double predict_fbmpk_scalability(const PlatformSpec& p,
                                 const WorkloadShape& w, int k,
                                 int threads) {
  const double base1 = predict_standard_mpk_seconds(p, w, k, 1);
  const double fb_t = predict_fbmpk_seconds(p, w, k, threads);
  return base1 / fb_t;
}

PartitionImbalance partition_imbalance(const AbmcOrdering& o,
                                       std::span<const index_t> weights,
                                       index_t threads,
                                       PartitionStrategy strategy) {
  FBMPK_CHECK(threads >= 1);
  const ColorPartition part = partition_colors(o, weights, threads, strategy);
  PartitionImbalance result;
  double weighted = 0.0, total = 0.0;
  for (index_t c = 0; c < o.num_colors; ++c) {
    long long color_nnz = 0;
    long long max_load = 0;
    for (index_t t = 0; t < threads; ++t) {
      const long long load = part.load[part.slot(t, c)];
      color_nnz += load;
      max_load = std::max(max_load, load);
    }
    if (color_nnz == 0) continue;
    const double mean_load =
        static_cast<double>(color_nnz) / static_cast<double>(threads);
    const double ratio = static_cast<double>(max_load) / mean_load;
    result.worst = std::max(result.worst, ratio);
    weighted += ratio * static_cast<double>(color_nnz);
    total += static_cast<double>(color_nnz);
  }
  result.mean = total > 0.0 ? weighted / total : 1.0;
  return result;
}

}  // namespace fbmpk::perf
