// Analytic parallel cost model — the substitute for the paper's four
// physical multicore platforms (Table I; DESIGN.md §4).
//
// This container exposes one CPU core, so multi-thread *timings* are
// meaningless here. The model predicts the execution time of standard
// MPK and color-scheduled FBMPK on a described platform from first
// principles:
//
//   - each sweep is memory-bound: time >= bytes / bw(t), where the
//     achievable bandwidth bw(t) ramps with thread count and saturates
//     at the platform's stream bandwidth;
//   - compute time scales as work/t but cannot beat the per-color block
//     granularity: a color with b blocks uses at most min(t, b) threads;
//   - every color boundary costs one barrier; standard MPK pays one
//     barrier per SpMV sweep.
//
// It reproduces the *shape* of Fig 12 (near-linear scaling for large
// matrices, barrier-dominated flattening for small ones like cant) and
// of Fig 7/8's platform spread, not absolute times.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "reorder/abmc.hpp"
#include "reorder/nnz_partition.hpp"
#include "sparse/csr.hpp"

namespace fbmpk::perf {

/// A platform description (values follow Table I plus public spec
/// sheets; bandwidth/barrier numbers are representative, not measured).
struct PlatformSpec {
  std::string name;
  int cores = 1;
  double freq_ghz = 2.0;
  double stream_bw_gbps = 100.0;  ///< saturated memory bandwidth, GB/s
  double bw_per_core_gbps = 12.0; ///< single-core achievable bandwidth
  double barrier_us = 2.0;        ///< cost of one OpenMP barrier
  double flops_per_cycle = 4.0;   ///< per-core FP throughput (FMA lanes)
};

/// The four evaluation platforms of Table I.
const std::vector<PlatformSpec>& paper_platforms();
PlatformSpec platform_by_name(const std::string& name);

/// Work summary of one matrix for the model.
struct WorkloadShape {
  index_t rows = 0;
  index_t nnz = 0;
  /// Blocks per color (from the ABMC schedule); empty means "one
  /// implicit color with one block per thread" (standard MPK).
  std::vector<index_t> blocks_per_color;
  /// nnz per color, aligned with blocks_per_color.
  std::vector<index_t> nnz_per_color;

  template <class T>
  static WorkloadShape of(const CsrMatrix<T>& permuted,
                          const AbmcOrdering& o) {
    WorkloadShape w;
    w.rows = permuted.rows();
    w.nnz = permuted.nnz();
    w.blocks_per_color.resize(static_cast<std::size_t>(o.num_colors));
    w.nnz_per_color.assign(static_cast<std::size_t>(o.num_colors), 0);
    for (index_t c = 0; c < o.num_colors; ++c) {
      w.blocks_per_color[c] = o.color_ptr[c + 1] - o.color_ptr[c];
      for (index_t b = o.color_ptr[c]; b < o.color_ptr[c + 1]; ++b)
        for (index_t r = o.block_ptr[b]; r < o.block_ptr[b + 1]; ++r)
          w.nnz_per_color[c] += permuted.row_nnz(r);
    }
    return w;
  }
};

/// Predicted seconds for standard MPK (k sweeps of the full matrix).
double predict_standard_mpk_seconds(const PlatformSpec& p,
                                    const WorkloadShape& w, int k,
                                    int threads);

/// Predicted seconds for color-scheduled FBMPK with power k.
double predict_fbmpk_seconds(const PlatformSpec& p, const WorkloadShape& w,
                             int k, int threads);

/// Speedup of t-thread FBMPK over 1-thread standard MPK (Fig 12's
/// normalization).
double predict_fbmpk_scalability(const PlatformSpec& p,
                                 const WorkloadShape& w, int k, int threads);

/// Load imbalance of a per-color thread partition, as max/mean nnz per
/// thread. 1.0 is a perfect split; a color sweep finishes when its
/// most-loaded thread does, so the ratio is the slowdown the partition
/// itself costs (barriers aside).
struct PartitionImbalance {
  double worst = 1.0;  ///< max over colors
  double mean = 1.0;   ///< nnz-weighted mean over colors
};

/// Evaluate `strategy` (block-static vs nnz-LPT) for an ordering at a
/// given thread count; `weights` are per-block nnz weights
/// (block_nnz_weights).
PartitionImbalance partition_imbalance(const AbmcOrdering& o,
                                       std::span<const index_t> weights,
                                       index_t threads,
                                       PartitionStrategy strategy);

}  // namespace fbmpk::perf
