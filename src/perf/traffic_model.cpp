#include "perf/traffic_model.hpp"

#include "support/error.hpp"

namespace fbmpk::perf {

std::size_t csr_sweep_bytes(index_t rows, index_t nnz,
                            std::size_t value_size) {
  return csr_sweep_bytes_custom(rows, nnz, value_size,
                                static_cast<double>(sizeof(index_t)));
}

std::size_t csr_sweep_bytes_custom(index_t rows, index_t nnz,
                                   std::size_t value_size,
                                   double col_index_bytes) {
  FBMPK_CHECK_MSG(col_index_bytes >= 0.0,
                  "column index width must be non-negative");
  const double idx_bytes = static_cast<double>(nnz) * col_index_bytes;
  return static_cast<std::size_t>(nnz) * value_size +
         static_cast<std::size_t>(idx_bytes + 0.5) +
         (static_cast<std::size_t>(rows) + 1) * sizeof(index_t);
}

double standard_sweep_count(int k) { return static_cast<double>(k); }

double fbmpk_sweep_count(int k) {
  // Even k: U is read k/2+1 times, L k/2 times; odd k: each (k+1)/2
  // times. With each triangle ≈ half the matrix this is (k+1)/2
  // full-matrix equivalents for either parity (paper §III-B).
  return (k + 1) / 2.0;
}

TrafficEstimate standard_mpk_traffic(const MatrixShape& m, int k,
                                     std::size_t value_size) {
  FBMPK_CHECK(k >= 1);
  TrafficEstimate t;
  t.matrix_bytes =
      static_cast<std::size_t>(k) * csr_sweep_bytes(m.rows, m.nnz, value_size);
  // Per sweep: stream x in, stream y out.
  t.vector_bytes = static_cast<std::size_t>(k) * 2 *
                   static_cast<std::size_t>(m.rows) * value_size;
  return t;
}

TrafficEstimate fbmpk_traffic(const MatrixShape& m, int k,
                              std::size_t value_size) {
  return fbmpk_traffic_compressed(m, k, static_cast<double>(sizeof(index_t)),
                                  value_size);
}

namespace {

// Shared body: `matrix_value_size` prices each stored triangle value
// and diagonal entry, `vector_value_size` the dense vector elements.
// The public entry points keep them equal (uniform precision) or set
// the matrix side from precision_value_bytes (mixed precision).
TrafficEstimate fbmpk_traffic_impl(const MatrixShape& m, int k,
                                   double col_index_bytes,
                                   std::size_t matrix_value_size,
                                   std::size_t vector_value_size) {
  FBMPK_CHECK(k >= 1);
  const bool odd = (k % 2 != 0);
  const index_t offdiag = m.nnz - m.diag_entries;
  // The split is assumed balanced; for structurally symmetric matrices
  // it is exact.
  const std::size_t tri_bytes = csr_sweep_bytes_custom(
      m.rows, offdiag / 2, matrix_value_size, col_index_bytes);
  const std::size_t u_sweeps = odd ? (k + 1) / 2 : k / 2 + 1;
  const std::size_t l_sweeps = odd ? (k + 1) / 2 : k / 2;

  TrafficEstimate t;
  t.matrix_bytes = (u_sweeps + l_sweeps) * tri_bytes +
                   // the dense diagonal is streamed once per forward
                   // sweep and once in the tail
                   (static_cast<std::size_t>(k / 2) + (odd ? 1 : 0)) *
                       static_cast<std::size_t>(m.rows) * matrix_value_size;

  // Vector stream counts per stage (reads + writes of n-length arrays).
  // Gathers to recently-written rows hit in cache (the reordering's
  // whole point), except in the backward sweep, whose gathers re-read
  // the xy pair the forward sweep left behind — one full pass over
  // both lanes:
  //   head: read x0, write xy-even, write tmp                  -> 3n
  //   forward: read tmp + xy-even (the odd lane is produced,
  //            not read), write xy-odd + tmp                   -> 4n
  //   backward: read tmp + the xy pair its gathers re-fetch
  //             (2n), write xy-even + tmp                      -> 6n
  //   tail: read tmp + xy-even, write y                        -> 3n
  const std::size_t n = static_cast<std::size_t>(m.rows);
  const std::size_t pair_streams = 10 * static_cast<std::size_t>(k / 2);
  t.vector_bytes = (3 + pair_streams + (odd ? 3 : 0)) * n * vector_value_size;
  return t;
}

}  // namespace

TrafficEstimate fbmpk_traffic_compressed(const MatrixShape& m, int k,
                                         double col_index_bytes,
                                         std::size_t value_size) {
  return fbmpk_traffic_impl(m, k, col_index_bytes, value_size, value_size);
}

TrafficEstimate fbmpk_traffic_mixed(const MatrixShape& m, int k,
                                    double col_index_bytes,
                                    ValuePrecision precision, int nvec) {
  FBMPK_CHECK(nvec >= 1);
  TrafficEstimate t =
      fbmpk_traffic_impl(m, k, col_index_bytes,
                         precision_value_bytes(precision), sizeof(double));
  // Batched sweep: one matrix read for the whole batch, vector streams
  // per lane.
  t.vector_bytes *= static_cast<std::size_t>(nvec);
  return t;
}

double traffic_ratio(const MatrixShape& m, int k, std::size_t value_size) {
  const auto fb = fbmpk_traffic(m, k, value_size);
  const auto st = standard_mpk_traffic(m, k, value_size);
  return static_cast<double>(fb.total()) / static_cast<double>(st.total());
}

}  // namespace fbmpk::perf
