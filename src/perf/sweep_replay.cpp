#include "perf/sweep_replay.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "kernels/sweep_schedule.hpp"
#include "support/timer.hpp"

namespace fbmpk::perf {

namespace {

// Virtual address space: one synthetic base per dense-vector stream,
// spaced far beyond any realistic footprint so no two streams share a
// line. Only the vector arrays go through the cache simulator — the
// CSR streams (row_ptr, col_idx, values, diagonal) are read-once-per-
// sweep compulsory traffic that no realistic cache retains across a
// sweep, so the replay charges them analytically (see RowReplayer).
// That keeps the simulated hierarchy focused on the one thing that
// differs between candidates: vector reuse and gather locality.
enum Stream : int { kX0, kXY, kTmp, kYOut };

constexpr std::uintptr_t stream_base(Stream s) {
  return (static_cast<std::uintptr_t>(s) + 1) << 44;
}

/// One sampled permuted row, with its column gather targets split by
/// triangle and its element offset into the (sample-compacted) L/U
/// streams. Offsets are assigned in ascending permuted-row order so a
/// backward sweep revisits exactly the forward sweep's addresses.
struct RowRef {
  index_t p = 0;      ///< permuted row index (vector-space address)
  index_t rank = 0;   ///< index among sampled rows (row_ptr address)
  std::uint64_t lo_off = 0, up_off = 0;  ///< element offsets
  std::uint32_t lo_begin = 0, lo_end = 0;  ///< range into lo_cols
  std::uint32_t up_begin = 0, up_end = 0;  ///< range into up_cols
};

struct SampledBlock {
  index_t color = 0;
  std::uint32_t first_row = 0, last_row = 0;  ///< range into rows
};

struct ReplayWorld {
  std::vector<RowRef> rows;  // ascending permuted order
  // Gather targets in *compact* coordinates: a sampled row's exact
  // rank, an unsampled neighbor's insertion rank (all neighbors in the
  // gap between two sampled blocks collapse onto the boundary). This
  // makes the sampled replay a self-similar 1/S-scale problem — vector
  // arrays shrink with the sample exactly like the scaled cache does —
  // instead of scattering gathers across the full-size address range,
  // which would miss far more lines per sampled row than the full
  // stream does per row.
  std::vector<index_t> lo_cols, up_cols;
  std::vector<SampledBlock> blocks;  // in block (= color) order
  // blocks of (color, thread), as indices into `blocks`.
  std::vector<std::vector<std::vector<std::uint32_t>>> parts;
  index_t num_colors = 1;
  std::uint64_t replayed_entries = 0;  // incl. diagonal hits
};

ReplayWorld build_world(const CsrMatrix<double>& a, const AbmcOrdering* ord,
                        int threads, index_t max_sample_rows,
                        const SweepSchedule* sched) {
  const index_t n = a.rows();
  ReplayWorld w;

  // Block/color structure: the ordering's, or synthetic contiguous
  // 256-row blocks of one color for the natural order.
  std::vector<index_t> block_ptr;
  std::vector<index_t> block_color;
  if (ord != nullptr && !ord->block_ptr.empty()) {
    block_ptr = ord->block_ptr;
    w.num_colors = std::max<index_t>(1, ord->num_colors);
    block_color.resize(static_cast<std::size_t>(ord->num_blocks));
    for (index_t c = 0; c < ord->num_colors; ++c)
      for (index_t b = ord->color_ptr[c]; b < ord->color_ptr[c + 1]; ++b)
        block_color[static_cast<std::size_t>(b)] = c;
  } else {
    constexpr index_t kRowsPerBlock = 256;
    for (index_t r = 0; r <= n; r += kRowsPerBlock)
      block_ptr.push_back(std::min(r, n));
    if (block_ptr.back() != n) block_ptr.push_back(n);
    block_color.assign(block_ptr.size() - 1, 0);
    w.num_colors = 1;
  }
  const auto num_blocks = static_cast<index_t>(block_ptr.size() - 1);

  // Sample every S-th block, S sized so ~max_sample_rows rows survive.
  index_t stride = 1;
  if (max_sample_rows > 0 && n > max_sample_rows)
    stride = (n + max_sample_rows - 1) / max_sample_rows;

  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  std::vector<index_t> inv;
  if (ord != nullptr) inv = ord->perm.inverse();
  const auto old_of = [&](index_t p) {
    return ord != nullptr ? ord->perm.old_of(p) : p;
  };
  const auto new_of = [&](index_t c) { return ord != nullptr ? inv[c] : c; };

  std::uint64_t lo_elems = 0, up_elems = 0;
  index_t rank = 0;
  for (index_t b = 0; b < num_blocks; ++b) {
    if (b % stride != 0) continue;
    SampledBlock sb;
    sb.color = block_color[static_cast<std::size_t>(b)];
    sb.first_row = static_cast<std::uint32_t>(w.rows.size());
    for (index_t p = block_ptr[b]; p < block_ptr[b + 1]; ++p) {
      RowRef row;
      row.p = p;
      row.rank = rank++;
      row.lo_off = lo_elems;
      row.up_off = up_elems;
      row.lo_begin = static_cast<std::uint32_t>(w.lo_cols.size());
      const index_t r = old_of(p);
      w.replayed_entries += static_cast<std::uint64_t>(rp[r + 1] - rp[r]);
      for (index_t e = rp[r]; e < rp[r + 1]; ++e) {
        const index_t pc = new_of(ci[e]);
        if (pc < p) w.lo_cols.push_back(pc);
      }
      row.lo_end = static_cast<std::uint32_t>(w.lo_cols.size());
      row.up_begin = static_cast<std::uint32_t>(w.up_cols.size());
      for (index_t e = rp[r]; e < rp[r + 1]; ++e) {
        const index_t pc = new_of(ci[e]);
        if (pc > p) w.up_cols.push_back(pc);
      }
      row.up_end = static_cast<std::uint32_t>(w.up_cols.size());
      lo_elems += row.lo_end - row.lo_begin;
      up_elems += row.up_end - row.up_begin;
      w.rows.push_back(row);
    }
    sb.last_row = static_cast<std::uint32_t>(w.rows.size());
    if (sb.last_row > sb.first_row) w.blocks.push_back(sb);
  }

  // Compact the gather coordinates (see ReplayWorld): a sampled target
  // keeps its exact rank, anything in a gap collapses onto the next
  // sampled row's rank. rows is sorted by p, so this is a lower_bound.
  const auto compact = [&](index_t pc) {
    const auto it = std::lower_bound(
        w.rows.begin(), w.rows.end(), pc,
        [](const RowRef& r, index_t v) { return r.p < v; });
    return static_cast<index_t>(it - w.rows.begin());
  };
  for (auto& c : w.lo_cols) c = compact(c);
  for (auto& c : w.up_cols) c = compact(c);

  // Partition each color's sampled blocks across the simulated cores:
  // the built schedule's nnz-LPT assignment when one is supplied and
  // matches, round-robin otherwise (a fair stand-in — the oracle ranks
  // traffic, which barely moves with the intra-color assignment).
  std::vector<index_t> thread_of_block;
  if (sched != nullptr && !sched->empty() &&
      sched->num_threads == static_cast<index_t>(threads) &&
      sched->num_blocks == num_blocks) {
    thread_of_block.assign(static_cast<std::size_t>(num_blocks), 0);
    for (index_t t = 0; t < sched->num_threads; ++t)
      for (index_t c = 0; c < sched->num_colors; ++c) {
        const index_t slot = t * sched->num_colors + c;
        for (index_t i = sched->part_ptr[slot];
             i < sched->part_ptr[slot + 1]; ++i)
          thread_of_block[static_cast<std::size_t>(
              sched->part_blocks[i])] = t;
      }
  }
  w.parts.assign(static_cast<std::size_t>(w.num_colors),
                 std::vector<std::vector<std::uint32_t>>(
                     static_cast<std::size_t>(threads)));
  std::vector<index_t> rr(static_cast<std::size_t>(w.num_colors), 0);
  // Recover each sampled block's original id by walking in step with
  // the sampling loop above (blocks are appended in block order).
  {
    std::size_t sbi = 0;
    for (index_t b = 0; b < num_blocks && sbi < w.blocks.size(); ++b) {
      if (b % stride != 0) continue;
      if (block_ptr[b + 1] == block_ptr[b]) continue;  // empty block
      const SampledBlock& sb = w.blocks[sbi];
      index_t t;
      if (!thread_of_block.empty())
        t = thread_of_block[static_cast<std::size_t>(b)];
      else
        t = rr[static_cast<std::size_t>(sb.color)]++ % threads;
      w.parts[static_cast<std::size_t>(sb.color)]
             [static_cast<std::size_t>(t)]
                 .push_back(static_cast<std::uint32_t>(sbi));
      ++sbi;
    }
  }
  return w;
}

/// Issues the virtual accesses of one row for each pipeline stage,
/// mirroring fbmpk_sweep_btb's tracer calls (kernels/fbmpk.hpp).
/// Dense-vector traffic (x0, the interleaved xy pair, tmp, y and the
/// per-nonzero gathers — one lane for row_dot1, the pair for row_dot2)
/// goes through the shared cache simulator; vector writes use the
/// write-validate path since the kernels overwrite whole rows. The CSR
/// side (row_ptr pair, col/val streams, diagonal) is accumulated as
/// analytic compulsory bytes: it is read exactly once per sweep in the
/// matrix >> LLC regime the oracle targets, and simulating it would
/// only let the megabytes-long stream flush the vector working set out
/// of the scaled-down LLC — an artifact of scaling, not a property of
/// the machine being modelled.
class RowReplayer {
 public:
  RowReplayer(SharedCacheSim& sim, const ReplayWorld& w,
              const ReplayConfig& cfg)
      : sim_(sim), w_(w), cib_(cfg.col_index_bytes),
        vb_(cfg.matrix_value_bytes),
        lane_(8 * static_cast<std::size_t>(cfg.nvec)) {}

  /// CSR bytes charged outside the simulator (fractional: band
  /// compression prices indices at a fractional width).
  double matrix_bytes() const { return matrix_bytes_; }

  void head(int core, const RowRef& row) {
    touch(core, kX0, elem(row.rank), lane_, false);
    touch(core, kXY, xy_even(row.rank), lane_, true);
    rp_pair();
    stream(row.up_end - row.up_begin);
    for (auto i = row.up_begin; i < row.up_end; ++i)
      touch(core, kXY, xy_even(w_.up_cols[i]), lane_, false);  // dot1 even
    touch(core, kTmp, elem(row.rank), lane_, true);
  }

  void forward(int core, const RowRef& row) {
    rp_pair();
    touch(core, kTmp, elem(row.rank), lane_, false);
    diag();
    touch(core, kXY, xy_even(row.rank), lane_, false);
    stream(row.lo_end - row.lo_begin);
    for (auto i = row.lo_begin; i < row.lo_end; ++i)
      touch(core, kXY, xy_even(w_.lo_cols[i]), 2 * lane_, false);  // pair
    touch(core, kXY, xy_odd(row.rank), lane_, true);
    touch(core, kTmp, elem(row.rank), lane_, true);
  }

  void backward(int core, const RowRef& row, bool prime_next) {
    rp_pair();
    touch(core, kTmp, elem(row.rank), lane_, false);
    stream(row.up_end - row.up_begin);
    for (auto i = row.up_begin; i < row.up_end; ++i) {
      if (prime_next)
        touch(core, kXY, xy_even(w_.up_cols[i]), 2 * lane_, false);
      else
        touch(core, kXY, xy_odd(w_.up_cols[i]), lane_, false);  // dot1 odd
    }
    touch(core, kXY, xy_even(row.rank), lane_, true);
    if (prime_next) touch(core, kTmp, elem(row.rank), lane_, true);
  }

  void tail(int core, const RowRef& row) {
    rp_pair();
    touch(core, kTmp, elem(row.rank), lane_, false);
    diag();
    touch(core, kXY, xy_even(row.rank), lane_, false);
    stream(row.lo_end - row.lo_begin);
    for (auto i = row.lo_begin; i < row.lo_end; ++i)
      touch(core, kXY, xy_even(w_.lo_cols[i]), lane_, false);  // dot1 even
    touch(core, kYOut, elem(row.rank), lane_, true);
  }

 private:
  std::uint64_t elem(index_t p) const {
    return static_cast<std::uint64_t>(p) * lane_;
  }
  // BtB batched layout xy[2·B·n]: row p's even lanes at 2·B·p, odd at
  // 2·B·p + B; a pair gather reads both, contiguously.
  std::uint64_t xy_even(index_t p) const {
    return static_cast<std::uint64_t>(p) * 2 * lane_;
  }
  std::uint64_t xy_odd(index_t p) const { return xy_even(p) + lane_; }

  void touch(int core, Stream s, std::uint64_t off, std::size_t bytes,
             bool is_write) {
    // Writes keep the default read-for-ownership fill: the kernels use
    // plain stores, and the RFO stream is part of the measured traffic
    // the analytic model was validated against.
    sim_.touch(core, stream_base(s) + off, bytes, is_write);
  }

  // One row_ptr entry per row per sweep (consecutive rows share the
  // pair's second element).
  void rp_pair() { matrix_bytes_ += sizeof(index_t); }

  void diag() { matrix_bytes_ += static_cast<double>(vb_); }

  void stream(std::uint64_t count) {
    matrix_bytes_ +=
        static_cast<double>(count) * (cib_ + static_cast<double>(vb_));
  }

  SharedCacheSim& sim_;
  const ReplayWorld& w_;
  double cib_;
  std::size_t vb_;
  std::size_t lane_;
  double matrix_bytes_ = 0.0;
};

/// Fraction of one sweep's vector bytes the scaled LLC holds: below
/// 1.0 so cross-sweep re-streams miss (the DRAM-resident regime), and
/// above the worst cross-color gather distance — (C-1)/C of a sweep
/// for C colors — so well-ordered gathers still hit.
constexpr double kLlcSweepFraction = 0.8;

/// Builds the replay hierarchy with the LLC sized to `llc_target`
/// bytes at way granularity: the set count stays a power of two (the
/// indexing invariant) while the way count absorbs the remainder,
/// landing within ~6% of the target. make_shared_xeon_like's
/// power-of-two rounding can be off by 2x, which here would straddle
/// the regime boundary the fraction above aims between.
SharedCacheSim make_replay_sim(int threads, double llc_target) {
  constexpr std::size_t kLine = 64;
  const auto target = static_cast<std::size_t>(llc_target);
  std::size_t sets = 1;
  while (sets * 2 * 16 * kLine <= target) sets *= 2;
  const std::size_t ways = std::clamp<std::size_t>(
      (target + sets * kLine / 2) / (sets * kLine), 8, 32);
  const double scale = llc_target / 32e6;
  return SharedCacheSim(
      threads,
      {CacheConfig{xeon_like_level_bytes(0, scale), 8, kLine},
       CacheConfig{xeon_like_level_bytes(1, scale), 16, kLine}},
      CacheConfig{sets * ways * kLine, ways, kLine});
}

/// Shared replay driver: runs the BtB stage walk (head, F/B pairs,
/// tail) over caller-supplied row visit orders, flushes the simulator,
/// and scales the sampled traffic back to the full matrix. The sweep
/// callables invoke visit(core, row) for every sampled row in the
/// forward / backward execution order of the schedule being priced.
/// `seconds` is left for the caller (its timer covers world building).
template <class SweepF, class SweepB>
ReplayPrediction run_replay(const CsrMatrix<double>& a, const ReplayWorld& w,
                            const ReplayConfig& cfg, SweepF&& sweep_fwd,
                            SweepB&& sweep_bwd) {
  ReplayPrediction out;
  out.replayed_rows = static_cast<index_t>(w.rows.size());
  out.replayed_nnz = w.lo_cols.size() + w.up_cols.size();
  out.sample_fraction =
      a.nnz() > 0 ? static_cast<double>(w.replayed_entries) /
                        static_cast<double>(a.nnz())
                  : 1.0;
  if (out.replayed_rows == 0) return out;

  SharedCacheSim sim = [&]() -> SharedCacheSim {
    if (cfg.cache_scale > 0.0) {
      out.cache_scale = cfg.cache_scale;
      return make_shared_xeon_like(cfg.threads, cfg.cache_scale);
    }
    // Size the LLC to the *vector* regime of a DRAM-resident problem
    // (the CSR stream is charged analytically, see RowReplayer): one
    // sweep touches ~3 lane-wide arrays per row, and on the paper's
    // Xeon that working set does not survive to the next sweep while
    // intra-sweep gather bands — a color-gap away at most — do. An LLC
    // just under one sweep's vector bytes reproduces both, and the
    // way-granular sizing keeps it off the regime boundaries that
    // power-of-two rounding would straddle.
    const double lane = 8.0 * static_cast<double>(cfg.nvec);
    const double sweep_vec =
        3.0 * lane * static_cast<double>(out.replayed_rows);
    const double llc = std::max(8192.0, kLlcSweepFraction * sweep_vec);
    out.cache_scale = llc / 32e6;
    return make_replay_sim(cfg.threads, llc);
  }();
  RowReplayer replay(sim, w, cfg);

  sweep_fwd([&](int core, const RowRef& r) { replay.head(core, r); });
  const int pairs = cfg.k / 2;
  for (int it = 0; it < pairs; ++it) {
    sweep_fwd([&](int core, const RowRef& r) { replay.forward(core, r); });
    const bool prime_next = !(it == pairs - 1 && cfg.k % 2 == 0);
    sweep_bwd([&](int core, const RowRef& r) {
      replay.backward(core, r, prime_next);
    });
  }
  if (cfg.k % 2 == 1)
    sweep_fwd([&](int core, const RowRef& r) { replay.tail(core, r); });
  sim.flush();

  // Scale the sampled traffic back to the full matrix.
  const double up = out.sample_fraction > 0.0 ? 1.0 / out.sample_fraction
                                              : 1.0;
  out.dram_read_bytes = static_cast<std::uint64_t>(
      (static_cast<double>(sim.dram_read_bytes()) + replay.matrix_bytes()) *
      up);
  out.dram_write_bytes = static_cast<std::uint64_t>(
      static_cast<double>(sim.dram_write_bytes()) * up);
  return out;
}

}  // namespace

ReplayPrediction replay_fbmpk_traffic(const CsrMatrix<double>& a,
                                      const AbmcOrdering* ord,
                                      const ReplayConfig& cfg,
                                      const SweepSchedule* sched) {
  FBMPK_CHECK(cfg.k >= 1 && cfg.threads >= 1 && cfg.nvec >= 1);
  FBMPK_CHECK(cfg.col_index_bytes > 0.0 && cfg.matrix_value_bytes > 0);
  Timer timer;
  const index_t n = a.rows();
  if (n == 0) return {};

  const ReplayWorld w =
      build_world(a, ord, cfg.threads, cfg.max_sample_rows, sched);

  const auto for_color = [&](index_t c, bool rows_forward, auto&& visit) {
    const auto& threads = w.parts[static_cast<std::size_t>(c)];
    for (std::size_t t = 0; t < threads.size(); ++t) {
      for (std::uint32_t bi : threads[t]) {
        const SampledBlock& b = w.blocks[bi];
        if (rows_forward) {
          for (std::uint32_t i = b.first_row; i < b.last_row; ++i)
            visit(static_cast<int>(t), w.rows[i]);
        } else {
          for (std::uint32_t i = b.last_row; i-- > b.first_row;)
            visit(static_cast<int>(t), w.rows[i]);
        }
      }
    }
  };
  ReplayPrediction out = run_replay(
      a, w, cfg,
      [&](auto&& visit) {
        for (index_t c = 0; c < w.num_colors; ++c) for_color(c, true, visit);
      },
      [&](auto&& visit) {
        for (index_t c = w.num_colors; c-- > 0;) for_color(c, false, visit);
      });
  out.seconds = timer.seconds();
  return out;
}

ReplayPrediction replay_fbmpk_level_traffic(const CsrMatrix<double>& a,
                                            const LevelSchedule& fwd,
                                            const LevelSchedule& bwd,
                                            const ReplayConfig& cfg) {
  FBMPK_CHECK(cfg.k >= 1 && cfg.threads >= 1 && cfg.nvec >= 1);
  FBMPK_CHECK(cfg.col_index_bytes > 0.0 && cfg.matrix_value_bytes > 0);
  FBMPK_CHECK_MSG(fwd.rows.size() == static_cast<std::size_t>(a.rows()) &&
                      bwd.rows.size() == static_cast<std::size_t>(a.rows()),
                  "level schedule does not cover the matrix");
  Timer timer;
  if (a.rows() == 0) return {};

  // Natural order, no permutation: the level scheduler's defining
  // property. Sampling (every S-th synthetic block) is the same as the
  // ABMC replay's; rows absent from the sample are simply skipped in
  // the level walk below.
  const ReplayWorld w =
      build_world(a, nullptr, cfg.threads, cfg.max_sample_rows, nullptr);

  const auto rank_of = [&](index_t p) -> index_t {
    const auto it = std::lower_bound(
        w.rows.begin(), w.rows.end(), p,
        [](const RowRef& r, index_t v) { return r.p < v; });
    if (it == w.rows.end() || it->p != p) return -1;
    return static_cast<index_t>(it - w.rows.begin());
  };
  // Rows of one level are independent; deal the sampled ones
  // round-robin across the cores (the blocked schedule's LPT pass
  // barely moves the traffic the oracle ranks, as with ABMC blocks).
  const auto for_levels = [&](const LevelSchedule& ls, auto&& visit) {
    for (index_t l = 0; l < ls.num_levels; ++l) {
      index_t lane = 0;
      for (index_t r = ls.level_ptr[l]; r < ls.level_ptr[l + 1]; ++r) {
        const index_t rank = rank_of(ls.rows[r]);
        if (rank < 0) continue;
        visit(static_cast<int>(lane++ % cfg.threads),
              w.rows[static_cast<std::size_t>(rank)]);
      }
    }
  };
  ReplayPrediction out =
      run_replay(a, w, cfg,
                 [&](auto&& visit) { for_levels(fwd, visit); },
                 [&](auto&& visit) { for_levels(bwd, visit); });
  out.seconds = timer.seconds();
  return out;
}

double estimate_packed_index_bytes_per_nnz(const CsrMatrix<double>& a,
                                           const AbmcOrdering* ord,
                                           index_t max_sample_rows) {
  const index_t n = a.rows();
  if (n == 0) return static_cast<double>(sizeof(index_t));
  constexpr index_t kBandRows = 64;  // PackedTriangleIndex default
  constexpr index_t kNarrowSpan = 0xFFFF;
  // Per-band sidecar metadata: base + wide flag + pool offset + row
  // base (packed_tri.hpp Raw arrays), per triangle.
  constexpr double kBandMetaBytes = 2.0 * sizeof(index_t) + 1.0 + 8.0;

  const index_t num_bands = (n + kBandRows - 1) / kBandRows;
  index_t stride = 1;
  if (max_sample_rows > 0 && n > max_sample_rows)
    stride = (n + max_sample_rows - 1) / max_sample_rows;

  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  std::vector<index_t> inv;
  if (ord != nullptr) inv = ord->perm.inverse();

  double bytes = 0.0;
  std::uint64_t nnz = 0;
  for (index_t band = 0; band < num_bands; band += stride) {
    const index_t p0 = band * kBandRows;
    const index_t p1 = std::min<index_t>(p0 + kBandRows, n);
    index_t lo_min = n, lo_max = -1, up_min = n, up_max = -1;
    std::uint64_t lo_nnz = 0, up_nnz = 0;
    for (index_t p = p0; p < p1; ++p) {
      const index_t r = ord != nullptr ? ord->perm.old_of(p) : p;
      for (index_t e = rp[r]; e < rp[r + 1]; ++e) {
        const index_t pc = ord != nullptr ? inv[ci[e]] : ci[e];
        if (pc < p) {
          lo_min = std::min(lo_min, pc);
          lo_max = std::max(lo_max, pc);
          ++lo_nnz;
        } else if (pc > p) {
          up_min = std::min(up_min, pc);
          up_max = std::max(up_max, pc);
          ++up_nnz;
        }
      }
    }
    const auto band_bytes = [&](std::uint64_t bnnz, index_t mn, index_t mx) {
      if (bnnz == 0) return kBandMetaBytes;
      const double width =
          (mx - mn) <= kNarrowSpan ? 2.0 : static_cast<double>(sizeof(index_t));
      return static_cast<double>(bnnz) * width + kBandMetaBytes;
    };
    bytes += band_bytes(lo_nnz, lo_min, lo_max);
    bytes += band_bytes(up_nnz, up_min, up_max);
    nnz += lo_nnz + up_nnz;
  }
  if (nnz == 0) return static_cast<double>(sizeof(index_t));
  return bytes / static_cast<double>(nnz);
}

}  // namespace fbmpk::perf
