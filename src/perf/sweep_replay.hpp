// Sampled multi-core replay of the FBMPK access stream — the autotune
// oracle's traffic predictor (docs/AUTOTUNING.md).
//
// Replays the exact per-row access pattern of fbmpk_sweep_btb
// (kernels/fbmpk.hpp) over *virtual* address streams through a
// SharedCacheSim: per-thread private L1/L2 replayed partition-by-
// partition over the ABMC (thread, color) structure, one shared
// inclusive LLC. Because the streams are synthesized, the predictor
// can price configurations that were never built: a different block
// count (re-run abmc_order, replay), a compressed column sidecar
// (fractional col_index_bytes), reduced value precision
// (matrix_value_bytes), or a batched sweep (nvec lanes per vector
// element) — without materializing a permuted matrix, a split, or a
// plan.
//
// Sampling: replaying every row costs about as much as running the
// kernel once. Instead a bounded row sample is replayed — every S-th
// ABMC block, S chosen so ~max_sample_rows rows survive — against a
// cache hierarchy scaled to the *sampled* footprint, preserving the
// paper's matrix≈20×LLC regime (the same trick bench_fig09_memory
// uses). The result is scaled back up by the sampled nnz fraction, so
// a prediction costs milliseconds on cage14-class matrices.
#pragma once

#include <cstdint>

#include "perf/cache_sim.hpp"
#include "reorder/abmc.hpp"
#include "reorder/level_schedule.hpp"
#include "sparse/csr.hpp"

namespace fbmpk {
struct SweepSchedule;  // kernels/sweep_schedule.hpp
}

namespace fbmpk::perf {

/// One replay's knobs — the candidate configuration being priced.
struct ReplayConfig {
  int k = 4;          ///< power count of the modeled A^k x
  int threads = 1;    ///< cores modeled (private L1/L2 per core)
  /// Effective stored column-index width; fractional for a band-
  /// compressed sidecar (PackedTriangleIndex::bytes_per_nnz, or the
  /// estimate_packed_index_bytes_per_nnz sample below).
  double col_index_bytes = static_cast<double>(sizeof(index_t));
  /// Stored triangle/diagonal value width (precision_value_bytes).
  std::size_t matrix_value_bytes = sizeof(double);
  /// Batched right-hand sides: every vector element widens to nvec
  /// fp64 lanes while the matrix streams stay single-read.
  int nvec = 1;
  /// Row-sample budget; every S-th ABMC block is replayed with S
  /// chosen to stay near this bound. 0 replays everything.
  index_t max_sample_rows = 4096;
  /// Cache-hierarchy scale; 0 picks it from the sampled footprint so
  /// the sample sits in the same footprint-to-LLC regime as the full
  /// problem (clamped to [0.002, 1]).
  double cache_scale = 0.0;
};

/// Predicted DRAM traffic, scaled back to the full matrix.
struct ReplayPrediction {
  std::uint64_t dram_read_bytes = 0;
  std::uint64_t dram_write_bytes = 0;
  double sample_fraction = 1.0;  ///< off-diagonal nnz fraction replayed
  index_t replayed_rows = 0;
  std::uint64_t replayed_nnz = 0;  ///< off-diagonal entries replayed
  double cache_scale = 1.0;        ///< hierarchy scale actually used
  double seconds = 0.0;            ///< wall time of the replay itself

  std::uint64_t dram_total_bytes() const {
    return dram_read_bytes + dram_write_bytes;
  }
};

/// Replay A^k x through the simulated hierarchy and predict its DRAM
/// traffic. `ord` supplies the permutation and the (color, block)
/// structure; nullptr models the natural order as one color of
/// contiguous blocks (a serial plan). Blocks of one color are
/// distributed round-robin across the simulated cores unless `sched`
/// (a built SweepSchedule matching `ord` and cfg.threads) supplies the
/// exact nnz-balanced partition.
ReplayPrediction replay_fbmpk_traffic(const CsrMatrix<double>& a,
                                      const AbmcOrdering* ord,
                                      const ReplayConfig& cfg,
                                      const SweepSchedule* sched = nullptr);

/// Level-scheduled replay (Scheduler::kLevels): the same stage walk,
/// but rows are visited in dependency-level order over the NATURAL
/// matrix order — `fwd` levels for the forward-shaped stages (head,
/// F, tail), `bwd` levels for the backward stages — with each level's
/// sampled rows dealt round-robin across the simulated cores. Prices
/// the level scheduler's access pattern (no permutation, level-order
/// traversal) against ABMC's without building either plan; the
/// scheduler race (core/autotune.hpp, autotune_scheduler) ranks the
/// two predictions before timing.
ReplayPrediction replay_fbmpk_level_traffic(const CsrMatrix<double>& a,
                                            const LevelSchedule& fwd,
                                            const LevelSchedule& bwd,
                                            const ReplayConfig& cfg);

/// Cheap sampled estimate of PackedTriangleIndex::bytes_per_nnz for
/// the triangles of `a` under `ord`'s permutation, without building
/// the split or the sidecar: walks every sampled 64-row band, checks
/// whether its lower/upper column spans fit the u16 offset window, and
/// weights narrow (2 B) vs wide (sizeof(index_t)) bands by nnz, plus
/// the per-band metadata overhead. Used by the oracle to price
/// index_compress candidates.
double estimate_packed_index_bytes_per_nnz(const CsrMatrix<double>& a,
                                           const AbmcOrdering* ord,
                                           index_t max_sample_rows = 1 << 14);

}  // namespace fbmpk::perf
