// Multi-level cache-hierarchy simulator — the stand-in for the paper's
// LIKWID DRAM-traffic measurements (Fig 9; see DESIGN.md §4).
//
// Model: inclusive-fill, set-associative LRU levels with 64-byte lines,
// write-allocate + write-back. A kernel templated on a Tracer (see
// kernels/tracer.hpp) replays its exact access stream through the
// hierarchy; DRAM read bytes are counted at last-level misses, DRAM
// write bytes when dirty lines are evicted from the last level (plus the
// dirty lines left at flush()).
//
// Two simulators live here:
//
//   * CacheHierarchy — one access stream through L1..LLC, used by
//     bench_fig09_memory to replay a serial kernel exactly.
//   * SharedCacheSim — N cores with private L1/L2 over one shared
//     *inclusive* LLC, used by the autotune oracle (perf/sweep_replay)
//     to replay each (thread, color) partition of a SweepSchedule
//     through its own core. Inclusion is enforced by back-invalidation:
//     when the LLC evicts a line, every private copy is dropped, and a
//     dirty copy anywhere makes the eviction a DRAM write. It is a
//     traffic model, not a coherence model — the FBMPK partitions write
//     disjoint rows, so MESI state would never be exercised.
#pragma once

#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace fbmpk::perf {

/// One cache level's geometry.
struct CacheConfig {
  std::size_t size_bytes = 0;
  std::size_t associativity = 8;
  std::size_t line_bytes = 64;
};

/// Counters accumulated per level.
struct LevelStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

namespace simdetail {

/// One way of one set. Shared by both simulators.
struct Way {
  std::uint64_t tag = 0;
  std::uint64_t lru = 0;  // larger = more recently used
  bool valid = false;
  bool dirty = false;
};

/// One set-associative level's storage.
struct Level {
  std::size_t sets = 0;
  std::size_t ways = 0;
  std::size_t line_bytes = 64;
  std::vector<Way> store;  // sets * ways

  Way* set_begin(std::uint64_t set) { return store.data() + set * ways; }
};

/// Build a Level from a config; validates geometry (pow2 sets/line).
Level make_level(const CacheConfig& cfg, std::size_t line_bytes);

}  // namespace simdetail

class CacheHierarchy {
 public:
  /// Build from level configs ordered L1 -> LLC. At least one level.
  explicit CacheHierarchy(const std::vector<CacheConfig>& levels);

  /// Simulate one memory access at `addr` (any byte of the datum).
  void access(std::uintptr_t addr, bool is_write);

  /// Write back all dirty lines (end-of-run accounting).
  void flush();

  /// Reset counters and contents.
  void clear();

  std::uint64_t dram_read_bytes() const { return dram_read_bytes_; }
  std::uint64_t dram_write_bytes() const { return dram_write_bytes_; }
  std::uint64_t dram_total_bytes() const {
    return dram_read_bytes_ + dram_write_bytes_;
  }
  const LevelStats& level_stats(std::size_t level) const {
    return stats_[level];
  }
  std::size_t num_levels() const { return levels_.size(); }

 private:
  // Returns the way index on hit, or SIZE_MAX on miss.
  std::size_t lookup(simdetail::Level& lv, std::uint64_t line, bool is_write);
  // Install a line into a level, evicting LRU; cascades dirty evictions.
  void fill(std::size_t level_idx, std::uint64_t line, bool dirty);

  std::vector<simdetail::Level> levels_;
  std::vector<LevelStats> stats_;
  std::uint64_t dram_read_bytes_ = 0;
  std::uint64_t dram_write_bytes_ = 0;
  std::uint64_t tick_ = 0;
};

/// N cores with private levels (L1 -> L2 -> ...) over one shared
/// inclusive LLC. Accesses are tagged with the issuing core; DRAM
/// accounting matches CacheHierarchy (reads at LLC misses, writes at
/// dirty LLC evictions / flush). The replay interleaves cores' streams
/// stage-by-stage rather than cycle-accurately — traffic volume, the
/// quantity the oracle ranks by, is insensitive to that ordering.
class SharedCacheSim {
 public:
  /// `private_levels` ordered L1 first; every core gets its own copy.
  SharedCacheSim(int cores, const std::vector<CacheConfig>& private_levels,
                 const CacheConfig& llc);

  /// Simulate one access at `addr` issued by `core`. With
  /// `fetch_on_miss` false a write that misses every level installs the
  /// line without reading it from DRAM (write-validate), modelling the
  /// streaming stores of the sweep kernels whose lines are fully
  /// overwritten; the eventual dirty eviction still pays the DRAM
  /// write. Ignored for reads.
  void access(int core, std::uintptr_t addr, bool is_write,
              bool fetch_on_miss = true);

  /// Touch every line covered by [addr, addr + bytes) once — the cheap
  /// way to replay a sequential stream without per-element calls.
  void touch(int core, std::uintptr_t addr, std::size_t bytes,
             bool is_write, bool fetch_on_miss = true);

  /// Write back all dirty lines (each distinct line once).
  void flush();

  /// Reset counters and contents.
  void clear();

  std::uint64_t dram_read_bytes() const { return dram_read_bytes_; }
  std::uint64_t dram_write_bytes() const { return dram_write_bytes_; }
  std::uint64_t dram_total_bytes() const {
    return dram_read_bytes_ + dram_write_bytes_;
  }
  int cores() const { return static_cast<int>(cores_.size()); }
  std::size_t num_private_levels() const {
    return cores_.empty() ? 0 : cores_.front().size();
  }
  std::size_t line_bytes() const { return llc_.line_bytes; }
  const LevelStats& private_stats(int core, std::size_t level) const {
    return private_stats_[static_cast<std::size_t>(core)][level];
  }
  const LevelStats& llc_stats() const { return llc_stats_; }

 private:
  std::size_t lookup(simdetail::Level& lv, std::uint64_t line, bool is_write);
  /// Install into a private level of `core`; dirty evictions cascade
  /// down the private levels and finally into the LLC.
  void fill_private(int core, std::size_t level_idx, std::uint64_t line,
                    bool dirty);
  /// Install into the LLC; the victim is back-invalidated from every
  /// core, and a dirty copy anywhere turns the eviction into a DRAM
  /// write.
  void fill_llc(std::uint64_t line, bool dirty);
  /// Mark the LLC copy of `line` dirty, installing it if absent (a
  /// private write-back under inclusion).
  void writeback_to_llc(std::uint64_t line);

  std::vector<std::vector<simdetail::Level>> cores_;
  simdetail::Level llc_;
  std::vector<std::vector<LevelStats>> private_stats_;
  LevelStats llc_stats_;
  std::uint64_t dram_read_bytes_ = 0;
  std::uint64_t dram_write_bytes_ = 0;
  std::uint64_t tick_ = 0;
};

/// Tracer adapter binding a SharedCacheSim to one core, for replaying
/// a partition's stream through the kernel templates.
struct CoreTracer {
  SharedCacheSim* sim = nullptr;
  int core = 0;

  template <class T>
  void read(const T* p) {
    sim->access(core, reinterpret_cast<std::uintptr_t>(p), false);
  }
  template <class T>
  void write(T* p) {
    sim->access(core, reinterpret_cast<std::uintptr_t>(p), true);
  }
};

/// Tracer adapter plugging the hierarchy into the kernel templates.
struct CacheTracer {
  CacheHierarchy* sim = nullptr;

  template <class T>
  void read(const T* p) {
    sim->access(reinterpret_cast<std::uintptr_t>(p), false);
  }
  template <class T>
  void write(T* p) {
    sim->access(reinterpret_cast<std::uintptr_t>(p), true);
  }
};

/// A hierarchy shaped like the paper's Xeon (Table I), scaled by
/// `scale` so that proportionally smaller matrices sit in the same
/// matrix-to-LLC ratio regime as the paper's runs.
CacheHierarchy make_xeon_like_hierarchy(double scale = 1.0);

/// Per-level sizes of the Xeon-like shape at `scale`, rounded the same
/// way make_xeon_like_hierarchy rounds (power-of-two, 4 KB floor).
/// Index 0/1 are the private L1/L2, index 2 the LLC.
std::size_t xeon_like_level_bytes(std::size_t level, double scale);

/// The multi-core analogue: `cores` private L1/L2 pairs over one
/// shared LLC, all scaled by `scale`. The LLC is shared, so its size
/// is NOT multiplied by the core count (Table I: 35.75 MB per socket).
SharedCacheSim make_shared_xeon_like(int cores, double scale = 1.0);

}  // namespace fbmpk::perf
