// Multi-level cache-hierarchy simulator — the stand-in for the paper's
// LIKWID DRAM-traffic measurements (Fig 9; see DESIGN.md §4).
//
// Model: inclusive-fill, set-associative LRU levels with 64-byte lines,
// write-allocate + write-back. A kernel templated on a Tracer (see
// kernels/tracer.hpp) replays its exact access stream through the
// hierarchy; DRAM read bytes are counted at last-level misses, DRAM
// write bytes when dirty lines are evicted from the last level (plus the
// dirty lines left at flush()).
//
// The simulator is single-threaded by design — Fig 9's measurements are
// of traffic volume, which the serial access stream already determines.
#pragma once

#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace fbmpk::perf {

/// One cache level's geometry.
struct CacheConfig {
  std::size_t size_bytes = 0;
  std::size_t associativity = 8;
  std::size_t line_bytes = 64;
};

/// Counters accumulated per level.
struct LevelStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

class CacheHierarchy {
 public:
  /// Build from level configs ordered L1 -> LLC. At least one level.
  explicit CacheHierarchy(const std::vector<CacheConfig>& levels);

  /// Simulate one memory access at `addr` (any byte of the datum).
  void access(std::uintptr_t addr, bool is_write);

  /// Write back all dirty lines (end-of-run accounting).
  void flush();

  /// Reset counters and contents.
  void clear();

  std::uint64_t dram_read_bytes() const { return dram_read_bytes_; }
  std::uint64_t dram_write_bytes() const { return dram_write_bytes_; }
  std::uint64_t dram_total_bytes() const {
    return dram_read_bytes_ + dram_write_bytes_;
  }
  const LevelStats& level_stats(std::size_t level) const {
    return stats_[level];
  }
  std::size_t num_levels() const { return levels_.size(); }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // larger = more recently used
    bool valid = false;
    bool dirty = false;
  };

  struct Level {
    std::size_t sets = 0;
    std::size_t ways = 0;
    std::size_t line_bytes = 64;
    std::vector<Way> store;  // sets * ways

    Way* set_begin(std::uint64_t set) { return store.data() + set * ways; }
  };

  // Returns the way index on hit, or SIZE_MAX on miss.
  std::size_t lookup(Level& lv, std::uint64_t line, bool is_write);
  // Install a line into a level, evicting LRU; cascades dirty evictions.
  void fill(std::size_t level_idx, std::uint64_t line, bool dirty);

  std::vector<Level> levels_;
  std::vector<LevelStats> stats_;
  std::uint64_t dram_read_bytes_ = 0;
  std::uint64_t dram_write_bytes_ = 0;
  std::uint64_t tick_ = 0;
};

/// Tracer adapter plugging the hierarchy into the kernel templates.
struct CacheTracer {
  CacheHierarchy* sim = nullptr;

  template <class T>
  void read(const T* p) {
    sim->access(reinterpret_cast<std::uintptr_t>(p), false);
  }
  template <class T>
  void write(T* p) {
    sim->access(reinterpret_cast<std::uintptr_t>(p), true);
  }
};

/// A hierarchy shaped like the paper's Xeon (Table I), scaled by
/// `scale` so that proportionally smaller matrices sit in the same
/// matrix-to-LLC ratio regime as the paper's runs.
CacheHierarchy make_xeon_like_hierarchy(double scale = 1.0);

}  // namespace fbmpk::perf
