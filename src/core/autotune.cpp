#include "core/autotune.hpp"

#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/timer.hpp"
#include "telemetry/telemetry.hpp"

namespace fbmpk {

std::span<const index_t> default_block_candidates() {
  static const index_t kCandidates[] = {128, 256, 512, 1024, 2048};
  return kCandidates;
}

AutotuneResult autotune_block_count(const CsrMatrix<double>& a, int k,
                                    std::span<const index_t> candidates,
                                    int reps, PlanOptions base) {
  FBMPK_CHECK(!candidates.empty());
  FBMPK_CHECK(k >= 1 && reps >= 1);

  const index_t n = a.rows();
  Rng rng(0x47u);
  AlignedVector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);
  AlignedVector<double> y(static_cast<std::size_t>(n));

  AutotuneResult result;
  FBMPK_TSPAN(kAutotune, "autotune.block_count");
  for (index_t blocks : candidates) {
    FBMPK_CHECK_MSG(blocks >= 1, "block candidate must be positive");
    FBMPK_TSPAN_ARGS(kAutotune, "autotune.block_probe",
                     {.value = static_cast<std::int64_t>(blocks)});
    PlanOptions opts = base;
    opts.abmc.num_blocks = blocks;

    Timer build_timer;
    MpkPlan plan = MpkPlan::build(a, opts);
    AutotuneSample sample;
    sample.num_blocks = blocks;
    sample.num_colors = plan.stats().num_colors;
    sample.build_seconds = build_timer.seconds();

    MpkPlan::Workspace ws;
    plan.power(x, k, y, ws);  // warmup (first touch of workspaces)
    RunningStats stats;
    for (int r = 0; r < reps; ++r) {
      Timer t;
      plan.power(x, k, y, ws);
      stats.add(t.seconds());
    }
    sample.seconds = stats.median();
    result.samples.push_back(sample);

    if (result.best_blocks == 0 || sample.seconds < result.best_seconds) {
      result.best_blocks = blocks;
      result.best_seconds = sample.seconds;
    }
  }
  return result;
}

SweepSyncResult autotune_sweep_sync(const CsrMatrix<double>& a, int k,
                                    int reps, PlanOptions base) {
  FBMPK_CHECK(k >= 1 && reps >= 1);
  SweepSyncResult result;
  if (!base.parallel || base.scheduler != Scheduler::kAbmc ||
      max_threads() <= 1)
    return result;  // point-to-point cannot win; keep the barrier

  const index_t n = a.rows();
  Rng rng(0x47u);
  AlignedVector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);
  AlignedVector<double> y(static_cast<std::size_t>(n));

  FBMPK_TSPAN(kAutotune, "autotune.sweep_sync");
  auto measure = [&](SweepSync sync) {
    FBMPK_TSPAN_ARGS(kAutotune, "autotune.sync_probe",
                     {.value = sync == SweepSync::kPointToPoint ? 1 : 0});
    PlanOptions opts = base;
    opts.sweep.sync = sync;
    MpkPlan plan = MpkPlan::build(a, opts);
    MpkPlan::Workspace ws;
    plan.power(x, k, y, ws);  // warmup (first touch of workspaces)
    RunningStats stats;
    for (int r = 0; r < reps; ++r) {
      Timer t;
      plan.power(x, k, y, ws);
      stats.add(t.seconds());
    }
    return stats.median();
  };

  result.barrier_seconds = measure(SweepSync::kBarrier);
  result.point_to_point_seconds = measure(SweepSync::kPointToPoint);
  result.best = result.point_to_point_seconds < result.barrier_seconds
                    ? SweepSync::kPointToPoint
                    : SweepSync::kBarrier;
  return result;
}

KernelConfigResult autotune_kernel_config(const CsrMatrix<double>& a, int k,
                                          int reps, PlanOptions base,
                                          bool allow_fast) {
  FBMPK_CHECK(k >= 1 && reps >= 1);
  KernelConfigResult result;

  // The plan builder only routes dispatched kernels through the BtB
  // variant and the ABMC/serial schedulers; elsewhere the scalar/plain
  // baseline is the only legal configuration.
  const bool dispatch_ok =
      base.variant == FbVariant::kBtb &&
      !(base.parallel && base.scheduler == Scheduler::kLevels);

  struct Candidate {
    KernelBackend backend;
    bool compress;
    ValuePrecision precision;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({KernelBackend::kScalar, false, ValuePrecision::kFp64});
  if (dispatch_ok) {
    candidates.push_back({KernelBackend::kScalar, true, ValuePrecision::kFp64});

    // Reduced value precision needs every value inside float range; the
    // split pair is additionally *exact* when each value survives the
    // hi/lo round-trip, which makes it eligible without allow_fast.
    const auto vals = std::span<const double>(a.values());
    const bool fits = values_fit_fp32(vals);
    bool lossless = fits;
    if (fits) {
      for (double v : vals) {
        float hi = 0.0f, lo = 0.0f;
        split_value(v, hi, lo);
        if (join_split(hi, lo) != v) {
          lossless = false;
          break;
        }
      }
    }
    if (lossless) {
      candidates.push_back(
          {KernelBackend::kScalar, false, ValuePrecision::kSplit});
      candidates.push_back(
          {KernelBackend::kScalar, true, ValuePrecision::kSplit});
    }
    if (allow_fast) {
      const KernelBackend fast = resolve_backend(KernelBackend::kAuto);
      if (fast != KernelBackend::kScalar) {
        candidates.push_back({fast, false, ValuePrecision::kFp64});
        candidates.push_back({fast, true, ValuePrecision::kFp64});
      }
      if (fits) {
        candidates.push_back({fast, false, ValuePrecision::kFp32});
        candidates.push_back({fast, true, ValuePrecision::kFp32});
        if (!lossless)  // approximate split: fast-mode only
          candidates.push_back({fast, true, ValuePrecision::kSplit});
      }
    }
  }

  const index_t n = a.rows();
  Rng rng(0x47u);
  AlignedVector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);
  AlignedVector<double> y(static_cast<std::size_t>(n));

  FBMPK_TSPAN(kAutotune, "autotune.kernel_config");
  for (const Candidate& c : candidates) {
    FBMPK_TSPAN_ARGS(
        kAutotune, "autotune.kernel_probe",
        {.value = static_cast<std::int64_t>(c.backend) * 100 +
                  (c.compress ? 10 : 0) + static_cast<int>(c.precision)});
    PlanOptions opts = base;
    opts.kernel_backend = c.backend;
    opts.index_compress = c.compress;
    opts.value_precision = c.precision;
    MpkPlan plan = MpkPlan::build(a, opts);

    MpkPlan::Workspace ws;
    plan.power(x, k, y, ws);  // warmup (first touch of workspaces)
    RunningStats stats;
    for (int r = 0; r < reps; ++r) {
      Timer t;
      plan.power(x, k, y, ws);
      stats.add(t.seconds());
    }

    KernelConfigSample sample;
    sample.backend = c.backend;
    sample.index_compress = c.compress;
    sample.value_precision = c.precision;
    sample.seconds = stats.median();
    sample.packed_index_bytes = plan.stats().packed_index_bytes;
    sample.packed_value_bytes = plan.stats().packed_value_bytes;
    result.samples.push_back(sample);

    if (result.samples.size() == 1 || sample.seconds < result.best_seconds) {
      result.best_backend = c.backend;
      result.best_index_compress = c.compress;
      result.best_value_precision = c.precision;
      result.best_seconds = sample.seconds;
    }
  }
  return result;
}

MpkPlan build_autotuned_plan(const CsrMatrix<double>& a, int k,
                             PlanOptions base, bool allow_fast_kernels) {
  const AutotuneResult tuned = autotune_block_count(
      a, k, default_block_candidates(), /*reps=*/3, base);
  base.abmc.num_blocks = tuned.best_blocks;
  if (base.parallel && base.scheduler == Scheduler::kAbmc)
    base.sweep.sync = autotune_sweep_sync(a, k, /*reps=*/3, base).best;
  const KernelConfigResult kcfg =
      autotune_kernel_config(a, k, /*reps=*/3, base, allow_fast_kernels);
  base.kernel_backend = kcfg.best_backend;
  base.index_compress = kcfg.best_index_compress;
  base.value_precision = kcfg.best_value_precision;
  MpkPlan plan = MpkPlan::build(a, base);

  TunedConfig chosen;
  chosen.valid = true;
  chosen.backend = kcfg.best_backend;
  chosen.index_compress = kcfg.best_index_compress;
  chosen.value_precision = kcfg.best_value_precision;
  chosen.tuned_threads = static_cast<index_t>(max_threads());
  chosen.best_seconds = kcfg.best_seconds;
  plan.set_tuned_config(chosen);
  return plan;
}

}  // namespace fbmpk
