#include "core/autotune.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "perf/sweep_replay.hpp"
#include "reorder/graph.hpp"
#include "support/fault_inject.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/timer.hpp"
#include "telemetry/telemetry.hpp"

namespace fbmpk {

namespace {

/// Bytes per stored triangle/diagonal value under a precision mode
/// (the split pair is two floats — same stream bytes as fp64).
std::size_t stored_value_bytes(ValuePrecision p) {
  return p == ValuePrecision::kFp32 ? sizeof(float) : sizeof(double);
}

struct ProbeVectors {
  AlignedVector<double> x, y;
  explicit ProbeVectors(index_t n)
      : x(static_cast<std::size_t>(n)), y(static_cast<std::size_t>(n)) {
    Rng rng(0x47u);
    for (auto& v : x) v = rng.next_double(-1.0, 1.0);
  }
};

double measure_power(MpkPlan& plan, ProbeVectors& v, int k, int reps) {
  MpkPlan::Workspace ws;
  plan.power(v.x, k, v.y, ws);  // warmup (first touch of workspaces)
  RunningStats stats;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    plan.power(v.x, k, v.y, ws);
    stats.add(t.seconds());
  }
  return stats.median();
}

/// Consulted before every candidate build so tests can force a typed
/// failure deterministically.
void maybe_inject_build_fault() {
  if (fault::should_fire(fault::Point::kAutotuneBuild))
    throw Error(ErrorCode::kResourceLimit, "injected autotune build fault");
}

/// Structural scoring target for the traffic oracle. Scoring a
/// candidate costs one ABMC ordering plus one sampled replay; on a
/// large matrix the O(n + nnz) ordering would dominate and the oracle
/// could never beat simply timing the candidate. Since replay accuracy
/// is flat under row sampling (docs/AUTOTUNING.md), big matrices are
/// scored on the principal submatrix of a contiguous window of rows
/// from the middle of the matrix — a slab of the underlying mesh —
/// with every candidate block count scaled by the same row ratio, so
/// the per-block row count (the locality knob actually being ranked)
/// is preserved. Predictions are rescaled to full-matrix bytes by the
/// nnz ratio, which also absorbs the slab's truncated-stencil border.
struct ScoringView {
  CsrMatrix<double> sub;     ///< populated iff `sampled`
  bool sampled = false;
  double traffic_scale = 1.0;  ///< full-matrix bytes per scored byte
  double block_scale = 1.0;    ///< candidate num_blocks multiplier

  const CsrMatrix<double>& matrix(const CsrMatrix<double>& full) const {
    return sampled ? sub : full;
  }
  index_t scaled_blocks(index_t blocks) const {
    return std::max<index_t>(
        1, static_cast<index_t>(
               std::lround(static_cast<double>(blocks) * block_scale)));
  }
};

ScoringView make_scoring_view(const CsrMatrix<double>& a, index_t window) {
  ScoringView v;
  // Below 2x the window the extraction would not pay for itself.
  if (window <= 0 || a.rows() <= 2 * window) return v;
  const index_t lo = (a.rows() - window) / 2;
  const index_t hi = lo + window;
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto vals = a.values();
  AlignedVector<index_t> sub_rp(static_cast<std::size_t>(window) + 1, 0);
  AlignedVector<index_t> sub_ci;
  AlignedVector<double> sub_v;
  for (index_t i = lo; i < hi; ++i) {
    for (index_t k = rp[i]; k < rp[i + 1]; ++k) {
      const index_t j = ci[k];
      if (j < lo || j >= hi) continue;  // truncate edges leaving the slab
      sub_ci.push_back(j - lo);
      sub_v.push_back(vals[k]);
    }
    sub_rp[static_cast<std::size_t>(i - lo) + 1] =
        static_cast<index_t>(sub_ci.size());
  }
  if (sub_ci.empty()) return v;  // degenerate window: score the full matrix
  v.traffic_scale = static_cast<double>(a.nnz()) /
                    static_cast<double>(sub_ci.size());
  v.block_scale =
      static_cast<double>(window) / static_cast<double>(a.rows());
  v.sub = CsrMatrix<double>(window, window, std::move(sub_rp),
                            std::move(sub_ci), std::move(sub_v));
  v.sampled = true;
  return v;
}

/// Stable predicted-traffic ranking: candidate indices sorted ascending
/// by predicted bytes, original order preserved on ties so earlier
/// (more conservative) candidates win within a traffic class.
std::vector<std::size_t> rank_by_prediction(
    const std::vector<double>& predicted) {
  std::vector<std::size_t> order(predicted.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t l, std::size_t r) {
                     return predicted[l] < predicted[r];
                   });
  return order;
}

}  // namespace

std::span<const index_t> default_block_candidates() {
  static const index_t kCandidates[] = {128, 256, 512, 1024, 2048};
  return kCandidates;
}

AutotuneResult autotune_block_count(const CsrMatrix<double>& a, int k,
                                    std::span<const index_t> candidates,
                                    int reps, PlanOptions base,
                                    const OracleOptions& oracle) {
  FBMPK_CHECK(!candidates.empty());
  FBMPK_CHECK(k >= 1 && reps >= 1);
  for (index_t blocks : candidates)
    FBMPK_CHECK_MSG(blocks >= 1, "block candidate must be positive");

  AutotuneResult result;
  result.samples.resize(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i)
    result.samples[i].num_blocks = candidates[i];

  FBMPK_TSPAN(kAutotune, "autotune.block_count");

  // Oracle pass: replay every candidate's ABMC structure through the
  // sampled cache simulator, keep the top_k by predicted traffic. The
  // model needs the reorder to exist; without it the block count does
  // not change the access pattern and pruning would be arbitrary.
  std::vector<std::size_t> to_time(candidates.size());
  std::iota(to_time.begin(), to_time.end(), std::size_t{0});
  const bool use_oracle =
      oracle.enabled && oracle.top_k >= 1 && base.reorder &&
      candidates.size() > static_cast<std::size_t>(oracle.top_k);
  if (use_oracle) {
    FBMPK_TSPAN(kAutotune, "autotune.oracle_score");
    result.oracle_used = true;
    const ScoringView view = make_scoring_view(a, oracle.max_sample_rows);
    const CsrMatrix<double>& s = view.matrix(a);
    // One symmetrized adjacency graph serves every candidate — only
    // the blocking/coloring depend on the block count.
    const AdjacencyGraph g = adjacency_from_matrix(s);
    perf::ReplayConfig rc;
    rc.k = k;
    rc.threads = base.parallel ? max_threads() : 1;
    // Replay accuracy is flat down to ~1k-row samples, so when the
    // structure is already a slab, replaying half of it buys the same
    // ranking at half the simulation cost.
    rc.max_sample_rows = view.sampled
                             ? std::max<index_t>(1024, oracle.max_sample_rows / 2)
                             : oracle.max_sample_rows;
    rc.matrix_value_bytes = stored_value_bytes(base.value_precision);
    std::vector<double> predicted(candidates.size(), 0.0);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      AbmcOptions ao = base.abmc;
      ao.num_blocks = view.scaled_blocks(candidates[i]);
      const AbmcOrdering ord = abmc_order(g, ao);
      rc.col_index_bytes =
          base.index_compress
              ? perf::estimate_packed_index_bytes_per_nnz(s, &ord)
              : static_cast<double>(sizeof(index_t));
      predicted[i] =
          static_cast<double>(
              perf::replay_fbmpk_traffic(s, &ord, rc).dram_total_bytes()) *
          view.traffic_scale;
      result.samples[i].predicted_bytes = predicted[i];
      // Approximate under sampled scoring; the timing pass overwrites
      // it with the real plan's color count for the survivors.
      result.samples[i].num_colors = ord.num_colors;
    }
    to_time = rank_by_prediction(predicted);
    for (std::size_t j = static_cast<std::size_t>(oracle.top_k);
         j < to_time.size(); ++j) {
      result.samples[to_time[j]].pruned = true;
      ++result.candidates_pruned;
    }
    to_time.resize(static_cast<std::size_t>(oracle.top_k));
    FBMPK_TCOUNT("autotune.candidates_pruned", result.candidates_pruned);
  }

  ProbeVectors v(a.rows());
  ErrorCode last_error = ErrorCode::kInternal;
  for (std::size_t i : to_time) {
    AutotuneSample& sample = result.samples[i];
    FBMPK_TSPAN_ARGS(kAutotune, "autotune.block_probe",
                     {.value = static_cast<std::int64_t>(sample.num_blocks)});
    PlanOptions opts = base;
    opts.abmc.num_blocks = sample.num_blocks;
    try {
      maybe_inject_build_fault();
      Timer build_timer;
      MpkPlan plan = MpkPlan::build(a, opts);
      sample.num_colors = plan.stats().num_colors;
      sample.build_seconds = build_timer.seconds();
      sample.seconds = measure_power(plan, v, k, reps);
    } catch (const Error& e) {
      sample.failed = true;
      sample.error = e.code();
      last_error = e.code();
      continue;
    }
    ++result.candidates_timed;
    if (result.best_blocks == 0 || sample.seconds < result.best_seconds) {
      result.best_blocks = sample.num_blocks;
      result.best_seconds = sample.seconds;
      result.best_predicted_bytes = std::max(0.0, sample.predicted_bytes);
      result.oracle_rank_of_winner =
          use_oracle ? result.candidates_timed : 0;
    }
  }
  if (result.candidates_timed == 0)
    throw Error(last_error, "every autotune block-count candidate failed");
  return result;
}

SweepSyncResult autotune_sweep_sync(const CsrMatrix<double>& a, int k,
                                    int reps, PlanOptions base) {
  FBMPK_CHECK(k >= 1 && reps >= 1);
  SweepSyncResult result;
  if (!base.parallel || max_threads() <= 1)
    return result;  // point-to-point cannot win; keep the barrier

  ProbeVectors v(a.rows());
  FBMPK_TSPAN(kAutotune, "autotune.sweep_sync");
  auto measure = [&](SweepSync sync) {
    FBMPK_TSPAN_ARGS(kAutotune, "autotune.sync_probe",
                     {.value = sync == SweepSync::kPointToPoint ? 1 : 0});
    PlanOptions opts = base;
    opts.sweep.sync = sync;
    MpkPlan plan = MpkPlan::build(a, opts);
    return measure_power(plan, v, k, reps);
  };

  result.barrier_seconds = measure(SweepSync::kBarrier);
  result.point_to_point_seconds = measure(SweepSync::kPointToPoint);
  result.best = result.point_to_point_seconds < result.barrier_seconds
                    ? SweepSync::kPointToPoint
                    : SweepSync::kBarrier;
  return result;
}

SchedulerRaceResult autotune_scheduler(const CsrMatrix<double>& a, int k,
                                       int reps, PlanOptions base,
                                       const OracleOptions& oracle) {
  FBMPK_CHECK(k >= 1 && reps >= 1);
  SchedulerRaceResult result;
  if (!base.parallel || max_threads() <= 1) return result;  // kAbmc, forced
  if (!base.reorder) {
    // ABMC without its permutation is not a candidate; the level
    // scheduler is exactly the keep-the-order strategy.
    result.best = Scheduler::kLevels;
    FBMPK_TCOUNT("autotune.scheduler_pick", 1);
    return result;
  }

  FBMPK_TSPAN(kAutotune, "autotune.scheduler");

  bool time_abmc = true, time_levels = true;
  if (oracle.enabled && oracle.top_k >= 1) {
    FBMPK_TSPAN(kAutotune, "autotune.oracle_score");
    result.oracle_used = true;
    const ScoringView view = make_scoring_view(a, oracle.max_sample_rows);
    const CsrMatrix<double>& s = view.matrix(a);
    perf::ReplayConfig rc;
    rc.k = k;
    rc.threads = max_threads();
    rc.max_sample_rows = view.sampled
                             ? std::max<index_t>(1024, oracle.max_sample_rows / 2)
                             : oracle.max_sample_rows;
    rc.matrix_value_bytes = stored_value_bytes(base.value_precision);

    AbmcOptions ao = base.abmc;
    ao.num_blocks = view.scaled_blocks(base.abmc.num_blocks);
    const AbmcOrdering ord = abmc_order(s, ao);
    rc.col_index_bytes =
        base.index_compress
            ? perf::estimate_packed_index_bytes_per_nnz(s, &ord)
            : static_cast<double>(sizeof(index_t));
    result.abmc_predicted_bytes =
        static_cast<double>(
            perf::replay_fbmpk_traffic(s, &ord, rc).dram_total_bytes()) *
        view.traffic_scale;

    // The level scheduler never permutes and the band-compressed
    // sidecar is sized on the natural order.
    rc.col_index_bytes =
        base.index_compress
            ? perf::estimate_packed_index_bytes_per_nnz(s, nullptr)
            : static_cast<double>(sizeof(index_t));
    const TriangularSplit<double> split = split_triangular(s);
    const LevelSchedulePair levels = LevelSchedulePair::of(split);
    result.levels_predicted_bytes =
        static_cast<double>(perf::replay_fbmpk_level_traffic(
                                s, levels.forward, levels.backward, rc)
                                .dram_total_bytes()) *
        view.traffic_scale;

    if (oracle.top_k < 2) {
      // Trust the model: time only its pick.
      const bool levels_win =
          result.levels_predicted_bytes < result.abmc_predicted_bytes;
      time_abmc = !levels_win;
      time_levels = levels_win;
    }
  }

  ProbeVectors v(a.rows());
  auto measure = [&](Scheduler sched) {
    FBMPK_TSPAN_ARGS(kAutotune, "autotune.scheduler_probe",
                     {.value = sched == Scheduler::kLevels ? 1 : 0});
    PlanOptions opts = base;
    opts.scheduler = sched;
    if (sched == Scheduler::kLevels) {
      // Levels is the keep-the-order strategy: race it the way a levels
      // plan ships — natural order, blocked stages, p2p engine — which
      // is also the configuration the oracle scored above. Leaving the
      // base reorder on would time the per-level barrier kernel on the
      // permuted matrix, a rung no production levels plan runs.
      opts.reorder = false;
      opts.sweep.sync = SweepSync::kPointToPoint;
    }
    MpkPlan plan = MpkPlan::build(a, opts);
    return measure_power(plan, v, k, reps);
  };
  if (time_abmc) result.abmc_seconds = measure(Scheduler::kAbmc);
  if (time_levels) result.levels_seconds = measure(Scheduler::kLevels);
  result.measured = time_abmc && time_levels;
  if (result.measured)
    result.best = result.levels_seconds < result.abmc_seconds
                      ? Scheduler::kLevels
                      : Scheduler::kAbmc;
  else
    result.best = time_levels ? Scheduler::kLevels : Scheduler::kAbmc;
  FBMPK_TCOUNT("autotune.scheduler_pick",
               result.best == Scheduler::kLevels ? 1 : 0);
  return result;
}

KernelConfigResult autotune_kernel_config(const CsrMatrix<double>& a, int k,
                                          int reps, PlanOptions base,
                                          bool allow_fast,
                                          const OracleOptions& oracle) {
  FBMPK_CHECK(k >= 1 && reps >= 1);
  KernelConfigResult result;

  // The plan builder only routes dispatched kernels through the BtB
  // variant (either scheduler); elsewhere the scalar/plain baseline is
  // the only legal configuration.
  const bool dispatch_ok = base.variant == FbVariant::kBtb;

  struct Candidate {
    KernelBackend backend;
    bool compress;
    ValuePrecision precision;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({KernelBackend::kScalar, false, ValuePrecision::kFp64});
  if (dispatch_ok) {
    candidates.push_back({KernelBackend::kScalar, true, ValuePrecision::kFp64});

    // Reduced value precision needs every value inside float range; the
    // split pair is additionally *exact* when each value survives the
    // hi/lo round-trip, which makes it eligible without allow_fast.
    const auto vals = std::span<const double>(a.values());
    const bool fits = values_fit_fp32(vals);
    bool lossless = fits;
    if (fits) {
      for (double v : vals) {
        float hi = 0.0f, lo = 0.0f;
        split_value(v, hi, lo);
        if (join_split(hi, lo) != v) {
          lossless = false;
          break;
        }
      }
    }
    if (lossless) {
      candidates.push_back(
          {KernelBackend::kScalar, false, ValuePrecision::kSplit});
      candidates.push_back(
          {KernelBackend::kScalar, true, ValuePrecision::kSplit});
    }
    if (allow_fast) {
      const KernelBackend fast = resolve_backend(KernelBackend::kAuto);
      if (fast != KernelBackend::kScalar) {
        candidates.push_back({fast, false, ValuePrecision::kFp64});
        candidates.push_back({fast, true, ValuePrecision::kFp64});
      }
      if (fits) {
        candidates.push_back({fast, false, ValuePrecision::kFp32});
        candidates.push_back({fast, true, ValuePrecision::kFp32});
        if (!lossless)  // approximate split: fast-mode only
          candidates.push_back({fast, true, ValuePrecision::kSplit});
      }
    }
  }
  result.samples.resize(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    result.samples[i].backend = candidates[i].backend;
    result.samples[i].index_compress = candidates[i].compress;
    result.samples[i].value_precision = candidates[i].precision;
  }

  FBMPK_TSPAN(kAutotune, "autotune.kernel_config");

  // Oracle pass. The backend never changes the traffic, so candidates
  // collapse into at most four (col_index_bytes, value_bytes) classes;
  // each class is replayed once and its prediction shared. Stable
  // ranking keeps the conservative (scalar, exact) candidate first
  // within a class.
  std::vector<std::size_t> to_time(candidates.size());
  std::iota(to_time.begin(), to_time.end(), std::size_t{0});
  const bool use_oracle =
      oracle.enabled && oracle.top_k >= 1 && base.reorder &&
      candidates.size() > static_cast<std::size_t>(oracle.top_k);
  if (use_oracle) {
    FBMPK_TSPAN(kAutotune, "autotune.oracle_score");
    result.oracle_used = true;
    const ScoringView view = make_scoring_view(a, oracle.max_sample_rows);
    const CsrMatrix<double>& s = view.matrix(a);
    AbmcOptions ao = base.abmc;
    ao.num_blocks = view.scaled_blocks(base.abmc.num_blocks);
    const AbmcOrdering ord = abmc_order(s, ao);
    const double packed_cib =
        std::any_of(candidates.begin(), candidates.end(),
                    [](const Candidate& c) { return c.compress; })
            ? perf::estimate_packed_index_bytes_per_nnz(s, &ord)
            : static_cast<double>(sizeof(index_t));
    perf::ReplayConfig rc;
    rc.k = k;
    rc.threads = base.parallel ? max_threads() : 1;
    rc.max_sample_rows = view.sampled
                             ? std::max<index_t>(1024, oracle.max_sample_rows / 2)
                             : oracle.max_sample_rows;

    std::vector<std::pair<double, std::size_t>> classes;  // (cib, vb) seen
    std::vector<double> class_bytes;
    std::vector<double> predicted(candidates.size(), 0.0);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const double cib = candidates[i].compress
                             ? packed_cib
                             : static_cast<double>(sizeof(index_t));
      const std::size_t vb = stored_value_bytes(candidates[i].precision);
      std::size_t ci = 0;
      for (; ci < classes.size(); ++ci)
        if (classes[ci] == std::pair<double, std::size_t>{cib, vb}) break;
      if (ci == classes.size()) {
        classes.emplace_back(cib, vb);
        rc.col_index_bytes = cib;
        rc.matrix_value_bytes = vb;
        class_bytes.push_back(
            static_cast<double>(
                perf::replay_fbmpk_traffic(s, &ord, rc).dram_total_bytes()) *
            view.traffic_scale);
      }
      predicted[i] = class_bytes[ci];
      result.samples[i].predicted_bytes = predicted[i];
    }
    to_time = rank_by_prediction(predicted);
    for (std::size_t j = static_cast<std::size_t>(oracle.top_k);
         j < to_time.size(); ++j) {
      result.samples[to_time[j]].pruned = true;
      ++result.candidates_pruned;
    }
    to_time.resize(static_cast<std::size_t>(oracle.top_k));
    FBMPK_TCOUNT("autotune.candidates_pruned", result.candidates_pruned);
  }

  ProbeVectors v(a.rows());
  ErrorCode last_error = ErrorCode::kInternal;
  for (std::size_t i : to_time) {
    const Candidate& c = candidates[i];
    KernelConfigSample& sample = result.samples[i];
    FBMPK_TSPAN_ARGS(
        kAutotune, "autotune.kernel_probe",
        {.value = static_cast<std::int64_t>(c.backend) * 100 +
                  (c.compress ? 10 : 0) + static_cast<int>(c.precision)});
    PlanOptions opts = base;
    opts.kernel_backend = c.backend;
    opts.index_compress = c.compress;
    opts.value_precision = c.precision;
    try {
      maybe_inject_build_fault();
      MpkPlan plan = MpkPlan::build(a, opts);
      sample.seconds = measure_power(plan, v, k, reps);
      sample.packed_index_bytes = plan.stats().packed_index_bytes;
      sample.packed_value_bytes = plan.stats().packed_value_bytes;
    } catch (const Error& e) {
      sample.failed = true;
      sample.error = e.code();
      last_error = e.code();
      continue;
    }
    ++result.candidates_timed;
    if (result.candidates_timed == 1 || sample.seconds < result.best_seconds) {
      result.best_backend = c.backend;
      result.best_index_compress = c.compress;
      result.best_value_precision = c.precision;
      result.best_seconds = sample.seconds;
      result.best_predicted_bytes = std::max(0.0, sample.predicted_bytes);
      result.oracle_rank_of_winner =
          use_oracle ? result.candidates_timed : 0;
    }
  }
  if (result.candidates_timed == 0)
    throw Error(last_error, "every autotune kernel-config candidate failed");
  return result;
}

MpkPlan build_autotuned_plan(const CsrMatrix<double>& a, int k,
                             PlanOptions base, bool allow_fast_kernels) {
  OracleOptions oracle;
  oracle.enabled = base.autotune_oracle;

  // Resolve kAuto by measurement — the structural probe in
  // MpkPlan::build is the cheap fallback for plain builds; here the
  // race is affordable and its verdict is persisted (format v7).
  SchedulerRaceResult race;
  const bool raced = base.scheduler == Scheduler::kAuto;
  if (raced) {
    race = autotune_scheduler(a, k, /*reps=*/3, base, oracle);
    base.scheduler = race.best;
    // The race timed levels in its shipping configuration (natural
    // order); carry that into the plan the remaining stages tune.
    if (race.best == Scheduler::kLevels) base.reorder = false;
  }

  const AutotuneResult tuned = autotune_block_count(
      a, k, default_block_candidates(), /*reps=*/3, base, oracle);
  base.abmc.num_blocks = tuned.best_blocks;
  if (base.parallel)
    base.sweep.sync = autotune_sweep_sync(a, k, /*reps=*/3, base).best;
  const KernelConfigResult kcfg = autotune_kernel_config(
      a, k, /*reps=*/3, base, allow_fast_kernels, oracle);
  base.kernel_backend = kcfg.best_backend;
  base.index_compress = kcfg.best_index_compress;
  base.value_precision = kcfg.best_value_precision;
  MpkPlan plan = MpkPlan::build(a, base);

  TunedConfig chosen;
  chosen.valid = true;
  chosen.backend = kcfg.best_backend;
  chosen.index_compress = kcfg.best_index_compress;
  chosen.value_precision = kcfg.best_value_precision;
  chosen.tuned_threads = static_cast<index_t>(max_threads());
  chosen.best_seconds = kcfg.best_seconds;
  chosen.oracle_used = tuned.oracle_used || kcfg.oracle_used;
  chosen.oracle_predicted_bytes = kcfg.best_predicted_bytes > 0.0
                                      ? kcfg.best_predicted_bytes
                                      : tuned.best_predicted_bytes;
  chosen.candidates_scored =
      static_cast<index_t>(tuned.samples.size() + kcfg.samples.size());
  chosen.candidates_timed =
      tuned.candidates_timed + kcfg.candidates_timed;
  chosen.oracle_rank_of_winner =
      std::max(tuned.oracle_rank_of_winner, kcfg.oracle_rank_of_winner);
  chosen.scheduler = base.scheduler;
  if (raced) {
    chosen.scheduler_measured = race.measured;
    chosen.scheduler_alt_seconds = race.best == Scheduler::kLevels
                                       ? race.abmc_seconds
                                       : race.levels_seconds;
    chosen.oracle_used = chosen.oracle_used || race.oracle_used;
  }
  if (chosen.oracle_used)
    FBMPK_TGAUGE("plan.oracle_predicted_bytes",
                 static_cast<std::int64_t>(chosen.oracle_predicted_bytes));
  plan.set_tuned_config(chosen);
  return plan;
}

}  // namespace fbmpk
