#include "core/plan_io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "support/error.hpp"

namespace fbmpk {

namespace {

constexpr char kMagic[8] = {'F', 'B', 'M', 'P', 'K', 'P', 'L', 'N'};
constexpr std::uint32_t kVersion = 1;

template <class T>
void write_pod(std::ostream& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <class T>
T read_pod(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  FBMPK_CHECK_MSG(in.good(), "truncated plan stream");
  return v;
}

template <class Vec>
void write_vec(std::ostream& out, const Vec& v) {
  write_pod(out, static_cast<std::uint64_t>(v.size()));
  if (!v.empty())
    out.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() *
                                           sizeof(typename Vec::value_type)));
}

template <class Vec>
Vec read_vec(std::istream& in) {
  const auto size = read_pod<std::uint64_t>(in);
  // Sanity bound: refuse absurd sizes before allocating (corrupt file).
  FBMPK_CHECK_MSG(size < (1ull << 40), "implausible vector size in plan");
  Vec v(static_cast<std::size_t>(size));
  if (size > 0) {
    in.read(reinterpret_cast<char*>(v.data()),
            static_cast<std::streamsize>(size *
                                         sizeof(typename Vec::value_type)));
    FBMPK_CHECK_MSG(in.good(), "truncated plan stream");
  }
  return v;
}

void write_csr(std::ostream& out, const CsrMatrix<double>& m) {
  write_pod(out, m.rows());
  write_pod(out, m.cols());
  write_vec(out, AlignedVector<index_t>(m.row_ptr().begin(),
                                        m.row_ptr().end()));
  write_vec(out, AlignedVector<index_t>(m.col_idx().begin(),
                                        m.col_idx().end()));
  write_vec(out, AlignedVector<double>(m.values().begin(),
                                       m.values().end()));
}

CsrMatrix<double> read_csr(std::istream& in) {
  const auto rows = read_pod<index_t>(in);
  const auto cols = read_pod<index_t>(in);
  auto rp = read_vec<AlignedVector<index_t>>(in);
  auto ci = read_vec<AlignedVector<index_t>>(in);
  auto va = read_vec<AlignedVector<double>>(in);
  // The CSR constructor re-validates the structure, so corrupt payloads
  // surface as fbmpk::Error rather than undefined behavior.
  return CsrMatrix<double>(rows, cols, std::move(rp), std::move(ci),
                           std::move(va));
}

void write_level_schedule(std::ostream& out, const LevelSchedule& s) {
  write_pod(out, s.num_levels);
  write_vec(out, s.level_ptr);
  write_vec(out, s.rows);
}

LevelSchedule read_level_schedule(std::istream& in) {
  LevelSchedule s;
  s.num_levels = read_pod<index_t>(in);
  s.level_ptr = read_vec<std::vector<index_t>>(in);
  s.rows = read_vec<std::vector<index_t>>(in);
  return s;
}

}  // namespace

void save_plan(const MpkPlan& plan, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint32_t>(sizeof(index_t)));

  write_pod(out, plan.n_);
  const PlanOptions& o = plan.opts_;
  write_pod(out, o.reorder);
  write_pod(out, o.abmc.num_blocks);
  write_pod(out, o.abmc.blocking);
  write_pod(out, o.abmc.coloring);
  write_pod(out, o.parallel);
  write_pod(out, o.scheduler);
  write_pod(out, o.variant);
  write_pod(out, plan.stats_);

  write_vec(out, std::vector<index_t>(plan.perm_.order().begin(),
                                      plan.perm_.order().end()));
  write_pod(out, plan.schedule_.num_blocks);
  write_pod(out, plan.schedule_.num_colors);
  write_vec(out, plan.schedule_.block_ptr);
  write_vec(out, plan.schedule_.color_ptr);
  write_level_schedule(out, plan.levels_.forward);
  write_level_schedule(out, plan.levels_.backward);

  write_csr(out, plan.split_.lower);
  write_csr(out, plan.split_.upper);
  write_vec(out, plan.split_.diag);
  FBMPK_CHECK_MSG(out.good(), "plan write failed");
}

MpkPlan load_plan(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  FBMPK_CHECK_MSG(in.good() && std::memcmp(magic, kMagic, 8) == 0,
                  "not an FBMPK plan stream");
  FBMPK_CHECK_MSG(read_pod<std::uint32_t>(in) == kVersion,
                  "unsupported plan version");
  FBMPK_CHECK_MSG(read_pod<std::uint32_t>(in) == sizeof(index_t),
                  "plan was written with a different index width");

  MpkPlan plan;
  plan.n_ = read_pod<index_t>(in);
  plan.opts_.reorder = read_pod<bool>(in);
  plan.opts_.abmc.num_blocks = read_pod<index_t>(in);
  plan.opts_.abmc.blocking = read_pod<BlockingStrategy>(in);
  plan.opts_.abmc.coloring = read_pod<ColoringOrder>(in);
  plan.opts_.parallel = read_pod<bool>(in);
  plan.opts_.scheduler = read_pod<Scheduler>(in);
  plan.opts_.variant = read_pod<FbVariant>(in);
  plan.stats_ = read_pod<PlanStats>(in);

  plan.perm_ = Permutation(read_vec<std::vector<index_t>>(in));
  plan.schedule_.num_blocks = read_pod<index_t>(in);
  plan.schedule_.num_colors = read_pod<index_t>(in);
  plan.schedule_.block_ptr = read_vec<std::vector<index_t>>(in);
  plan.schedule_.color_ptr = read_vec<std::vector<index_t>>(in);
  plan.schedule_.perm = plan.perm_;
  plan.levels_.forward = read_level_schedule(in);
  plan.levels_.backward = read_level_schedule(in);

  plan.split_.lower = read_csr(in);
  plan.split_.upper = read_csr(in);
  plan.split_.diag = read_vec<AlignedVector<double>>(in);

  FBMPK_CHECK_MSG(plan.split_.lower.rows() == plan.n_ &&
                      plan.split_.upper.rows() == plan.n_ &&
                      plan.split_.diag.size() ==
                          static_cast<std::size_t>(plan.n_) &&
                      plan.perm_.size() == plan.n_,
                  "inconsistent plan payload");
  plan.internal_ws_ = std::make_unique<MpkPlan::Workspace>();
  return plan;
}

void save_plan_file(const MpkPlan& plan, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  FBMPK_CHECK_MSG(out.is_open(), "cannot open for write: " << path);
  save_plan(plan, out);
}

MpkPlan load_plan_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FBMPK_CHECK_MSG(in.is_open(), "cannot open: " << path);
  return load_plan(in);
}

}  // namespace fbmpk
