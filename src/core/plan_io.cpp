#include "core/plan_io.hpp"

#include <atomic>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <span>
#include <string>
#include <type_traits>

#include "support/checksum.hpp"
#include "support/error.hpp"

namespace fbmpk {

namespace {

// ---------------------------------------------------------------------------
// Format v3 (see docs/ROBUSTNESS.md):
//
//   [ magic "FBMPKPLN" | u32 version | u32 index_width |
//     u64 payload_size | u32 payload_crc32 ]  -- fixed header
//   [ payload: framed sections ]
//
// The payload is a sequence of sections, each
//   [ u32 tag | u64 length | length bytes ],
// and the CRC32 covers every payload byte. Deserialization never
// trusts a byte it has not bounds-checked: section lengths are checked
// against the remaining payload, vector sizes against the remaining
// section, and every enum/bool against its legal range. Any violation
// throws a typed fbmpk::Error (kCorruptPlan / kVersionMismatch) —
// a truncated or bit-flipped plan file can never reach undefined
// behavior or silently load.
//
// v3 added the sweep-engine options to OPTS, the SWEP section (the
// persistent-threads SweepSchedule), and the sweep_threads stats
// field. v4 added the kernel-backend / index-compression / prefetch
// options to OPTS, the packed_index_bytes stats field, and the PCKD
// section (both triangles' compressed column sidecars). v5 added the
// value_precision option to OPTS, the packed_value_bytes stats field,
// the VALP section (reduced-precision value sidecars for L/U/diag),
// and the TUNE section (the persisted autotune choice). v1-v3 files
// are rejected with kVersionMismatch; v4 files still load (precision
// defaults to fp64, tuned config to never-tuned). A loaded schedule is
// structurally re-validated (validate_sweep_schedule) and rebuilt from
// the split when its stored thread count does not match the runtime's;
// a loaded packed sidecar is decode-compared against the split's
// column stream, and a loaded value sidecar is re-encoded from the
// split's fp64 values and compared bitwise (any mismatch ->
// kCorruptPlan). A loaded tuned config is revalidated against the
// executing machine (tuned_config_stale) rather than trusted.
// v6 added the autotune_oracle option to OPTS and the oracle
// provenance fields (predicted bytes, candidates scored/timed, winner
// rank) to TUNE; v4/v5 files still load with the oracle defaults
// (option on, provenance absent).
// v7 appended the level-blocked point-to-point schedule
// (LevelSweepSchedule, reorder/level_blocking.hpp) to LVLS and the
// scheduler-race provenance (scheduler, scheduler_measured,
// scheduler_alt_seconds) to TUNE. v4-v6 files still load: a
// level-scheduled point-to-point plan missing the blocked schedule has
// it rebuilt from the (validated) split, exactly like a
// thread-count-mismatched SWEP. A loaded blocked schedule is
// structurally re-validated against the split
// (validate_level_sweep_schedule); any violation -> kCorruptPlan.
// ---------------------------------------------------------------------------

constexpr char kMagic[8] = {'F', 'B', 'M', 'P', 'K', 'P', 'L', 'N'};
constexpr std::uint32_t kVersion = 7;
constexpr std::uint32_t kMinVersion = 4;  // oldest still-loadable format

// Section tags, in the order they are written.
enum : std::uint32_t {
  kSecOptions = 0x4F505453,   // 'OPTS'
  kSecStats = 0x53544154,     // 'STAT'
  kSecPerm = 0x5045524D,      // 'PERM'
  kSecSchedule = 0x53434844,  // 'SCHD'
  kSecSweep = 0x53574550,     // 'SWEP'
  kSecLevels = 0x4C564C53,    // 'LVLS'
  kSecSplit = 0x53504C54,     // 'SPLT'
  kSecPacked = 0x50434B44,    // 'PCKD'
  kSecValues = 0x56414C50,    // 'VALP' (v5)
  kSecTuned = 0x54554E45,     // 'TUNE' (v5)
};

/// The exact PlanStats layout v4 plans were written with (raw memcpy
/// of the struct). v5 appended packed_value_bytes; reading a v4 STAT
/// section must use the old shape or the frame length check fails.
struct PlanStatsV4 {
  double build_seconds = 0.0;
  double reorder_seconds = 0.0;
  index_t num_blocks = 0;
  index_t num_colors = 0;
  index_t num_levels_forward = 0;
  index_t num_levels_backward = 0;
  index_t sweep_threads = 0;
  std::size_t storage_bytes = 0;
  std::size_t packed_index_bytes = 0;
};

// Serialized payloads are bounded: a section or vector claiming more
// than this is corrupt by definition (matches the read_vec bound the
// v1 format used).
constexpr std::uint64_t kMaxPlausibleBytes = 1ull << 40;

// Runtime-configurable cap below the structural bound (default 64 GiB).
// Checked before the payload buffer is committed, so a hostile length
// field can cost at most the cap, never an OOM.
std::atomic<std::uint64_t> g_payload_cap{1ull << 36};

/// Fixed header: magic + u32 version + u32 index_width +
/// u64 payload_size + u32 crc32.
constexpr std::uint64_t kHeaderBytes = 8 + 4 + 4 + 8 + 4;

// --------------------------- writing ---------------------------------------

/// Accumulates the payload in memory so the CRC and total length are
/// known before anything hits the output stream.
class BlobWriter {
 public:
  template <class T>
  void pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    append(&v, sizeof(T));
  }

  void boolean(bool b) { pod<std::uint8_t>(b ? 1 : 0); }

  template <class E>
  void enumeration(E e) {
    pod<std::uint32_t>(static_cast<std::uint32_t>(e));
  }

  template <class Vec>
  void vec(const Vec& v) {
    pod<std::uint64_t>(v.size());
    if (!v.empty())
      append(v.data(), v.size() * sizeof(typename Vec::value_type));
  }

  /// Begin a framed section; returns after patching the previous one.
  void begin_section(std::uint32_t tag) {
    end_section();
    pod<std::uint32_t>(tag);
    length_pos_ = buf_.size();
    pod<std::uint64_t>(0);  // patched by end_section
  }

  void end_section() {
    if (length_pos_ == std::string::npos) return;
    const std::uint64_t len = buf_.size() - length_pos_ - sizeof(std::uint64_t);
    std::memcpy(buf_.data() + length_pos_, &len, sizeof(len));
    length_pos_ = std::string::npos;
  }

  const std::string& blob() {
    end_section();
    return buf_;
  }

 private:
  void append(const void* data, std::size_t size) {
    buf_.append(static_cast<const char*>(data), size);
  }

  std::string buf_;
  std::size_t length_pos_ = std::string::npos;
};

// --------------------------- reading ---------------------------------------

/// Bounds-checked cursor over the in-memory, checksum-verified payload.
class BlobReader {
 public:
  BlobReader(const char* data, std::size_t size) : data_(data), end_(size) {}

  template <class T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    require(sizeof(T));
    T v{};
    std::memcpy(&v, data_ + off_, sizeof(T));
    off_ += sizeof(T);
    return v;
  }

  bool boolean() {
    const auto b = pod<std::uint8_t>();
    FBMPK_CHECK_CODE(b <= 1, ErrorCode::kCorruptPlan,
                     "bool byte out of range: " << static_cast<int>(b));
    return b == 1;
  }

  /// Read an enum stored as u32 and range-check it against [0, count).
  template <class E>
  E enumeration(std::uint32_t count, const char* name) {
    const auto raw = pod<std::uint32_t>();
    FBMPK_CHECK_CODE(raw < count, ErrorCode::kCorruptPlan,
                     name << " enum value out of range: " << raw);
    return static_cast<E>(raw);
  }

  template <class Vec>
  Vec vec() {
    const auto size = pod<std::uint64_t>();
    using V = typename Vec::value_type;
    FBMPK_CHECK_CODE(size < kMaxPlausibleBytes / sizeof(V),
                     ErrorCode::kCorruptPlan,
                     "implausible vector size in plan: " << size);
    require(size * sizeof(V));
    Vec v(static_cast<std::size_t>(size));
    if (size > 0) {
      std::memcpy(v.data(), data_ + off_,
                  static_cast<std::size_t>(size) * sizeof(V));
      off_ += static_cast<std::size_t>(size) * sizeof(V);
    }
    return v;
  }

  /// Enter the next section; it must carry `tag` and fit the payload.
  /// Returns the section's end offset for end_section().
  std::size_t begin_section(std::uint32_t tag, const char* name) {
    const auto found = pod<std::uint32_t>();
    FBMPK_CHECK_CODE(found == tag, ErrorCode::kCorruptPlan,
                     "expected section " << name << ", found tag 0x"
                                         << std::hex << found);
    const auto len = pod<std::uint64_t>();
    require(len);
    return off_ + static_cast<std::size_t>(len);
  }

  /// Verify the cursor landed exactly on the section boundary.
  void end_section(std::size_t section_end, const char* name) {
    FBMPK_CHECK_CODE(off_ == section_end, ErrorCode::kCorruptPlan,
                     "section " << name << " length mismatch: cursor at "
                                << off_ << ", frame ends at " << section_end);
  }

  void expect_exhausted() {
    FBMPK_CHECK_CODE(off_ == end_, ErrorCode::kCorruptPlan,
                     "trailing bytes after final section");
  }

 private:
  void require(std::uint64_t n) {
    FBMPK_CHECK_CODE(n <= end_ - off_, ErrorCode::kCorruptPlan,
                     "plan payload overrun: need " << n << " bytes, have "
                                                   << (end_ - off_));
  }

  const char* data_;
  std::size_t end_;
  std::size_t off_ = 0;
};

// --------------------------- matrices --------------------------------------

void write_csr(BlobWriter& w, const CsrMatrix<double>& m) {
  w.pod(m.rows());
  w.pod(m.cols());
  w.vec(AlignedVector<index_t>(m.row_ptr().begin(), m.row_ptr().end()));
  w.vec(AlignedVector<index_t>(m.col_idx().begin(), m.col_idx().end()));
  w.vec(AlignedVector<double>(m.values().begin(), m.values().end()));
}

CsrMatrix<double> read_csr(BlobReader& r) {
  const auto rows = r.pod<index_t>();
  const auto cols = r.pod<index_t>();
  auto rp = r.vec<AlignedVector<index_t>>();
  auto ci = r.vec<AlignedVector<index_t>>();
  auto va = r.vec<AlignedVector<double>>();
  // The CSR constructor re-validates the structure; surface its
  // verdict as plan corruption rather than an internal error.
  try {
    return CsrMatrix<double>(rows, cols, std::move(rp), std::move(ci),
                             std::move(va));
  } catch (const Error& e) {
    throw Error(ErrorCode::kCorruptPlan,
                std::string("corrupt CSR payload in plan: ") + e.what());
  }
}

void write_level_schedule(BlobWriter& w, const LevelSchedule& s) {
  w.pod(s.num_levels);
  w.vec(s.level_ptr);
  w.vec(s.rows);
}

LevelSchedule read_level_schedule(BlobReader& r) {
  LevelSchedule s;
  s.num_levels = r.pod<index_t>();
  s.level_ptr = r.vec<std::vector<index_t>>();
  s.rows = r.vec<std::vector<index_t>>();
  FBMPK_CHECK_CODE(
      s.num_levels >= 0 &&
          (s.level_ptr.empty()
               ? s.num_levels == 0 && s.rows.empty()
               : s.level_ptr.size() ==
                     static_cast<std::size_t>(s.num_levels) + 1),
      ErrorCode::kCorruptPlan, "level schedule shape mismatch");
  if (!s.level_ptr.empty()) {
    FBMPK_CHECK_CODE(s.level_ptr.front() == 0 &&
                         s.level_ptr.back() ==
                             static_cast<index_t>(s.rows.size()),
                     ErrorCode::kCorruptPlan,
                     "level schedule pointer endpoints invalid");
    for (std::size_t i = 1; i < s.level_ptr.size(); ++i)
      FBMPK_CHECK_CODE(s.level_ptr[i - 1] <= s.level_ptr[i],
                       ErrorCode::kCorruptPlan,
                       "level schedule pointers not monotone");
  }
  return s;
}

void write_level_direction(BlobWriter& w, const LevelBlockDirection& d) {
  w.pod(d.num_stages);
  w.vec(d.stage_level_ptr);
  w.vec(d.part_ptr);
  w.vec(d.part_rows);
  w.vec(d.load);
}

LevelBlockDirection read_level_direction(BlobReader& r) {
  LevelBlockDirection d;
  d.num_stages = r.pod<index_t>();
  FBMPK_CHECK_CODE(d.num_stages >= 0, ErrorCode::kCorruptPlan,
                   "negative level stage count in plan");
  d.stage_level_ptr = r.vec<std::vector<index_t>>();
  d.part_ptr = r.vec<std::vector<index_t>>();
  d.part_rows = r.vec<std::vector<index_t>>();
  d.load = r.vec<std::vector<index_t>>();
  return d;
}

void write_packed(BlobWriter& w, const PackedTriangleIndex& p) {
  const PackedTriangleIndex::Raw raw = p.to_raw();
  w.pod(raw.rows);
  w.pod(raw.nnz);
  w.pod(raw.band_shift);
  w.vec(raw.band_base);
  w.vec(raw.band_wide);
  w.vec(raw.band_off);
  w.vec(raw.band_gbase);
  w.vec(raw.col16);
  w.vec(raw.col32);
}

void write_values(BlobWriter& w, const PackedTriangleValues& p) {
  const PackedTriangleValues::Raw raw = p.to_raw();
  w.pod(raw.precision);
  w.pod(raw.lossless);
  w.pod(raw.count);
  w.vec(raw.f32);
  w.vec(raw.hi);
  w.vec(raw.lo);
}

PackedTriangleValues read_values(BlobReader& r, const char* name) {
  PackedTriangleValues::Raw raw;
  raw.precision = r.pod<std::uint8_t>();
  raw.lossless = r.pod<std::uint8_t>();
  raw.count = r.pod<std::uint64_t>();
  raw.f32 = r.vec<AlignedVector<float>>();
  raw.hi = r.vec<AlignedVector<float>>();
  raw.lo = r.vec<AlignedVector<float>>();
  PackedTriangleValues out;
  FBMPK_CHECK_CODE(PackedTriangleValues::from_raw(std::move(raw), out),
                   ErrorCode::kCorruptPlan,
                   name << " value sidecar fails structural validation");
  return out;
}

PackedTriangleIndex read_packed(BlobReader& r, const char* name) {
  PackedTriangleIndex::Raw raw;
  raw.rows = r.pod<index_t>();
  raw.nnz = r.pod<index_t>();
  raw.band_shift = r.pod<index_t>();
  raw.band_base = r.vec<AlignedVector<index_t>>();
  raw.band_wide = r.vec<AlignedVector<std::uint8_t>>();
  raw.band_off = r.vec<AlignedVector<std::uint64_t>>();
  raw.band_gbase = r.vec<AlignedVector<index_t>>();
  raw.col16 = r.vec<AlignedVector<std::uint16_t>>();
  raw.col32 = r.vec<AlignedVector<index_t>>();
  PackedTriangleIndex out;
  FBMPK_CHECK_CODE(PackedTriangleIndex::from_raw(std::move(raw), out),
                   ErrorCode::kCorruptPlan,
                   name << " packed index fails structural validation");
  return out;
}

// Monotone non-negative pointer array ending exactly at `total`.
void check_ptr_array(const std::vector<index_t>& ptr, index_t total,
                     const char* name) {
  if (ptr.empty()) return;
  FBMPK_CHECK_CODE(ptr.front() == 0 && ptr.back() == total,
                   ErrorCode::kCorruptPlan,
                   name << " endpoints invalid in plan");
  for (std::size_t i = 1; i < ptr.size(); ++i)
    FBMPK_CHECK_CODE(ptr[i - 1] <= ptr[i], ErrorCode::kCorruptPlan,
                     name << " not monotone in plan");
}

}  // namespace

void save_plan(const MpkPlan& plan, std::ostream& out) {
  BlobWriter w;

  w.begin_section(kSecOptions);
  w.pod(plan.n_);
  const PlanOptions& o = plan.opts_;
  w.boolean(o.reorder);
  w.pod(o.abmc.num_blocks);
  w.enumeration(o.abmc.blocking);
  w.enumeration(o.abmc.coloring);
  w.boolean(o.parallel);
  w.enumeration(o.scheduler);
  w.enumeration(o.variant);
  w.enumeration(o.sweep.sync);
  w.pod(o.sweep.threads);
  w.boolean(o.sweep.pin_threads);
  w.boolean(o.validate_input);
  w.enumeration(o.sanitize.policy);
  w.boolean(o.sanitize.check_finite);
  w.boolean(o.sanitize.check_duplicates);
  w.boolean(o.sanitize.check_explicit_zeros);
  w.boolean(o.sanitize.check_diagonal);
  w.pod(o.sanitize.zero_diag_tolerance);
  w.pod(o.sanitize.patched_diagonal);
  w.enumeration(o.kernel_backend);
  w.boolean(o.index_compress);
  w.pod(static_cast<std::int32_t>(o.prefetch_dist));
  w.enumeration(o.value_precision);
  w.boolean(o.autotune_oracle);

  w.begin_section(kSecStats);
  w.pod(plan.stats_);

  w.begin_section(kSecPerm);
  w.vec(std::vector<index_t>(plan.perm_.order().begin(),
                             plan.perm_.order().end()));

  w.begin_section(kSecSchedule);
  w.pod(plan.schedule_.num_blocks);
  w.pod(plan.schedule_.num_colors);
  w.vec(plan.schedule_.block_ptr);
  w.vec(plan.schedule_.color_ptr);

  w.begin_section(kSecSweep);
  const SweepSchedule& ss = plan.sweep_schedule_;
  w.pod(ss.num_threads);
  w.pod(ss.num_colors);
  w.pod(ss.num_blocks);
  w.vec(ss.part_ptr);
  w.vec(ss.part_blocks);
  w.vec(ss.fwd_dep_ptr);
  w.vec(ss.fwd_deps);
  w.vec(ss.bwd_dep_ptr);
  w.vec(ss.bwd_deps);
  w.vec(ss.all_dep_ptr);
  w.vec(ss.all_deps);
  w.vec(ss.load);

  w.begin_section(kSecLevels);
  write_level_schedule(w, plan.levels_.forward);
  write_level_schedule(w, plan.levels_.backward);
  // v7: the level-blocked point-to-point schedule rides in the same
  // section (empty for ABMC or barrier-sync plans).
  const LevelSweepSchedule& ls = plan.level_sweep_schedule_;
  w.pod(ls.num_threads);
  write_level_direction(w, ls.fwd);
  write_level_direction(w, ls.bwd);
  w.vec(ls.fwd_dep_ptr);
  w.vec(ls.fwd_deps);
  w.vec(ls.bwd_dep_ptr);
  w.vec(ls.bwd_deps);
  w.vec(ls.bwd_fdep_ptr);
  w.vec(ls.bwd_fdeps);

  w.begin_section(kSecSplit);
  write_csr(w, plan.split_.lower);
  write_csr(w, plan.split_.upper);
  w.vec(plan.split_.diag);

  w.begin_section(kSecPacked);
  write_packed(w, plan.packed_.lower);
  write_packed(w, plan.packed_.upper);

  w.begin_section(kSecValues);
  w.enumeration(plan.values_.precision);
  write_values(w, plan.values_.lower);
  write_values(w, plan.values_.upper);
  write_values(w, plan.values_.diag);

  // The tuned config travels with the plan so a reload does not repeat
  // the autotune sweep; `stale` is recomputed on load, never stored.
  w.begin_section(kSecTuned);
  const TunedConfig& t = plan.tuned_;
  w.boolean(t.valid);
  w.enumeration(t.backend);
  w.boolean(t.index_compress);
  w.enumeration(t.value_precision);
  w.pod(t.tuned_threads);
  w.pod(t.best_seconds);
  w.boolean(t.oracle_used);
  w.pod(t.oracle_predicted_bytes);
  w.pod(t.candidates_scored);
  w.pod(t.candidates_timed);
  w.pod(t.oracle_rank_of_winner);
  w.enumeration(t.scheduler);
  w.boolean(t.scheduler_measured);
  w.pod(t.scheduler_alt_seconds);

  const std::string& payload = w.blob();
  const auto payload_crc = crc32(payload.data(), payload.size());

  out.write(kMagic, sizeof(kMagic));
  const std::uint32_t version = kVersion;
  const std::uint32_t index_width = sizeof(index_t);
  const std::uint64_t payload_size = payload.size();
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&index_width), sizeof(index_width));
  out.write(reinterpret_cast<const char*>(&payload_size),
            sizeof(payload_size));
  out.write(reinterpret_cast<const char*>(&payload_crc), sizeof(payload_crc));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  FBMPK_CHECK_CODE(out.good(), ErrorCode::kIo, "plan write failed");
}

void set_plan_payload_cap(std::uint64_t bytes) {
  g_payload_cap.store(bytes, std::memory_order_relaxed);
}

std::uint64_t plan_payload_cap() {
  return g_payload_cap.load(std::memory_order_relaxed);
}

namespace detail {

/// `total_size` is the byte count of the underlying artifact when the
/// caller knows it (file loads), 0 when the stream is unbounded. A
/// known size lets the header's claimed payload length be rejected
/// before any payload byte is read or buffered.
MpkPlan load_plan_impl(std::istream& in, std::uint64_t total_size) {
  char magic[8];
  in.read(magic, sizeof(magic));
  FBMPK_CHECK_CODE(in.good() && std::memcmp(magic, kMagic, 8) == 0,
                   ErrorCode::kCorruptPlan, "not an FBMPK plan stream");

  std::uint32_t version = 0, index_width = 0;
  std::uint64_t payload_size = 0;
  std::uint32_t stored_crc = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  FBMPK_CHECK_CODE(in.good(), ErrorCode::kCorruptPlan,
                   "truncated plan header");
  FBMPK_CHECK_CODE(version >= kMinVersion && version <= kVersion,
                   ErrorCode::kVersionMismatch,
                   "unsupported plan version "
                       << version << " (this build reads versions "
                       << kMinVersion << "-" << kVersion
                       << "; older files predate the checksum, the sweep "
                       << "schedule, or the packed-index section and must "
                       << "be regenerated)");
  in.read(reinterpret_cast<char*>(&index_width), sizeof(index_width));
  in.read(reinterpret_cast<char*>(&payload_size), sizeof(payload_size));
  in.read(reinterpret_cast<char*>(&stored_crc), sizeof(stored_crc));
  FBMPK_CHECK_CODE(in.good(), ErrorCode::kCorruptPlan,
                   "truncated plan header");
  FBMPK_CHECK_CODE(index_width == sizeof(index_t),
                   ErrorCode::kVersionMismatch,
                   "plan was written with index width " << index_width
                                                        << ", this build uses "
                                                        << sizeof(index_t));
  FBMPK_CHECK_CODE(payload_size < kMaxPlausibleBytes,
                   ErrorCode::kCorruptPlan,
                   "implausible payload size: " << payload_size);
  FBMPK_CHECK_CODE(payload_size <= plan_payload_cap(),
                   ErrorCode::kResourceLimit,
                   "plan payload of " << payload_size
                                      << " bytes exceeds the configured cap "
                                      << plan_payload_cap());
  if (total_size > 0)
    FBMPK_CHECK_CODE(kHeaderBytes + payload_size == total_size,
                     ErrorCode::kCorruptPlan,
                     "plan header claims " << payload_size
                                           << " payload bytes but the file "
                                              "holds "
                                           << (total_size - kHeaderBytes));

  // Read the payload in bounded chunks: a corrupted payload_size just
  // under the plausibility bound must not commit a huge zero-filled
  // allocation before the stream reveals it holds far fewer bytes.
  std::string payload;
  {
    constexpr std::size_t kChunk = std::size_t{1} << 20;
    std::uint64_t got = 0;
    while (got < payload_size) {
      const auto want = static_cast<std::size_t>(
          std::min<std::uint64_t>(kChunk, payload_size - got));
      const std::size_t old = payload.size();
      payload.resize(old + want);
      in.read(payload.data() + old, static_cast<std::streamsize>(want));
      const auto n = static_cast<std::uint64_t>(in.gcount());
      got += n;
      if (n < want) {
        payload.resize(old + static_cast<std::size_t>(n));
        break;
      }
    }
    FBMPK_CHECK_CODE(got == payload_size, ErrorCode::kCorruptPlan,
                     "truncated plan payload: expected " << payload_size
                                                         << " bytes, got "
                                                         << got);
  }
  const auto actual_crc = crc32(payload.data(), payload.size());
  FBMPK_CHECK_CODE(actual_crc == stored_crc, ErrorCode::kCorruptPlan,
                   "plan payload checksum mismatch (stored 0x"
                       << std::hex << stored_crc << ", computed 0x"
                       << actual_crc << ")");

  BlobReader r(payload.data(), payload.size());
  MpkPlan plan;

  auto sec = r.begin_section(kSecOptions, "options");
  plan.n_ = r.pod<index_t>();
  FBMPK_CHECK_CODE(plan.n_ >= 0, ErrorCode::kCorruptPlan,
                   "negative dimension in plan");
  plan.opts_.reorder = r.boolean();
  plan.opts_.abmc.num_blocks = r.pod<index_t>();
  plan.opts_.abmc.blocking = r.enumeration<BlockingStrategy>(2, "blocking");
  plan.opts_.abmc.coloring = r.enumeration<ColoringOrder>(3, "coloring");
  plan.opts_.parallel = r.boolean();
  plan.opts_.scheduler = r.enumeration<Scheduler>(2, "scheduler");
  plan.opts_.variant = r.enumeration<FbVariant>(2, "variant");
  plan.opts_.sweep.sync = r.enumeration<SweepSync>(2, "sweep sync");
  plan.opts_.sweep.threads = r.pod<index_t>();
  FBMPK_CHECK_CODE(plan.opts_.sweep.threads >= 0, ErrorCode::kCorruptPlan,
                   "negative sweep thread count in plan");
  plan.opts_.sweep.pin_threads = r.boolean();
  plan.opts_.validate_input = r.boolean();
  plan.opts_.sanitize.policy = r.enumeration<RepairPolicy>(3, "policy");
  plan.opts_.sanitize.check_finite = r.boolean();
  plan.opts_.sanitize.check_duplicates = r.boolean();
  plan.opts_.sanitize.check_explicit_zeros = r.boolean();
  plan.opts_.sanitize.check_diagonal = r.boolean();
  plan.opts_.sanitize.zero_diag_tolerance = r.pod<double>();
  plan.opts_.sanitize.patched_diagonal = r.pod<double>();
  plan.opts_.kernel_backend =
      r.enumeration<KernelBackend>(5, "kernel backend");
  plan.opts_.index_compress = r.boolean();
  plan.opts_.prefetch_dist = r.pod<std::int32_t>();
  FBMPK_CHECK_CODE(
      plan.opts_.prefetch_dist >= 0 && plan.opts_.prefetch_dist <= 1024,
      ErrorCode::kCorruptPlan,
      "prefetch distance out of range in plan: " << plan.opts_.prefetch_dist);
  if (version >= 5)
    plan.opts_.value_precision =
        r.enumeration<ValuePrecision>(3, "value precision");
  if (version >= 6) plan.opts_.autotune_oracle = r.boolean();
  r.end_section(sec, "options");

  sec = r.begin_section(kSecStats, "stats");
  if (version >= 5) {
    plan.stats_ = r.pod<PlanStats>();
  } else {
    const auto s4 = r.pod<PlanStatsV4>();
    plan.stats_.build_seconds = s4.build_seconds;
    plan.stats_.reorder_seconds = s4.reorder_seconds;
    plan.stats_.num_blocks = s4.num_blocks;
    plan.stats_.num_colors = s4.num_colors;
    plan.stats_.num_levels_forward = s4.num_levels_forward;
    plan.stats_.num_levels_backward = s4.num_levels_backward;
    plan.stats_.sweep_threads = s4.sweep_threads;
    plan.stats_.storage_bytes = s4.storage_bytes;
    plan.stats_.packed_index_bytes = s4.packed_index_bytes;
    plan.stats_.packed_value_bytes = 0;
  }
  r.end_section(sec, "stats");

  sec = r.begin_section(kSecPerm, "permutation");
  try {
    plan.perm_ = Permutation(r.vec<std::vector<index_t>>());
  } catch (const Error& e) {
    throw Error(ErrorCode::kCorruptPlan,
                std::string("corrupt permutation in plan: ") + e.what());
  }
  r.end_section(sec, "permutation");

  sec = r.begin_section(kSecSchedule, "schedule");
  plan.schedule_.num_blocks = r.pod<index_t>();
  plan.schedule_.num_colors = r.pod<index_t>();
  plan.schedule_.block_ptr = r.vec<std::vector<index_t>>();
  plan.schedule_.color_ptr = r.vec<std::vector<index_t>>();
  FBMPK_CHECK_CODE(
      plan.schedule_.num_blocks >= 0 && plan.schedule_.num_colors >= 0,
      ErrorCode::kCorruptPlan, "negative schedule counts in plan");
  FBMPK_CHECK_CODE(
      plan.schedule_.block_ptr.empty() ||
          plan.schedule_.block_ptr.size() ==
              static_cast<std::size_t>(plan.schedule_.num_blocks) + 1,
      ErrorCode::kCorruptPlan, "schedule block_ptr shape mismatch");
  FBMPK_CHECK_CODE(
      plan.schedule_.color_ptr.empty() ||
          plan.schedule_.color_ptr.size() ==
              static_cast<std::size_t>(plan.schedule_.num_colors) + 1,
      ErrorCode::kCorruptPlan, "schedule color_ptr shape mismatch");
  check_ptr_array(plan.schedule_.block_ptr, plan.n_, "schedule block_ptr");
  check_ptr_array(plan.schedule_.color_ptr, plan.schedule_.num_blocks,
                  "schedule color_ptr");
  plan.schedule_.perm = plan.perm_;
  r.end_section(sec, "schedule");

  sec = r.begin_section(kSecSweep, "sweep");
  SweepSchedule& ss = plan.sweep_schedule_;
  ss.num_threads = r.pod<index_t>();
  ss.num_colors = r.pod<index_t>();
  ss.num_blocks = r.pod<index_t>();
  ss.part_ptr = r.vec<std::vector<index_t>>();
  ss.part_blocks = r.vec<std::vector<index_t>>();
  ss.fwd_dep_ptr = r.vec<std::vector<index_t>>();
  ss.fwd_deps = r.vec<std::vector<SweepDep>>();
  ss.bwd_dep_ptr = r.vec<std::vector<index_t>>();
  ss.bwd_deps = r.vec<std::vector<SweepDep>>();
  ss.all_dep_ptr = r.vec<std::vector<index_t>>();
  ss.all_deps = r.vec<std::vector<index_t>>();
  ss.load = r.vec<std::vector<index_t>>();
  FBMPK_CHECK_CODE(ss.num_threads >= 0, ErrorCode::kCorruptPlan,
                   "negative sweep schedule thread count in plan");
  FBMPK_CHECK_CODE(ss.empty() || validate_sweep_schedule(ss, plan.schedule_),
                   ErrorCode::kCorruptPlan,
                   "sweep schedule fails structural validation");
  r.end_section(sec, "sweep");

  sec = r.begin_section(kSecLevels, "levels");
  plan.levels_.forward = read_level_schedule(r);
  plan.levels_.backward = read_level_schedule(r);
  if (version >= 7) {
    LevelSweepSchedule& ls = plan.level_sweep_schedule_;
    ls.num_threads = r.pod<index_t>();
    FBMPK_CHECK_CODE(ls.num_threads >= 0, ErrorCode::kCorruptPlan,
                     "negative level schedule thread count in plan");
    ls.fwd = read_level_direction(r);
    ls.bwd = read_level_direction(r);
    ls.fwd_dep_ptr = r.vec<std::vector<index_t>>();
    ls.fwd_deps = r.vec<std::vector<LevelDep>>();
    ls.bwd_dep_ptr = r.vec<std::vector<index_t>>();
    ls.bwd_deps = r.vec<std::vector<LevelDep>>();
    ls.bwd_fdep_ptr = r.vec<std::vector<index_t>>();
    ls.bwd_fdeps = r.vec<std::vector<LevelDep>>();
    FBMPK_CHECK_CODE(
        ls.empty() || (plan.opts_.parallel &&
                       plan.opts_.scheduler == Scheduler::kLevels),
        ErrorCode::kCorruptPlan,
        "plan carries a level-blocked schedule but is not level-scheduled");
  }
  r.end_section(sec, "levels");

  sec = r.begin_section(kSecSplit, "split");
  plan.split_.lower = read_csr(r);
  plan.split_.upper = read_csr(r);
  plan.split_.diag = r.vec<AlignedVector<double>>();
  r.end_section(sec, "split");

  sec = r.begin_section(kSecPacked, "packed index");
  plan.packed_.lower = read_packed(r, "lower");
  plan.packed_.upper = read_packed(r, "upper");
  r.end_section(sec, "packed index");

  if (version >= 5) {
    sec = r.begin_section(kSecValues, "packed values");
    plan.values_.precision =
        r.enumeration<ValuePrecision>(3, "sidecar precision");
    plan.values_.lower = read_values(r, "lower");
    plan.values_.upper = read_values(r, "upper");
    plan.values_.diag = read_values(r, "diag");
    r.end_section(sec, "packed values");

    sec = r.begin_section(kSecTuned, "tuned config");
    plan.tuned_.valid = r.boolean();
    plan.tuned_.backend = r.enumeration<KernelBackend>(5, "tuned backend");
    plan.tuned_.index_compress = r.boolean();
    plan.tuned_.value_precision =
        r.enumeration<ValuePrecision>(3, "tuned precision");
    plan.tuned_.tuned_threads = r.pod<index_t>();
    FBMPK_CHECK_CODE(plan.tuned_.tuned_threads >= 0, ErrorCode::kCorruptPlan,
                     "negative tuned thread count in plan");
    plan.tuned_.best_seconds = r.pod<double>();
    FBMPK_CHECK_CODE(plan.tuned_.best_seconds >= 0.0, ErrorCode::kCorruptPlan,
                     "negative tuned timing in plan");
    if (version >= 6) {
      plan.tuned_.oracle_used = r.boolean();
      plan.tuned_.oracle_predicted_bytes = r.pod<double>();
      FBMPK_CHECK_CODE(plan.tuned_.oracle_predicted_bytes >= 0.0,
                       ErrorCode::kCorruptPlan,
                       "negative oracle prediction in plan");
      plan.tuned_.candidates_scored = r.pod<index_t>();
      plan.tuned_.candidates_timed = r.pod<index_t>();
      plan.tuned_.oracle_rank_of_winner = r.pod<index_t>();
      FBMPK_CHECK_CODE(
          plan.tuned_.candidates_scored >= 0 &&
              plan.tuned_.candidates_timed >= 0 &&
              plan.tuned_.candidates_timed <= plan.tuned_.candidates_scored &&
              plan.tuned_.oracle_rank_of_winner >= 0 &&
              plan.tuned_.oracle_rank_of_winner <=
                  plan.tuned_.candidates_timed,
          ErrorCode::kCorruptPlan,
          "inconsistent oracle provenance counts in plan");
    }
    if (version >= 7) {
      plan.tuned_.scheduler = r.enumeration<Scheduler>(2, "tuned scheduler");
      plan.tuned_.scheduler_measured = r.boolean();
      plan.tuned_.scheduler_alt_seconds = r.pod<double>();
      FBMPK_CHECK_CODE(plan.tuned_.scheduler_alt_seconds >= 0.0,
                       ErrorCode::kCorruptPlan,
                       "negative scheduler timing in plan");
    }
    r.end_section(sec, "tuned config");
  }
  r.expect_exhausted();

  if (plan.opts_.index_compress) {
    // The CRC already rejects raw byte flips; this decode-compare
    // additionally rejects any internally-consistent sidecar that does
    // not reproduce the split's column stream (same discipline as the
    // sweep schedule's structural re-validation).
    FBMPK_CHECK_CODE(
        plan.packed_.lower.matches(plan.split_.lower.rows(),
                                   plan.split_.lower.row_ptr().data(),
                                   plan.split_.lower.col_idx().data()) &&
            plan.packed_.upper.matches(plan.split_.upper.rows(),
                                       plan.split_.upper.row_ptr().data(),
                                       plan.split_.upper.col_idx().data()),
        ErrorCode::kCorruptPlan,
        "packed index does not reproduce the split's column stream");
  } else {
    FBMPK_CHECK_CODE(plan.packed_.empty(), ErrorCode::kCorruptPlan,
                     "plan carries a packed index but index_compress is off");
  }

  if (plan.opts_.value_precision != ValuePrecision::kFp64) {
    // Same discipline as PCKD: re-encode the split's fp64 values at the
    // stored precision and require a bitwise match, so an
    // internally-consistent but tampered value stream cannot load.
    const auto lv = std::span<const double>(plan.split_.lower.values());
    const auto uv = std::span<const double>(plan.split_.upper.values());
    const auto dv = std::span<const double>(plan.split_.diag);
    FBMPK_CHECK_CODE(plan.values_.precision == plan.opts_.value_precision,
                     ErrorCode::kCorruptPlan,
                     "value sidecar precision disagrees with plan options");
    FBMPK_CHECK_CODE(plan.values_.lower.matches(lv) &&
                         plan.values_.upper.matches(uv) &&
                         plan.values_.diag.matches(dv),
                     ErrorCode::kCorruptPlan,
                     "value sidecar does not reproduce the split's values");
    plan.stats_.packed_value_bytes = plan.values_.value_bytes();
  } else {
    FBMPK_CHECK_CODE(plan.values_.empty() && plan.values_.lower.empty() &&
                         plan.values_.upper.empty() &&
                         plan.values_.diag.empty(),
                     ErrorCode::kCorruptPlan,
                     "plan carries value sidecars but precision is fp64");
  }

  // Re-resolve the executing backend for this process: kAuto probes
  // CPUID; a stored concrete backend this CPU cannot run degrades to
  // the portable probe result instead of failing the load.
  plan.resolved_backend_ =
      backend_available(plan.opts_.kernel_backend)
          ? resolve_backend(plan.opts_.kernel_backend)
          : resolve_backend(KernelBackend::kAuto);

  FBMPK_CHECK_CODE(plan.split_.lower.rows() == plan.n_ &&
                       plan.split_.lower.cols() == plan.n_ &&
                       plan.split_.upper.rows() == plan.n_ &&
                       plan.split_.upper.cols() == plan.n_ &&
                       plan.split_.diag.size() ==
                           static_cast<std::size_t>(plan.n_) &&
                       plan.perm_.size() == plan.n_,
                   ErrorCode::kCorruptPlan, "inconsistent plan payload");

  // A schedule is data for one thread count. When the plan wants the
  // runtime default (threads == 0) and this process's default differs
  // from the stored one, rebuild from the (already validated) split
  // rather than failing or silently running a mismatched schedule.
  if (plan.opts_.parallel && plan.opts_.scheduler == Scheduler::kAbmc &&
      plan.opts_.sweep.sync == SweepSync::kPointToPoint) {
    const index_t want = plan.opts_.sweep.threads > 0
                             ? plan.opts_.sweep.threads
                             : static_cast<index_t>(max_threads());
    if (plan.sweep_schedule_.empty() ||
        plan.sweep_schedule_.num_threads != want) {
      plan.sweep_schedule_ =
          build_sweep_schedule(plan.schedule_, plan.split_, want);
      plan.stats_.sweep_threads = want;
    }
  }

  // Same discipline for the level-blocked schedule: structurally
  // re-validate a loaded one against the split, and rebuild when it is
  // absent (v4-v6 files) or built for a different thread count.
  if (plan.opts_.parallel && plan.opts_.scheduler == Scheduler::kLevels) {
    FBMPK_CHECK_CODE(
        plan.levels_.forward.rows.size() ==
                static_cast<std::size_t>(plan.n_) &&
            plan.levels_.backward.rows.size() ==
                static_cast<std::size_t>(plan.n_),
        ErrorCode::kCorruptPlan,
        "level schedule does not cover the matrix");
    FBMPK_CHECK_CODE(plan.level_sweep_schedule_.empty() ||
                         validate_level_sweep_schedule(
                             plan.level_sweep_schedule_, plan.split_),
                     ErrorCode::kCorruptPlan,
                     "level-blocked schedule fails structural validation");
    if (plan.opts_.sweep.sync == SweepSync::kPointToPoint) {
      const index_t want = plan.opts_.sweep.threads > 0
                               ? plan.opts_.sweep.threads
                               : static_cast<index_t>(max_threads());
      if (plan.level_sweep_schedule_.empty() ||
          plan.level_sweep_schedule_.num_threads != want) {
        plan.level_sweep_schedule_ =
            build_level_sweep_schedule(plan.levels_, plan.split_, want);
        plan.stats_.sweep_threads = want;
      }
    }
  }

  // The tuned choice is advice from the machine that ran the autotuner;
  // flag it stale (rather than dropping it) when this process cannot
  // honor it, so callers can decide whether to re-tune.
  plan.tuned_.stale =
      tuned_config_stale(plan.tuned_, static_cast<index_t>(max_threads()));

  plan.internal_ws_ = std::make_unique<MpkPlan::Workspace>();
  return plan;
}

}  // namespace detail

MpkPlan load_plan(std::istream& in) { return detail::load_plan_impl(in, 0); }

void save_plan_file(const MpkPlan& plan, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  FBMPK_CHECK_CODE(out.is_open(), ErrorCode::kIo,
                   "cannot open for write: " << path);
  save_plan(plan, out);
}

MpkPlan load_plan_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FBMPK_CHECK_CODE(in.is_open(), ErrorCode::kIo, "cannot open: " << path);
  // Measure the artifact so the header's claimed payload length can be
  // validated against reality before anything is allocated.
  in.seekg(0, std::ios::end);
  const auto end_pos = in.tellg();
  in.seekg(0, std::ios::beg);
  FBMPK_CHECK_CODE(end_pos >= 0 && in.good(), ErrorCode::kIo,
                   "cannot determine size of: " << path);
  return detail::load_plan_impl(in, static_cast<std::uint64_t>(end_pos));
}

Expected<MpkPlan> try_load_plan(std::istream& in) {
  try {
    return load_plan(in);
  } catch (const Error& e) {
    return e;
  }
}

Expected<MpkPlan> try_load_plan_file(const std::string& path) {
  try {
    return load_plan_file(path);
  } catch (const Error& e) {
    return e;
  }
}

}  // namespace fbmpk
