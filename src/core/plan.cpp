#include "core/plan.hpp"

#include <algorithm>
#include <cmath>
#include <new>

#include "kernels/fb_batch.hpp"
#include "kernels/fbmpk_parallel.hpp"
#include "support/timer.hpp"
#include "telemetry/telemetry.hpp"

namespace fbmpk {

namespace {

#if FBMPK_TELEMETRY_ENABLED
// Max-over-mean per-thread nnz load of the point-to-point schedule, in
// parts-per-million (same diagnostic as perf::partition_imbalance, kept
// local to avoid a core -> perf dependency). 1e6 == perfectly balanced.
std::int64_t schedule_imbalance_ppm(const SweepSchedule& sched) {
  if (sched.empty() || sched.load.empty()) return 0;
  const std::size_t T_n = static_cast<std::size_t>(sched.num_threads);
  std::vector<double> per_thread(T_n, 0.0);
  for (std::size_t t = 0; t < T_n; ++t)
    for (index_t c = 0; c < sched.num_colors; ++c)
      per_thread[t] += static_cast<double>(
          sched.load[t * static_cast<std::size_t>(sched.num_colors) +
                     static_cast<std::size_t>(c)]);
  double total = 0.0, peak = 0.0;
  for (double v : per_thread) {
    total += v;
    peak = std::max(peak, v);
  }
  const double mean = total / static_cast<double>(T_n);
  if (mean <= 0.0) return 0;
  return static_cast<std::int64_t>(peak / mean * 1e6);
}

// Same diagnostic for the level-blocked schedule: per-thread nnz load
// summed over both directions' stages.
std::int64_t level_imbalance_ppm(const LevelSweepSchedule& sched) {
  if (sched.empty()) return 0;
  const std::size_t T_n = static_cast<std::size_t>(sched.num_threads);
  std::vector<double> per_thread(T_n, 0.0);
  const auto add = [&](const LevelBlockDirection& d) {
    for (std::size_t t = 0; t < T_n; ++t)
      for (index_t s = 0; s < d.num_stages; ++s)
        per_thread[t] += static_cast<double>(
            d.load[d.slot(static_cast<index_t>(t), s)]);
  };
  add(sched.fwd);
  add(sched.bwd);
  double total = 0.0, peak = 0.0;
  for (double v : per_thread) {
    total += v;
    peak = std::max(peak, v);
  }
  const double mean = total / static_cast<double>(T_n);
  if (mean <= 0.0) return 0;
  return static_cast<std::int64_t>(peak / mean * 1e6);
}
#endif

}  // namespace

const char* scheduler_name(Scheduler s) {
  switch (s) {
    case Scheduler::kAbmc:
      return "abmc";
    case Scheduler::kLevels:
      return "levels";
    case Scheduler::kAuto:
      return "auto";
  }
  return "abmc";
}

Scheduler parse_scheduler(const std::string& name) {
  if (name == "abmc") return Scheduler::kAbmc;
  if (name == "levels") return Scheduler::kLevels;
  if (name == "auto") return Scheduler::kAuto;
  throw Error(ErrorCode::kUnsupported,
              "unknown scheduler '" + name + "' (abmc | levels | auto)");
}

MpkPlan MpkPlan::build(const CsrMatrix<double>& a, PlanOptions opts) {
  FBMPK_CHECK_CODE(a.rows() == a.cols(), ErrorCode::kInvalidMatrix,
                   "MpkPlan needs a square matrix, got " << a.rows() << " x "
                                                         << a.cols());
  FBMPK_CHECK_CODE(a.rows() > 0, ErrorCode::kInvalidMatrix,
                   "MpkPlan needs a non-empty matrix");
  FBMPK_CHECK_MSG(
      !opts.parallel || opts.reorder || opts.scheduler != Scheduler::kAbmc,
      "ABMC-scheduled parallel execution requires the reorder; use "
      "Scheduler::kLevels (or kAuto) to run parallel without reordering");
  const bool wants_dispatch =
      opts.kernel_backend != KernelBackend::kScalar || opts.index_compress ||
      opts.value_precision != ValuePrecision::kFp64;
  FBMPK_CHECK_CODE(!wants_dispatch || opts.variant == FbVariant::kBtb,
                   ErrorCode::kUnsupported,
                   "fast kernel backends / index compression cover the BtB "
                   "variant only");
  FBMPK_CHECK_MSG(opts.prefetch_dist >= 0 && opts.prefetch_dist <= 1024,
                  "prefetch_dist must be in [0, 1024], got "
                      << opts.prefetch_dist);
  if (opts.validate_input) {
    FBMPK_TSPAN(kPlan, "plan.validate");
    check_matrix(a, opts.sanitize);
  }

  FBMPK_TSPAN(kPlan, "plan.build");
  Timer total;
  MpkPlan plan;
  plan.n_ = a.rows();
  plan.opts_ = opts;

  if (opts.reorder) {
    Timer reorder_timer;
    {
      FBMPK_TSPAN(kPlan, "plan.abmc");
      plan.schedule_ = abmc_order(a, opts.abmc);
    }
    plan.perm_ = plan.schedule_.perm;
    plan.stats_.reorder_seconds = reorder_timer.seconds();
    plan.stats_.num_blocks = plan.schedule_.num_blocks;
    plan.stats_.num_colors = plan.schedule_.num_colors;
    FBMPK_TSPAN(kPlan, "plan.split");
    const CsrMatrix<double> permuted = permute_symmetric(a, plan.perm_);
    plan.split_ = split_triangular(permuted);
  } else {
    FBMPK_TSPAN(kPlan, "plan.split");
    plan.perm_ = Permutation::identity(a.rows());
    plan.split_ = split_triangular(a);
  }

  if (opts.parallel && opts.scheduler == Scheduler::kAuto) {
    // Structural probe for the unmeasured build path: level scheduling
    // wins when the dependency levels are wide enough to keep every
    // thread busy without ABMC's recoloring barriers; long narrow
    // chains favor ABMC (docs/PARALLELISM.md §choosing-a-scheduler).
    // build_autotuned_plan replaces this with a measured race
    // (autotune_scheduler). Plans never carry kAuto past this point.
    FBMPK_TSPAN(kPlan, "plan.scheduler_probe");
    if (!opts.reorder) {
      opts.scheduler = Scheduler::kLevels;  // ABMC needs the reorder
    } else {
      const index_t threads = opts.sweep.threads > 0
                                  ? opts.sweep.threads
                                  : static_cast<index_t>(max_threads());
      const index_t nl = forward_levels(plan.split_.lower).num_levels;
      const double mean_width =
          static_cast<double>(plan.n_) / static_cast<double>(std::max<index_t>(nl, 1));
      opts.scheduler = mean_width >= 4.0 * static_cast<double>(threads)
                           ? Scheduler::kLevels
                           : Scheduler::kAbmc;
    }
    plan.opts_.scheduler = opts.scheduler;
  } else if (opts.scheduler == Scheduler::kAuto) {
    // Serial plans never consult the scheduler; resolve to the default
    // so persisted options stay concrete.
    opts.scheduler = Scheduler::kAbmc;
    plan.opts_.scheduler = opts.scheduler;
  }

  if (opts.parallel && opts.scheduler == Scheduler::kLevels) {
    FBMPK_TSPAN(kPlan, "plan.levels");
    plan.levels_ = LevelSchedulePair::of(plan.split_);
    plan.stats_.num_levels_forward = plan.levels_.forward.num_levels;
    plan.stats_.num_levels_backward = plan.levels_.backward.num_levels;
    if (opts.sweep.sync == SweepSync::kPointToPoint) {
      FBMPK_TSPAN(kPlan, "plan.level_blocking");
      const index_t threads = opts.sweep.threads > 0
                                  ? opts.sweep.threads
                                  : static_cast<index_t>(max_threads());
      plan.level_sweep_schedule_ =
          build_level_sweep_schedule(plan.levels_, plan.split_, threads);
      plan.stats_.sweep_threads = threads;
      FBMPK_TGAUGE("plan.partition_imbalance_ppm",
                   level_imbalance_ppm(plan.level_sweep_schedule_));
    }
  }

  if (opts.parallel && opts.scheduler == Scheduler::kAbmc &&
      opts.sweep.sync == SweepSync::kPointToPoint) {
    FBMPK_TSPAN(kPlan, "plan.sweep_schedule");
    const index_t threads = opts.sweep.threads > 0
                                ? opts.sweep.threads
                                : static_cast<index_t>(max_threads());
    plan.sweep_schedule_ =
        build_sweep_schedule(plan.schedule_, plan.split_, threads);
    plan.stats_.sweep_threads = threads;
    FBMPK_TGAUGE("plan.partition_imbalance_ppm",
                 schedule_imbalance_ppm(plan.sweep_schedule_));
  }

  if (opts.index_compress) {
    FBMPK_TSPAN(kPlan, "plan.pack_index");
    plan.packed_.lower = PackedTriangleIndex::build(plan.split_.lower);
    plan.packed_.upper = PackedTriangleIndex::build(plan.split_.upper);
    plan.stats_.packed_index_bytes = plan.packed_.index_bytes();
  }
  if (opts.value_precision != ValuePrecision::kFp64) {
    FBMPK_TSPAN(kPlan, "plan.pack_values");
    const auto lv = std::span<const double>(plan.split_.lower.values());
    const auto uv = std::span<const double>(plan.split_.upper.values());
    const auto dv = std::span<const double>(plan.split_.diag);
    FBMPK_CHECK_CODE(
        values_fit_fp32(lv) && values_fit_fp32(uv) && values_fit_fp32(dv),
        ErrorCode::kUnsupported,
        "matrix values exceed float range; "
            << precision_name(opts.value_precision)
            << " storage needs every value finite and within float range");
    plan.values_.precision = opts.value_precision;
    plan.values_.lower =
        PackedTriangleValues::build(lv, opts.value_precision);
    plan.values_.upper =
        PackedTriangleValues::build(uv, opts.value_precision);
    plan.values_.diag = PackedTriangleValues::build(dv, opts.value_precision);
    plan.stats_.packed_value_bytes = plan.values_.value_bytes();
  }
  // Resolve the executing backend now so an impossible explicit request
  // fails at build, not at the first power() call. kAuto goes through
  // the CPUID probe.
  if (opts.kernel_backend != KernelBackend::kAuto)
    FBMPK_CHECK_CODE(backend_available(opts.kernel_backend),
                     ErrorCode::kUnsupported,
                     "kernel backend "
                         << backend_name(opts.kernel_backend)
                         << " is not available on this CPU");
  plan.resolved_backend_ = resolve_backend(opts.kernel_backend);

  plan.stats_.storage_bytes = plan.split_.storage_bytes();
  plan.internal_ws_ = std::make_unique<Workspace>();
  plan.stats_.build_seconds = total.seconds();
  FBMPK_TCOUNT("plan.builds", 1);
  FBMPK_TGAUGE("plan.num_blocks", plan.stats_.num_blocks);
  FBMPK_TGAUGE("plan.num_colors", plan.stats_.num_colors);
  FBMPK_TGAUGE("plan.scheduler",
               plan.opts_.scheduler == Scheduler::kLevels ? 1 : 0);
  return plan;
}

DispatchRows MpkPlan::dispatch_rows() const {
  return make_dispatch_rows(split_,
                            opts_.index_compress ? &packed_ : nullptr,
                            &values_, row_kernels(resolved_backend_),
                            opts_.prefetch_dist);
}

bool tuned_config_stale(const TunedConfig& cfg, index_t runtime_threads) {
  if (!cfg.valid) return false;
  if (!backend_available(cfg.backend)) return true;
  return cfg.tuned_threads != runtime_threads;
}

void MpkPlan::run_power(std::span<const double> px, int k,
                        std::span<double> py, Workspace& ws) const {
  if (use_dispatch()) {
    const DispatchRows rows = dispatch_rows();
    if (!opts_.parallel) {
      fbmpk_power_fast(split_, rows, px, k, py, ws.fb);
      return;
    }
    if (k == 0) {
      std::copy(px.begin(), px.end(), py.begin());
      return;
    }
    double* yp = py.data();
    auto emit = [&](int p, index_t i, double v) {
      if (p == k) yp[i] = v;
    };
    if (opts_.scheduler == Scheduler::kLevels) {
      if (use_level_engine())
        fbmpk_level_engine_sweep_rows(split_, levels_, level_sweep_schedule_,
                                      rows, px, k, ws.sweep, emit,
                                      opts_.sweep.pin_threads);
      else
        fbmpk_level_sweep_rows(split_, levels_, rows, px, k, ws.fb, emit);
    } else if (use_engine())
      fbmpk_engine_sweep_rows(split_, schedule_, sweep_schedule_, rows, px, k,
                              ws.sweep, emit, opts_.sweep.pin_threads);
    else
      fbmpk_parallel_sweep_rows(split_, schedule_, rows, px, k, ws.fb, emit);
    return;
  }
  if (!opts_.parallel) {
    fbmpk_power(split_, px, k, py, ws.fb, opts_.variant);
    return;
  }
  if (opts_.scheduler == Scheduler::kLevels) {
    if (use_level_engine())
      fbmpk_level_engine_power(split_, levels_, level_sweep_schedule_, px, k,
                               py, ws.sweep, opts_.sweep.pin_threads);
    else
      fbmpk_level_power(split_, levels_, px, k, py, ws.fb);
  } else if (use_engine())
    fbmpk_engine_power(split_, schedule_, sweep_schedule_, px, k, py,
                       ws.sweep, opts_.sweep.pin_threads);
  else
    fbmpk_parallel_power(split_, schedule_, px, k, py, ws.fb);
}

void MpkPlan::run_power_path(std::span<const double> px, int k,
                             std::span<double> py, Workspace& ws,
                             ExecPath path, RunControl* ctl) const {
  if (k == 0) {
    std::copy(px.begin(), px.end(), py.begin());
    return;
  }
  double* yp = py.data();
  auto emit = [&](int p, index_t i, double v) {
    if (p == k) yp[i] = v;
  };

  if (path == ExecPath::kSerial || !opts_.parallel) {
    // Serial sweeps run outside any parallel region, so cancellation
    // can safely unwind via a typed Error from the emit wrapper. The
    // token is polled per row (one relaxed load); the heartbeat /
    // stall checkpoint fires once per k boundary.
    int last_p = 0;
    auto cemit = [&](int p, index_t i, double v) {
      if (ctl != nullptr) {
        if (p != last_p) {
          last_p = p;
          (void)ctl->checkpoint();
        }
        if (ctl->cancelled())
          throw Error(ctl->cancel_reason(), "serial sweep cancelled");
      }
      emit(p, i, v);
    };
    if (use_dispatch())
      fbmpk_sweep_btb_fast(split_, dispatch_rows(), px, k, ws.fb, cemit);
    else
      fbmpk_sweep(split_, px, k, ws.fb, cemit, opts_.variant);
    return;
  }
  if (opts_.scheduler == Scheduler::kLevels) {
    // Scheduler-polymorphic rungs: kEngine forces the level engine,
    // kBarrier the per-level barrier kernel (both poll ctl at stage
    // boundaries). kDefault follows the plan's sync option.
    const bool lengine = path == ExecPath::kEngine ||
                         (path == ExecPath::kDefault && use_level_engine());
    if (use_dispatch()) {
      const DispatchRows rows = dispatch_rows();
      if (lengine)
        fbmpk_level_engine_sweep_rows(split_, levels_, level_sweep_schedule_,
                                      rows, px, k, ws.sweep, emit,
                                      opts_.sweep.pin_threads, ctl);
      else
        fbmpk_level_sweep_rows(split_, levels_, rows, px, k, ws.fb, emit,
                               ctl);
    } else if (lengine) {
      fbmpk_level_engine_sweep_rows(split_, levels_, level_sweep_schedule_,
                                    ScalarRows<double>(split_), px, k,
                                    ws.sweep, emit, opts_.sweep.pin_threads,
                                    ctl);
    } else {
      fbmpk_level_sweep_rows(split_, levels_, ScalarRows<double>(split_), px,
                             k, ws.fb, emit, ctl);
    }
    return;
  }
  const bool engine = path == ExecPath::kEngine ||
                      (path == ExecPath::kDefault && use_engine());
  if (use_dispatch()) {
    const DispatchRows rows = dispatch_rows();
    if (engine)
      fbmpk_engine_sweep_rows(split_, schedule_, sweep_schedule_, rows, px, k,
                              ws.sweep, emit, opts_.sweep.pin_threads, ctl);
    else
      fbmpk_parallel_sweep_rows(split_, schedule_, rows, px, k, ws.fb, emit,
                                ctl);
  } else if (engine) {
    fbmpk_engine_sweep_rows(split_, schedule_, sweep_schedule_,
                            ScalarRows<double>(split_), px, k, ws.sweep, emit,
                            opts_.sweep.pin_threads, ctl);
  } else {
    fbmpk_parallel_sweep(split_, schedule_, px, k, ws.fb, emit, ctl);
  }
}

Status MpkPlan::try_power(std::span<const double> x, int k,
                          std::span<double> y, Workspace& ws, ExecPath path,
                          RunControl* ctl) const {
  try {
    FBMPK_CHECK(x.size() == static_cast<std::size_t>(n_));
    FBMPK_CHECK(y.size() == static_cast<std::size_t>(n_));
    FBMPK_CHECK(k >= 0);
    if (path == ExecPath::kEngine || path == ExecPath::kBarrier) {
      // Scheduler-polymorphic rungs: the override needs whichever
      // schedule structure the plan's scheduler uses.
      const bool levels = opts_.scheduler == Scheduler::kLevels;
      FBMPK_CHECK_CODE(
          opts_.parallel &&
              (levels ? levels_.forward.num_levels > 0
                      : !schedule_.block_ptr.empty()),
          ErrorCode::kUnsupported,
          "engine/barrier execution override needs a scheduled parallel "
          "plan");
      FBMPK_CHECK_CODE(
          path != ExecPath::kEngine ||
              (levels ? use_level_engine() : use_engine()),
          ErrorCode::kUnsupported,
          "plan carries no point-to-point sweep schedule");
    }
    if (ctl != nullptr && ctl->cancelled())
      return Status(FBMPK_MAKE_ERROR(ctl->cancel_reason(),
                                     "request cancelled before execution"));
    FBMPK_TSPAN_ARGS(kSweep, "plan.try_power", {.k = k});

    if (perm_.is_identity()) {
      run_power_path(x, k, y, ws, path, ctl);
    } else {
      ws.px.resize(x.size());
      ws.py.resize(y.size());
      permute_vector<double>(perm_, x, ws.px);
      run_power_path(ws.px, k, ws.py, ws, path, ctl);
      if (ctl == nullptr || !ctl->cancelled())
        unpermute_vector<double>(perm_, ws.py, y);
    }
    if (ctl != nullptr && ctl->cancelled())
      return Status(FBMPK_MAKE_ERROR(ctl->cancel_reason(),
                                     "sweep cancelled at a stage boundary"));
    return Status();
  } catch (const Error& e) {
    return Status(e);
  } catch (const std::bad_alloc&) {
    return Status(FBMPK_MAKE_ERROR(ErrorCode::kResourceLimit,
                                   "allocation failed during sweep"));
  }
}

/// One B-wide chunk of a batched power: gather lanes straight from the
/// request buffers (permutation applied inline), run the pipeline over
/// Pack<double, B> iterates, scatter each lane's final power straight
/// back to its ys[b]. Workspaces are per-call: the batched iterate
/// array is a different shape per B, so sharing the plan Workspace
/// would thrash its single-vector buffers.
template <int B>
Status MpkPlan::run_power_batch_chunk(const double* const* xs, int k,
                                      double* const* ys, ExecPath path,
                                      RunControl* ctl) const {
  using P = Pack<double, B>;
  const Permutation* perm = perm_.is_identity() ? nullptr : &perm_;
  const BatchX0<B> x0{xs, perm, n_};
  auto emit = [&](int p, index_t i, const P& v) {
    if (p != k) return;
    const index_t dst = perm == nullptr ? i : perm->old_of(i);
    for (int b = 0; b < B; ++b) ys[b][dst] = v.v[b];
  };

  if (path == ExecPath::kSerial || !opts_.parallel) {
    // Serial batched sweep. Cancellation unwinds via a typed Error from
    // the emit wrapper, as in run_power_path.
    FbWorkspace<P> fbws;
    int last_p = 0;
    auto cemit = [&](int p, index_t i, const P& v) {
      if (ctl != nullptr) {
        if (p != last_p) {
          last_p = p;
          (void)ctl->checkpoint();
        }
        if (ctl->cancelled())
          throw Error(ctl->cancel_reason(), "batched serial sweep cancelled");
      }
      emit(p, i, v);
    };
    if (use_dispatch())
      fbmpk_sweep_btb_fast(split_,
                           make_batch_dispatch_rows<B>(
                               split_, opts_.index_compress ? &packed_ : nullptr,
                               &values_, batch_row_kernels(resolved_backend_),
                               opts_.prefetch_dist),
                           x0, k, fbws, cemit);
    else
      fbmpk_sweep_btb_fast(split_, BatchScalarRows<B>(split_), x0, k, fbws,
                           cemit);
    return Status();
  }

  const bool levels = opts_.scheduler == Scheduler::kLevels;
  const bool engine =
      path == ExecPath::kEngine ||
      (path == ExecPath::kDefault &&
       (levels ? use_level_engine() : use_engine()));
  const auto run = [&](const auto& rows) {
    if (engine) {
      SweepWorkspace<P> swws;
      // Per-call workspace: skip the NUMA warm pass (the matrix arrays
      // are typically resident from prior single-vector runs, and the
      // head stage first-touches xy regardless).
      swws.resize(n_);
      swws.warmed = true;
      if (levels)
        fbmpk_level_engine_sweep_rows(split_, levels_, level_sweep_schedule_,
                                      rows, x0, k, swws, emit,
                                      opts_.sweep.pin_threads, ctl);
      else
        fbmpk_engine_sweep_rows(split_, schedule_, sweep_schedule_, rows, x0,
                                k, swws, emit, opts_.sweep.pin_threads, ctl);
    } else {
      FbWorkspace<P> fbws;
      if (levels)
        fbmpk_level_sweep_rows(split_, levels_, rows, x0, k, fbws, emit, ctl);
      else
        fbmpk_parallel_sweep_rows(split_, schedule_, rows, x0, k, fbws, emit,
                                  ctl);
    }
  };
  if (use_dispatch())
    run(make_batch_dispatch_rows<B>(
        split_, opts_.index_compress ? &packed_ : nullptr, &values_,
        batch_row_kernels(resolved_backend_), opts_.prefetch_dist));
  else
    run(BatchScalarRows<B>(split_));
  return Status();
}

Status MpkPlan::try_power_batch(const double* const* xs, index_t nvec, int k,
                                double* const* ys, ExecPath path,
                                RunControl* ctl) const {
  try {
    FBMPK_CHECK(xs != nullptr && ys != nullptr);
    FBMPK_CHECK(nvec >= 1);
    FBMPK_CHECK(k >= 0);
    if (path == ExecPath::kEngine || path == ExecPath::kBarrier) {
      const bool levels = opts_.scheduler == Scheduler::kLevels;
      FBMPK_CHECK_CODE(
          opts_.parallel &&
              (levels ? levels_.forward.num_levels > 0
                      : !schedule_.block_ptr.empty()),
          ErrorCode::kUnsupported,
          "engine/barrier execution override needs a scheduled parallel "
          "plan");
      FBMPK_CHECK_CODE(
          path != ExecPath::kEngine ||
              (levels ? use_level_engine() : use_engine()),
          ErrorCode::kUnsupported,
          "plan carries no point-to-point sweep schedule");
    }
    if (ctl != nullptr && ctl->cancelled())
      return Status(FBMPK_MAKE_ERROR(ctl->cancel_reason(),
                                     "request cancelled before execution"));
    FBMPK_TSPAN_ARGS(kSweep, "plan.try_power_batch", {.k = k});

    if (k == 0) {
      for (index_t b = 0; b < nvec; ++b)
        std::copy(xs[b], xs[b] + n_, ys[b]);
      return Status();
    }

    index_t done = 0;
    while (done < nvec) {
      const index_t rem = nvec - done;
      Status st;
      index_t width;
      if (rem >= 16) {
        width = 16;
        st = run_power_batch_chunk<16>(xs + done, k, ys + done, path, ctl);
      } else if (rem >= 8) {
        width = 8;
        st = run_power_batch_chunk<8>(xs + done, k, ys + done, path, ctl);
      } else if (rem >= 4) {
        width = 4;
        st = run_power_batch_chunk<4>(xs + done, k, ys + done, path, ctl);
      } else if (rem >= 2) {
        width = 2;
        st = run_power_batch_chunk<2>(xs + done, k, ys + done, path, ctl);
      } else {
        // Width 1 stays on the batch kernels (not try_power): the
        // per-lane contract is "bitwise equal to the exact scalar
        // accumulation order", and the single-vector path of a SIMD
        // backend uses its own reduction shape.
        width = 1;
        st = run_power_batch_chunk<1>(xs + done, k, ys + done, path, ctl);
      }
      if (!st.ok()) return st;
      if (ctl != nullptr && ctl->cancelled())
        return Status(FBMPK_MAKE_ERROR(
            ctl->cancel_reason(), "batched sweep cancelled at a chunk boundary"));
      done += width;
    }
    return Status();
  } catch (const Error& e) {
    return Status(e);
  } catch (const std::bad_alloc&) {
    return Status(FBMPK_MAKE_ERROR(ErrorCode::kResourceLimit,
                                   "allocation failed during batched sweep"));
  }
}

void MpkPlan::run_power_all(std::span<const double> px, int k,
                            std::span<double> pout, Workspace& ws) const {
  const auto n = px.size();
  std::copy(px.begin(), px.end(), pout.begin());
  if (k == 0) return;
  double* op = pout.data();
  auto emit = [&](int p, index_t i, double v) {
    op[static_cast<std::size_t>(p) * n + i] = v;
  };
  if (use_dispatch()) {
    const DispatchRows rows = dispatch_rows();
    if (!opts_.parallel)
      fbmpk_sweep_btb_fast(split_, rows, px, k, ws.fb, emit);
    else if (opts_.scheduler == Scheduler::kLevels) {
      if (use_level_engine())
        fbmpk_level_engine_sweep_rows(split_, levels_, level_sweep_schedule_,
                                      rows, px, k, ws.sweep, emit,
                                      opts_.sweep.pin_threads);
      else
        fbmpk_level_sweep_rows(split_, levels_, rows, px, k, ws.fb, emit);
    } else if (use_engine())
      fbmpk_engine_sweep_rows(split_, schedule_, sweep_schedule_, rows, px, k,
                              ws.sweep, emit, opts_.sweep.pin_threads);
    else
      fbmpk_parallel_sweep_rows(split_, schedule_, rows, px, k, ws.fb, emit);
    return;
  }
  if (!opts_.parallel)
    fbmpk_sweep(split_, px, k, ws.fb, emit, opts_.variant);
  else if (opts_.scheduler == Scheduler::kLevels) {
    if (use_level_engine())
      fbmpk_level_engine_sweep(split_, levels_, level_sweep_schedule_, px, k,
                               ws.sweep, emit, opts_.sweep.pin_threads);
    else
      fbmpk_level_sweep(split_, levels_, px, k, ws.fb, emit);
  } else if (use_engine())
    fbmpk_engine_sweep(split_, schedule_, sweep_schedule_, px, k, ws.sweep,
                       emit, opts_.sweep.pin_threads);
  else
    fbmpk_parallel_sweep(split_, schedule_, px, k, ws.fb, emit);
}

void MpkPlan::run_polynomial(std::span<const double> coeffs,
                             std::span<const double> px,
                             std::span<double> py, Workspace& ws) const {
  const int k = static_cast<int>(coeffs.size()) - 1;
  for (std::size_t i = 0; i < py.size(); ++i) py[i] = coeffs[0] * px[i];
  if (k == 0) return;
  double* yp = py.data();
  const double* cp = coeffs.data();
  auto emit = [&](int p, index_t i, double v) { yp[i] += cp[p] * v; };
  if (use_dispatch()) {
    const DispatchRows rows = dispatch_rows();
    if (!opts_.parallel)
      fbmpk_sweep_btb_fast(split_, rows, px, k, ws.fb, emit);
    else if (opts_.scheduler == Scheduler::kLevels) {
      if (use_level_engine())
        fbmpk_level_engine_sweep_rows(split_, levels_, level_sweep_schedule_,
                                      rows, px, k, ws.sweep, emit,
                                      opts_.sweep.pin_threads);
      else
        fbmpk_level_sweep_rows(split_, levels_, rows, px, k, ws.fb, emit);
    } else if (use_engine())
      fbmpk_engine_sweep_rows(split_, schedule_, sweep_schedule_, rows, px, k,
                              ws.sweep, emit, opts_.sweep.pin_threads);
    else
      fbmpk_parallel_sweep_rows(split_, schedule_, rows, px, k, ws.fb, emit);
    return;
  }
  if (!opts_.parallel)
    fbmpk_sweep(split_, px, k, ws.fb, emit, opts_.variant);
  else if (opts_.scheduler == Scheduler::kLevels) {
    if (use_level_engine())
      fbmpk_level_engine_sweep(split_, levels_, level_sweep_schedule_, px, k,
                               ws.sweep, emit, opts_.sweep.pin_threads);
    else
      fbmpk_level_sweep(split_, levels_, px, k, ws.fb, emit);
  } else if (use_engine())
    fbmpk_engine_sweep(split_, schedule_, sweep_schedule_, px, k, ws.sweep,
                       emit, opts_.sweep.pin_threads);
  else
    fbmpk_parallel_sweep(split_, schedule_, px, k, ws.fb, emit);
}

void MpkPlan::power(std::span<const double> x, int k, std::span<double> y,
                    Workspace& ws) const {
  FBMPK_CHECK(x.size() == static_cast<std::size_t>(n_));
  FBMPK_CHECK(y.size() == static_cast<std::size_t>(n_));
  FBMPK_CHECK(k >= 0);
  FBMPK_TSPAN_ARGS(kSweep, "plan.power", {.k = k});
  FBMPK_TCOUNT("plan.power_calls", 1);
  if (perm_.is_identity()) {
    run_power(x, k, y, ws);
    return;
  }
  ws.px.resize(x.size());
  ws.py.resize(y.size());
  permute_vector<double>(perm_, x, ws.px);
  run_power(ws.px, k, ws.py, ws);
  unpermute_vector<double>(perm_, ws.py, y);
}

void MpkPlan::power(std::span<const double> x, int k, std::span<double> y) {
  power(x, k, y, *internal_ws_);
}

void MpkPlan::power_all(std::span<const double> x, int k,
                        std::span<double> out, Workspace& ws) const {
  const auto n = static_cast<std::size_t>(n_);
  FBMPK_CHECK(x.size() == n);
  FBMPK_CHECK(out.size() == n * static_cast<std::size_t>(k + 1));
  FBMPK_CHECK(k >= 0);
  FBMPK_TSPAN_ARGS(kSweep, "plan.power_all", {.k = k});
  FBMPK_TCOUNT("plan.power_all_calls", 1);
  if (perm_.is_identity()) {
    run_power_all(x, k, out, ws);
    return;
  }
  ws.px.resize(n);
  ws.py.resize(n * static_cast<std::size_t>(k + 1));
  permute_vector<double>(perm_, x, ws.px);
  std::span<double> pout(ws.py);
  run_power_all(std::span<const double>(ws.px), k, pout, ws);
  for (int p = 0; p <= k; ++p)
    unpermute_vector<double>(perm_,
                             pout.subspan(static_cast<std::size_t>(p) * n, n),
                             out.subspan(static_cast<std::size_t>(p) * n, n));
}

void MpkPlan::power_all(std::span<const double> x, int k,
                        std::span<double> out) {
  power_all(x, k, out, *internal_ws_);
}

void MpkPlan::polynomial(std::span<const double> coeffs,
                         std::span<const double> x, std::span<double> y,
                         Workspace& ws) const {
  const auto n = static_cast<std::size_t>(n_);
  FBMPK_CHECK(x.size() == n && y.size() == n);
  FBMPK_CHECK(!coeffs.empty());
  FBMPK_TSPAN_ARGS(kSweep, "plan.polynomial",
                   {.k = static_cast<int>(coeffs.size()) - 1});
  if (perm_.is_identity()) {
    run_polynomial(coeffs, x, y, ws);
    return;
  }
  ws.px.resize(n);
  ws.py.resize(n);
  permute_vector<double>(perm_, x, ws.px);
  std::span<double> py(ws.py);
  run_polynomial(coeffs, std::span<const double>(ws.px), py, ws);
  unpermute_vector<double>(perm_, py, y);
}

void MpkPlan::polynomial(std::span<const double> coeffs,
                         std::span<const double> x, std::span<double> y) {
  polynomial(coeffs, x, y, *internal_ws_);
}

KernelStatus MpkPlan::recurrence(std::span<const RecurrenceStep<double>> steps,
                                 std::span<const double> x,
                                 std::span<double> y, Workspace& ws) const {
  const auto n = static_cast<std::size_t>(n_);
  FBMPK_CHECK(x.size() == n && y.size() == n);
  FBMPK_CHECK(!steps.empty());
  const int k = static_cast<int>(steps.size());

  // Breakdown detection up front: a non-finite input or coefficient
  // would NaN-poison every row of the sweep.
  for (const auto& st : steps)
    if (!std::isfinite(st.alpha) || !std::isfinite(st.beta) ||
        !std::isfinite(st.gamma))
      return KernelStatus::breakdown(-1, "non-finite recurrence coefficient");
  if (auto st = check_finite(x, "non-finite input vector"); !st.ok)
    return st;

  auto run = [&](std::span<const double> px, std::span<double> py) {
    double* yp = py.data();
    auto emit = [&](int p, index_t i, double v) {
      if (p == k) yp[i] = v;
    };
    if (opts_.parallel)
      // The level scheduler has no recurrence kernel; the ABMC schedule
      // is always available on parallel plans built with it disabled…
      // for kLevels plans fall back to the serial sweep (identical
      // numerics, no parallelism).
      if (opts_.scheduler == Scheduler::kAbmc)
        fbmpk_recurrence_parallel_sweep(split_, schedule_, steps, px, ws.fb,
                                        emit);
      else
        fbmpk_recurrence_sweep(split_, steps, px, ws.fb, emit);
    else
      fbmpk_recurrence_sweep(split_, steps, px, ws.fb, emit);
  };

  if (perm_.is_identity()) {
    run(x, y);
  } else {
    ws.px.resize(n);
    ws.py.resize(n);
    permute_vector<double>(perm_, x, ws.px);
    run(std::span<const double>(ws.px), std::span<double>(ws.py));
    unpermute_vector<double>(perm_, std::span<const double>(ws.py), y);
  }
  return check_finite(std::span<const double>(y.data(), y.size()),
                      "non-finite recurrence iterate");
}

KernelStatus MpkPlan::recurrence(std::span<const RecurrenceStep<double>> steps,
                                 std::span<const double> x,
                                 std::span<double> y) {
  return recurrence(steps, x, y, *internal_ws_);
}

void MpkPlan::polynomial(std::span<const std::complex<double>> coeffs,
                         std::span<const double> x,
                         std::span<std::complex<double>> y,
                         Workspace& ws) const {
  const auto n = static_cast<std::size_t>(n_);
  FBMPK_CHECK(x.size() == n && y.size() == n);
  FBMPK_CHECK(!coeffs.empty());
  const int k = static_cast<int>(coeffs.size()) - 1;

  // Work in the permuted space; y is accumulated there and unpermuted
  // at the end (permuting complex vectors directly avoids a third
  // scratch array).
  std::span<const double> px = x;
  if (!perm_.is_identity()) {
    ws.px.resize(n);
    permute_vector<double>(perm_, x, ws.px);
    px = std::span<const double>(ws.px);
  }

  std::vector<std::complex<double>> acc(n);
  for (std::size_t i = 0; i < n; ++i) acc[i] = coeffs[0] * px[i];
  if (k >= 1) {
    const std::complex<double>* cp = coeffs.data();
    auto emit = [&](int p, index_t i, double v) { acc[i] += cp[p] * v; };
    if (use_dispatch()) {
      const DispatchRows rows = dispatch_rows();
      if (!opts_.parallel)
        fbmpk_sweep_btb_fast(split_, rows, px, k, ws.fb, emit);
      else if (opts_.scheduler == Scheduler::kLevels)
        fbmpk_level_sweep_rows(split_, levels_, rows, px, k, ws.fb, emit);
      else
        fbmpk_parallel_sweep_rows(split_, schedule_, rows, px, k, ws.fb,
                                  emit);
    } else if (!opts_.parallel)
      fbmpk_sweep(split_, px, k, ws.fb, emit, opts_.variant);
    else if (opts_.scheduler == Scheduler::kLevels)
      fbmpk_level_sweep(split_, levels_, px, k, ws.fb, emit);
    else
      fbmpk_parallel_sweep(split_, schedule_, px, k, ws.fb, emit);
  }

  if (perm_.is_identity())
    std::copy(acc.begin(), acc.end(), y.begin());
  else
    unpermute_vector<std::complex<double>>(
        perm_, std::span<const std::complex<double>>(acc), y);
}

void MpkPlan::polynomial(std::span<const std::complex<double>> coeffs,
                         std::span<const double> x,
                         std::span<std::complex<double>> y) {
  polynomial(coeffs, x, y, *internal_ws_);
}

}  // namespace fbmpk
