// Binary serialization of MpkPlan — the "offline preprocessing" the
// paper's methodology assumes (§IV-C: the split/reorder "can often be
// performed offline when storing the matrix data", §V-F: one-off cost).
//
// Format: little-endian native POD dump with a magic/version header;
// intended for same-architecture reload of a stored plan, not as an
// interchange format. save/load round-trips every run-relevant field
// (split triangles, diagonal, permutation, ABMC schedule, level
// schedules, options).
#pragma once

#include <iosfwd>
#include <string>

#include "core/plan.hpp"

namespace fbmpk {

/// Serialize a built plan.
void save_plan(const MpkPlan& plan, std::ostream& out);
void save_plan_file(const MpkPlan& plan, const std::string& path);

/// Reconstruct a plan. Throws fbmpk::Error on bad magic, version
/// mismatch, or truncated/corrupt payload.
MpkPlan load_plan(std::istream& in);
MpkPlan load_plan_file(const std::string& path);

}  // namespace fbmpk
