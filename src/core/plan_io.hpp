// Binary serialization of MpkPlan — the "offline preprocessing" the
// paper's methodology assumes (§IV-C: the split/reorder "can often be
// performed offline when storing the matrix data", §V-F: one-off cost).
//
// Format v2 (docs/ROBUSTNESS.md): little-endian native dump with a
// magic/version header, a CRC32 over the whole payload, and per-section
// length framing. Intended for same-architecture reload of a stored
// plan, not as an interchange format. save/load round-trips every
// run-relevant field (split triangles, diagonal, permutation, ABMC
// schedule, level schedules, options).
//
// Plan files are persistent artifacts and therefore untrusted input:
// deserialization bounds-checks every read, range-validates every
// enum and bool, and verifies the checksum before parsing, so a
// truncated or bit-flipped file always fails with a typed Error
// (ErrorCode::kCorruptPlan / kVersionMismatch) and never reaches
// undefined behavior. Pre-checksum (v1) streams are rejected with
// kVersionMismatch.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/plan.hpp"

namespace fbmpk {

/// Serialize a built plan (format v2, checksummed).
void save_plan(const MpkPlan& plan, std::ostream& out);
void save_plan_file(const MpkPlan& plan, const std::string& path);

/// Reconstruct a plan. Throws fbmpk::Error with kCorruptPlan on bad
/// magic, checksum or framing violations, kVersionMismatch on a v1 or
/// foreign-index-width file, kIo when the file cannot be opened.
MpkPlan load_plan(std::istream& in);
MpkPlan load_plan_file(const std::string& path);

/// Non-throwing variants: the Error that load_plan would throw is
/// returned in the Expected instead, so ingestion pipelines can branch
/// on Expected::code() (e.g. retry kIo, regenerate on kVersionMismatch,
/// quarantine on kCorruptPlan) without exception plumbing.
Expected<MpkPlan> try_load_plan(std::istream& in);
Expected<MpkPlan> try_load_plan_file(const std::string& path);

/// Process-wide cap on the payload size load_plan will buffer, checked
/// against the header's claimed length *before* any allocation — a
/// corrupt length field fails typed (kResourceLimit over the cap,
/// kCorruptPlan past the structural plausibility bound) instead of
/// driving the process into bad_alloc/OOM. Default 64 GiB; serving
/// deployments lower it to their artifact budget. The file-based
/// loaders additionally reject any header whose claimed payload
/// disagrees with the actual file size before reading a single payload
/// byte.
void set_plan_payload_cap(std::uint64_t bytes);
std::uint64_t plan_payload_cap();

}  // namespace fbmpk
