// Umbrella header: include this to use the FBMPK library.
#pragma once

#include "core/autotune.hpp"            // ABMC block-count autotuning
#include "core/plan.hpp"                // MpkPlan — the public API
#include "core/plan_io.hpp"             // plan save/load (offline preprocessing)
#include "gen/kkt.hpp"                  // KKT saddle-point generator
#include "gen/random_sparse.hpp"        // unstructured generators
#include "gen/stencil.hpp"              // structured-grid generators
#include "gen/suite.hpp"                // evaluation-suite generators
#include "kernels/dispatch.hpp"         // runtime row-kernel backends
#include "kernels/fb_simd.hpp"          // fast-mode (dispatched) sweeps
#include "kernels/fbmpk.hpp"            // serial FBMPK kernels
#include "kernels/fbmpk_parallel.hpp"   // color-scheduled parallel FBMPK
#include "kernels/mpk_baseline.hpp"     // standard MPK baseline
#include "kernels/spmv.hpp"             // SpMV kernels
#include "kernels/symgs.hpp"            // symmetric Gauss-Seidel sweeps
#include "reorder/abmc.hpp"             // ABMC ordering
#include "reorder/level_schedule.hpp"   // level scheduling
#include "reorder/rcm.hpp"              // RCM ordering
#include "sparse/csr.hpp"               // CSR storage
#include "sparse/mm_io.hpp"             // Matrix Market I/O
#include "sparse/packed_tri.hpp"        // band-compressed column indices
#include "sparse/sell.hpp"              // SELL-C-sigma format
#include "sparse/split.hpp"             // triangular split
#include "solvers/solvers.hpp"          // CG/PCG, Chebyshev, multigrid, eigen
