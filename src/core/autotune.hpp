// Empirical autotuning of the ABMC block count.
//
// The paper exposes the block count as a user knob ("a trade-off
// between performance and parallelism", §III-D) with a default of 512
// or 1024. Since the best value depends on the matrix, the thread
// count and the power k, this module measures a small candidate sweep
// on the actual kernel and returns the winner — a one-off cost in the
// same amortized-preprocessing budget as the reorder itself (§V-F).
//
// Model-guided pruning (docs/AUTOTUNING.md): timing every candidate is
// the dominant cost when plans are built on a serving cache miss, so
// both sweeps can first *score* every candidate with the sampled
// cache-simulator replay (perf/sweep_replay) and time only the top-K
// by predicted DRAM traffic. The full sample table is still returned —
// pruned candidates carry their prediction and `pruned = true`.
#pragma once

#include <span>
#include <vector>

#include "core/plan.hpp"

namespace fbmpk {

/// Knobs of the traffic-oracle pruning pass shared by both sweeps.
struct OracleOptions {
  /// Score candidates with the sampled replay and time only the top
  /// `top_k`. When false (or when the oracle cannot model the
  /// configuration — see docs/AUTOTUNING.md §fallback) every candidate
  /// is timed, as before.
  bool enabled = true;
  /// Survivors to time per sweep. 2 keeps a runner-up so a model
  /// mis-ranking of the top pick still gets caught by measurement.
  int top_k = 2;
  /// Row-sample budget forwarded to perf::ReplayConfig.
  index_t max_sample_rows = 4096;
};

/// One candidate of the block-count sweep. Exactly one of three shapes:
/// measured (`seconds` valid), pruned by the oracle (`pruned`, only
/// `predicted_bytes` valid), or failed (`failed`, `error` holds the
/// typed build error and the candidate is skipped, not fatal).
struct AutotuneSample {
  index_t num_blocks = 0;
  index_t num_colors = 0;
  double seconds = 0.0;       ///< median kernel time for A^k x
  double build_seconds = 0.0; ///< plan construction time
  double predicted_bytes = -1.0;  ///< oracle DRAM estimate (-1 = not scored)
  bool pruned = false;   ///< scored below the top-K; never timed
  bool failed = false;   ///< plan build threw; see `error`
  ErrorCode error = ErrorCode::kInternal;  ///< valid iff `failed`
};

struct AutotuneResult {
  index_t best_blocks = 0;
  double best_seconds = 0.0;
  std::vector<AutotuneSample> samples;  ///< in candidate order
  bool oracle_used = false;        ///< pruning pass actually ran
  index_t candidates_timed = 0;    ///< samples measured end-to-end
  index_t candidates_pruned = 0;   ///< samples skipped on prediction
  /// Winner's 1-based position in the oracle's predicted ranking of the
  /// *timed* survivors (1 = model's top pick won; 0 = oracle unused).
  index_t oracle_rank_of_winner = 0;
  double best_predicted_bytes = 0.0;  ///< winner's prediction (0 = unscored)
};

/// Default candidate ladder around the paper's 512/1024 defaults.
std::span<const index_t> default_block_candidates();

/// Barrier-vs-point-to-point measurement for one matrix.
struct SweepSyncResult {
  SweepSync best = SweepSync::kBarrier;
  double barrier_seconds = 0.0;
  double point_to_point_seconds = 0.0;
};

/// Measure y = A^k x under both sweep synchronization modes (same
/// options otherwise) and pick the faster. Skips the measurement and
/// returns kBarrier for serial plans or a single-thread runtime, where
/// point-to-point cannot win. Both schedulers have a point-to-point
/// engine (the ABMC persistent-threads engine and the level engine),
/// so the race runs for either.
SweepSyncResult autotune_sweep_sync(const CsrMatrix<double>& a, int k,
                                    int reps = 3, PlanOptions base = {});

/// ABMC-vs-level-scheduler race for one matrix (Scheduler::kAuto's
/// measured resolution). Mirrors the oracle-then-time shape of the
/// other sweeps: both schedulers are first *scored* with the sampled
/// replay (perf/sweep_replay — the ABMC replay walks the recolored
/// (color, block) structure, the level replay walks dependency levels
/// over the natural order), then the top-K survivors are timed on real
/// plans and the fastest wins. With the default top_k >= 2 both are
/// always timed (`measured`); top_k == 1 trusts the model and times
/// only its pick.
struct SchedulerRaceResult {
  Scheduler best = Scheduler::kAbmc;
  /// Both schedulers were timed end-to-end (false when one was forced
  /// structurally — serial, or !reorder — or pruned by the oracle).
  bool measured = false;
  double abmc_seconds = 0.0;    ///< median A^k x time (0 = not timed)
  double levels_seconds = 0.0;  ///< median A^k x time (0 = not timed)
  bool oracle_used = false;
  double abmc_predicted_bytes = -1.0;    ///< -1 = not scored
  double levels_predicted_bytes = -1.0;  ///< -1 = not scored
};

/// Race the two parallel schedulers on y = A^k x. Serial plans resolve
/// to kAbmc without measurement; `!base.reorder` forces kLevels (ABMC
/// needs the permutation it is built around, the level scheduler is
/// exactly the no-reorder strategy). `base.scheduler` is ignored — the
/// caller is asking which one to set.
SchedulerRaceResult autotune_scheduler(const CsrMatrix<double>& a, int k,
                                       int reps = 3, PlanOptions base = {},
                                       const OracleOptions& oracle = {});

/// Measure each candidate block count on y = A^k x and pick the
/// fastest. `base` supplies every option except abmc.num_blocks. With
/// the oracle enabled (and `base.reorder` set, so the ABMC structure
/// the model replays actually exists) candidates are first ranked by
/// predicted DRAM traffic and only the top-K timed. Candidates whose
/// plan build throws a typed Error are recorded as failed and skipped;
/// the sweep only throws if *every* candidate fails.
AutotuneResult autotune_block_count(
    const CsrMatrix<double>& a, int k,
    std::span<const index_t> candidates = default_block_candidates(),
    int reps = 3, PlanOptions base = {}, const OracleOptions& oracle = {});

/// One row-kernel configuration candidate; same three shapes as
/// AutotuneSample (measured / pruned / failed).
struct KernelConfigSample {
  KernelBackend backend = KernelBackend::kScalar;
  bool index_compress = false;
  ValuePrecision value_precision = ValuePrecision::kFp64;
  double seconds = 0.0;            ///< median kernel time for A^k x
  std::size_t packed_index_bytes = 0;  ///< sidecar size (0 when plain)
  std::size_t packed_value_bytes = 0;  ///< value sidecar size (0 = fp64)
  double predicted_bytes = -1.0;  ///< oracle DRAM estimate (-1 = not scored)
  bool pruned = false;   ///< scored below the top-K; never timed
  bool failed = false;   ///< plan build threw; see `error`
  ErrorCode error = ErrorCode::kInternal;  ///< valid iff `failed`
};

struct KernelConfigResult {
  KernelBackend best_backend = KernelBackend::kScalar;
  bool best_index_compress = false;
  ValuePrecision best_value_precision = ValuePrecision::kFp64;
  double best_seconds = 0.0;
  std::vector<KernelConfigSample> samples;  ///< in candidate order
  bool oracle_used = false;
  index_t candidates_timed = 0;
  index_t candidates_pruned = 0;
  index_t oracle_rank_of_winner = 0;  ///< as in AutotuneResult
  double best_predicted_bytes = 0.0;
};

/// Measure y = A^k x across row-kernel configurations — the exact
/// scalar backend vs the widest available vector backend, each with
/// plain and band-compressed column indices, and fp64 vs reduced value
/// precision — and pick the fastest. Vector (fast-mode) and fp32
/// candidates are only tried when `allow_fast` is set: both trade the
/// bitwise exact result for a bounded error (docs/KERNELS.md), so the
/// caller must opt in. Split hi/lo storage is *exact-eligible*: when
/// every matrix value survives the hi/lo round-trip, split candidates
/// are measured even without `allow_fast` because the scalar split
/// kernel reproduces the exact result bitwise. Configurations the plan
/// builder rejects (the split variant) are skipped, leaving the
/// scalar/plain baseline; both schedulers dispatch the full candidate
/// set.
KernelConfigResult autotune_kernel_config(const CsrMatrix<double>& a, int k,
                                          int reps = 3, PlanOptions base = {},
                                          bool allow_fast = false,
                                          const OracleOptions& oracle = {});

/// Convenience: build a plan with the autotuned block count, for
/// parallel plans the autotuned sweep synchronization, and — only
/// when `allow_fast_kernels` opts in — the autotuned row-kernel
/// backend / index compression / value precision. When
/// `base.scheduler` is Scheduler::kAuto the ABMC-vs-levels race runs
/// first (autotune_scheduler) and the measured winner is built; the
/// pick, whether it was measured, and the loser's time are persisted
/// in TunedConfig (plan format v7). The winning
/// configuration is recorded on the plan (MpkPlan::tuned_config) and
/// persisted by save_plan, so a reloaded plan knows what was tuned and
/// whether the choice is stale on the loading machine.
/// `base.autotune_oracle` (default on) routes both sweeps through the
/// traffic-oracle pruning; the oracle's predicted-vs-measured ranking
/// is persisted in TunedConfig for staleness checks.
MpkPlan build_autotuned_plan(const CsrMatrix<double>& a, int k,
                             PlanOptions base = {},
                             bool allow_fast_kernels = false);

}  // namespace fbmpk
