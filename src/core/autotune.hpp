// Empirical autotuning of the ABMC block count.
//
// The paper exposes the block count as a user knob ("a trade-off
// between performance and parallelism", §III-D) with a default of 512
// or 1024. Since the best value depends on the matrix, the thread
// count and the power k, this module measures a small candidate sweep
// on the actual kernel and returns the winner — a one-off cost in the
// same amortized-preprocessing budget as the reorder itself (§V-F).
#pragma once

#include <span>
#include <vector>

#include "core/plan.hpp"

namespace fbmpk {

/// One measured candidate.
struct AutotuneSample {
  index_t num_blocks = 0;
  index_t num_colors = 0;
  double seconds = 0.0;       ///< median kernel time for A^k x
  double build_seconds = 0.0; ///< plan construction time
};

struct AutotuneResult {
  index_t best_blocks = 0;
  double best_seconds = 0.0;
  std::vector<AutotuneSample> samples;  ///< in candidate order
};

/// Default candidate ladder around the paper's 512/1024 defaults.
std::span<const index_t> default_block_candidates();

/// Barrier-vs-point-to-point measurement for one matrix.
struct SweepSyncResult {
  SweepSync best = SweepSync::kBarrier;
  double barrier_seconds = 0.0;
  double point_to_point_seconds = 0.0;
};

/// Measure y = A^k x under both sweep synchronization modes (same
/// options otherwise) and pick the faster. Skips the measurement and
/// returns kBarrier for serial plans, the level scheduler, or a
/// single-thread runtime, where point-to-point cannot win.
SweepSyncResult autotune_sweep_sync(const CsrMatrix<double>& a, int k,
                                    int reps = 3, PlanOptions base = {});

/// Measure each candidate block count on y = A^k x and pick the
/// fastest. `base` supplies every option except abmc.num_blocks.
AutotuneResult autotune_block_count(
    const CsrMatrix<double>& a, int k,
    std::span<const index_t> candidates = default_block_candidates(),
    int reps = 3, PlanOptions base = {});

/// Convenience: build a plan with the autotuned block count and, for
/// parallel ABMC plans, the autotuned sweep synchronization.
MpkPlan build_autotuned_plan(const CsrMatrix<double>& a, int k,
                             PlanOptions base = {});

}  // namespace fbmpk
