// MpkPlan — the FBMPK library's public entry point.
//
// Usage:
//   auto plan = fbmpk::MpkPlan::build(A);          // one-off preprocessing
//   plan.power(x, k, y);                           // y = A^k x
//   plan.power_all(x, k, basis);                   // full Krylov basis
//   plan.polynomial(coeffs, x, y);                 // y = sum_i c_i A^i x
//
// build() performs the one-off preprocessing the paper amortizes over
// many kernel invocations (§V-F): ABMC reorder (optional), triangular
// split, and workspace sizing. All run methods operate in the caller's
// original index space — permutation in/out is handled internally.
//
// Thread-safety: a built plan is immutable; concurrent run calls are
// safe when each call uses its own Workspace. The convenience overloads
// without a Workspace argument use a per-plan internal workspace and
// must not be called concurrently on one plan.
#pragma once

#include <complex>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>

#include "kernels/fb_simd.hpp"
#include "kernels/fbmpk.hpp"
#include "kernels/fbmpk_level.hpp"
#include "kernels/fbmpk_level_engine.hpp"
#include "kernels/fbmpk_parallel.hpp"
#include "kernels/fbmpk_recurrence.hpp"
#include "kernels/sweep_schedule.hpp"
#include "sparse/packed_tri.hpp"
#include "reorder/abmc.hpp"
#include "reorder/level_blocking.hpp"
#include "reorder/permutation.hpp"
#include "sparse/csr.hpp"
#include "sparse/split.hpp"
#include "sparse/validate.hpp"

namespace fbmpk {

class MpkPlan;

namespace detail {
/// plan_io.cpp's loader worker; `total_size` (0 = unknown) lets file
/// loads validate the header's claimed payload length against the
/// artifact's real size before buffering anything.
MpkPlan load_plan_impl(std::istream& in, std::uint64_t total_size);
}  // namespace detail

/// How the parallel sweeps are scheduled.
enum class Scheduler {
  kAbmc,    ///< ABMC coloring (paper §III-D): permutes the matrix,
            ///< few barriers (2 x colors per pair)
  kLevels,  ///< level scheduling (paper §VII): original order, no
            ///< permutation; cache-blocked stages with point-to-point
            ///< sync (reorder/level_blocking.hpp), or one barrier per
            ///< dependency level under SweepSync::kBarrier
  kAuto,    ///< resolved at build: a structural probe (mean level
            ///< width vs thread count) in MpkPlan::build, a measured
            ///< pick (autotune_scheduler) in build_autotuned_plan.
            ///< Plans never persist kAuto — the resolved choice is
            ///< stored (docs/PARALLELISM.md §choosing-a-scheduler)
};

/// Human-readable scheduler name: "abmc" | "levels" | "auto".
const char* scheduler_name(Scheduler s);

/// Inverse of scheduler_name; throws kUnsupported on unknown names.
Scheduler parse_scheduler(const std::string& name);

/// Execution-path override for MpkPlan::try_power — the knob the
/// serving layer's degradation ladder turns (docs/SERVICE.md). kDefault
/// runs whatever the plan options selected; the explicit rungs force
/// one concrete sweep implementation. All rungs issue the same per-row
/// kernels, so results are bitwise identical across them for a fixed
/// plan configuration.
/// The rungs are scheduler-polymorphic: on an ABMC plan kEngine /
/// kBarrier mean the color engine / per-color barrier kernel, on a
/// level-scheduled plan the level engine / per-level barrier kernel.
enum class ExecPath {
  kDefault = 0,  ///< the plan's own selection (options-driven)
  kEngine,       ///< persistent-threads p2p engine (needs a schedule)
  kBarrier,      ///< barrier kernel (per color or per level)
  kSerial,       ///< serial sweep (always available)
};

/// How a scheduled parallel sweep synchronizes between units of work
/// (colors under ABMC, level stages under the level scheduler).
enum class SweepSync {
  kBarrier,       ///< one team barrier per color/level per sweep
  kPointToPoint,  ///< persistent threads, per-thread epoch counters,
                  ///< precomputed schedule (docs/PARALLELISM.md)
};

/// Persistent-threads engine options (both schedulers).
struct SweepOptions {
  SweepSync sync = SweepSync::kBarrier;
  /// Thread count the schedule is built for; 0 means the runtime
  /// default (max_threads()) at build time. A loaded plan whose stored
  /// count differs from the runtime default is rebuilt transparently.
  index_t threads = 0;
  /// Pin team threads compactly (thread t -> cpu t). Skipped when the
  /// user configured OMP_PLACES/OMP_PROC_BIND.
  bool pin_threads = false;
};

/// Plan construction options.
struct PlanOptions {
  /// Apply the ABMC reorder. Required for ABMC-scheduled parallel
  /// execution; optional for the level scheduler.
  bool reorder = true;
  /// ABMC parameters (block count default 512, per the paper).
  AbmcOptions abmc;
  /// Use a parallel kernel (scheduled per `scheduler`).
  bool parallel = true;
  /// Parallel schedule construction.
  Scheduler scheduler = Scheduler::kAbmc;
  /// Sweep synchronization (either scheduler).
  SweepOptions sweep;
  /// Serial pipeline flavor: BtB interleaved (default) or split vectors.
  FbVariant variant = FbVariant::kBtb;
  /// Run the matrix sanitizer on the input at build. The default
  /// rejects non-finite values (a NaN matrix would otherwise poison
  /// every sequence run through the plan); structural soundness is
  /// guaranteed by CsrMatrix regardless. Set check_diagonal for
  /// D^-1-consuming workloads, or policy kWarnOnly to opt out.
  bool validate_input = true;
  SanitizeOptions sanitize;
  /// Row-kernel backend (kernels/dispatch.hpp). kScalar (default) is
  /// the exact mode: bitwise-identical serial <-> parallel, required
  /// by the solvers' reproducibility contract. Anything else opts into
  /// fast mode — vectorized row dots with a bounded reassociation
  /// error (see docs/KERNELS.md). kAuto resolves via CPUID once per
  /// process. Fast mode covers the BtB variant only (either
  /// scheduler).
  KernelBackend kernel_backend = KernelBackend::kScalar;
  /// Store triangle column indices band-compressed (u16 offsets from a
  /// per-band base, full-width fallback per band). Cuts index traffic
  /// roughly in half on banded matrices; results stay bitwise
  /// identical under the scalar backend (the decode twins replicate
  /// the exact accumulation order).
  bool index_compress = false;
  /// Software-prefetch lookahead (in nonzeros) for the col/val streams
  /// of dispatched kernels; 0 disables. Ignored by the exact scalar
  /// backend.
  int prefetch_dist = 16;
  /// How triangle/diagonal values are *stored* for the sweeps. kFp64
  /// (default) reads the CSR doubles. kFp32 stores floats (4 bytes/nnz,
  /// per-value rounding <= eps_f32 relative — see docs/KERNELS.md);
  /// kSplit stores a hi/lo float pair whose sum reconstructs the
  /// double (lossless on many matrices). Accumulation is always fp64,
  /// and results stay bitwise deterministic across schedules for a
  /// fixed precision. Non-fp64 requires the BtB variant and all
  /// values finite within float range.
  ValuePrecision value_precision = ValuePrecision::kFp64;
  /// Let build_autotuned_plan consult the cache-simulator traffic
  /// oracle (perf/sweep_replay, docs/AUTOTUNING.md): every candidate is
  /// scored by predicted DRAM bytes and only the top few are timed,
  /// cutting plan-build latency several-fold. Set false to fall back to
  /// the exhaustive measured sweep (the right call when the oracle's
  /// assumptions break — see docs/AUTOTUNING.md §fallback). Ignored by
  /// the plain MpkPlan::build path, which never times candidates.
  bool autotune_oracle = true;
};

/// Autotuned kernel configuration, persisted with the plan (format v5
/// TUNE section) so later processes skip the re-measurement. `valid`
/// is false when the plan was never autotuned. On load the config is
/// revalidated via tuned_config_stale(); a stale config is kept for
/// inspection but flagged so callers re-measure instead of trusting
/// a choice made for different hardware or thread counts.
struct TunedConfig {
  bool valid = false;
  KernelBackend backend = KernelBackend::kScalar;
  bool index_compress = false;
  ValuePrecision value_precision = ValuePrecision::kFp64;
  index_t tuned_threads = 0;  ///< max_threads() when measured
  double best_seconds = 0.0;  ///< measured median kernel time
  bool stale = false;         ///< set on load when revalidation fails
  /// Oracle provenance (format v6). When the traffic oracle pruned the
  /// search, the predicted-vs-measured ranking is kept with the plan so
  /// a later load can judge whether the pruned choice deserves a
  /// re-measure: oracle_rank_of_winner > 1 means the model mis-ranked
  /// the timed survivors and the exhaustive sweep might disagree.
  bool oracle_used = false;
  double oracle_predicted_bytes = 0.0;  ///< winner's predicted DRAM bytes
  index_t candidates_scored = 0;  ///< total candidates ranked by the model
  index_t candidates_timed = 0;   ///< survivors actually measured
  index_t oracle_rank_of_winner = 0;  ///< 1 = model's top pick won (0 = n/a)
  /// Scheduler provenance (format v7). When autotune_scheduler raced
  /// the ABMC and level schedulers, the losing side's measured time is
  /// kept so a later load can see the margin the pick rests on.
  Scheduler scheduler = Scheduler::kAbmc;  ///< scheduler the plan executes
  bool scheduler_measured = false;  ///< true when both sides were timed
  double scheduler_alt_seconds = 0.0;  ///< losing scheduler's median time
};

/// Pure revalidation predicate: a persisted tuned config is stale when
/// its backend is unavailable on the executing CPU or the runtime
/// thread count differs from the one it was measured with. Invalid
/// (never-tuned) configs are never stale.
bool tuned_config_stale(const TunedConfig& cfg, index_t runtime_threads);

/// Timing/shape metadata captured at build.
struct PlanStats {
  double build_seconds = 0.0;    ///< total preprocessing time
  double reorder_seconds = 0.0;  ///< ABMC portion of the above
  index_t num_blocks = 0;
  index_t num_colors = 0;
  index_t num_levels_forward = 0;   ///< level scheduler only
  index_t num_levels_backward = 0;  ///< level scheduler only
  index_t sweep_threads = 0;  ///< point-to-point engine only
  std::size_t storage_bytes = 0;  ///< bytes held by L + U + d
  /// Bytes of the compressed column sidecar (0 when index_compress is
  /// off). Compare against 2 * nnz(L) … see perf/traffic_model.
  std::size_t packed_index_bytes = 0;
  /// Bytes of the reduced-precision value sidecar (0 for fp64).
  std::size_t packed_value_bytes = 0;
};

class MpkPlan {
 public:
  /// Scratch vectors for one concurrent run stream.
  struct Workspace {
    FbWorkspace<double> fb;
    SweepWorkspace<double> sweep;  ///< point-to-point engine scratch
    AlignedVector<double> px;  ///< permuted input
    AlignedVector<double> py;  ///< permuted output
  };

  /// Preprocess matrix `a` (square). Throws fbmpk::Error on invalid
  /// input or inconsistent options.
  static MpkPlan build(const CsrMatrix<double>& a, PlanOptions opts = {});

  MpkPlan(MpkPlan&&) noexcept = default;
  MpkPlan& operator=(MpkPlan&&) noexcept = default;

  index_t rows() const { return n_; }
  const PlanOptions& options() const { return opts_; }
  const PlanStats& stats() const { return stats_; }
  const Permutation& permutation() const { return perm_; }
  const AbmcOrdering& schedule() const { return schedule_; }
  const SweepSchedule& sweep_schedule() const { return sweep_schedule_; }
  /// Dependency levels (populated for level-scheduled plans).
  const LevelSchedulePair& levels() const { return levels_; }
  /// Level-blocked p2p schedule (level scheduler + kPointToPoint only).
  const LevelSweepSchedule& level_sweep_schedule() const {
    return level_sweep_schedule_;
  }
  const TriangularSplit<double>& split() const { return split_; }
  const PackedSplitIndex& packed_index() const { return packed_; }
  /// Reduced-precision value sidecar (empty for fp64 plans).
  const PackedSplitValues& packed_values() const { return values_; }
  /// Persisted autotune choice (valid == false when never tuned).
  const TunedConfig& tuned_config() const { return tuned_; }
  /// Record an autotune result for serialization with the plan
  /// (core/autotune.cpp calls this from build_autotuned_plan).
  void set_tuned_config(const TunedConfig& cfg) { tuned_ = cfg; }
  /// Concrete backend this plan executes with (kAuto already resolved;
  /// a loaded plan whose stored backend is unavailable on this CPU is
  /// re-resolved portably).
  KernelBackend resolved_backend() const { return resolved_backend_; }

  /// y = A^k x (k >= 0). x and y may alias only if identical spans.
  void power(std::span<const double> x, int k, std::span<double> y,
             Workspace& ws) const;
  void power(std::span<const double> x, int k, std::span<double> y);

  /// Cancellable, path-overridable power — the serving layer's entry
  /// point (degradation-ladder rungs + per-request deadlines). Instead
  /// of throwing, failures come back as a typed Status: kUnsupported
  /// when the forced path needs structures this plan lacks, kCancelled
  /// / kTimeout when `ctl` fired mid-sweep (y is then unspecified),
  /// kResourceLimit on allocation failure. The token is polled at
  /// sweep color/k boundaries; cancellation never throws across a
  /// parallel region.
  Status try_power(std::span<const double> x, int k, std::span<double> y,
                   Workspace& ws, ExecPath path = ExecPath::kDefault,
                   RunControl* ctl = nullptr) const;

  /// Batched right-hand sides: ys[b] = A^k xs[b] for b in [0, nvec) in
  /// multi-vector sweeps over the xy[2·B·n] interleaved layout, so the
  /// triangles are read once per chunk instead of once per vector.
  /// nvec is chunked greedily over widths {16, 8, 4, 2, 1}; each lane's
  /// result is bitwise identical to the serial scalar-backend sweep of
  /// that vector alone at the same stored precision (the batch kernels
  /// replicate the exact per-lane accumulation order for every backend
  /// and schedule). Inputs are gathered straight from xs and scattered
  /// straight to ys — no staging copies. Same Status contract as
  /// try_power; on cancellation the ys are unspecified. Allocates its
  /// own per-call workspace, so concurrent calls on one plan are safe.
  Status try_power_batch(const double* const* xs, index_t nvec, int k,
                         double* const* ys, ExecPath path = ExecPath::kDefault,
                         RunControl* ctl = nullptr) const;

  /// out[p*n + i] = (A^p x)[i] for p in [0, k] (row-major basis).
  void power_all(std::span<const double> x, int k, std::span<double> out,
                 Workspace& ws) const;
  void power_all(std::span<const double> x, int k, std::span<double> out);

  /// y = sum_{p=0..k} coeffs[p] * A^p x, k = coeffs.size()-1.
  void polynomial(std::span<const double> coeffs, std::span<const double> x,
                  std::span<double> y, Workspace& ws) const;
  void polynomial(std::span<const double> coeffs, std::span<const double> x,
                  std::span<double> y);

  /// Three-term recurrence x_p = a_p A x_{p-1} + b_p x_{p-1} +
  /// c_p x_{p-2} (x_{-1} = 0): y = x_k with k = steps.size(). Covers
  /// Chebyshev-stable polynomial bases at FBMPK traffic. Serial and
  /// ABMC-scheduled plans only (the level scheduler falls back to the
  /// ABMC/serial path by construction of the options). Returns a
  /// breakdown status instead of propagating NaN: non-finite inputs
  /// are rejected before the sweep, non-finite iterates are reported
  /// after it (y is written either way).
  KernelStatus recurrence(std::span<const RecurrenceStep<double>> steps,
                          std::span<const double> x, std::span<double> y,
                          Workspace& ws) const;
  KernelStatus recurrence(std::span<const RecurrenceStep<double>> steps,
                          std::span<const double> x, std::span<double> y);

  /// Complex-coefficient SSpMV (paper §I: "alpha_i are real or complex
  /// constants"): y = sum_p coeffs[p] * A^p x with real A and x. One
  /// FBMPK pass; each emitted iterate feeds both components.
  void polynomial(std::span<const std::complex<double>> coeffs,
                  std::span<const double> x,
                  std::span<std::complex<double>> y, Workspace& ws) const;
  void polynomial(std::span<const std::complex<double>> coeffs,
                  std::span<const double> x,
                  std::span<std::complex<double>> y);

 private:
  MpkPlan() = default;

  friend void save_plan(const MpkPlan&, std::ostream&);
  friend MpkPlan load_plan(std::istream&);
  friend MpkPlan detail::load_plan_impl(std::istream&, std::uint64_t);

  bool use_engine() const {
    return opts_.sweep.sync == SweepSync::kPointToPoint &&
           !sweep_schedule_.empty();
  }
  bool use_level_engine() const {
    return opts_.sweep.sync == SweepSync::kPointToPoint &&
           !level_sweep_schedule_.empty();
  }
  /// True when the sweeps route through the runtime-dispatched row
  /// kernels (non-scalar backend and/or compressed indices) instead of
  /// the exact fb_detail path.
  bool use_dispatch() const {
    return resolved_backend_ != KernelBackend::kScalar ||
           opts_.index_compress ||
           opts_.value_precision != ValuePrecision::kFp64;
  }
  DispatchRows dispatch_rows() const;

  void run_power(std::span<const double> px, int k, std::span<double> py,
                 Workspace& ws) const;
  void run_power_path(std::span<const double> px, int k,
                      std::span<double> py, Workspace& ws, ExecPath path,
                      RunControl* ctl) const;
  template <int B>
  Status run_power_batch_chunk(const double* const* xs, int k,
                               double* const* ys, ExecPath path,
                               RunControl* ctl) const;
  void run_power_all(std::span<const double> px, int k,
                     std::span<double> pout, Workspace& ws) const;
  void run_polynomial(std::span<const double> coeffs,
                      std::span<const double> px, std::span<double> py,
                      Workspace& ws) const;

  index_t n_ = 0;
  PlanOptions opts_;
  PlanStats stats_;
  Permutation perm_;         ///< identity when reorder is off
  AbmcOrdering schedule_;    ///< empty when reorder is off
  LevelSchedulePair levels_; ///< populated for the level scheduler
  SweepSchedule sweep_schedule_;  ///< ABMC point-to-point sync only
  LevelSweepSchedule level_sweep_schedule_;  ///< levels p2p sync only
  TriangularSplit<double> split_;
  PackedSplitIndex packed_;  ///< populated when index_compress is on
  PackedSplitValues values_; ///< populated when value_precision != fp64
  TunedConfig tuned_;        ///< persisted autotune choice (may be invalid)
  /// Concrete executing backend; derived from opts_.kernel_backend at
  /// build/load time, never serialized.
  KernelBackend resolved_backend_ = KernelBackend::kScalar;
  std::unique_ptr<Workspace> internal_ws_;  // for convenience overloads
};

}  // namespace fbmpk
