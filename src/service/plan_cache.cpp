#include "service/plan_cache.hpp"

#include <sstream>
#include <utility>

#include "core/plan_io.hpp"
#include "support/checksum.hpp"
#include "support/error.hpp"
#include "support/threading.hpp"
#include "support/timer.hpp"
#include "telemetry/telemetry.hpp"

namespace fbmpk::service {

std::uint64_t fingerprint(const CsrMatrix<double>& a) {
  std::uint32_t s = kCrc32Init;
  const std::int64_t dims[2] = {a.rows(), a.cols()};
  s = crc32_update(s, dims, sizeof(dims));
  s = crc32_update(s, a.row_ptr().data(),
                   a.row_ptr().size() * sizeof(index_t));
  s = crc32_update(s, a.col_idx().data(),
                   a.col_idx().size() * sizeof(index_t));
  const std::uint32_t structure = crc32_finish(s);
  const std::uint32_t values =
      crc32(a.values().data(), a.values().size() * sizeof(double));
  return (static_cast<std::uint64_t>(structure) << 32) | values;
}

PlanCache::PlanCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::shared_ptr<PlanCache::Entry> PlanCache::insert_locked(
    std::uint64_t key, std::shared_ptr<Entry> entry) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Lost a build race (or replacing a corrupt/quarantined entry that
    // was erased and re-inserted by another thread): adopt the winner.
    lru_.splice(lru_.end(), lru_, it->second.pos);
    return it->second.entry;
  }
  lru_.push_back(key);
  map_.emplace(key, Slot{entry, std::prev(lru_.end())});
  while (map_.size() > capacity_) {
    const std::uint64_t victim = lru_.front();
    lru_.pop_front();
    map_.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    FBMPK_TCOUNT("service.cache.evict", 1);
  }
  return entry;
}

PlanCache::Lease PlanCache::acquire(std::uint64_t key, const Builder& build) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      std::shared_ptr<Entry> entry = it->second.entry;
      if (entry->quarantined.load(std::memory_order_acquire)) {
        // Watchdog-flagged plan: never served again — drop and rebuild.
        lru_.erase(it->second.pos);
        map_.erase(it);
      } else {
        // Memory-corruption fault drill: damage the artifact and drop
        // the decode cache so the rehydration path below must run.
        if (fault::should_fire(fault::Point::kCacheCorrupt) &&
            !entry->artifact.empty()) {
          entry->artifact[entry->artifact.size() / 2] ^= 0x40;
          entry->plan.reset();
        }
        if (entry->plan == nullptr) {
          // Rehydrate from the artifact; the loader re-verifies the
          // checksum so corruption can't reach execution.
          std::istringstream in(entry->artifact);
          Expected<MpkPlan> loaded = try_load_plan(in);
          if (loaded.has_value() && !loaded.value().tuned_config().stale) {
            entry->plan = std::make_shared<const MpkPlan>(
                std::move(loaded).value());
          } else {
            if (loaded.has_value()) {
              stale_rebuilds_.fetch_add(1, std::memory_order_relaxed);
              FBMPK_TCOUNT("service.cache.stale_rebuild", 1);
            } else {
              corrupt_evictions_.fetch_add(1, std::memory_order_relaxed);
              FBMPK_TCOUNT("service.cache.corrupt_evict", 1);
            }
            lru_.erase(it->second.pos);
            map_.erase(key);
            entry = nullptr;
          }
        }
        if (entry != nullptr) {
          lru_.splice(lru_.end(), lru_, it->second.pos);
          hits_.fetch_add(1, std::memory_order_relaxed);
          FBMPK_TCOUNT("service.cache.hit", 1);
          // Pin the plan while still holding the lock: entry->plan may
          // be reset by another thread the moment we release it.
          return Lease{entry, entry->plan};
        }
      }
    }
  }
  // Miss (or evicted above): build outside the lock so concurrent
  // requests for other fingerprints keep flowing.
  misses_.fetch_add(1, std::memory_order_relaxed);
  FBMPK_TCOUNT("service.cache.miss", 1);
  auto entry = std::make_shared<Entry>();
  entry->key = key;
  {
    FBMPK_TSPAN(kService, "service.cache.build");
    [[maybe_unused]] Timer build_timer;
    entry->plan = std::make_shared<const MpkPlan>(build());
    // Last-build gauge: the request-path cost the autotune oracle is
    // meant to shrink (docs/AUTOTUNING.md); spans carry the history,
    // the gauge makes the latest cost scrapeable.
    FBMPK_TGAUGE("service.plan_build_ns",
                 static_cast<std::int64_t>(build_timer.seconds() * 1e9));
  }
  std::ostringstream out;
  save_plan(*entry->plan, out);
  entry->artifact = std::move(out).str();
  std::shared_ptr<const MpkPlan> plan = entry->plan;
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<Entry> adopted = insert_locked(key, std::move(entry));
  // When we lost the build race the adopted entry's plan is the
  // winner's; if a corruption drill already dropped that one, our own
  // fresh build is still a correct plan for this key — serve it.
  if (adopted->plan != nullptr) plan = adopted->plan;
  return Lease{std::move(adopted), std::move(plan)};
}

bool PlanCache::corrupt_entry(std::uint64_t key, std::size_t offset) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end() || it->second.entry->artifact.empty()) return false;
  Entry& e = *it->second.entry;
  e.artifact[offset % e.artifact.size()] ^= 0x01;
  e.plan.reset();
  return true;
}

bool PlanCache::quarantine(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  it->second.entry->quarantined.store(true, std::memory_order_release);
  return true;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

std::vector<std::uint64_t> PlanCache::keys_lru_order() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {lru_.begin(), lru_.end()};
}

CacheStats PlanCache::stats() const {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.corrupt_evictions = corrupt_evictions_.load(std::memory_order_relaxed);
  s.stale_rebuilds = stale_rebuilds_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace fbmpk::service
