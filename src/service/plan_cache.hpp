// LRU plan cache for the serving layer (docs/SERVICE.md).
//
// Entries are keyed by a 64-bit fingerprint of the input matrix
// (dims + row_ptr + col_idx + values, two independent CRC32 streams).
// Each entry stores BOTH the hydrated MpkPlan and its serialized v5
// artifact (core/plan_io.hpp): the artifact is the durable source of
// truth, the hydrated plan a decode cache. When the hydrated pointer
// has been dropped — or a fault-injection hook corrupted the artifact
// — the hit path rehydrates through try_load_plan, which re-verifies
// the checksum and the tuned-config staleness predicate. A corrupt or
// stale artifact is therefore *never served*: the entry is evicted and
// rebuilt from the caller's matrix, and the event is counted
// (service.cache.corrupt_evict / service.cache.stale_rebuild).
//
// Thread-safety: every public method is safe to call concurrently.
// Builds run outside the cache lock, so two threads missing on the
// same fingerprint may both build; the first insert wins and the loser
// adopts it. Entry flag fields (degrade_level, quarantined) are
// atomics the serving ladder mutates without touching the cache lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/plan.hpp"
#include "sparse/csr.hpp"

namespace fbmpk::service {

/// 64-bit content fingerprint of a CSR matrix: structure CRC (dims,
/// row_ptr, col_idx) in the high word, value-bytes CRC in the low.
std::uint64_t fingerprint(const CsrMatrix<double>& a);

/// Monotonic cache statistics (independent of telemetry enablement).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;          ///< capacity evictions only
  std::uint64_t corrupt_evictions = 0;  ///< artifact failed rehydration
  std::uint64_t stale_rebuilds = 0;     ///< tuned config failed revalidation
};

class PlanCache {
 public:
  /// One cached plan. `degrade_level` is the sticky degradation-ladder
  /// rung for this plan (0 = full speed); `quarantined` marks a plan
  /// the watchdog caught wedging a sweep — acquire() treats it as
  /// evicted and rebuilds.
  struct Entry {
    std::uint64_t key = 0;
    std::string artifact;  ///< serialized v5 plan (source of truth)
    std::shared_ptr<const MpkPlan> plan;
    std::atomic<int> degrade_level{0};
    std::atomic<bool> quarantined{false};
  };

  /// An entry plus a plan pointer pinned under the cache lock. Callers
  /// must execute through `plan`, never through `entry->plan`: the
  /// entry's own pointer may be dropped at any time by a concurrent
  /// corruption drill or rehydration, and reading it outside the lock
  /// is a use-after-free waiting to happen.
  struct Lease {
    std::shared_ptr<Entry> entry;
    std::shared_ptr<const MpkPlan> plan;
  };

  using Builder = std::function<MpkPlan()>;

  explicit PlanCache(std::size_t capacity);

  /// Look up `key`; on miss (or quarantined / unrehydratable entry)
  /// invoke `build`, serialize the result and insert it, evicting the
  /// least-recently-used entry when over capacity. Always returns a
  /// lease with a non-null hydrated plan; build failures propagate as
  /// the Error `build` (or serialization) throws.
  Lease acquire(std::uint64_t key, const Builder& build);

  /// Test/fault hook: XOR one artifact byte of `key`'s entry (offset
  /// taken modulo the artifact size) and drop its hydrated plan, so
  /// the next acquire must rehydrate — and fail, evict, rebuild.
  /// Returns false when the key is absent.
  bool corrupt_entry(std::uint64_t key, std::size_t offset = 97);

  /// Mark `key` quarantined (watchdog: plan wedged a sweep). The next
  /// acquire evicts and rebuilds it. Returns false when absent.
  bool quarantine(std::uint64_t key);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  /// Keys from least- to most-recently used (deterministic LRU tests).
  std::vector<std::uint64_t> keys_lru_order() const;

  CacheStats stats() const;

 private:
  std::shared_ptr<Entry> insert_locked(std::uint64_t key,
                                       std::shared_ptr<Entry> entry);

  const std::size_t capacity_;
  mutable std::mutex mu_;
  /// LRU order: front = least recently used, back = most recent.
  std::list<std::uint64_t> lru_;
  struct Slot {
    std::shared_ptr<Entry> entry;
    std::list<std::uint64_t>::iterator pos;
  };
  std::unordered_map<std::uint64_t, Slot> map_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> corrupt_evictions_{0};
  std::atomic<std::uint64_t> stale_rebuilds_{0};
};

}  // namespace fbmpk::service
