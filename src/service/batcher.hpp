// Request coalescer for MpkService (docs/SERVICE.md).
//
// Sits between the admission queue and execute: when batching is
// enabled (max_batch > 1) a worker that pops a request holds it for a
// short gather window, pulling every queued request with the same
// batch key — matrix fingerprint x k, which pins the plan, the stored
// precision and the exec path — into one multi-vector sweep
// (MpkPlan::try_power_batch). The triangles are then read once per
// batch instead of once per request.
//
// The coalescer itself is a small, lock-free-of-its-own policy object:
// the service calls it under its queue mutex. Deadlines, cancellation
// and the degradation ladder stay per-request — a cancelled member is
// masked out of the batch, never the whole batch.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

namespace fbmpk::service {

/// Requests may share a batched sweep only when they resolve to the
/// same plan and power: the cache fingerprint pins matrix, PlanOptions
/// (hence value precision, backend and schedule) and quarantine state;
/// k pins the sweep length.
struct BatchKey {
  std::uint64_t fingerprint = 0;
  int k = 0;
  friend bool operator==(const BatchKey&, const BatchKey&) = default;
};

/// Gather policy. enabled() == false (the default) makes the service
/// byte-for-byte equivalent to the unbatched worker loop.
class Coalescer {
 public:
  struct Options {
    std::size_t max_batch = 1;    ///< widest sweep a worker may run
    double window_us = 0.0;       ///< how long a worker waits for company
  };

  explicit Coalescer(Options o) : opts_(o) {}

  bool enabled() const { return opts_.max_batch > 1; }
  std::size_t max_batch() const { return opts_.max_batch; }

  /// Latest point a worker holding a seed request keeps gathering.
  std::chrono::steady_clock::time_point gather_deadline(
      std::chrono::steady_clock::time_point start) const {
    return start + std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double, std::micro>(
                           opts_.window_us));
  }

  /// Move every queued request matching `key` (in FIFO order — later
  /// same-key arrivals never jump earlier ones) into `batch`, up to
  /// max_batch total members. Caller holds the queue lock.
  template <class Req, class KeyOf>
  void drain_matches(std::deque<std::shared_ptr<Req>>& queue,
                     const BatchKey& key, KeyOf&& key_of,
                     std::vector<std::shared_ptr<Req>>& batch) const {
    for (auto it = queue.begin();
         it != queue.end() && batch.size() < opts_.max_batch;) {
      if (key_of(**it) == key) {
        batch.push_back(std::move(*it));
        it = queue.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// Whether the queue holds at least one request matching `key`
  /// (wait predicate for the gather window). Caller holds the lock.
  template <class Req, class KeyOf>
  bool has_match(const std::deque<std::shared_ptr<Req>>& queue,
                 const BatchKey& key, KeyOf&& key_of) const {
    for (const auto& r : queue)
      if (key_of(*r) == key) return true;
    return false;
  }

 private:
  Options opts_;
};

/// Telemetry for one coalesced rung: one service.batch_width sample,
/// plus service.batch_coalesced bumped by the member count whenever
/// the batch actually shared work (width > 1).
void record_batch_telemetry(std::size_t width);

}  // namespace fbmpk::service
