#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <new>
#include <utility>

#include "support/fault_inject.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/telemetry.hpp"

namespace fbmpk::service {

namespace {

using Clock = std::chrono::steady_clock;

/// Anomaly hook (docs/OBSERVABILITY.md): when flight dumps are armed,
/// snapshot the in-memory rings around this event. `reason` must be a
/// string literal; failures (budget exhausted, I/O) are swallowed —
/// an observer must never affect serving.
void maybe_flight_dump(const char* reason) {
  if (!telemetry::flight_dumps_armed()) return;
  (void)telemetry::trigger_flight_dump(reason);
}

/// Cache key salt for the fp64 rebuild of a reduced-precision plan —
/// the rebuilt plan is a distinct artifact under the same matrix.
constexpr std::uint64_t kFp64RebuildSalt = 0x9E3779B97F4A7C15ull;

Clock::duration seconds_to_duration(double s) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(s));
}

bool all_finite(std::span<const double> v) {
  for (double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

}  // namespace

const char* rung_name(Rung r) {
  switch (r) {
    case Rung::kEngine: return "engine";
    case Rung::kBarrier: return "barrier";
    case Rung::kSerial: return "serial";
  }
  return "unknown";
}

/// One in-flight request. The ticket (m/cv/done) follows
/// first-completer-wins: a worker finishing a sweep and a watchdog
/// force-completing a stuck request race benignly — the second
/// complete() is a no-op. The service copies x in at submit and the
/// caller copies y out at wait, so no caller memory is ever touched
/// after a force-completion.
struct MpkService::Request {
  RequestId id = 0;
  const CsrMatrix<double>* matrix = nullptr;
  std::uint64_t key = 0;
  AlignedVector<double> x;
  AlignedVector<double> y;
  int k = 1;
  double deadline_seconds = 0.0;  ///< resolved; <= 0 means none
  Clock::time_point deadline_tp{};
  Clock::time_point submitted_at{};  ///< for windowed latency

  RunControl ctl;
  std::atomic<bool> running{false};  ///< a worker is executing the sweep
  std::atomic<bool> done_flag{false};

  // Watchdog-private stuck-detection state (only the watchdog thread
  // reads or writes these).
  bool cancel_seen = false;
  std::uint64_t last_progress = 0;
  Clock::time_point last_progress_change{};

  // Completion ticket.
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  RequestResult result;

  BatchKey batch_key() const { return BatchKey{key, k}; }
};

/// One in-flight batched sweep. The sweep runs under the batch's own
/// RunControl (members' tokens cannot cancel each other's work), and
/// the watchdog scans batches_ the same way it scans single requests:
/// all members dead -> cancel the batch; a cancelled batch whose
/// progress freezes past the grace period -> quarantine + force-complete
/// every member.
struct MpkService::BatchExec {
  std::vector<std::shared_ptr<Request>> members;
  std::uint64_t key = 0;
  RunControl ctl;

  // Watchdog-private stuck-detection state.
  bool cancel_seen = false;
  std::uint64_t last_progress = 0;
  Clock::time_point last_progress_change{};
};

MpkService::MpkService(ServiceOptions opts)
    : opts_(std::move(opts)),
      cache_(opts_.cache_capacity),
      coalescer_(Coalescer::Options{opts_.max_batch, opts_.batch_window_us}) {
  const int n_workers = std::max(1, opts_.workers);
  workers_.reserve(static_cast<std::size_t>(n_workers));
  for (int i = 0; i < n_workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

MpkService::~MpkService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    // Queued requests complete with kCancelled when a worker pops
    // them; running sweeps see the token at the next stage boundary.
    for (auto& [id, req] : active_)
      req->ctl.request_cancel(ErrorCode::kCancelled);
    for (auto& b : batches_) b->ctl.request_cancel(ErrorCode::kCancelled);
  }
  queue_cv_.notify_all();
  watchdog_cv_.notify_all();
  for (auto& w : workers_) w.join();
  watchdog_.join();
}

MpkService::RequestId MpkService::submit(const CsrMatrix<double>& a,
                                         std::span<const double> x, int k,
                                         RequestOptions ropts) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  auto req = std::make_shared<Request>();
  // Mint the id up front (atomic, no lock) so the request's trace
  // context exists from the very first span.
  const RequestId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  req->id = id;
  FBMPK_TSPAN_ARGS(kService, "service.submit",
                   {.k = k, .req = static_cast<std::int64_t>(id)});
  req->matrix = &a;
  req->key = fingerprint(a);
  req->x.assign(x.begin(), x.end());
  req->y.resize(static_cast<std::size_t>(a.rows()), 0.0);
  req->k = k;
  req->deadline_seconds = ropts.deadline_seconds < 0.0
                              ? opts_.default_deadline_seconds
                              : ropts.deadline_seconds;
  req->submitted_at = Clock::now();
  if (req->deadline_seconds > 0.0)
    req->deadline_tp =
        req->submitted_at + seconds_to_duration(req->deadline_seconds);

  Status early;  // non-ok -> reject without queueing
  if (x.size() != static_cast<std::size_t>(a.rows()))
    early = Error(ErrorCode::kInvalidMatrix,
                  "request vector length does not match the matrix");

  bool queued = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    active_.emplace(id, req);
    if (early.ok()) {
      if (shutdown_) {
        early = Error(ErrorCode::kCancelled, "service is shutting down");
      } else if (queue_.size() >= opts_.max_queue ||
                 fault::should_fire(fault::Point::kQueueFull)) {
        early = Error(ErrorCode::kOverloaded,
                      "request queue is full (admission control)");
      } else {
        queue_.push_back(req);
        queued = true;
      }
    }
  }
  if (queued) {
    FBMPK_TCOUNT("service.admit", 1);
    queue_cv_.notify_one();
  } else {
    if (early.code() == ErrorCode::kOverloaded) {
      rejected_overload_.fetch_add(1, std::memory_order_relaxed);
      FBMPK_TCOUNT("service.reject_overload", 1);
    }
    complete(req, early, Rung::kSerial, 0, false, false);
  }
  return id;
}

RequestResult MpkService::wait(RequestId id, std::span<double> y) {
  std::shared_ptr<Request> req;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = active_.find(id);
    if (it == active_.end()) {
      RequestResult r;
      r.status = Error(ErrorCode::kInternal, "unknown request id");
      return r;
    }
    req = it->second;
  }
  RequestResult result;
  {
    std::unique_lock<std::mutex> lock(req->m);
    req->cv.wait(lock, [&] { return req->done; });
    result = req->result;
  }
  if (result.status.ok()) {
    if (y.size() >= req->y.size()) {
      std::copy(req->y.begin(), req->y.end(), y.begin());
    } else {
      result.status = Error(ErrorCode::kInternal,
                            "output span shorter than the matrix dimension");
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  active_.erase(id);
  return result;
}

bool MpkService::cancel(RequestId id) {
  std::shared_ptr<Request> req;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = active_.find(id);
    if (it == active_.end()) return false;
    req = it->second;
  }
  if (req->done_flag.load(std::memory_order_acquire)) return false;
  req->ctl.request_cancel(ErrorCode::kCancelled);
  return true;
}

RequestResult MpkService::power(const CsrMatrix<double>& a,
                                std::span<const double> x, int k,
                                std::span<double> y, RequestOptions ropts) {
  return wait(submit(a, x, k, ropts), y);
}

void MpkService::worker_loop() {
  const auto key_of = [](const Request& r) { return r.batch_key(); };
  for (;;) {
    std::vector<std::shared_ptr<Request>> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      if (coalescer_.enabled()) {
        const BatchKey key = batch.front()->batch_key();
        coalescer_.drain_matches(queue_, key, key_of, batch);
        // Hold the seed for the gather window, waking on every submit
        // to pull in same-key arrivals. A window of 0 batches only
        // what was already queued.
        const auto gather_end = coalescer_.gather_deadline(Clock::now());
        while (!shutdown_ && batch.size() < coalescer_.max_batch()) {
          if (!queue_cv_.wait_until(lock, gather_end, [&] {
                return shutdown_ ||
                       coalescer_.has_match(queue_, key, key_of);
              }))
            break;  // window expired without same-key company
          coalescer_.drain_matches(queue_, key, key_of, batch);
        }
        // The gather consumed wakeups that may have been meant for
        // other workers: pass the baton if work remains queued.
        if (!queue_.empty()) queue_cv_.notify_one();
      }
    }
    if (coalescer_.enabled()) {
      record_batch_telemetry(batch.size());
      windows_.record_batch_width(batch.size());
    }
    if (batch.size() == 1)
      execute(batch.front());
    else
      execute_batch(batch);
  }
}

Status MpkService::run_rung(const std::shared_ptr<Request>& req,
                            const MpkPlan& plan, Rung rung,
                            MpkPlan::Workspace& ws) {
  // Parallel rungs allocate sweep scratch; the kAlloc fault point
  // stands in for that allocation failing under memory pressure. The
  // serial rung deliberately skips the check so the ladder always has
  // a floor.
  if (rung != Rung::kSerial && fault::should_fire(fault::Point::kAlloc))
    return Error(ErrorCode::kResourceLimit,
                 "injected sweep-scratch allocation failure");
  ExecPath path = ExecPath::kSerial;
  switch (rung) {
    case Rung::kEngine: path = ExecPath::kEngine; break;
    case Rung::kBarrier: path = ExecPath::kBarrier; break;
    case Rung::kSerial: path = ExecPath::kSerial; break;
  }
  FBMPK_TSPAN_ARGS(kService, "service.rung",
                   {.k = req->k, .req = static_cast<std::int64_t>(req->id)});
  return plan.try_power(std::span<const double>(req->x.data(), req->x.size()),
                        req->k, std::span<double>(req->y.data(), req->y.size()),
                        ws, path, &req->ctl);
}

void MpkService::execute(const std::shared_ptr<Request>& req) {
  FBMPK_TSPAN_ARGS(kService, "service.request",
                   {.k = req->k, .req = static_cast<std::int64_t>(req->id)});
  if (req->ctl.cancelled()) {
    complete(req, Error(req->ctl.cancel_reason(),
                        "request cancelled before execution"),
             Rung::kSerial, 0, false, false);
    return;
  }

  bool built = false;
  PlanCache::Lease lease;
  try {
    lease = cache_.acquire(req->key, [&] {
      built = true;
      return MpkPlan::build(*req->matrix, opts_.plan);
    });
  } catch (const Error& e) {
    complete(req, Status(e), Rung::kSerial, 0, false, false);
    return;
  } catch (const std::bad_alloc&) {
    complete(req,
             Error(ErrorCode::kResourceLimit, "plan build ran out of memory"),
             Rung::kSerial, 0, false, false);
    return;
  }
  const bool cache_hit = !built;
  windows_.record_cache(cache_hit);

  req->running.store(true, std::memory_order_release);
  MpkPlan::Workspace ws;
  int rung_i = std::clamp(
      lease.entry->degrade_level.load(std::memory_order_acquire),
                          0, static_cast<int>(Rung::kSerial));
  int steps = 0;
  bool precision_rebuilt = false;
  Status st;
  for (;;) {
    const Rung rung = static_cast<Rung>(rung_i);
    st = run_rung(req, *lease.plan, rung, ws);
    if (st.ok()) break;
    const ErrorCode code = st.code();
    // Cancellation is final — degrading a cancelled request would
    // burn more time the caller already gave up on.
    if (code == ErrorCode::kCancelled || code == ErrorCode::kTimeout) break;
    if (rung_i >= static_cast<int>(Rung::kSerial)) break;
    if (code == ErrorCode::kUnsupported) {
      // Capability gap (plan has no engine schedule / no ABMC
      // coloring), not a runtime failure: fall through silently.
      ++rung_i;
      continue;
    }
    if (!opts_.allow_degradation) break;
    // Genuine rung failure: step the ladder, stick the plan to the
    // lower rung, and record the transition.
    FBMPK_TSPAN(kService, "service.degrade");
    if (rung == Rung::kEngine) {
      degrade_engine_to_barrier_.fetch_add(1, std::memory_order_relaxed);
      FBMPK_TCOUNT("service.degrade.engine_to_barrier", 1);
    } else {
      degrade_barrier_to_serial_.fetch_add(1, std::memory_order_relaxed);
      FBMPK_TCOUNT("service.degrade.barrier_to_serial", 1);
    }
    maybe_flight_dump("degrade");
    ++steps;
    ++rung_i;
    lease.entry->degrade_level.store(rung_i, std::memory_order_release);
  }

  const Rung rung_used = static_cast<Rung>(rung_i);
  certify_result(req, st, rung_used, ws, precision_rebuilt);
  req->running.store(false, std::memory_order_release);
  complete(req, st, rung_used, steps, cache_hit, precision_rebuilt);
  if (!st.ok() && st.code() == ErrorCode::kTimeout)
    maybe_flight_dump("timeout");
}

void MpkService::certify_result(const std::shared_ptr<Request>& req,
                                Status& st, Rung rung,
                                MpkPlan::Workspace& ws,
                                bool& precision_rebuilt) {
  if (!st.ok()) return;
  // Precision certification: a reduced-precision (or injected-fault)
  // result that is not finite everywhere must not be served.
  const bool cert_ok = all_finite(req->y) &&
                       !fault::should_fire(fault::Point::kPrecisionCertify);
  if (cert_ok) return;
  if (!opts_.rebuild_fp64_on_cert_failure) {
    st = Error(ErrorCode::kNumericalBreakdown,
               "result failed precision certification (non-finite "
               "output); enable rebuild_fp64_on_cert_failure to retry "
               "at full precision");
    return;
  }
  FBMPK_TSPAN(kService, "service.precision_rebuild");
  precision_rebuilds_.fetch_add(1, std::memory_order_relaxed);
  FBMPK_TCOUNT("service.degrade.precision_rebuild", 1);
  precision_rebuilt = true;
  try {
    PlanOptions fp64_opts = opts_.plan;
    fp64_opts.value_precision = ValuePrecision::kFp64;
    auto rebuilt = cache_.acquire(req->key ^ kFp64RebuildSalt, [&] {
      return MpkPlan::build(*req->matrix, fp64_opts);
    });
    st = run_rung(req, *rebuilt.plan, rung, ws);
    if (st.ok() && !all_finite(req->y))
      st = Error(ErrorCode::kNumericalBreakdown,
                 "result failed precision certification after the "
                 "fp64 rebuild");
  } catch (const Error& e) {
    st = Status(e);
  } catch (const std::bad_alloc&) {
    st = Error(ErrorCode::kResourceLimit,
               "fp64 rebuild ran out of memory");
  }
}

void MpkService::execute_batch(
    const std::vector<std::shared_ptr<Request>>& batch) {
  // Mask members cancelled (or past deadline) while gathering: they
  // complete with their own reason before the sweep, never poisoning
  // the rest of the batch.
  std::vector<std::shared_ptr<Request>> live;
  live.reserve(batch.size());
  for (const auto& req : batch) {
    if (req->ctl.cancelled()) {
      complete(req,
               Error(req->ctl.cancel_reason(),
                     "request cancelled before execution"),
               Rung::kSerial, 0, false, false);
    } else {
      live.push_back(req);
    }
  }
  if (live.empty()) return;
  if (live.size() == 1) {
    execute(live.front());
    return;
  }

  const auto& seed = live.front();
  FBMPK_TSPAN_ARGS(kService, "service.batch",
                   {.k = seed->k, .req = static_cast<std::int64_t>(seed->id)});
  // One near-zero span per member so every coalesced request's trace
  // context reaches the batched sweep (flow events stitch them).
  for (const auto& r : live) {
    FBMPK_TSPAN_ARGS(kService, "service.batch_member",
                     {.k = r->k, .req = static_cast<std::int64_t>(r->id)});
    (void)r;
  }
  batches_run_.fetch_add(1, std::memory_order_relaxed);
  batch_coalesced_.fetch_add(live.size(), std::memory_order_relaxed);

  bool built = false;
  PlanCache::Lease lease;
  try {
    lease = cache_.acquire(seed->key, [&] {
      built = true;
      return MpkPlan::build(*seed->matrix, opts_.plan);
    });
  } catch (const Error& e) {
    for (const auto& r : live)
      complete(r, Status(e), Rung::kSerial, 0, false, false);
    return;
  } catch (const std::bad_alloc&) {
    const Status oom(Error(ErrorCode::kResourceLimit,
                           "plan build ran out of memory"));
    for (const auto& r : live)
      complete(r, oom, Rung::kSerial, 0, false, false);
    return;
  }
  const bool cache_hit = !built;
  windows_.record_cache(cache_hit);

  // The sweep runs under the batch's own control token; member tokens
  // stay per-request (deadline/cancel of one member must not abort the
  // others' work). Members keep running == false so the per-request
  // stuck detector cannot fire on them — the watchdog tracks the batch
  // token instead, via batches_.
  auto exec = std::make_shared<BatchExec>();
  exec->members = live;
  exec->key = seed->key;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A destructor that already swept active_ will not see this batch:
    // carry the shutdown cancellation over at registration.
    if (shutdown_) exec->ctl.request_cancel(ErrorCode::kCancelled);
    batches_.push_back(exec);
  }

  // No staging copies: lanes gather straight from the request input
  // buffers and scatter straight into the request result buffers.
  std::vector<const double*> xs;
  std::vector<double*> ys;
  xs.reserve(live.size());
  ys.reserve(live.size());
  for (const auto& r : live) {
    xs.push_back(r->x.data());
    ys.push_back(r->y.data());
  }

  const auto run_batch_rung = [&](Rung rung) -> Status {
    if (rung != Rung::kSerial && fault::should_fire(fault::Point::kAlloc))
      return Error(ErrorCode::kResourceLimit,
                   "injected sweep-scratch allocation failure");
    ExecPath path = ExecPath::kSerial;
    switch (rung) {
      case Rung::kEngine: path = ExecPath::kEngine; break;
      case Rung::kBarrier: path = ExecPath::kBarrier; break;
      case Rung::kSerial: path = ExecPath::kSerial; break;
    }
    FBMPK_TSPAN_ARGS(kService, "service.batch_rung", {.k = seed->k});
    return lease.plan->try_power_batch(xs.data(),
                                       static_cast<index_t>(xs.size()),
                                       seed->k, ys.data(), path, &exec->ctl);
  };

  // Same degradation ladder as the single-vector path, shared sticky
  // rung on the cached plan.
  int rung_i = std::clamp(
      lease.entry->degrade_level.load(std::memory_order_acquire), 0,
      static_cast<int>(Rung::kSerial));
  int steps = 0;
  Status st;
  for (;;) {
    const Rung rung = static_cast<Rung>(rung_i);
    st = run_batch_rung(rung);
    if (st.ok()) break;
    const ErrorCode code = st.code();
    if (code == ErrorCode::kCancelled || code == ErrorCode::kTimeout) break;
    if (rung_i >= static_cast<int>(Rung::kSerial)) break;
    if (code == ErrorCode::kUnsupported) {
      ++rung_i;
      continue;
    }
    if (!opts_.allow_degradation) break;
    FBMPK_TSPAN(kService, "service.degrade");
    if (rung == Rung::kEngine) {
      degrade_engine_to_barrier_.fetch_add(1, std::memory_order_relaxed);
      FBMPK_TCOUNT("service.degrade.engine_to_barrier", 1);
    } else {
      degrade_barrier_to_serial_.fetch_add(1, std::memory_order_relaxed);
      FBMPK_TCOUNT("service.degrade.barrier_to_serial", 1);
    }
    maybe_flight_dump("degrade");
    ++steps;
    ++rung_i;
    lease.entry->degrade_level.store(rung_i, std::memory_order_release);
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    std::erase(batches_, exec);
  }

  // Per-member finalize: a member cancelled mid-sweep keeps its own
  // reason (its lane's work was shared, but its answer was abandoned);
  // survivors get the batch status, then per-member certification with
  // the usual single-vector fp64 rebuild path.
  const Rung rung_used = static_cast<Rung>(rung_i);
  MpkPlan::Workspace ws;
  bool any_timeout = false;
  for (const auto& r : live) {
    if (r->done_flag.load(std::memory_order_acquire))
      continue;  // force-completed by the watchdog
    Status mst = st;
    bool rebuilt = false;
    if (r->ctl.cancelled()) {
      mst = Error(r->ctl.cancel_reason(),
                  "request cancelled during a batched sweep");
    } else if (mst.ok()) {
      // The rebuild rerun is a real sweep under the member's token:
      // surface it to the stuck detector like any single run.
      r->running.store(true, std::memory_order_release);
      certify_result(r, mst, rung_used, ws, rebuilt);
      r->running.store(false, std::memory_order_release);
    }
    if (!mst.ok() && mst.code() == ErrorCode::kTimeout) any_timeout = true;
    complete(r, mst, rung_used, steps, cache_hit, rebuilt);
  }
  if (any_timeout) maybe_flight_dump("timeout");
}

void MpkService::complete(const std::shared_ptr<Request>& req, Status status,
                          Rung rung, int degrade_steps, bool cache_hit,
                          bool precision_rebuilt) {
  const bool ok = status.ok();
  const ErrorCode code = ok ? ErrorCode::kInternal : status.code();
  {
    std::lock_guard<std::mutex> lock(req->m);
    if (req->done) return;  // first completer wins
    // Windowed SLO accounting happens exactly once, on the winning
    // completion (MetricsWindows has its own lock; never takes mu_).
    const auto lat = Clock::now() - req->submitted_at;
    const std::uint64_t latency_ns = static_cast<std::uint64_t>(std::max<
        std::int64_t>(
        0,
        std::chrono::duration_cast<std::chrono::nanoseconds>(lat).count()));
    windows_.record_request(latency_ns, static_cast<int>(rung), ok, code);
    FBMPK_THIST(kRequestLatency, latency_ns);
    req->result.status = std::move(status);
    req->result.rung = rung;
    req->result.degrade_steps = degrade_steps;
    req->result.cache_hit = cache_hit;
    req->result.precision_rebuilt = precision_rebuilt;
    // Counters update before `done` becomes visible so a caller that
    // reads stats() right after wait() returns sees this completion.
    completed_.fetch_add(1, std::memory_order_relaxed);
    if (code == ErrorCode::kTimeout) {
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      FBMPK_TCOUNT("service.timeout", 1);
    } else if (code == ErrorCode::kCancelled) {
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      FBMPK_TCOUNT("service.cancelled", 1);
    }
    req->done = true;
  }
  req->done_flag.store(true, std::memory_order_release);
  req->cv.notify_all();
}

void MpkService::watchdog_loop() {
  const auto interval =
      seconds_to_duration(std::max(1e-4, opts_.watchdog_interval_seconds));
  const auto grace =
      seconds_to_duration(std::max(1e-3, opts_.stuck_grace_seconds));
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    watchdog_cv_.wait_for(lock, interval);
    if (shutdown_) return;
    const auto now = Clock::now();
    windows_.sample_queue_depth(queue_.size());
    // Quarantine dumps are deferred past both scans: the dump does
    // I/O and takes the telemetry registry lock, neither of which
    // belongs under mu_.
    const char* pending_dump = nullptr;
    for (auto& [id, req] : active_) {
      if (req->done_flag.load(std::memory_order_acquire)) continue;
      if (req->deadline_seconds > 0.0 && now >= req->deadline_tp)
        req->ctl.request_cancel(ErrorCode::kTimeout);
      if (!req->running.load(std::memory_order_acquire) ||
          !req->ctl.cancelled())
        continue;
      // A cancelled request should unwind within a few stage
      // boundaries. Track the sweep heartbeat: if it freezes past the
      // grace period the plan's schedule is wedged — force-complete
      // the ticket and quarantine the plan.
      const std::uint64_t p =
          req->ctl.progress.load(std::memory_order_relaxed);
      if (!req->cancel_seen || p != req->last_progress) {
        req->cancel_seen = true;
        req->last_progress = p;
        req->last_progress_change = now;
        continue;
      }
      if (now - req->last_progress_change < grace) continue;
      if (cache_.quarantine(req->key)) {
        quarantines_.fetch_add(1, std::memory_order_relaxed);
        FBMPK_TCOUNT("service.quarantine", 1);
        pending_dump = "quarantine";
      }
      complete(req,
               Error(req->ctl.cancel_reason(),
                     "sweep made no progress past the grace period; plan "
                     "quarantined"),
               Rung::kSerial, 0, false, false);
    }
    for (auto& exec : batches_) {
      // A batch whose members are all dead (cancelled or already
      // force-completed) has nobody left to serve: cancel the sweep.
      bool any_live = false;
      for (const auto& r : exec->members)
        if (!r->done_flag.load(std::memory_order_acquire) &&
            !r->ctl.cancelled()) {
          any_live = true;
          break;
        }
      if (!any_live) exec->ctl.request_cancel(ErrorCode::kCancelled);
      if (!exec->ctl.cancelled()) continue;
      // Same frozen-heartbeat rule as single requests, on the batch
      // token: no progress past the grace period means the schedule is
      // wedged — quarantine the plan and force-complete every member.
      const std::uint64_t p =
          exec->ctl.progress.load(std::memory_order_relaxed);
      if (!exec->cancel_seen || p != exec->last_progress) {
        exec->cancel_seen = true;
        exec->last_progress = p;
        exec->last_progress_change = now;
        continue;
      }
      if (now - exec->last_progress_change < grace) continue;
      if (cache_.quarantine(exec->key)) {
        quarantines_.fetch_add(1, std::memory_order_relaxed);
        FBMPK_TCOUNT("service.quarantine", 1);
        pending_dump = "quarantine";
      }
      for (const auto& r : exec->members)
        complete(r,
                 Error(r->ctl.cancelled() ? r->ctl.cancel_reason()
                                          : exec->ctl.cancel_reason(),
                       "batched sweep made no progress past the grace "
                       "period; plan quarantined"),
                 Rung::kSerial, 0, false, false);
    }
    if (pending_dump != nullptr) {
      lock.unlock();
      maybe_flight_dump(pending_dump);
      lock.lock();
    }
  }
}

ServiceStats MpkService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected_overload = rejected_overload_.load(std::memory_order_relaxed);
  s.timeouts = timeouts_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.degrade_engine_to_barrier =
      degrade_engine_to_barrier_.load(std::memory_order_relaxed);
  s.degrade_barrier_to_serial =
      degrade_barrier_to_serial_.load(std::memory_order_relaxed);
  s.precision_rebuilds = precision_rebuilds_.load(std::memory_order_relaxed);
  s.quarantines = quarantines_.load(std::memory_order_relaxed);
  s.batches = batches_run_.load(std::memory_order_relaxed);
  s.batch_coalesced = batch_coalesced_.load(std::memory_order_relaxed);
  s.cache = cache_.stats();
  return s;
}

ServiceMetricsWindow MpkService::window(double horizon_seconds) const {
  return windows_.snapshot(horizon_seconds);
}

}  // namespace fbmpk::service
