#include "service/batcher.hpp"

#include "telemetry/telemetry.hpp"

namespace fbmpk::service {

void record_batch_telemetry(std::size_t width) {
  FBMPK_THIST(kBatchWidth, width);
  if (width > 1)
    FBMPK_TCOUNT("service.batch_coalesced",
                 static_cast<std::int64_t>(width));
}

}  // namespace fbmpk::service
