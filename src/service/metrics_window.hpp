// Sliding-window SLO metrics for MpkService (docs/OBSERVABILITY.md).
//
// The service's ServiceStats counters are monotonic since process
// start — useful for totals, useless for "is the service healthy right
// now". MetricsWindows keeps the last ~minute of request latency,
// queue depth, batch width, cache behaviour and ladder-rung outcomes
// in a fixed ring of slices (telemetry::SlidingWindow), and
// snapshot() folds the live slices into one ServiceMetricsWindow with
// p50/p95/p99 latency. Memory is constant no matter how long the
// service runs.
//
// The same snapshot feeds three consumers: the `serve --heartbeat`
// one-liner (format_heartbeat / parse_heartbeat), the Prometheus
// exposition (service_families + telemetry::prometheus_render), and
// tests. Every recording method takes an explicit now so tests are
// deterministic.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "support/error.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/sliding_window.hpp"
#include "telemetry/telemetry.hpp"

namespace fbmpk::service {

struct ServiceStats;

/// One folded view over the live slices of a MetricsWindows.
struct ServiceMetricsWindow {
  double window_seconds = 0.0;  ///< horizon the snapshot covered

  // Request completions inside the window.
  std::uint64_t completed = 0;
  std::uint64_t ok = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;

  // Queue depth as sampled by the watchdog tick.
  double queue_depth_mean = 0.0;
  std::uint64_t queue_depth_max = 0;
  std::uint64_t queue_samples = 0;

  // Coalescer batch widths (multi-member sweeps only count > 1 wide
  // when batching is on; width 1 still counts a batch).
  double batch_width_mean = 0.0;
  std::uint64_t batches = 0;

  // Plan-cache behaviour for requests admitted in the window.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  double cache_hit_ratio = 0.0;  ///< hits / (hits + misses); 0 when idle

  /// Completions per ladder rung: [engine, barrier, serial].
  std::array<std::uint64_t, 3> rung_completions{};

  // Failure classes inside the window.
  std::uint64_t timeouts = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t cancelled = 0;
};

/// Fixed-memory sliding aggregation; all methods thread-safe (one
/// internal mutex — callers are the service's cold paths, never the
/// sweep hot loop).
class MetricsWindows {
 public:
  /// Defaults cover a 65 s ring (13 slices x 5 s) so the default 60 s
  /// horizon always has a full complement of slices behind it.
  explicit MetricsWindows(std::int64_t slice_ns = 5'000'000'000,
                          int slices = 13);

  void record_request(std::uint64_t latency_ns, int rung, bool ok,
                      ErrorCode code,
                      std::int64_t t_ns = telemetry::now_ns());
  void record_cache(bool hit, std::int64_t t_ns = telemetry::now_ns());
  void record_batch_width(std::size_t width,
                          std::int64_t t_ns = telemetry::now_ns());
  void sample_queue_depth(std::size_t depth,
                          std::int64_t t_ns = telemetry::now_ns());

  ServiceMetricsWindow snapshot(
      double horizon_seconds,
      std::int64_t t_ns = telemetry::now_ns()) const;

 private:
  struct Slice {
    telemetry::Histogram latency;
    std::uint64_t completed = 0;
    std::uint64_t ok = 0;
    std::array<std::uint64_t, 3> rung{};
    std::uint64_t timeouts = 0;
    std::uint64_t overloaded = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t batches = 0;
    std::uint64_t batch_width_sum = 0;
    std::uint64_t queue_samples = 0;
    std::uint64_t queue_depth_sum = 0;
    std::uint64_t queue_depth_max = 0;
  };

  mutable std::mutex mu_;
  telemetry::SlidingWindow<Slice> win_;
};

/// One-line heartbeat for `serve --heartbeat` and fbmpk_soak. The
/// format is a stable contract (parse_heartbeat round-trips it):
///   fbmpk-heartbeat win=60s done=123 ok=120 p50=1.2ms p95=3.4ms
///   p99=7.8ms depth=0.5/3 batch=1.8 hit=0.96 rungs=118/2/0 to=1 ov=2
///   cx=0
std::string format_heartbeat(const ServiceMetricsWindow& w);

/// Parse a format_heartbeat() line back into `out` (fields not carried
/// by the line — mean/max latency, sample counts — stay zero). Returns
/// false on any malformed or truncated line.
bool parse_heartbeat(const std::string& line, ServiceMetricsWindow* out);

/// Prometheus families for one service: windowed SLO gauges/summary
/// (fbmpk_request_latency_seconds{quantile=...}, fbmpk_queue_depth,
/// fbmpk_cache_hit_ratio, fbmpk_rung_completions{rung=...}, ...) plus
/// the monotonic ServiceStats totals as counters.
std::vector<telemetry::PromFamily> service_families(
    const ServiceStats& stats, const ServiceMetricsWindow& w);

}  // namespace fbmpk::service
