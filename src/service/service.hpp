// MpkService — a resilient, long-lived serving front end over MpkPlan
// (docs/SERVICE.md).
//
// A request is "compute y = A^k x with a deadline". The service owns:
//
//  - an LRU PlanCache keyed by matrix fingerprint, so repeated
//    requests against the same matrix amortize the one-off build the
//    paper assumes is offline (§V-F);
//  - admission control: a bounded queue; submissions past the bound
//    are rejected immediately with ErrorCode::kOverloaded instead of
//    growing latency without bound;
//  - per-request deadlines: a watchdog thread cancels overdue
//    requests through a cooperative RunControl token polled at sweep
//    color/k boundaries (kTimeout), and quarantines a plan whose
//    sweep stops making progress past a grace period;
//  - a graceful-degradation ladder: p2p engine -> barrier kernel ->
//    serial sweep, stepped on resource failures, plus an opt-in
//    fp32 -> fp64 plan rebuild when precision certification fails.
//    The rung is sticky per cached plan, and every transition is
//    recorded (service.degrade.* counters + a kService span);
//  - optional request coalescing (max_batch > 1): queued requests
//    against the same matrix fingerprint and k are gathered under a
//    short window into one multi-vector sweep (try_power_batch), with
//    deadlines/cancellation/certification still applied per request.
//
// Every request terminates with either a correct result or a typed
// error — never a crash, hang, or silent wrong answer. All rungs
// issue identical per-row kernels, so for exact-mode plans a degraded
// result is bitwise identical to the serial oracle.
//
// Thread-safety: all public methods are safe to call concurrently.
// The caller's x/y spans are copied in at submit and out at wait, so
// a force-completed (timed-out) request can never write through a
// span the caller has abandoned.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/plan.hpp"
#include "service/batcher.hpp"
#include "service/metrics_window.hpp"
#include "service/plan_cache.hpp"
#include "sparse/csr.hpp"
#include "support/error.hpp"

namespace fbmpk::service {

/// Degradation-ladder rungs, fastest first. Each maps onto one
/// MpkPlan::ExecPath; kSerial always succeeds (modulo cancellation).
enum class Rung : int { kEngine = 0, kBarrier = 1, kSerial = 2 };

const char* rung_name(Rung r);

struct ServiceOptions {
  std::size_t cache_capacity = 8;  ///< distinct plans kept hydrated
  std::size_t max_queue = 64;      ///< admission bound (queued, not active)
  int workers = 2;                 ///< request worker threads
  /// Deadline applied when a request doesn't carry its own; <= 0
  /// means no default deadline.
  double default_deadline_seconds = 0.0;
  double watchdog_interval_seconds = 0.005;
  /// A cancelled request whose sweep heartbeat stays frozen this long
  /// is declared stuck: its ticket is force-completed (kTimeout) and
  /// the plan is quarantined so the wedged schedule is never reused.
  double stuck_grace_seconds = 2.0;
  bool allow_degradation = true;  ///< step the ladder on rung failure
  /// Rebuild the plan at fp64 value storage and retry once when a
  /// reduced-precision result fails certification (non-finite output).
  bool rebuild_fp64_on_cert_failure = false;
  /// Request coalescing (docs/SERVICE.md): a worker that pops a
  /// request gathers queued requests with the same matrix fingerprint
  /// and k into one multi-vector sweep, up to max_batch wide. 1 (the
  /// default) disables coalescing entirely.
  std::size_t max_batch = 1;
  /// How long a worker holding a lone request waits for same-key
  /// company before sweeping it alone. 0 batches only what is already
  /// queued at pop time.
  double batch_window_us = 0.0;
  PlanOptions plan;  ///< construction options for cache misses
};

struct RequestOptions {
  /// Deadline for this request; < 0 uses the service default, 0
  /// disables even the default.
  double deadline_seconds = -1.0;
};

/// Outcome of one request, returned by wait()/power().
struct RequestResult {
  Status status;                 ///< ok, or typed kTimeout/kOverloaded/...
  Rung rung = Rung::kEngine;     ///< ladder rung that produced the result
  int degrade_steps = 0;         ///< ladder transitions taken this request
  bool cache_hit = false;        ///< plan came from the cache
  bool precision_rebuilt = false;  ///< fp64 rebuild path was taken
};

/// Monotonic service counters (snapshot; independent of telemetry).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  ///< finished with any status
  std::uint64_t rejected_overload = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t degrade_engine_to_barrier = 0;
  std::uint64_t degrade_barrier_to_serial = 0;
  std::uint64_t precision_rebuilds = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t batches = 0;  ///< multi-member batched sweeps run
  /// Requests that were served inside a multi-member batch.
  std::uint64_t batch_coalesced = 0;
  CacheStats cache;
};

class MpkService {
 public:
  using RequestId = std::uint64_t;

  explicit MpkService(ServiceOptions opts = {});
  /// Cancels queued work, waits for in-flight requests, joins threads.
  ~MpkService();

  MpkService(const MpkService&) = delete;
  MpkService& operator=(const MpkService&) = delete;

  /// Enqueue y = a^k x. Copies `x`; `a` must stay alive until the
  /// request completes (the plan build may read it on a cache miss).
  /// Never throws and never blocks on the queue: an over-bound
  /// submission is completed immediately with kOverloaded.
  RequestId submit(const CsrMatrix<double>& a, std::span<const double> x,
                   int k, RequestOptions ropts = {});

  /// Block until `id` completes; copies the result into `y` when the
  /// status is ok (`y` must hold rows() doubles). An unknown or
  /// already-waited id fails with kInternal.
  RequestResult wait(RequestId id, std::span<double> y);

  /// Request cooperative cancellation (kCancelled). Returns false when
  /// the request already completed or is unknown.
  bool cancel(RequestId id);

  /// Blocking convenience: submit + wait.
  RequestResult power(const CsrMatrix<double>& a, std::span<const double> x,
                      int k, std::span<double> y, RequestOptions ropts = {});

  ServiceStats stats() const;
  /// Sliding-window SLO snapshot over the last `horizon_seconds`
  /// (docs/OBSERVABILITY.md): latency quantiles, queue depth, batch
  /// width, cache hit ratio, rung occupancy.
  ServiceMetricsWindow window(double horizon_seconds = 60.0) const;
  PlanCache& cache() { return cache_; }
  const ServiceOptions& options() const { return opts_; }

 private:
  struct Request;
  struct BatchExec;

  void worker_loop();
  void watchdog_loop();
  void execute(const std::shared_ptr<Request>& req);
  void execute_batch(const std::vector<std::shared_ptr<Request>>& batch);
  Status run_rung(const std::shared_ptr<Request>& req, const MpkPlan& plan,
                  Rung rung, MpkPlan::Workspace& ws);
  /// Post-sweep precision certification for one request's result, with
  /// the optional one-shot fp64 rebuild. Updates st in place; sets
  /// precision_rebuilt when the rebuild path ran.
  void certify_result(const std::shared_ptr<Request>& req, Status& st,
                      Rung rung, MpkPlan::Workspace& ws,
                      bool& precision_rebuilt);
  void complete(const std::shared_ptr<Request>& req, Status status,
                Rung rung, int degrade_steps, bool cache_hit,
                bool precision_rebuilt);

  ServiceOptions opts_;
  PlanCache cache_;
  Coalescer coalescer_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;     ///< workers: queue became non-empty
  std::condition_variable watchdog_cv_;  ///< watchdog: interval tick/shutdown
  std::deque<std::shared_ptr<Request>> queue_;
  std::unordered_map<RequestId, std::shared_ptr<Request>> active_;
  /// In-flight batched sweeps, scanned by the watchdog: member
  /// RunControls stay per-request, but the sweep itself runs under the
  /// batch's own control token.
  std::vector<std::shared_ptr<BatchExec>> batches_;
  bool shutdown_ = false;
  /// Atomic so submit() can mint the id (and open the request's trace
  /// context) before taking mu_.
  std::atomic<std::uint64_t> next_id_{1};

  /// Sliding-window SLO aggregation (own internal mutex; never held
  /// together with mu_ in a path that could invert the order).
  mutable MetricsWindows windows_;

  std::vector<std::thread> workers_;
  std::thread watchdog_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rejected_overload_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> degrade_engine_to_barrier_{0};
  std::atomic<std::uint64_t> degrade_barrier_to_serial_{0};
  std::atomic<std::uint64_t> precision_rebuilds_{0};
  std::atomic<std::uint64_t> quarantines_{0};
  std::atomic<std::uint64_t> batches_run_{0};
  std::atomic<std::uint64_t> batch_coalesced_{0};
};

}  // namespace fbmpk::service
