#include "service/metrics_window.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "service/service.hpp"

namespace fbmpk::service {

MetricsWindows::MetricsWindows(std::int64_t slice_ns, int slices)
    : win_(slice_ns, slices) {}

void MetricsWindows::record_request(std::uint64_t latency_ns, int rung,
                                    bool ok, ErrorCode code,
                                    std::int64_t t_ns) {
  std::lock_guard<std::mutex> lk(mu_);
  Slice& s = win_.at(t_ns);
  s.latency.add(latency_ns);
  ++s.completed;
  if (ok) ++s.ok;
  if (rung >= 0 && rung < 3) ++s.rung[static_cast<std::size_t>(rung)];
  if (!ok) {
    if (code == ErrorCode::kTimeout) ++s.timeouts;
    if (code == ErrorCode::kOverloaded) ++s.overloaded;
    if (code == ErrorCode::kCancelled) ++s.cancelled;
  }
}

void MetricsWindows::record_cache(bool hit, std::int64_t t_ns) {
  std::lock_guard<std::mutex> lk(mu_);
  Slice& s = win_.at(t_ns);
  if (hit)
    ++s.cache_hits;
  else
    ++s.cache_misses;
}

void MetricsWindows::record_batch_width(std::size_t width,
                                        std::int64_t t_ns) {
  std::lock_guard<std::mutex> lk(mu_);
  Slice& s = win_.at(t_ns);
  ++s.batches;
  s.batch_width_sum += width;
}

void MetricsWindows::sample_queue_depth(std::size_t depth,
                                        std::int64_t t_ns) {
  std::lock_guard<std::mutex> lk(mu_);
  Slice& s = win_.at(t_ns);
  ++s.queue_samples;
  s.queue_depth_sum += depth;
  s.queue_depth_max = std::max(s.queue_depth_max,
                               static_cast<std::uint64_t>(depth));
}

ServiceMetricsWindow MetricsWindows::snapshot(double horizon_seconds,
                                              std::int64_t t_ns) const {
  ServiceMetricsWindow w;
  w.window_seconds = horizon_seconds;
  const std::int64_t horizon_ns =
      static_cast<std::int64_t>(horizon_seconds * 1e9);

  telemetry::Histogram latency;
  std::uint64_t batch_width_sum = 0;
  std::uint64_t queue_depth_sum = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    win_.for_each_live(horizon_ns, t_ns, [&](const Slice& s) {
      latency.merge(s.latency);
      w.completed += s.completed;
      w.ok += s.ok;
      for (std::size_t r = 0; r < 3; ++r) w.rung_completions[r] += s.rung[r];
      w.timeouts += s.timeouts;
      w.overloaded += s.overloaded;
      w.cancelled += s.cancelled;
      w.cache_hits += s.cache_hits;
      w.cache_misses += s.cache_misses;
      w.batches += s.batches;
      batch_width_sum += s.batch_width_sum;
      w.queue_samples += s.queue_samples;
      queue_depth_sum += s.queue_depth_sum;
      w.queue_depth_max = std::max(w.queue_depth_max, s.queue_depth_max);
    });
  }

  w.p50_ms = latency.quantile(0.50) * 1e-6;
  w.p95_ms = latency.quantile(0.95) * 1e-6;
  w.p99_ms = latency.quantile(0.99) * 1e-6;
  w.mean_ms = latency.mean_ns() * 1e-6;
  w.max_ms = static_cast<double>(latency.max_ns) * 1e-6;
  if (w.queue_samples > 0)
    w.queue_depth_mean = static_cast<double>(queue_depth_sum) /
                         static_cast<double>(w.queue_samples);
  if (w.batches > 0)
    w.batch_width_mean = static_cast<double>(batch_width_sum) /
                         static_cast<double>(w.batches);
  if (w.cache_hits + w.cache_misses > 0)
    w.cache_hit_ratio = static_cast<double>(w.cache_hits) /
                        static_cast<double>(w.cache_hits + w.cache_misses);
  return w;
}

std::string format_heartbeat(const ServiceMetricsWindow& w) {
  char buf[320];
  std::snprintf(
      buf, sizeof buf,
      "fbmpk-heartbeat win=%gs done=%" PRIu64 " ok=%" PRIu64
      " p50=%gms p95=%gms p99=%gms depth=%g/%" PRIu64 " batch=%g hit=%g"
      " rungs=%" PRIu64 "/%" PRIu64 "/%" PRIu64 " to=%" PRIu64
      " ov=%" PRIu64 " cx=%" PRIu64,
      w.window_seconds, w.completed, w.ok, w.p50_ms, w.p95_ms, w.p99_ms,
      w.queue_depth_mean, w.queue_depth_max, w.batch_width_mean,
      w.cache_hit_ratio, w.rung_completions[0], w.rung_completions[1],
      w.rung_completions[2], w.timeouts, w.overloaded, w.cancelled);
  return buf;
}

bool parse_heartbeat(const std::string& line, ServiceMetricsWindow* out) {
  if (out == nullptr) return false;
  ServiceMetricsWindow w;
  const int n = std::sscanf(
      line.c_str(),
      "fbmpk-heartbeat win=%lfs done=%" SCNu64 " ok=%" SCNu64
      " p50=%lfms p95=%lfms p99=%lfms depth=%lf/%" SCNu64
      " batch=%lf hit=%lf rungs=%" SCNu64 "/%" SCNu64 "/%" SCNu64
      " to=%" SCNu64 " ov=%" SCNu64 " cx=%" SCNu64,
      &w.window_seconds, &w.completed, &w.ok, &w.p50_ms, &w.p95_ms,
      &w.p99_ms, &w.queue_depth_mean, &w.queue_depth_max,
      &w.batch_width_mean, &w.cache_hit_ratio, &w.rung_completions[0],
      &w.rung_completions[1], &w.rung_completions[2], &w.timeouts,
      &w.overloaded, &w.cancelled);
  if (n != 16) return false;
  *out = w;
  return true;
}

std::vector<telemetry::PromFamily> service_families(
    const ServiceStats& stats, const ServiceMetricsWindow& w) {
  using telemetry::PromFamily;
  std::vector<PromFamily> out;

  const auto gauge = [&](const char* name, const char* help, double v) {
    PromFamily f;
    f.name = name;
    f.help = help;
    f.type = "gauge";
    f.samples.push_back({"", "", v});
    out.push_back(std::move(f));
  };
  const auto counter = [&](const char* name, const char* help,
                           std::uint64_t v) {
    PromFamily f;
    f.name = name;
    f.help = help;
    f.type = "counter";
    f.samples.push_back({"", "", static_cast<double>(v)});
    out.push_back(std::move(f));
  };

  // Windowed SLO view (the "is it healthy now" metrics).
  {
    PromFamily f;
    f.name = "fbmpk_request_latency_seconds";
    f.help = "Request latency quantiles over the sliding window";
    f.type = "summary";
    f.samples.push_back({"", "quantile=\"0.5\"", w.p50_ms * 1e-3});
    f.samples.push_back({"", "quantile=\"0.95\"", w.p95_ms * 1e-3});
    f.samples.push_back({"", "quantile=\"0.99\"", w.p99_ms * 1e-3});
    f.samples.push_back(
        {"_sum", "",
         w.mean_ms * 1e-3 * static_cast<double>(w.completed)});
    f.samples.push_back({"_count", "", static_cast<double>(w.completed)});
    out.push_back(std::move(f));
  }
  gauge("fbmpk_queue_depth",
        "Mean queued requests over the sliding window", w.queue_depth_mean);
  gauge("fbmpk_queue_depth_max",
        "Peak queued requests over the sliding window",
        static_cast<double>(w.queue_depth_max));
  gauge("fbmpk_cache_hit_ratio",
        "Plan-cache hit ratio over the sliding window", w.cache_hit_ratio);
  gauge("fbmpk_batch_width_mean",
        "Mean coalesced batch width over the sliding window",
        w.batch_width_mean);
  gauge("fbmpk_window_seconds", "Sliding-window horizon",
        w.window_seconds);
  {
    PromFamily f;
    f.name = "fbmpk_rung_completions";
    f.help = "Requests completed per degradation-ladder rung over the "
             "sliding window";
    f.type = "gauge";
    static const char* kRungs[3] = {"engine", "barrier", "serial"};
    for (std::size_t r = 0; r < 3; ++r)
      f.samples.push_back(
          {"", "rung=\"" + std::string(kRungs[r]) + "\"",
           static_cast<double>(w.rung_completions[r])});
    out.push_back(std::move(f));
  }
  gauge("fbmpk_window_timeouts",
        "Requests timed out over the sliding window",
        static_cast<double>(w.timeouts));
  gauge("fbmpk_window_overloaded",
        "Requests rejected kOverloaded over the sliding window",
        static_cast<double>(w.overloaded));

  // Monotonic totals since process start (ServiceStats).
  counter("fbmpk_requests_submitted_total", "Requests submitted",
          stats.submitted);
  counter("fbmpk_requests_completed_total",
          "Requests finished with any status", stats.completed);
  counter("fbmpk_rejected_overload_total",
          "Submissions rejected at admission", stats.rejected_overload);
  counter("fbmpk_timeouts_total", "Requests cancelled by deadline",
          stats.timeouts);
  counter("fbmpk_cancelled_total", "Requests cancelled by the caller",
          stats.cancelled);
  counter("fbmpk_degrade_engine_to_barrier_total",
          "Ladder transitions engine->barrier",
          stats.degrade_engine_to_barrier);
  counter("fbmpk_degrade_barrier_to_serial_total",
          "Ladder transitions barrier->serial",
          stats.degrade_barrier_to_serial);
  counter("fbmpk_quarantines_total", "Plans quarantined by the watchdog",
          stats.quarantines);
  counter("fbmpk_batches_total", "Multi-member batched sweeps run",
          stats.batches);
  counter("fbmpk_cache_hits_total", "Plan-cache hits", stats.cache.hits);
  counter("fbmpk_cache_misses_total", "Plan-cache misses (builds)",
          stats.cache.misses);
  return out;
}

}  // namespace fbmpk::service
