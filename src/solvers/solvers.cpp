#include "solvers/solvers.hpp"

#include <cmath>
#include <memory>

#include "reorder/permutation.hpp"
#include "sparse/validate.hpp"
#include "support/error.hpp"
#include "telemetry/telemetry.hpp"

namespace fbmpk::solvers {

namespace {

double dot(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(std::span<const double> v) { return std::sqrt(dot(v, v)); }

// Monomial coefficients of tau * sum_{i=0}^{deg} (1 - tau x)^i.
AlignedVector<double> richardson_coefficients(int degree, double tau) {
  std::vector<double> q{1.0};
  for (int m = 1; m <= degree; ++m) {
    std::vector<double> next(q.size() + 1, 0.0);
    for (std::size_t j = 0; j < q.size(); ++j) {
      next[j] += q[j];
      next[j + 1] -= tau * q[j];
    }
    next[0] += 1.0;
    q = std::move(next);
  }
  AlignedVector<double> out(q.begin(), q.end());
  for (auto& c : out) c *= tau;
  return out;
}

}  // namespace

Preconditioner identity_preconditioner() {
  return [](std::span<const double> r, std::span<double> z) {
    std::copy(r.begin(), r.end(), z.begin());
  };
}

Preconditioner symgs_preconditioner(const TriangularSplit<double>& split,
                                    const AbmcOrdering& schedule) {
  return [&split, &schedule](std::span<const double> r,
                             std::span<double> z) {
    std::fill(z.begin(), z.end(), 0.0);
    symgs_parallel<double>(split, schedule, r, z);
  };
}

Preconditioner polynomial_preconditioner(const MpkPlan& plan, int degree,
                                         double tau) {
  FBMPK_CHECK(degree >= 0 && tau > 0.0);
  auto coeffs =
      std::make_shared<AlignedVector<double>>(
          richardson_coefficients(degree, tau));
  auto ws = std::make_shared<MpkPlan::Workspace>();
  return [&plan, coeffs, ws](std::span<const double> r,
                             std::span<double> z) {
    plan.polynomial(*coeffs, r, z, *ws);
  };
}

SolveResult pcg(const CsrMatrix<double>& a, std::span<const double> b,
                std::span<double> x, const Preconditioner& precond,
                const SolveOptions& opts) {
  const index_t n = a.rows();
  FBMPK_CHECK(a.rows() == a.cols());
  FBMPK_CHECK(b.size() == static_cast<std::size_t>(n) &&
              x.size() == static_cast<std::size_t>(n));
  FBMPK_TSPAN(kSolver, "solver.pcg");

  AlignedVector<double> r(static_cast<std::size_t>(n));
  AlignedVector<double> z(static_cast<std::size_t>(n));
  AlignedVector<double> p(static_cast<std::size_t>(n));
  AlignedVector<double> ap(static_cast<std::size_t>(n));

  spmv<double>(a, x, r, SpmvExec::kParallel);
  for (index_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  const double b_norm = norm2(b);
  SolveResult res;
  if (b_norm == 0.0) {
    std::fill(x.begin(), x.end(), 0.0);
    res.converged = true;
    return res;
  }

  precond(r, z);
  std::copy(z.begin(), z.end(), p.begin());
  double rz = dot(r, z);

  for (res.iterations = 0; res.iterations < opts.max_iterations;) {
    if (opts.control != nullptr && opts.control->checkpoint()) {
      res.cancelled = true;
      res.code = opts.control->cancel_reason();
      return res;
    }
    spmv<double>(a, p, ap, SpmvExec::kParallel);
    const double pap = dot(p, ap);
    // Breakdown, not a bug: indefinite operators and NaN-poisoned
    // preconditioners surface here. Report instead of throwing so long
    // unattended runs get a diagnosable status.
    if (!std::isfinite(pap)) {
      res.breakdown = true;
      res.code = ErrorCode::kNumericalBreakdown;
      res.status = KernelStatus::breakdown(-1, "non-finite p^T A p");
      return res;
    }
    if (pap <= 0.0) {
      res.breakdown = true;
      res.code = ErrorCode::kNumericalBreakdown;
      res.status = KernelStatus::breakdown(
          -1, "matrix not SPD along search direction");
      return res;
    }
    const double alpha = rz / pap;
    for (index_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    ++res.iterations;
    res.relative_residual = norm2(r) / b_norm;
    if (!std::isfinite(res.relative_residual)) {
      res.breakdown = true;
      res.code = ErrorCode::kNumericalBreakdown;
      res.status = KernelStatus::breakdown(-1, "non-finite residual");
      return res;
    }
    if (res.relative_residual < opts.tolerance) {
      res.converged = true;
      return res;
    }
    precond(r, z);
    const double rz_new = dot(r, z);
    if (!std::isfinite(rz_new) || rz_new == 0.0) {
      res.breakdown = true;
      res.code = ErrorCode::kNumericalBreakdown;
      res.status = KernelStatus::breakdown(
          -1, "preconditioned inner product degenerate");
      return res;
    }
    const double beta = rz_new / rz;
    rz = rz_new;
    for (index_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  return res;
}

SolveResult chebyshev_iteration(const CsrMatrix<double>& a,
                                std::span<const double> b,
                                std::span<double> x, double lambda_min,
                                double lambda_max,
                                const SolveOptions& opts) {
  const index_t n = a.rows();
  FBMPK_CHECK(b.size() == static_cast<std::size_t>(n) &&
              x.size() == static_cast<std::size_t>(n));
  FBMPK_CHECK_MSG(0.0 < lambda_min && lambda_min < lambda_max,
                  "need 0 < lambda_min < lambda_max");
  FBMPK_TSPAN(kSolver, "solver.chebyshev");

  // Standard Chebyshev semi-iteration (Saad, Iterative Methods §12.3).
  const double theta = 0.5 * (lambda_max + lambda_min);
  const double delta = 0.5 * (lambda_max - lambda_min);
  const double sigma1 = theta / delta;
  double rho = 1.0 / sigma1;

  AlignedVector<double> r(static_cast<std::size_t>(n));
  AlignedVector<double> d(static_cast<std::size_t>(n));
  spmv<double>(a, x, r, SpmvExec::kParallel);
  for (index_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  const double b_norm = norm2(b);
  SolveResult res;
  if (b_norm == 0.0) {
    std::fill(x.begin(), x.end(), 0.0);
    res.converged = true;
    return res;
  }
  for (index_t i = 0; i < n; ++i) d[i] = r[i] / theta;

  for (res.iterations = 0; res.iterations < opts.max_iterations;) {
    if (opts.control != nullptr && opts.control->checkpoint()) {
      res.cancelled = true;
      res.code = opts.control->cancel_reason();
      return res;
    }
    for (index_t i = 0; i < n; ++i) x[i] += d[i];
    spmv<double>(a, x, r, SpmvExec::kParallel);
    for (index_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
    ++res.iterations;
    res.relative_residual = norm2(r) / b_norm;
    if (!std::isfinite(res.relative_residual)) {
      res.breakdown = true;
      res.code = ErrorCode::kNumericalBreakdown;
      res.status = KernelStatus::breakdown(-1, "non-finite residual");
      return res;
    }
    if (res.relative_residual < opts.tolerance) {
      res.converged = true;
      return res;
    }
    const double rho_new = 1.0 / (2.0 * sigma1 - rho);
    for (index_t i = 0; i < n; ++i)
      d[i] = rho_new * rho * d[i] + 2.0 * rho_new / delta * r[i];
    rho = rho_new;
  }
  return res;
}

std::pair<double, double> gershgorin_interval(const CsrMatrix<double>& a) {
  double hi = -1e300, lo = 1e300;
  for (index_t i = 0; i < a.rows(); ++i) {
    double center = 0.0, radius = 0.0;
    for (index_t e = a.row_ptr()[i]; e < a.row_ptr()[i + 1]; ++e) {
      if (a.col_idx()[e] == i)
        center = a.values()[e];
      else
        radius += std::abs(a.values()[e]);
    }
    hi = std::max(hi, center + radius);
    lo = std::min(lo, center - radius);
  }
  return {lo, hi};
}

EigenResult power_method(const CsrMatrix<double>& a, const MpkPlan& plan,
                         std::span<double> v, int block_steps,
                         const SolveOptions& opts) {
  const index_t n = a.rows();
  FBMPK_CHECK(v.size() == static_cast<std::size_t>(n));
  FBMPK_CHECK(block_steps >= 1);
  FBMPK_TSPAN_ARGS(kSolver, "solver.power_method", {.k = block_steps});

  const double vn = norm2(v);
  FBMPK_CHECK_MSG(vn > 0.0, "initial vector must be nonzero");
  for (auto& e : v) e /= vn;

  AlignedVector<double> y(static_cast<std::size_t>(n));
  AlignedVector<double> av(static_cast<std::size_t>(n));
  MpkPlan::Workspace ws;
  EigenResult res;
  double prev = 0.0;
  for (int iter = 0; iter * block_steps < opts.max_iterations; ++iter) {
    if (opts.control != nullptr && opts.control->checkpoint()) {
      res.cancelled = true;
      res.code = opts.control->cancel_reason();
      return res;
    }
    plan.power(std::span<const double>(v.data(), v.size()), block_steps, y,
               ws);
    const double yn = norm2(y);
    if (!std::isfinite(yn) || yn == 0.0) {
      // A^s v overflowed, NaN-poisoned, or annihilated v — normalizing
      // would propagate NaN into the eigenvector estimate.
      res.breakdown = true;
      res.code = ErrorCode::kNumericalBreakdown;
      return res;
    }
    for (index_t i = 0; i < n; ++i) v[i] = y[i] / yn;
    res.matvecs += block_steps;

    spmv<double>(a, v, av, SpmvExec::kParallel);
    res.eigenvalue = dot(v, av);
    if (std::abs(res.eigenvalue - prev) <
        opts.tolerance * std::max(1.0, std::abs(res.eigenvalue))) {
      res.converged = true;
      return res;
    }
    prev = res.eigenvalue;
  }
  return res;
}

// ---------------------------------------------------------------------------
// Two-level multigrid
// ---------------------------------------------------------------------------

TwoLevelMultigrid TwoLevelMultigrid::build(const CsrMatrix<double>& a,
                                           const Options& opts) {
  FBMPK_CHECK(a.rows() == a.cols() && a.rows() > 0);
  // The SYMGS smoother divides by the diagonal: a zero diagonal is a
  // breakdown of the method, reported as a typed error at build time
  // rather than as skipped rows during every smoothing sweep.
  {
    SanitizeOptions sopts;
    sopts.check_diagonal = true;
    check_matrix(a, sopts);
  }
  TwoLevelMultigrid mg;
  mg.n_ = a.rows();
  mg.opts_ = opts;

  AbmcOptions aopts;
  aopts.num_blocks = opts.abmc_blocks;
  mg.schedule_ = abmc_order(a, aopts);
  mg.perm_ = mg.schedule_.perm;
  mg.fine_ = permute_symmetric(a, mg.perm_);
  mg.split_ = split_triangular(mg.fine_);

  // Greedy pairwise aggregation on the (permuted) matrix graph: walk
  // rows, pair each unaggregated row with its strongest unaggregated
  // neighbor. Singletons become their own aggregate.
  const index_t n = mg.n_;
  mg.aggregate_of_.assign(static_cast<std::size_t>(n), -1);
  index_t next_agg = 0;
  const auto rp = mg.fine_.row_ptr();
  const auto ci = mg.fine_.col_idx();
  const auto va = mg.fine_.values();
  for (index_t i = 0; i < n; ++i) {
    if (mg.aggregate_of_[i] != -1) continue;
    index_t best = -1;
    double best_w = -1.0;
    for (index_t e = rp[i]; e < rp[i + 1]; ++e) {
      const index_t j = ci[e];
      if (j == i || mg.aggregate_of_[j] != -1) continue;
      const double w = std::abs(va[e]);
      if (w > best_w) {
        best_w = w;
        best = j;
      }
    }
    mg.aggregate_of_[i] = next_agg;
    if (best != -1) mg.aggregate_of_[best] = next_agg;
    ++next_agg;
  }
  FBMPK_CHECK(next_agg >= 1);

  // Galerkin coarse operator A_c = P^T A P with piecewise-constant P.
  CooMatrix<double> coarse(next_agg, next_agg);
  for (index_t i = 0; i < n; ++i)
    for (index_t e = rp[i]; e < rp[i + 1]; ++e)
      coarse.add(mg.aggregate_of_[i], mg.aggregate_of_[ci[e]], va[e]);
  mg.coarse_ = CsrMatrix<double>::from_coo(coarse);
  return mg;
}

void TwoLevelMultigrid::vcycle(std::span<const double> b,
                               std::span<double> x) const {
  const index_t n = n_;
  FBMPK_CHECK(b.size() == static_cast<std::size_t>(n) &&
              x.size() == static_cast<std::size_t>(n));
  FBMPK_TSPAN(kSolver, "solver.mg_vcycle");

  // Work in the permuted space.
  AlignedVector<double> pb(static_cast<std::size_t>(n));
  AlignedVector<double> px(static_cast<std::size_t>(n));
  permute_vector<double>(perm_, b, pb);
  permute_vector<double>(perm_, x, px);

  // Pre-smooth.
  for (int s = 0; s < opts_.pre_smooth; ++s)
    symgs_parallel<double>(split_, schedule_, pb, px);

  // Residual and restriction.
  AlignedVector<double> r(static_cast<std::size_t>(n));
  spmv<double>(fine_, px, r, SpmvExec::kParallel);
  for (index_t i = 0; i < n; ++i) r[i] = pb[i] - r[i];
  const index_t nc = coarse_.rows();
  AlignedVector<double> rc(static_cast<std::size_t>(nc), 0.0);
  for (index_t i = 0; i < n; ++i) rc[aggregate_of_[i]] += r[i];

  // Coarse solve (CG to tight tolerance — the coarse system is small).
  AlignedVector<double> ec(static_cast<std::size_t>(nc), 0.0);
  SolveOptions copts;
  copts.tolerance = 1e-12;
  copts.max_iterations = 4 * nc;
  pcg(coarse_, rc, ec, identity_preconditioner(), copts);

  // Prolong and correct.
  for (index_t i = 0; i < n; ++i) px[i] += ec[aggregate_of_[i]];

  // Post-smooth.
  for (int s = 0; s < opts_.post_smooth; ++s)
    symgs_parallel<double>(split_, schedule_, pb, px);

  unpermute_vector<double>(perm_, px, x);
}

SolveResult TwoLevelMultigrid::solve(std::span<const double> b,
                                     std::span<double> x,
                                     const SolveOptions& opts) const {
  // Cycle until the residual target or the iteration cap.
  AlignedVector<double> r(b.size());
  const double b_norm = norm2(b);
  SolveResult res;
  if (b_norm == 0.0) {
    std::fill(x.begin(), x.end(), 0.0);
    res.converged = true;
    return res;
  }
  // Un-permuted fine operator is not stored; compute residuals on the
  // permuted one via a round-trip (clarity over speed — this is the
  // outer loop).
  for (res.iterations = 0; res.iterations < opts.max_iterations;) {
    if (opts.control != nullptr && opts.control->checkpoint()) {
      res.cancelled = true;
      res.code = opts.control->cancel_reason();
      return res;
    }
    vcycle(b, x);
    ++res.iterations;
    AlignedVector<double> px(x.size()), pr(x.size());
    permute_vector<double>(perm_, x, px);
    spmv<double>(fine_, px, pr, SpmvExec::kParallel);
    AlignedVector<double> pb(b.size());
    permute_vector<double>(perm_, b, pb);
    for (std::size_t i = 0; i < pr.size(); ++i) pr[i] = pb[i] - pr[i];
    res.relative_residual = norm2(pr) / b_norm;
    if (res.relative_residual < opts.tolerance) {
      res.converged = true;
      return res;
    }
  }
  return res;
}

}  // namespace fbmpk::solvers
