// Iterative solvers and eigen-utilities built on the library's kernels —
// the application layer the paper motivates SSpMV with (§I: linear
// equations, eigenvalue problems, multigrid).
//
// Everything here consumes the public substrate: SpMV, MpkPlan
// (polynomial preconditioning), SYMGS (smoothing/preconditioning), and
// the ABMC schedule (exact parallel smoothers).
#pragma once

#include <functional>
#include <span>

#include "core/plan.hpp"
#include "kernels/spmv.hpp"
#include "kernels/symgs.hpp"
#include "reorder/abmc.hpp"
#include "sparse/split.hpp"
#include "support/aligned_buffer.hpp"

namespace fbmpk::solvers {

/// Convergence report shared by the solvers. A numerical breakdown
/// (non-finite residual/iterate, loss of positive-definiteness along a
/// search direction, zero diagonal hit by a D^-1 sweep) ends the
/// iteration with `breakdown` set and a diagnostic in `status` —
/// solvers report it instead of looping on NaN or throwing.
struct SolveResult {
  int iterations = 0;
  double relative_residual = 0.0;  ///< ||b - A x|| / ||b|| at exit
  bool converged = false;
  bool breakdown = false;          ///< iteration stopped on a breakdown
  KernelStatus status;             ///< details when breakdown is set
  bool cancelled = false;          ///< SolveOptions::control fired
  /// Typed stop reason: kTimeout/kCancelled when `cancelled` (the
  /// token's reason), kNumericalBreakdown when `breakdown`; kInternal
  /// means neither fired.
  ErrorCode code = ErrorCode::kInternal;
};

/// Solver controls.
struct SolveOptions {
  int max_iterations = 1000;
  double tolerance = 1e-10;  ///< on the relative residual
  /// Optional cooperative cancellation/deadline token (the serving
  /// layer's RunControl). Polled once per outer iteration: when it has
  /// fired the solver returns with `cancelled` set and `code` carrying
  /// the token's reason (kTimeout/kCancelled) instead of running out
  /// the iteration budget on a result nobody is waiting for.
  RunControl* control = nullptr;
};

/// A preconditioner maps a residual r to z ~= M^{-1} r.
using Preconditioner =
    std::function<void(std::span<const double> r, std::span<double> z)>;

/// Identity preconditioner (plain CG).
Preconditioner identity_preconditioner();

/// One multi-color SYMGS sweep from a zero guess — SPD for SPD A, the
/// HPCG preconditioner. The split/schedule must belong to the SAME
/// (permuted) matrix the solver runs on.
Preconditioner symgs_preconditioner(const TriangularSplit<double>& split,
                                    const AbmcOrdering& schedule);

/// Degree-d Richardson/Neumann polynomial preconditioner evaluated in
/// one FBMPK pass through `plan` (which must be built from A).
Preconditioner polynomial_preconditioner(const MpkPlan& plan, int degree,
                                         double tau);

/// Preconditioned conjugate gradient for SPD A. x holds the initial
/// guess on entry and the solution on exit.
SolveResult pcg(const CsrMatrix<double>& a, std::span<const double> b,
                std::span<double> x, const Preconditioner& precond,
                const SolveOptions& opts = {});

/// Chebyshev semi-iteration for SPD A with spectrum inside
/// [lambda_min, lambda_max]: fixed coefficients, no inner products —
/// the communication-free iteration MPK kernels exist to accelerate.
SolveResult chebyshev_iteration(const CsrMatrix<double>& a,
                                std::span<const double> b,
                                std::span<double> x, double lambda_min,
                                double lambda_max,
                                const SolveOptions& opts = {});

/// Dominant eigenpair via power iteration blocked through an MpkPlan
/// (s SpMV steps per normalized block, as in the paper's eigensolver
/// motivation). Returns the Rayleigh-quotient estimate; v holds the
/// normalized eigenvector approximation.
struct EigenResult {
  double eigenvalue = 0.0;
  int matvecs = 0;
  bool converged = false;
  bool breakdown = false;   ///< A^s v became non-finite or zero
  bool cancelled = false;   ///< SolveOptions::control fired
  ErrorCode code = ErrorCode::kInternal;  ///< reason when cancelled
};
EigenResult power_method(const CsrMatrix<double>& a, const MpkPlan& plan,
                         std::span<double> v, int block_steps = 6,
                         const SolveOptions& opts = {});

/// Gershgorin bounds [lo, hi] on the spectrum of A.
std::pair<double, double> gershgorin_interval(const CsrMatrix<double>& a);

/// Two-level multigrid V-cycle solver for SPD grid-like operators:
/// SYMGS pre/post smoothing, full-weighting-style aggregation
/// restriction (pairwise row aggregation by the matrix graph), Galerkin
/// coarse operator, direct-ish coarse solve (CG to tight tolerance).
/// Built once per matrix; apply as a solver or a preconditioner.
class TwoLevelMultigrid {
 public:
  struct Options {
    int pre_smooth = 1;
    int post_smooth = 1;
    index_t min_coarse_rows = 64;   ///< stop aggregating below this
    index_t abmc_blocks = 256;      ///< for the smoother schedule
  };

  static TwoLevelMultigrid build(const CsrMatrix<double>& a,
                                 const Options& opts);
  /// Overload with default options (a default argument of a nested
  /// aggregate is ill-formed inside the enclosing class definition).
  static TwoLevelMultigrid build(const CsrMatrix<double>& a) {
    return build(a, Options{});
  }

  /// One V-cycle applied to (b, x) in place.
  void vcycle(std::span<const double> b, std::span<double> x) const;

  /// Solve to tolerance via repeated V-cycles.
  SolveResult solve(std::span<const double> b, std::span<double> x,
                    const SolveOptions& opts = {}) const;

  index_t fine_rows() const { return n_; }
  index_t coarse_rows() const { return coarse_.rows(); }

 private:
  index_t n_ = 0;
  Options opts_;
  CsrMatrix<double> fine_;              // ABMC-permuted fine operator
  Permutation perm_;                    // fine permutation
  AbmcOrdering schedule_;               // smoother schedule
  TriangularSplit<double> split_;       // fine split for SYMGS
  std::vector<index_t> aggregate_of_;   // fine (permuted) row -> coarse row
  CsrMatrix<double> coarse_;            // Galerkin coarse operator
};

}  // namespace fbmpk::solvers
