// Unstructured matrix generators: banded random (di)graphs and
// circuit-like networks.
//
// These cover the evaluation-set members that are not FEM meshes:
// cage14 (a banded, unsymmetric DNA-electrophoresis transition graph)
// and G3_circuit (an extremely sparse circuit network, ~4.8 nnz/row).
#pragma once

#include <cstdint>

#include "sparse/csr.hpp"

namespace fbmpk::gen {

/// Options for banded random matrices.
struct RandomBandedOptions {
  index_t bandwidth = 1000;      ///< |i - j| <= bandwidth for all entries
  double avg_row_nnz = 18.0;     ///< expected stored entries per row
  bool symmetric = true;         ///< mirror entries across the diagonal
  std::uint64_t seed = 1;
};

/// Random matrix with entries confined to a diagonal band. Every row gets
/// a diagonal entry; off-diagonals are sampled uniformly in the band.
/// Symmetric mode samples the upper triangle and mirrors it.
CsrMatrix<double> make_random_banded(index_t n,
                                     const RandomBandedOptions& opts);

/// Options for circuit-like matrices.
struct CircuitOptions {
  double long_range_fraction = 0.05;  ///< extra random edges per node
  std::uint64_t seed = 1;
};

/// Circuit-network analogue: a 2D 5-point grid (local wiring) plus a
/// sprinkle of random long-range symmetric connections (global nets).
/// Average row count lands near G3_circuit's 4.8 nnz/row.
CsrMatrix<double> make_circuit_like(index_t nx, index_t ny,
                                    const CircuitOptions& opts);

/// Options for power-law (hub-heavy) graphs.
struct PowerLawOptions {
  double avg_row_nnz = 8.0;  ///< expected stored entries per row
  /// Column-popularity skew: endpoints are drawn as n·u^bias for
  /// uniform u, so node j attracts mass ∝ (j/n)^(1/bias - 1) — bias 1
  /// is uniform, larger values concentrate edges on low-index hubs
  /// whose degree distribution follows a power law.
  double bias = 3.0;
  bool symmetric = true;  ///< mirror entries across the diagonal
  std::uint64_t seed = 1;
};

/// Scale-free social/web-graph analogue: edge endpoints are sampled
/// with power-law popularity so a few hub rows collect thousands of
/// neighbours while the median row stays sparse. Hubs conflict with
/// nearly every block under distance-2 coloring (ABMC's color count
/// explodes and its colors shrink toward serial), while the dependency
/// DAG after a triangular split stays shallow — the matrix class where
/// level scheduling beats coloring (paper §VII, arXiv:2502.19284).
CsrMatrix<double> make_power_law(index_t n, const PowerLawOptions& opts);

}  // namespace fbmpk::gen
