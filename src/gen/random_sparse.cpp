#include "gen/random_sparse.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "gen/stencil.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace fbmpk::gen {

CsrMatrix<double> make_random_banded(index_t n,
                                     const RandomBandedOptions& opts) {
  FBMPK_CHECK(n > 0);
  FBMPK_CHECK(opts.bandwidth >= 1);
  FBMPK_CHECK(opts.avg_row_nnz >= 1.0);
  Rng rng(opts.seed);

  CooMatrix<double> coo(n, n);
  coo.reserve(static_cast<std::size_t>(
      static_cast<double>(n) * (opts.avg_row_nnz + 1.0)));

  // Off-diagonal budget per row; in symmetric mode each sampled upper
  // entry contributes to two rows, so sample half as many.
  const double per_row =
      (opts.avg_row_nnz - 1.0) / (opts.symmetric ? 2.0 : 1.0);

  for (index_t i = 0; i < n; ++i) {
    // Poisson-ish count: floor(per_row) plus a Bernoulli for the
    // fractional part keeps the expected value exact.
    auto count = static_cast<index_t>(per_row);
    if (rng.next_bool(per_row - std::floor(per_row))) ++count;

    double row_mass = 0.0;
    for (index_t c = 0; c < count; ++c) {
      // Sample a column in the band, excluding the diagonal.
      const index_t lo = std::max<index_t>(0, i - opts.bandwidth);
      const index_t hi = std::min<index_t>(n - 1, i + opts.bandwidth);
      index_t j = lo + static_cast<index_t>(rng.next_below(
                           static_cast<std::uint64_t>(hi - lo + 1)));
      if (j == i) continue;  // rare collision: drop rather than loop
      if (opts.symmetric && j < i) j = i + (i - j);  // fold into upper
      if (j >= n) continue;
      const double v = -rng.next_double(0.5, 1.5);
      coo.add(i, j, v);
      row_mass += std::abs(v);
      if (opts.symmetric) coo.add(j, i, v);
    }
    // Dominant diagonal keeps power sequences well-scaled. The bound
    // 1 + avg*1.5 is a safe overestimate of any row's off-diag mass.
    coo.add(i, i, 1.0 + opts.avg_row_nnz * 1.5);
    (void)row_mass;
  }
  return CsrMatrix<double>::from_coo(coo);
}

CsrMatrix<double> make_circuit_like(index_t nx, index_t ny,
                                    const CircuitOptions& opts) {
  FBMPK_CHECK(nx >= 2 && ny >= 2);
  // Base: local wiring, a scalar 5-point grid.
  BlockStencilOptions base;
  base.kind = StencilKind::kStar;
  base.dof = 1;
  base.seed = opts.seed;
  CsrMatrix<double> grid = make_block_stencil({nx, ny}, base);

  // Add long-range nets on top.
  const index_t n = grid.rows();
  Rng rng(opts.seed ^ 0xc19c417ULL);
  CooMatrix<double> coo(n, n);
  coo.reserve(static_cast<std::size_t>(grid.nnz()) +
              2 * static_cast<std::size_t>(
                      opts.long_range_fraction * static_cast<double>(n)));
  const auto rp = grid.row_ptr();
  const auto ci = grid.col_idx();
  const auto va = grid.values();
  for (index_t i = 0; i < n; ++i)
    for (index_t k = rp[i]; k < rp[i + 1]; ++k) coo.add(i, ci[k], va[k]);

  const auto extra = static_cast<index_t>(
      opts.long_range_fraction * static_cast<double>(n));
  for (index_t e = 0; e < extra; ++e) {
    const auto i = static_cast<index_t>(
        rng.next_below(static_cast<std::uint64_t>(n)));
    const auto j = static_cast<index_t>(
        rng.next_below(static_cast<std::uint64_t>(n)));
    if (i == j) continue;
    const double v = -rng.next_double(0.1, 0.5);
    coo.add(i, j, v);
    coo.add(j, i, v);
    // Keep diagonal dominance: compensate on both diagonals.
    coo.add(i, i, std::abs(v));
    coo.add(j, j, std::abs(v));
  }
  return CsrMatrix<double>::from_coo(coo);
}

CsrMatrix<double> make_power_law(index_t n, const PowerLawOptions& opts) {
  FBMPK_CHECK(n > 0);
  FBMPK_CHECK(opts.avg_row_nnz >= 1.0);
  FBMPK_CHECK(opts.bias >= 1.0);
  Rng rng(opts.seed);

  CooMatrix<double> coo(n, n);
  coo.reserve(static_cast<std::size_t>(
      static_cast<double>(n) * (opts.avg_row_nnz + 1.0)));

  // Total off-diagonal edge budget; each sampled edge stores one entry
  // (two in symmetric mode), so halve the count when mirroring.
  const double total_edges = static_cast<double>(n) *
                             (opts.avg_row_nnz - 1.0) /
                             (opts.symmetric ? 2.0 : 1.0);
  const auto edges = static_cast<std::int64_t>(total_edges);

  // Skewed endpoint sampler: floor(n * u^bias) concentrates picks on
  // low indices; the induced degree distribution is a power law with
  // exponent 1/(bias-1) hubs at the front of the index range.
  const auto skewed = [&]() {
    const double u = rng.next_double(0.0, 1.0);
    auto j = static_cast<index_t>(static_cast<double>(n) *
                                  std::pow(u, opts.bias));
    return std::min<index_t>(j, n - 1);
  };

  std::vector<double> diag(static_cast<std::size_t>(n), 0.0);
  for (std::int64_t e = 0; e < edges; ++e) {
    const index_t i = skewed();
    const index_t j = skewed();
    if (i == j) continue;  // rare self-loop: drop rather than loop
    const double v = -rng.next_double(0.5, 1.5);
    coo.add(i, j, v);
    diag[static_cast<std::size_t>(i)] += std::abs(v);
    if (opts.symmetric) {
      coo.add(j, i, v);
      diag[static_cast<std::size_t>(j)] += std::abs(v);
    }
  }
  // Row-wise dominant diagonal keeps power sequences well-scaled even
  // on hub rows whose off-diagonal mass is thousands of times the mean.
  for (index_t i = 0; i < n; ++i)
    coo.add(i, i, 1.0 + diag[static_cast<std::size_t>(i)]);
  return CsrMatrix<double>::from_coo(coo);
}

}  // namespace fbmpk::gen
