// Structured-grid matrix generators.
//
// The generator family covers the structural classes of the paper's
// evaluation set (Table II): scalar and block finite-element/finite-
// difference matrices on 2D/3D grids with star (5/7-point) or box
// (9/27-point) connectivity, optional per-element dropout, and optional
// unsymmetric perturbation. dof > 1 emits dense dof x dof blocks per
// node pair, which is what gives audikw_1-like matrices their ~80
// nonzeros per row.
//
// All values are derived from deterministic hashes of (seed, node pair),
// so a given (parameters, seed) always produces the identical matrix on
// every platform, and symmetry holds exactly by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"

namespace fbmpk::gen {

/// Grid connectivity: Star = faces only (5-pt in 2D, 7-pt in 3D);
/// Box = full Moore neighborhood (9-pt in 2D, 27-pt in 3D).
enum class StencilKind { kStar, kBox };

/// Options for block-stencil generation.
struct BlockStencilOptions {
  StencilKind kind = StencilKind::kBox;
  int dof = 1;             ///< unknowns per grid node (dense block size)
  double dropout = 0.0;    ///< probability a neighbor block is dropped
  bool unsymmetric = false;  ///< apply an unsymmetric value perturbation
  std::uint64_t seed = 1;
};

/// Block stencil matrix on a grid of extents `dims` (2 or 3 entries).
/// Rows = product(dims) * dof. The result is numerically symmetric and
/// diagonally dominant unless `unsymmetric` is set.
CsrMatrix<double> make_block_stencil(const std::vector<index_t>& dims,
                                     const BlockStencilOptions& opts);

/// Scalar 2D 5-point Laplacian-like matrix (convenience wrapper).
CsrMatrix<double> make_laplacian_2d(index_t nx, index_t ny,
                                    std::uint64_t seed = 1);

/// Scalar 3D 7-point Laplacian-like matrix (convenience wrapper).
CsrMatrix<double> make_laplacian_3d(index_t nx, index_t ny, index_t nz,
                                    std::uint64_t seed = 1);

}  // namespace fbmpk::gen
