// KKT saddle-point matrix generator — the nlpkkt120 analogue.
//
// Nonlinear-programming KKT systems have the 2x2 block structure
//     K = [ H   J^T ]
//         [ J  -c I  ]
// with H an SPD-like Hessian on a 3D mesh and J a sparse constraint
// Jacobian. We build H as a 3D box stencil and J as a short-banded
// random rectangular block, mirroring the saddle-point sparsity that
// makes nlpkkt matrices behave differently from pure FEM meshes.
#pragma once

#include <cstdint>

#include "sparse/csr.hpp"

namespace fbmpk::gen {

struct KktOptions {
  index_t constraints_per_variable_x1000 = 500;  ///< m = n * this / 1000
  double jacobian_row_nnz = 6.0;  ///< average entries per constraint row
  double regularization = 0.1;    ///< magnitude of the -c I block
  std::uint64_t seed = 1;
};

/// Symmetric saddle-point matrix of size (n + m) where n = nx*ny*nz.
CsrMatrix<double> make_kkt_saddle(index_t nx, index_t ny, index_t nz,
                                  const KktOptions& opts);

}  // namespace fbmpk::gen
