#include "gen/kkt.hpp"

#include <algorithm>
#include <cmath>

#include "gen/stencil.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace fbmpk::gen {

CsrMatrix<double> make_kkt_saddle(index_t nx, index_t ny, index_t nz,
                                  const KktOptions& opts) {
  FBMPK_CHECK(nx >= 2 && ny >= 2 && nz >= 2);
  FBMPK_CHECK(opts.constraints_per_variable_x1000 > 0 &&
              opts.constraints_per_variable_x1000 <= 1000);
  FBMPK_CHECK(opts.jacobian_row_nnz >= 1.0);
  FBMPK_CHECK(opts.regularization > 0.0);

  BlockStencilOptions hess;
  hess.kind = StencilKind::kBox;
  hess.dof = 1;
  hess.seed = opts.seed;
  const CsrMatrix<double> h = make_block_stencil({nx, ny, nz}, hess);

  const index_t n = h.rows();
  const auto m = static_cast<index_t>(
      static_cast<long long>(n) * opts.constraints_per_variable_x1000 / 1000);
  FBMPK_CHECK(m >= 1);
  const index_t total = n + m;

  CooMatrix<double> coo(total, total);
  coo.reserve(static_cast<std::size_t>(h.nnz()) +
              2 * static_cast<std::size_t>(
                      static_cast<double>(m) * opts.jacobian_row_nnz) +
              static_cast<std::size_t>(m));

  // (1,1) block: the Hessian.
  const auto rp = h.row_ptr();
  const auto ci = h.col_idx();
  const auto va = h.values();
  for (index_t i = 0; i < n; ++i)
    for (index_t k = rp[i]; k < rp[i + 1]; ++k) coo.add(i, ci[k], va[k]);

  // (2,1) block J and its transpose in (1,2). Each constraint row
  // couples a short contiguous window of variables — typical for
  // discretized constraints, and it keeps the bandwidth moderate.
  Rng rng(opts.seed ^ 0x4b4bULL);
  for (index_t c = 0; c < m; ++c) {
    const index_t row = n + c;
    auto count = static_cast<index_t>(opts.jacobian_row_nnz);
    if (rng.next_bool(opts.jacobian_row_nnz - std::floor(opts.jacobian_row_nnz)))
      ++count;
    // Window anchored proportionally so constraints sweep the mesh.
    const auto anchor = static_cast<index_t>(
        (static_cast<long long>(c) * n) / m);
    for (index_t e = 0; e < count; ++e) {
      index_t col = anchor + static_cast<index_t>(rng.next_below(64));
      if (col >= n) col = n - 1 - static_cast<index_t>(rng.next_below(64));
      if (col < 0) col = 0;  // meshes smaller than the window underflow
      const double v = rng.next_double(-1.0, 1.0);
      coo.add(row, col, v);
      coo.add(col, row, v);
    }
    // (2,2) block: -c I regularization keeps the matrix nonsingular.
    coo.add(row, row, -opts.regularization);
  }
  return CsrMatrix<double>::from_coo(coo);
}

}  // namespace fbmpk::gen
