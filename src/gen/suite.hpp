// The evaluation suite: synthetic analogues of the paper's Table II.
//
// The 14 SuiteSparse inputs are unavailable offline, so each is replaced
// by a generated matrix of the same structural class with matching
// nonzeros-per-row and symmetry (see DESIGN.md §4-5). `scale` multiplies
// the row count; scale = 1 gives ~35k-95k rows and 0.4-4.5M nonzeros per
// matrix — large enough that matrices exceed typical LLCs, small enough
// that the full evaluation runs in minutes on one core.
#pragma once

#include <string>
#include <vector>

#include "sparse/csr.hpp"

namespace fbmpk::gen {

/// Descriptor + generated matrix for one suite member.
struct SuiteMatrix {
  std::string name;        ///< paper input name (e.g. "audikw_1")
  std::string description; ///< analogue generator summary
  bool symmetric = true;   ///< symmetry of the paper's input
  double paper_nnz_per_row = 0.0;  ///< Table II #nnz/N for reference
  CsrMatrix<double> matrix;
};

/// Names of all 14 suite members, in Table II order.
const std::vector<std::string>& suite_names();

/// Generate a single suite member by name. Throws on unknown name or
/// non-positive scale.
SuiteMatrix make_suite_matrix(const std::string& name, double scale = 1.0);

/// Generate the entire suite (14 matrices).
std::vector<SuiteMatrix> make_suite(double scale = 1.0);

}  // namespace fbmpk::gen
