#include "gen/stencil.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace fbmpk::gen {

namespace {

// Deterministic hash -> [0, 1). Used for value jitter and dropout
// decisions so generation needs no stored randomness.
double hash_unit(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                 std::uint64_t c = 0) {
  SplitMix64 sm(seed ^ (a * 0x9e3779b97f4a7c15ULL) ^
                (b * 0xc2b2ae3d27d4eb4fULL) ^ (c * 0x165667b19e3779f9ULL));
  // One extra scramble round decorrelates nearby (a, b) pairs.
  sm.next();
  return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
}

struct GridShape {
  std::vector<index_t> dims;
  std::vector<index_t> strides;  // linear index = sum coord[d]*strides[d]
  index_t nodes = 1;
};

GridShape make_shape(const std::vector<index_t>& dims) {
  FBMPK_CHECK_MSG(dims.size() == 2 || dims.size() == 3,
                  "grid must be 2D or 3D, got " << dims.size() << " dims");
  GridShape s;
  s.dims = dims;
  s.strides.resize(dims.size());
  index_t stride = 1;
  // Last dimension is fastest-varying.
  for (std::size_t d = dims.size(); d-- > 0;) {
    FBMPK_CHECK_MSG(dims[d] >= 1, "grid extent must be >= 1");
    s.strides[d] = stride;
    stride *= dims[d];
  }
  s.nodes = stride;
  return s;
}

// Neighbor offsets (including self) in ascending linear-index order.
std::vector<std::vector<index_t>> neighbor_offsets(std::size_t ndims,
                                                   StencilKind kind) {
  std::vector<std::vector<index_t>> out;
  if (kind == StencilKind::kBox) {
    // All {-1,0,1}^ndims combinations, lexicographic order == ascending
    // linear index order for interior nodes.
    std::vector<index_t> off(ndims, -1);
    while (true) {
      out.push_back(off);
      std::size_t d = ndims;
      while (d-- > 0) {
        if (off[d] < 1) {
          ++off[d];
          break;
        }
        off[d] = -1;
        if (d == 0) return out;
      }
    }
  }
  // Star: one +-1 per axis plus self, sorted by linear offset.
  for (std::size_t d = 0; d < ndims; ++d) {
    std::vector<index_t> minus(ndims, 0), plus(ndims, 0);
    minus[d] = -1;
    plus[d] = 1;
    out.push_back(minus);
    out.push_back(plus);
  }
  out.push_back(std::vector<index_t>(ndims, 0));
  return out;
}

}  // namespace

CsrMatrix<double> make_block_stencil(const std::vector<index_t>& dims,
                                     const BlockStencilOptions& opts) {
  FBMPK_CHECK_MSG(opts.dof >= 1, "dof must be >= 1");
  FBMPK_CHECK_MSG(opts.dropout >= 0.0 && opts.dropout < 1.0,
                  "dropout must be in [0, 1)");
  const GridShape shape = make_shape(dims);
  const std::size_t ndims = dims.size();
  auto offsets = neighbor_offsets(ndims, opts.kind);

  const index_t dof = opts.dof;
  const index_t n = shape.nodes * dof;
  CooMatrix<double> coo(n, n);
  coo.reserve(static_cast<std::size_t>(shape.nodes) * offsets.size() * dof *
              dof);

  std::vector<index_t> coord(ndims, 0);
  std::vector<std::pair<index_t, double>> row_blocks;  // (neighbor node, w)

  for (index_t node = 0; node < shape.nodes; ++node) {
    // Collect surviving neighbor nodes with their coupling weights.
    row_blocks.clear();
    double diag_boost = 0.0;
    for (const auto& off : offsets) {
      index_t nbr = 0;
      bool inside = true;
      for (std::size_t d = 0; d < ndims; ++d) {
        const index_t c = coord[d] + off[d];
        if (c < 0 || c >= shape.dims[d]) {
          inside = false;
          break;
        }
        nbr += c * shape.strides[d];
      }
      if (!inside) continue;
      if (nbr == node) continue;  // diagonal block handled separately
      const auto lo = static_cast<std::uint64_t>(std::min(node, nbr));
      const auto hi = static_cast<std::uint64_t>(std::max(node, nbr));
      if (opts.dropout > 0.0 &&
          hash_unit(opts.seed ^ 0xd509ULL, lo, hi) < opts.dropout)
        continue;  // unordered-pair decision keeps symmetry intact
      // Coupling weight in [-1.25, -0.75]: symmetric (derived from the
      // unordered pair) unless an unsymmetric perturbation is requested.
      double w = -(0.75 + 0.5 * hash_unit(opts.seed, lo, hi, 1));
      if (opts.unsymmetric) {
        const auto a = static_cast<std::uint64_t>(node);
        const auto b = static_cast<std::uint64_t>(nbr);
        w *= 0.8 + 0.4 * hash_unit(opts.seed ^ 0xa5a5ULL, a, b, 2);
      }
      row_blocks.emplace_back(nbr, w);
      diag_boost += std::abs(w);
    }

    // Emit dof x dof blocks; neighbor nodes arrive in ascending order
    // (property of the offset enumeration), except Star's unsorted list.
    std::sort(row_blocks.begin(), row_blocks.end());

    for (index_t r = 0; r < dof; ++r) {
      const index_t row = node * dof + r;
      bool diag_emitted = false;
      auto emit_diag_block = [&] {
        // Diagonal block: strongly dominant diagonal plus a small
        // symmetric intra-node coupling.
        for (index_t s = 0; s < dof; ++s) {
          const index_t col = node * dof + s;
          if (s == r) {
            coo.add(row, col, 1.0 + diag_boost * dof);
          } else {
            const auto lo = static_cast<std::uint64_t>(std::min(r, s));
            const auto hi = static_cast<std::uint64_t>(std::max(r, s));
            coo.add(row, col,
                    0.1 * hash_unit(opts.seed ^ 0x77ULL,
                                    static_cast<std::uint64_t>(node), lo,
                                    hi));
          }
        }
        diag_emitted = true;
      };

      for (const auto& [nbr, w] : row_blocks) {
        if (!diag_emitted && nbr > node) emit_diag_block();
        const auto lo = static_cast<std::uint64_t>(std::min(node, nbr));
        const auto hi = static_cast<std::uint64_t>(std::max(node, nbr));
        for (index_t s = 0; s < dof; ++s) {
          // Intra-block entry (r, s) of block (node, nbr). For symmetry,
          // block(v, u) must equal block(u, v)^T: hash on the unordered
          // node pair with (r, s) swapped when node > nbr.
          const index_t hr = node < nbr ? r : s;
          const index_t hs = node < nbr ? s : r;
          double v = w * (hr == hs ? 1.0
                                   : 0.3 * (hash_unit(opts.seed ^ 0x33ULL, lo,
                                                      hi,
                                                      static_cast<std::uint64_t>(
                                                          hr * dof + hs)) -
                                            0.5));
          if (opts.unsymmetric && hr != hs)
            v *= 0.9 + 0.2 * hash_unit(opts.seed ^ 0x99ULL,
                                       static_cast<std::uint64_t>(node),
                                       static_cast<std::uint64_t>(nbr),
                                       static_cast<std::uint64_t>(r * dof + s));
          coo.add(row, nbr * dof + s, v);
        }
      }
      if (!diag_emitted) emit_diag_block();
    }

    // Advance grid coordinate (last dimension fastest).
    std::size_t d = ndims;
    while (d-- > 0) {
      if (++coord[d] < shape.dims[d]) break;
      coord[d] = 0;
    }
  }

  return CsrMatrix<double>::from_sorted_coo(coo);
}

CsrMatrix<double> make_laplacian_2d(index_t nx, index_t ny,
                                    std::uint64_t seed) {
  BlockStencilOptions opts;
  opts.kind = StencilKind::kStar;
  opts.seed = seed;
  return make_block_stencil({nx, ny}, opts);
}

CsrMatrix<double> make_laplacian_3d(index_t nx, index_t ny, index_t nz,
                                    std::uint64_t seed) {
  BlockStencilOptions opts;
  opts.kind = StencilKind::kStar;
  opts.seed = seed;
  return make_block_stencil({nx, ny, nz}, opts);
}

}  // namespace fbmpk::gen
