#include "gen/suite.hpp"

#include <cmath>
#include <functional>
#include <map>

#include "gen/kkt.hpp"
#include "gen/random_sparse.hpp"
#include "gen/stencil.hpp"
#include "support/error.hpp"

namespace fbmpk::gen {

namespace {

// Scale a linear grid extent so node count grows ~linearly with `scale`.
index_t scaled(index_t base, double scale, double dimensionality) {
  const double s = std::pow(scale, 1.0 / dimensionality);
  const auto v = static_cast<index_t>(std::lround(base * s));
  return std::max<index_t>(2, v);
}

CsrMatrix<double> box3d(index_t extent, int dof, double dropout, bool unsym,
                        std::uint64_t seed, double scale) {
  BlockStencilOptions o;
  o.kind = StencilKind::kBox;
  o.dof = dof;
  o.dropout = dropout;
  o.unsymmetric = unsym;
  o.seed = seed;
  const index_t e = scaled(extent, scale, 3.0);
  return make_block_stencil({e, e, e}, o);
}

CsrMatrix<double> box2d(index_t extent, int dof, std::uint64_t seed,
                        double scale) {
  BlockStencilOptions o;
  o.kind = StencilKind::kBox;
  o.dof = dof;
  o.seed = seed;
  const index_t e = scaled(extent, scale, 2.0);
  return make_block_stencil({e, e}, o);
}

CsrMatrix<double> star3d(index_t extent, int dof, std::uint64_t seed,
                         double scale) {
  BlockStencilOptions o;
  o.kind = StencilKind::kStar;
  o.dof = dof;
  o.seed = seed;
  const index_t e = scaled(extent, scale, 3.0);
  return make_block_stencil({e, e, e}, o);
}

struct Recipe {
  std::string description;
  bool symmetric;
  double paper_nnz_per_row;
  std::function<CsrMatrix<double>(double scale)> build;
};

const std::map<std::string, Recipe>& recipes() {
  static const std::map<std::string, Recipe> table = {
      {"af_shell10",
       {"2D 9-pt shell, 4 dof/node", true, 34.93,
        [](double s) { return box2d(125, 4, 0xaf10, s); }}},
      {"audikw_1",
       {"3D 27-pt FEM, 3 dof/node", true, 82.28,
        [](double s) { return box3d(26, 3, 0.0, false, 0xaad1, s); }}},
      {"cage14",
       {"banded random digraph, ~18 nnz/row", false, 18.02,
        [](double s) {
          RandomBandedOptions o;
          o.bandwidth = 600;  // cage matrices are strongly banded/clustered
          o.avg_row_nnz = 18.0;
          o.symmetric = false;
          o.seed = 0xca9e14;
          return make_random_banded(
              std::max<index_t>(64, static_cast<index_t>(94000 * s)), o);
        }}},
      {"cant",
       {"2D 9-pt FEM, 7 dof/node (small)", true, 64.17,
        [](double s) { return box2d(94, 7, 0xca27, s); }}},
      {"Flan_1565",
       {"3D 27-pt FEM, 3 dof, 8% dropout", true, 75.03,
        [](double s) { return box3d(27, 3, 0.08, false, 0xf1a2, s); }}},
      {"G3_circuit",
       {"2D 5-pt grid + random circuit nets", true, 4.83,
        [](double s) {
          CircuitOptions o;
          o.long_range_fraction = 0.05;
          o.seed = 0x63c1;
          const index_t e = scaled(300, s, 2.0);
          return make_circuit_like(e, e, o);
        }}},
      {"Hook_1498",
       {"3D 7-pt FEM, 6 dof/node", true, 40.67,
        [](double s) { return star3d(21, 6, 0x800c, s); }}},
      {"inline_1",
       {"3D 27-pt FEM, 3 dof, 10% dropout", true, 73.09,
        [](double s) { return box3d(26, 3, 0.10, false, 0x111e, s); }}},
      {"ldoor",
       {"3D 27-pt FEM, 2 dof, 10% dropout", true, 48.86,
        [](double s) { return box3d(31, 2, 0.10, false, 0x1d00, s); }}},
      {"ML_Geer",
       {"3D 27-pt FEM, 3 dof, unsymmetric", false, 73.72,
        [](double s) { return box3d(26, 3, 0.08, true, 0x313ee, s); }}},
      {"nlpkkt120",
       {"KKT saddle-point over 3D 27-pt Hessian", true, 27.34,
        [](double s) {
          KktOptions o;
          o.seed = 0x1207;
          const index_t e = scaled(32, s, 3.0);
          return make_kkt_saddle(e, e, e, o);
        }}},
      {"pwtk",
       {"3D 27-pt FEM, 2 dof/node", true, 53.39,
        [](double s) { return box3d(31, 2, 0.0, false, 0x9717, s); }}},
      {"Serena",
       {"3D 27-pt FEM, 2 dof, 15% dropout", true, 46.38,
        [](double s) { return box3d(31, 2, 0.15, false, 0x5e8e, s); }}},
      {"shipsec1",
       {"3D 27-pt FEM, 2 dof/node (small)", true, 55.46,
        [](double s) { return box3d(26, 2, 0.0, false, 0x5419, s); }}},
  };
  return table;
}

}  // namespace

const std::vector<std::string>& suite_names() {
  static const std::vector<std::string> names = {
      "af_shell10", "audikw_1", "cage14",    "cant",      "Flan_1565",
      "G3_circuit", "Hook_1498", "inline_1", "ldoor",     "ML_Geer",
      "nlpkkt120",  "pwtk",      "Serena",   "shipsec1"};
  return names;
}

SuiteMatrix make_suite_matrix(const std::string& name, double scale) {
  FBMPK_CHECK_MSG(scale > 0.0, "scale must be positive");
  const auto it = recipes().find(name);
  FBMPK_CHECK_MSG(it != recipes().end(), "unknown suite matrix: " << name);
  SuiteMatrix out;
  out.name = name;
  out.description = it->second.description;
  out.symmetric = it->second.symmetric;
  out.paper_nnz_per_row = it->second.paper_nnz_per_row;
  out.matrix = it->second.build(scale);
  return out;
}

std::vector<SuiteMatrix> make_suite(double scale) {
  std::vector<SuiteMatrix> out;
  out.reserve(suite_names().size());
  for (const auto& name : suite_names())
    out.push_back(make_suite_matrix(name, scale));
  return out;
}

}  // namespace fbmpk::gen
