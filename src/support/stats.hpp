// Small statistics toolkit: the paper reports the geometric mean of 50
// repeated runs per data point, and geometric-mean speedups across the
// matrix suite; benchmarks reuse these helpers.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "support/error.hpp"

namespace fbmpk {

/// Geometric mean of strictly positive samples.
inline double geometric_mean(std::span<const double> xs) {
  FBMPK_CHECK(!xs.empty());
  double log_sum = 0.0;
  for (double x : xs) {
    FBMPK_CHECK_MSG(x > 0.0, "geometric mean requires positive samples");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

/// Arithmetic mean.
inline double mean(std::span<const double> xs) {
  FBMPK_CHECK(!xs.empty());
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

/// Minimum element.
inline double min_value(std::span<const double> xs) {
  FBMPK_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

/// Median (of a copy; does not reorder the input).
inline double median(std::span<const double> xs) {
  FBMPK_CHECK(!xs.empty());
  std::vector<double> tmp(xs.begin(), xs.end());
  std::size_t mid = tmp.size() / 2;
  std::nth_element(tmp.begin(), tmp.begin() + mid, tmp.end());
  double hi = tmp[mid];
  if (tmp.size() % 2 == 1) return hi;
  double lo = *std::max_element(tmp.begin(), tmp.begin() + mid);
  return 0.5 * (lo + hi);
}

/// Sample standard deviation.
inline double stddev(std::span<const double> xs) {
  FBMPK_CHECK(xs.size() >= 2);
  double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

/// Running accumulator used where samples arrive one at a time.
class RunningStats {
 public:
  void add(double x) { samples_.push_back(x); }
  std::size_t count() const { return samples_.size(); }
  double geomean() const { return geometric_mean(samples_); }
  double mean() const { return ::fbmpk::mean(samples_); }
  double min() const { return min_value(samples_); }
  double median() const { return ::fbmpk::median(samples_); }
  std::span<const double> samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace fbmpk
