// Thin OpenMP abstraction. Everything compiles (serially) when OpenMP is
// unavailable, so the library has no hard dependency on it.
#pragma once

#ifdef _OPENMP
#include <omp.h>
#endif

namespace fbmpk {

/// Number of threads an upcoming parallel region will use.
inline int max_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Calling thread's id inside a parallel region (0 outside one).
inline int thread_id() {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

/// Set the global OpenMP thread count (no-op without OpenMP).
inline void set_threads(int n) {
#ifdef _OPENMP
  if (n > 0) omp_set_num_threads(n);
#else
  (void)n;
#endif
}

/// True when compiled with OpenMP support.
inline constexpr bool has_openmp() {
#ifdef _OPENMP
  return true;
#else
  return false;
#endif
}

}  // namespace fbmpk
