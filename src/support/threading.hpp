// Thin OpenMP abstraction. Everything compiles (serially) when OpenMP is
// unavailable, so the library has no hard dependency on it.
//
// Beyond the basic queries, this header centralizes the parallel idioms
// the kernels used to hand-roll behind #ifdef _OPENMP ladders:
//
//  - parallel_for(n, f):      row-parallel static loop (own region)
//  - parallel_region(f):      f(thread_id, team_size) on every thread
//  - team_barrier():          orphaned barrier inside a region
//  - static_chunk(n, t, T):   the [begin, end) range `omp for
//                             schedule(static)` would give thread t
//  - spin-wait helpers:       cpu_pause() + SpinWaiter (pause, then
//                             yield — mandatory on oversubscribed hosts)
//  - pinning helpers:         optional compact thread->cpu pinning for
//                             the persistent-threads sweep engine
//                             (docs/PARALLELISM.md)
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <thread>

#include "support/error.hpp"
#include "support/fault_inject.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace fbmpk {

/// Number of threads an upcoming parallel region will use.
inline int max_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Calling thread's id inside a parallel region (0 outside one).
inline int thread_id() {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

/// Team size of the innermost enclosing parallel region (1 outside one).
inline int team_size() {
#ifdef _OPENMP
  return omp_get_num_threads();
#else
  return 1;
#endif
}

/// True while executing inside an active parallel region.
inline bool in_parallel() {
#ifdef _OPENMP
  return omp_in_parallel() != 0;
#else
  return false;
#endif
}

/// Set the global OpenMP thread count (no-op without OpenMP).
inline void set_threads(int n) {
#ifdef _OPENMP
  if (n > 0) omp_set_num_threads(n);
#else
  (void)n;
#endif
}

/// True when compiled with OpenMP support.
inline constexpr bool has_openmp() {
#ifdef _OPENMP
  return true;
#else
  return false;
#endif
}

/// Synchronize the current team. Orphaned barrier: legal in any function
/// called (by all threads) from inside a parallel region; no-op outside.
inline void team_barrier() {
#ifdef _OPENMP
#pragma omp barrier
#endif
}

/// Contiguous range [begin, end) — the unit parallel loops hand out.
struct ThreadRange {
  long long begin = 0;
  long long end = 0;
  bool empty() const { return begin >= end; }
};

/// The chunk `#pragma omp for schedule(static)` would assign thread t of
/// T over n iterations: one contiguous block per thread, remainder
/// spread over the leading threads.
inline ThreadRange static_chunk(long long n, int t, int T) {
  if (T <= 0 || t < 0 || t >= T || n <= 0) return {};
  const long long base = n / T;
  const long long rem = n % T;
  const long long begin = t * base + (t < rem ? t : rem);
  return {begin, begin + base + (t < rem ? 1 : 0)};
}

/// Run f(thread_id, team_size) on every thread of a fresh team. When
/// called inside an existing region (or without OpenMP) it degrades to a
/// single serial invocation f(0, 1) rather than nesting.
template <class F>
inline void parallel_region(F&& f) {
#ifdef _OPENMP
  if (!in_parallel()) {
#pragma omp parallel default(shared)
    f(omp_get_thread_num(), omp_get_num_threads());
    return;
  }
#endif
  f(0, 1);
}

/// As parallel_region but requests exactly `threads` team members; the
/// runtime may deliver fewer, so f must read its team_size argument.
template <class F>
inline void parallel_region_n(int threads, F&& f) {
#ifdef _OPENMP
  if (!in_parallel() && threads > 0) {
#pragma omp parallel default(shared) num_threads(threads)
    f(omp_get_thread_num(), omp_get_num_threads());
    return;
  }
#endif
  (void)threads;
  f(0, 1);
}

/// Row-parallel loop: f(i) for i in [0, n), schedule(static). Runs
/// serially when OpenMP is absent or when already inside a region.
template <class Index, class F>
inline void parallel_for(Index n, F&& f) {
#ifdef _OPENMP
  if (!in_parallel()) {
#pragma omp parallel for schedule(static)
    for (Index i = 0; i < n; ++i) f(i);
    return;
  }
#endif
  for (Index i = 0; i < n; ++i) f(i);
}

/// One architectural pause in a spin loop (no-op where unavailable).
inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#endif
}

/// Bounded busy-wait helper: pause for a short burst, then yield to the
/// OS scheduler. The yield is what keeps point-to-point spinning live on
/// oversubscribed hosts (more threads than cores): a pure pause loop
/// would starve the very thread whose progress it awaits.
class SpinWaiter {
 public:
  SpinWaiter() = default;
  /// `pause_spins` = 0 yields from the first wait — the right policy
  /// when the team is oversubscribed and the awaited thread cannot be
  /// running concurrently anyway.
  explicit SpinWaiter(int pause_spins) : pause_spins_(pause_spins) {}

  void wait() {
    if (++spins_ <= pause_spins_) {
      cpu_pause();
    } else {
      std::this_thread::yield();
    }
  }

  void reset() { spins_ = 0; }

 private:
  static constexpr int kPauseSpins = 64;
  int pause_spins_ = kPauseSpins;
  int spins_ = 0;
};

/// Cooperative cancellation + liveness token for long-running sweeps.
///
/// A canceller (deadline watchdog, shutdown, explicit client cancel)
/// calls request_cancel(reason); kernel threads poll cancelled() at
/// stage boundaries (per color, per k-step) and skip the remaining row
/// work while still passing every barrier / bumping every epoch, so
/// the sweep protocol terminates normally with the output left
/// unspecified. Nothing ever throws across a parallel region.
///
/// `progress` is a heartbeat bumped at the same boundaries; a watchdog
/// distinguishes "slow but cooperating" (progress advancing) from
/// "stuck" (progress frozen, e.g. a thread wedged inside a stage).
struct RunControl {
  std::atomic<bool> cancel{false};
  std::atomic<ErrorCode> reason{ErrorCode::kCancelled};
  std::atomic<std::uint64_t> progress{0};

  bool cancelled() const { return cancel.load(std::memory_order_relaxed); }

  /// First reason wins: a kTimeout set by the watchdog is not
  /// overwritten by a later shutdown-driven kCancelled.
  void request_cancel(ErrorCode why) {
    bool expected = false;
    if (cancel.compare_exchange_strong(expected, true,
                                       std::memory_order_acq_rel))
      reason.store(why, std::memory_order_release);
  }

  ErrorCode cancel_reason() const {
    return reason.load(std::memory_order_acquire);
  }

  /// Stage-boundary checkpoint for kernel code: heartbeat, then the
  /// injected-stall fault point (no-op unless armed), then the
  /// cancellation poll. Returns true when the caller should skip the
  /// remaining work of this stage.
  bool checkpoint() {
    progress.fetch_add(1, std::memory_order_relaxed);
    fault::maybe_stall(fault::Point::kSweepStall);
    return cancelled();
  }
};

/// Number of CPUs the OS exposes (>= 1).
inline int hardware_cpus() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

/// Pin the calling thread to one CPU. Returns true on success; no-op
/// (false) on platforms without an affinity API.
inline bool pin_current_thread(int cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % hardware_cpus(), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

/// Compact pinning for a persistent team: thread t -> cpu t (mod CPU
/// count). Call from inside the parallel region, every thread. Honors
/// the user's OpenMP placement when one is configured: if OMP_PLACES or
/// OMP_PROC_BIND is set, the runtime already owns placement and this
/// function does nothing.
inline bool pin_team_compact() {
  if (std::getenv("OMP_PLACES") != nullptr ||
      std::getenv("OMP_PROC_BIND") != nullptr)
    return false;
  return pin_current_thread(thread_id());
}

}  // namespace fbmpk
