// Error handling primitives for the FBMPK library.
//
// All precondition violations throw fbmpk::Error (a std::runtime_error)
// carrying the failing expression and source location. Hot kernel loops
// never check; checks live at API boundaries and in debug assertions.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fbmpk {

/// Exception type thrown on any precondition or invariant violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "FBMPK check failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail

}  // namespace fbmpk

/// Boundary check: always active, throws fbmpk::Error on failure.
#define FBMPK_CHECK(expr)                                                   \
  do {                                                                      \
    if (!(expr))                                                            \
      ::fbmpk::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
  } while (0)

/// Boundary check with a streamed message:
///   FBMPK_CHECK_MSG(n > 0, "matrix must be non-empty, n=" << n);
#define FBMPK_CHECK_MSG(expr, stream_expr)                                   \
  do {                                                                       \
    if (!(expr)) {                                                           \
      std::ostringstream fbmpk_check_os_;                                    \
      fbmpk_check_os_ << stream_expr;                                        \
      ::fbmpk::detail::throw_check_failure(#expr, __FILE__, __LINE__,        \
                                           fbmpk_check_os_.str());           \
    }                                                                        \
  } while (0)

/// Debug-only assertion for kernel internals; compiled out in release.
#ifdef NDEBUG
#define FBMPK_DCHECK(expr) ((void)0)
#else
#define FBMPK_DCHECK(expr) FBMPK_CHECK(expr)
#endif
