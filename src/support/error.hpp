// Error handling primitives for the FBMPK library.
//
// All precondition violations throw fbmpk::Error (a std::runtime_error)
// carrying an ErrorCode, the failing expression and source location.
// Boundary APIs that face untrusted input (file parsing, plan
// deserialization) can instead return Expected<T>/Status so callers can
// branch on the code — retryable I/O faults versus permanent structural
// corruption — without exception plumbing. Hot kernel loops never
// check; checks live at API boundaries and in debug assertions.
#pragma once

#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace fbmpk {

/// Failure taxonomy. Every Error carries exactly one code; callers that
/// need to distinguish retryable faults (kIo) from permanent ones
/// (kParse, kCorruptPlan, kInvalidMatrix) branch on it.
enum class ErrorCode {
  kInternal = 0,         ///< invariant/precondition violation (a bug)
  kIo,                   ///< OS-level I/O fault: open/read/write failed
  kParse,                ///< malformed text input (Matrix Market, vectors)
  kUnsupported,          ///< recognized but unimplemented variant
  kInvalidMatrix,        ///< structurally invalid sparse matrix
  kNumericalBreakdown,   ///< NaN/Inf iterate, zero pivot/diagonal
  kResourceLimit,        ///< size/overflow guard tripped
  kCorruptPlan,          ///< plan blob failed checksum/framing/validation
  kVersionMismatch,      ///< plan format or index-width mismatch
  kTimeout,              ///< request deadline expired before completion
  kOverloaded,           ///< admission control rejected the request
  kCancelled,            ///< caller (or shutdown) cancelled the request
};

/// Stable lowercase name for an ErrorCode (used in messages and logs).
constexpr const char* error_code_name(ErrorCode c) {
  switch (c) {
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kIo: return "io";
    case ErrorCode::kParse: return "parse";
    case ErrorCode::kUnsupported: return "unsupported";
    case ErrorCode::kInvalidMatrix: return "invalid_matrix";
    case ErrorCode::kNumericalBreakdown: return "numerical_breakdown";
    case ErrorCode::kResourceLimit: return "resource_limit";
    case ErrorCode::kCorruptPlan: return "corrupt_plan";
    case ErrorCode::kVersionMismatch: return "version_mismatch";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kCancelled: return "cancelled";
  }
  return "unknown";
}

/// Exception type thrown on any precondition or invariant violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
  Error(ErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_ = ErrorCode::kInternal;
};

/// Non-throwing result wrapper for boundary APIs: holds either a value
/// or an Error. Deliberately minimal (no monadic chaining) — the
/// library's callers either branch once at the boundary or rethrow.
template <class T>
class Expected {
 public:
  Expected(T value) : value_(std::move(value)) {}       // NOLINT(implicit)
  Expected(Error error) : error_(std::move(error)) {}   // NOLINT(implicit)

  bool has_value() const { return value_.has_value(); }
  explicit operator bool() const { return has_value(); }

  /// The held value; throws the held Error when there is none, so
  /// `std::move(result).value()` is the "promote back to exception"
  /// escape hatch.
  T& value() & {
    if (!value_) throw *error_;
    return *value_;
  }
  const T& value() const& {
    if (!value_) throw *error_;
    return *value_;
  }
  T&& value() && {
    if (!value_) throw *error_;
    return std::move(*value_);
  }

  /// The held error; only valid when has_value() is false.
  const Error& error() const { return *error_; }
  ErrorCode code() const {
    return error_ ? error_->code() : ErrorCode::kInternal;
  }

 private:
  std::optional<T> value_;
  std::optional<Error> error_;
};

/// Expected<void>: success or an Error.
class Status {
 public:
  Status() = default;                                  // success
  Status(Error error) : error_(std::move(error)) {}    // NOLINT(implicit)

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const { return *error_; }
  ErrorCode code() const {
    return error_ ? error_->code() : ErrorCode::kInternal;
  }

  /// Rethrow the held error (no-op on success).
  void value() const {
    if (error_) throw *error_;
  }

 private:
  std::optional<Error> error_;
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg,
                                             ErrorCode code =
                                                 ErrorCode::kInternal) {
  std::ostringstream os;
  os << "FBMPK " << error_code_name(code) << " error: (" << expr << ") at "
     << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(code, os.str());
}

}  // namespace detail

/// Build an Error with a streamed message without throwing:
///   return make_error(ErrorCode::kIo, "cannot open " << path);
#define FBMPK_MAKE_ERROR(code, stream_expr)                        \
  ([&]() -> ::fbmpk::Error {                                       \
    std::ostringstream fbmpk_err_os_;                              \
    fbmpk_err_os_ << "FBMPK " << ::fbmpk::error_code_name(code)    \
                  << " error: " << stream_expr;                    \
    return ::fbmpk::Error((code), fbmpk_err_os_.str());            \
  }())

/// Boundary check: always active, throws fbmpk::Error on failure.
#define FBMPK_CHECK(expr)                                                   \
  do {                                                                      \
    if (!(expr))                                                            \
      ::fbmpk::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
  } while (0)

/// Boundary check with a streamed message:
///   FBMPK_CHECK_MSG(n > 0, "matrix must be non-empty, n=" << n);
#define FBMPK_CHECK_MSG(expr, stream_expr)                                   \
  do {                                                                       \
    if (!(expr)) {                                                           \
      std::ostringstream fbmpk_check_os_;                                    \
      fbmpk_check_os_ << stream_expr;                                        \
      ::fbmpk::detail::throw_check_failure(#expr, __FILE__, __LINE__,        \
                                           fbmpk_check_os_.str());           \
    }                                                                        \
  } while (0)

/// Typed boundary check: like FBMPK_CHECK_MSG but the thrown Error
/// carries the given ErrorCode instead of kInternal.
#define FBMPK_CHECK_CODE(expr, code, stream_expr)                            \
  do {                                                                       \
    if (!(expr)) {                                                           \
      std::ostringstream fbmpk_check_os_;                                    \
      fbmpk_check_os_ << stream_expr;                                        \
      ::fbmpk::detail::throw_check_failure(#expr, __FILE__, __LINE__,        \
                                           fbmpk_check_os_.str(), (code));   \
    }                                                                        \
  } while (0)

/// Unconditional typed failure:
///   FBMPK_FAIL(ErrorCode::kUnsupported, "complex field");
#define FBMPK_FAIL(code, stream_expr)                                        \
  do {                                                                       \
    std::ostringstream fbmpk_fail_os_;                                       \
    fbmpk_fail_os_ << stream_expr;                                           \
    ::fbmpk::detail::throw_check_failure("failure", __FILE__, __LINE__,      \
                                         fbmpk_fail_os_.str(), (code));      \
  } while (0)

/// Debug-only assertion for kernel internals; compiled out in release.
#ifdef NDEBUG
#define FBMPK_DCHECK(expr) ((void)0)
#else
#define FBMPK_DCHECK(expr) FBMPK_CHECK(expr)
#endif

}  // namespace fbmpk
