// Cache-line/SIMD aligned storage for numeric arrays.
//
// Sparse kernels stream large arrays of indices and values; aligning them
// to 64 bytes keeps every vector load within one cache line and gives the
// compiler a known alignment for vectorization.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

namespace fbmpk {

/// Default alignment for all numeric buffers (one x86/ARM cache line).
inline constexpr std::size_t kCacheLineBytes = 64;

/// Minimal C++17 aligned allocator; std::vector<T, AlignedAllocator<T>>
/// gives 64-byte aligned, value-initialized storage.
template <class T, std::size_t Align = kCacheLineBytes>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert(Align >= alignof(T), "alignment weaker than natural");
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of 2");

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T))
      throw std::bad_alloc();
    // Round the byte count up to a multiple of the alignment as required
    // by std::aligned_alloc.
    std::size_t bytes = (n * sizeof(T) + Align - 1) / Align * Align;
    void* p = std::aligned_alloc(Align, bytes);
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// The library-wide vector type for numeric data.
template <class T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace fbmpk
