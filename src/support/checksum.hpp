// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte
// buffers — integrity check for persistent preprocessing artifacts
// (plan files). Table-driven software implementation; the table is
// built once at first use. Incremental interface so framed sections can
// be folded into one digest without a contiguous copy.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace fbmpk {

namespace detail {

inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int b = 0; b < 8; ++b)
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace detail

/// Fold `size` bytes into a running CRC32 state. Start from
/// `kCrc32Init`; finish with `crc32_finish`.
inline constexpr std::uint32_t kCrc32Init = 0xFFFFFFFFu;

inline std::uint32_t crc32_update(std::uint32_t state, const void* data,
                                  std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  const auto& table = detail::crc32_table();
  for (std::size_t i = 0; i < size; ++i)
    state = table[(state ^ p[i]) & 0xFFu] ^ (state >> 8);
  return state;
}

inline std::uint32_t crc32_finish(std::uint32_t state) {
  return state ^ 0xFFFFFFFFu;
}

/// One-shot CRC32 of a buffer.
inline std::uint32_t crc32(const void* data, std::size_t size) {
  return crc32_finish(crc32_update(kCrc32Init, data, size));
}

}  // namespace fbmpk
