// Wall-clock timing helpers used by benchmarks and the preprocessing
// overhead measurements.
#pragma once

#include <chrono>

namespace fbmpk {

/// Monotonic stopwatch. Construction starts it.
class Timer {
 public:
  using Clock = std::chrono::steady_clock;

  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }
  double microseconds() const { return seconds() * 1e6; }

 private:
  Clock::time_point start_;
};

}  // namespace fbmpk
