// Deterministic fault injection for robustness tests.
//
// Stream-level primitives exercise the untrusted-input and export
// paths:
//   * ShortReadStream  — an istream that yields the first N bytes of a
//     blob and then reports EOF, simulating truncated files.
//   * FailingStream    — an istream whose underlying buffer hard-fails
//     (badbit) after N bytes, simulating mid-read I/O errors.
//   * FailingWriteStream — an ostream whose sink accepts N bytes and
//     then hard-fails (badbit), simulating a full disk / dead pipe for
//     writers like the telemetry trace export.
//   * flip_byte        — single-byte XOR mutator for checksum tests.
//
// The stream primitives are deterministic by construction: no clocks,
// no RNG. The fault-injection suite (tests/test_fault_injection.cpp)
// uses them to prove that every single-byte mutation and every
// truncation point of a valid plan blob is rejected with a typed
// fbmpk::Error.
//
// fault::Injector adds *runtime* fault points for the serving layer
// (src/service/): named sites in production code consult the injector
// and, when armed, simulate an allocation failure, a stalled sweep
// stage, a corrupted cache entry, or a full admission queue. Disarmed
// cost is a single relaxed atomic load, so the hooks stay compiled in
// for release/soak builds. Arming is deterministic: "skip the first S
// passes through the point, then fire F times".
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <istream>
#include <ostream>
#include <streambuf>
#include <string>
#include <thread>

namespace fbmpk {

/// Streambuf over an in-memory blob that stops delivering bytes after
/// `limit` — reads past the limit see EOF, exactly like a truncated
/// file on disk.
class ShortReadBuf : public std::streambuf {
 public:
  ShortReadBuf(const std::string& blob, std::size_t limit)
      : data_(blob.data()), size_(blob.size() < limit ? blob.size() : limit) {
    char* base = const_cast<char*>(data_);
    setg(base, base, base + size_);
  }

 private:
  const char* data_;
  std::size_t size_;
};

/// istream that delivers only the first `limit` bytes of `blob`.
class ShortReadStream : public std::istream {
 public:
  ShortReadStream(const std::string& blob, std::size_t limit)
      : std::istream(nullptr), buf_(blob, limit) {
    rdbuf(&buf_);
  }

 private:
  ShortReadBuf buf_;
};

/// Streambuf that serves `limit` bytes and then signals a hard device
/// failure (underflow throws, which iostreams translate to badbit) —
/// distinct from EOF: the OS said "read error", not "end of file".
class FailingBuf : public std::streambuf {
 public:
  FailingBuf(const std::string& blob, std::size_t limit)
      : blob_(blob), limit_(limit < blob.size() ? limit : blob.size()) {
    char* base = const_cast<char*>(blob_.data());
    setg(base, base, base + limit_);
  }

 protected:
  int_type underflow() override {
    throw std::ios_base::failure("injected read fault");
  }

 private:
  std::string blob_;
  std::size_t limit_;
};

/// istream whose source hard-fails after `limit` bytes. The stream is
/// configured so the injected failure surfaces as badbit rather than an
/// escaping ios_base::failure.
class FailingStream : public std::istream {
 public:
  FailingStream(const std::string& blob, std::size_t limit)
      : std::istream(nullptr), buf_(blob, limit) {
    rdbuf(&buf_);
    exceptions(std::ios_base::goodbit);  // failures become badbit
  }

 private:
  FailingBuf buf_;
};

/// Streambuf that accepts `limit` bytes into an internal string and
/// then refuses further output, as a full disk or dead pipe would.
/// overflow() returning eof sets badbit on the owning stream.
class FailingWriteBuf : public std::streambuf {
 public:
  explicit FailingWriteBuf(std::size_t limit) : limit_(limit) {}

  const std::string& written() const { return written_; }

 protected:
  int_type overflow(int_type ch) override {
    if (written_.size() >= limit_ || traits_type::eq_int_type(
                                         ch, traits_type::eof()))
      return traits_type::eof();
    written_.push_back(traits_type::to_char_type(ch));
    return ch;
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    std::streamsize accepted = 0;
    while (accepted < n && written_.size() < limit_) {
      written_.push_back(s[accepted]);
      ++accepted;
    }
    return accepted;
  }

 private:
  std::string written_;
  std::size_t limit_;
};

/// ostream whose sink hard-fails after `limit` bytes. `written()`
/// exposes what got through before the fault, so tests can assert that
/// consumers of the stream never published a truncated artifact.
class FailingWriteStream : public std::ostream {
 public:
  explicit FailingWriteStream(std::size_t limit)
      : std::ostream(nullptr), buf_(limit) {
    rdbuf(&buf_);
    exceptions(std::ios_base::goodbit);  // failures become badbit
  }

  const std::string& written() const { return buf_.written(); }

 private:
  FailingWriteBuf buf_;
};

/// XOR the byte at `pos` with `mask` (mask must be nonzero to actually
/// mutate). Returns the mutated copy.
inline std::string flip_byte(std::string blob, std::size_t pos,
                             std::uint8_t mask = 0xFF) {
  blob[pos] = static_cast<char>(static_cast<std::uint8_t>(blob[pos]) ^ mask);
  return blob;
}

namespace fault {

/// Named runtime fault sites. Each maps to exactly one place in the
/// serving/kernel code (docs/SERVICE.md lists them all).
enum class Point : int {
  kAlloc = 0,         ///< service-side workspace/plan allocation fails
  kSweepStall,        ///< sleep at a sweep stage boundary (stuck sweep)
  kCacheCorrupt,      ///< flip a byte of the next touched cache artifact
  kQueueFull,         ///< admission control reports the queue full
  kPrecisionCertify,  ///< force a precision-certification failure
  kAutotuneBuild,     ///< fail a candidate plan build inside autotune
  kCount_,            // sentinel
};

inline constexpr int kPointCount = static_cast<int>(Point::kCount_);

/// Process-global runtime fault injector. Thread-safe: arming uses a
/// mutex-free atomic protocol; firing is a bounded claim on atomic
/// counters, so under concurrency the total number of fires never
/// exceeds the armed count (which test assertions rely on).
class Injector {
 public:
  static Injector& instance() {
    static Injector inj;
    return inj;
  }

  /// Arm `point`: let the first `skip` passes through, then fire on the
  /// next `fires` passes. `stall_ms` only matters for stall-style
  /// points (how long the firing thread sleeps).
  void arm(Point point, long long fires, long long skip = 0,
           long long stall_ms = 50) {
    Slot& s = slot(point);
    s.fires.store(0, std::memory_order_relaxed);  // close while updating
    s.skip.store(skip, std::memory_order_relaxed);
    s.stall_ms.store(stall_ms, std::memory_order_relaxed);
    s.fires.store(fires, std::memory_order_relaxed);
    armed_points_.fetch_add(1, std::memory_order_release);
  }

  /// Disarm every point and forget fire counts.
  void reset() {
    for (Slot& s : slots_) {
      s.fires.store(0, std::memory_order_relaxed);
      s.skip.store(0, std::memory_order_relaxed);
      s.fired.store(0, std::memory_order_relaxed);
    }
    armed_points_.store(0, std::memory_order_release);
  }

  /// Consult the point; true exactly when this pass fires the fault.
  /// Disarmed fast path: one relaxed load of armed_points_.
  bool should_fire(Point point) {
    if (armed_points_.load(std::memory_order_relaxed) == 0) return false;
    Slot& s = slot(point);
    if (s.fires.load(std::memory_order_relaxed) <= 0) return false;
    if (s.skip.load(std::memory_order_relaxed) > 0 &&
        s.skip.fetch_sub(1, std::memory_order_relaxed) > 0)
      return false;
    if (s.fires.fetch_sub(1, std::memory_order_relaxed) > 0) {
      s.fired.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Stall-style consultation: sleep for the armed duration when the
  /// point fires. Used at sweep stage boundaries.
  void maybe_stall(Point point) {
    if (armed_points_.load(std::memory_order_relaxed) == 0) return;
    if (should_fire(point))
      std::this_thread::sleep_for(
          std::chrono::milliseconds(slot(point).stall_ms.load(
              std::memory_order_relaxed)));
  }

  /// Times `point` actually fired since the last reset().
  long long fired(Point point) const {
    return slots_[static_cast<std::size_t>(point)].fired.load(
        std::memory_order_relaxed);
  }

 private:
  Injector() = default;
  struct Slot {
    std::atomic<long long> fires{0};
    std::atomic<long long> skip{0};
    std::atomic<long long> stall_ms{0};
    std::atomic<long long> fired{0};
  };
  Slot& slot(Point p) { return slots_[static_cast<std::size_t>(p)]; }

  std::array<Slot, static_cast<std::size_t>(kPointCount)> slots_{};
  /// Nonzero once any point was armed since the last reset(). Monotone
  /// within an arm epoch — a fired-out point keeps this nonzero, which
  /// only costs the (cheap) per-slot check, never correctness.
  std::atomic<int> armed_points_{0};
};

/// Free-function shims so call sites stay one line.
inline bool should_fire(Point p) {
  return Injector::instance().should_fire(p);
}
inline void maybe_stall(Point p) { Injector::instance().maybe_stall(p); }

}  // namespace fault

}  // namespace fbmpk
