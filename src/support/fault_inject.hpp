// Deterministic fault injection for robustness tests.
//
// Four primitives exercise the untrusted-input and export paths:
//   * ShortReadStream  — an istream that yields the first N bytes of a
//     blob and then reports EOF, simulating truncated files.
//   * FailingStream    — an istream whose underlying buffer hard-fails
//     (badbit) after N bytes, simulating mid-read I/O errors.
//   * FailingWriteStream — an ostream whose sink accepts N bytes and
//     then hard-fails (badbit), simulating a full disk / dead pipe for
//     writers like the telemetry trace export.
//   * flip_byte        — single-byte XOR mutator for checksum tests.
//
// Everything is header-only and deterministic: no clocks, no RNG. The
// fault-injection suite (tests/test_fault_injection.cpp) uses these to
// prove that every single-byte mutation and every truncation point of a
// valid plan blob is rejected with a typed fbmpk::Error.
#pragma once

#include <cstddef>
#include <cstdint>
#include <istream>
#include <ostream>
#include <streambuf>
#include <string>

namespace fbmpk {

/// Streambuf over an in-memory blob that stops delivering bytes after
/// `limit` — reads past the limit see EOF, exactly like a truncated
/// file on disk.
class ShortReadBuf : public std::streambuf {
 public:
  ShortReadBuf(const std::string& blob, std::size_t limit)
      : data_(blob.data()), size_(blob.size() < limit ? blob.size() : limit) {
    char* base = const_cast<char*>(data_);
    setg(base, base, base + size_);
  }

 private:
  const char* data_;
  std::size_t size_;
};

/// istream that delivers only the first `limit` bytes of `blob`.
class ShortReadStream : public std::istream {
 public:
  ShortReadStream(const std::string& blob, std::size_t limit)
      : std::istream(nullptr), buf_(blob, limit) {
    rdbuf(&buf_);
  }

 private:
  ShortReadBuf buf_;
};

/// Streambuf that serves `limit` bytes and then signals a hard device
/// failure (underflow throws, which iostreams translate to badbit) —
/// distinct from EOF: the OS said "read error", not "end of file".
class FailingBuf : public std::streambuf {
 public:
  FailingBuf(const std::string& blob, std::size_t limit)
      : blob_(blob), limit_(limit < blob.size() ? limit : blob.size()) {
    char* base = const_cast<char*>(blob_.data());
    setg(base, base, base + limit_);
  }

 protected:
  int_type underflow() override {
    throw std::ios_base::failure("injected read fault");
  }

 private:
  std::string blob_;
  std::size_t limit_;
};

/// istream whose source hard-fails after `limit` bytes. The stream is
/// configured so the injected failure surfaces as badbit rather than an
/// escaping ios_base::failure.
class FailingStream : public std::istream {
 public:
  FailingStream(const std::string& blob, std::size_t limit)
      : std::istream(nullptr), buf_(blob, limit) {
    rdbuf(&buf_);
    exceptions(std::ios_base::goodbit);  // failures become badbit
  }

 private:
  FailingBuf buf_;
};

/// Streambuf that accepts `limit` bytes into an internal string and
/// then refuses further output, as a full disk or dead pipe would.
/// overflow() returning eof sets badbit on the owning stream.
class FailingWriteBuf : public std::streambuf {
 public:
  explicit FailingWriteBuf(std::size_t limit) : limit_(limit) {}

  const std::string& written() const { return written_; }

 protected:
  int_type overflow(int_type ch) override {
    if (written_.size() >= limit_ || traits_type::eq_int_type(
                                         ch, traits_type::eof()))
      return traits_type::eof();
    written_.push_back(traits_type::to_char_type(ch));
    return ch;
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    std::streamsize accepted = 0;
    while (accepted < n && written_.size() < limit_) {
      written_.push_back(s[accepted]);
      ++accepted;
    }
    return accepted;
  }

 private:
  std::string written_;
  std::size_t limit_;
};

/// ostream whose sink hard-fails after `limit` bytes. `written()`
/// exposes what got through before the fault, so tests can assert that
/// consumers of the stream never published a truncated artifact.
class FailingWriteStream : public std::ostream {
 public:
  explicit FailingWriteStream(std::size_t limit)
      : std::ostream(nullptr), buf_(limit) {
    rdbuf(&buf_);
    exceptions(std::ios_base::goodbit);  // failures become badbit
  }

  const std::string& written() const { return buf_.written(); }

 private:
  FailingWriteBuf buf_;
};

/// XOR the byte at `pos` with `mask` (mask must be nonzero to actually
/// mutate). Returns the mutated copy.
inline std::string flip_byte(std::string blob, std::size_t pos,
                             std::uint8_t mask = 0xFF) {
  blob[pos] = static_cast<char>(static_cast<std::uint8_t>(blob[pos]) ^ mask);
  return blob;
}

}  // namespace fbmpk
