// Deterministic, fast pseudo-random number generation.
//
// All generators and randomized tests in the library seed from SplitMix64 /
// Xoshiro256** so results are reproducible across platforms (std::mt19937
// distributions are not guaranteed identical across standard libraries;
// we implement the distributions we need ourselves).
#pragma once

#include <cstdint>

namespace fbmpk {

/// SplitMix64 — used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — the library's workhorse PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). The modulo bias (< bound / 2^64) is
  /// irrelevant for workload generation; we trade exactness for
  /// determinism and portability.
  std::uint64_t next_below(std::uint64_t bound) { return next_u64() % bound; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli draw with probability p.
  bool next_bool(double p) { return next_double() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace fbmpk
