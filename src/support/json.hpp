// Minimal JSON emission helpers shared by the machine-readable outputs
// (bench/bench_common.hpp JsonReport, src/telemetry trace export).
//
// This is deliberately NOT a JSON library: the writers emit their own
// structure; what must be shared is the escaping contract (RFC 8259 —
// quotes, backslashes, control characters) so a hostile matrix name or
// span label can never produce an invalid file anywhere.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>

namespace fbmpk {

/// Escape `s` for inclusion inside a double-quoted JSON string.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Render a double as a JSON number. JSON has no NaN/Inf; both map to
/// null so downstream `json.load`/`jq` never chokes on a degenerate
/// measurement.
inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace fbmpk
