// Row blocking for ABMC (paper §III-D): aggregate matrix rows into
// blocks that become the parallel work units and coloring vertices.
#pragma once

#include <vector>

#include "reorder/graph.hpp"

namespace fbmpk {

/// How rows are aggregated into blocks.
enum class BlockingStrategy {
  kContiguous,  ///< equal-size chunks of consecutive row indices
  kBfs,         ///< "algebraic": BFS over the adjacency graph, so each
                ///< block holds connected, locality-friendly rows
};

/// A block assignment: rows_of_block lists every block's member rows in
/// the order they will appear after permutation; block_of inverts it.
struct Blocking {
  std::vector<index_t> block_of;  ///< row -> block id
  std::vector<index_t> block_ptr; ///< block -> offset into row_order
  std::vector<index_t> row_order; ///< rows grouped by block, in-block order
  index_t num_blocks = 0;

  index_t block_size(index_t b) const {
    return block_ptr[b + 1] - block_ptr[b];
  }
};

/// Partition n rows into `num_blocks` blocks. For kBfs the graph drives
/// aggregation; for kContiguous it is ignored (may be empty). Block
/// count is clamped to [1, n].
Blocking build_blocking(const AdjacencyGraph& g, index_t n,
                        index_t num_blocks, BlockingStrategy strategy);

/// Verify structural invariants of a blocking over n rows.
bool is_valid_blocking(const Blocking& b, index_t n);

}  // namespace fbmpk
