#include "reorder/rcm.hpp"

#include <algorithm>
#include <vector>

namespace fbmpk {

namespace {

// BFS from `start` over unvisited vertices; returns the vertices of the
// last level and writes the visit order. `scratch_level` is reused
// across calls to avoid reallocation.
struct BfsResult {
  std::vector<index_t> order;       // discovery order
  std::vector<index_t> last_level;  // deepest BFS level
  index_t depth = 0;
};

BfsResult bfs_levels(const AdjacencyGraph& g, index_t start,
                     const std::vector<char>& visited_in) {
  BfsResult r;
  std::vector<char> visited = visited_in;
  std::vector<index_t> frontier{start};
  visited[start] = 1;
  while (!frontier.empty()) {
    r.order.insert(r.order.end(), frontier.begin(), frontier.end());
    std::vector<index_t> next;
    for (index_t v : frontier)
      for (index_t k = g.ptr[v]; k < g.ptr[v + 1]; ++k) {
        const index_t u = g.adj[k];
        if (!visited[u]) {
          visited[u] = 1;
          next.push_back(u);
        }
      }
    if (next.empty()) {
      r.last_level = frontier;
      break;
    }
    frontier = std::move(next);
    ++r.depth;
  }
  return r;
}

}  // namespace

index_t pseudo_peripheral_vertex(const AdjacencyGraph& g, index_t start) {
  FBMPK_CHECK(start >= 0 && start < g.n);
  std::vector<char> none(static_cast<std::size_t>(g.n), 0);
  index_t v = start;
  index_t depth = -1;
  // Iterate: BFS, jump to a minimum-degree vertex of the deepest level;
  // stop when eccentricity no longer grows. Terminates because depth is
  // strictly increasing and bounded by n.
  while (true) {
    BfsResult r = bfs_levels(g, v, none);
    if (r.depth <= depth) return v;
    depth = r.depth;
    index_t best = r.last_level.front();
    for (index_t u : r.last_level)
      if (g.degree(u) < g.degree(best)) best = u;
    v = best;
  }
}

Permutation rcm_order(const AdjacencyGraph& g) {
  const index_t n = g.n;
  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> visited(static_cast<std::size_t>(n), 0);

  for (index_t seed = 0; seed < n; ++seed) {
    if (visited[seed]) continue;
    // Start each component from a pseudo-peripheral vertex for small
    // bandwidth, per the classical algorithm.
    const index_t start = pseudo_peripheral_vertex(g, seed);

    // Cuthill–McKee BFS: neighbors appended in ascending-degree order.
    std::size_t head = order.size();
    order.push_back(start);
    visited[start] = 1;
    std::vector<index_t> nbrs;
    while (head < order.size()) {
      const index_t v = order[head++];
      nbrs.clear();
      for (index_t k = g.ptr[v]; k < g.ptr[v + 1]; ++k) {
        const index_t u = g.adj[k];
        if (!visited[u]) {
          visited[u] = 1;
          nbrs.push_back(u);
        }
      }
      std::sort(nbrs.begin(), nbrs.end(), [&](index_t a, index_t b) {
        const index_t da = g.degree(a), db = g.degree(b);
        return da != db ? da < db : a < b;
      });
      order.insert(order.end(), nbrs.begin(), nbrs.end());
    }
  }

  std::reverse(order.begin(), order.end());  // the "reverse" in RCM
  return Permutation(std::move(order));
}

}  // namespace fbmpk
