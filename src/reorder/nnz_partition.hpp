// Nonzero-balanced partitioning of ABMC color blocks across threads.
//
// The barrier-scheduled parallel kernels hand each thread a contiguous
// chunk of *blocks* per color (`schedule(static)`), so one heavy block
// serializes its whole color. This module plans by *work* instead: each
// block is weighted by the nonzeros its rows touch in one forward +
// backward pass (L row range + U row range + diagonal), and blocks of
// one color are distributed with greedy LPT (longest processing time
// first) — the classic 4/3-approximation of makespan scheduling. The
// resulting partition is what the sweep-schedule engine executes
// (kernels/sweep_schedule.hpp) and what the cost model's imbalance
// metric scores (perf/cost_model.hpp).
#pragma once

#include <span>
#include <vector>

#include "reorder/abmc.hpp"

namespace fbmpk {

/// Per-block work weight: nnz(L rows) + nnz(U rows) + rows (diagonal).
/// `lower_rp` / `upper_rp` are the split triangles' row_ptr arrays in
/// the permuted index space (size n+1 each).
std::vector<index_t> block_nnz_weights(const AbmcOrdering& o,
                                       std::span<const index_t> lower_rp,
                                       std::span<const index_t> upper_rp);

/// How blocks of one color are assigned to threads.
enum class PartitionStrategy {
  kBlockStatic,  ///< contiguous block chunks (what schedule(static) does)
  kNnzLpt,       ///< greedy LPT over block nnz weights
};

/// Assignment of every color's blocks to `num_threads` threads.
struct ColorPartition {
  index_t num_threads = 0;
  index_t num_colors = 0;
  /// Blocks of (thread t, color c) are
  /// part_blocks[part_ptr[t*num_colors+c] .. part_ptr[t*num_colors+c+1]).
  std::vector<index_t> part_ptr;
  std::vector<index_t> part_blocks;
  /// owner_of[b] = thread that executes block b.
  std::vector<index_t> owner_of;
  /// Work per (thread, color): load[t*num_colors+c] in nnz weight.
  std::vector<index_t> load;

  std::size_t slot(index_t t, index_t c) const {
    return static_cast<std::size_t>(t) * num_colors + c;
  }
};

/// Partition each color's blocks across threads by `strategy` using the
/// given per-block weights (from block_nnz_weights). num_threads >= 1.
ColorPartition partition_colors(const AbmcOrdering& o,
                                std::span<const index_t> weights,
                                index_t num_threads,
                                PartitionStrategy strategy);

}  // namespace fbmpk
