// Greedy distance-1 graph coloring — the in-tree substitute for the
// Colpack library the paper uses to color ABMC blocks.
#pragma once

#include <vector>

#include "reorder/graph.hpp"

namespace fbmpk {

/// Vertex visit order for the greedy coloring.
enum class ColoringOrder {
  kNatural,             ///< vertices in index order
  kLargestDegreeFirst,  ///< classic LF ordering — usually fewer colors
  kSmallestLast,        ///< SL ordering — best color counts, more work
};

/// Result of a coloring: color_of[v] in [0, num_colors).
struct Coloring {
  std::vector<index_t> color_of;
  index_t num_colors = 0;
};

/// Greedy distance-1 coloring: each vertex takes the smallest color not
/// used by an already-colored neighbor.
Coloring greedy_color(const AdjacencyGraph& g,
                      ColoringOrder order = ColoringOrder::kNatural);

/// Verify the distance-1 property: no edge joins two equal colors.
/// Returns true when valid.
bool is_valid_coloring(const AdjacencyGraph& g, const Coloring& c);

}  // namespace fbmpk
