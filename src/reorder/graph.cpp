#include "reorder/graph.hpp"

#include <algorithm>

namespace fbmpk {

AdjacencyGraph quotient_graph(const AdjacencyGraph& g,
                              const std::vector<index_t>& block_of,
                              index_t num_blocks) {
  FBMPK_CHECK(block_of.size() == static_cast<std::size_t>(g.n));
  std::vector<std::vector<index_t>> nbrs(
      static_cast<std::size_t>(num_blocks));
  for (index_t v = 0; v < g.n; ++v) {
    const index_t bv = block_of[v];
    FBMPK_CHECK(bv >= 0 && bv < num_blocks);
    for (index_t k = g.ptr[v]; k < g.ptr[v + 1]; ++k) {
      const index_t bu = block_of[g.adj[k]];
      if (bu != bv) nbrs[bv].push_back(bu);
    }
  }
  AdjacencyGraph q;
  q.n = num_blocks;
  q.ptr.assign(static_cast<std::size_t>(num_blocks) + 1, 0);
  std::size_t total = 0;
  for (index_t b = 0; b < num_blocks; ++b) {
    auto& list = nbrs[b];
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    total += list.size();
  }
  q.adj.reserve(total);
  for (index_t b = 0; b < num_blocks; ++b) {
    q.adj.insert(q.adj.end(), nbrs[b].begin(), nbrs[b].end());
    q.ptr[b + 1] = static_cast<index_t>(q.adj.size());
  }
  return q;
}

}  // namespace fbmpk
