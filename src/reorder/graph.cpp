#include "reorder/graph.hpp"

#include <algorithm>

namespace fbmpk {

AdjacencyGraph quotient_graph(const AdjacencyGraph& g,
                              const std::vector<index_t>& block_of,
                              index_t num_blocks) {
  FBMPK_CHECK(block_of.size() == static_cast<std::size_t>(g.n));
  std::vector<std::vector<index_t>> nbrs(
      static_cast<std::size_t>(num_blocks));
  for (index_t v = 0; v < g.n; ++v) {
    const index_t bv = block_of[v];
    FBMPK_CHECK(bv >= 0 && bv < num_blocks);
    for (index_t k = g.ptr[v]; k < g.ptr[v + 1]; ++k) {
      const index_t bu = block_of[g.adj[k]];
      if (bu != bv) nbrs[bv].push_back(bu);
    }
  }
  AdjacencyGraph q;
  q.n = num_blocks;
  q.ptr.assign(static_cast<std::size_t>(num_blocks) + 1, 0);
  std::size_t total = 0;
  for (index_t b = 0; b < num_blocks; ++b) {
    auto& list = nbrs[b];
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    total += list.size();
  }
  q.adj.reserve(total);
  for (index_t b = 0; b < num_blocks; ++b) {
    q.adj.insert(q.adj.end(), nbrs[b].begin(), nbrs[b].end());
    q.ptr[b + 1] = static_cast<index_t>(q.adj.size());
  }
  return q;
}

AdjacencyGraph block_quotient_from_split(std::span<const index_t> lower_rp,
                                         std::span<const index_t> lower_ci,
                                         std::span<const index_t> upper_rp,
                                         std::span<const index_t> upper_ci,
                                         std::span<const index_t> block_ptr) {
  FBMPK_CHECK(!block_ptr.empty() && block_ptr.front() == 0);
  const index_t n = block_ptr.back();
  const auto num_blocks = static_cast<index_t>(block_ptr.size()) - 1;
  FBMPK_CHECK(lower_rp.size() == static_cast<std::size_t>(n) + 1 &&
              upper_rp.size() == static_cast<std::size_t>(n) + 1);

  std::vector<index_t> block_of(static_cast<std::size_t>(n));
  for (index_t b = 0; b < num_blocks; ++b) {
    FBMPK_CHECK(block_ptr[b] <= block_ptr[b + 1]);
    for (index_t r = block_ptr[b]; r < block_ptr[b + 1]; ++r) block_of[r] = b;
  }

  // Per-block neighbor sets. Every stored entry contributes the edge in
  // BOTH directions — for unsymmetric matrices an L entry (i, j) has no
  // mirrored U entry (j, i), yet the dependency it induces (and its
  // antidependency) runs both ways. A last-seen stamp dedupes the
  // forward direction within one source block's scan; the final
  // sort+unique dedupes the rest.
  std::vector<std::vector<index_t>> nbrs(static_cast<std::size_t>(num_blocks));
  std::vector<index_t> stamp(static_cast<std::size_t>(num_blocks), -1);
  for (index_t b = 0; b < num_blocks; ++b) {
    for (index_t i = block_ptr[b]; i < block_ptr[b + 1]; ++i) {
      for (index_t k = lower_rp[i]; k < lower_rp[i + 1]; ++k) {
        const index_t nb = block_of[lower_ci[k]];
        if (nb != b && stamp[nb] != b) {
          stamp[nb] = b;
          nbrs[b].push_back(nb);
          nbrs[nb].push_back(b);
        }
      }
      for (index_t k = upper_rp[i]; k < upper_rp[i + 1]; ++k) {
        const index_t nb = block_of[upper_ci[k]];
        if (nb != b && stamp[nb] != b) {
          stamp[nb] = b;
          nbrs[b].push_back(nb);
          nbrs[nb].push_back(b);
        }
      }
    }
  }

  AdjacencyGraph q;
  q.n = num_blocks;
  q.ptr.assign(static_cast<std::size_t>(num_blocks) + 1, 0);
  std::size_t total = 0;
  for (index_t b = 0; b < num_blocks; ++b) {
    auto& list = nbrs[b];
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    total += list.size();
  }
  q.adj.reserve(total);
  for (index_t b = 0; b < num_blocks; ++b) {
    q.adj.insert(q.adj.end(), nbrs[b].begin(), nbrs[b].end());
    q.ptr[b + 1] = static_cast<index_t>(q.adj.size());
  }
  return q;
}

}  // namespace fbmpk
