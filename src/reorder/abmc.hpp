// Algebraic Block Multi-Color ordering (Iwashita et al.; paper §III-D).
//
// Pipeline: aggregate rows into blocks -> build the block quotient graph
// of the (symmetrized) matrix pattern -> greedily color it -> emit a
// permutation that lays blocks out color-by-color. After permutation,
// blocks of one color occupy contiguous row ranges and share no matrix
// edges, so they can be processed in parallel with one barrier per
// color — exactly the schedule parallel FBMPK needs (DESIGN.md §1).
#pragma once

#include <vector>

#include "reorder/blocking.hpp"
#include "reorder/coloring.hpp"
#include "reorder/permutation.hpp"

namespace fbmpk {

/// ABMC configuration. The paper's default block count is 512 or 1024.
struct AbmcOptions {
  index_t num_blocks = 512;
  BlockingStrategy blocking = BlockingStrategy::kContiguous;
  ColoringOrder coloring = ColoringOrder::kNatural;
};

/// The color schedule in the *permuted* index space.
struct AbmcOrdering {
  Permutation perm;  ///< new -> old row map (apply with permute_symmetric)
  /// Row ranges of each block in the permuted matrix; blocks are sorted
  /// by color, so block b covers rows [block_ptr[b], block_ptr[b+1]).
  std::vector<index_t> block_ptr;
  /// Blocks of color c are [color_ptr[c], color_ptr[c+1]) in block_ptr.
  std::vector<index_t> color_ptr;
  index_t num_blocks = 0;
  index_t num_colors = 0;

  index_t color_of_block(index_t b) const {
    for (index_t c = 0; c < num_colors; ++c)
      if (b >= color_ptr[c] && b < color_ptr[c + 1]) return c;
    return -1;
  }
};

/// Compute the ABMC ordering from a prebuilt adjacency graph.
AbmcOrdering abmc_order(const AdjacencyGraph& g, const AbmcOptions& opts);

/// Compute the ABMC ordering for a square matrix's pattern.
template <class T>
AbmcOrdering abmc_order(const CsrMatrix<T>& a, const AbmcOptions& opts) {
  const AdjacencyGraph g = adjacency_from_matrix(a);
  return abmc_order(g, opts);
}

/// Check the schedule invariant on the *permuted* matrix: no stored
/// entry connects two distinct blocks of the same color. Returns true
/// when the schedule is safe for parallel execution.
template <class T>
bool is_valid_schedule(const CsrMatrix<T>& permuted, const AbmcOrdering& o) {
  if (o.block_ptr.empty() || o.block_ptr.back() != permuted.rows())
    return false;
  // Map each permuted row to its (block, color).
  std::vector<index_t> block_of(static_cast<std::size_t>(permuted.rows()));
  std::vector<index_t> color_of(static_cast<std::size_t>(permuted.rows()));
  for (index_t c = 0; c < o.num_colors; ++c)
    for (index_t b = o.color_ptr[c]; b < o.color_ptr[c + 1]; ++b)
      for (index_t r = o.block_ptr[b]; r < o.block_ptr[b + 1]; ++r) {
        block_of[r] = b;
        color_of[r] = c;
      }
  const auto rp = permuted.row_ptr();
  const auto ci = permuted.col_idx();
  for (index_t i = 0; i < permuted.rows(); ++i)
    for (index_t k = rp[i]; k < rp[i + 1]; ++k) {
      const index_t j = ci[k];
      if (block_of[i] != block_of[j] && color_of[i] == color_of[j])
        return false;
    }
  return true;
}

}  // namespace fbmpk
