#include "reorder/blocking.hpp"

#include <algorithm>
#include <numeric>

namespace fbmpk {

namespace {

Blocking from_row_order(std::vector<index_t> row_order, index_t n,
                        index_t num_blocks) {
  Blocking b;
  b.num_blocks = num_blocks;
  b.row_order = std::move(row_order);
  b.block_ptr.resize(static_cast<std::size_t>(num_blocks) + 1);
  b.block_of.resize(static_cast<std::size_t>(n));
  // Balanced sizes: first (n % num_blocks) blocks get one extra row.
  const index_t base = n / num_blocks;
  const index_t extra = n % num_blocks;
  index_t pos = 0;
  for (index_t blk = 0; blk < num_blocks; ++blk) {
    b.block_ptr[blk] = pos;
    pos += base + (blk < extra ? 1 : 0);
  }
  b.block_ptr[num_blocks] = pos;
  FBMPK_CHECK(pos == n);
  for (index_t blk = 0; blk < num_blocks; ++blk)
    for (index_t k = b.block_ptr[blk]; k < b.block_ptr[blk + 1]; ++k)
      b.block_of[b.row_order[k]] = blk;
  return b;
}

}  // namespace

Blocking build_blocking(const AdjacencyGraph& g, index_t n,
                        index_t num_blocks, BlockingStrategy strategy) {
  FBMPK_CHECK(n > 0);
  num_blocks = std::clamp<index_t>(num_blocks, 1, n);

  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(n));
  if (strategy == BlockingStrategy::kContiguous) {
    order.resize(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), 0);
  } else {
    // Algebraic blocking: BFS discovery order groups connected rows, so
    // chunking that order yields blocks of tightly coupled rows.
    FBMPK_CHECK_MSG(g.n == n, "BFS blocking needs the adjacency graph");
    std::vector<char> visited(static_cast<std::size_t>(n), 0);
    std::size_t head = 0;
    for (index_t seed = 0; seed < n; ++seed) {
      if (visited[seed]) continue;
      visited[seed] = 1;
      order.push_back(seed);
      while (head < order.size()) {
        const index_t v = order[head++];
        for (index_t k = g.ptr[v]; k < g.ptr[v + 1]; ++k) {
          const index_t u = g.adj[k];
          if (!visited[u]) {
            visited[u] = 1;
            order.push_back(u);
          }
        }
      }
    }
  }
  return from_row_order(std::move(order), n, num_blocks);
}

bool is_valid_blocking(const Blocking& b, index_t n) {
  if (b.num_blocks < 1) return false;
  if (b.block_of.size() != static_cast<std::size_t>(n)) return false;
  if (b.row_order.size() != static_cast<std::size_t>(n)) return false;
  if (b.block_ptr.size() != static_cast<std::size_t>(b.num_blocks) + 1)
    return false;
  if (b.block_ptr.front() != 0 || b.block_ptr.back() != n) return false;
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  for (index_t blk = 0; blk < b.num_blocks; ++blk) {
    if (b.block_ptr[blk] > b.block_ptr[blk + 1]) return false;
    for (index_t k = b.block_ptr[blk]; k < b.block_ptr[blk + 1]; ++k) {
      const index_t row = b.row_order[k];
      if (row < 0 || row >= n || seen[row]) return false;
      seen[row] = 1;
      if (b.block_of[row] != blk) return false;
    }
  }
  return true;
}

}  // namespace fbmpk
