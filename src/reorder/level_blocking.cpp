#include "reorder/level_blocking.hpp"

#include <algorithm>
#include <cstddef>
#include <queue>
#include <utility>

#include "support/error.hpp"

namespace fbmpk {
namespace {

// Approximate bytes of triangle + iterate data per weight unit (one
// weight unit = one nnz or one row): 8 B value + ~4 B index.
constexpr std::size_t kBytesPerWeightUnit = 12;

/// Union-find over a row subset, re-initialized per stage candidate via
/// an explicit touch pass. `weight` accumulates component weights at
/// the roots.
struct ComponentFinder {
  std::vector<index_t> parent;
  std::vector<index_t> weight;

  void init(index_t n) {
    parent.assign(static_cast<std::size_t>(n), -1);
    weight.assign(static_cast<std::size_t>(n), 0);
  }
  void touch(index_t i, index_t w) {
    parent[i] = i;
    weight[i] = w;
  }
  index_t find(index_t i) {
    while (parent[i] != i) {
      parent[i] = parent[parent[i]];
      i = parent[i];
    }
    return i;
  }
  void unite(index_t a, index_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (weight[a] < weight[b]) std::swap(a, b);
    parent[b] = a;
    weight[a] += weight[b];
  }
};

/// Per-row placement of one direction, recomputable from the
/// serialized arrays (used for dep derivation and validation).
struct Placement {
  std::vector<index_t> owner;  ///< thread owning the row (-1: unplaced)
  std::vector<index_t> stage;  ///< stage executing the row
  std::vector<index_t> pos;    ///< position within the owner's slot
  bool duplicate = false;      ///< a row appeared in two slots
};

Placement placement_of(const LevelBlockDirection& d, index_t num_threads,
                       index_t n) {
  Placement p;
  p.owner.assign(static_cast<std::size_t>(n), -1);
  p.stage.assign(static_cast<std::size_t>(n), -1);
  p.pos.assign(static_cast<std::size_t>(n), -1);
  for (index_t t = 0; t < num_threads; ++t)
    for (index_t s = 0; s < d.num_stages; ++s) {
      const std::size_t slot = d.slot(t, s);
      for (index_t q = d.part_ptr[slot]; q < d.part_ptr[slot + 1]; ++q) {
        const index_t i = d.part_rows[q];
        if (p.owner[i] != -1) p.duplicate = true;
        p.owner[i] = t;
        p.stage[i] = s;
        p.pos[i] = q - d.part_ptr[slot];
      }
    }
  return p;
}

/// Dependency levels straight from a triangle pattern (forward_levels /
/// backward_levels minus the CsrMatrix wrapper — validation only has
/// spans).
std::vector<index_t> levels_from_pattern(std::span<const index_t> rp,
                                         std::span<const index_t> ci,
                                         index_t n, bool upper_triangle) {
  std::vector<index_t> level_of(static_cast<std::size_t>(n), 0);
  if (upper_triangle) {
    for (index_t i = n; i-- > 0;) {
      index_t lvl = 0;
      for (index_t q = rp[i]; q < rp[i + 1]; ++q)
        lvl = std::max(lvl, level_of[ci[q]] + 1);
      level_of[i] = lvl;
    }
  } else {
    for (index_t i = 0; i < n; ++i) {
      index_t lvl = 0;
      for (index_t q = rp[i]; q < rp[i + 1]; ++q)
        lvl = std::max(lvl, level_of[ci[q]] + 1);
      level_of[i] = lvl;
    }
  }
  return level_of;
}

/// Build one direction: aggregate levels into stages, partition each
/// stage's connected components across threads by greedy LPT.
LevelBlockDirection build_direction(const LevelSchedule& ls,
                                    std::span<const index_t> tri_rp,
                                    std::span<const index_t> tri_ci,
                                    std::span<const index_t> row_weight,
                                    index_t n, index_t num_threads,
                                    const LevelBlockingOptions& opts) {
  LevelBlockDirection d;

  std::vector<index_t> level_of(static_cast<std::size_t>(n), 0);
  for (index_t l = 0; l < ls.num_levels; ++l)
    for (index_t q = ls.level_ptr[l]; q < ls.level_ptr[l + 1]; ++q)
      level_of[ls.rows[q]] = l;

  std::vector<std::size_t> level_weight(
      static_cast<std::size_t>(ls.num_levels), 0);
  for (index_t i = 0; i < n; ++i)
    level_weight[level_of[i]] += static_cast<std::size_t>(row_weight[i]);

  ComponentFinder cf;
  cf.init(n);

  // Union the triangle edges interior to the level range [l0, l1);
  // neighbors below the range stay cross-stage (point-to-point deps).
  const auto unite_range = [&](index_t l0, index_t l1) {
    for (index_t q = ls.level_ptr[l0]; q < ls.level_ptr[l1]; ++q)
      cf.touch(ls.rows[q], row_weight[ls.rows[q]]);
    for (index_t q = ls.level_ptr[l0]; q < ls.level_ptr[l1]; ++q) {
      const index_t i = ls.rows[q];
      for (index_t e = tri_rp[i]; e < tri_rp[i + 1]; ++e) {
        const index_t j = tri_ci[e];
        if (level_of[j] >= l0) cf.unite(i, j);
      }
    }
  };

  const auto acceptable = [&](index_t l0, index_t l1) -> bool {
    unite_range(l0, l1);
    std::size_t total = 0;
    std::size_t max_comp = 0;
    for (index_t q = ls.level_ptr[l0]; q < ls.level_ptr[l1]; ++q) {
      const index_t i = ls.rows[q];
      total += static_cast<std::size_t>(row_weight[i]);
      if (cf.find(i) == i)
        max_comp =
            std::max(max_comp, static_cast<std::size_t>(cf.weight[i]));
    }
    const double cap = opts.balance_slack * static_cast<double>(total) /
                       static_cast<double>(num_threads);
    return static_cast<double>(max_comp) <= cap;
  };

  const std::size_t budget =
      std::max<std::size_t>(1, opts.stage_bytes / kBytesPerWeightUnit);
  d.stage_level_ptr = aggregate_levels(level_weight, budget, acceptable);
  d.num_stages = static_cast<index_t>(d.stage_level_ptr.size()) - 1;

  const index_t S = d.num_stages;
  const std::size_t num_slots = static_cast<std::size_t>(num_threads) * S;
  d.load.assign(num_slots, 0);

  std::vector<std::vector<index_t>> slot_rows(num_slots);
  std::vector<index_t> comp_id(static_cast<std::size_t>(n), -1);
  std::vector<std::vector<index_t>> comp_rows;

  for (index_t s = 0; s < S; ++s) {
    const index_t l0 = d.stage_level_ptr[s];
    const index_t l1 = d.stage_level_ptr[s + 1];
    const bool single_level = (l1 - l0) == 1;
    if (!single_level) unite_range(l0, l1);

    // Walk the stage's rows in (level, row) order (how ls.rows stores
    // them); each component's row list inherits that order, which is
    // the producer-first invariant.
    comp_rows.clear();
    for (index_t q = ls.level_ptr[l0]; q < ls.level_ptr[l1]; ++q) {
      const index_t i = ls.rows[q];
      const index_t root = single_level ? i : cf.find(i);
      if (comp_id[root] < 0) {
        comp_id[root] = static_cast<index_t>(comp_rows.size());
        comp_rows.emplace_back();
      }
      comp_rows[comp_id[root]].push_back(i);
    }
    for (index_t q = ls.level_ptr[l0]; q < ls.level_ptr[l1]; ++q) {
      const index_t i = ls.rows[q];
      comp_id[single_level ? i : cf.find(i)] = -1;  // reset scratch
    }

    // Greedy LPT: heaviest component to the least-loaded thread;
    // deterministic tie-breaks (first row, then thread id).
    std::vector<index_t> order(comp_rows.size());
    std::vector<index_t> comp_weight(comp_rows.size(), 0);
    for (std::size_t c = 0; c < comp_rows.size(); ++c) {
      for (index_t i : comp_rows[c]) comp_weight[c] += row_weight[i];
      order[c] = static_cast<index_t>(c);
    }
    std::sort(order.begin(), order.end(), [&](index_t a, index_t b) {
      if (comp_weight[a] != comp_weight[b])
        return comp_weight[a] > comp_weight[b];
      return comp_rows[a].front() < comp_rows[b].front();
    });
    using HeapItem = std::pair<index_t, index_t>;  // (load, thread)
    std::priority_queue<HeapItem, std::vector<HeapItem>,
                        std::greater<HeapItem>>
        heap;
    for (index_t t = 0; t < num_threads; ++t) heap.push({0, t});
    for (index_t c : order) {
      auto [ld, t] = heap.top();
      heap.pop();
      auto& rows = slot_rows[d.slot(t, s)];
      rows.insert(rows.end(), comp_rows[c].begin(), comp_rows[c].end());
      d.load[d.slot(t, s)] += comp_weight[c];
      heap.push({ld + comp_weight[c], t});
    }

    // Components don't interact, so a global (level, row) sort per slot
    // restores streaming order while keeping producers first.
    for (index_t t = 0; t < num_threads; ++t) {
      auto& rows = slot_rows[d.slot(t, s)];
      std::sort(rows.begin(), rows.end(), [&](index_t a, index_t b) {
        if (level_of[a] != level_of[b]) return level_of[a] < level_of[b];
        return a < b;
      });
    }
  }

  d.part_ptr.assign(num_slots + 1, 0);
  for (std::size_t slot = 0; slot < num_slots; ++slot)
    d.part_ptr[slot + 1] =
        d.part_ptr[slot] + static_cast<index_t>(slot_rows[slot].size());
  d.part_rows.resize(static_cast<std::size_t>(n));
  for (std::size_t slot = 0; slot < num_slots; ++slot)
    std::copy(slot_rows[slot].begin(), slot_rows[slot].end(),
              d.part_rows.begin() + d.part_ptr[slot]);
  return d;
}

/// Max foreign-stage requirement per (slot, foreign thread), collected
/// with an epoch-stamped scratch array. `record(u, s)` keeps the max.
struct ForeignMax {
  std::vector<index_t> best;
  std::vector<unsigned> stamp;
  unsigned epoch = 0;

  void init(index_t num_threads) {
    best.assign(static_cast<std::size_t>(num_threads), 0);
    stamp.assign(static_cast<std::size_t>(num_threads), 0);
  }
  void reset() { ++epoch; }
  void record(index_t u, index_t s) {
    if (stamp[u] != epoch) {
      stamp[u] = epoch;
      best[u] = s;
    } else {
      best[u] = std::max(best[u], s);
    }
  }
  bool has(index_t u) const { return stamp[u] == epoch; }
};

/// Derived within-pair dependencies of one schedule (the ground truth
/// both the builder stores and the validator checks coverage against).
struct DerivedDeps {
  std::vector<index_t> fwd_dep_ptr;
  std::vector<LevelDep> fwd_deps;
  std::vector<index_t> bwd_dep_ptr;
  std::vector<LevelDep> bwd_deps;
  std::vector<index_t> bwd_fdep_ptr;
  std::vector<LevelDep> bwd_fdeps;
};

DerivedDeps derive_deps(const LevelSweepSchedule& s, const Placement& fp,
                        const Placement& bp,
                        std::span<const index_t> lower_rp,
                        std::span<const index_t> lower_ci,
                        std::span<const index_t> upper_rp,
                        std::span<const index_t> upper_ci) {
  const index_t T = s.num_threads;
  DerivedDeps out;
  ForeignMax fmax, bmax;
  fmax.init(T);
  bmax.init(T);

  // Column adjacency of the lower triangle: lcol[m] lists the rows i
  // with L_im != 0 — the forward-sweep readers of xy[2m] that the
  // backward stage overwriting xy[2m] must wait out. For structurally
  // symmetric patterns this set equals the U-neighbors of m (already
  // recorded below); the transpose scan is what keeps the engine
  // correct on unsymmetric patterns.
  const index_t n = static_cast<index_t>(lower_rp.size()) - 1;
  std::vector<index_t> lcol_ptr(static_cast<std::size_t>(n) + 1, 0);
  for (index_t i = 0; i < n; ++i)
    for (index_t e = lower_rp[i]; e < lower_rp[i + 1]; ++e)
      ++lcol_ptr[lower_ci[e] + 1];
  for (index_t m = 0; m < n; ++m) lcol_ptr[m + 1] += lcol_ptr[m];
  std::vector<index_t> lcol_rows(static_cast<std::size_t>(lcol_ptr[n]));
  {
    std::vector<index_t> fill(lcol_ptr.begin(), lcol_ptr.end() - 1);
    for (index_t i = 0; i < n; ++i)
      for (index_t e = lower_rp[i]; e < lower_rp[i + 1]; ++e)
        lcol_rows[fill[lower_ci[e]]++] = i;
  }

  // Forward slot (t, sf): waits on the largest foreign forward stage
  // among its rows' L-neighbors (the xy[2j+1] writers of this pair).
  out.fwd_dep_ptr.push_back(0);
  for (index_t t = 0; t < T; ++t)
    for (index_t sf = 0; sf < s.fwd.num_stages; ++sf) {
      fmax.reset();
      const std::size_t slot = s.fwd.slot(t, sf);
      for (index_t q = s.fwd.part_ptr[slot]; q < s.fwd.part_ptr[slot + 1];
           ++q) {
        const index_t i = s.fwd.part_rows[q];
        for (index_t e = lower_rp[i]; e < lower_rp[i + 1]; ++e) {
          const index_t j = lower_ci[e];
          if (fp.owner[j] != t) fmax.record(fp.owner[j], fp.stage[j]);
        }
      }
      for (index_t u = 0; u < T; ++u)
        if (fmax.has(u)) out.fwd_deps.push_back({u, fmax.best[u]});
      out.fwd_dep_ptr.push_back(static_cast<index_t>(out.fwd_deps.size()));
    }

  // Backward slot (t, sb): per row m it reads tmp[m] (forward writer of
  // m), reads xy[2j]/xy[2j+1] of U-neighbors j (backward / forward
  // writers of j), and overwrites xy[2m] whose prior readers are the
  // forward stages of the rows in column m of L (the lcol scan above;
  // equal to the U-neighbor set when the pattern is structurally
  // symmetric). A backward wait on thread u subsumes every forward
  // wait on u.
  out.bwd_dep_ptr.push_back(0);
  out.bwd_fdep_ptr.push_back(0);
  for (index_t t = 0; t < T; ++t)
    for (index_t sb = 0; sb < s.bwd.num_stages; ++sb) {
      fmax.reset();
      bmax.reset();
      const std::size_t slot = s.bwd.slot(t, sb);
      for (index_t q = s.bwd.part_ptr[slot]; q < s.bwd.part_ptr[slot + 1];
           ++q) {
        const index_t m = s.bwd.part_rows[q];
        if (fp.owner[m] != t) fmax.record(fp.owner[m], fp.stage[m]);
        for (index_t e = upper_rp[m]; e < upper_rp[m + 1]; ++e) {
          const index_t j = upper_ci[e];
          if (bp.owner[j] != t) bmax.record(bp.owner[j], bp.stage[j]);
          if (fp.owner[j] != t) fmax.record(fp.owner[j], fp.stage[j]);
        }
        for (index_t e = lcol_ptr[m]; e < lcol_ptr[m + 1]; ++e) {
          const index_t i = lcol_rows[e];  // forward reader of xy[2m]
          if (fp.owner[i] != t) fmax.record(fp.owner[i], fp.stage[i]);
        }
      }
      for (index_t u = 0; u < T; ++u) {
        if (bmax.has(u))
          out.bwd_deps.push_back({u, bmax.best[u]});
        else if (fmax.has(u))
          out.bwd_fdeps.push_back({u, fmax.best[u]});
      }
      out.bwd_dep_ptr.push_back(static_cast<index_t>(out.bwd_deps.size()));
      out.bwd_fdep_ptr.push_back(
          static_cast<index_t>(out.bwd_fdeps.size()));
    }
  return out;
}

/// Shape checks of one direction against n/T; rows permutation checked
/// by the caller via Placement.
bool direction_shape_ok(const LevelBlockDirection& d, index_t num_threads,
                        index_t n) {
  if (d.num_stages < 0) return false;
  const std::size_t num_slots =
      static_cast<std::size_t>(num_threads) * d.num_stages;
  if (d.stage_level_ptr.size() !=
      static_cast<std::size_t>(d.num_stages) + 1)
    return false;
  if (!d.stage_level_ptr.empty() && d.stage_level_ptr.front() != 0)
    return false;
  for (std::size_t q = 1; q < d.stage_level_ptr.size(); ++q)
    if (d.stage_level_ptr[q] < d.stage_level_ptr[q - 1]) return false;
  if (d.part_ptr.size() != num_slots + 1) return false;
  if (d.part_ptr.front() != 0 ||
      d.part_ptr.back() != n ||
      d.part_rows.size() != static_cast<std::size_t>(n))
    return false;
  for (std::size_t q = 1; q < d.part_ptr.size(); ++q)
    if (d.part_ptr[q] < d.part_ptr[q - 1]) return false;
  if (d.load.size() != num_slots) return false;
  for (index_t i : d.part_rows)
    if (i < 0 || i >= n) return false;
  return true;
}

/// The blocking invariant of one direction: every edge lands on a
/// strictly earlier stage, or on the same stage owned by the same
/// thread with the producer stored first.
bool edges_respect_stages(const LevelBlockDirection& d, const Placement& p,
                          std::span<const index_t> rp,
                          std::span<const index_t> ci, index_t n) {
  (void)d;
  for (index_t i = 0; i < n; ++i)
    for (index_t e = rp[i]; e < rp[i + 1]; ++e) {
      const index_t j = ci[e];
      if (p.stage[j] > p.stage[i]) return false;
      if (p.stage[j] == p.stage[i]) {
        if (p.owner[j] != p.owner[i]) return false;  // cross-thread edge
        if (p.pos[j] >= p.pos[i]) return false;      // consumer first
      }
    }
  return true;
}

/// Stored deps must cover the derived requirements: per (slot, foreign
/// thread) the stored stage must be >= the required one; a stored
/// backward dep covers any forward requirement on that thread.
bool deps_cover(std::span<const index_t> stored_ptr,
                std::span<const LevelDep> stored,
                std::span<const index_t> required_ptr,
                std::span<const LevelDep> required, index_t num_threads,
                index_t num_stages, index_t own_of_slot_stride,
                bool stage_strictly_before) {
  const std::size_t num_slots = stored_ptr.size() - 1;
  if (required_ptr.size() != stored_ptr.size()) return false;
  std::vector<index_t> best(static_cast<std::size_t>(num_threads));
  std::vector<unsigned> stamp(static_cast<std::size_t>(num_threads), 0);
  unsigned epoch = 0;
  for (std::size_t slot = 0; slot < num_slots; ++slot) {
    const index_t own_thread =
        static_cast<index_t>(slot) / own_of_slot_stride;
    const index_t own_stage =
        static_cast<index_t>(slot) % own_of_slot_stride;
    ++epoch;
    for (index_t q = stored_ptr[slot]; q < stored_ptr[slot + 1]; ++q) {
      const LevelDep& dep = stored[q];
      if (dep.thread < 0 || dep.thread >= num_threads) return false;
      if (dep.thread == own_thread) return false;  // self-wait
      if (dep.stage < 0 || dep.stage >= num_stages) return false;
      if (stage_strictly_before && dep.stage >= own_stage) return false;
      stamp[dep.thread] = epoch;
      best[dep.thread] = dep.stage;
    }
    for (index_t q = required_ptr[slot]; q < required_ptr[slot + 1]; ++q) {
      const LevelDep& need = required[q];
      if (stamp[need.thread] != epoch || best[need.thread] < need.stage)
        return false;
    }
  }
  return true;
}

}  // namespace

LevelSweepSchedule build_level_sweep_schedule(
    const LevelSchedulePair& levels, std::span<const index_t> lower_rp,
    std::span<const index_t> lower_ci, std::span<const index_t> upper_rp,
    std::span<const index_t> upper_ci, index_t num_threads,
    const LevelBlockingOptions& opts) {
  FBMPK_CHECK(num_threads >= 1);
  const index_t n = static_cast<index_t>(levels.forward.rows.size());
  FBMPK_CHECK(levels.backward.rows.size() == static_cast<std::size_t>(n));

  std::vector<index_t> row_weight(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    row_weight[i] = (lower_rp[i + 1] - lower_rp[i]) +
                    (upper_rp[i + 1] - upper_rp[i]) + 1;

  LevelSweepSchedule s;
  s.num_threads = num_threads;
  s.fwd = build_direction(levels.forward, lower_rp, lower_ci, row_weight, n,
                          num_threads, opts);
  s.bwd = build_direction(levels.backward, upper_rp, upper_ci, row_weight, n,
                          num_threads, opts);

  const Placement fp = placement_of(s.fwd, num_threads, n);
  const Placement bp = placement_of(s.bwd, num_threads, n);
  DerivedDeps deps =
      derive_deps(s, fp, bp, lower_rp, lower_ci, upper_rp, upper_ci);
  s.fwd_dep_ptr = std::move(deps.fwd_dep_ptr);
  s.fwd_deps = std::move(deps.fwd_deps);
  s.bwd_dep_ptr = std::move(deps.bwd_dep_ptr);
  s.bwd_deps = std::move(deps.bwd_deps);
  s.bwd_fdep_ptr = std::move(deps.bwd_fdep_ptr);
  s.bwd_fdeps = std::move(deps.bwd_fdeps);
  return s;
}

bool validate_level_sweep_schedule(const LevelSweepSchedule& s,
                                   std::span<const index_t> lower_rp,
                                   std::span<const index_t> lower_ci,
                                   std::span<const index_t> upper_rp,
                                   std::span<const index_t> upper_ci) {
  if (s.num_threads < 1) return false;
  const index_t n = static_cast<index_t>(lower_rp.size()) - 1;
  if (static_cast<index_t>(upper_rp.size()) - 1 != n) return false;
  if (!direction_shape_ok(s.fwd, s.num_threads, n) ||
      !direction_shape_ok(s.bwd, s.num_threads, n))
    return false;

  const Placement fp = placement_of(s.fwd, s.num_threads, n);
  const Placement bp = placement_of(s.bwd, s.num_threads, n);
  if (fp.duplicate || bp.duplicate) return false;
  for (index_t i = 0; i < n; ++i)
    if (fp.owner[i] < 0 || bp.owner[i] < 0) return false;

  // Stage level ranges must agree with the actual dependency levels.
  const std::vector<index_t> flev =
      levels_from_pattern(lower_rp, lower_ci, n, false);
  const std::vector<index_t> blev =
      levels_from_pattern(upper_rp, upper_ci, n, true);
  const auto levels_agree = [n](const LevelBlockDirection& d,
                                const Placement& p,
                                const std::vector<index_t>& lev) {
    index_t num_levels = 0;
    for (index_t i = 0; i < n; ++i)
      num_levels = std::max(num_levels, lev[i] + 1);
    if (!d.stage_level_ptr.empty() && d.stage_level_ptr.back() != num_levels)
      return false;
    for (index_t i = 0; i < n; ++i) {
      const index_t st = p.stage[i];
      if (lev[i] < d.stage_level_ptr[st] ||
          lev[i] >= d.stage_level_ptr[st + 1])
        return false;
    }
    return true;
  };
  if (!levels_agree(s.fwd, fp, flev) || !levels_agree(s.bwd, bp, blev))
    return false;

  if (!edges_respect_stages(s.fwd, fp, lower_rp, lower_ci, n) ||
      !edges_respect_stages(s.bwd, bp, upper_rp, upper_ci, n))
    return false;

  // Dep arrays: shapes, ranges, and coverage of the derived
  // requirements. Forward requirements may never appear in bwd_deps'
  // place and vice versa, so coverage is checked per array with the
  // backward-subsumes-forward rule folded in below.
  const std::size_t fwd_slots =
      static_cast<std::size_t>(s.num_threads) * s.fwd.num_stages;
  const std::size_t bwd_slots =
      static_cast<std::size_t>(s.num_threads) * s.bwd.num_stages;
  if (s.fwd_dep_ptr.size() != fwd_slots + 1 ||
      s.bwd_dep_ptr.size() != bwd_slots + 1 ||
      s.bwd_fdep_ptr.size() != bwd_slots + 1)
    return false;
  if (s.fwd_dep_ptr.front() != 0 || s.bwd_dep_ptr.front() != 0 ||
      s.bwd_fdep_ptr.front() != 0)
    return false;
  if (s.fwd_dep_ptr.back() != static_cast<index_t>(s.fwd_deps.size()) ||
      s.bwd_dep_ptr.back() != static_cast<index_t>(s.bwd_deps.size()) ||
      s.bwd_fdep_ptr.back() != static_cast<index_t>(s.bwd_fdeps.size()))
    return false;
  for (std::size_t q = 1; q < s.fwd_dep_ptr.size(); ++q)
    if (s.fwd_dep_ptr[q] < s.fwd_dep_ptr[q - 1]) return false;
  for (std::size_t q = 1; q < s.bwd_dep_ptr.size(); ++q)
    if (s.bwd_dep_ptr[q] < s.bwd_dep_ptr[q - 1]) return false;
  for (std::size_t q = 1; q < s.bwd_fdep_ptr.size(); ++q)
    if (s.bwd_fdep_ptr[q] < s.bwd_fdep_ptr[q - 1]) return false;

  const DerivedDeps need =
      derive_deps(s, fp, bp, lower_rp, lower_ci, upper_rp, upper_ci);
  if (!deps_cover(s.fwd_dep_ptr, s.fwd_deps, need.fwd_dep_ptr,
                  need.fwd_deps, s.num_threads, s.fwd.num_stages,
                  s.fwd.num_stages, /*stage_strictly_before=*/true))
    return false;
  if (!deps_cover(s.bwd_dep_ptr, s.bwd_deps, need.bwd_dep_ptr,
                  need.bwd_deps, s.num_threads, s.bwd.num_stages,
                  s.bwd.num_stages, /*stage_strictly_before=*/true))
    return false;
  // bwd_fdeps target forward stages of the same pair; a stored backward
  // dep on the same thread also satisfies a forward requirement, so the
  // derived bwd_fdeps (which exclude threads with a backward dep by
  // construction) must be covered literally.
  if (!deps_cover(s.bwd_fdep_ptr, s.bwd_fdeps, need.bwd_fdep_ptr,
                  need.bwd_fdeps, s.num_threads, s.fwd.num_stages,
                  s.bwd.num_stages, /*stage_strictly_before=*/false))
    return false;
  return true;
}

}  // namespace fbmpk
