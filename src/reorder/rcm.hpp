// Reverse Cuthill–McKee ordering (paper §II-C): the classical
// bandwidth/locality-improving reordering, used both standalone and as
// an optional pre-pass before ABMC blocking.
#pragma once

#include "reorder/graph.hpp"
#include "reorder/permutation.hpp"

namespace fbmpk {

/// RCM ordering of an adjacency graph. Disconnected components are each
/// started from a pseudo-peripheral vertex and concatenated.
Permutation rcm_order(const AdjacencyGraph& g);

/// Convenience: RCM of a matrix's symmetrized pattern.
template <class T>
Permutation rcm_order(const CsrMatrix<T>& a) {
  return rcm_order(adjacency_from_matrix(a));
}

/// Find a pseudo-peripheral vertex of the component containing `start`
/// (George–Liu doubling of BFS eccentricity). Exposed for tests.
index_t pseudo_peripheral_vertex(const AdjacencyGraph& g, index_t start);

}  // namespace fbmpk
