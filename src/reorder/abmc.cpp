#include "reorder/abmc.hpp"

#include <algorithm>
#include <numeric>

namespace fbmpk {

AbmcOrdering abmc_order(const AdjacencyGraph& g, const AbmcOptions& opts) {
  FBMPK_CHECK(g.n > 0);
  const Blocking blocking =
      build_blocking(g, g.n, opts.num_blocks, opts.blocking);
  const AdjacencyGraph q =
      quotient_graph(g, blocking.block_of, blocking.num_blocks);
  const Coloring coloring = greedy_color(q, opts.coloring);

  // Stable-sort block ids by color; ties keep block order, which keeps
  // the underlying row order (and thus locality) intact within a color.
  std::vector<index_t> block_order(
      static_cast<std::size_t>(blocking.num_blocks));
  std::iota(block_order.begin(), block_order.end(), 0);
  std::stable_sort(block_order.begin(), block_order.end(),
                   [&](index_t a, index_t b) {
                     return coloring.color_of[a] < coloring.color_of[b];
                   });

  AbmcOrdering out;
  out.num_blocks = blocking.num_blocks;
  out.num_colors = coloring.num_colors;
  out.block_ptr.reserve(static_cast<std::size_t>(out.num_blocks) + 1);
  out.color_ptr.assign(static_cast<std::size_t>(out.num_colors) + 1, 0);

  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(g.n));
  out.block_ptr.push_back(0);
  index_t prev_color = 0;
  for (index_t pos = 0; pos < out.num_blocks; ++pos) {
    const index_t blk = block_order[pos];
    const index_t color = coloring.color_of[blk];
    FBMPK_CHECK(color >= prev_color);  // sorted by color
    while (prev_color < color) out.color_ptr[++prev_color] = pos;
    for (index_t k = blocking.block_ptr[blk]; k < blocking.block_ptr[blk + 1];
         ++k)
      order.push_back(blocking.row_order[k]);
    out.block_ptr.push_back(static_cast<index_t>(order.size()));
  }
  while (prev_color < out.num_colors)
    out.color_ptr[++prev_color] = out.num_blocks;

  out.perm = Permutation(std::move(order));
  return out;
}

}  // namespace fbmpk
