// Undirected adjacency graphs derived from sparse-matrix patterns.
//
// RCM, blocking and coloring all operate on the symmetrized structure of
// the matrix (an edge {i, j} exists when A(i,j) or A(j,i) is stored,
// i != j). This header provides that graph plus the block quotient graph
// used by ABMC.
#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "support/error.hpp"

namespace fbmpk {

/// CSR-style undirected adjacency list. No self loops; neighbor lists
/// are sorted and duplicate-free.
struct AdjacencyGraph {
  index_t n = 0;
  std::vector<index_t> ptr;  ///< size n+1
  std::vector<index_t> adj;  ///< concatenated neighbor lists

  index_t degree(index_t v) const { return ptr[v + 1] - ptr[v]; }

  void validate() const {
    FBMPK_CHECK(ptr.size() == static_cast<std::size_t>(n) + 1);
    FBMPK_CHECK(ptr.front() == 0);
    FBMPK_CHECK(ptr.back() == static_cast<index_t>(adj.size()));
    for (index_t v = 0; v < n; ++v)
      for (index_t k = ptr[v]; k < ptr[v + 1]; ++k) {
        FBMPK_CHECK(adj[k] >= 0 && adj[k] < n && adj[k] != v);
        if (k > ptr[v]) FBMPK_CHECK(adj[k - 1] < adj[k]);
      }
  }
};

/// Build the symmetrized adjacency graph of a square matrix's pattern.
template <class T>
AdjacencyGraph adjacency_from_matrix(const CsrMatrix<T>& a) {
  FBMPK_CHECK(a.rows() == a.cols());
  const index_t n = a.rows();
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();

  // Count each undirected edge's contribution to both endpoints. An edge
  // stored in both directions would be counted twice, so dedupe with a
  // per-row merge after bucketing.
  std::vector<std::vector<index_t>> nbrs(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    for (index_t k = rp[i]; k < rp[i + 1]; ++k) {
      const index_t j = ci[k];
      if (j == i) continue;
      nbrs[i].push_back(j);
      nbrs[j].push_back(i);
    }

  AdjacencyGraph g;
  g.n = n;
  g.ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  std::size_t total = 0;
  for (index_t v = 0; v < n; ++v) {
    auto& list = nbrs[v];
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    total += list.size();
  }
  g.adj.reserve(total);
  for (index_t v = 0; v < n; ++v) {
    g.adj.insert(g.adj.end(), nbrs[v].begin(), nbrs[v].end());
    g.ptr[v + 1] = static_cast<index_t>(g.adj.size());
  }
  return g;
}

/// Quotient graph of `g` under a block assignment: vertices are blocks,
/// blocks P and Q adjacent iff some edge of g crosses them (P != Q).
/// `block_of[v]` must lie in [0, num_blocks).
AdjacencyGraph quotient_graph(const AdjacencyGraph& g,
                              const std::vector<index_t>& block_of,
                              index_t num_blocks);

/// Block quotient graph rebuilt from two CSR *patterns* (the L and U
/// triangles of a permuted matrix) and contiguous block row ranges
/// (block b covers rows [block_ptr[b], block_ptr[b+1])). Equivalent to
/// adjacency_from_matrix + quotient_graph but without materializing the
/// row-level graph — this is what sweep-schedule planning runs on the
/// already-split matrix. Both triangles together cover every
/// off-diagonal entry, and since row i's L entry (i, j) mirrors row j's
/// U entry (j, i), scanning both symmetrizes the pattern for free.
AdjacencyGraph block_quotient_from_split(std::span<const index_t> lower_rp,
                                         std::span<const index_t> lower_ci,
                                         std::span<const index_t> upper_rp,
                                         std::span<const index_t> upper_ci,
                                         std::span<const index_t> block_ptr);

}  // namespace fbmpk
