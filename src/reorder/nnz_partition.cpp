#include "reorder/nnz_partition.hpp"

#include <algorithm>
#include <queue>
#include <utility>

namespace fbmpk {

std::vector<index_t> block_nnz_weights(const AbmcOrdering& o,
                                       std::span<const index_t> lower_rp,
                                       std::span<const index_t> upper_rp) {
  FBMPK_CHECK(!o.block_ptr.empty());
  const index_t n = o.block_ptr.back();
  FBMPK_CHECK(lower_rp.size() == static_cast<std::size_t>(n) + 1 &&
              upper_rp.size() == static_cast<std::size_t>(n) + 1);
  std::vector<index_t> w(static_cast<std::size_t>(o.num_blocks), 0);
  for (index_t b = 0; b < o.num_blocks; ++b) {
    const index_t lo = o.block_ptr[b];
    const index_t hi = o.block_ptr[b + 1];
    // Row ranges are contiguous, so the block's L/U nnz are pointer
    // differences; the +rows term charges the diagonal FMA per row.
    w[b] = (lower_rp[hi] - lower_rp[lo]) + (upper_rp[hi] - upper_rp[lo]) +
           (hi - lo);
  }
  return w;
}

ColorPartition partition_colors(const AbmcOrdering& o,
                                std::span<const index_t> weights,
                                index_t num_threads,
                                PartitionStrategy strategy) {
  FBMPK_CHECK(num_threads >= 1);
  FBMPK_CHECK(weights.size() == static_cast<std::size_t>(o.num_blocks));
  const index_t C = o.num_colors;
  const index_t T = num_threads;

  ColorPartition p;
  p.num_threads = T;
  p.num_colors = C;
  p.owner_of.assign(static_cast<std::size_t>(o.num_blocks), 0);
  p.load.assign(static_cast<std::size_t>(T) * C, 0);

  // Collect per-(thread, color) block lists, then flatten.
  std::vector<std::vector<index_t>> assigned(static_cast<std::size_t>(T) * C);

  for (index_t c = 0; c < C; ++c) {
    const index_t first = o.color_ptr[c];
    const index_t count = o.color_ptr[c + 1] - first;
    if (strategy == PartitionStrategy::kBlockStatic) {
      // Mirror `omp for schedule(static)`: one contiguous chunk each.
      const index_t base = count / T;
      const index_t rem = count % T;
      index_t b = first;
      for (index_t t = 0; t < T; ++t) {
        const index_t take = base + (t < rem ? 1 : 0);
        for (index_t i = 0; i < take; ++i, ++b) {
          assigned[p.slot(t, c)].push_back(b);
          p.owner_of[b] = t;
          p.load[p.slot(t, c)] += weights[b];
        }
      }
    } else {
      // Greedy LPT: heaviest block first onto the least-loaded thread.
      std::vector<index_t> order(static_cast<std::size_t>(count));
      for (index_t i = 0; i < count; ++i) order[i] = first + i;
      std::stable_sort(order.begin(), order.end(), [&](index_t a, index_t b) {
        return weights[a] > weights[b];
      });
      // Min-heap of (load, thread); thread id breaks ties for
      // determinism.
      using Slot = std::pair<index_t, index_t>;
      std::priority_queue<Slot, std::vector<Slot>, std::greater<Slot>> heap;
      for (index_t t = 0; t < T; ++t) heap.emplace(0, t);
      for (index_t b : order) {
        auto [load, t] = heap.top();
        heap.pop();
        assigned[p.slot(t, c)].push_back(b);
        p.owner_of[b] = t;
        heap.emplace(load + weights[b], t);
      }
      for (index_t t = 0; t < T; ++t) {
        // Keep each thread's blocks in ascending order: within one
        // color the execution order is free (no same-color edges), but
        // ascending ranges walk memory forward.
        auto& list = assigned[p.slot(t, c)];
        std::sort(list.begin(), list.end());
        for (index_t b : list) p.load[p.slot(t, c)] += weights[b];
      }
    }
  }

  p.part_ptr.assign(static_cast<std::size_t>(T) * C + 1, 0);
  for (std::size_t s = 0; s < assigned.size(); ++s)
    p.part_ptr[s + 1] =
        p.part_ptr[s] + static_cast<index_t>(assigned[s].size());
  p.part_blocks.reserve(static_cast<std::size_t>(o.num_blocks));
  for (const auto& list : assigned)
    p.part_blocks.insert(p.part_blocks.end(), list.begin(), list.end());
  return p;
}

}  // namespace fbmpk
