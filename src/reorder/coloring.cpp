#include "reorder/coloring.hpp"

#include <algorithm>
#include <numeric>

namespace fbmpk {

namespace {

std::vector<index_t> visit_order(const AdjacencyGraph& g,
                                 ColoringOrder order) {
  std::vector<index_t> v(static_cast<std::size_t>(g.n));
  std::iota(v.begin(), v.end(), 0);
  switch (order) {
    case ColoringOrder::kNatural:
      break;
    case ColoringOrder::kLargestDegreeFirst:
      std::stable_sort(v.begin(), v.end(), [&](index_t a, index_t b) {
        return g.degree(a) > g.degree(b);
      });
      break;
    case ColoringOrder::kSmallestLast: {
      // Repeatedly remove a minimum-remaining-degree vertex; color in
      // reverse removal order. Bucketed implementation, O(V + E).
      std::vector<index_t> deg(static_cast<std::size_t>(g.n));
      index_t max_deg = 0;
      for (index_t u = 0; u < g.n; ++u) {
        deg[u] = g.degree(u);
        max_deg = std::max(max_deg, deg[u]);
      }
      std::vector<std::vector<index_t>> buckets(
          static_cast<std::size_t>(max_deg) + 1);
      for (index_t u = 0; u < g.n; ++u) buckets[deg[u]].push_back(u);
      std::vector<char> removed(static_cast<std::size_t>(g.n), 0);
      std::vector<index_t> removal;
      removal.reserve(static_cast<std::size_t>(g.n));
      index_t cursor = 0;
      while (static_cast<index_t>(removal.size()) < g.n) {
        while (cursor <= max_deg && buckets[cursor].empty()) ++cursor;
        // Lazy deletion: entries may be stale (vertex already removed or
        // its degree decreased); skip those.
        index_t u = buckets[cursor].back();
        buckets[cursor].pop_back();
        if (removed[u] || deg[u] != cursor) {
          cursor = 0;
          continue;
        }
        removed[u] = 1;
        removal.push_back(u);
        for (index_t k = g.ptr[u]; k < g.ptr[u + 1]; ++k) {
          const index_t w = g.adj[k];
          if (!removed[w]) {
            --deg[w];
            buckets[deg[w]].push_back(w);
          }
        }
        cursor = 0;
      }
      std::reverse(removal.begin(), removal.end());
      v = std::move(removal);
      break;
    }
  }
  return v;
}

}  // namespace

Coloring greedy_color(const AdjacencyGraph& g, ColoringOrder order) {
  Coloring c;
  c.color_of.assign(static_cast<std::size_t>(g.n), -1);
  const std::vector<index_t> visit = visit_order(g, order);

  std::vector<index_t> mark(static_cast<std::size_t>(g.n), -1);
  for (index_t v : visit) {
    for (index_t k = g.ptr[v]; k < g.ptr[v + 1]; ++k) {
      const index_t cu = c.color_of[g.adj[k]];
      if (cu >= 0) mark[cu] = v;
    }
    index_t color = 0;
    while (mark[color] == v) ++color;
    c.color_of[v] = color;
    c.num_colors = std::max(c.num_colors, color + 1);
  }
  return c;
}

bool is_valid_coloring(const AdjacencyGraph& g, const Coloring& c) {
  if (c.color_of.size() != static_cast<std::size_t>(g.n)) return false;
  for (index_t v = 0; v < g.n; ++v) {
    if (c.color_of[v] < 0 || c.color_of[v] >= c.num_colors) return false;
    for (index_t k = g.ptr[v]; k < g.ptr[v + 1]; ++k)
      if (c.color_of[g.adj[k]] == c.color_of[v]) return false;
  }
  return true;
}

}  // namespace fbmpk
