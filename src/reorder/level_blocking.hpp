// Level blocking: cache-aware aggregation of dependency levels into
// point-to-point-schedulable stages (the RACE idea, arXiv:2205.01598,
// applied to the BtB sweep pair).
//
// The naive level kernel pays one team barrier per dependency level —
// thousands of barriers per sweep on matrices with long dependency
// chains. Level blocking recovers the ABMC engine's synchronization
// structure without recoloring or permuting the matrix:
//
//  - consecutive levels are aggregated into STAGES sized to a cache
//    budget (reorder/level_schedule.hpp, aggregate_levels), so the
//    iterate slices a stage touches stay resident across its levels;
//  - within a multi-level stage, rows are grouped by connected
//    component of the triangle subgraph induced by the stage's rows:
//    rows of different components share no edges, so components are
//    independent units a greedy LPT pass balances across threads (the
//    same makespan heuristic as reorder/nnz_partition.hpp). Every
//    intra-stage edge is therefore *intra-thread*, and each thread
//    stores its rows in (level, row) order so producers precede
//    consumers — the blocking invariant validate_level_sweep_schedule
//    enforces;
//  - cross-stage edges become point-to-point dependencies consumed by
//    the persistent-threads level engine (fbmpk_level_engine.hpp) with
//    the same epoch-counter protocol as the ABMC engine. Because the
//    forward and backward sweeps own rows independently (their level
//    structures differ), cross-PAIR dependencies are covered by one
//    all-thread rendezvous at each pair boundary; all within-pair
//    synchronization is point-to-point.
//
// Within-pair dependency derivation (stage order per pair is
// F_0 .. F_{SF-1}, B_0 .. B_{SB-1}; backward stages execute in
// ascending backward-level order, i.e. bottom rows first):
//
//  - F_s of thread t reads xy[2j+1] of every L-neighbor j of its rows,
//    written by F_{fstage(j)} of fowner(j) this pair → wait on the
//    foreign (fowner(j), fstage(j)) with the largest stage per thread.
//    Its reads of even slots / tmp are pair-boundary values, covered by
//    the rendezvous.
//  - B_s of thread t, for each of its rows m: reads tmp[m] written by
//    F_{fstage(m)}; reads xy[2j] / xy[2j+1] of U-neighbors j, written
//    by B_{bstage(j)} / F_{fstage(j)}; and overwrites xy[2m], whose old
//    value is read by the forward stages of rows i with m ∈ L(i) —
//    column m of the lower triangle, scanned explicitly so unsymmetric
//    patterns are covered too (for structurally symmetric patterns the
//    set coincides with the U-neighbors of m). A backward wait on
//    thread u subsumes any forward wait on u (u walks all its F stages
//    before its first B stage), so per foreign thread one dep suffices:
//    the max B stage if any, else the max F stage (bwd_fdeps).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "reorder/level_schedule.hpp"
#include "sparse/split.hpp"

namespace fbmpk {

/// One point-to-point wait of the level engine: foreign `thread` must
/// have completed its `stage` (same pair; direction fixed by the array
/// the dep lives in).
struct LevelDep {
  index_t thread = 0;
  index_t stage = 0;
  friend bool operator==(const LevelDep&, const LevelDep&) = default;
};

/// Stage + partition structure of one sweep direction. All CSR-style
/// index arrays; POD vectors so plan_io can frame them directly.
struct LevelBlockDirection {
  index_t num_stages = 0;
  /// Stage s aggregates dependency levels
  /// [stage_level_ptr[s], stage_level_ptr[s+1]).
  std::vector<index_t> stage_level_ptr;
  /// Rows of (thread t, stage s):
  /// part_rows[part_ptr[slot(t,s)] .. part_ptr[slot(t,s)+1]), stored in
  /// (level, row) ascending order so intra-thread dependencies run
  /// producer-first.
  std::vector<index_t> part_ptr;
  std::vector<index_t> part_rows;
  /// nnz weight executed by each slot — the imbalance diagnostic.
  std::vector<index_t> load;

  std::size_t slot(index_t t, index_t s) const {
    return static_cast<std::size_t>(t) * num_stages + s;
  }
};

/// The precomputed level-blocked schedule for a fixed thread count;
/// MpkPlan serializes it (plan format v7) and rebuilds it when the
/// runtime thread count differs from the stored one.
struct LevelSweepSchedule {
  index_t num_threads = 0;
  LevelBlockDirection fwd;
  LevelBlockDirection bwd;

  /// Waits of forward slot (t,s) on foreign forward stages.
  std::vector<index_t> fwd_dep_ptr;
  std::vector<LevelDep> fwd_deps;
  /// Waits of backward slot (t,s) on foreign backward stages.
  std::vector<index_t> bwd_dep_ptr;
  std::vector<LevelDep> bwd_deps;
  /// Waits of backward slot (t,s) on foreign *forward* stages (only for
  /// threads with no backward dep this slot — a backward dep subsumes).
  std::vector<index_t> bwd_fdep_ptr;
  std::vector<LevelDep> bwd_fdeps;

  bool empty() const { return num_threads == 0; }
};

struct LevelBlockingOptions {
  /// Per-stage working-set budget in bytes (iterate slices + triangle
  /// data touched by the stage's rows). Levels are merged until the
  /// budget fills.
  std::size_t stage_bytes = 512 * 1024;
  /// A merged range is accepted when its heaviest connected component
  /// weighs at most `balance_slack * total / num_threads`; rejected
  /// ranges are recursively bisected.
  double balance_slack = 1.5;
};

/// Build the level-blocked schedule for `num_threads` persistent
/// threads from the level schedules and the split triangle patterns
/// (original matrix order — level scheduling never permutes).
LevelSweepSchedule build_level_sweep_schedule(
    const LevelSchedulePair& levels, std::span<const index_t> lower_rp,
    std::span<const index_t> lower_ci, std::span<const index_t> upper_rp,
    std::span<const index_t> upper_ci, index_t num_threads,
    const LevelBlockingOptions& opts = {});

/// Convenience overload on a TriangularSplit.
template <class T>
LevelSweepSchedule build_level_sweep_schedule(
    const LevelSchedulePair& levels, const TriangularSplit<T>& s,
    index_t num_threads, const LevelBlockingOptions& opts = {}) {
  return build_level_sweep_schedule(levels, s.lower.row_ptr(),
                                    s.lower.col_idx(), s.upper.row_ptr(),
                                    s.upper.col_idx(), num_threads, opts);
}

/// Structural validation against the triangles the schedule claims to
/// block: shapes, every row in exactly one slot per direction, the
/// blocking invariant (no cross-thread edge inside a stage; intra-thread
/// edges producer-first), and point-to-point coverage of every
/// cross-stage edge. Returns false on any violation (plan
/// deserialization maps false to kCorruptPlan).
bool validate_level_sweep_schedule(const LevelSweepSchedule& s,
                                   std::span<const index_t> lower_rp,
                                   std::span<const index_t> lower_ci,
                                   std::span<const index_t> upper_rp,
                                   std::span<const index_t> upper_ci);

/// Convenience overload on a TriangularSplit.
template <class T>
bool validate_level_sweep_schedule(const LevelSweepSchedule& sched,
                                   const TriangularSplit<T>& s) {
  return validate_level_sweep_schedule(sched, s.lower.row_ptr(),
                                       s.lower.col_idx(), s.upper.row_ptr(),
                                       s.upper.col_idx());
}

}  // namespace fbmpk
