// Level scheduling for the FBMPK sweeps — the alternative
// parallelization strategy the paper's discussion suggests (§VII,
// "Other parallelization strategies", citing the SYMGS literature).
//
// Instead of recoloring + permuting the matrix (ABMC), level scheduling
// leaves the matrix in its original order and derives a schedule from
// the dependency DAG itself: for the forward sweep over L, row i's
// level is 1 + max level over its L-neighbors (j < i with L(i,j) != 0);
// rows of equal level are independent and run in parallel, with one
// barrier per level. The backward sweep over U mirrors this from the
// bottom. Exactness is preserved for the same reason as in ABMC.
//
// Trade-off vs ABMC: no permutation (so no locality loss on matrices
// that are already well ordered, and no preprocessing beyond two linear
// passes) but typically far more levels than colors — hence more
// barriers — and uneven level widths.
#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/split.hpp"

namespace fbmpk {

/// Rows grouped by dependency level. Rows within one level are pairwise
/// independent under the sweep's triangle; level l must complete before
/// level l+1 starts.
struct LevelSchedule {
  std::vector<index_t> level_ptr;  ///< size num_levels + 1
  std::vector<index_t> rows;       ///< rows grouped by level, ascending
  index_t num_levels = 0;

  index_t level_size(index_t l) const {
    return level_ptr[l + 1] - level_ptr[l];
  }
};

/// Forward+backward schedules for one split matrix.
struct LevelSchedulePair {
  LevelSchedule forward;   ///< levels of L (top-down sweep)
  LevelSchedule backward;  ///< levels of U (bottom-up sweep)

  template <class T>
  static LevelSchedulePair of(const TriangularSplit<T>& s);
};

/// Levels for a top-down sweep over a strictly lower triangular matrix.
template <class T>
LevelSchedule forward_levels(const CsrMatrix<T>& lower);

/// Levels for a bottom-up sweep over a strictly upper triangular matrix.
template <class T>
LevelSchedule backward_levels(const CsrMatrix<T>& upper);

/// Validate a schedule against its triangle: every dependency must point
/// to a strictly earlier level and all rows appear exactly once.
/// `upper_triangle` selects which dependency direction to check.
template <class T>
bool is_valid_level_schedule(const CsrMatrix<T>& tri, const LevelSchedule& s,
                             bool upper_triangle);

/// Recursive level-set aggregation (the RACE idea, arXiv:2205.01598):
/// merge consecutive dependency levels into stages so one stage's
/// working set fits a cache budget and barriers amortize over many
/// levels. `level_weight[l]` is the work of level l in abstract units,
/// `stage_budget` the per-stage cap in the same units. A greedy pass
/// packs levels up to the budget; each candidate range is then handed
/// to `acceptable(l0, l1)` — the caller's parallelizability predicate
/// (level_blocking checks connected-component balance) — and ranges it
/// rejects are recursively bisected at their weight midpoint, down to
/// single levels, which are always acceptable (rows of one level are
/// pairwise independent). Returns stage_level_ptr: stage s aggregates
/// levels [ptr[s], ptr[s+1]).
template <class Acceptable>
std::vector<index_t> aggregate_levels(std::span<const std::size_t> level_weight,
                                      std::size_t stage_budget,
                                      Acceptable&& acceptable) {
  const auto num_levels = static_cast<index_t>(level_weight.size());
  std::vector<index_t> ptr;
  ptr.push_back(0);

  const auto refine = [&](auto&& self, index_t l0, index_t l1) -> void {
    if (l1 - l0 <= 1 || acceptable(l0, l1)) {
      ptr.push_back(l1);
      return;
    }
    // Bisect at the weight midpoint (both halves non-empty).
    std::size_t total = 0;
    for (index_t l = l0; l < l1; ++l) total += level_weight[l];
    std::size_t acc = 0;
    index_t mid = l0 + 1;
    for (index_t l = l0; l + 1 < l1; ++l) {
      acc += level_weight[l];
      mid = l + 1;
      if (2 * acc >= total) break;
    }
    self(self, l0, mid);
    self(self, mid, l1);
  };

  index_t begin = 0;
  std::size_t acc = 0;
  for (index_t l = 0; l < num_levels; ++l) {
    if (l > begin && acc + level_weight[l] > stage_budget) {
      refine(refine, begin, l);
      begin = l;
      acc = 0;
    }
    acc += level_weight[l];
  }
  if (begin < num_levels) refine(refine, begin, num_levels);
  return ptr;
}

// ---------------------------------------------------------------------------
// Implementation
// ---------------------------------------------------------------------------

namespace detail {

inline LevelSchedule bucket_by_level(const std::vector<index_t>& level_of) {
  LevelSchedule s;
  const auto n = static_cast<index_t>(level_of.size());
  index_t max_level = -1;
  for (index_t l : level_of) max_level = std::max(max_level, l);
  s.num_levels = max_level + 1;
  s.level_ptr.assign(static_cast<std::size_t>(s.num_levels) + 1, 0);
  for (index_t i = 0; i < n; ++i) s.level_ptr[level_of[i] + 1] += 1;
  for (index_t l = 0; l < s.num_levels; ++l)
    s.level_ptr[l + 1] += s.level_ptr[l];
  s.rows.resize(static_cast<std::size_t>(n));
  std::vector<index_t> cursor(s.level_ptr.begin(), s.level_ptr.end() - 1);
  for (index_t i = 0; i < n; ++i) s.rows[cursor[level_of[i]]++] = i;
  return s;  // rows ascend within each level by construction
}

}  // namespace detail

template <class T>
LevelSchedule forward_levels(const CsrMatrix<T>& lower) {
  FBMPK_CHECK(lower.rows() == lower.cols());
  const index_t n = lower.rows();
  const auto rp = lower.row_ptr();
  const auto ci = lower.col_idx();
  std::vector<index_t> level_of(static_cast<std::size_t>(n), 0);
  for (index_t i = 0; i < n; ++i) {
    index_t lvl = 0;
    for (index_t k = rp[i]; k < rp[i + 1]; ++k) {
      FBMPK_DCHECK(ci[k] < i);  // strict lower triangle
      lvl = std::max(lvl, level_of[ci[k]] + 1);
    }
    level_of[i] = lvl;
  }
  return detail::bucket_by_level(level_of);
}

template <class T>
LevelSchedule backward_levels(const CsrMatrix<T>& upper) {
  FBMPK_CHECK(upper.rows() == upper.cols());
  const index_t n = upper.rows();
  const auto rp = upper.row_ptr();
  const auto ci = upper.col_idx();
  std::vector<index_t> level_of(static_cast<std::size_t>(n), 0);
  for (index_t i = n; i-- > 0;) {
    index_t lvl = 0;
    for (index_t k = rp[i]; k < rp[i + 1]; ++k) {
      FBMPK_DCHECK(ci[k] > i);  // strict upper triangle
      lvl = std::max(lvl, level_of[ci[k]] + 1);
    }
    level_of[i] = lvl;
  }
  return detail::bucket_by_level(level_of);
}

template <class T>
LevelSchedulePair LevelSchedulePair::of(const TriangularSplit<T>& s) {
  return {forward_levels(s.lower), backward_levels(s.upper)};
}

template <class T>
bool is_valid_level_schedule(const CsrMatrix<T>& tri, const LevelSchedule& s,
                             bool upper_triangle) {
  const index_t n = tri.rows();
  if (s.rows.size() != static_cast<std::size_t>(n)) return false;
  if (s.level_ptr.empty() || s.level_ptr.back() != n) return false;
  std::vector<index_t> level_of(static_cast<std::size_t>(n), -1);
  for (index_t l = 0; l < s.num_levels; ++l)
    for (index_t k = s.level_ptr[l]; k < s.level_ptr[l + 1]; ++k) {
      const index_t row = s.rows[k];
      if (row < 0 || row >= n || level_of[row] != -1) return false;
      level_of[row] = l;
    }
  const auto rp = tri.row_ptr();
  const auto ci = tri.col_idx();
  for (index_t i = 0; i < n; ++i)
    for (index_t k = rp[i]; k < rp[i + 1]; ++k) {
      const index_t j = ci[k];
      if (upper_triangle ? j <= i : j >= i) return false;
      if (level_of[j] >= level_of[i]) return false;  // dep not earlier
    }
  return true;
}

}  // namespace fbmpk
