// Row/column permutations and their application to matrices and vectors.
//
// Convention: a Permutation stores `order`, where order[new_index] =
// old_index — i.e. it is the list of old indices in their new order.
// The inverse map (old -> new) is materialized on demand.
#pragma once

#include <numeric>
#include <span>
#include <utility>
#include <vector>

#include "sparse/csr.hpp"
#include "support/aligned_buffer.hpp"
#include "support/error.hpp"

namespace fbmpk {

class Permutation {
 public:
  Permutation() = default;

  /// Identity permutation on n elements.
  static Permutation identity(index_t n) {
    std::vector<index_t> v(static_cast<std::size_t>(n));
    std::iota(v.begin(), v.end(), 0);
    return Permutation(std::move(v));
  }

  /// Construct from an order vector; validates it is a permutation.
  explicit Permutation(std::vector<index_t> order) : order_(std::move(order)) {
    std::vector<char> seen(order_.size(), 0);
    for (index_t old : order_) {
      FBMPK_CHECK_MSG(old >= 0 && static_cast<std::size_t>(old) < order_.size(),
                      "order entry out of range: " << old);
      FBMPK_CHECK_MSG(!seen[old], "duplicate order entry: " << old);
      seen[old] = 1;
    }
  }

  index_t size() const { return static_cast<index_t>(order_.size()); }

  /// old index occupying new position i.
  index_t old_of(index_t i) const { return order_[i]; }

  std::span<const index_t> order() const { return order_; }

  /// Inverse map: inverse()[old_index] = new_index.
  std::vector<index_t> inverse() const {
    std::vector<index_t> inv(order_.size());
    for (std::size_t i = 0; i < order_.size(); ++i)
      inv[order_[i]] = static_cast<index_t>(i);
    return inv;
  }

  /// Composition: (this ∘ other) — apply `other` first, then this.
  Permutation compose(const Permutation& other) const {
    FBMPK_CHECK(size() == other.size());
    std::vector<index_t> v(order_.size());
    for (std::size_t i = 0; i < order_.size(); ++i)
      v[i] = other.order_[order_[i]];
    return Permutation(std::move(v));
  }

  bool is_identity() const {
    for (std::size_t i = 0; i < order_.size(); ++i)
      if (order_[i] != static_cast<index_t>(i)) return false;
    return true;
  }

  friend bool operator==(const Permutation&, const Permutation&) = default;

 private:
  std::vector<index_t> order_;
};

/// Symmetric permutation B = P A P^T: row/column new_i of B is
/// row/column order[new_i] of A.
template <class T>
CsrMatrix<T> permute_symmetric(const CsrMatrix<T>& a, const Permutation& p) {
  FBMPK_CHECK(a.rows() == a.cols());
  FBMPK_CHECK(p.size() == a.rows());
  const auto inv = p.inverse();
  const index_t n = a.rows();
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto va = a.values();

  AlignedVector<index_t> b_ptr(static_cast<std::size_t>(n) + 1, 0);
  for (index_t i = 0; i < n; ++i)
    b_ptr[i + 1] = b_ptr[i] + a.row_nnz(p.old_of(i));

  AlignedVector<index_t> b_col(static_cast<std::size_t>(b_ptr[n]));
  AlignedVector<T> b_val(static_cast<std::size_t>(b_ptr[n]));
  std::vector<std::pair<index_t, T>> row;
  for (index_t i = 0; i < n; ++i) {
    const index_t old = p.old_of(i);
    row.clear();
    for (index_t k = rp[old]; k < rp[old + 1]; ++k)
      row.emplace_back(inv[ci[k]], va[k]);
    std::sort(row.begin(), row.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    index_t out = b_ptr[i];
    for (const auto& [c, v] : row) {
      b_col[out] = c;
      b_val[out] = v;
      ++out;
    }
  }
  return CsrMatrix<T>(n, n, std::move(b_ptr), std::move(b_col),
                      std::move(b_val));
}

/// Gather: out[new_i] = x[order[new_i]] — carries a vector from old to
/// new index space.
template <class T>
void permute_vector(const Permutation& p, std::span<const T> x,
                    std::span<T> out) {
  FBMPK_CHECK(x.size() == static_cast<std::size_t>(p.size()) &&
              out.size() == x.size());
  for (index_t i = 0; i < p.size(); ++i) out[i] = x[p.old_of(i)];
}

/// Scatter: out[order[new_i]] = x[new_i] — carries a vector from new back
/// to old index space (inverse of permute_vector).
template <class T>
void unpermute_vector(const Permutation& p, std::span<const T> x,
                      std::span<T> out) {
  FBMPK_CHECK(x.size() == static_cast<std::size_t>(p.size()) &&
              out.size() == x.size());
  for (index_t i = 0; i < p.size(); ++i) out[p.old_of(i)] = x[i];
}

}  // namespace fbmpk
