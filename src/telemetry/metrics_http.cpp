#include "telemetry/metrics_http.hpp"

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

namespace fbmpk::telemetry {

#ifdef _WIN32

Status MetricsHttpServer::start(int, Renderer) {
  return Status(FBMPK_MAKE_ERROR(
      ErrorCode::kUnsupported,
      "embedded metrics endpoint is POSIX-only; use --metrics-textfile"));
}
void MetricsHttpServer::stop() {}
void MetricsHttpServer::loop() {}

#else

namespace {

void send_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n <= 0) return;  // peer went away: a scrape is best-effort
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

Status MetricsHttpServer::start(int port, Renderer render) {
  if (thread_.joinable())
    return Status(FBMPK_MAKE_ERROR(ErrorCode::kInternal,
                                   "metrics endpoint already started"));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    return Status(FBMPK_MAKE_ERROR(
        ErrorCode::kIo, "metrics socket() failed: " << std::strerror(errno)));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int e = errno;
    ::close(fd);
    return Status(FBMPK_MAKE_ERROR(
        ErrorCode::kIo,
        "cannot bind metrics port " << port << ": " << std::strerror(e)));
  }
  if (::listen(fd, 16) != 0) {
    const int e = errno;
    ::close(fd);
    return Status(FBMPK_MAKE_ERROR(
        ErrorCode::kIo, "metrics listen() failed: " << std::strerror(e)));
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
    port_ = static_cast<int>(ntohs(addr.sin_port));
  else
    port_ = port;

  listen_fd_ = fd;
  render_ = std::move(render);
  stop_.store(false, std::memory_order_relaxed);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { loop(); });
  return Status();
}

void MetricsHttpServer::loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd p{listen_fd_, POLLIN, 0};
    const int r = ::poll(&p, 1, /*timeout_ms=*/100);
    if (r <= 0) continue;  // timeout (stop check) or transient error
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // Counted at accept, before the response: a client that saw its
    // reply complete must also see scrapes() reflect it.
    scrapes_.fetch_add(1, std::memory_order_relaxed);
    // Best-effort read of the request line + headers; the response is
    // the same exposition regardless.
    char reqbuf[1024];
    (void)::recv(fd, reqbuf, sizeof reqbuf, 0);
    std::string body;
    if (render_) {
      try {
        body = render_();
      } catch (...) {
        body.clear();  // an observer must never kill the connection path
      }
    }
    char hdr[160];
    const int n = std::snprintf(
        hdr, sizeof hdr,
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: %zu\r\n"
        "Connection: close\r\n\r\n",
        body.size());
    send_all(fd, hdr, static_cast<std::size_t>(n));
    send_all(fd, body.data(), body.size());
    ::shutdown(fd, SHUT_WR);
    ::close(fd);
  }
}

void MetricsHttpServer::stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_relaxed);
  thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = -1;
  running_.store(false, std::memory_order_release);
}

#endif  // _WIN32

}  // namespace fbmpk::telemetry
