// Flight-recorder dump triggers (docs/OBSERVABILITY.md).
//
// The per-thread FlightRing (telemetry.hpp) records the last ~1024
// spans of every instrumented thread in fixed memory whenever the
// registry is runtime-enabled. This header is the incident side: a
// process-global arming switch plus trigger_flight_dump(), which
// snapshots all rings and writes them as a normal Chrome trace — so
// every anomaly (request timeout, plan quarantine, degradation-rung
// transition, traffic-model deviation) ships with the trace of what
// led up to it.
//
// Design rules:
//  - Disarmed cost is one relaxed atomic load; anomaly paths call
//    trigger_flight_dump() unconditionally and fire-and-forget.
//  - Dumps are budgeted (max_dumps per arming) so a flapping anomaly
//    can never fill a disk; exhaustion is a typed kResourceLimit.
//  - All failures are typed Status/Expected — a dump must never take
//    down the serving process it observes.
#pragma once

#include <cstdint>
#include <string>

#include "support/error.hpp"

namespace fbmpk::telemetry {

struct FlightDumpOptions {
  std::string dir;            ///< directory receiving the dump files
  std::size_t max_dumps = 8;  ///< lifetime budget for this arming
};

/// Arm automatic flight dumps into opts.dir (resets the budget and the
/// dump counter). An empty dir disarms. Thread-safe.
void arm_flight_dumps(const FlightDumpOptions& opts);
void disarm_flight_dumps();

/// One relaxed load — anomaly paths may consult this to skip even the
/// call, but calling trigger_flight_dump() disarmed is just as cheap.
bool flight_dumps_armed();

/// Dumps successfully written since the last arm_flight_dumps().
std::uint64_t flight_dump_count();

/// Snapshot every thread's flight ring and write it as a Chrome trace
/// "<dir>/flight-<reason>-<n>.json" (atomic tmp+rename). `reason` must
/// be a static string ("timeout", "quarantine", "degrade",
/// "deviation", …); it becomes a zero-duration marker event in the
/// dump and part of the file name. Returns the written path, or typed
/// errors: kUnsupported (disarmed), kResourceLimit (budget exhausted),
/// kIo (write failure). Never throws; safe to call from any thread
/// while recording continues.
Expected<std::string> trigger_flight_dump(const char* reason);

}  // namespace fbmpk::telemetry
