#include "telemetry/flight_recorder.hpp"

#include <atomic>
#include <mutex>
#include <utility>

#include "telemetry/telemetry.hpp"
#include "telemetry/trace_export.hpp"

namespace fbmpk::telemetry {

namespace {

/// Synthetic track id for the trigger marker event — far above any
/// real worker tid so the dump shows a dedicated "what fired" lane.
constexpr int kTriggerTid = 9999;

struct DumpState {
  std::mutex mu;
  FlightDumpOptions opts;
  std::uint64_t attempts = 0;  ///< dump file names + budget accounting
};

std::atomic<bool> g_armed{false};
std::atomic<std::uint64_t> g_written{0};

DumpState& state() {
  // Leaked for the same reason as the registry: triggers may fire from
  // worker threads that outlive static destruction order.
  static DumpState* s = new DumpState;
  return *s;
}

}  // namespace

void arm_flight_dumps(const FlightDumpOptions& opts) {
  DumpState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.opts = opts;
  s.attempts = 0;
  g_written.store(0, std::memory_order_relaxed);
  g_armed.store(!opts.dir.empty(), std::memory_order_release);
}

void disarm_flight_dumps() {
  g_armed.store(false, std::memory_order_relaxed);
}

bool flight_dumps_armed() {
  return g_armed.load(std::memory_order_relaxed);
}

std::uint64_t flight_dump_count() {
  return g_written.load(std::memory_order_relaxed);
}

Expected<std::string> trigger_flight_dump(const char* reason) {
  if (!flight_dumps_armed())
    return Expected<std::string>(FBMPK_MAKE_ERROR(
        ErrorCode::kUnsupported,
        "flight dumps are not armed (arm_flight_dumps first)"));
  DumpState& s = state();
  std::string path;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.attempts >= s.opts.max_dumps)
      return Expected<std::string>(FBMPK_MAKE_ERROR(
          ErrorCode::kResourceLimit,
          "flight dump budget exhausted (" << s.opts.max_dumps
                                           << " per arming)"));
    path = s.opts.dir + "/flight-" + reason + "-" +
           std::to_string(s.attempts) + ".json";
    ++s.attempts;  // failed attempts consume budget too: no I/O storms
  }

  Registry& reg = Registry::instance();
  Snapshot snap = reg.flight_snapshot();
  // Marker lane: one zero-duration event named after the trigger, so
  // the dump is self-describing in any trace viewer.
  Snapshot::ThreadData marker;
  marker.tid = kTriggerTid;
  SpanEvent ev;
  ev.name = reason;
  ev.cat = Cat::kService;
  ev.start_ns = now_ns();
  ev.dur_ns = 0;
  marker.events.push_back(ev);
  snap.threads.push_back(std::move(marker));

  const Status st = export_trace_file(path, snap);
  if (!st.ok()) return Expected<std::string>(st.error());
  reg.counter_add("telemetry.flight_dump", 1);
  g_written.fetch_add(1, std::memory_order_relaxed);
  return Expected<std::string>(std::move(path));
}

}  // namespace fbmpk::telemetry
