// Runtime telemetry substrate: span/metrics registry with a hard
// zero-overhead-when-off contract (docs/OBSERVABILITY.md).
//
// Two independent switches gate every cost:
//
//  1. Compile time — the CMake option FBMPK_TELEMETRY (default OFF)
//     defines FBMPK_TELEMETRY=1. When it is off, the FBMPK_TSPAN /
//     FBMPK_TCOUNT macros and the hot-path recorder hooks expand to
//     nothing: no call, no branch, no symbol. tests/check_notracer.cmake
//     greps release kernel objects to keep it that way, exactly as it
//     polices NullTracer.
//  2. Run time — Registry::set_enabled(false) (the default). Spans then
//     cost one relaxed atomic load; nothing is allocated or recorded.
//     tests/test_telemetry.cpp asserts the sweep hot path performs zero
//     telemetry allocations in this state.
//
// The registry itself (this library) is always compiled — it sits on no
// hot path, so tests, the CLI and the benches can drive export and the
// hardware-counter backend in either build flavor.
//
// Event model: POD spans with interned (static string) names and a
// small fixed argument set (k-step, color, warmup flag, value), pushed
// into per-thread buffers so recording never contends. Counters are
// process-global named int64s; histograms are per-thread log2-bucketed
// (nanosecond) distributions merged at snapshot time.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

// Per-TU override used by tests/notracer_probe.cpp so the zero-overhead
// object check validates the OFF expansion in every build flavor.
#if defined(FBMPK_TELEMETRY_FORCE_OFF)
#define FBMPK_TELEMETRY_ENABLED 0
#elif defined(FBMPK_TELEMETRY) && FBMPK_TELEMETRY
#define FBMPK_TELEMETRY_ENABLED 1
#else
#define FBMPK_TELEMETRY_ENABLED 0
#endif

namespace fbmpk::telemetry {

/// True when the hot-path instrumentation macros compile to real code
/// in *this* translation unit. (The registry below exists either way.)
constexpr bool compiled_in() { return FBMPK_TELEMETRY_ENABLED != 0; }

/// Span taxonomy (docs/OBSERVABILITY.md). The category becomes the
/// Chrome-trace "cat" field so Perfetto can filter tracks by layer.
enum class Cat : std::uint8_t {
  kPlan = 0,     ///< plan-build phases: validate, reorder, split, …
  kAutotune,     ///< autotune probes (one span per measured candidate)
  kSweep,        ///< sweep execution: per-(k-step, color) stages
  kEngine,       ///< persistent-threads engine: stages + wait spans
  kBench,        ///< harness iterations (warmup vs measured)
  kSolver,       ///< solver-level spans (pcg, chebyshev, multigrid)
  kCli,          ///< top-level driver spans
  kService,      ///< serving layer: requests, cache, degradation ladder
  kCount_,       // sentinel
};
const char* cat_name(Cat c);

/// Fixed per-span argument payload. -1 / false mean "not applicable";
/// only applicable args are exported.
struct SpanArgs {
  std::int32_t k = -1;       ///< power / k-step index
  std::int32_t color = -1;   ///< ABMC color
  bool warmup = false;       ///< harness warmup iteration (excluded
                             ///< from exported histograms)
  std::int64_t value = -1;   ///< free slot (iterations, bytes, …)
  std::int64_t req = -1;     ///< serving-layer request id (trace
                             ///< context: exported traces connect all
                             ///< spans of one request with flow events)
};

/// One completed span. `name` must be a string with static storage
/// duration (macro call sites pass literals).
struct SpanEvent {
  const char* name = nullptr;
  Cat cat = Cat::kPlan;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
  SpanArgs args;
};

/// Log2-bucketed nanosecond histogram: bucket b counts samples in
/// [2^b, 2^{b+1}) ns (bucket 0 also takes 0). Cheap to record (one
/// bit-scan + increment), mergeable, and enough resolution to separate
/// spin-waits from futex sleeps across nine decades.
struct Histogram {
  static constexpr int kBuckets = 64;
  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;
  std::uint64_t max_ns = 0;

  void add(std::uint64_t ns) {
    // bucket = floor(log2(ns)) via one bit-scan; 0 and 1 share bucket 0,
    // UINT64_MAX lands in bucket 63 (tests pin the boundaries).
    const int b =
        ns == 0 ? 0
                : std::min(static_cast<int>(std::bit_width(ns)) - 1,
                           kBuckets - 1);
    ++buckets[static_cast<std::size_t>(b)];
    ++count;
    sum_ns += ns;
    if (ns > max_ns) max_ns = ns;
  }
  void merge(const Histogram& o) {
    for (int b = 0; b < kBuckets; ++b)
      buckets[static_cast<std::size_t>(b)] +=
          o.buckets[static_cast<std::size_t>(b)];
    count += o.count;
    sum_ns += o.sum_ns;
    if (o.max_ns > max_ns) max_ns = o.max_ns;
  }
  double mean_ns() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum_ns) /
                            static_cast<double>(count);
  }
  /// Approximate q-quantile (q in [0, 1]), assuming uniform mass inside
  /// each log2 bucket — good to within one octave, which is what a
  /// sliding-window p99 needs. Returns 0 for an empty histogram and
  /// never exceeds the recorded max.
  double quantile(double q) const {
    if (count == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const double target = q * static_cast<double>(count);
    double cum = 0.0;
    for (int b = 0; b < kBuckets; ++b) {
      const double n =
          static_cast<double>(buckets[static_cast<std::size_t>(b)]);
      if (n == 0.0) continue;
      if (cum + n >= target) {
        const double lo =
            b == 0 ? 0.0 : static_cast<double>(std::uint64_t{1} << b);
        const double hi = lo == 0.0 ? 2.0 : lo * 2.0;
        double frac = (target - cum) / n;
        if (frac < 0.0) frac = 0.0;
        const double v = lo + frac * (hi - lo);
        const double mx = static_cast<double>(max_ns);
        return v < mx ? v : mx;
      }
      cum += n;
    }
    return static_cast<double>(max_ns);
  }
};

/// Per-thread histogram kinds (fixed enum: no string lookups on the
/// recording path).
enum class Hist : std::uint8_t {
  kEngineWait = 0,  ///< engine dependency-wait durations
  kSweepStage,      ///< per-(k-step, color) stage durations
  kBenchRun,        ///< measured harness iterations (warmup excluded)
  kBatchWidth,      ///< coalesced service batch widths (a count, not ns)
  kRequestLatency,  ///< service submit-to-complete latency
  kCount_,
};
const char* hist_name(Hist h);

/// Persistent-threads engine wait accounting, accumulated locally by
/// the recorder and flushed once per sweep (no hot-loop atomics).
struct WaitStats {
  std::uint64_t waits = 0;         ///< dependency waits issued
  std::uint64_t spin_satisfied = 0;///< satisfied within the spin phase
  std::uint64_t futex_blocks = 0;  ///< fell through to a futex sleep
  std::uint64_t wait_ns = 0;       ///< total time spent waiting
  std::uint64_t stages = 0;        ///< epoch bumps (stages executed)

  void merge(const WaitStats& o) {
    waits += o.waits;
    spin_satisfied += o.spin_satisfied;
    futex_blocks += o.futex_blocks;
    wait_ns += o.wait_ns;
    stages += o.stages;
  }
};

/// Monotonic nanoseconds since an arbitrary process-local epoch.
inline std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Always-on flight recorder ring: the last kCapacity SpanEvents of one
/// thread, in fixed memory, overwrite-oldest. Single writer (the owning
/// thread) — concurrent snapshot() from any thread is safe: every slot
/// field is an atomic and a per-slot seqlock generation detects torn or
/// in-flight slots, so the dumper never publishes a mixed event and
/// TSan sees no race. ~64 KiB per thread, allocated only when the
/// registry is runtime-enabled (the ring lives inside ThreadBuffer).
class FlightRing {
 public:
  static constexpr std::size_t kCapacity = 1024;  // power of two
  static_assert((kCapacity & (kCapacity - 1)) == 0);

  void push(const SpanEvent& e) {
    const std::uint64_t i = head_.load(std::memory_order_relaxed);
    Slot& s = slots_[i & (kCapacity - 1)];
    // Seqlock write protocol: odd = in progress, 2*(i+1) = event i
    // complete. The release fence orders the odd marker before the
    // field stores; the final release store orders the fields before
    // the even marker.
    s.seq.store(2 * i + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    s.name.store(e.name, std::memory_order_relaxed);
    s.cat.store(static_cast<std::uint8_t>(e.cat), std::memory_order_relaxed);
    s.start_ns.store(e.start_ns, std::memory_order_relaxed);
    s.dur_ns.store(e.dur_ns, std::memory_order_relaxed);
    s.k.store(e.args.k, std::memory_order_relaxed);
    s.color.store(e.args.color, std::memory_order_relaxed);
    s.warmup.store(e.args.warmup, std::memory_order_relaxed);
    s.value.store(e.args.value, std::memory_order_relaxed);
    s.req.store(e.args.req, std::memory_order_relaxed);
    s.seq.store(2 * (i + 1), std::memory_order_release);
    head_.store(i + 1, std::memory_order_release);
  }

  /// Lifetime pushes (≥ resident events; overwritten events count).
  std::uint64_t pushes() const {
    return head_.load(std::memory_order_acquire);
  }

  /// Append a consistent copy of the resident events, oldest first.
  /// Slots the writer is overwriting mid-copy are skipped, never torn.
  void snapshot(std::vector<SpanEvent>& out) const {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    const std::uint64_t n = h < kCapacity ? h : kCapacity;
    for (std::uint64_t i = h - n; i < h; ++i) {
      const Slot& s = slots_[i & (kCapacity - 1)];
      const std::uint64_t want = 2 * (i + 1);
      if (s.seq.load(std::memory_order_acquire) != want) continue;
      SpanEvent e;
      e.name = s.name.load(std::memory_order_relaxed);
      e.cat = static_cast<Cat>(s.cat.load(std::memory_order_relaxed));
      e.start_ns = s.start_ns.load(std::memory_order_relaxed);
      e.dur_ns = s.dur_ns.load(std::memory_order_relaxed);
      e.args.k = s.k.load(std::memory_order_relaxed);
      e.args.color = s.color.load(std::memory_order_relaxed);
      e.args.warmup = s.warmup.load(std::memory_order_relaxed);
      e.args.value = s.value.load(std::memory_order_relaxed);
      e.args.req = s.req.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.seq.load(std::memory_order_relaxed) != want) continue;
      if (e.name != nullptr) out.push_back(e);
    }
  }

  /// Drop resident events. Owner-thread (or quiesced) use only; a
  /// concurrent writer makes the result merely empty-ish, never racy.
  void clear() {
    for (auto& s : slots_) s.seq.store(0, std::memory_order_relaxed);
    head_.store(0, std::memory_order_release);
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<std::int64_t> start_ns{0};
    std::atomic<std::int64_t> dur_ns{0};
    std::atomic<std::int64_t> value{-1};
    std::atomic<std::int64_t> req{-1};
    std::atomic<std::int32_t> k{-1};
    std::atomic<std::int32_t> color{-1};
    std::atomic<std::uint8_t> cat{0};
    std::atomic<bool> warmup{false};
  };
  std::atomic<std::uint64_t> head_{0};
  std::array<Slot, kCapacity> slots_{};
};

/// What push() keeps besides the flight ring. kFull (default) also
/// appends to the unbounded per-thread event vector for end-of-run
/// trace export; kFlightOnly bounds memory for long-lived serving —
/// only the ring and the histograms/counters keep recording.
enum class TraceMode : std::uint8_t { kFull = 0, kFlightOnly = 1 };

/// Per-thread event sink. Obtained through Registry::thread_buffer()
/// (never constructed directly); push() is inline and touches only
/// thread-local state plus one relaxed registry mode load.
class ThreadBuffer {
 public:
  void push(const SpanEvent& e);  // defined after Registry
  void record(Hist h, std::uint64_t ns) {
    hists_[static_cast<std::size_t>(h)].add(ns);
  }
  WaitStats& wait_stats() { return wait_; }

  int tid() const { return tid_; }
  const std::vector<SpanEvent>& events() const { return events_; }
  const Histogram& hist(Hist h) const {
    return hists_[static_cast<std::size_t>(h)];
  }
  const WaitStats& wait_stats() const { return wait_; }
  const FlightRing& flight() const { return flight_; }
  FlightRing& flight() { return flight_; }

  void clear() {
    events_.clear();
    for (auto& h : hists_) h = Histogram{};
    wait_ = WaitStats{};
    flight_.clear();
  }

 private:
  friend class Registry;
  explicit ThreadBuffer(int tid) : tid_(tid) {
    events_.reserve(kInitialCapacity);
  }
  static constexpr std::size_t kInitialCapacity = 4096;

  int tid_;
  std::vector<SpanEvent> events_;
  std::array<Histogram, static_cast<std::size_t>(Hist::kCount_)> hists_{};
  WaitStats wait_;
  FlightRing flight_;
};

/// Merged, copy-out view of everything recorded so far (export input).
struct Snapshot {
  struct ThreadData {
    int tid = 0;
    std::vector<SpanEvent> events;
    WaitStats wait;
    std::array<Histogram, static_cast<std::size_t>(Hist::kCount_)> hists{};
  };
  std::vector<ThreadData> threads;
  std::vector<std::pair<std::string, std::int64_t>> counters;  // sorted
  std::array<Histogram, static_cast<std::size_t>(Hist::kCount_)> merged{};
  WaitStats total_wait;
  std::size_t total_events() const {
    std::size_t n = 0;
    for (const auto& t : threads) n += t.events.size();
    return n;
  }
};

/// Process-global telemetry registry. A leaky singleton: it must
/// outlive every OpenMP worker that cached a thread-buffer pointer, so
/// it is intentionally never destroyed.
class Registry {
 public:
  static Registry& instance();

  /// Runtime master switch (default off). Spans and recorders check it
  /// once with relaxed ordering; flipping it mid-run is safe (a running
  /// recorder keeps its decision for the current scope).
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// What push() records (docs/OBSERVABILITY.md): kFull keeps the
  /// unbounded export vector, kFlightOnly only the bounded ring. The
  /// flight ring records in both modes.
  void set_trace_mode(TraceMode m) {
    trace_mode_.store(static_cast<std::uint8_t>(m),
                      std::memory_order_relaxed);
  }
  TraceMode trace_mode() const {
    return static_cast<TraceMode>(
        trace_mode_.load(std::memory_order_relaxed));
  }

  /// Calling thread's buffer, created and registered on first use.
  /// Never returns null. Callers on hot paths must consult enabled()
  /// first — acquiring a buffer may allocate.
  ThreadBuffer& thread_buffer();

  /// Named process-global counter cell (registered on first use; the
  /// name must have static storage duration). Returned reference stays
  /// valid forever — cache it, then add with relaxed ordering.
  std::atomic<std::int64_t>& counter(const char* name);
  void counter_add(const char* name, std::int64_t delta) {
    if (!enabled()) return;
    counter(name).fetch_add(delta, std::memory_order_relaxed);
  }
  /// Named gauge: last write wins (plan shape, imbalance x1e6, …).
  /// Zero-valued cells are omitted from snapshots (indistinguishable
  /// from never-touched after a reset()).
  void gauge_set(const char* name, std::int64_t value) {
    if (!enabled()) return;
    counter(name).store(value, std::memory_order_relaxed);
  }

  /// Number of internal buffer allocations performed so far — the
  /// zero-allocation-when-off test asserts this does not move across a
  /// runtime-off sweep.
  std::uint64_t buffer_allocations() const {
    return buffer_allocs_.load(std::memory_order_relaxed);
  }
  /// Total events currently recorded (cheap sanity probe for tests).
  std::size_t event_count();

  /// Copy out everything recorded so far.
  Snapshot snapshot();

  /// Copy out only the flight rings (+ counters): the incident view of
  /// the last ~kCapacity spans per thread, safe to take while writer
  /// threads keep recording. Thread order matches snapshot().
  Snapshot flight_snapshot();
  /// Lifetime flight-ring pushes across all threads (monotonic; the
  /// zero-allocation-when-off test asserts it does not move when the
  /// registry is runtime-disabled).
  std::uint64_t flight_pushes();

  /// Drop recorded events/histograms/counter values. Buffers stay
  /// registered (thread-local pointers remain valid).
  void reset();

 private:
  Registry() = default;
  struct Impl;
  Impl& impl();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint8_t> trace_mode_{0};
  std::atomic<std::uint64_t> buffer_allocs_{0};
  std::atomic<Impl*> impl_{nullptr};
};

inline void ThreadBuffer::push(const SpanEvent& e) {
  flight_.push(e);
  if (Registry::instance().trace_mode() == TraceMode::kFull)
    events_.push_back(e);
}

/// RAII span. When telemetry is runtime-off the constructor is one
/// relaxed load; the destructor a null check.
class ScopedSpan {
 public:
  ScopedSpan(Cat cat, const char* name, SpanArgs args = {}) {
    Registry& r = Registry::instance();
    if (r.enabled()) {
      buf_ = &r.thread_buffer();
      cat_ = cat;
      name_ = name;
      args_ = args;
      start_ = now_ns();
    }
  }
  ~ScopedSpan() { finish(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Update the free-slot arg before the span closes (e.g. iteration
  /// counts known only at the end).
  void set_value(std::int64_t v) {
    if (buf_) args_.value = v;
  }
  /// Close early (idempotent).
  void finish() {
    if (!buf_) return;
    const std::int64_t end = now_ns();
    buf_->push({name_, cat_, start_, end - start_, args_});
    buf_ = nullptr;
  }

 private:
  ThreadBuffer* buf_ = nullptr;
  const char* name_ = nullptr;
  Cat cat_ = Cat::kPlan;
  std::int64_t start_ = 0;
  SpanArgs args_;
};

/// Hot-loop recorder for the sweep kernels: one enabled check at
/// construction, then stage/wait recording through a cached buffer
/// pointer. Inert (single null check per call) when telemetry is
/// runtime-off.
class SweepRecorder {
 public:
  /// `engine` selects the category (kEngine vs kSweep tracks).
  explicit SweepRecorder(bool engine) : engine_(engine) {
    Registry& r = Registry::instance();
    if (r.enabled()) buf_ = &r.thread_buffer();
  }

  bool active() const { return buf_ != nullptr; }

  /// Per-(k-step, color) stage bracketing. `name` must be static.
  void stage_begin() {
    if (buf_) stage_start_ = now_ns();
  }
  void stage_end(const char* name, int k_step, int color) {
    if (!buf_) return;
    const std::int64_t end = now_ns();
    const std::int64_t dur = end - stage_start_;
    buf_->push({name, engine_ ? Cat::kEngine : Cat::kSweep, stage_start_, dur,
                SpanArgs{k_step, color, false, -1}});
    buf_->record(Hist::kSweepStage, static_cast<std::uint64_t>(dur));
    ++buf_->wait_stats().stages;
  }

  /// Dependency-wait bracketing (engine only). Emits a "wait" span so
  /// Perfetto shows per-thread wait tracks, feeds the wait histogram,
  /// and classifies spin-satisfied vs futex-blocked outcomes.
  void wait_begin() {
    if (buf_) wait_start_ = now_ns();
  }
  void wait_end(bool blocked) {
    if (!buf_) return;
    const std::int64_t end = now_ns();
    const std::int64_t dur = end - wait_start_;
    buf_->push({"wait", Cat::kEngine, wait_start_, dur,
                SpanArgs{-1, -1, false, -1}});
    buf_->record(Hist::kEngineWait, static_cast<std::uint64_t>(dur));
    WaitStats& w = buf_->wait_stats();
    ++w.waits;
    if (blocked)
      ++w.futex_blocks;
    else
      ++w.spin_satisfied;
    w.wait_ns += static_cast<std::uint64_t>(dur);
  }

 private:
  ThreadBuffer* buf_ = nullptr;
  bool engine_ = false;
  std::int64_t stage_start_ = 0;
  std::int64_t wait_start_ = 0;
};

}  // namespace fbmpk::telemetry

// ---------------------------------------------------------------------------
// Instrumentation macros. These — not direct API calls — are what hot
// and warm paths use, so an FBMPK_TELEMETRY=OFF build compiles them
// away entirely (object-grep enforced).
// ---------------------------------------------------------------------------
#if FBMPK_TELEMETRY_ENABLED

#define FBMPK_TSPAN_CAT_(a, b) a##b
#define FBMPK_TSPAN_NAME_(ctr) FBMPK_TSPAN_CAT_(fbmpk_tspan_, ctr)
/// Scoped span: FBMPK_TSPAN(kPlan, "plan.split");
#define FBMPK_TSPAN(cat, name)                          \
  ::fbmpk::telemetry::ScopedSpan FBMPK_TSPAN_NAME_(     \
      __COUNTER__)(::fbmpk::telemetry::Cat::cat, (name))
/// Scoped span with args: FBMPK_TSPAN_ARGS(kSweep, "pair", {k, c});
#define FBMPK_TSPAN_ARGS(cat, name, ...)                \
  ::fbmpk::telemetry::ScopedSpan FBMPK_TSPAN_NAME_(     \
      __COUNTER__)(::fbmpk::telemetry::Cat::cat, (name), \
                   ::fbmpk::telemetry::SpanArgs __VA_ARGS__)
/// Process-global counter bump.
#define FBMPK_TCOUNT(name, delta) \
  ::fbmpk::telemetry::Registry::instance().counter_add((name), (delta))
/// Value-histogram sample (log2 buckets; the value need not be a
/// duration — service.batch_width records widths). Warm-path macro:
/// checks enabled() before touching the thread buffer.
#define FBMPK_THIST(h, value)                                         \
  do {                                                                \
    auto& fbmpk_thist_reg_ = ::fbmpk::telemetry::Registry::instance(); \
    if (fbmpk_thist_reg_.enabled())                                   \
      fbmpk_thist_reg_.thread_buffer().record(                        \
          ::fbmpk::telemetry::Hist::h,                                \
          static_cast<std::uint64_t>(value));                         \
  } while (0)
/// Process-global gauge write.
#define FBMPK_TGAUGE(name, value) \
  ::fbmpk::telemetry::Registry::instance().gauge_set((name), (value))
/// Statement executed only in instrumented builds (recorder plumbing
/// inside kernel templates).
#define FBMPK_TELEMETRY_ONLY(...) __VA_ARGS__

#else  // !FBMPK_TELEMETRY_ENABLED

#define FBMPK_TSPAN(cat, name) ((void)0)
#define FBMPK_TSPAN_ARGS(cat, name, ...) ((void)0)
#define FBMPK_TCOUNT(name, delta) ((void)0)
#define FBMPK_THIST(h, value) ((void)0)
#define FBMPK_TGAUGE(name, value) ((void)0)
#define FBMPK_TELEMETRY_ONLY(...)

#endif  // FBMPK_TELEMETRY_ENABLED
