// Runtime telemetry substrate: span/metrics registry with a hard
// zero-overhead-when-off contract (docs/OBSERVABILITY.md).
//
// Two independent switches gate every cost:
//
//  1. Compile time — the CMake option FBMPK_TELEMETRY (default OFF)
//     defines FBMPK_TELEMETRY=1. When it is off, the FBMPK_TSPAN /
//     FBMPK_TCOUNT macros and the hot-path recorder hooks expand to
//     nothing: no call, no branch, no symbol. tests/check_notracer.cmake
//     greps release kernel objects to keep it that way, exactly as it
//     polices NullTracer.
//  2. Run time — Registry::set_enabled(false) (the default). Spans then
//     cost one relaxed atomic load; nothing is allocated or recorded.
//     tests/test_telemetry.cpp asserts the sweep hot path performs zero
//     telemetry allocations in this state.
//
// The registry itself (this library) is always compiled — it sits on no
// hot path, so tests, the CLI and the benches can drive export and the
// hardware-counter backend in either build flavor.
//
// Event model: POD spans with interned (static string) names and a
// small fixed argument set (k-step, color, warmup flag, value), pushed
// into per-thread buffers so recording never contends. Counters are
// process-global named int64s; histograms are per-thread log2-bucketed
// (nanosecond) distributions merged at snapshot time.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

// Per-TU override used by tests/notracer_probe.cpp so the zero-overhead
// object check validates the OFF expansion in every build flavor.
#if defined(FBMPK_TELEMETRY_FORCE_OFF)
#define FBMPK_TELEMETRY_ENABLED 0
#elif defined(FBMPK_TELEMETRY) && FBMPK_TELEMETRY
#define FBMPK_TELEMETRY_ENABLED 1
#else
#define FBMPK_TELEMETRY_ENABLED 0
#endif

namespace fbmpk::telemetry {

/// True when the hot-path instrumentation macros compile to real code
/// in *this* translation unit. (The registry below exists either way.)
constexpr bool compiled_in() { return FBMPK_TELEMETRY_ENABLED != 0; }

/// Span taxonomy (docs/OBSERVABILITY.md). The category becomes the
/// Chrome-trace "cat" field so Perfetto can filter tracks by layer.
enum class Cat : std::uint8_t {
  kPlan = 0,     ///< plan-build phases: validate, reorder, split, …
  kAutotune,     ///< autotune probes (one span per measured candidate)
  kSweep,        ///< sweep execution: per-(k-step, color) stages
  kEngine,       ///< persistent-threads engine: stages + wait spans
  kBench,        ///< harness iterations (warmup vs measured)
  kSolver,       ///< solver-level spans (pcg, chebyshev, multigrid)
  kCli,          ///< top-level driver spans
  kService,      ///< serving layer: requests, cache, degradation ladder
  kCount_,       // sentinel
};
const char* cat_name(Cat c);

/// Fixed per-span argument payload. -1 / false mean "not applicable";
/// only applicable args are exported.
struct SpanArgs {
  std::int32_t k = -1;       ///< power / k-step index
  std::int32_t color = -1;   ///< ABMC color
  bool warmup = false;       ///< harness warmup iteration (excluded
                             ///< from exported histograms)
  std::int64_t value = -1;   ///< free slot (iterations, bytes, …)
};

/// One completed span. `name` must be a string with static storage
/// duration (macro call sites pass literals).
struct SpanEvent {
  const char* name = nullptr;
  Cat cat = Cat::kPlan;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
  SpanArgs args;
};

/// Log2-bucketed nanosecond histogram: bucket b counts samples in
/// [2^b, 2^{b+1}) ns (bucket 0 also takes 0). Cheap to record (one
/// bit-scan + increment), mergeable, and enough resolution to separate
/// spin-waits from futex sleeps across nine decades.
struct Histogram {
  static constexpr int kBuckets = 64;
  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;
  std::uint64_t max_ns = 0;

  void add(std::uint64_t ns) {
    int b = 0;
    while ((std::uint64_t{1} << (b + 1)) <= ns && b < kBuckets - 1) ++b;
    ++buckets[static_cast<std::size_t>(b)];
    ++count;
    sum_ns += ns;
    if (ns > max_ns) max_ns = ns;
  }
  void merge(const Histogram& o) {
    for (int b = 0; b < kBuckets; ++b)
      buckets[static_cast<std::size_t>(b)] +=
          o.buckets[static_cast<std::size_t>(b)];
    count += o.count;
    sum_ns += o.sum_ns;
    if (o.max_ns > max_ns) max_ns = o.max_ns;
  }
  double mean_ns() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum_ns) /
                            static_cast<double>(count);
  }
};

/// Per-thread histogram kinds (fixed enum: no string lookups on the
/// recording path).
enum class Hist : std::uint8_t {
  kEngineWait = 0,  ///< engine dependency-wait durations
  kSweepStage,      ///< per-(k-step, color) stage durations
  kBenchRun,        ///< measured harness iterations (warmup excluded)
  kBatchWidth,      ///< coalesced service batch widths (a count, not ns)
  kCount_,
};
const char* hist_name(Hist h);

/// Persistent-threads engine wait accounting, accumulated locally by
/// the recorder and flushed once per sweep (no hot-loop atomics).
struct WaitStats {
  std::uint64_t waits = 0;         ///< dependency waits issued
  std::uint64_t spin_satisfied = 0;///< satisfied within the spin phase
  std::uint64_t futex_blocks = 0;  ///< fell through to a futex sleep
  std::uint64_t wait_ns = 0;       ///< total time spent waiting
  std::uint64_t stages = 0;        ///< epoch bumps (stages executed)

  void merge(const WaitStats& o) {
    waits += o.waits;
    spin_satisfied += o.spin_satisfied;
    futex_blocks += o.futex_blocks;
    wait_ns += o.wait_ns;
    stages += o.stages;
  }
};

/// Monotonic nanoseconds since an arbitrary process-local epoch.
inline std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-thread event sink. Obtained through Registry::thread_buffer()
/// (never constructed directly); push() is inline and touches only
/// thread-local state.
class ThreadBuffer {
 public:
  void push(const SpanEvent& e) { events_.push_back(e); }
  void record(Hist h, std::uint64_t ns) {
    hists_[static_cast<std::size_t>(h)].add(ns);
  }
  WaitStats& wait_stats() { return wait_; }

  int tid() const { return tid_; }
  const std::vector<SpanEvent>& events() const { return events_; }
  const Histogram& hist(Hist h) const {
    return hists_[static_cast<std::size_t>(h)];
  }
  const WaitStats& wait_stats() const { return wait_; }

  void clear() {
    events_.clear();
    for (auto& h : hists_) h = Histogram{};
    wait_ = WaitStats{};
  }

 private:
  friend class Registry;
  explicit ThreadBuffer(int tid) : tid_(tid) {
    events_.reserve(kInitialCapacity);
  }
  static constexpr std::size_t kInitialCapacity = 4096;

  int tid_;
  std::vector<SpanEvent> events_;
  std::array<Histogram, static_cast<std::size_t>(Hist::kCount_)> hists_{};
  WaitStats wait_;
};

/// Merged, copy-out view of everything recorded so far (export input).
struct Snapshot {
  struct ThreadData {
    int tid = 0;
    std::vector<SpanEvent> events;
    WaitStats wait;
    std::array<Histogram, static_cast<std::size_t>(Hist::kCount_)> hists{};
  };
  std::vector<ThreadData> threads;
  std::vector<std::pair<std::string, std::int64_t>> counters;  // sorted
  std::array<Histogram, static_cast<std::size_t>(Hist::kCount_)> merged{};
  WaitStats total_wait;
  std::size_t total_events() const {
    std::size_t n = 0;
    for (const auto& t : threads) n += t.events.size();
    return n;
  }
};

/// Process-global telemetry registry. A leaky singleton: it must
/// outlive every OpenMP worker that cached a thread-buffer pointer, so
/// it is intentionally never destroyed.
class Registry {
 public:
  static Registry& instance();

  /// Runtime master switch (default off). Spans and recorders check it
  /// once with relaxed ordering; flipping it mid-run is safe (a running
  /// recorder keeps its decision for the current scope).
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Calling thread's buffer, created and registered on first use.
  /// Never returns null. Callers on hot paths must consult enabled()
  /// first — acquiring a buffer may allocate.
  ThreadBuffer& thread_buffer();

  /// Named process-global counter cell (registered on first use; the
  /// name must have static storage duration). Returned reference stays
  /// valid forever — cache it, then add with relaxed ordering.
  std::atomic<std::int64_t>& counter(const char* name);
  void counter_add(const char* name, std::int64_t delta) {
    if (!enabled()) return;
    counter(name).fetch_add(delta, std::memory_order_relaxed);
  }
  /// Named gauge: last write wins (plan shape, imbalance x1e6, …).
  /// Zero-valued cells are omitted from snapshots (indistinguishable
  /// from never-touched after a reset()).
  void gauge_set(const char* name, std::int64_t value) {
    if (!enabled()) return;
    counter(name).store(value, std::memory_order_relaxed);
  }

  /// Number of internal buffer allocations performed so far — the
  /// zero-allocation-when-off test asserts this does not move across a
  /// runtime-off sweep.
  std::uint64_t buffer_allocations() const {
    return buffer_allocs_.load(std::memory_order_relaxed);
  }
  /// Total events currently recorded (cheap sanity probe for tests).
  std::size_t event_count();

  /// Copy out everything recorded so far.
  Snapshot snapshot();

  /// Drop recorded events/histograms/counter values. Buffers stay
  /// registered (thread-local pointers remain valid).
  void reset();

 private:
  Registry() = default;
  struct Impl;
  Impl& impl();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> buffer_allocs_{0};
  std::atomic<Impl*> impl_{nullptr};
};

/// RAII span. When telemetry is runtime-off the constructor is one
/// relaxed load; the destructor a null check.
class ScopedSpan {
 public:
  ScopedSpan(Cat cat, const char* name, SpanArgs args = {}) {
    Registry& r = Registry::instance();
    if (r.enabled()) {
      buf_ = &r.thread_buffer();
      cat_ = cat;
      name_ = name;
      args_ = args;
      start_ = now_ns();
    }
  }
  ~ScopedSpan() { finish(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Update the free-slot arg before the span closes (e.g. iteration
  /// counts known only at the end).
  void set_value(std::int64_t v) {
    if (buf_) args_.value = v;
  }
  /// Close early (idempotent).
  void finish() {
    if (!buf_) return;
    const std::int64_t end = now_ns();
    buf_->push({name_, cat_, start_, end - start_, args_});
    buf_ = nullptr;
  }

 private:
  ThreadBuffer* buf_ = nullptr;
  const char* name_ = nullptr;
  Cat cat_ = Cat::kPlan;
  std::int64_t start_ = 0;
  SpanArgs args_;
};

/// Hot-loop recorder for the sweep kernels: one enabled check at
/// construction, then stage/wait recording through a cached buffer
/// pointer. Inert (single null check per call) when telemetry is
/// runtime-off.
class SweepRecorder {
 public:
  /// `engine` selects the category (kEngine vs kSweep tracks).
  explicit SweepRecorder(bool engine) : engine_(engine) {
    Registry& r = Registry::instance();
    if (r.enabled()) buf_ = &r.thread_buffer();
  }

  bool active() const { return buf_ != nullptr; }

  /// Per-(k-step, color) stage bracketing. `name` must be static.
  void stage_begin() {
    if (buf_) stage_start_ = now_ns();
  }
  void stage_end(const char* name, int k_step, int color) {
    if (!buf_) return;
    const std::int64_t end = now_ns();
    const std::int64_t dur = end - stage_start_;
    buf_->push({name, engine_ ? Cat::kEngine : Cat::kSweep, stage_start_, dur,
                SpanArgs{k_step, color, false, -1}});
    buf_->record(Hist::kSweepStage, static_cast<std::uint64_t>(dur));
    ++buf_->wait_stats().stages;
  }

  /// Dependency-wait bracketing (engine only). Emits a "wait" span so
  /// Perfetto shows per-thread wait tracks, feeds the wait histogram,
  /// and classifies spin-satisfied vs futex-blocked outcomes.
  void wait_begin() {
    if (buf_) wait_start_ = now_ns();
  }
  void wait_end(bool blocked) {
    if (!buf_) return;
    const std::int64_t end = now_ns();
    const std::int64_t dur = end - wait_start_;
    buf_->push({"wait", Cat::kEngine, wait_start_, dur,
                SpanArgs{-1, -1, false, -1}});
    buf_->record(Hist::kEngineWait, static_cast<std::uint64_t>(dur));
    WaitStats& w = buf_->wait_stats();
    ++w.waits;
    if (blocked)
      ++w.futex_blocks;
    else
      ++w.spin_satisfied;
    w.wait_ns += static_cast<std::uint64_t>(dur);
  }

 private:
  ThreadBuffer* buf_ = nullptr;
  bool engine_ = false;
  std::int64_t stage_start_ = 0;
  std::int64_t wait_start_ = 0;
};

}  // namespace fbmpk::telemetry

// ---------------------------------------------------------------------------
// Instrumentation macros. These — not direct API calls — are what hot
// and warm paths use, so an FBMPK_TELEMETRY=OFF build compiles them
// away entirely (object-grep enforced).
// ---------------------------------------------------------------------------
#if FBMPK_TELEMETRY_ENABLED

#define FBMPK_TSPAN_CAT_(a, b) a##b
#define FBMPK_TSPAN_NAME_(ctr) FBMPK_TSPAN_CAT_(fbmpk_tspan_, ctr)
/// Scoped span: FBMPK_TSPAN(kPlan, "plan.split");
#define FBMPK_TSPAN(cat, name)                          \
  ::fbmpk::telemetry::ScopedSpan FBMPK_TSPAN_NAME_(     \
      __COUNTER__)(::fbmpk::telemetry::Cat::cat, (name))
/// Scoped span with args: FBMPK_TSPAN_ARGS(kSweep, "pair", {k, c});
#define FBMPK_TSPAN_ARGS(cat, name, ...)                \
  ::fbmpk::telemetry::ScopedSpan FBMPK_TSPAN_NAME_(     \
      __COUNTER__)(::fbmpk::telemetry::Cat::cat, (name), \
                   ::fbmpk::telemetry::SpanArgs __VA_ARGS__)
/// Process-global counter bump.
#define FBMPK_TCOUNT(name, delta) \
  ::fbmpk::telemetry::Registry::instance().counter_add((name), (delta))
/// Value-histogram sample (log2 buckets; the value need not be a
/// duration — service.batch_width records widths). Warm-path macro:
/// checks enabled() before touching the thread buffer.
#define FBMPK_THIST(h, value)                                         \
  do {                                                                \
    auto& fbmpk_thist_reg_ = ::fbmpk::telemetry::Registry::instance(); \
    if (fbmpk_thist_reg_.enabled())                                   \
      fbmpk_thist_reg_.thread_buffer().record(                        \
          ::fbmpk::telemetry::Hist::h,                                \
          static_cast<std::uint64_t>(value));                         \
  } while (0)
/// Process-global gauge write.
#define FBMPK_TGAUGE(name, value) \
  ::fbmpk::telemetry::Registry::instance().gauge_set((name), (value))
/// Statement executed only in instrumented builds (recorder plumbing
/// inside kernel templates).
#define FBMPK_TELEMETRY_ONLY(...) __VA_ARGS__

#else  // !FBMPK_TELEMETRY_ENABLED

#define FBMPK_TSPAN(cat, name) ((void)0)
#define FBMPK_TSPAN_ARGS(cat, name, ...) ((void)0)
#define FBMPK_TCOUNT(name, delta) ((void)0)
#define FBMPK_THIST(h, value) ((void)0)
#define FBMPK_TGAUGE(name, value) ((void)0)
#define FBMPK_TELEMETRY_ONLY(...)

#endif  // FBMPK_TELEMETRY_ENABLED
