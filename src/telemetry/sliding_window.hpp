// Sliding-window aggregation over the telemetry log2 histograms
// (docs/OBSERVABILITY.md).
//
// A window is N fixed slices of width slice_ns; a writer stamps into
// the slice covering "now" (clearing it lazily when its epoch rolled
// over), and a reader merges every slice younger than a horizon. Memory
// is fixed at N slices forever — exactly what a long-lived serving
// process needs for p50/p95/p99-over-the-last-minute without unbounded
// event retention.
//
// Deliberately not thread-safe: the owner (service::MetricsWindows, a
// test) wraps it in its own lock; the telemetry hot path never touches
// these. Every method takes an explicit now_ns so tests are
// deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace fbmpk::telemetry {

/// Generic slice rotation: SliceT must be default-constructible (the
/// empty slice) — rotation clears by assignment.
template <class SliceT>
class SlidingWindow {
 public:
  SlidingWindow(std::int64_t slice_ns, int slices)
      : slice_ns_(slice_ns > 0 ? slice_ns : 1),
        entries_(static_cast<std::size_t>(slices > 0 ? slices : 1)) {}

  std::int64_t slice_ns() const { return slice_ns_; }
  int slices() const { return static_cast<int>(entries_.size()); }

  /// Mutable slice covering t_ns, cleared first if its ring slot still
  /// holds an older epoch.
  SliceT& at(std::int64_t t_ns) {
    const std::int64_t e = epoch_of(t_ns);
    Entry& en = entries_[slot_of(e)];
    if (en.epoch != e) {
      en.data = SliceT{};
      en.epoch = e;
    }
    return en.data;
  }

  /// Visit every slice whose epoch lies within horizon_ns of t_ns
  /// (inclusive of the current partial slice). Untouched or expired
  /// slices are skipped.
  template <class F>
  void for_each_live(std::int64_t horizon_ns, std::int64_t t_ns,
                     F&& f) const {
    const std::int64_t newest = epoch_of(t_ns);
    std::int64_t live = (horizon_ns + slice_ns_ - 1) / slice_ns_;
    if (live < 1) live = 1;
    if (live > static_cast<std::int64_t>(entries_.size()))
      live = static_cast<std::int64_t>(entries_.size());
    for (const Entry& en : entries_)
      if (en.epoch >= 0 && en.epoch <= newest && newest - en.epoch < live)
        f(en.data);
  }

 private:
  struct Entry {
    std::int64_t epoch = -1;
    SliceT data{};
  };
  std::int64_t epoch_of(std::int64_t t_ns) const { return t_ns / slice_ns_; }
  std::size_t slot_of(std::int64_t epoch) const {
    return static_cast<std::size_t>(epoch) % entries_.size();
  }

  std::int64_t slice_ns_;
  std::vector<Entry> entries_;
};

/// The registry-level windowed view over one log2 histogram: add
/// samples as they happen, merge the last horizon on demand (then ask
/// the merged Histogram for quantile()/mean_ns()).
class WindowedHistogram {
 public:
  WindowedHistogram(std::int64_t slice_ns, int slices)
      : win_(slice_ns, slices) {}

  void add(std::uint64_t v, std::int64_t t_ns = now_ns()) {
    win_.at(t_ns).add(v);
  }
  Histogram merged(std::int64_t horizon_ns,
                   std::int64_t t_ns = now_ns()) const {
    Histogram out;
    win_.for_each_live(horizon_ns, t_ns,
                       [&](const Histogram& h) { out.merge(h); });
    return out;
  }

 private:
  SlidingWindow<Histogram> win_;
};

}  // namespace fbmpk::telemetry
