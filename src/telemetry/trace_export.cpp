#include "telemetry/trace_export.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "support/json.hpp"

namespace fbmpk::telemetry {

namespace {

void write_int_or_null(std::ostream& os, std::int64_t v) {
  if (v < 0)
    os << "null";
  else
    os << v;
}

void write_histogram(std::ostream& os, const Histogram& h) {
  os << "{\"count\": " << h.count << ", \"sum_ns\": " << h.sum_ns
     << ", \"max_ns\": " << h.max_ns
     << ", \"mean_ns\": " << json_number(h.mean_ns()) << ", \"buckets\": [";
  // Sparse encoding: only non-empty buckets, as [lower_bound_ns, count].
  bool first = true;
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    const std::uint64_t n = h.buckets[static_cast<std::size_t>(b)];
    if (n == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << "[" << (b == 0 ? 0 : (std::uint64_t{1} << b)) << ", " << n << "]";
  }
  os << "]}";
}

void write_wait_stats(std::ostream& os, const WaitStats& w) {
  os << "{\"waits\": " << w.waits
     << ", \"spin_satisfied\": " << w.spin_satisfied
     << ", \"futex_blocks\": " << w.futex_blocks
     << ", \"wait_ns\": " << w.wait_ns << ", \"stages\": " << w.stages << "}";
}

void write_metrics(std::ostream& os, const Snapshot& snap,
                   const ExportMeta& meta) {
  os << "{\n  \"schema_version\": " << kMetricsSchemaVersion << ",\n";

  os << "  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i != 0) os << ", ";
    os << "\"" << json_escape(snap.counters[i].first)
       << "\": " << snap.counters[i].second;
  }
  os << "},\n";

  os << "  \"histograms\": {";
  bool first = true;
  for (std::size_t h = 0; h < snap.merged.size(); ++h) {
    if (snap.merged[h].count == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << "\"" << hist_name(static_cast<Hist>(h)) << "\": ";
    write_histogram(os, snap.merged[h]);
  }
  os << "},\n";

  os << "  \"engine_wait\": ";
  write_wait_stats(os, snap.total_wait);
  os << ",\n  \"per_thread\": [";
  first = true;
  for (const auto& td : snap.threads) {
    if (td.wait.stages == 0 && td.wait.waits == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << "{\"tid\": " << td.tid << ", \"wait\": ";
    write_wait_stats(os, td.wait);
    os << ", \"wait_hist\": ";
    write_histogram(
        os, td.hists[static_cast<std::size_t>(Hist::kEngineWait)]);
    os << "}";
  }
  os << "]";

  if (meta.has_hw) {
    const HwAvailability& a = meta.hw_avail;
    const HwCounts& c = meta.hw;
    os << ",\n  \"hw\": {\"available\": " << (a.any() ? "true" : "false")
       << ", \"traffic_capable\": " << (a.traffic() ? "true" : "false")
       << ", \"detail\": \"" << json_escape(a.detail) << "\", \"cycles\": ";
    write_int_or_null(os, c.cycles);
    os << ", \"instructions\": ";
    write_int_or_null(os, c.instructions);
    os << ", \"llc_misses\": ";
    write_int_or_null(os, c.llc_misses);
    os << ", \"dram_read_bytes\": ";
    write_int_or_null(os, c.dram_read_bytes);
    os << ", \"dram_write_bytes\": ";
    write_int_or_null(os, c.dram_write_bytes);
    os << ", \"task_clock_ns\": ";
    write_int_or_null(os, c.task_clock_ns);
    os << ", \"memory_bytes\": ";
    write_int_or_null(os, c.memory_bytes());
    os << ", \"dram_direct\": " << (c.dram_direct ? "true" : "false") << "}";
  }

  if (meta.has_traffic) {
    const TrafficReport& t = meta.traffic;
    os << ",\n  \"traffic\": {\"model\": \"" << json_escape(t.model)
       << "\", \"k\": " << t.k << ", \"runs\": " << t.runs
       << ", \"modeled_bytes\": " << json_number(t.modeled_bytes)
       << ", \"measured_bytes\": "
       << (t.measured() ? json_number(t.measured_bytes) : "null")
       << ", \"measured_direct\": " << (t.measured_direct ? "true" : "false")
       << ", \"deviation\": "
       << (t.measured() ? json_number(t.deviation()) : "null") << "}";
  }

  os << "\n  }";
}

}  // namespace

Status write_trace(std::ostream& os, const Snapshot& snap,
                   const ExportMeta& meta) {
  try {
    // Rebase timestamps so the trace starts near zero regardless of
    // process uptime (Perfetto renders absolute ns poorly).
    std::int64_t t0 = std::numeric_limits<std::int64_t>::max();
    for (const auto& td : snap.threads)
      for (const SpanEvent& e : td.events) t0 = std::min(t0, e.start_ns);
    if (t0 == std::numeric_limits<std::int64_t>::max()) t0 = 0;

    // Spans tagged with the same request id are stitched into one flow
    // (schema v6): collect (tid, rebased start) per req while emitting
    // the X events, then append s/t/f flow events afterwards.
    struct FlowPoint {
      int tid;
      std::int64_t start_ns;
    };
    std::map<std::int64_t, std::vector<FlowPoint>> flows;

    os << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
    bool first = true;
    for (const auto& td : snap.threads) {
      if (td.events.empty()) continue;
      if (!first) os << ",\n";
      first = false;
      os << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
            "\"tid\": "
         << td.tid << ", \"args\": {\"name\": \"fbmpk-worker-" << td.tid
         << "\"}}";
      for (const SpanEvent& e : td.events) {
        os << ",\n  {\"name\": \"" << json_escape(e.name) << "\", \"cat\": \""
           << cat_name(e.cat) << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
           << td.tid << ", \"ts\": "
           << json_number(static_cast<double>(e.start_ns - t0) / 1e3)
           << ", \"dur\": "
           << json_number(static_cast<double>(e.dur_ns) / 1e3);
        const SpanArgs& a = e.args;
        if (a.k >= 0 || a.color >= 0 || a.warmup || a.value >= 0 ||
            a.req >= 0) {
          os << ", \"args\": {";
          bool afirst = true;
          const auto arg = [&](const char* key, std::int64_t v) {
            if (!afirst) os << ", ";
            afirst = false;
            os << "\"" << key << "\": " << v;
          };
          if (a.k >= 0) arg("k", a.k);
          if (a.color >= 0) arg("color", a.color);
          if (a.warmup) arg("warmup", 1);
          if (a.value >= 0) arg("value", a.value);
          if (a.req >= 0) arg("req", a.req);
          os << "}";
        }
        os << "}";
        if (a.req >= 0) flows[a.req].push_back({td.tid, e.start_ns - t0});
      }
    }
    for (auto& [req, points] : flows) {
      // A flow needs at least two anchors; a lone span already carries
      // its "req" arg.
      if (points.size() < 2) continue;
      std::sort(points.begin(), points.end(),
                [](const FlowPoint& x, const FlowPoint& y) {
                  return x.start_ns < y.start_ns;
                });
      for (std::size_t i = 0; i < points.size(); ++i) {
        const char* ph =
            i == 0 ? "s" : (i + 1 == points.size() ? "f" : "t");
        os << ",\n  {\"name\": \"req\", \"cat\": \"service\", \"ph\": \""
           << ph << "\", \"id\": " << req << ", \"pid\": 1, \"tid\": "
           << points[i].tid << ", \"ts\": "
           << json_number(static_cast<double>(points[i].start_ns) / 1e3);
        if (ph[0] == 'f') os << ", \"bp\": \"e\"";
        os << "}";
      }
    }
    os << "\n],\n\"fbmpkMetrics\": ";
    write_metrics(os, snap, meta);
    os << "\n}\n";
    os.flush();
    if (!os.good())
      return Status(FBMPK_MAKE_ERROR(ErrorCode::kIo,
                                     "telemetry trace stream failed while "
                                     "writing"));
    return Status();
  } catch (const std::ios_base::failure& e) {
    return Status(FBMPK_MAKE_ERROR(
        ErrorCode::kIo, "telemetry trace stream raised: " << e.what()));
  }
}

Status export_trace_file(const std::string& path, const Snapshot& snap,
                         const ExportMeta& meta) {
  if (path.empty())
    return Status(
        FBMPK_MAKE_ERROR(ErrorCode::kIo, "telemetry export path is empty"));
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open())
      return Status(FBMPK_MAKE_ERROR(
          ErrorCode::kIo, "cannot open telemetry output " << tmp));
    const Status st = write_trace(out, snap, meta);
    out.close();
    if (!st.ok() || out.fail()) {
      std::remove(tmp.c_str());
      if (!st.ok()) return st;
      return Status(FBMPK_MAKE_ERROR(
          ErrorCode::kIo, "telemetry output truncated: " << tmp));
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status(FBMPK_MAKE_ERROR(
        ErrorCode::kIo, "cannot move telemetry output into place: " << path));
  }
  return Status();
}

}  // namespace fbmpk::telemetry
