#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <mutex>

namespace fbmpk::telemetry {

const char* cat_name(Cat c) {
  switch (c) {
    case Cat::kPlan: return "plan";
    case Cat::kAutotune: return "autotune";
    case Cat::kSweep: return "sweep";
    case Cat::kEngine: return "engine";
    case Cat::kBench: return "bench";
    case Cat::kSolver: return "solver";
    case Cat::kCli: return "cli";
    case Cat::kService: return "service";
    case Cat::kCount_: break;
  }
  return "unknown";
}

const char* hist_name(Hist h) {
  switch (h) {
    case Hist::kEngineWait: return "engine_wait_ns";
    case Hist::kSweepStage: return "sweep_stage_ns";
    case Hist::kBenchRun: return "bench_run_ns";
    case Hist::kBatchWidth: return "service.batch_width";
    case Hist::kRequestLatency: return "service.request_latency_ns";
    case Hist::kCount_: break;
  }
  return "unknown";
}

/// All mutable registry state behind one mutex. Counter cells are
/// node-allocated so references handed out by counter() stay stable as
/// the table grows.
struct Registry::Impl {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  struct CounterCell {
    const char* name;
    std::atomic<std::int64_t> value{0};
  };
  std::vector<std::unique_ptr<CounterCell>> counters;
};

Registry& Registry::instance() {
  // Deliberately leaked: OpenMP workers cache thread-buffer pointers
  // and may outlive static destruction order.
  static Registry* r = [] {
    auto* reg = new Registry;
    reg->impl_.store(new Impl, std::memory_order_release);
    return reg;
  }();
  return *r;
}

Registry::Impl& Registry::impl() {
  return *impl_.load(std::memory_order_acquire);
}

ThreadBuffer& Registry::thread_buffer() {
  thread_local ThreadBuffer* cached = nullptr;
  if (cached == nullptr) {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.mu);
    const int tid = static_cast<int>(im.buffers.size());
    im.buffers.emplace_back(new ThreadBuffer(tid));
    buffer_allocs_.fetch_add(1, std::memory_order_relaxed);
    cached = im.buffers.back().get();
  }
  return *cached;
}

std::atomic<std::int64_t>& Registry::counter(const char* name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (const auto& c : im.counters)
    if (c->name == name || std::strcmp(c->name, name) == 0) return c->value;
  im.counters.emplace_back(new Impl::CounterCell{name, {}});
  return im.counters.back()->value;
}

std::size_t Registry::event_count() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::size_t n = 0;
  for (const auto& b : im.buffers) n += b->events().size();
  return n;
}

Snapshot Registry::snapshot() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  Snapshot snap;
  snap.threads.reserve(im.buffers.size());
  for (const auto& b : im.buffers) {
    Snapshot::ThreadData td;
    td.tid = b->tid();
    td.events = b->events();
    td.wait = b->wait_stats();
    for (std::size_t h = 0; h < td.hists.size(); ++h)
      td.hists[h] = b->hist(static_cast<Hist>(h));
    snap.total_wait.merge(td.wait);
    for (std::size_t h = 0; h < snap.merged.size(); ++h)
      snap.merged[h].merge(td.hists[h]);
    snap.threads.push_back(std::move(td));
  }
  for (const auto& c : im.counters) {
    // Cells persist across reset() (handed-out references must stay
    // valid), so a zero value is indistinguishable from "never
    // touched" — omit it rather than export stale names.
    const std::int64_t v = c->value.load(std::memory_order_relaxed);
    if (v != 0) snap.counters.emplace_back(c->name, v);
  }
  std::sort(snap.counters.begin(), snap.counters.end());
  return snap;
}

Snapshot Registry::flight_snapshot() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  Snapshot snap;
  snap.threads.reserve(im.buffers.size());
  for (const auto& b : im.buffers) {
    Snapshot::ThreadData td;
    td.tid = b->tid();
    b->flight().snapshot(td.events);
    if (!td.events.empty()) snap.threads.push_back(std::move(td));
  }
  for (const auto& c : im.counters) {
    const std::int64_t v = c->value.load(std::memory_order_relaxed);
    if (v != 0) snap.counters.emplace_back(c->name, v);
  }
  std::sort(snap.counters.begin(), snap.counters.end());
  return snap;
}

std::uint64_t Registry::flight_pushes() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::uint64_t n = 0;
  for (const auto& b : im.buffers) n += b->flight().pushes();
  return n;
}

void Registry::reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (const auto& b : im.buffers) b->clear();
  for (const auto& c : im.counters)
    c->value.store(0, std::memory_order_relaxed);
}

}  // namespace fbmpk::telemetry
