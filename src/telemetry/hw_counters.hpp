// Linux perf_event_open hardware-counter backend — the runtime analogue
// of the paper's LIKWID DRAM measurements (Fig 9).
//
// Opens a best-effort set of counters and degrades gracefully: every
// event that the kernel refuses (restricted perf_event_paranoid, no PMU
// in a VM, missing uncore driver) is simply marked unavailable, with
// the reason collected into HwAvailability::detail. Nothing here ever
// throws for a missing counter; callers branch on available().
//
// Counter set, in decreasing order of fidelity for traffic validation:
//  - uncore IMC CAS_COUNT.RD/WR (socket-wide DRAM traffic, the LIKWID
//    MEM group). Needs CAP_PERFMON or perf_event_paranoid <= 0; counts
//    the whole socket, so measure on a quiet machine.
//  - LLC misses (per-process, inherited by threads spawned after
//    open): miss count x 64B is a read-traffic proxy that ignores
//    write-backs and prefetches — flagged as indirect.
//  - cycles / instructions (per-process).
//  - task-clock (software event; openable even where the PMU is
//    restricted — proves the plumbing end-to-end in CI).
//
// docs/OBSERVABILITY.md covers permissions and caveats.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fbmpk::telemetry {

/// Deltas read by HwCounterGroup::stop(). -1 means the underlying
/// counter was unavailable (distinct from a measured 0).
struct HwCounts {
  std::int64_t cycles = -1;
  std::int64_t instructions = -1;
  std::int64_t llc_misses = -1;
  std::int64_t dram_read_bytes = -1;   ///< uncore IMC CAS reads
  std::int64_t dram_write_bytes = -1;  ///< uncore IMC CAS writes
  std::int64_t task_clock_ns = -1;     ///< software fallback event
  /// True when dram_*_bytes come from IMC CAS counters; false when the
  /// only traffic signal is the LLC-miss proxy.
  bool dram_direct = false;

  /// Best available DRAM-traffic estimate in bytes, or -1 when no
  /// traffic-capable counter was open. Indirect (LLC-miss x line)
  /// estimates are returned too — check dram_direct for fidelity.
  std::int64_t memory_bytes() const;
};

/// Which counters opened, and why the missing ones did not.
struct HwAvailability {
  bool cycles = false;
  bool instructions = false;
  bool llc_misses = false;
  bool dram = false;        ///< uncore IMC CAS read+write pairs
  bool task_clock = false;
  std::string detail;       ///< human-readable per-event outcomes

  /// At least one counter (of any kind) is live.
  bool any() const {
    return cycles || instructions || llc_misses || dram || task_clock;
  }
  /// At least one traffic-capable counter (IMC or LLC proxy) is live.
  bool traffic() const { return dram || llc_misses; }
};

/// A set of perf counters measured together around a region:
///
///   HwCounterGroup hw;            // opens what it can
///   if (hw.available()) { hw.start(); run(); auto c = hw.stop(); }
///
/// Counts are multiplex-scaled (time_enabled/time_running). The group
/// is movable, not copyable; destruction closes every fd.
class HwCounterGroup {
 public:
  HwCounterGroup();
  ~HwCounterGroup();
  HwCounterGroup(HwCounterGroup&& o) noexcept;
  HwCounterGroup& operator=(HwCounterGroup&& o) noexcept;
  HwCounterGroup(const HwCounterGroup&) = delete;
  HwCounterGroup& operator=(const HwCounterGroup&) = delete;

  const HwAvailability& availability() const { return avail_; }
  bool available() const { return avail_.any(); }

  /// Reset and enable every open counter.
  void start();
  /// Disable counters and return the deltas since start().
  HwCounts stop();

 private:
  struct Fd {
    int fd = -1;
    double scale = 1.0;     ///< sysfs event scale (unit conversion)
    int slot = 0;           ///< which HwCounts field this feeds
  };
  std::vector<Fd> fds_;
  HwAvailability avail_;
};

/// Relative deviation of a measured byte count from the model:
/// (measured - modeled) / modeled. Returns 0 when modeled is 0.
double traffic_deviation(double measured_bytes, double modeled_bytes);

}  // namespace fbmpk::telemetry
