// Minimal embedded metrics endpoint (docs/OBSERVABILITY.md).
//
// One listener thread, poll + accept, one text/plain response per
// connection rendered on demand by the caller-supplied Renderer. This
// is deliberately NOT a general HTTP server: every connection gets the
// current exposition regardless of method or path, headers are read
// best-effort and discarded, connections close after one response.
// That is all a Prometheus scraper needs, and the ~100 lines keep the
// serving process free of any networking dependency.
//
// Failure contract (docs/SERVICE.md anomaly triggers): start() returns
// a typed kIo Status on socket/bind/listen failure — the caller logs a
// warning and keeps serving; exposition is an observer, never a
// dependency. stop() is idempotent and joins the listener thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "support/error.hpp"

namespace fbmpk::telemetry {

class MetricsHttpServer {
 public:
  /// Produces the exposition body for one scrape. Called on the
  /// listener thread; must be thread-safe and must not throw (a throw
  /// is swallowed into an empty body).
  using Renderer = std::function<std::string()>;

  MetricsHttpServer() = default;
  ~MetricsHttpServer() { stop(); }
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Bind 0.0.0.0:`port` (0 = ephemeral; see port() for the result)
  /// and start the listener thread. Typed kIo on any socket failure,
  /// kInternal when already running.
  Status start(int port, Renderer render);

  /// Stop the listener and close the socket. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (resolves port 0), or -1 when not running.
  int port() const { return port_; }
  /// Connections served (tests + liveness probes).
  std::uint64_t scrapes() const {
    return scrapes_.load(std::memory_order_relaxed);
  }

 private:
  void loop();

  Renderer render_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> scrapes_{0};
  int listen_fd_ = -1;
  int port_ = -1;
};

}  // namespace fbmpk::telemetry
