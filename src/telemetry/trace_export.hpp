// Structured telemetry export (docs/OBSERVABILITY.md):
//
//  - Chrome-trace JSON ("traceEvents"): every recorded span as a
//    complete ("X") event with its category, per-thread tracks and
//    named threads. Loads directly in Perfetto (ui.perfetto.dev) and
//    chrome://tracing.
//  - Versioned metrics object ("fbmpkMetrics", kMetricsSchemaVersion):
//    counters, merged + per-thread histograms, engine wait statistics,
//    hardware-counter readings and the measured-vs-modeled traffic
//    comparison. Both live in ONE file — Perfetto ignores unknown
//    top-level keys — so a trace is always self-describing.
//
// All writers return Status instead of throwing: a telemetry export
// must never take down the run it observed. File export is atomic
// (write to "<path>.tmp", rename into place), so an injected I/O fault
// can never leave a truncated trace under the requested name —
// tests/test_telemetry.cpp drives this with fault-injection streams.
#pragma once

#include <iosfwd>
#include <string>

#include "support/error.hpp"
#include "telemetry/hw_counters.hpp"
#include "telemetry/telemetry.hpp"

namespace fbmpk::telemetry {

/// Version of the "fbmpkMetrics" object. Bump on any key change and
/// record the delta in docs/OBSERVABILITY.md. v2: the serving layer's
/// "service.*" counter namespace (cache hit/miss/evict, admission,
/// degradation-ladder transitions — docs/SERVICE.md) is part of the
/// counter contract whenever an MpkService ran with telemetry on.
/// v3: the request coalescer's "service.batch_width" histogram (widths,
/// not nanoseconds) and "service.batch_coalesced" counter join the
/// contract when batching is enabled (max_batch > 1).
/// v4: the autotune oracle's "autotune.candidates_pruned" counter and
/// the "plan.oracle_predicted_bytes" / "service.plan_build_ns" gauges
/// (docs/AUTOTUNING.md) join the contract when build_autotuned_plan or
/// a plan-cache miss ran with telemetry on.
/// v5: the level scheduler (docs/PARALLELISM.md): the "plan.scheduler"
/// gauge (0 = abmc, 1 = levels) on every parallel build and the
/// "autotune.scheduler_pick" counter whenever the ABMC-vs-levels race
/// ran (Scheduler::kAuto under build_autotuned_plan).
/// v6: per-request trace context (docs/OBSERVABILITY.md): the "req"
/// span argument on serving-layer spans, flow events ("s"/"t"/"f")
/// stitching every request's spans across threads, the
/// "service.request_latency_ns" histogram on every completed request
/// and the "telemetry.flight_dump" counter when an anomaly dump fired.
inline constexpr int kMetricsSchemaVersion = 6;

/// Measured-vs-modeled traffic comparison attached to a trace — the
/// runtime analogue of the paper's Fig 9 columns.
struct TrafficReport {
  std::string model = "fbmpk_traffic_mixed";  ///< analytic model used
  double modeled_bytes = 0.0;    ///< model prediction for the region
  double measured_bytes = -1.0;  ///< hw reading; < 0 when unavailable
  bool measured_direct = false;  ///< IMC CAS (true) vs LLC-miss proxy
  int k = 0;                     ///< power count of the measured region
  int runs = 1;                  ///< repetitions inside the region

  bool measured() const { return measured_bytes >= 0.0; }
  double deviation() const {
    return measured() ? traffic_deviation(measured_bytes, modeled_bytes)
                      : 0.0;
  }
};

/// Optional sections of an export.
struct ExportMeta {
  bool has_hw = false;
  HwAvailability hw_avail;
  HwCounts hw;
  bool has_traffic = false;
  TrafficReport traffic;
};

/// Serialize `snap` (+ meta) as Chrome-trace JSON with the embedded
/// metrics object. Returns kIo when the stream enters a failed state.
Status write_trace(std::ostream& os, const Snapshot& snap,
                   const ExportMeta& meta = {});

/// Atomic file export: writes "<path>.tmp" and renames it into place
/// on success. On any failure the tmp file is removed, `path` is left
/// untouched (an existing file there survives intact), and a typed
/// kIo Status is returned. Never throws.
Status export_trace_file(const std::string& path, const Snapshot& snap,
                         const ExportMeta& meta = {});

}  // namespace fbmpk::telemetry
