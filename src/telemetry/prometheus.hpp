// Prometheus text-format exposition (docs/OBSERVABILITY.md).
//
// Serializes metric families into the Prometheus text format
// (version 0.0.4): "# HELP" / "# TYPE" headers plus one sample line
// per (suffix, labels) pair. Producers build PromFamily vectors —
// append_registry_families() covers the telemetry registry's counters
// and merged histograms; the service layer adds its sliding-window
// families (src/service/metrics_window.hpp) — and either the embedded
// HTTP listener (metrics_http.hpp) or the textfile writer ships them.
//
// Like the trace export, every writer returns Status instead of
// throwing, and the textfile path is atomic (tmp + rename) so a
// node_exporter collector never reads a torn file.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "support/error.hpp"
#include "telemetry/telemetry.hpp"

namespace fbmpk::telemetry {

/// One sample line: `<family.name><suffix>{<labels>} <value>`.
struct PromSample {
  std::string suffix;  ///< e.g. "", "_bucket", "_sum", "_count"
  std::string labels;  ///< pre-rendered `k="v",k2="v2"`, no braces
  double value = 0.0;
};

struct PromFamily {
  std::string name;  ///< full metric name, already sanitized
  std::string help;
  std::string type = "gauge";  ///< counter|gauge|histogram|summary|untyped
  std::vector<PromSample> samples;
};

/// Map an internal dotted name onto the Prometheus charset
/// ([a-zA-Z_:][a-zA-Z0-9_:]*): dots and other invalid characters
/// become underscores, a leading digit gains one.
std::string prom_sanitize(const std::string& raw);

/// Render `families` in exposition text format. Returns a typed kIo
/// Status when the stream enters a failed state; never throws.
Status prometheus_render(std::ostream& os,
                         const std::vector<PromFamily>& families);
/// Convenience string form (string streams cannot fail).
std::string prometheus_render(const std::vector<PromFamily>& families);

/// Families for a registry snapshot: every counter/gauge cell as an
/// untyped `fbmpk_<name>` sample, every non-empty merged histogram as
/// a histogram family (nanosecond kinds scaled to seconds).
void append_registry_families(const Snapshot& snap,
                              std::vector<PromFamily>& out);

/// One log2 histogram as a Prometheus histogram family: cumulative
/// `le` buckets at the octave upper bounds (scaled by `scale`, e.g.
/// 1e-9 for ns→s), plus _sum and _count.
PromFamily histogram_family(std::string name, std::string help,
                            const Histogram& h, double scale);

/// Atomic textfile exposition for node_exporter's textfile collector:
/// write "<path>.tmp", rename into place. Typed kIo on any failure,
/// tmp removed, an existing file at `path` left intact. Never throws.
Status write_textfile_atomic(const std::string& path,
                             const std::string& body);

}  // namespace fbmpk::telemetry
