#include "telemetry/prometheus.hpp"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

namespace fbmpk::telemetry {

namespace {

/// Prometheus sample values are plain decimals; non-finite values have
/// spelled-out forms (unlike JSON, which nulls them).
std::string prom_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

bool valid_name_char(char c, bool first) {
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':')
    return true;
  return !first && std::isdigit(static_cast<unsigned char>(c));
}

/// Escape a HELP string: backslash and newline per the format spec.
std::string escape_help(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\')
      out += "\\\\";
    else if (c == '\n')
      out += "\\n";
    else
      out += c;
  }
  return out;
}

}  // namespace

std::string prom_sanitize(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 1);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const char c = raw[i];
    out += valid_name_char(c, out.empty()) ? c : '_';
  }
  if (out.empty()) out.push_back('_');
  return out;
}

Status prometheus_render(std::ostream& os,
                         const std::vector<PromFamily>& families) {
  for (const PromFamily& f : families) {
    if (f.samples.empty()) continue;
    if (!f.help.empty())
      os << "# HELP " << f.name << " " << escape_help(f.help) << "\n";
    os << "# TYPE " << f.name << " " << f.type << "\n";
    for (const PromSample& s : f.samples) {
      os << f.name << s.suffix;
      if (!s.labels.empty()) os << "{" << s.labels << "}";
      os << " " << prom_value(s.value) << "\n";
    }
  }
  os.flush();
  if (!os.good())
    return Status(FBMPK_MAKE_ERROR(
        ErrorCode::kIo, "prometheus exposition stream failed while writing"));
  return Status();
}

std::string prometheus_render(const std::vector<PromFamily>& families) {
  std::ostringstream os;
  (void)prometheus_render(os, families);
  return os.str();
}

PromFamily histogram_family(std::string name, std::string help,
                            const Histogram& h, double scale) {
  PromFamily f;
  f.name = std::move(name);
  f.help = std::move(help);
  f.type = "histogram";
  std::uint64_t cum = 0;
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    const std::uint64_t n = h.buckets[static_cast<std::size_t>(b)];
    if (n == 0) continue;
    cum += n;
    // Upper bound of octave b is 2^(b+1); compute in double to survive
    // b = 63.
    const double le =
        static_cast<double>(std::uint64_t{1} << b) * 2.0 * scale;
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.10g", le);
    f.samples.push_back({"_bucket", "le=\"" + std::string(buf) + "\"",
                         static_cast<double>(cum)});
  }
  f.samples.push_back(
      {"_bucket", "le=\"+Inf\"", static_cast<double>(h.count)});
  f.samples.push_back({"_sum", "", static_cast<double>(h.sum_ns) * scale});
  f.samples.push_back({"_count", "", static_cast<double>(h.count)});
  return f;
}

void append_registry_families(const Snapshot& snap,
                              std::vector<PromFamily>& out) {
  for (const auto& [name, value] : snap.counters) {
    PromFamily f;
    f.name = "fbmpk_" + prom_sanitize(name);
    f.help = "Registry cell " + name;
    // The registry cell table mixes monotonic counters and last-write
    // gauges; untyped is the honest exposition type for both.
    f.type = "untyped";
    f.samples.push_back({"", "", static_cast<double>(value)});
    out.push_back(std::move(f));
  }
  for (std::size_t i = 0; i < snap.merged.size(); ++i) {
    const Histogram& h = snap.merged[i];
    if (h.count == 0) continue;
    const Hist kind = static_cast<Hist>(i);
    const std::string raw = hist_name(kind);
    // Nanosecond kinds export in seconds; value kinds (batch width)
    // export unscaled.
    const bool is_ns = raw.size() > 3 && raw.rfind("_ns") == raw.size() - 3;
    std::string name =
        "fbmpk_" + prom_sanitize(is_ns ? raw.substr(0, raw.size() - 3) +
                                             "_seconds"
                                       : raw);
    out.push_back(histogram_family(std::move(name),
                                   "Merged registry histogram " + raw, h,
                                   is_ns ? 1e-9 : 1.0));
  }
}

Status write_textfile_atomic(const std::string& path,
                             const std::string& body) {
  if (path.empty())
    return Status(FBMPK_MAKE_ERROR(ErrorCode::kIo,
                                   "metrics textfile path is empty"));
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open())
      return Status(FBMPK_MAKE_ERROR(
          ErrorCode::kIo, "cannot open metrics textfile " << tmp));
    out << body;
    out.close();
    if (out.fail()) {
      std::remove(tmp.c_str());
      return Status(FBMPK_MAKE_ERROR(
          ErrorCode::kIo, "metrics textfile truncated: " << tmp));
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status(FBMPK_MAKE_ERROR(
        ErrorCode::kIo, "cannot move metrics textfile into place: " << path));
  }
  return Status();
}

}  // namespace fbmpk::telemetry
