#include "telemetry/hw_counters.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <dirent.h>
#include <fcntl.h>
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace fbmpk::telemetry {

namespace {

// HwCounts slot indices (keep in sync with apply_count below).
enum Slot {
  kCycles = 0,
  kInstructions,
  kLlcMisses,
  kDramRead,
  kDramWrite,
  kTaskClock,
};

void apply_count(HwCounts& c, int slot, std::int64_t v) {
  switch (slot) {
    case kCycles: c.cycles = (c.cycles < 0 ? 0 : c.cycles) + v; break;
    case kInstructions:
      c.instructions = (c.instructions < 0 ? 0 : c.instructions) + v;
      break;
    case kLlcMisses:
      c.llc_misses = (c.llc_misses < 0 ? 0 : c.llc_misses) + v;
      break;
    case kDramRead:
      c.dram_read_bytes = (c.dram_read_bytes < 0 ? 0 : c.dram_read_bytes) + v;
      break;
    case kDramWrite:
      c.dram_write_bytes =
          (c.dram_write_bytes < 0 ? 0 : c.dram_write_bytes) + v;
      break;
    case kTaskClock:
      c.task_clock_ns = (c.task_clock_ns < 0 ? 0 : c.task_clock_ns) + v;
      break;
    default: break;
  }
}

}  // namespace

std::int64_t HwCounts::memory_bytes() const {
  if (dram_read_bytes >= 0 || dram_write_bytes >= 0) {
    const std::int64_t rd = dram_read_bytes < 0 ? 0 : dram_read_bytes;
    const std::int64_t wr = dram_write_bytes < 0 ? 0 : dram_write_bytes;
    return rd + wr;
  }
  if (llc_misses >= 0) return llc_misses * 64;
  return -1;
}

double traffic_deviation(double measured_bytes, double modeled_bytes) {
  if (modeled_bytes == 0.0) return 0.0;
  return (measured_bytes - modeled_bytes) / modeled_bytes;
}

#if defined(__linux__)

namespace {

int perf_open(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
              unsigned long flags) {
  return static_cast<int>(
      syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags));
}

/// Read a small sysfs file into a string (empty on failure).
std::string read_sysfs(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "re");
  if (f == nullptr) return {};
  char buf[256];
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  std::string s(buf);
  while (!s.empty() && (s.back() == '\n' || s.back() == ' ')) s.pop_back();
  return s;
}

/// Parse an uncore event spec like "event=0x04,umask=0x03" into the
/// standard x86 raw-config layout (event | umask << 8). Returns false
/// on anything it does not understand — better to drop DRAM counters
/// than to program a wrong event.
bool parse_event_spec(const std::string& spec, std::uint64_t& config) {
  config = 0;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string field = spec.substr(pos, comma - pos);
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = field.substr(0, eq);
    const unsigned long long val =
        std::strtoull(field.c_str() + eq + 1, nullptr, 0);
    if (key == "event")
      config |= val & 0xffULL;
    else if (key == "umask")
      config |= (val & 0xffULL) << 8;
    else
      return false;  // cmask/edge/... — unexpected for CAS counts
    pos = comma + 1;
  }
  return true;
}

/// Multiplex-scaled counter value: raw * enabled / running.
std::int64_t scaled_read(int fd) {
  struct {
    std::uint64_t value;
    std::uint64_t time_enabled;
    std::uint64_t time_running;
  } data{};
  if (read(fd, &data, sizeof(data)) != sizeof(data)) return 0;
  if (data.time_running == 0) return 0;
  const double scale = static_cast<double>(data.time_enabled) /
                       static_cast<double>(data.time_running);
  return static_cast<std::int64_t>(static_cast<double>(data.value) * scale);
}

perf_event_attr base_attr(std::uint32_t type, std::uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;  // restricted perf_event_paranoid allows this
  attr.exclude_hv = 1;
  attr.inherit = 1;  // count threads spawned after open
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  return attr;
}

}  // namespace

HwCounterGroup::HwCounterGroup() {
  std::string& detail = avail_.detail;
  const auto note = [&detail](const char* what, const char* outcome) {
    detail += what;
    detail += ": ";
    detail += outcome;
    detail += "; ";
  };

  // Per-process core counters. `inherit` cannot cover threads that
  // already exist, so callers should construct the group before the
  // first parallel region of the measured workload (the benches do).
  struct CoreEvent {
    const char* label;
    std::uint32_t type;
    std::uint64_t config;
    int slot;
    bool* flag;
  };
  const CoreEvent core_events[] = {
      {"cycles", PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, kCycles,
       &avail_.cycles},
      {"instructions", PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS,
       kInstructions, &avail_.instructions},
      {"llc_misses", PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES,
       kLlcMisses, &avail_.llc_misses},
      {"task_clock", PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK,
       kTaskClock, &avail_.task_clock},
  };
  for (const CoreEvent& ev : core_events) {
    perf_event_attr attr = base_attr(ev.type, ev.config);
    const int fd = perf_open(&attr, /*pid=*/0, /*cpu=*/-1, -1, 0);
    if (fd >= 0) {
      fds_.push_back({fd, 1.0, ev.slot});
      *ev.flag = true;
      note(ev.label, "ok");
    } else {
      note(ev.label, std::strerror(errno));
    }
  }

  // Socket-wide DRAM traffic through the uncore IMC PMUs (one device
  // per memory controller). System-wide counters: pid=-1, cpu=0 —
  // needs CAP_PERFMON / perf_event_paranoid <= 0.
  const char* base = "/sys/bus/event_source/devices";
  DIR* dir = opendir(base);
  bool imc_seen = false;
  int imc_read_ok = 0, imc_write_ok = 0;
  if (dir != nullptr) {
    while (dirent* de = readdir(dir)) {
      const std::string name = de->d_name;
      if (name.rfind("uncore_imc", 0) != 0) continue;
      imc_seen = true;
      const std::string dev = std::string(base) + "/" + name;
      const std::string type_s = read_sysfs(dev + "/type");
      if (type_s.empty()) continue;
      const auto pmu_type =
          static_cast<std::uint32_t>(std::strtoul(type_s.c_str(), nullptr, 10));
      const struct {
        const char* event;
        int slot;
        int* ok;
      } cas[] = {{"cas_count_read", kDramRead, &imc_read_ok},
                 {"cas_count_write", kDramWrite, &imc_write_ok}};
      for (const auto& c : cas) {
        const std::string spec = read_sysfs(dev + "/events/" + c.event);
        std::uint64_t config = 0;
        if (spec.empty() || !parse_event_spec(spec, config)) continue;
        // Event scale/unit: CAS counts tick per 64B transfer; the
        // sysfs scale converts ticks to the advertised unit.
        double to_bytes = 64.0;
        const std::string scale_s =
            read_sysfs(dev + "/events/" + c.event + ".scale");
        const std::string unit_s =
            read_sysfs(dev + "/events/" + c.event + ".unit");
        if (!scale_s.empty()) {
          const double scale = std::strtod(scale_s.c_str(), nullptr);
          if (scale > 0.0)
            to_bytes = scale * (unit_s == "MiB"   ? 1024.0 * 1024.0
                                : unit_s == "GiB" ? 1024.0 * 1024.0 * 1024.0
                                                  : 1.0);
        }
        perf_event_attr attr = base_attr(pmu_type, config);
        attr.inherit = 0;  // system-wide counters cannot inherit
        attr.exclude_kernel = 0;
        attr.exclude_hv = 0;
        const int fd = perf_open(&attr, /*pid=*/-1, /*cpu=*/0, -1, 0);
        if (fd >= 0) {
          fds_.push_back({fd, to_bytes, c.slot});
          ++*c.ok;
        }
      }
    }
    closedir(dir);
  }
  if (imc_read_ok > 0 && imc_write_ok > 0) {
    avail_.dram = true;
    note("dram_imc", "ok");
  } else if (imc_seen) {
    note("dram_imc", "present but unopenable (needs CAP_PERFMON / "
                     "perf_event_paranoid<=0)");
  } else {
    note("dram_imc", "no uncore_imc PMU");
  }
}

HwCounterGroup::~HwCounterGroup() {
  for (const Fd& f : fds_)
    if (f.fd >= 0) close(f.fd);
}

HwCounterGroup::HwCounterGroup(HwCounterGroup&& o) noexcept
    : fds_(std::move(o.fds_)), avail_(std::move(o.avail_)) {
  o.fds_.clear();
}

HwCounterGroup& HwCounterGroup::operator=(HwCounterGroup&& o) noexcept {
  if (this != &o) {
    for (const Fd& f : fds_)
      if (f.fd >= 0) close(f.fd);
    fds_ = std::move(o.fds_);
    avail_ = std::move(o.avail_);
    o.fds_.clear();
  }
  return *this;
}

void HwCounterGroup::start() {
  for (const Fd& f : fds_) {
    ioctl(f.fd, PERF_EVENT_IOC_RESET, 0);
    ioctl(f.fd, PERF_EVENT_IOC_ENABLE, 0);
  }
}

HwCounts HwCounterGroup::stop() {
  HwCounts counts;
  for (const Fd& f : fds_) ioctl(f.fd, PERF_EVENT_IOC_DISABLE, 0);
  for (const Fd& f : fds_) {
    const std::int64_t raw = scaled_read(f.fd);
    const std::int64_t v =
        f.slot == kDramRead || f.slot == kDramWrite
            ? static_cast<std::int64_t>(static_cast<double>(raw) * f.scale)
            : raw;
    apply_count(counts, f.slot, v);
  }
  counts.dram_direct = avail_.dram;
  return counts;
}

#else  // !__linux__

HwCounterGroup::HwCounterGroup() {
  avail_.detail = "perf_event_open unavailable on this platform";
}
HwCounterGroup::~HwCounterGroup() = default;
HwCounterGroup::HwCounterGroup(HwCounterGroup&&) noexcept = default;
HwCounterGroup& HwCounterGroup::operator=(HwCounterGroup&&) noexcept =
    default;
void HwCounterGroup::start() {}
HwCounts HwCounterGroup::stop() { return {}; }

#endif  // __linux__

}  // namespace fbmpk::telemetry
