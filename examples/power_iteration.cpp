// Power iteration with blocked matrix powers — the eigenvalue-problem
// use case that motivates MPK in the paper (§I, §II-B).
//
// Classic power iteration performs one SpMV per step. With FBMPK we
// advance s steps at a time (y = A^s x), normalizing every s steps —
// numerically fine as long as A^s x does not overflow, and each block
// of s steps streams the matrix only (s+1)/2 times.
//
//   ./power_iteration [s] [matrix-name]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/fbmpk.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

using namespace fbmpk;

namespace {

double norm2(std::span<const double> v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

void normalize(std::span<double> v) {
  const double n = norm2(v);
  for (auto& x : v) x /= n;
}

// Rayleigh quotient x^T A x for unit x.
double rayleigh(const CsrMatrix<double>& a, std::span<const double> x,
                std::span<double> scratch) {
  spmv<double>(a, x, scratch);
  double dot = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) dot += x[i] * scratch[i];
  return dot;
}

}  // namespace

int main(int argc, char** argv) {
  const int s = argc > 1 ? std::atoi(argv[1]) : 6;
  const std::string name = argc > 2 ? argv[2] : "pwtk";

  const auto m = gen::make_suite_matrix(name, 0.3);
  const auto& a = m.matrix;
  const index_t n = a.rows();
  std::printf("matrix %s: %d rows, %d nnz\n", name.c_str(), n, a.nnz());

  MpkPlan plan = MpkPlan::build(a);
  Rng rng(7);
  AlignedVector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);
  normalize(x);
  AlignedVector<double> y(static_cast<std::size_t>(n));
  AlignedVector<double> scratch(static_cast<std::size_t>(n));

  // FBMPK-accelerated power iteration.
  Timer t_fb;
  double lambda_fb = 0.0;
  int steps_fb = 0;
  for (int iter = 0; iter < 40; ++iter) {
    plan.power(x, s, y);
    normalize(y);
    std::swap(x, y);
    steps_fb += s;
    const double lambda = rayleigh(a, x, scratch);
    if (std::abs(lambda - lambda_fb) < 1e-9 * std::abs(lambda)) {
      lambda_fb = lambda;
      break;
    }
    lambda_fb = lambda;
  }
  const double fb_ms = t_fb.milliseconds();

  // Classic one-SpMV-per-step power iteration for reference.
  for (auto& v : x) v = 0.0;
  Rng rng2(7);
  for (auto& v : x) v = rng2.next_double(-1.0, 1.0);
  normalize(x);
  Timer t_base;
  double lambda_base = 0.0;
  int steps_base = 0;
  for (int iter = 0; iter < 40 * s; ++iter) {
    spmv<double>(a, x, y);
    normalize(y);
    std::swap(x, y);
    ++steps_base;
    if (iter % s == s - 1) {
      const double lambda = rayleigh(a, x, scratch);
      if (std::abs(lambda - lambda_base) < 1e-9 * std::abs(lambda)) {
        lambda_base = lambda;
        break;
      }
      lambda_base = lambda;
    }
  }
  const double base_ms = t_base.milliseconds();

  std::printf("FBMPK   blocks of s=%d: lambda = %.8f  (%d steps, %.1f ms)\n",
              s, lambda_fb, steps_fb, fb_ms);
  std::printf("classic single SpMV:   lambda = %.8f  (%d steps, %.1f ms)\n",
              lambda_base, steps_base, base_ms);

  const double rel = std::abs(lambda_fb - lambda_base) /
                     std::max(1.0, std::abs(lambda_base));
  std::printf("relative eigenvalue difference: %.2e\n", rel);
  return rel < 1e-6 ? 0 : 1;
}
