// Chebyshev-filtered subspace iteration step — the eigensolver workload
// (EVSL, ChASE) that motivates SSpMV in the paper's introduction,
// driven by the three-term-recurrence FBMPK kernel.
//
// A degree-m Chebyshev filter p_m(A) damps every eigenvalue inside the
// "unwanted" interval [lo, cut] to |p_m| <= 1 while amplifying the
// wanted top of the spectrum exponentially in m. One filtered vector
// therefore isolates the dominant eigenvector far faster than m plain
// power iterations — and FBMPK evaluates the whole degree-m recurrence
// with ~(m+1)/2 matrix sweeps instead of m.
//
//   ./chebyshev_filter [degree] [matrix-name]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/fbmpk.hpp"
#include "kernels/fbmpk_recurrence.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

using namespace fbmpk;

namespace {

double norm2(std::span<const double> v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

// ||A v - rho v|| / |rho| for the normalized Rayleigh pair of v.
double eigen_residual(const CsrMatrix<double>& a, std::span<const double> v,
                      double* rho_out) {
  AlignedVector<double> av(v.size());
  spmv<double>(a, v, av);
  double vv = 0.0, vav = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    vv += v[i] * v[i];
    vav += v[i] * av[i];
  }
  const double rho = vav / vv;
  double rnorm = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double r = av[i] - rho * v[i];
    rnorm += r * r;
  }
  if (rho_out != nullptr) *rho_out = rho;
  return std::sqrt(rnorm) / (std::abs(rho) * std::sqrt(vv));
}

}  // namespace

int main(int argc, char** argv) {
  const int degree = argc > 1 ? std::atoi(argv[1]) : 14;
  const std::string name = argc > 2 ? argv[2] : "Hook_1498";

  const auto m = gen::make_suite_matrix(name, 0.2);
  const auto& a = m.matrix;
  const index_t n = a.rows();
  std::printf("matrix %s: %d rows, %d nnz\n", name.c_str(), n, a.nnz());

  // Gershgorin bounds on the spectrum.
  double hi = -1e300, lo = 1e300;
  for (index_t i = 0; i < n; ++i) {
    double center = 0.0, radius = 0.0;
    for (index_t e = a.row_ptr()[i]; e < a.row_ptr()[i + 1]; ++e) {
      if (a.col_idx()[e] == i)
        center = a.values()[e];
      else
        radius += std::abs(a.values()[e]);
    }
    hi = std::max(hi, center + radius);
    lo = std::min(lo, center - radius);
  }
  // Gershgorin's upper bound overshoots lambda_max, so anchor the
  // filter window to a cheap power-iteration estimate instead (the
  // standard ChASE bootstrap).
  Rng est_rng(7);
  AlignedVector<double> est(static_cast<std::size_t>(n));
  for (auto& v : est) v = est_rng.next_double(-1.0, 1.0);
  AlignedVector<double> est_next(static_cast<std::size_t>(n));
  double lambda_est = 0.0;
  for (int it = 0; it < 10; ++it) {
    spmv<double>(a, est, est_next);
    lambda_est = norm2(est_next) / norm2(est);
    const double nn = norm2(est_next);
    for (index_t i = 0; i < n; ++i) est[i] = est_next[i] / nn;
  }
  // Damp everything below ~95% of the estimated top.
  const double cut = lo + 0.95 * (lambda_est - lo);
  std::printf("Gershgorin interval [%.3f, %.3f]; lambda_max estimate "
              "%.3f; filtering [%.3f, %.3f]\n",
              lo, hi, lambda_est, lo, cut);

  // T_p of B = (2A - (cut+lo) I) / (cut-lo): |T_p| <= 1 on [lo, cut],
  // exponential growth above it.
  const double sa = 2.0 / (cut - lo);
  const double sb = -(cut + lo) / (cut - lo);
  std::vector<RecurrenceStep<double>> steps;
  steps.push_back({sa, sb, 0.0});
  for (int p = 2; p <= degree; ++p) steps.push_back({2 * sa, 2 * sb, -1.0});

  const auto s = split_triangular(a);
  Rng rng(31);
  AlignedVector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);
  const double xn = norm2(x);
  for (auto& v : x) v /= xn;

  // One Chebyshev filter application via recurrence-FBMPK.
  AlignedVector<double> filtered(static_cast<std::size_t>(n));
  FbWorkspace<double> ws;
  Timer t_filter;
  fbmpk_recurrence<double>(
      s, std::span<const RecurrenceStep<double>>(steps), x, filtered, ws);
  const double filter_ms = t_filter.milliseconds();

  double rho_f = 0.0;
  const double res_f = eigen_residual(a, filtered, &rho_f);

  // Same matrix-sweep budget of plain power iterations for reference.
  AlignedVector<double> y(static_cast<std::size_t>(n));
  AlignedVector<double> p = x;
  Timer t_power;
  for (int it = 0; it < degree; ++it) {
    spmv<double>(a, p, y);
    const double yn = norm2(y);
    for (index_t i = 0; i < n; ++i) p[i] = y[i] / yn;
  }
  const double power_ms = t_power.milliseconds();
  double rho_p = 0.0;
  const double res_p = eigen_residual(a, p, &rho_p);

  std::printf("\nChebyshev filter (degree %d, one FBMPK recurrence pass):\n"
              "  rho = %.6f, eigen-residual %.3e, %.1f ms\n",
              degree, rho_f, res_f, filter_ms);
  std::printf("power iteration (%d SpMV steps):\n"
              "  rho = %.6f, eigen-residual %.3e, %.1f ms\n",
              degree, rho_p, res_p, power_ms);
  std::printf("\nfilter residual is %.1fx smaller at the same sweep budget\n",
              res_p / res_f);
  return res_f < res_p ? 0 : 1;
}
