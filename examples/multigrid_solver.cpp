// Two-level multigrid vs preconditioned CG — the multigrid-method
// use case the paper cites as a home of MPK-style kernels (§I, §II-B),
// exercising the src/solvers layer end to end.
//
//   ./multigrid_solver [nx]
#include <cstdio>
#include <cstdlib>

#include "core/fbmpk.hpp"
#include "solvers/solvers.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

using namespace fbmpk;
using namespace fbmpk::solvers;

int main(int argc, char** argv) {
  const index_t nx = argc > 1 ? static_cast<index_t>(std::atoi(argv[1])) : 64;

  const auto a = gen::make_laplacian_2d(nx, nx, 5);
  const index_t n = a.rows();
  std::printf("2D 5-pt operator: %d rows, %d nnz\n", n, a.nnz());

  Rng rng(9);
  AlignedVector<double> x_star(static_cast<std::size_t>(n));
  for (auto& v : x_star) v = rng.next_double(-1.0, 1.0);
  AlignedVector<double> b(static_cast<std::size_t>(n));
  spmv<double>(a, x_star, b);

  SolveOptions opts;
  opts.tolerance = 1e-10;
  opts.max_iterations = 400;

  // Two-level multigrid.
  Timer t_build;
  const auto mg = TwoLevelMultigrid::build(a);
  const double build_ms = t_build.milliseconds();
  AlignedVector<double> x_mg(static_cast<std::size_t>(n), 0.0);
  Timer t_mg;
  const auto r_mg = mg.solve(b, x_mg, opts);
  std::printf("multigrid: coarse %d rows; %d V-cycles, rel res %.2e "
              "(%.1f ms solve, %.1f ms setup)\n",
              mg.coarse_rows(), r_mg.iterations, r_mg.relative_residual,
              t_mg.milliseconds(), build_ms);

  // Plain CG reference.
  AlignedVector<double> x_cg(static_cast<std::size_t>(n), 0.0);
  Timer t_cg;
  const auto r_cg = pcg(a, b, x_cg, identity_preconditioner(), opts);
  std::printf("plain CG:  %d iterations, rel res %.2e (%.1f ms)\n",
              r_cg.iterations, r_cg.relative_residual, t_cg.milliseconds());

  // Polynomial-preconditioned CG via the FBMPK plan.
  auto plan = MpkPlan::build(a);
  const auto [lo, hi] = gershgorin_interval(a);
  (void)lo;
  AlignedVector<double> x_poly(static_cast<std::size_t>(n), 0.0);
  Timer t_poly;
  const auto r_poly =
      pcg(a, b, x_poly, polynomial_preconditioner(plan, 4, 1.0 / hi), opts);
  std::printf("poly-PCG:  %d iterations, rel res %.2e (%.1f ms; degree-4 "
              "Richardson polynomial in one FBMPK pass per apply)\n",
              r_poly.iterations, r_poly.relative_residual,
              t_poly.milliseconds());

  double err = 0.0;
  for (index_t i = 0; i < n; ++i)
    err = std::max(err, std::abs(x_mg[i] - x_star[i]));
  std::printf("multigrid max error vs exact solution: %.2e\n", err);
  return (r_mg.converged && r_cg.converged && r_poly.converged &&
          err < 1e-6)
             ? 0
             : 1;
}
