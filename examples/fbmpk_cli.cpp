// fbmpk_cli — end-to-end command-line driver for the offline-
// preprocessing workflow the paper assumes (§IV-C): build a plan once,
// store it next to the matrix, reload and run it many times.
//
//   fbmpk_cli plan  --matrix=<src> --out=plan.bin [--blocks=512]
//                   [--autotune-k=5] [--backend=auto|scalar|avx2|avx512]
//                   [--index-compress] [--prefetch-dist=16]
//   fbmpk_cli info  --plan=plan.bin
//   fbmpk_cli power --plan=plan.bin --k=5 [--nvec=1] [--x=x.txt] [--out=y.txt]
//   fbmpk_cli poly  --plan=plan.bin --coeffs=1,0.5,0.25 [--x=...] [--out=...]
//
// Every command additionally accepts --telemetry=<file>[,hw]: enable the
// runtime telemetry registry, run the command, and export a Chrome-trace
// / Perfetto JSON (with the embedded fbmpkMetrics object) to <file>.
// ",hw" also samples hardware counters around the run and attaches the
// measured-vs-modeled traffic comparison (docs/OBSERVABILITY.md).
//
// <src> is either "suite:<name>[:scale]" or "file:<path.mtx>".
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/autotune.hpp"
#include "core/fbmpk.hpp"
#include "perf/traffic_model.hpp"
#include "service/metrics_window.hpp"
#include "service/service.hpp"
#include "sparse/vector_io.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/hw_counters.hpp"
#include "telemetry/metrics_http.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_export.hpp"

using namespace fbmpk;

namespace {

using Args = std::map<std::string, std::string>;

Args parse_flags(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    FBMPK_CHECK_MSG(arg.rfind("--", 0) == 0, "expected --flag, got " << arg);
    const auto eq = arg.find('=');
    // A bare "--flag" is a boolean switch: store "1".
    if (eq == std::string::npos)
      args.insert_or_assign(arg.substr(2), std::string("1"));
    else
      args.insert_or_assign(arg.substr(2, eq - 2), arg.substr(eq + 1));
  }
  return args;
}

std::string need(const Args& args, const std::string& key) {
  const auto it = args.find(key);
  FBMPK_CHECK_MSG(it != args.end(), "missing required --" << key << "=");
  return it->second;
}

std::string get(const Args& args, const std::string& key,
                const std::string& fallback) {
  const auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

// --telemetry=<file>[,hw] session: enables the registry before the
// command runs, optionally brackets it with hardware counters, and
// exports the trace afterwards. Export failures are reported as a
// nonzero exit but never throw (telemetry must not take down the run).
struct TelemetrySession {
  bool on = false;
  bool hw = false;
  std::string path;
  /// |measured-vs-modeled deviation| above this triggers a "deviation"
  /// flight dump at finish(); 0 disables the trigger.
  double flight_deviation = 0.0;
  std::unique_ptr<telemetry::HwCounterGroup> counters;
  telemetry::ExportMeta meta;

  void parse(const Args& args) {
    // --flight-dir arms the always-on flight recorder independently of
    // --telemetry: rings fill in memory, dumps land in <dir> on
    // anomalies (docs/OBSERVABILITY.md). Without a full --telemetry
    // session the registry runs in flight-only mode so a long-lived
    // serve never accumulates an unbounded event vector.
    const auto fit = args.find("flight-dir");
    if (fit != args.end()) {
      telemetry::FlightDumpOptions fopts;
      fopts.dir = fit->second;
      fopts.max_dumps = std::stoul(get(args, "flight-max", "8"));
      telemetry::arm_flight_dumps(fopts);
      telemetry::Registry::instance().set_enabled(true);
      if (args.find("telemetry") == args.end())
        telemetry::Registry::instance().set_trace_mode(
            telemetry::TraceMode::kFlightOnly);
    }
    flight_deviation = std::stod(get(args, "flight-deviation", "0"));

    const auto it = args.find("telemetry");
    if (it == args.end()) return;
    on = true;
    path = it->second;
    const auto comma = path.find(',');
    if (comma != std::string::npos) {
      const std::string opt = path.substr(comma + 1);
      FBMPK_CHECK_MSG(opt == "hw",
                      "--telemetry only knows the ,hw option, got ," << opt);
      hw = true;
      path = path.substr(0, comma);
    }
    FBMPK_CHECK_MSG(!path.empty(), "--telemetry needs a file path");
    telemetry::Registry::instance().set_enabled(true);
    if (hw) {
      counters = std::make_unique<telemetry::HwCounterGroup>();
      meta.has_hw = true;
      meta.hw_avail = counters->availability();
      if (!counters->available())
        std::fprintf(stderr, "telemetry: hardware counters unavailable (%s)\n",
                     meta.hw_avail.detail.c_str());
      else
        counters->start();
    }
  }

  /// Attach the analytic traffic prediction for an upcoming k-power run
  /// so the export can report measured-vs-modeled deviation.
  void expect_traffic(const MpkPlan& plan, int k, int nvec = 1) {
    if (!on) return;
    const auto& split = plan.split();
    perf::MatrixShape shape;
    shape.rows = plan.rows();
    shape.diag_entries = 0;
    for (double d : split.diag)
      if (d != 0.0) ++shape.diag_entries;
    shape.nnz = split.lower.nnz() + split.upper.nnz() + shape.diag_entries;
    const double col_bytes = plan.options().index_compress
                                 ? plan.packed_index().bytes_per_nnz()
                                 : static_cast<double>(sizeof(index_t));
    meta.has_traffic = true;
    meta.traffic.k = k;
    meta.traffic.runs = 1;
    meta.traffic.modeled_bytes = static_cast<double>(
        perf::fbmpk_traffic_mixed(shape, k, col_bytes,
                                  plan.options().value_precision, nvec)
            .total());
  }

  int finish() {
    if (!on) return 0;
    if (counters && counters->available()) {
      meta.hw = counters->stop();
      if (meta.has_traffic && meta.hw.memory_bytes() >= 0) {
        meta.traffic.measured_bytes =
            static_cast<double>(meta.hw.memory_bytes());
        meta.traffic.measured_direct = meta.hw.dram_direct;
      }
    }
    // Anomaly trigger: measured traffic strayed too far from the model.
    if (flight_deviation > 0.0 && meta.has_traffic &&
        meta.traffic.measured() &&
        std::abs(meta.traffic.deviation()) > flight_deviation &&
        telemetry::flight_dumps_armed())
      (void)telemetry::trigger_flight_dump("deviation");
    const telemetry::Snapshot snap =
        telemetry::Registry::instance().snapshot();
    const Status st = telemetry::export_trace_file(path, snap, meta);
    if (!st.ok()) {
      std::fprintf(stderr, "telemetry: export failed: %s\n",
                   st.error().what());
      return 1;
    }
    std::printf("telemetry: trace written to %s (%zu events)\n", path.c_str(),
                snap.total_events());
    return 0;
  }
};

TelemetrySession g_telemetry;

CsrMatrix<double> load_matrix(const std::string& src) {
  if (src.rfind("suite:", 0) == 0) {
    const std::string rest = src.substr(6);
    const auto colon = rest.find(':');
    const std::string name =
        colon == std::string::npos ? rest : rest.substr(0, colon);
    const double scale =
        colon == std::string::npos ? 0.3 : std::stod(rest.substr(colon + 1));
    return gen::make_suite_matrix(name, scale).matrix;
  }
  if (src.rfind("file:", 0) == 0)
    return read_matrix_market_file(src.substr(5));
  FBMPK_CHECK_MSG(false, "matrix source must be suite:... or file:...");
  return {};
}

AlignedVector<double> load_or_make_x(const Args& args, index_t n) {
  if (args.count("x") != 0) {
    auto v = read_vector_file(args.at("x"));
    FBMPK_CHECK_MSG(v.size() == static_cast<std::size_t>(n),
                    "x has " << v.size() << " entries, matrix has " << n
                             << " rows");
    return v;
  }
  Rng rng(1);
  AlignedVector<double> v(static_cast<std::size_t>(n));
  for (auto& e : v) e = rng.next_double(-1.0, 1.0);
  return v;
}

void emit_result(const Args& args, const AlignedVector<double>& y) {
  const std::string out = get(args, "out", "");
  if (out.empty()) {
    double norm = 0.0;
    for (double v : y) norm += v * v;
    std::printf("result: n=%zu, ||y||_2 = %.12e, y[0] = %.12e\n", y.size(),
                std::sqrt(norm), y[0]);
  } else {
    write_vector_file(out, y);
    std::printf("result written to %s\n", out.c_str());
  }
}

int cmd_plan(const Args& args) {
  const auto a = load_matrix(need(args, "matrix"));
  std::printf("matrix: %d rows, %d nnz\n", a.rows(), a.nnz());

  PlanOptions opts;
  // Scheduler choice (docs/PARALLELISM.md §9). Levels is the
  // keep-the-order strategy, so it implies reorder off.
  opts.scheduler = parse_scheduler(get(args, "scheduler", "abmc"));
  if (opts.scheduler == Scheduler::kLevels) opts.reorder = false;
  const std::string sweep = get(args, "sweep", "barrier");
  if (sweep == "p2p") {
    opts.sweep.sync = SweepSync::kPointToPoint;
  } else {
    FBMPK_CHECK_MSG(sweep == "barrier", "--sweep must be barrier or p2p");
  }
  opts.sweep.threads =
      static_cast<index_t>(std::stoi(get(args, "sweep-threads", "0")));
  // Row-kernel configuration. "scalar" keeps the exact mode; anything
  // else opts into fast mode (docs/KERNELS.md).
  opts.kernel_backend = parse_backend(get(args, "backend", "scalar"));
  opts.index_compress = get(args, "index-compress", "0") != "0";
  opts.prefetch_dist = std::stoi(get(args, "prefetch-dist", "16"));
  // Value storage precision. fp64 is the exact default; fp32 and split
  // narrow the stored value stream while accumulating in fp64
  // (docs/KERNELS.md has the error bound).
  opts.value_precision = parse_precision(get(args, "precision", "fp64"));
  MpkPlan plan = [&] {
    if (args.count("autotune-k") != 0) {
      const int k = std::stoi(args.at("autotune-k"));
      std::printf("autotuning block count for k=%d...\n", k);
      const auto tuned = autotune_block_count(a, k);
      for (const auto& s : tuned.samples)
        std::printf("  blocks=%-5d colors=%-3d %.3f ms\n",
                    static_cast<int>(s.num_blocks),
                    static_cast<int>(s.num_colors), s.seconds * 1e3);
      opts.abmc.num_blocks = tuned.best_blocks;
      std::printf("picked %d blocks\n", static_cast<int>(tuned.best_blocks));
      return MpkPlan::build(a, opts);
    }
    opts.abmc.num_blocks =
        static_cast<index_t>(std::stoi(get(args, "blocks", "512")));
    return MpkPlan::build(a, opts);
  }();

  const std::string out = need(args, "out");
  save_plan_file(plan, out);
  if (plan.options().scheduler == Scheduler::kLevels)
    std::printf("plan: %s scheduler, %d fwd / %d bwd levels, built in "
                "%.1f ms, saved to %s\n",
                scheduler_name(plan.options().scheduler),
                static_cast<int>(plan.stats().num_levels_forward),
                static_cast<int>(plan.stats().num_levels_backward),
                plan.stats().build_seconds * 1e3, out.c_str());
  else
    std::printf("plan: %d blocks, %d colors, built in %.1f ms, saved to %s\n",
                static_cast<int>(plan.stats().num_blocks),
                static_cast<int>(plan.stats().num_colors),
                plan.stats().build_seconds * 1e3, out.c_str());
  std::printf("kernel: backend=%s%s, values=%s\n",
              backend_name(plan.resolved_backend()),
              plan.options().index_compress ? ", compressed indices" : "",
              precision_name(plan.options().value_precision));
  return 0;
}

int cmd_info(const Args& args) {
  const auto plan = load_plan_file(need(args, "plan"));
  const auto& st = plan.stats();
  std::printf("rows:            %d\n", plan.rows());
  std::printf("blocks / colors: %d / %d\n", static_cast<int>(st.num_blocks),
              static_cast<int>(st.num_colors));
  std::printf("storage:         %.2f MB (L+U+d)\n",
              static_cast<double>(st.storage_bytes) / (1024.0 * 1024.0));
  const bool is_levels = plan.options().scheduler == Scheduler::kLevels;
  std::printf("scheduler:       %s, parallel=%s, reorder=%s\n",
              scheduler_name(plan.options().scheduler),
              plan.options().parallel ? "yes" : "no",
              plan.options().reorder ? "yes" : "no");
  if (is_levels) {
    std::printf("levels:          %d forward / %d backward\n",
                static_cast<int>(plan.levels().forward.num_levels),
                static_cast<int>(plan.levels().backward.num_levels));
    if (!plan.level_sweep_schedule().empty())
      std::printf("level blocking:  %d fwd / %d bwd stages x %d threads\n",
                  static_cast<int>(plan.level_sweep_schedule().fwd.num_stages),
                  static_cast<int>(plan.level_sweep_schedule().bwd.num_stages),
                  static_cast<int>(plan.level_sweep_schedule().num_threads));
  }
  if (plan.options().sweep.sync == SweepSync::kPointToPoint)
    std::printf("sweep:           point-to-point, %d threads%s\n",
                static_cast<int>(is_levels
                                     ? plan.level_sweep_schedule().num_threads
                                     : plan.sweep_schedule().num_threads),
                plan.options().sweep.pin_threads ? ", pinned" : "");
  else
    std::printf("sweep:           barrier\n");
  std::printf("kernel:          %s (stored %s), prefetch=%d\n",
              backend_name(plan.resolved_backend()),
              backend_name(plan.options().kernel_backend),
              plan.options().prefetch_dist);
  if (plan.options().index_compress)
    std::printf("indices:         compressed, %.2f bytes/nnz sidecar "
                "(%.2f MB)\n",
                plan.packed_index().bytes_per_nnz(),
                static_cast<double>(st.packed_index_bytes) /
                    (1024.0 * 1024.0));
  else
    std::printf("indices:         plain (%zu-byte)\n", sizeof(index_t));
  if (plan.options().value_precision != ValuePrecision::kFp64)
    std::printf("values:          %s%s, %.2f MB sidecar\n",
                precision_name(plan.options().value_precision),
                plan.packed_values().lossless() ? " (lossless)" : "",
                static_cast<double>(st.packed_value_bytes) /
                    (1024.0 * 1024.0));
  else
    std::printf("values:          fp64\n");
  const TunedConfig& tuned = plan.tuned_config();
  if (tuned.valid)
    std::printf("tuned:           backend=%s, compress=%s, values=%s, "
                "%d threads%s\n",
                backend_name(tuned.backend),
                tuned.index_compress ? "yes" : "no",
                precision_name(tuned.value_precision),
                static_cast<int>(tuned.tuned_threads),
                tuned.stale ? " (STALE on this machine)" : "");
  return 0;
}

int cmd_power(const Args& args) {
  auto plan = load_plan_file(need(args, "plan"));
  // Scheduler pin: scripted runs can assert which scheduler the loaded
  // plan persists instead of silently running the other one.
  if (args.count("scheduler") != 0) {
    const Scheduler want = parse_scheduler(args.at("scheduler"));
    FBMPK_CHECK_CODE(plan.options().scheduler == want,
                     ErrorCode::kUnsupported,
                     "--scheduler=" << scheduler_name(want)
                                    << " but the loaded plan persists '"
                                    << scheduler_name(plan.options().scheduler)
                                    << "'");
  }
  const int k = std::stoi(need(args, "k"));
  const int nvec = std::stoi(get(args, "nvec", "1"));
  FBMPK_CHECK_MSG(nvec >= 1, "--nvec must be >= 1");
  const auto x = load_or_make_x(args, plan.rows());
  if (nvec == 1) {
    AlignedVector<double> y(x.size());
    g_telemetry.expect_traffic(plan, k);
    Timer t;
    plan.power(x, k, y);
    std::printf("A^%d x computed in %.2f ms\n", k, t.milliseconds());
    emit_result(args, y);
    return 0;
  }
  // Batched run over nvec right-hand sides: lane 0 is the loaded (or
  // default) x — its --out bytes match a --nvec=1 run — and lanes 1..
  // are deterministic variants, so the run exercises the multi-vector
  // sweep end to end.
  std::vector<AlignedVector<double>> xs(static_cast<std::size_t>(nvec));
  std::vector<AlignedVector<double>> ys(static_cast<std::size_t>(nvec));
  std::vector<const double*> xp(static_cast<std::size_t>(nvec));
  std::vector<double*> yp(static_cast<std::size_t>(nvec));
  xs[0] = x;
  for (int b = 1; b < nvec; ++b) {
    Rng rng(static_cast<std::uint64_t>(b) + 1);
    xs[static_cast<std::size_t>(b)].resize(x.size());
    for (auto& e : xs[static_cast<std::size_t>(b)])
      e = rng.next_double(-1.0, 1.0);
  }
  for (int b = 0; b < nvec; ++b) {
    ys[static_cast<std::size_t>(b)].resize(x.size());
    xp[static_cast<std::size_t>(b)] = xs[static_cast<std::size_t>(b)].data();
    yp[static_cast<std::size_t>(b)] = ys[static_cast<std::size_t>(b)].data();
  }
  g_telemetry.expect_traffic(plan, k, nvec);
  Timer t;
  const Status st = plan.try_power_batch(xp.data(),
                                         static_cast<index_t>(nvec), k,
                                         yp.data());
  st.value();  // rethrow a typed failure as the usual CLI error path
  std::printf("A^%d x computed for %d vectors in %.2f ms\n", k, nvec,
              t.milliseconds());
  emit_result(args, ys[0]);
  return 0;
}

int cmd_poly(const Args& args) {
  auto plan = load_plan_file(need(args, "plan"));
  AlignedVector<double> coeffs;
  std::stringstream ss(need(args, "coeffs"));
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) coeffs.push_back(std::stod(item));
  FBMPK_CHECK_MSG(!coeffs.empty(), "need at least one coefficient");

  const auto x = load_or_make_x(args, plan.rows());
  AlignedVector<double> y(x.size());
  g_telemetry.expect_traffic(plan, static_cast<int>(coeffs.size()) - 1);
  Timer t;
  plan.polynomial(coeffs, x, y);
  std::printf("sum of %zu terms computed in %.2f ms\n", coeffs.size(),
              t.milliseconds());
  emit_result(args, y);
  return 0;
}

// 1-based ranks of the entries of `vals` in ascending order; entries
// with a negative value (unscored / untimed) get rank 0.
std::vector<int> rank_ascending(const std::vector<double>& vals) {
  std::vector<int> idx;
  for (int i = 0; i < static_cast<int>(vals.size()); ++i)
    if (vals[static_cast<std::size_t>(i)] >= 0.0) idx.push_back(i);
  std::sort(idx.begin(), idx.end(), [&](int x, int y) {
    return vals[static_cast<std::size_t>(x)] < vals[static_cast<std::size_t>(y)];
  });
  std::vector<int> rank(vals.size(), 0);
  for (int r = 0; r < static_cast<int>(idx.size()); ++r)
    rank[static_cast<std::size_t>(idx[static_cast<std::size_t>(r)])] = r + 1;
  return rank;
}

// One table row: "<predicted MB> <oracle#>  <measured ms> <measured#>",
// where pruned candidates show "pruned" instead of a time and failed
// ones the typed error that skipped them (docs/AUTOTUNING.md).
void print_candidate_tail(double predicted_bytes, int oracle_rank,
                          double seconds, bool pruned, bool failed,
                          ErrorCode error, int measured_rank) {
  if (predicted_bytes >= 0.0)
    std::printf("%13.2f %8d", predicted_bytes / (1024.0 * 1024.0),
                oracle_rank);
  else
    std::printf("%13s %8s", "-", "-");
  if (failed)
    std::printf("  %12s %10s\n", error_code_name(error), "-");
  else if (pruned)
    std::printf("  %12s %10s\n", "pruned", "-");
  else
    std::printf("  %12.3f %10d\n", seconds * 1e3, measured_rank);
}

// autotune: run the model-guided sweeps directly (without building or
// saving a plan) and report what the oracle did. --explain prints the
// full per-candidate table: predicted DRAM bytes, oracle rank, and the
// measured time (or "pruned" / the typed error) with its rank, so
// model-vs-measurement agreement is visible at a glance.
int cmd_autotune(const Args& args) {
  const auto a = load_matrix(need(args, "matrix"));
  std::printf("matrix: %d rows, %d nnz\n", a.rows(), a.nnz());
  const int k = std::stoi(get(args, "k", "4"));
  const int reps = std::stoi(get(args, "reps", "3"));
  const bool explain = get(args, "explain", "0") != "0";
  OracleOptions oracle;
  oracle.enabled = get(args, "oracle", "on") != "off";
  oracle.top_k = std::stoi(get(args, "top-k", "2"));

  // Scheduler for the tuned plan: abmc / levels pin it, auto runs the
  // measured race first (docs/AUTOTUNING.md §the-scheduler-race).
  PlanOptions base;
  base.scheduler = parse_scheduler(get(args, "scheduler", "abmc"));
  if (base.scheduler == Scheduler::kLevels) base.reorder = false;
  if (base.scheduler == Scheduler::kAuto) {
    Timer ts;
    const SchedulerRaceResult race =
        autotune_scheduler(a, k, reps, PlanOptions{}, oracle);
    std::printf("scheduler race: picked %s (%s)", scheduler_name(race.best),
                race.measured ? "measured" : "structural");
    if (race.measured)
      std::printf(", abmc %.3f ms vs levels %.3f ms",
                  race.abmc_seconds * 1e3, race.levels_seconds * 1e3);
    std::printf(", %.1f ms total\n", ts.milliseconds());
    base.scheduler = race.best;
    if (race.best == Scheduler::kLevels) base.reorder = false;
  }

  Timer t;
  const AutotuneResult r = autotune_block_count(
      a, k, default_block_candidates(), reps, base, oracle);
  const double sweep_ms = t.milliseconds();
  std::printf("block sweep: k=%d, oracle=%s, %zu candidates, %d timed, "
              "%d pruned, %.1f ms total\n",
              k, r.oracle_used ? "on" : "off", r.samples.size(),
              static_cast<int>(r.candidates_timed),
              static_cast<int>(r.candidates_pruned), sweep_ms);
  if (explain) {
    std::vector<double> predicted, measured;
    for (const auto& s : r.samples) {
      predicted.push_back(s.predicted_bytes);
      measured.push_back((s.pruned || s.failed) ? -1.0 : s.seconds);
    }
    const auto orank = rank_ascending(predicted);
    const auto mrank = rank_ascending(measured);
    std::printf("  %6s %6s %13s %8s  %12s %10s\n", "blocks", "colors",
                "predicted MB", "oracle#", "measured ms", "measured#");
    for (std::size_t i = 0; i < r.samples.size(); ++i) {
      const auto& s = r.samples[i];
      std::printf("  %6d %6d", static_cast<int>(s.num_blocks),
                  static_cast<int>(s.num_colors));
      print_candidate_tail(s.predicted_bytes, orank[i], s.seconds, s.pruned,
                           s.failed, s.error, mrank[i]);
    }
  }
  std::printf("picked %d blocks: %.3f ms/run", static_cast<int>(r.best_blocks),
              r.best_seconds * 1e3);
  if (r.oracle_used)
    std::printf(", oracle ranked the winner #%d of the timed set",
                static_cast<int>(r.oracle_rank_of_winner));
  std::printf("\n");

  if (get(args, "kernel", "0") != "0") {
    const bool allow_fast = get(args, "allow-fast", "0") != "0";
    Timer tk;
    base.abmc.num_blocks = r.best_blocks;
    const KernelConfigResult kr =
        autotune_kernel_config(a, k, reps, base, allow_fast, oracle);
    std::printf("kernel sweep: oracle=%s, %zu candidates, %d timed, "
                "%d pruned, %.1f ms total\n",
                kr.oracle_used ? "on" : "off", kr.samples.size(),
                static_cast<int>(kr.candidates_timed),
                static_cast<int>(kr.candidates_pruned), tk.milliseconds());
    if (explain) {
      std::vector<double> predicted, measured;
      for (const auto& s : kr.samples) {
        predicted.push_back(s.predicted_bytes);
        measured.push_back((s.pruned || s.failed) ? -1.0 : s.seconds);
      }
      const auto orank = rank_ascending(predicted);
      const auto mrank = rank_ascending(measured);
      std::printf("  %-20s %13s %8s  %12s %10s\n", "config", "predicted MB",
                  "oracle#", "measured ms", "measured#");
      for (std::size_t i = 0; i < kr.samples.size(); ++i) {
        const auto& s = kr.samples[i];
        std::string label = backend_name(s.backend);
        label += "/";
        label += precision_name(s.value_precision);
        if (s.index_compress) label += "+cib";
        std::printf("  %-20s", label.c_str());
        print_candidate_tail(s.predicted_bytes, orank[i], s.seconds, s.pruned,
                             s.failed, s.error, mrank[i]);
      }
    }
    std::printf("picked %s/%s%s: %.3f ms/run",
                backend_name(kr.best_backend),
                precision_name(kr.best_value_precision),
                kr.best_index_compress ? "+cib" : "", kr.best_seconds * 1e3);
    if (kr.oracle_used)
      std::printf(", oracle ranked the winner #%d of the timed set",
                  static_cast<int>(kr.oracle_rank_of_winner));
    std::printf("\n");
  }
  return 0;
}

// serve: drive the resilient serving front end (docs/SERVICE.md) —
// concurrent clients against one MpkService, plan cache + admission
// control + degradation ladder engaged, stats printed at the end.
// With --telemetry the service.* counters land in the exported
// fbmpkMetrics block.
int cmd_serve(const Args& args) {
  const auto a = load_matrix(need(args, "matrix"));
  const int requests = std::stoi(get(args, "requests", "32"));
  const int clients = std::stoi(get(args, "clients", "2"));
  const int k = std::stoi(get(args, "k", "4"));

  service::ServiceOptions sopts;
  // Scheduler for cache-miss plan builds. Levels implies natural order
  // plus the blocked p2p engine so the full degradation ladder
  // (engine -> barrier -> serial) stays populated.
  sopts.plan.scheduler = parse_scheduler(get(args, "scheduler", "abmc"));
  if (sopts.plan.scheduler == Scheduler::kLevels) {
    sopts.plan.reorder = false;
    sopts.plan.sweep.sync = SweepSync::kPointToPoint;
  }
  sopts.workers = std::stoi(get(args, "workers", "2"));
  sopts.cache_capacity =
      static_cast<std::size_t>(std::stoul(get(args, "cache", "4")));
  sopts.max_queue =
      static_cast<std::size_t>(std::stoul(get(args, "queue", "16")));
  sopts.default_deadline_seconds = std::stod(get(args, "deadline", "0"));
  // Request coalescing: workers gather same-(matrix, k) requests under
  // the window into one multi-vector sweep (docs/SERVICE.md).
  sopts.max_batch =
      static_cast<std::size_t>(std::stoul(get(args, "max-batch", "1")));
  sopts.batch_window_us = std::stod(get(args, "batch-window-us", "0"));
  service::MpkService svc(sopts);

  // Live exposition (docs/OBSERVABILITY.md): an embedded Prometheus
  // endpoint (--metrics-port, 0 = ephemeral), an atomic textfile for
  // node_exporter (--metrics-textfile), and a human one-line heartbeat
  // (--heartbeat=<seconds>). All are observers: any failure warns on
  // stderr and serving continues.
  const int metrics_port = std::stoi(get(args, "metrics-port", "-1"));
  const std::string metrics_textfile = get(args, "metrics-textfile", "");
  const double metrics_interval =
      std::max(0.05, std::stod(get(args, "metrics-interval", "1")));
  const double heartbeat_s = std::stod(get(args, "heartbeat", "0"));
  const double linger_s = std::stod(get(args, "linger", "0"));

  const auto render = [&svc] {
    auto fams = service::service_families(svc.stats(), svc.window(60.0));
    if (telemetry::Registry::instance().enabled())
      telemetry::append_registry_families(
          telemetry::Registry::instance().snapshot(), fams);
    return telemetry::prometheus_render(fams);
  };

  telemetry::MetricsHttpServer http;
  if (metrics_port >= 0) {
    const Status hs = http.start(metrics_port, render);
    if (hs.ok())
      std::printf("metrics: listening on port %d\n", http.port());
    else
      std::fprintf(stderr, "metrics: %s (serving continues)\n",
                   hs.error().what());
  }

  std::atomic<bool> stop_metrics{false};
  std::thread metrics_thread;
  if (!metrics_textfile.empty() || heartbeat_s > 0.0) {
    metrics_thread = std::thread([&] {
      using SteadyClock = std::chrono::steady_clock;
      auto next_textfile = SteadyClock::now();
      auto next_heartbeat = SteadyClock::now();
      while (!stop_metrics.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        const auto now = SteadyClock::now();
        if (!metrics_textfile.empty() && now >= next_textfile) {
          next_textfile =
              now + std::chrono::duration_cast<SteadyClock::duration>(
                        std::chrono::duration<double>(metrics_interval));
          const Status ws =
              telemetry::write_textfile_atomic(metrics_textfile, render());
          if (!ws.ok())
            std::fprintf(stderr, "metrics: %s (serving continues)\n",
                         ws.error().what());
        }
        if (heartbeat_s > 0.0 && now >= next_heartbeat) {
          next_heartbeat =
              now + std::chrono::duration_cast<SteadyClock::duration>(
                        std::chrono::duration<double>(heartbeat_s));
          std::printf("%s\n",
                      service::format_heartbeat(svc.window(60.0)).c_str());
          std::fflush(stdout);
        }
      }
    });
  }

  const auto x = load_or_make_x(args, a.rows());
  std::atomic<int> ok{0};
  std::atomic<int> typed{0};
  Timer t;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&] {
      AlignedVector<double> y(static_cast<std::size_t>(a.rows()));
      for (int i = 0; i < requests; ++i) {
        const auto r = svc.power(a, x, k, y);
        if (r.status.ok())
          ok.fetch_add(1);
        else
          typed.fetch_add(1);
      }
    });
  }
  for (auto& th : pool) th.join();
  const double ms = t.milliseconds();

  // Keep the endpoint (and textfile refresh) alive past the burst so
  // an external scraper has a window to observe the populated metrics.
  if (linger_s > 0.0)
    std::this_thread::sleep_for(std::chrono::duration<double>(linger_s));
  stop_metrics.store(true, std::memory_order_relaxed);
  if (metrics_thread.joinable()) metrics_thread.join();
  http.stop();
  if (!metrics_textfile.empty()) {
    const Status ws =
        telemetry::write_textfile_atomic(metrics_textfile, render());
    if (!ws.ok())
      std::fprintf(stderr, "metrics: %s (serving continues)\n",
                   ws.error().what());
  }
  if (heartbeat_s > 0.0)
    std::printf("%s\n", service::format_heartbeat(svc.window(60.0)).c_str());

  const auto st = svc.stats();
  std::printf("served %d requests (%d clients) in %.2f ms: %d ok, %d typed "
              "errors\n",
              clients * requests, clients, ms, ok.load(), typed.load());
  std::printf("cache: %llu hits, %llu misses, %llu evictions "
              "(%llu corrupt, %llu stale)\n",
              static_cast<unsigned long long>(st.cache.hits),
              static_cast<unsigned long long>(st.cache.misses),
              static_cast<unsigned long long>(st.cache.evictions),
              static_cast<unsigned long long>(st.cache.corrupt_evictions),
              static_cast<unsigned long long>(st.cache.stale_rebuilds));
  std::printf("ladder: %llu engine->barrier, %llu barrier->serial, "
              "%llu fp64 rebuilds, %llu quarantines\n",
              static_cast<unsigned long long>(st.degrade_engine_to_barrier),
              static_cast<unsigned long long>(st.degrade_barrier_to_serial),
              static_cast<unsigned long long>(st.precision_rebuilds),
              static_cast<unsigned long long>(st.quarantines));
  std::printf("admission: %llu submitted, %llu completed, %llu overload "
              "rejections, %llu timeouts, %llu cancelled\n",
              static_cast<unsigned long long>(st.submitted),
              static_cast<unsigned long long>(st.completed),
              static_cast<unsigned long long>(st.rejected_overload),
              static_cast<unsigned long long>(st.timeouts),
              static_cast<unsigned long long>(st.cancelled));
  if (sopts.max_batch > 1)
    std::printf("batching: %llu batched sweeps, %llu requests coalesced\n",
                static_cast<unsigned long long>(st.batches),
                static_cast<unsigned long long>(st.batch_coalesced));
  return st.submitted == st.completed ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s plan|info|power|poly|autotune|serve"
                 " --flag=value ...\n"
                 "  plan  --matrix=suite:pwtk|file:a.mtx --out=plan.bin"
                 " [--blocks=512] [--autotune-k=5]\n"
                 "        [--scheduler=abmc|levels|auto]"
                 " [--sweep=barrier|p2p] [--sweep-threads=0]\n"
                 "        [--backend=auto|scalar|generic|avx2|avx512]"
                 " [--index-compress] [--prefetch-dist=16]\n"
                 "        [--precision=fp64|fp32|split]\n"
                 "  info  --plan=plan.bin\n"
                 "  power --plan=plan.bin --k=5 [--nvec=1] [--x=x.txt]"
                 " [--out=y.txt] [--scheduler=abmc|levels]\n"
                 "  poly  --plan=plan.bin --coeffs=1,0.5 [--x=] [--out=]\n"
                 "  autotune --matrix=suite:...|file:... [--k=4] [--reps=3]"
                 " [--explain]\n"
                 "        [--scheduler=abmc|levels|auto] [--oracle=on|off]"
                 " [--top-k=2] [--kernel]\n"
                 "        [--allow-fast]\n"
                 "  serve --matrix=suite:...|file:... [--requests=32]"
                 " [--clients=2] [--workers=2]\n"
                 "        [--k=4] [--deadline=0] [--cache=4] [--queue=16]\n"
                 "        [--scheduler=abmc|levels|auto]"
                 " [--max-batch=1] [--batch-window-us=0]\n"
                 "        [--metrics-port=9464] [--metrics-textfile=m.prom]"
                 " [--metrics-interval=1]\n"
                 "        [--heartbeat=0] [--linger=0]\n"
                 "  any command also takes --telemetry=<file>[,hw] and\n"
                 "        --flight-dir=<dir> [--flight-max=8]"
                 " [--flight-deviation=0]\n",
                 argv[0]);
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    const Args args = parse_flags(argc, argv, 2);
    g_telemetry.parse(args);
    int rc;
    if (cmd == "plan")
      rc = cmd_plan(args);
    else if (cmd == "info")
      rc = cmd_info(args);
    else if (cmd == "power")
      rc = cmd_power(args);
    else if (cmd == "poly")
      rc = cmd_poly(args);
    else if (cmd == "autotune")
      rc = cmd_autotune(args);
    else if (cmd == "serve")
      rc = cmd_serve(args);
    else {
      std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
      return 2;
    }
    const int trc = g_telemetry.finish();
    return rc != 0 ? rc : trc;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
