// Quickstart: build a sparse matrix, create an MpkPlan, and compute
// A^k x and a polynomial in A — the library's two core operations.
//
//   ./quickstart [k]
#include <cstdio>
#include <cstdlib>

#include "core/fbmpk.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

using namespace fbmpk;

int main(int argc, char** argv) {
  const int k = argc > 1 ? std::atoi(argv[1]) : 5;

  // 1. Get a sparse matrix. Here: a 3D 7-point Laplacian-like operator;
  //    read_matrix_market_file() loads your own .mtx instead.
  const CsrMatrix<double> a = gen::make_laplacian_3d(40, 40, 40);
  const index_t n = a.rows();
  std::printf("matrix: %d rows, %d nonzeros (%.2f per row)\n", n, a.nnz(),
              static_cast<double>(a.nnz()) / n);

  // 2. Build the plan — the one-off preprocessing (triangular split +
  //    ABMC reorder). Amortize it by reusing the plan.
  Timer build_timer;
  MpkPlan plan = MpkPlan::build(a);
  std::printf("plan: built in %.1f ms (%d blocks, %d colors)\n",
              build_timer.milliseconds(),
              static_cast<int>(plan.stats().num_blocks),
              static_cast<int>(plan.stats().num_colors));

  // 3. y = A^k x.
  Rng rng(42);
  AlignedVector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);
  AlignedVector<double> y(static_cast<std::size_t>(n));

  Timer power_timer;
  plan.power(x, k, y);
  std::printf("A^%d x: %.2f ms (FBMPK)\n", k, power_timer.milliseconds());

  // Cross-check against the standard MPK pipeline.
  AlignedVector<double> y_ref(static_cast<std::size_t>(n));
  MpkWorkspace<double> ws;
  Timer base_timer;
  mpk_power<double>(a, x, k, y_ref, ws);
  std::printf("A^%d x: %.2f ms (standard baseline)\n", k,
              base_timer.milliseconds());

  double max_rel = 0.0;
  for (index_t i = 0; i < n; ++i) {
    const double scale = 1.0 + std::abs(y_ref[i]);
    max_rel = std::max(max_rel, std::abs(y[i] - y_ref[i]) / scale);
  }
  std::printf("max relative deviation vs baseline: %.2e\n", max_rel);

  // 4. Generic SSpMV: y = x + A x + 0.5 A^2 x  (paper form sum a_i A^i x).
  const AlignedVector<double> coeffs{1.0, 1.0, 0.5};
  plan.polynomial(coeffs, x, y);
  std::printf("polynomial sum_i c_i A^i x evaluated, y[0] = %.6f\n", y[0]);

  return max_rel < 1e-8 ? 0 : 1;
}
