// matrix_explorer — command-line tool over the library's sparse/reorder
// substrates: inspect a matrix (from a MatrixMarket file or the built-in
// suite), compare reorderings (RCM, ABMC), and optionally export the
// permuted matrix.
//
//   ./matrix_explorer suite:<name> [--blocks=512] [--out=path.mtx]
//   ./matrix_explorer file:<path.mtx> [...]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/fbmpk.hpp"
#include "sparse/ops.hpp"
#include "support/timer.hpp"

using namespace fbmpk;

namespace {

void describe(const char* label, const CsrMatrix<double>& a) {
  std::printf("%-10s rows=%d nnz=%d nnz/row=%.2f bandwidth=%d\n", label,
              a.rows(), a.nnz(), static_cast<double>(a.nnz()) / a.rows(),
              bandwidth(a));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s suite:<name>|file:<path.mtx> [--blocks=N] "
                 "[--out=path.mtx]\n",
                 argv[0]);
    return 2;
  }
  const std::string source = argv[1];
  index_t blocks = 512;
  std::string out_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--blocks=", 0) == 0)
      blocks = static_cast<index_t>(std::atoi(arg.c_str() + 9));
    else if (arg.rfind("--out=", 0) == 0)
      out_path = arg.substr(6);
    else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  CsrMatrix<double> a;
  try {
    if (source.rfind("suite:", 0) == 0)
      a = gen::make_suite_matrix(source.substr(6), 0.3).matrix;
    else if (source.rfind("file:", 0) == 0)
      a = read_matrix_market_file(source.substr(5));
    else {
      std::fprintf(stderr, "source must start with suite: or file:\n");
      return 2;
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "failed to load matrix: %s\n", e.what());
    return 1;
  }

  describe("original", a);
  std::printf("           structurally symmetric: %s, numerically: %s\n",
              is_structurally_symmetric(a) ? "yes" : "no",
              is_numerically_symmetric(a, 1e-12) ? "yes" : "no");

  // RCM: the classical bandwidth reducer.
  Timer t_rcm;
  const auto rcm = rcm_order(a);
  const auto a_rcm = permute_symmetric(a, rcm);
  std::printf("\nRCM        computed in %.1f ms\n", t_rcm.milliseconds());
  describe("rcm", a_rcm);

  // ABMC with both blocking strategies.
  for (const auto strategy :
       {BlockingStrategy::kContiguous, BlockingStrategy::kBfs}) {
    AbmcOptions opts;
    opts.num_blocks = blocks;
    opts.blocking = strategy;
    Timer t_abmc;
    const auto o = abmc_order(a, opts);
    const auto a_abmc = permute_symmetric(a, o.perm);
    const char* label =
        strategy == BlockingStrategy::kContiguous ? "abmc-contig" : "abmc-bfs";
    std::printf("\n%-10s computed in %.1f ms: %d blocks, %d colors, "
                "schedule %s\n",
                label, t_abmc.milliseconds(),
                static_cast<int>(o.num_blocks),
                static_cast<int>(o.num_colors),
                is_valid_schedule(a_abmc, o) ? "valid" : "INVALID");
    describe(label, a_abmc);
  }

  if (!out_path.empty()) {
    AbmcOptions opts;
    opts.num_blocks = blocks;
    const auto o = abmc_order(a, opts);
    write_matrix_market_file(out_path, permute_symmetric(a, o.perm));
    std::printf("\nABMC-permuted matrix written to %s\n", out_path.c_str());
  }
  return 0;
}
