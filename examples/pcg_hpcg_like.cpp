// HPCG-style preconditioned conjugate gradient — the workload family the
// paper's matrix split originates from (§III-A cites the HPCG SYMGS
// optimization) and a realistic consumer of both library kernels:
// SYMGS as the preconditioner, SpMV (or MPK pieces) as the operator.
//
//   ./pcg_hpcg_like [nx] [max_iters]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/fbmpk.hpp"
#include "kernels/symgs.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

using namespace fbmpk;

namespace {

double dot(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const index_t nx = argc > 1 ? static_cast<index_t>(std::atoi(argv[1])) : 32;
  const int max_iters = argc > 2 ? std::atoi(argv[2]) : 200;

  // HPCG's operator: 3D 27-point stencil.
  gen::BlockStencilOptions gopts;
  gopts.kind = gen::StencilKind::kBox;
  gopts.seed = 17;
  const auto a = gen::make_block_stencil({nx, nx, nx}, gopts);
  const index_t n = a.rows();
  std::printf("3D 27-pt operator: %d rows, %d nnz\n", n, a.nnz());

  // Preprocessing shared by both kernels: ABMC order once, split once.
  AbmcOptions aopts;
  const auto o = abmc_order(a, aopts);
  const auto ap = permute_symmetric(a, o.perm);
  const auto s = split_triangular(ap);

  // RHS for a known random solution x* (all-ones would be a near-
  // eigenvector of the row-sum-normalized stencil and trivialize CG).
  Rng rng(23);
  AlignedVector<double> x_star(static_cast<std::size_t>(n));
  for (auto& v : x_star) v = rng.next_double(-1.0, 1.0);
  AlignedVector<double> b(static_cast<std::size_t>(n));
  spmv<double>(ap, x_star, b);

  AlignedVector<double> x(static_cast<std::size_t>(n), 0.0);
  AlignedVector<double> r = b;  // r = b - A*0
  AlignedVector<double> z(static_cast<std::size_t>(n));
  AlignedVector<double> p(static_cast<std::size_t>(n));
  AlignedVector<double> ap_vec(static_cast<std::size_t>(n));

  auto precondition = [&](std::span<const double> rin, std::span<double> zout) {
    // One multi-color SYMGS sweep from a zero initial guess.
    std::fill(zout.begin(), zout.end(), 0.0);
    symgs_parallel<double>(s, o, rin, zout);
  };

  const double b_norm = std::sqrt(dot(b, b));
  precondition(r, z);
  p = z;
  double rz = dot(r, z);

  Timer timer;
  int iters = 0;
  double rel = 1.0;
  for (; iters < max_iters; ++iters) {
    spmv<double>(ap, p, ap_vec, SpmvExec::kParallel);
    const double alpha = rz / dot(p, ap_vec);
    for (index_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap_vec[i];
    }
    rel = std::sqrt(dot(r, r)) / b_norm;
    if (rel < 1e-10) {
      ++iters;
      break;
    }
    precondition(r, z);
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (index_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  const double ms = timer.milliseconds();

  double err = 0.0;
  for (index_t i = 0; i < n; ++i)
    err = std::max(err, std::abs(x[i] - x_star[i]));
  std::printf("SYMGS-preconditioned CG: %d iterations, rel residual "
              "%.2e, max error vs x*: %.2e (%.1f ms)\n",
              iters, rel, err, ms);

  // Reference: unpreconditioned CG needs far more iterations.
  std::fill(x.begin(), x.end(), 0.0);
  r = b;
  p = r;
  double rr = dot(r, r);
  int plain_iters = 0;
  for (; plain_iters < 10 * max_iters; ++plain_iters) {
    spmv<double>(ap, p, ap_vec, SpmvExec::kParallel);
    const double alpha = rr / dot(p, ap_vec);
    for (index_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap_vec[i];
    }
    const double rr_new = dot(r, r);
    if (std::sqrt(rr_new) / b_norm < 1e-10) {
      ++plain_iters;
      break;
    }
    const double beta = rr_new / rr;
    rr = rr_new;
    for (index_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
  }
  std::printf("plain CG reference:      %d iterations\n", plain_iters);
  std::printf("SYMGS preconditioning cut iterations by %.1fx\n",
              static_cast<double>(plain_iters) / iters);
  return (rel < 1e-8 && err < 1e-6) ? 0 : 1;
}
