// Polynomial linear solver — the linear-equations use case motivating
// SSpMV (paper §I): approximate x = A^{-1} b with a residual polynomial
// in A, evaluated in ONE FBMPK pass via MpkPlan::polynomial.
//
// Method: truncated Richardson/Neumann series. With tau = 1/row-sum
// bound (Gershgorin), the iteration x_{m+1} = x_m + tau (b - A x_m)
// unrolls to x_m = p_{m-1}(A) b where
//     p_{m-1}(x) = tau * sum_{i=0}^{m-1} (1 - tau x)^i,
// a degree-(m-1) polynomial whose monomial coefficients we expand
// exactly. For the diagonally dominant matrices in the suite the series
// converges geometrically — each added degree multiplies the residual
// by the same contraction factor, which the program prints.
//
//   ./polynomial_solver [degree] [matrix-name]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/fbmpk.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

using namespace fbmpk;

namespace {

double norm2(std::span<const double> v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

// Monomial coefficients of p(x) = tau * sum_{i=0}^{deg} (1 - tau x)^i.
std::vector<double> richardson_coefficients(int degree, double tau) {
  // Maintain q(x) = sum_{i=0}^{m} (1-tau x)^i via q <- q*(1-tau x) + 1.
  std::vector<double> q{1.0};  // m = 0
  for (int m = 1; m <= degree; ++m) {
    std::vector<double> next(q.size() + 1, 0.0);
    for (std::size_t j = 0; j < q.size(); ++j) {
      next[j] += q[j];            // q * 1
      next[j + 1] -= tau * q[j];  // q * (-tau x)
    }
    next[0] += 1.0;
    q = std::move(next);
  }
  for (auto& c : q) c *= tau;
  return q;
}

// Gershgorin upper bound on the spectrum: max_i sum_j |a_ij|.
double gershgorin_bound(const CsrMatrix<double>& a) {
  double bound = 0.0;
  for (index_t i = 0; i < a.rows(); ++i) {
    double row = 0.0;
    for (index_t k = a.row_ptr()[i]; k < a.row_ptr()[i + 1]; ++k)
      row += std::abs(a.values()[k]);
    bound = std::max(bound, row);
  }
  return bound;
}

}  // namespace

int main(int argc, char** argv) {
  const int max_degree = argc > 1 ? std::atoi(argv[1]) : 9;
  const std::string name = argc > 2 ? argv[2] : "G3_circuit";

  const auto m = gen::make_suite_matrix(name, 0.3);
  const auto& a = m.matrix;
  const index_t n = a.rows();
  std::printf("matrix %s: %d rows, %d nnz\n", name.c_str(), n, a.nnz());

  const double tau = 1.0 / gershgorin_bound(a);
  std::printf("Richardson damping tau = %.4e\n", tau);

  MpkPlan plan = MpkPlan::build(a);
  Rng rng(3);
  AlignedVector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.next_double(-1.0, 1.0);
  const double b_norm = norm2(b);

  AlignedVector<double> x(static_cast<std::size_t>(n));
  AlignedVector<double> r(static_cast<std::size_t>(n));

  std::printf("%-8s %-14s %-12s %s\n", "degree", "residual", "reduction",
              "solve_ms");
  double prev = 1.0;
  for (int degree = 1; degree <= max_degree; degree += 2) {
    const auto coeffs = richardson_coefficients(degree, tau);
    Timer t;
    plan.polynomial(AlignedVector<double>(coeffs.begin(), coeffs.end()), b,
                    x);
    const double ms = t.milliseconds();

    // r = b - A x.
    spmv<double>(a, x, r);
    for (index_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
    const double rel = norm2(r) / b_norm;
    std::printf("%-8d %-14.6e %-12.4f %.2f\n", degree, rel, rel / prev, ms);
    prev = rel;
  }
  std::printf("\nresidual shrinks geometrically with polynomial degree; one "
              "FBMPK pass evaluates the whole polynomial with ~(k+1)/2 "
              "matrix sweeps\n");
  return prev < 0.5 ? 0 : 1;
}
