#!/usr/bin/env bash
# Tier-1 verification, optionally followed by a sanitizer pass.
#
#   tools/run_tier1.sh              # Release build + full ctest suite
#   tools/run_tier1.sh --sanitize   # ...then Debug + ASan/UBSan ctest
#   FBMPK_SANITIZE=thread tools/run_tier1.sh --sanitize
#                                   # pick the sanitizer for the second pass
#
# The sanitizer pass builds into a separate directory so it never
# pollutes the primary build tree, and runs with halt-on-error
# semantics (-fno-sanitize-recover=all at compile time plus strict
# runtime options) so any finding fails the script.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
SANITIZE="${FBMPK_SANITIZE:-address,undefined}"

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S . "$@"
  cmake --build "$build_dir" -j "$JOBS"
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS"
}

echo "== tier-1: Release build + tests =="
run_suite build

if [[ "${1:-}" == "--sanitize" ]]; then
  echo "== tier-1: Debug + ${SANITIZE} sanitizer pass =="
  export ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1:detect_leaks=0}"
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
  export TSAN_OPTIONS="${TSAN_OPTIONS:-suppressions=$PWD/.tsan-suppressions halt_on_error=1}"
  run_suite "build-sanitize" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DFBMPK_SANITIZE="$SANITIZE" \
    -DFBMPK_BUILD_BENCH=OFF
  # Randomized fault-injection soak under the same sanitizer: the chaos
  # schedule reaches lifetime/race interleavings the unit tests can't
  # (see tools/fbmpk_soak.cpp for the pass contract).
  echo "== tier-1: ${SANITIZE} fault-injection soak =="
  "build-sanitize/tools/fbmpk_soak" --seconds="${FBMPK_SOAK_SECONDS:-20}" \
    --seed="${FBMPK_SOAK_SEED:-1}" --clients=4 --workers=3
fi

echo "== tier-1: all checks passed =="
