// fbmpk_soak — randomized fault-injection soak for the serving layer
// (docs/SERVICE.md, CI `soak` job).
//
//   fbmpk_soak [--seconds=60] [--seed=1] [--clients=4] [--workers=3]
//              [--max-batch=4] [--batch-window-us=200]
//
// A chaos thread continuously arms random runtime fault points
// (allocation failure, sweep stalls, cache-artifact corruption,
// queue-full, precision-certification failure) while client threads
// hammer one MpkService with mixed deadlines and explicit cancels.
// Clients periodically fire same-(matrix, k) bursts so the request
// coalescer (enabled by default here) batches under chaos too.
// The pass criteria are the serving layer's whole contract:
//
//   1. no crash, hang, or deadlock (the binary exits before the
//      driver's timeout);
//   2. every request finishes with either a correct result — bitwise
//      identical to a precomputed serial oracle; all soak plans are
//      exact-mode — or a typed error from the allowed set
//      (kTimeout/kOverloaded/kCancelled/kCorruptPlan/kResourceLimit/
//      kNumericalBreakdown);
//   3. the service's own accounting balances: submitted == completed.
//
// Exit code 0 on success, 1 with a diagnostic on any violation.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "gen/stencil.hpp"
#include "service/metrics_window.hpp"
#include "service/service.hpp"
#include "support/fault_inject.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/telemetry.hpp"

using namespace fbmpk;
using Clock = std::chrono::steady_clock;

namespace {

/// Self-contained xorshift so the soak schedule reproduces from the
/// seed alone, independent of library RNG changes.
struct Rng64 {
  std::uint64_t s;
  explicit Rng64(std::uint64_t seed) : s(seed ? seed : 0x9e3779b9ull) {}
  std::uint64_t next() {
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return s * 0x2545f4914f6cdd1dULL;
  }
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + next() % (hi - lo + 1);
  }
};

double flag(int argc, char** argv, const char* name, double fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return std::atof(argv[i] + prefix.size());
  return fallback;
}

std::string string_flag(int argc, char** argv, const char* name,
                        const char* fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return std::string(argv[i] + prefix.size());
  return fallback;
}

bool allowed_error(ErrorCode c) {
  return c == ErrorCode::kTimeout || c == ErrorCode::kOverloaded ||
         c == ErrorCode::kCancelled || c == ErrorCode::kCorruptPlan ||
         c == ErrorCode::kResourceLimit ||
         c == ErrorCode::kNumericalBreakdown;
}

}  // namespace

int main(int argc, char** argv) {
  const double seconds = flag(argc, argv, "seconds", 60.0);
  const auto seed = static_cast<std::uint64_t>(flag(argc, argv, "seed", 1.0));
  const int clients = static_cast<int>(flag(argc, argv, "clients", 4.0));
  const int workers = static_cast<int>(flag(argc, argv, "workers", 3.0));
  const auto max_batch =
      static_cast<std::size_t>(flag(argc, argv, "max-batch", 4.0));
  const double batch_window_us = flag(argc, argv, "batch-window-us", 200.0);
  // --flight-dir arms the always-on flight recorder: the chaos the soak
  // injects (timeouts, quarantines, degradations) should then leave
  // automatic dumps behind (docs/OBSERVABILITY.md, CI validates them).
  const std::string flight_dir = string_flag(argc, argv, "flight-dir", "");
  if (!flight_dir.empty()) {
    fbmpk::telemetry::FlightDumpOptions fopts;
    fopts.dir = flight_dir;
    fopts.max_dumps =
        static_cast<std::size_t>(flag(argc, argv, "flight-max", 8.0));
    fbmpk::telemetry::arm_flight_dumps(fopts);
    auto& reg = fbmpk::telemetry::Registry::instance();
    reg.set_enabled(true);
    reg.set_trace_mode(fbmpk::telemetry::TraceMode::kFlightOnly);
  }
  std::printf("fbmpk_soak: %.0f s, seed %llu, %d clients, %d workers, "
              "max-batch %zu (window %.0f us)\n",
              seconds, static_cast<unsigned long long>(seed), clients,
              workers, max_batch, batch_window_us);

  std::vector<CsrMatrix<double>> mats;
  mats.push_back(gen::make_laplacian_2d(24, 24));
  mats.push_back(gen::make_laplacian_2d(32, 24));
  mats.push_back(gen::make_laplacian_2d(40, 24));

  service::ServiceOptions sopts;
  sopts.workers = workers;
  sopts.cache_capacity = 2;  // below the working set: constant churn
  sopts.max_queue = 16;
  sopts.watchdog_interval_seconds = 0.002;
  sopts.stuck_grace_seconds = 0.25;
  sopts.rebuild_fp64_on_cert_failure = true;
  sopts.max_batch = max_batch;
  sopts.batch_window_us = batch_window_us;
  sopts.plan.sweep.sync = SweepSync::kPointToPoint;  // engine rung live

  constexpr int kMaxK = 5;
  // Serial oracles per (matrix, k): every rung of the ladder must
  // reproduce these bitwise (exact-mode plans).
  std::vector<std::vector<AlignedVector<double>>> oracle(mats.size());
  std::vector<AlignedVector<double>> inputs;
  {
    Rng64 rng(seed ^ 0xABCDEF);
    for (std::size_t m = 0; m < mats.size(); ++m) {
      const auto n = static_cast<std::size_t>(mats[m].rows());
      AlignedVector<double> x(n);
      for (auto& v : x)
        v = 2.0 * (static_cast<double>(rng.next() >> 11) * 0x1.0p-53) - 1.0;
      inputs.push_back(std::move(x));
      MpkPlan plan = MpkPlan::build(mats[m], sopts.plan);
      MpkPlan::Workspace ws;
      oracle[m].resize(kMaxK + 1);
      for (int k = 1; k <= kMaxK; ++k) {
        oracle[m][static_cast<std::size_t>(k)].resize(n);
        const Status st = plan.try_power(
            inputs[m], k, oracle[m][static_cast<std::size_t>(k)], ws,
            ExecPath::kSerial);
        if (!st.ok()) {
          std::fprintf(stderr, "oracle build failed: %s\n",
                       st.error().what());
          return 1;
        }
      }
    }
  }

  service::MpkService svc(sopts);
  std::atomic<bool> stop{false};
  std::atomic<long long> ok_count{0};
  std::atomic<long long> typed_count{0};
  std::atomic<long long> violations{0};

  // Chaos thread: every few milliseconds arm a random fault point with
  // a small budget. Budgets are small so the system keeps oscillating
  // between faulted and healthy instead of pinning one failure mode.
  std::thread chaos([&] {
    Rng64 rng(seed);
    while (!stop.load(std::memory_order_relaxed)) {
      auto& inj = fault::Injector::instance();
      switch (rng.range(0, 4)) {
        case 0:
          inj.arm(fault::Point::kAlloc, static_cast<long long>(rng.range(1, 3)));
          break;
        case 1:
          inj.arm(fault::Point::kSweepStall,
                  static_cast<long long>(rng.range(1, 2)),
                  static_cast<long long>(rng.range(0, 3)),
                  static_cast<long long>(rng.range(5, 60)));
          break;
        case 2:
          inj.arm(fault::Point::kCacheCorrupt, 1);
          break;
        case 3:
          inj.arm(fault::Point::kQueueFull,
                  static_cast<long long>(rng.range(1, 2)));
          break;
        case 4:
          inj.arm(fault::Point::kPrecisionCertify, 1);
          break;
      }
      std::this_thread::sleep_for(
          std::chrono::milliseconds(rng.range(5, 40)));
    }
    fault::Injector::instance().reset();
  });

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      Rng64 rng(seed + 1000ull * static_cast<std::uint64_t>(c + 1));
      const auto check = [&](const service::RequestResult& r,
                             const AlignedVector<double>& y, std::size_t m,
                             int k) {
        if (r.status.ok()) {
          ok_count.fetch_add(1);
          const auto& want = oracle[m][static_cast<std::size_t>(k)];
          if (std::memcmp(y.data(), want.data(),
                          want.size() * sizeof(double)) != 0) {
            violations.fetch_add(1);
            std::fprintf(stderr,
                         "VIOLATION: rung %s result differs from serial "
                         "oracle (matrix %zu, k %d)\n",
                         service::rung_name(r.rung), m, k);
          }
        } else {
          typed_count.fetch_add(1);
          if (!allowed_error(r.status.code())) {
            violations.fetch_add(1);
            std::fprintf(stderr, "VIOLATION: unexpected error code %s: %s\n",
                         error_code_name(r.status.code()),
                         r.status.error().what());
          }
        }
      };
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t m = rng.next() % mats.size();
        const int k = static_cast<int>(rng.range(1, kMaxK));
        service::RequestOptions ropts;
        switch (rng.range(0, 3)) {
          case 0: ropts.deadline_seconds = 0.0; break;   // none
          case 1: ropts.deadline_seconds = 0.03; break;  // tight
          default: ropts.deadline_seconds = 0.5; break;  // generous
        }
        if (rng.range(0, 7) == 0) {
          // Same-fingerprint burst: submit several identical (matrix,
          // k) requests back to back so the coalescer has company to
          // gather — each lane must still match the oracle bitwise.
          constexpr int kBurst = 3;
          service::MpkService::RequestId ids[kBurst];
          for (auto& id : ids) id = svc.submit(mats[m], inputs[m], k, ropts);
          for (const auto id : ids) {
            AlignedVector<double> y(
                static_cast<std::size_t>(mats[m].rows()));
            check(svc.wait(id, y), y, m, k);
          }
          continue;
        }
        AlignedVector<double> y(
            static_cast<std::size_t>(mats[m].rows()));
        const auto id = svc.submit(mats[m], inputs[m], k, ropts);
        if (rng.range(0, 9) == 0) {  // occasional explicit cancel
          std::this_thread::sleep_for(
              std::chrono::microseconds(rng.range(0, 2000)));
          svc.cancel(id);
        }
        check(svc.wait(id, y), y, m, k);
      }
    });
  }

  const auto t_end =
      Clock::now() + std::chrono::milliseconds(
                         static_cast<long long>(seconds * 1000.0));
  while (Clock::now() < t_end)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true);
  for (auto& t : pool) t.join();
  chaos.join();

  const auto st = svc.stats();
  std::printf(
      "requests: %lld ok, %lld typed errors; cache %llu/%llu hit/miss "
      "(%llu corrupt evictions), ladder %llu+%llu steps, %llu fp64 "
      "rebuilds, %llu quarantines, %llu overload rejections, %llu "
      "timeouts, %llu cancelled\n",
      ok_count.load(), typed_count.load(),
      static_cast<unsigned long long>(st.cache.hits),
      static_cast<unsigned long long>(st.cache.misses),
      static_cast<unsigned long long>(st.cache.corrupt_evictions),
      static_cast<unsigned long long>(st.degrade_engine_to_barrier),
      static_cast<unsigned long long>(st.degrade_barrier_to_serial),
      static_cast<unsigned long long>(st.precision_rebuilds),
      static_cast<unsigned long long>(st.quarantines),
      static_cast<unsigned long long>(st.rejected_overload),
      static_cast<unsigned long long>(st.timeouts),
      static_cast<unsigned long long>(st.cancelled));
  std::printf("batching: %llu batched sweeps, %llu requests coalesced\n",
              static_cast<unsigned long long>(st.batches),
              static_cast<unsigned long long>(st.batch_coalesced));
  // Heartbeat contract: the sliding-window snapshot must format into
  // the one-line heartbeat and parse back — the same line `serve
  // --heartbeat` emits for operators (docs/OBSERVABILITY.md).
  {
    const service::ServiceMetricsWindow w = svc.window(60.0);
    const std::string hb = service::format_heartbeat(w);
    std::printf("%s\n", hb.c_str());
    service::ServiceMetricsWindow parsed;
    if (!service::parse_heartbeat(hb, &parsed) ||
        parsed.completed != w.completed || parsed.ok != w.ok ||
        parsed.timeouts != w.timeouts ||
        parsed.rung_completions != w.rung_completions) {
      std::fprintf(stderr,
                   "VIOLATION: heartbeat line failed to round-trip: %s\n",
                   hb.c_str());
      violations.fetch_add(1);
    }
    if (w.completed == 0) {
      std::fprintf(stderr,
                   "VIOLATION: sliding window saw no completions\n");
      violations.fetch_add(1);
    }
  }
  if (!flight_dir.empty())
    std::printf("flight: %llu dump(s) written to %s\n",
                static_cast<unsigned long long>(
                    fbmpk::telemetry::flight_dump_count()),
                flight_dir.c_str());
  if (st.submitted != st.completed) {
    std::fprintf(stderr, "VIOLATION: %llu submitted but %llu completed\n",
                 static_cast<unsigned long long>(st.submitted),
                 static_cast<unsigned long long>(st.completed));
    violations.fetch_add(1);
  }
  if (ok_count.load() == 0) {
    std::fprintf(stderr, "VIOLATION: no request ever succeeded\n");
    violations.fetch_add(1);
  }
  if (violations.load() != 0) {
    std::fprintf(stderr, "fbmpk_soak FAILED: %lld violations\n",
                 violations.load());
    return 1;
  }
  std::printf("fbmpk_soak passed\n");
  return 0;
}
