// SELL-C-sigma: CSR round-trips, spmv agreement, sigma-window edges.
#include "sparse/sell.hpp"

#include <gtest/gtest.h>

#include "gen/kkt.hpp"
#include "gen/stencil.hpp"
#include "test_util.hpp"

namespace fbmpk {
namespace {

void expect_csr_equal(const CsrMatrix<double>& a, const CsrMatrix<double>& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(a.nnz(), b.nnz());
  for (index_t i = 0; i <= a.rows(); ++i)
    ASSERT_EQ(a.row_ptr()[i], b.row_ptr()[i]) << "row_ptr " << i;
  for (index_t j = 0; j < a.nnz(); ++j) {
    ASSERT_EQ(a.col_idx()[j], b.col_idx()[j]) << "col " << j;
    ASSERT_EQ(a.values()[j], b.values()[j]) << "val " << j;
  }
}

void expect_round_trip(const CsrMatrix<double>& a, index_t chunk,
                       index_t sigma) {
  const auto sell = SellMatrix<double>::from_csr(a, chunk, sigma);
  expect_csr_equal(sell.to_csr(), a);

  // spmv through SELL matches CSR-side reference.
  const auto x = test::random_vector(a.cols(), 1234);
  AlignedVector<double> ys(static_cast<std::size_t>(a.rows()));
  sell.spmv(x, ys);
  AlignedVector<double> yr(static_cast<std::size_t>(a.rows()));
  for (index_t i = 0; i < a.rows(); ++i) {
    double sum = 0.0;
    for (index_t j = a.row_ptr()[i]; j < a.row_ptr()[i + 1]; ++j)
      sum += a.values()[j] * x[a.col_idx()[j]];
    yr[i] = sum;
  }
  test::expect_near_rel(ys, yr, 1e-13, "sell spmv");
}

TEST(Sell, RoundTripsStencil) {
  const auto a = gen::make_laplacian_2d(19, 17);
  for (const index_t chunk : {1, 4, 8})
    for (const index_t sigma : {1, 8, 64, a.rows()})
      expect_round_trip(a, chunk, sigma);
}

TEST(Sell, RoundTripsRandom) {
  const auto a = test::random_matrix(211, 7.0, /*symmetric=*/false, 99);
  for (const index_t chunk : {2, 8, 16})
    for (const index_t sigma : {1, 16, a.rows()})
      expect_round_trip(a, chunk, sigma);
}

TEST(Sell, RoundTripsKkt) {
  const auto a = gen::make_kkt_saddle(6, 5, 4, {});
  expect_round_trip(a, 8, 32);
  expect_round_trip(a, 8, a.rows());
}

TEST(Sell, RoundTripsWithZeroNnzRows) {
  // Alternating empty rows exercise per-row length bookkeeping: an
  // empty row shares a chunk with full rows and is pure padding there.
  const index_t n = 61;
  AlignedVector<index_t> rp(static_cast<std::size_t>(n) + 1, 0);
  AlignedVector<index_t> ci;
  AlignedVector<double> va;
  for (index_t i = 0; i < n; ++i) {
    if (i % 2 == 0) {
      if (i > 0) {
        ci.push_back(i - 1);
        va.push_back(-1.0);
      }
      ci.push_back(i);
      va.push_back(2.0 + i);
    }
    rp[i + 1] = static_cast<index_t>(ci.size());
  }
  const CsrMatrix<double> a(n, n, std::move(rp), std::move(ci),
                            std::move(va));
  for (const index_t chunk : {1, 4, 8})
    for (const index_t sigma : {1, 4, n}) expect_round_trip(a, chunk, sigma);
}

TEST(Sell, RoundTripsAllRowsEmpty) {
  const index_t n = 10;
  const CsrMatrix<double> a(
      n, n, AlignedVector<index_t>(static_cast<std::size_t>(n) + 1, 0),
      AlignedVector<index_t>{}, AlignedVector<double>{});
  const auto sell = SellMatrix<double>::from_csr(a, 4, 8);
  EXPECT_EQ(sell.padded_size(), 0u);
  expect_csr_equal(sell.to_csr(), a);
}

TEST(Sell, RowsFewerThanChunk) {
  // n < C: a single partial chunk with trailing ghost lanes.
  const auto a = test::random_matrix(5, 3.0, /*symmetric=*/false, 7);
  expect_round_trip(a, 8, 8);
}

TEST(Sell, RowsNotMultipleOfChunkOrSigma) {
  // n = 23 with C = 8, sigma = 16: both the last sigma window and the
  // last chunk are partial.
  const auto a = test::random_matrix(23, 4.0, /*symmetric=*/false, 55);
  expect_round_trip(a, 8, 16);
}

TEST(Sell, SigmaSmallerThanChunkIsClamped) {
  // sigma < C is rounded up to the chunk size, so sorting windows never
  // split a chunk. The round-trip must still be exact.
  const auto a = test::random_matrix(64, 6.0, /*symmetric=*/false, 12);
  expect_round_trip(a, 16, 2);
}

TEST(Sell, SortingReducesPaddingOnSkewedRows) {
  // Alternating long/short rows: with sigma = 1 every chunk contains a
  // long row and pads the short ones to its length; a full sort groups
  // similar lengths so the short-row chunks stay dense.
  const index_t n = 64;
  AlignedVector<index_t> rp(static_cast<std::size_t>(n) + 1, 0);
  AlignedVector<index_t> ci;
  AlignedVector<double> va;
  for (index_t i = 0; i < n; ++i) {
    if (i % 2 == 1) {
      for (index_t j = 0; j < 9; ++j) {
        ci.push_back(j);
        va.push_back(1.0 + j);
      }
    } else {
      ci.push_back(i);
      va.push_back(2.0);
    }
    rp[i + 1] = static_cast<index_t>(ci.size());
  }
  const CsrMatrix<double> a(n, n, std::move(rp), std::move(ci),
                            std::move(va));
  const auto unsorted = SellMatrix<double>::from_csr(a, 8, 1);
  const auto sorted = SellMatrix<double>::from_csr(a, 8, n);
  EXPECT_LT(sorted.padded_size(), unsorted.padded_size());
  expect_csr_equal(unsorted.to_csr(), a);
  expect_csr_equal(sorted.to_csr(), a);
}

}  // namespace
}  // namespace fbmpk
