// Unit tests for src/support: RNG, stats, aligned buffers, error macros.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "support/aligned_buffer.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/threading.hpp"
#include "support/timer.hpp"

namespace fbmpk {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DoubleRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double(-2.5, 3.5);
    EXPECT_GE(d, -2.5);
    EXPECT_LT(d, 3.5);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(SplitMix64, MatchesReferenceSequence) {
  // Reference values from the published SplitMix64 algorithm, seed 0.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
}

TEST(Stats, GeometricMeanOfConstant) {
  const std::vector<double> xs{2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(geometric_mean(xs), 2.0);
}

TEST(Stats, GeometricMeanKnownValue) {
  const std::vector<double> xs{1.0, 4.0};
  EXPECT_DOUBLE_EQ(geometric_mean(xs), 2.0);
}

TEST(Stats, GeometricMeanRejectsNonPositive) {
  const std::vector<double> xs{1.0, 0.0};
  EXPECT_THROW(geometric_mean(xs), Error);
}

TEST(Stats, GeometricMeanRejectsEmpty) {
  EXPECT_THROW(geometric_mean({}), Error);
}

TEST(Stats, MeanAndMin) {
  const std::vector<double> xs{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.0);
  EXPECT_DOUBLE_EQ(min_value(xs), 1.0);
}

TEST(Stats, MedianOddAndEven) {
  const std::vector<double> odd{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, StddevKnownValue) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(stddev(xs), 2.138, 1e-3);
}

TEST(Stats, RunningStatsAccumulates) {
  RunningStats rs;
  rs.add(1.0);
  rs.add(4.0);
  EXPECT_EQ(rs.count(), 2u);
  EXPECT_DOUBLE_EQ(rs.geomean(), 2.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 2.5);
}

TEST(AlignedBuffer, VectorIsCacheLineAligned) {
  AlignedVector<double> v(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kCacheLineBytes, 0u);
}

TEST(AlignedBuffer, GrowsAndKeepsAlignment) {
  AlignedVector<int> v;
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kCacheLineBytes, 0u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(v[i], i);
}

TEST(Error, CheckThrowsWithExpression) {
  try {
    FBMPK_CHECK(1 == 2);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Error, CheckMsgIncludesStreamedMessage) {
  try {
    FBMPK_CHECK_MSG(false, "value was " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
  }
}

TEST(Error, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(FBMPK_CHECK(true));
}

TEST(Error, DefaultCodeIsInternal) {
  try {
    FBMPK_CHECK(1 == 2);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInternal);
  }
}

TEST(Error, CheckCodeCarriesCodeAndMessage) {
  try {
    FBMPK_CHECK_CODE(false, ErrorCode::kResourceLimit, "nnz " << 7 << " too big");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kResourceLimit);
    EXPECT_NE(std::string(e.what()).find("nnz 7 too big"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("resource_limit"), std::string::npos);
  }
}

TEST(Error, FailThrowsUnconditionally) {
  try {
    FBMPK_FAIL(ErrorCode::kUnsupported, "no " << "thanks");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnsupported);
    EXPECT_NE(std::string(e.what()).find("no thanks"), std::string::npos);
  }
}

TEST(Error, CodeNamesAreStable) {
  EXPECT_STREQ(error_code_name(ErrorCode::kInternal), "internal");
  EXPECT_STREQ(error_code_name(ErrorCode::kCorruptPlan), "corrupt_plan");
  EXPECT_STREQ(error_code_name(ErrorCode::kVersionMismatch),
               "version_mismatch");
  EXPECT_STREQ(error_code_name(ErrorCode::kNumericalBreakdown),
               "numerical_breakdown");
  EXPECT_STREQ(error_code_name(ErrorCode::kTimeout), "timeout");
  EXPECT_STREQ(error_code_name(ErrorCode::kOverloaded), "overloaded");
  EXPECT_STREQ(error_code_name(ErrorCode::kCancelled), "cancelled");
}

TEST(Expected, HoldsValueOrError) {
  Expected<int> good(42);
  ASSERT_TRUE(good);
  EXPECT_EQ(good.value(), 42);

  Expected<int> bad(FBMPK_MAKE_ERROR(ErrorCode::kIo, "disk on fire"));
  ASSERT_FALSE(bad);
  EXPECT_EQ(bad.code(), ErrorCode::kIo);
  EXPECT_NE(std::string(bad.error().what()).find("disk on fire"),
            std::string::npos);
  try {
    bad.value();  // promoting back to an exception rethrows the error
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIo);
  }
}

TEST(Expected, StatusOkAndError) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_NO_THROW(ok.value());

  Status bad(FBMPK_MAKE_ERROR(ErrorCode::kParse, "line 3"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), ErrorCode::kParse);
  EXPECT_THROW(bad.value(), Error);
}

TEST(Threading, MaxThreadsAtLeastOne) { EXPECT_GE(max_threads(), 1); }

TEST(Timer, MeasuresNonNegativeDurations) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.milliseconds(), t.seconds());  // ms numerically larger
}

}  // namespace
}  // namespace fbmpk
