// Tests for the matrix sanitizer (ingestion-boundary validation under
// Reject/Repair/WarnOnly policies).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "core/plan.hpp"
#include "sparse/mm_io.hpp"
#include "sparse/validate.hpp"
#include "test_util.hpp"

namespace fbmpk {
namespace {

const double kNan = std::numeric_limits<double>::quiet_NaN();
const double kInf = std::numeric_limits<double>::infinity();

CooMatrix<double> dirty_coo() {
  CooMatrix<double> coo(3, 3);
  coo.add(0, 0, 2.0);
  coo.add(1, 1, 0.0);   // explicit zero on the diagonal
  coo.add(0, 1, 1.0);
  coo.add(0, 1, 0.5);   // duplicate
  coo.add(2, 2, 3.0);
  return coo;
}

TEST(Sanitize, CleanMatrixPassesAllPolicies) {
  for (auto policy : {RepairPolicy::kReject, RepairPolicy::kRepair,
                      RepairPolicy::kWarnOnly}) {
    CooMatrix<double> coo(2, 2);
    coo.add(0, 0, 1.0);
    coo.add(1, 1, 2.0);
    SanitizeOptions opts;
    opts.policy = policy;
    opts.check_explicit_zeros = true;
    const auto rep = sanitize(coo, opts);
    EXPECT_TRUE(rep.clean());
    EXPECT_EQ(rep.summary(), "clean");
    EXPECT_EQ(coo.nnz(), 2u);
  }
}

TEST(Sanitize, RejectThrowsTypedErrorOnDuplicates) {
  auto coo = dirty_coo();
  SanitizeOptions opts;  // defaults: kReject, check_duplicates on
  try {
    sanitize(coo, opts);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidMatrix);
  }
}

TEST(Sanitize, WarnOnlyCountsWithoutMutating) {
  auto coo = dirty_coo();
  SanitizeOptions opts;
  opts.policy = RepairPolicy::kWarnOnly;
  opts.check_explicit_zeros = true;
  opts.check_diagonal = true;
  const auto rep = sanitize(coo, opts);
  EXPECT_EQ(rep.duplicates, 1u);
  EXPECT_EQ(rep.explicit_zeros, 1u);
  EXPECT_EQ(rep.zero_diagonals, 1u);  // row 1 has only the explicit zero
  EXPECT_FALSE(rep.repaired);
  EXPECT_EQ(coo.nnz(), 5u) << "WarnOnly must not mutate";
  EXPECT_NE(rep.summary().find("duplicates"), std::string::npos);
}

TEST(Sanitize, RepairMergesDropsAndPatches) {
  auto coo = dirty_coo();
  SanitizeOptions opts;
  opts.policy = RepairPolicy::kRepair;
  opts.check_explicit_zeros = true;
  opts.check_diagonal = true;
  opts.patched_diagonal = 7.0;
  const auto rep = sanitize(coo, opts);
  EXPECT_EQ(rep.duplicates, 1u);
  EXPECT_EQ(rep.explicit_zeros, 1u);
  EXPECT_EQ(rep.zero_diagonals, 1u);
  EXPECT_TRUE(rep.repaired);

  const auto a = CsrMatrix<double>::from_sorted_coo(coo);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 1.5);  // merged duplicate
  EXPECT_DOUBLE_EQ(a.at(1, 1), 7.0);  // patched diagonal
  EXPECT_EQ(a.nnz(), 4);
}

TEST(Sanitize, RepairPatchesMissingDiagonalEntry) {
  CooMatrix<double> coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(0, 1, 1.0);  // row 1 has no diagonal entry at all
  SanitizeOptions opts;
  opts.policy = RepairPolicy::kRepair;
  opts.check_diagonal = true;
  const auto rep = sanitize(coo, opts);
  EXPECT_EQ(rep.zero_diagonals, 1u);
  const auto a = CsrMatrix<double>::from_sorted_coo(coo);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 1.0);
}

TEST(Sanitize, NearZeroDiagonalTolerance) {
  CooMatrix<double> coo(2, 2);
  coo.add(0, 0, 1e-14);
  coo.add(1, 1, 1.0);
  SanitizeOptions opts;
  opts.policy = RepairPolicy::kWarnOnly;
  opts.check_diagonal = true;
  opts.zero_diag_tolerance = 1e-12;
  EXPECT_EQ(sanitize(coo, opts).zero_diagonals, 1u);
  opts.zero_diag_tolerance = 0.0;
  EXPECT_EQ(sanitize(coo, opts).zero_diagonals, 0u);
}

TEST(Sanitize, NonFiniteValuesAreNeverRepairable) {
  for (double bad : {kNan, kInf, -kInf}) {
    CooMatrix<double> coo(2, 2);
    coo.add(0, 0, 1.0);
    coo.add(1, 1, bad);
    SanitizeOptions opts;
    opts.policy = RepairPolicy::kRepair;
    try {
      sanitize(coo, opts);
      FAIL() << "expected Error for value " << bad;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kNumericalBreakdown);
    }
  }
}

TEST(Sanitize, OutOfRangeIndicesThrowEvenUnderRepair) {
  CooMatrix<double> coo(2, 2);
  coo.entries().push_back({5, 0, 1.0});  // bypass add()'s debug check
  SanitizeOptions opts;
  opts.policy = RepairPolicy::kRepair;
  try {
    sanitize(coo, opts);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidMatrix);
  }
  opts.policy = RepairPolicy::kWarnOnly;
  EXPECT_EQ(sanitize(coo, opts).out_of_range, 1u);
}

TEST(CheckMatrix, RejectsNonFiniteCsr) {
  auto a = test::random_matrix(20, 3.0, false, 11);
  a.values_mutable()[3] = kNan;
  try {
    check_matrix(a);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNumericalBreakdown);
  }
  SanitizeOptions warn;
  warn.policy = RepairPolicy::kWarnOnly;
  EXPECT_EQ(check_matrix(a, warn).nonfinite, 1u);
}

TEST(CheckMatrix, DiagonalScan) {
  CooMatrix<double> coo(3, 3);
  coo.add(0, 0, 1.0);
  coo.add(1, 2, 1.0);  // row 1: no diagonal
  coo.add(2, 2, 4.0);
  const auto a = CsrMatrix<double>::from_coo(coo);
  SanitizeOptions opts;
  opts.policy = RepairPolicy::kWarnOnly;
  opts.check_diagonal = true;
  EXPECT_EQ(check_matrix(a, opts).zero_diagonals, 1u);
}

TEST(Repair, RebuildsCsrWithPatchedDiagonal) {
  CooMatrix<double> coo(3, 3);
  coo.add(0, 0, 2.0);
  coo.add(1, 0, 1.0);
  coo.add(1, 1, 0.0);  // explicit zero diagonal
  coo.add(2, 2, 5.0);
  const auto a = CsrMatrix<double>::from_coo(coo);
  SanitizeOptions opts;
  opts.check_explicit_zeros = true;
  opts.check_diagonal = true;
  opts.patched_diagonal = 3.0;
  SanitizeReport rep;
  const auto fixed = repair(a, opts, &rep);
  EXPECT_DOUBLE_EQ(fixed.at(1, 1), 3.0);
  EXPECT_EQ(rep.zero_diagonals, 1u);
  EXPECT_TRUE(rep.repaired);
  fixed.validate();
}

TEST(Sanitize, ReadMatrixMarketWithRepairPolicy) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 3\n"
      "1 1 2.0\n"
      "1 1 1.0\n"  // duplicate
      "2 2 4.0\n");
  SanitizeOptions opts;
  opts.policy = RepairPolicy::kRepair;
  SanitizeReport rep;
  const auto coo = read_matrix_market(in, opts, nullptr, &rep);
  EXPECT_EQ(rep.duplicates, 1u);
  EXPECT_EQ(coo.nnz(), 2u);
  const auto a = CsrMatrix<double>::from_sorted_coo(coo);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.0);
}

TEST(Sanitize, PlanBuildRejectsNanMatrixByDefault) {
  auto a = test::random_matrix(30, 4.0, true, 5);
  a.values_mutable()[0] = kNan;
  try {
    MpkPlan::build(a);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNumericalBreakdown);
  }
  PlanOptions opts;
  opts.validate_input = false;  // explicit opt-out still builds
  EXPECT_NO_THROW(MpkPlan::build(a, opts));
}

TEST(Sanitize, NnzOverflowGuardMessage) {
  // Can't allocate 2^31 triplets; exercise the guard via the CSR
  // constructor arm instead (validate() checks values_.size()).
  CooMatrix<double> coo(2, 2);
  coo.add(0, 0, 1.0);
  SanitizeOptions opts;
  EXPECT_NO_THROW(sanitize(coo, opts));  // under the bound: fine
}

}  // namespace
}  // namespace fbmpk
