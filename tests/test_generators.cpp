// Unit tests for src/gen: stencils, random graphs, KKT, and the
// 14-matrix analogue suite.
#include <gtest/gtest.h>

#include "gen/kkt.hpp"
#include "gen/random_sparse.hpp"
#include "gen/stencil.hpp"
#include "gen/suite.hpp"
#include "sparse/ops.hpp"

namespace fbmpk::gen {
namespace {

TEST(Stencil, Laplacian2dShape) {
  const auto a = make_laplacian_2d(4, 5);
  EXPECT_EQ(a.rows(), 20);
  // Interior nodes of a 5-pt stencil have 5 entries; corner nodes 3.
  EXPECT_EQ(a.row_nnz(0), 3);
  a.validate();
}

TEST(Stencil, Laplacian3dInteriorRowHas7Entries) {
  const auto a = make_laplacian_3d(5, 5, 5);
  EXPECT_EQ(a.rows(), 125);
  const index_t center = 2 * 25 + 2 * 5 + 2;
  EXPECT_EQ(a.row_nnz(center), 7);
}

TEST(Stencil, Box2dInteriorRowHas9Entries) {
  BlockStencilOptions o;
  o.kind = StencilKind::kBox;
  const auto a = make_block_stencil({5, 5}, o);
  const index_t center = 2 * 5 + 2;
  EXPECT_EQ(a.row_nnz(center), 9);
}

TEST(Stencil, Box3dInteriorRowHas27Entries) {
  BlockStencilOptions o;
  o.kind = StencilKind::kBox;
  const auto a = make_block_stencil({5, 5, 5}, o);
  const index_t center = 2 * 25 + 2 * 5 + 2;
  EXPECT_EQ(a.row_nnz(center), 27);
}

TEST(Stencil, DofMultipliesRowsAndEntries) {
  BlockStencilOptions o;
  o.kind = StencilKind::kBox;
  o.dof = 3;
  const auto a = make_block_stencil({4, 4, 4}, o);
  EXPECT_EQ(a.rows(), 64 * 3);
  // Interior row: 27 neighbor blocks x 3 dof = 81 entries.
  const index_t center_node = 1 * 16 + 1 * 4 + 1;
  EXPECT_EQ(a.row_nnz(center_node * 3), 81);
}

TEST(Stencil, SymmetricByConstruction) {
  BlockStencilOptions o;
  o.kind = StencilKind::kBox;
  o.dof = 2;
  o.dropout = 0.1;
  const auto a = make_block_stencil({6, 6, 6}, o);
  EXPECT_TRUE(is_numerically_symmetric(a, 0.0));
}

TEST(Stencil, UnsymmetricOptionBreaksSymmetry) {
  BlockStencilOptions o;
  o.kind = StencilKind::kBox;
  o.unsymmetric = true;
  const auto a = make_block_stencil({6, 6}, o);
  EXPECT_TRUE(is_structurally_symmetric(a));  // pattern stays symmetric
  EXPECT_FALSE(is_numerically_symmetric(a, 1e-12));
}

TEST(Stencil, DeterministicForSameSeed) {
  BlockStencilOptions o;
  o.dropout = 0.2;
  o.seed = 42;
  const auto a = make_block_stencil({8, 8}, o);
  const auto b = make_block_stencil({8, 8}, o);
  EXPECT_EQ(a, b);
}

TEST(Stencil, DropoutReducesNnz) {
  BlockStencilOptions dense, sparse;
  dense.kind = sparse.kind = StencilKind::kBox;
  sparse.dropout = 0.3;
  const auto a = make_block_stencil({10, 10, 10}, dense);
  const auto b = make_block_stencil({10, 10, 10}, sparse);
  EXPECT_LT(b.nnz(), a.nnz());
  EXPECT_GT(b.nnz(), a.nnz() / 2);  // ~30% of off-diagonals dropped
}

TEST(Stencil, DiagonallyDominant) {
  BlockStencilOptions o;
  o.kind = StencilKind::kBox;
  o.dof = 2;
  const auto a = make_block_stencil({5, 5}, o);
  for (index_t i = 0; i < a.rows(); ++i) {
    double off = 0.0;
    for (index_t k = a.row_ptr()[i]; k < a.row_ptr()[i + 1]; ++k)
      if (a.col_idx()[k] != i) off += std::abs(a.values()[k]);
    EXPECT_GT(a.at(i, i), off * 0.5) << "row " << i;
  }
}

TEST(Stencil, RejectsBadArguments) {
  BlockStencilOptions o;
  EXPECT_THROW(make_block_stencil({5}, o), Error);          // 1D
  EXPECT_THROW(make_block_stencil({5, 5, 5, 5}, o), Error); // 4D
  o.dof = 0;
  EXPECT_THROW(make_block_stencil({5, 5}, o), Error);
  o.dof = 1;
  o.dropout = 1.0;
  EXPECT_THROW(make_block_stencil({5, 5}, o), Error);
}

TEST(RandomBanded, RespectsBandwidth) {
  RandomBandedOptions o;
  o.bandwidth = 10;
  o.avg_row_nnz = 5.0;
  o.seed = 3;
  const auto a = make_random_banded(200, o);
  EXPECT_LE(bandwidth(a), 10);
}

TEST(RandomBanded, SymmetricModeIsSymmetric) {
  RandomBandedOptions o;
  o.bandwidth = 50;
  o.avg_row_nnz = 8.0;
  o.symmetric = true;
  const auto a = make_random_banded(300, o);
  EXPECT_TRUE(is_numerically_symmetric(a, 0.0));
}

TEST(RandomBanded, UnsymmetricModeIsNot) {
  RandomBandedOptions o;
  o.bandwidth = 50;
  o.avg_row_nnz = 8.0;
  o.symmetric = false;
  const auto a = make_random_banded(300, o);
  EXPECT_FALSE(is_structurally_symmetric(a));
}

TEST(RandomBanded, AverageRowNnzNearTarget) {
  RandomBandedOptions o;
  o.bandwidth = 2000;
  o.avg_row_nnz = 18.0;
  o.symmetric = false;
  const auto a = make_random_banded(5000, o);
  const double avg = static_cast<double>(a.nnz()) / a.rows();
  EXPECT_NEAR(avg, 18.0, 2.0);
}

TEST(RandomBanded, EveryRowHasDiagonal) {
  RandomBandedOptions o;
  o.avg_row_nnz = 3.0;
  const auto a = make_random_banded(100, o);
  for (index_t i = 0; i < a.rows(); ++i) EXPECT_NE(a.at(i, i), 0.0);
}

TEST(CircuitLike, ExtremelySparseAndSymmetric) {
  CircuitOptions o;
  const auto a = make_circuit_like(50, 50, o);
  const double avg = static_cast<double>(a.nnz()) / a.rows();
  EXPECT_LT(avg, 6.0);
  EXPECT_GT(avg, 4.0);
  EXPECT_TRUE(is_numerically_symmetric(a, 0.0));
}

TEST(Kkt, SaddlePointShapeAndSymmetry) {
  KktOptions o;
  const auto a = make_kkt_saddle(8, 8, 8, o);
  const index_t n = 512;
  EXPECT_EQ(a.rows(), n + n / 2);
  EXPECT_TRUE(is_numerically_symmetric(a, 0.0));
  // (2,2) block is the negative regularization.
  EXPECT_DOUBLE_EQ(a.at(n, n), -o.regularization);
}

TEST(Suite, HasAllFourteenMembers) {
  EXPECT_EQ(suite_names().size(), 14u);
}

TEST(Suite, UnknownNameThrows) {
  EXPECT_THROW(make_suite_matrix("not_a_matrix"), Error);
  EXPECT_THROW(make_suite_matrix("audikw_1", -1.0), Error);
}

TEST(Suite, NnzPerRowTracksPaperWithin20Percent) {
  // Small scale keeps this test fast; nnz/row is scale-invariant for
  // stencil analogues (boundary effects shrink as matrices grow, so the
  // tolerance is generous at this size).
  for (const auto& name : suite_names()) {
    const auto m = make_suite_matrix(name, 0.05);
    const double avg = static_cast<double>(m.matrix.nnz()) / m.matrix.rows();
    EXPECT_GT(avg, m.paper_nnz_per_row * 0.6) << name;
    EXPECT_LT(avg, m.paper_nnz_per_row * 1.4) << name;
  }
}

TEST(Suite, SymmetryMatchesPaperTable) {
  for (const auto& name : suite_names()) {
    const auto m = make_suite_matrix(name, 0.03);
    EXPECT_EQ(is_numerically_symmetric(m.matrix, 0.0), m.symmetric) << name;
  }
}

TEST(Suite, ScaleGrowsRowCount) {
  const auto small = make_suite_matrix("pwtk", 0.05);
  const auto large = make_suite_matrix("pwtk", 0.2);
  EXPECT_GT(large.matrix.rows(), small.matrix.rows());
}

TEST(Suite, MatricesAreValidAndDeterministic) {
  const auto a = make_suite_matrix("Serena", 0.05);
  const auto b = make_suite_matrix("Serena", 0.05);
  a.matrix.validate();
  EXPECT_EQ(a.matrix, b.matrix);
}

}  // namespace
}  // namespace fbmpk::gen
