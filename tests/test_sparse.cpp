// Unit tests for src/sparse: COO, CSR, structural ops, triangular split.
#include <gtest/gtest.h>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/ops.hpp"
#include "sparse/split.hpp"
#include "test_util.hpp"

namespace fbmpk {
namespace {

CsrMatrix<double> fig1_matrix() {
  // The 4x4 example of the paper's Fig 1:
  //   [a . b .]
  //   [. . . .]
  //   [c d . e]
  //   [. . f g]
  CooMatrix<double> coo(4, 4);
  coo.add(0, 0, 1.0);  // a
  coo.add(0, 2, 2.0);  // b
  coo.add(2, 0, 3.0);  // c
  coo.add(2, 1, 4.0);  // d
  coo.add(2, 3, 5.0);  // e
  coo.add(3, 2, 6.0);  // f
  coo.add(3, 3, 7.0);  // g
  return CsrMatrix<double>::from_coo(coo);
}

TEST(Coo, AddAndQuery) {
  CooMatrix<double> coo(3, 3);
  coo.add(0, 1, 2.0);
  coo.add(2, 2, 3.0);
  EXPECT_EQ(coo.nnz(), 2u);
  EXPECT_EQ(coo.rows(), 3);
  coo.validate();
}

TEST(Coo, SortRowMajorIsStable) {
  CooMatrix<double> coo(2, 4);
  coo.add(1, 3, 1.0);
  coo.add(0, 2, 2.0);
  coo.add(1, 0, 3.0);
  coo.sort_row_major();
  EXPECT_EQ(coo.entries()[0].row, 0);
  EXPECT_EQ(coo.entries()[1].col, 0);
  EXPECT_EQ(coo.entries()[2].col, 3);
}

TEST(Csr, MatchesPaperFig1Layout) {
  const auto a = fig1_matrix();
  // row_ptr [0 2 2 5 7], col_idx [0 2 0 1 3 2 3] per Fig 1.
  const std::vector<index_t> rp{0, 2, 2, 5, 7};
  const std::vector<index_t> ci{0, 2, 0, 1, 3, 2, 3};
  EXPECT_TRUE(std::equal(rp.begin(), rp.end(), a.row_ptr().begin()));
  EXPECT_TRUE(std::equal(ci.begin(), ci.end(), a.col_idx().begin()));
  EXPECT_EQ(a.nnz(), 7);
}

TEST(Csr, DuplicateEntriesAreSummed) {
  CooMatrix<double> coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(0, 0, 2.5);
  const auto a = CsrMatrix<double>::from_coo(coo);
  EXPECT_EQ(a.nnz(), 1);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.5);
}

TEST(Csr, AtReturnsZeroForUnstored) {
  const auto a = fig1_matrix();
  EXPECT_DOUBLE_EQ(a.at(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(a.at(0, 2), 2.0);
}

TEST(Csr, RowNnzPerRow) {
  const auto a = fig1_matrix();
  EXPECT_EQ(a.row_nnz(0), 2);
  EXPECT_EQ(a.row_nnz(1), 0);
  EXPECT_EQ(a.row_nnz(2), 3);
  EXPECT_EQ(a.row_nnz(3), 2);
}

TEST(Csr, ValidateRejectsBadRowPtr) {
  AlignedVector<index_t> rp{0, 2, 1};  // not monotone
  AlignedVector<index_t> ci{0, 1};
  AlignedVector<double> va{1.0, 2.0};
  EXPECT_THROW(CsrMatrix<double>(2, 2, rp, ci, va), Error);
}

TEST(Csr, ValidateRejectsColumnOutOfRange) {
  AlignedVector<index_t> rp{0, 1};
  AlignedVector<index_t> ci{5};
  AlignedVector<double> va{1.0};
  EXPECT_THROW(CsrMatrix<double>(1, 2, rp, ci, va), Error);
}

TEST(Csr, ValidateRejectsUnsortedColumns) {
  AlignedVector<index_t> rp{0, 2};
  AlignedVector<index_t> ci{1, 0};
  AlignedVector<double> va{1.0, 2.0};
  EXPECT_THROW(CsrMatrix<double>(1, 2, rp, ci, va), Error);
}

TEST(Csr, EmptyMatrixIsValid) {
  CsrMatrix<double> a;
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.nnz(), 0);
}

TEST(Csr, StorageBytesCountsAllArrays) {
  const auto a = fig1_matrix();
  const std::size_t expected = 5 * sizeof(index_t)    // row_ptr
                               + 7 * sizeof(index_t)  // col_idx
                               + 7 * sizeof(double);  // values
  EXPECT_EQ(a.storage_bytes(), expected);
}

TEST(Ops, TransposeRoundTrip) {
  const auto a = test::random_matrix(60, 5.0, false, 123);
  const auto att = transpose(transpose(a));
  EXPECT_EQ(a, att);
}

TEST(Ops, TransposeSwapsEntry) {
  const auto a = fig1_matrix();
  const auto t = transpose(a);
  EXPECT_DOUBLE_EQ(t.at(2, 0), 2.0);  // b moved from (0,2)
  EXPECT_DOUBLE_EQ(t.at(0, 2), 3.0);  // c moved from (2,0)
}

TEST(Ops, SymmetryDetection) {
  EXPECT_TRUE(is_structurally_symmetric(test::random_matrix(50, 6.0, true, 7)));
  EXPECT_FALSE(is_structurally_symmetric(fig1_matrix()));
  EXPECT_TRUE(is_numerically_symmetric(test::random_matrix(50, 6.0, true, 7)));
}

TEST(Ops, BandwidthOfTridiagonal) {
  CooMatrix<double> coo(5, 5);
  for (index_t i = 0; i < 5; ++i) {
    coo.add(i, i, 2.0);
    if (i > 0) coo.add(i, i - 1, -1.0);
    if (i < 4) coo.add(i, i + 1, -1.0);
  }
  EXPECT_EQ(bandwidth(CsrMatrix<double>::from_coo(coo)), 1);
}

TEST(Ops, ExtractDiagonalHandlesMissingEntries) {
  const auto a = fig1_matrix();
  const auto d = extract_diagonal(a);
  EXPECT_DOUBLE_EQ(d[0], 1.0);
  EXPECT_DOUBLE_EQ(d[1], 0.0);  // row 1 has no diagonal
  EXPECT_DOUBLE_EQ(d[2], 0.0);
  EXPECT_DOUBLE_EQ(d[3], 7.0);
}

TEST(Ops, DenseRoundTrip) {
  const auto a = test::random_matrix(40, 4.0, false, 99);
  const auto back = from_dense(a.rows(), a.cols(), to_dense(a));
  EXPECT_EQ(a, back);
}

TEST(Ops, SymmetrizePatternKeepsValues) {
  const auto a = fig1_matrix();
  const auto s = symmetrize_pattern(a);
  EXPECT_TRUE(is_structurally_symmetric(s));
  // Original values preserved; mirrored-only positions are zero.
  EXPECT_DOUBLE_EQ(s.at(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(s.at(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(s.at(1, 2), 0.0);  // mirror of (2,1)
  EXPECT_DOUBLE_EQ(s.at(2, 1), 4.0);
}

TEST(Split, FigureExampleTriangles) {
  const auto s = split_triangular(fig1_matrix());
  EXPECT_EQ(s.lower.nnz(), 3);  // c, d, f
  EXPECT_EQ(s.upper.nnz(), 2);  // b, e
  EXPECT_DOUBLE_EQ(s.diag[0], 1.0);
  EXPECT_DOUBLE_EQ(s.diag[3], 7.0);
  EXPECT_DOUBLE_EQ(s.lower.at(2, 1), 4.0);
  EXPECT_DOUBLE_EQ(s.upper.at(2, 3), 5.0);
}

TEST(Split, MergeRoundTripsRandomMatrices) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto a = test::random_matrix(80, 7.0, false, seed);
    const auto merged = merge_triangular(split_triangular(a));
    // Merge may drop explicit zero diagonal entries; compare densely.
    EXPECT_EQ(to_dense(a), to_dense(merged)) << "seed " << seed;
  }
}

TEST(Split, StrictTriangularityHolds) {
  const auto a = test::random_matrix(100, 8.0, true, 5);
  const auto s = split_triangular(a);
  for (index_t i = 0; i < s.lower.rows(); ++i) {
    for (index_t k = s.lower.row_ptr()[i]; k < s.lower.row_ptr()[i + 1]; ++k)
      EXPECT_LT(s.lower.col_idx()[k], i);
    for (index_t k = s.upper.row_ptr()[i]; k < s.upper.row_ptr()[i + 1]; ++k)
      EXPECT_GT(s.upper.col_idx()[k], i);
  }
}

TEST(Split, NnzConservation) {
  const auto a = test::random_matrix(120, 9.0, false, 17);
  const auto s = split_triangular(a);
  index_t diag_count = 0;
  for (index_t i = 0; i < a.rows(); ++i)
    if (a.at(i, i) != 0.0) ++diag_count;
  EXPECT_EQ(s.lower.nnz() + s.upper.nnz() + diag_count, a.nnz());
}

TEST(Split, StorageMatchesTableIV) {
  // Table IV: L+U+d stores (nnz - ndiag) indices/values, 2(n+1) row
  // pointers and n diagonal entries.
  const auto a = test::random_matrix(64, 6.0, true, 3);
  const auto s = split_triangular(a);
  index_t ndiag = 0;
  for (index_t i = 0; i < a.rows(); ++i)
    if (a.at(i, i) != 0.0) ++ndiag;
  const std::size_t n = a.rows();
  const std::size_t offdiag = a.nnz() - ndiag;
  const std::size_t expected = offdiag * (sizeof(index_t) + sizeof(double)) +
                               2 * (n + 1) * sizeof(index_t) +
                               n * sizeof(double);
  EXPECT_EQ(s.storage_bytes(), expected);
}

TEST(Split, RejectsNonSquare) {
  CooMatrix<double> coo(2, 3);
  coo.add(0, 0, 1.0);
  EXPECT_THROW(split_triangular(CsrMatrix<double>::from_coo(coo)), Error);
}

}  // namespace
}  // namespace fbmpk
